package optassign

// Smoke test: every example program must build and run to completion with
// small parameters. Examples are the executable documentation of this
// repo; a refactor that breaks one should fail `go test ./...`, not wait
// for a reader to notice.

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test runs example binaries; skipped with -short")
	}
	examples, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(examples) == 0 {
		t.Fatal("no examples found; is the working directory the repo root?")
	}
	// Tiny parameters where an example accepts them; defaults elsewhere.
	args := map[string][]string{
		"netsched":         {"-loss", "5"},
		"parallelcampaign": {"-servers", "2", "-samples", "200"},
	}
	for _, dir := range examples {
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			continue
		}
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", append([]string{"run", "./" + dir}, args[name]...)...)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s printed nothing", name)
			}
		})
	}
}
