package calibrate

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/search"
	"optassign/internal/t2"
)

// AssignPop is an assignment-space population: a performance landscape
// over the real feasible set with an analytically known optimum, driven
// through a core.Runner so search strategies — not just i.i.d. samplers —
// can be calibrated against it. DiscretePopulation satisfies it too.
type AssignPop interface {
	Name() string
	TrueOptimum() float64
	Topo() t2.Topology
	Tasks() int
	Runner() core.Runner
}

// HashGPDPopulation is a continuous synthetic landscape over the real
// assignment space: perf(a) = Loc + Q(u(a)) with Q the GPD quantile
// function (ξ < 0, finite endpoint) and u(a) a 64-bit hash of the raw
// context vector mapped to [0,1). Uniform assignment draws therefore see
// i.i.d. Loc+GPD(ξ,σ) performances — the exact model of the gpd coverage
// scenario — but arriving through real assignments, so any Strategy can
// sample it. Hashing the raw Ctx (not the canonical class) makes values
// effectively tie-free, and hashing at all makes the landscape
// deliberately structureless: local moves carry no signal, which is the
// point — this population calibrates the *fit*, not the climber.
//
// TrueOptimum reports the analytic endpoint Loc + σ/|ξ|. The finite
// assignment space's realized maximum sits a hair below it (for the T2's
// ~5·10¹⁰ six-task assignments, about 0.03% of the endpoint — an order
// of magnitude inside typical CI widths), so endpoint coverage is the
// meaningful target.
type HashGPDPopulation struct {
	TopoT  t2.Topology
	TasksN int
	Loc    float64
	Tail   evt.GPD // must have Xi < 0
}

// Name implements AssignPop.
func (p HashGPDPopulation) Name() string {
	return fmt.Sprintf("hashgpd(ξ=%g,σ=%g,loc=%g)", p.Tail.Xi, p.Tail.Sigma, p.Loc)
}

// TrueOptimum implements AssignPop.
func (p HashGPDPopulation) TrueOptimum() float64 { return p.Loc + p.Tail.RightEndpoint() }

// Topo implements AssignPop.
func (p HashGPDPopulation) Topo() t2.Topology { return p.TopoT }

// Tasks implements AssignPop.
func (p HashGPDPopulation) Tasks() int { return p.TasksN }

// Runner implements AssignPop.
func (p HashGPDPopulation) Runner() core.Runner {
	return core.RunnerFunc(func(a assign.Assignment) (float64, error) {
		return p.Loc + p.Tail.Quantile(hashUnit(a.Ctx)), nil
	})
}

// AdditivePopulation is a smooth synthetic landscape: every context c
// carries a fixed weight w[c] (a seeded shuffle of evenly spaced values)
// and perf(a) = Σ w[c_i]. Its optimum is the sum of the tasks largest
// weights, known exactly. Unlike HashGPDPopulation the landscape is
// smooth under local moves — relocating one task changes one addend — so
// hill climbing genuinely works here. That makes it the contamination
// probe: an adaptive strategy's exploration draws cluster near the
// incumbent, and letting them into the tail fit visibly wrecks the
// estimate, while the strategy's uniform draws keep it honest.
type AdditivePopulation struct {
	TopoT  t2.Topology
	TasksN int
	w      []float64
	best   float64
}

// NewAdditivePopulation builds the landscape with weights shuffled by the
// given seed (via search.RepSeed, the project's derivation).
func NewAdditivePopulation(topo t2.Topology, tasks int, seed int64) (*AdditivePopulation, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	v := topo.Contexts()
	if tasks < 1 || tasks > v {
		return nil, fmt.Errorf("calibrate: %d tasks do not fit %d contexts", tasks, v)
	}
	p := &AdditivePopulation{TopoT: topo, TasksN: tasks, w: make([]float64, v)}
	for i := range p.w {
		// Evenly spaced weights with a mild convex bend so the top is
		// distinct but not isolated.
		u := float64(i+1) / float64(v)
		p.w[i] = 100 * u * u
	}
	rng := rand.New(rand.NewSource(search.RepSeed(seed, 0)))
	rng.Shuffle(v, func(i, j int) { p.w[i], p.w[j] = p.w[j], p.w[i] })
	// The optimum takes the tasks largest weights — placement order is
	// irrelevant to a sum.
	sorted := append([]float64(nil), p.w...)
	for i := 0; i < tasks; i++ { // partial selection sort: tasks « v
		maxAt := i
		for j := i + 1; j < v; j++ {
			if sorted[j] > sorted[maxAt] {
				maxAt = j
			}
		}
		sorted[i], sorted[maxAt] = sorted[maxAt], sorted[i]
		p.best += sorted[i]
	}
	return p, nil
}

// Name implements AssignPop.
func (p *AdditivePopulation) Name() string {
	return fmt.Sprintf("additive(%d contexts,%d tasks)", len(p.w), p.TasksN)
}

// TrueOptimum implements AssignPop.
func (p *AdditivePopulation) TrueOptimum() float64 { return p.best }

// Topo implements AssignPop.
func (p *AdditivePopulation) Topo() t2.Topology { return p.TopoT }

// Tasks implements AssignPop.
func (p *AdditivePopulation) Tasks() int { return p.TasksN }

// Runner implements AssignPop.
func (p *AdditivePopulation) Runner() core.Runner {
	return core.RunnerFunc(func(a assign.Assignment) (float64, error) {
		s := 0.0
		for _, c := range a.Ctx {
			s += p.w[c]
		}
		return s, nil
	})
}

// hashUnit maps a context vector to [0,1) through FNV-1a plus a
// splitmix64-style finalizer — deterministic, dependency-free, and
// uncorrelated with the vector's structure. The finalizer matters: raw
// FNV-1a of small structured integers (context ids, mostly-zero bytes)
// has visibly weak avalanche in the bits the quantile transform consumes,
// enough to shift measured coverage by percents.
func hashUnit(ctx []int) float64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range ctx {
		v := uint64(c)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return u
}

// SearchCoverageConfig parameterizes the per-strategy coverage study: does
// a strategy's tail-eligible sample still give the EVT machinery its
// nominal coverage?
type SearchCoverageConfig struct {
	// NewStrategy builds a fresh strategy per replication; nil is uniform.
	NewStrategy  func() (search.Strategy, error)
	StrategyName string
	// Replications is the number of independent campaigns (default 300).
	Replications int
	// TailN is the number of tail-eligible draws each replication collects
	// before fitting (default 2000) — strategies that explore draw more in
	// total, so every strategy's fit sees the same sample size.
	TailN int
	// Batch is the committed-horizon flush interval (default 100),
	// matching the engine's Ndelta batching.
	Batch int
	// MaxDraws caps total draws per replication (default 50·TailN).
	MaxDraws int
	Seed     int64
	POT      evt.POTOptions
	// Workers bounds the fan-out; results are worker-count invariant.
	Workers int
	// IncludeExplore is a deliberate-contamination probe: fit on every
	// successful draw, exploration included. With an adaptive strategy on
	// a climbable landscape this must wreck coverage — the probe that
	// proves the Explore exclusion is load-bearing.
	IncludeExplore bool
}

func (c SearchCoverageConfig) withDefaults() SearchCoverageConfig {
	if c.Replications <= 0 {
		c.Replications = 300
	}
	if c.TailN <= 0 {
		c.TailN = 2000
	}
	if c.Batch <= 0 {
		c.Batch = 100
	}
	if c.MaxDraws <= 0 {
		c.MaxDraws = 50 * c.TailN
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.StrategyName == "" {
		c.StrategyName = "uniform"
	}
	return c
}

// SearchCoverageResult aggregates one strategy's coverage study.
type SearchCoverageResult struct {
	Scenario     string  `json:"scenario"`
	Strategy     string  `json:"strategy"`
	TrueOptimum  float64 `json:"true_optimum"`
	Replications int     `json:"replications"`
	Analyzed     int     `json:"analyzed"`
	TailN        int     `json:"tail_n"`
	Covered      int     `json:"covered"`
	Coverage     float64 `json:"coverage"`
	CoverageSE   float64 `json:"coverage_se"`
	MeanBiasPct  float64 `json:"mean_bias_pct"`
	MeanWidthPct float64 `json:"mean_width_pct"`
	UnboundedHi  int     `json:"unbounded_hi"`
	// MeanDraws is the mean total draws spent to collect TailN
	// tail-eligible points (== TailN for non-exploring strategies).
	MeanDraws  float64        `json:"mean_draws"`
	Rejections map[string]int `json:"rejections,omitempty"`
}

type searchCoverageOutcome struct {
	ok        bool
	rejection string
	covered   bool
	point     float64
	lo, hi    float64
	draws     int
}

// RunSearchCoverage runs the coverage calibration for one strategy: each
// replication drives the strategy over pop's landscape — committing
// outcome batches exactly as the engine would — until TailN tail-eligible
// measurements exist, fits them with evt.Analyze, and checks the Wilks
// interval against the known optimum.
func RunSearchCoverage(cfg SearchCoverageConfig, pop AssignPop) (SearchCoverageResult, error) {
	cfg = cfg.withDefaults()
	truth := pop.TrueOptimum()
	if math.IsNaN(truth) || math.IsInf(truth, 0) {
		return SearchCoverageResult{}, fmt.Errorf("calibrate: population %s has non-finite optimum %v", pop.Name(), truth)
	}
	runner := pop.Runner()

	outcomes := make([]searchCoverageOutcome, cfg.Replications)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	var firstErr error
	var errOnce sync.Once
	for r := 0; r < cfg.Replications; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			o, err := searchCoverageReplicate(cfg, pop, truth, runner, r)
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			outcomes[r] = o
		}(r)
	}
	wg.Wait()
	if firstErr != nil {
		return SearchCoverageResult{}, firstErr
	}

	res := SearchCoverageResult{
		Scenario:     pop.Name(),
		Strategy:     cfg.StrategyName,
		TrueOptimum:  truth,
		Replications: cfg.Replications,
		TailN:        cfg.TailN,
		Rejections:   make(map[string]int),
	}
	var sumBias, sumWidth, sumDraws float64
	finiteWidths := 0
	for _, o := range outcomes {
		sumDraws += float64(o.draws)
		if !o.ok {
			res.Rejections[o.rejection]++
			continue
		}
		res.Analyzed++
		if o.covered {
			res.Covered++
		}
		sumBias += (o.point - truth) / truth * 100
		if math.IsInf(o.hi, 1) {
			res.UnboundedHi++
		} else {
			sumWidth += (o.hi - o.lo) / truth * 100
			finiteWidths++
		}
	}
	if res.Analyzed > 0 {
		res.Coverage = float64(res.Covered) / float64(res.Analyzed)
		res.CoverageSE = math.Sqrt(res.Coverage * (1 - res.Coverage) / float64(res.Analyzed))
		res.MeanBiasPct = sumBias / float64(res.Analyzed)
	}
	if finiteWidths > 0 {
		res.MeanWidthPct = sumWidth / float64(finiteWidths)
	}
	if cfg.Replications > 0 {
		res.MeanDraws = sumDraws / float64(cfg.Replications)
	}
	return res, nil
}

// searchCoverageReplicate runs one strategy-driven sampling campaign and
// one fit.
func searchCoverageReplicate(cfg SearchCoverageConfig, pop AssignPop, truth float64, runner core.Runner, r int) (searchCoverageOutcome, error) {
	strat := search.Strategy(search.Uniform{})
	if cfg.NewStrategy != nil {
		var err error
		strat, err = cfg.NewStrategy()
		if err != nil {
			return searchCoverageOutcome{}, err
		}
	}
	rng := rand.New(rand.NewSource(repSeed(cfg.Seed, r)))
	hist := search.NewHistory(pop.Topo(), pop.Tasks())
	var fitSample []float64
	draws := 0
	for tail := 0; tail < cfg.TailN && draws < cfg.MaxDraws; draws++ {
		d, err := strat.Next(rng, hist)
		if err != nil {
			return searchCoverageOutcome{}, err
		}
		i := hist.Push(d)
		perf, err := runner.Measure(d.Assignment)
		if err != nil {
			return searchCoverageOutcome{}, err
		}
		hist.Resolve(i, perf, false)
		if (i+1)%cfg.Batch == 0 {
			hist.Commit()
		}
		if !d.Explore {
			tail++
			fitSample = append(fitSample, perf)
		} else if cfg.IncludeExplore {
			fitSample = append(fitSample, perf)
		}
	}
	rep, err := evt.Analyze(fitSample, cfg.POT)
	if err != nil {
		return searchCoverageOutcome{rejection: rejectionCategory(err), draws: draws}, nil
	}
	return searchCoverageOutcome{
		ok:      true,
		covered: rep.UPB.Lo <= truth && truth <= rep.UPB.Hi,
		point:   rep.UPB.Point,
		lo:      rep.UPB.Lo,
		hi:      rep.UPB.Hi,
		draws:   draws,
	}, nil
}
