package calibrate

import (
	"fmt"

	"optassign/internal/apps"
	"optassign/internal/evt"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/t2"
)

// Scenario is a named calibration setup: a population plus the sample size
// and POT options it is calibrated under. The built-in scenarios pin the
// defaults cmd/calibrate and the CI gate share.
type Scenario struct {
	Name string
	Pop  Population
	// N is the recommended per-replication sample size.
	N int
	// POT carries scenario-specific estimator settings. For the exact-GPD
	// scenario the threshold cap is raised to 10%: threshold stability
	// makes every threshold model-exact there, so the extra exceedances
	// buy estimator accuracy without model bias — the calibration then
	// measures the estimator itself, not small-sample threshold noise.
	POT evt.POTOptions
}

// ScenarioNames lists the built-in coverage scenarios in presentation
// order ("iter", the iterative-loop calibration, is separate — it is a
// campaign study, not a coverage study).
var ScenarioNames = []string{"gpd", "mixture", "discrete"}

// BuiltinScenario constructs a built-in scenario by name. The discrete
// scenario enumerates and measures its ~1.5k-class testbed population on
// construction (a few seconds).
func BuiltinScenario(name string) (Scenario, error) {
	switch name {
	case "gpd":
		s := Scenario{
			Name: "gpd",
			Pop:  GPDPopulation{Loc: 100, Tail: evt.GPD{Xi: -0.3, Sigma: 30}},
			N:    2000,
		}
		s.POT.Threshold.MaxExceedFraction = 0.10
		return s, nil
	case "mixture":
		return Scenario{
			Name: "mixture",
			Pop: MixturePopulation{W: 1000, Components: []MixtureComponent{
				{Weight: 0.5, K: 2},
				{Weight: 0.3, K: 5},
				{Weight: 0.2, K: 10},
			}},
			N: 2000,
		}, nil
	case "discrete":
		pop, err := builtinDiscrete()
		if err != nil {
			return Scenario{}, err
		}
		return Scenario{Name: "discrete", Pop: pop, N: 2000}, nil
	default:
		return Scenario{}, fmt.Errorf("calibrate: unknown scenario %q (have gpd, mixture, discrete)", name)
	}
}

// BuiltinSearchStudy pins the head-to-head strategy study cmd/calibrate's
// "search" scenario and the CI strategy gates share: efficiency on the
// Figure 1 discrete population (promise 4%, Ninit 500, budget 6000, 150
// campaigns per strategy) and coverage on a continuous hash-GPD landscape
// over 8-task T2 assignments (300 replications, 2000 tail points each).
// The 8-task space matters: its ~74k canonical classes exceed the
// stratified strategy's enumeration cap, so stratified is exercised in
// rejection mode, where its draws are genuinely i.i.d. — on a small
// enumerable space its per-pass class sweep is a fixed value set and
// coverage against a continuous truth is not meaningful.
func BuiltinSearchStudy() (SearchStudyConfig, *DiscretePopulation, AssignPop, error) {
	pop, err := builtinDiscrete()
	if err != nil {
		return SearchStudyConfig{}, nil, nil, err
	}
	cfg := SearchStudyConfig{
		Iter: IterConfig{
			Replications:  150,
			Seed:          7,
			AcceptLossPct: 4,
			MaxSamples:    6000,
		},
		Coverage: SearchCoverageConfig{
			Replications: 300,
			TailN:        2000,
			Seed:         7,
		},
	}
	cfg.Coverage.POT.Threshold.MaxExceedFraction = 0.10
	cov := HashGPDPopulation{
		TopoT:  t2.UltraSPARCT2(),
		TasksN: 8,
		Loc:    100,
		Tail:   evt.GPD{Xi: -0.3, Sigma: 30},
	}
	return cfg, pop, cov, nil
}

// builtinDiscrete builds the Figure 1-style population: 2 instances of
// IPFwd-intadd (6 tasks) on the full T2, every canonical class measured.
func builtinDiscrete() (*DiscretePopulation, error) {
	app, err := apps.ByName("IPFwd-intadd", netgen.DefaultProfile())
	if err != nil {
		return nil, err
	}
	tb, err := netdps.NewTestbed(app, 2, netdps.WithSeed(1))
	if err != nil {
		return nil, err
	}
	return NewDiscretePopulation(tb)
}
