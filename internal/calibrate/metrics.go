package calibrate

import "optassign/internal/obs"

// Metrics publishes live calibration progress: replication throughput and
// the running coverage tally. Like every obs bundle it is strictly
// observational — results are identical with metrics on or off — and
// nil-safe, so a nil *Metrics disables publication without branching at
// call sites.
type Metrics struct {
	Replications *obs.Counter
	Covered      *obs.Counter
	Rejected     *obs.Counter
	Coverage     *obs.Gauge
}

// NewMetrics registers the calibration series on r; a nil registry yields
// a nil bundle.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Replications: r.Counter("optassign_calibrate_replications_total", "Calibration replications completed."),
		Covered:      r.Counter("optassign_calibrate_covered_total", "Replications whose CI contained the true optimum."),
		Rejected:     r.Counter("optassign_calibrate_rejected_total", "Replications rejected by the analysis pipeline."),
		Coverage:     r.Gauge("optassign_calibrate_coverage", "Final empirical coverage of the last completed scenario."),
	}
}
