package calibrate

import (
	"fmt"
	"io"
)

// PrintResult renders one coverage result as the aligned text block
// cmd/calibrate prints.
func PrintResult(w io.Writer, r Result) {
	fmt.Fprintf(w, "scenario      %s\n", r.Scenario)
	fmt.Fprintf(w, "true optimum  %.6g\n", r.TrueOptimum)
	fmt.Fprintf(w, "replications  %d (analyzed %d, n=%d per replication)\n", r.Replications, r.Analyzed, r.N)
	fmt.Fprintf(w, "coverage      %.4f  (nominal %.2f, SE %.4f, %d/%d covered)\n",
		r.Coverage, r.Nominal, r.CoverageSE, r.Covered, r.Analyzed)
	fmt.Fprintf(w, "UPB bias      %+.3f%% mean, %.3f%% mean absolute\n", r.MeanBiasPct, r.MeanAbsErrPct)
	fmt.Fprintf(w, "CI width      %.3f%% of optimum (mean over %d finite), %d unbounded above\n",
		r.MeanWidthPct, r.Analyzed-r.UnboundedHi, r.UnboundedHi)
	for cause, n := range r.Rejections {
		fmt.Fprintf(w, "rejected      %d × %s\n", n, cause)
	}
	for _, e := range r.Estimators {
		fmt.Fprintf(w, "vs %-10s accepted %d, rejected %d, |Δξ̂| %.4f, |ΔUPB| %.3f%%\n",
			e.Method, e.Accepted, e.Rejected, e.MeanAbsXiDiff, e.MeanAbsUPBDiffPct)
	}
}

// PrintIterResult renders an iterative-loop calibration result.
func PrintIterResult(w io.Writer, r IterResult) {
	fmt.Fprintf(w, "scenario      %s\n", r.Scenario)
	fmt.Fprintf(w, "true optimum  %.6g\n", r.TrueOptimum)
	fmt.Fprintf(w, "replications  %d campaigns, promised loss <= %.1f%%\n", r.Replications, r.AcceptLossPct)
	fmt.Fprintf(w, "outcomes      %d satisfied, %d budget-exhausted, %d failed\n", r.Satisfied, r.Exhausted, r.Failed)
	fmt.Fprintf(w, "violations    %d/%d satisfied campaigns broke the promise (rate %.4f)\n",
		r.Violations, r.Satisfied, r.ViolationRate)
	fmt.Fprintf(w, "realized loss %.3f%% mean, %.3f%% worst (satisfied campaigns)\n",
		r.MeanRealizedLossPct, r.MaxRealizedLossPct)
	fmt.Fprintf(w, "cost          %.0f samples per campaign (mean)\n", r.MeanSamples)
}
