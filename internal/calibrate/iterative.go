package calibrate

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/search"
)

// IterConfig parameterizes the calibration of the §5.3 iterative
// algorithm's stopping rule against a discrete population with a known
// optimum.
type IterConfig struct {
	// Replications is the number of independent campaigns (default 200 —
	// each replication is a full iterative campaign, not a single
	// analysis).
	Replications int
	// AcceptLossPct is the promised X%: the algorithm claims the best
	// observed assignment is within X% of the optimum when it stops
	// satisfied (default 5).
	AcceptLossPct float64
	// Ninit, Ndelta, MaxSamples configure the loop as in core.IterConfig;
	// zero values use calibration-friendly defaults (500/100/3000) rather
	// than the paper's production 1000/100/20000, keeping thousands of
	// campaigns affordable.
	Ninit, Ndelta, MaxSamples int
	// POT configures the estimator inside the loop.
	POT evt.POTOptions
	// Seed derives per-replication campaign seeds.
	Seed int64
	// Workers bounds the fan-out; results are worker-count invariant.
	Workers int
	// Metrics, when non-nil, counts campaigns as they finish.
	Metrics *Metrics
	// NewStrategy constructs the per-replication search strategy
	// (strategies are stateful, so every campaign needs a fresh one).
	// nil runs the paper's uniform baseline. StrategyName labels the
	// result; it defaults to "uniform".
	NewStrategy  func() (search.Strategy, error)
	StrategyName string
}

func (c IterConfig) withDefaults() IterConfig {
	if c.Replications <= 0 {
		c.Replications = 200
	}
	if c.AcceptLossPct <= 0 {
		c.AcceptLossPct = 5
	}
	if c.Ninit <= 0 {
		c.Ninit = 500
	}
	if c.Ndelta <= 0 {
		c.Ndelta = 100
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 3000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// IterResult reports how the stopping rule's promise held up.
type IterResult struct {
	Scenario      string  `json:"scenario"`
	Strategy      string  `json:"strategy,omitempty"`
	TrueOptimum   float64 `json:"true_optimum"`
	Replications  int     `json:"replications"`
	AcceptLossPct float64 `json:"accept_loss_pct"`

	// Satisfied counts campaigns that stopped claiming the requirement
	// met; Exhausted those that ran out of budget; Failed those that ended
	// in an estimation error.
	Satisfied int `json:"satisfied"`
	Exhausted int `json:"exhausted"`
	Failed    int `json:"failed"`

	// Violations counts satisfied campaigns whose *realized* loss
	// (true − best)/true·100 exceeded the promised AcceptLossPct — the
	// guarantee breaking. ViolationRate is Violations/Satisfied. The
	// stopping rule thresholds on the CI's upper bound at confidence
	// 1−α, so the violation rate should be far below α.
	Violations    int     `json:"violations"`
	ViolationRate float64 `json:"violation_rate"`

	// MeanRealizedLossPct and MaxRealizedLossPct summarize the realized
	// loss over satisfied campaigns; MeanSamples the measurement cost.
	MeanRealizedLossPct float64 `json:"mean_realized_loss_pct"`
	MaxRealizedLossPct  float64 `json:"max_realized_loss_pct"`
	MeanSamples         float64 `json:"mean_samples"`
}

type iterOutcome struct {
	status      string // "satisfied", "exhausted", "failed"
	realizedPct float64
	samples     int
}

// RunIterative calibrates the iterative algorithm against pop: every
// replication runs a complete core.Iterate campaign (fresh seed, fresh
// draws) on the population's class map and compares the claimed loss bound
// with the realized loss against the enumerated optimum.
func RunIterative(cfg IterConfig, pop *DiscretePopulation) (IterResult, error) {
	cfg = cfg.withDefaults()
	truth := pop.TrueOptimum()
	if !(truth > 0) {
		return IterResult{}, fmt.Errorf("calibrate: discrete population optimum must be positive, got %v", truth)
	}
	runner := pop.Runner()

	outcomes := make([]iterOutcome, cfg.Replications)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for r := 0; r < cfg.Replications; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[r] = iterReplicate(cfg, pop, truth, runner, r)
			if m := cfg.Metrics; m != nil {
				m.Replications.Inc()
			}
		}(r)
	}
	wg.Wait()

	res := IterResult{
		Scenario:      pop.Name(),
		Strategy:      cfg.StrategyName,
		TrueOptimum:   truth,
		Replications:  cfg.Replications,
		AcceptLossPct: cfg.AcceptLossPct,
	}
	if res.Strategy == "" {
		res.Strategy = "uniform"
	}
	var sumLoss, sumSamples float64
	for _, o := range outcomes {
		sumSamples += float64(o.samples)
		switch o.status {
		case "satisfied":
			res.Satisfied++
			sumLoss += o.realizedPct
			if o.realizedPct > res.MaxRealizedLossPct {
				res.MaxRealizedLossPct = o.realizedPct
			}
			if o.realizedPct > cfg.AcceptLossPct {
				res.Violations++
			}
		case "exhausted":
			res.Exhausted++
		default:
			res.Failed++
		}
	}
	if res.Satisfied > 0 {
		res.ViolationRate = float64(res.Violations) / float64(res.Satisfied)
		res.MeanRealizedLossPct = sumLoss / float64(res.Satisfied)
	}
	if cfg.Replications > 0 {
		res.MeanSamples = sumSamples / float64(cfg.Replications)
	}
	return res, nil
}

// iterReplicate runs one full campaign.
func iterReplicate(cfg IterConfig, pop *DiscretePopulation, truth float64, runner core.Runner, r int) iterOutcome {
	var strat search.Strategy
	if cfg.NewStrategy != nil {
		var err error
		strat, err = cfg.NewStrategy()
		if err != nil {
			return iterOutcome{status: "failed"}
		}
	}
	result, err := core.Iterate(core.IterConfig{
		Topo:          pop.Topo(),
		Tasks:         pop.Tasks(),
		AcceptLossPct: cfg.AcceptLossPct,
		Ninit:         cfg.Ninit,
		Ndelta:        cfg.Ndelta,
		MaxSamples:    cfg.MaxSamples,
		POT:           cfg.POT,
		Seed:          repSeed(cfg.Seed, r),
		Strategy:      strat,
	}, runner)
	o := iterOutcome{samples: result.Samples}
	switch {
	case err == nil && result.Satisfied:
		o.status = "satisfied"
		o.realizedPct = (truth - result.Best.Perf) / truth * 100
	case errors.Is(err, core.ErrBudgetExhausted):
		o.status = "exhausted"
	default:
		o.status = "failed"
	}
	return o
}
