// Package calibrate is the simulation-based calibration harness for the
// statistical machinery of the paper. It generates synthetic performance
// populations whose true optimum (right endpoint) is known analytically,
// drives the full evt.Analyze pipeline and the core iterative loop over
// thousands of seeded replications, and reports how the method's *claims*
// hold up empirically: does the 95% Wilks interval cover the true optimum
// 95% of the time, how biased is the UPB point estimate, do the three GPD
// estimators agree, how sensitive is everything to threshold selection, and
// does the iterative algorithm's stopping rule keep its promised loss bound.
//
// The discipline mirrors simulation-based calibration for Bayesian
// inference and the known-optimal-baseline methodology of the scheduling
// literature: if the machinery is correct, its long-run frequencies must
// match its stated confidence levels on populations where the truth is
// known by construction.
package calibrate

import (
	"fmt"
	"math"
	"math/rand"

	"optassign/internal/evt"
	"optassign/internal/search"
)

// Population is a synthetic performance distribution with an analytically
// known right endpoint (the "true optimal performance").
type Population interface {
	// Name identifies the population in reports.
	Name() string
	// TrueOptimum is the exact right endpoint of the distribution.
	TrueOptimum() float64
	// Sample draws n i.i.d. observations using rng.
	Sample(rng *rand.Rand, n int) []float64
}

// GPDPopulation is an exactly-GPD population: X = Loc + G with
// G ~ GPD(ξ, σ), ξ < 0. Its right endpoint is Loc + σ/|ξ| and — by GPD
// threshold stability — the exceedances over *any* threshold u are again
// exactly GPD(ξ, σ + ξ(u−Loc)). The POT model therefore holds without
// approximation at every threshold the selector might pick, which makes
// this the sharpest calibration target: any coverage shortfall is the
// estimator's, not the model's.
type GPDPopulation struct {
	Loc  float64 // location shift (performance floor)
	Tail evt.GPD // must have Xi < 0
}

// Name implements Population.
func (p GPDPopulation) Name() string {
	return fmt.Sprintf("gpd(ξ=%g,σ=%g,loc=%g)", p.Tail.Xi, p.Tail.Sigma, p.Loc)
}

// TrueOptimum implements Population.
func (p GPDPopulation) TrueOptimum() float64 { return p.Loc + p.Tail.RightEndpoint() }

// Sample implements Population.
func (p GPDPopulation) Sample(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = p.Loc + p.Tail.Rand(rng)
	}
	return xs
}

// Validate checks that the population has a finite right endpoint.
func (p GPDPopulation) Validate() error {
	if err := p.Tail.Validate(); err != nil {
		return err
	}
	if p.Tail.Xi >= 0 {
		return fmt.Errorf("calibrate: GPD population needs ξ < 0, got %g", p.Tail.Xi)
	}
	return nil
}

// MixtureComponent is one truncated power-function component of a
// MixturePopulation: F(x) = 1 − (1 − x/W)^K on [0, W]. Near the shared
// endpoint W its survival function behaves like (1 − x/W)^K, i.e. a
// regularly-varying-at-the-endpoint tail with EVT shape ξ = −1/K.
type MixtureComponent struct {
	Weight float64 // relative mixing weight, > 0
	K      float64 // tail exponent, > 0
}

// MixturePopulation mixes truncated power-function components that share
// one right endpoint W. Unlike GPDPopulation the POT model holds only
// *asymptotically* here — the mixture's tail is in the domain of attraction
// of the GPD with ξ = −1/max K (the slowest-vanishing component dominates
// close to W) but is not GPD at any finite threshold. It probes the
// pipeline's robustness to realistic model misspecification.
type MixturePopulation struct {
	W          float64 // shared right endpoint (true optimum)
	Components []MixtureComponent
}

// Name implements Population.
func (p MixturePopulation) Name() string {
	return fmt.Sprintf("mixture(W=%g,%d components)", p.W, len(p.Components))
}

// TrueOptimum implements Population.
func (p MixturePopulation) TrueOptimum() float64 { return p.W }

// Validate checks weights and exponents.
func (p MixturePopulation) Validate() error {
	if !(p.W > 0) {
		return fmt.Errorf("calibrate: mixture endpoint must be positive, got %g", p.W)
	}
	if len(p.Components) == 0 {
		return fmt.Errorf("calibrate: mixture needs at least one component")
	}
	for _, c := range p.Components {
		if !(c.Weight > 0) || !(c.K > 0) {
			return fmt.Errorf("calibrate: mixture component weights and exponents must be positive: %+v", c)
		}
	}
	return nil
}

// Sample implements Population by inversion per component: component j is
// chosen with probability Weight_j/ΣWeight, then x = W·(1 − (1−U)^{1/K_j}).
func (p MixturePopulation) Sample(rng *rand.Rand, n int) []float64 {
	total := 0.0
	for _, c := range p.Components {
		total += c.Weight
	}
	xs := make([]float64, n)
	for i := range xs {
		pick := rng.Float64() * total
		comp := p.Components[len(p.Components)-1]
		for _, c := range p.Components {
			if pick < c.Weight {
				comp = c
				break
			}
			pick -= c.Weight
		}
		u := rng.Float64()
		xs[i] = p.W * (1 - math.Pow(1-u, 1/comp.K))
	}
	return xs
}

// repSeed derives the RNG seed of replication rep from the campaign base
// seed. It delegates to search.RepSeed — the project's single documented
// derivation (a splitmix64 finalizer) — so calibration campaigns and every
// other derived stream agree on how seeds split. Derived streams are
// deterministic, order-independent (replication 7 gets the same seed
// whether it runs first or last, serially or on any worker) and well
// de-correlated — a plain base+rep would hand adjacent replications nearly
// identical rand.Source states.
func repSeed(base int64, rep int) int64 {
	return search.RepSeed(base, rep)
}
