package calibrate

import (
	"testing"

	"optassign/internal/search"
	"optassign/internal/t2"
)

// TestSearchSeedAgreement is the cross-package seed-derivation regression:
// calibrate's per-replication seeds and search.RepSeed must be the same
// function. If either side ever grows its own derivation again, derived
// streams silently diverge between the calibration harness and the engine.
func TestSearchSeedAgreement(t *testing.T) {
	for _, base := range []int64{0, 1, -1, 7, 1 << 40} {
		for _, rep := range []int{0, 1, 2, 100, 99999} {
			if got, want := repSeed(base, rep), search.RepSeed(base, rep); got != want {
				t.Fatalf("repSeed(%d,%d)=%d, search.RepSeed=%d", base, rep, got, want)
			}
		}
	}
	// And the derivation actually de-correlates adjacent streams.
	if repSeed(7, 0) == repSeed(7, 1) || repSeed(7, 0) == repSeed(8, 0) {
		t.Fatal("adjacent derived seeds collide")
	}
}

// TestStrategyCoverageGate is the CI gate for the tail-safety contract:
// every tail-safe strategy's non-explore draws must leave the EVT
// machinery's coverage inside the [0.93, 0.97] band on a continuous
// known-endpoint landscape. A deterministic pinned slice of the full
// study (cmd/calibrate -scenario search); drift in either direction means
// a strategy's draw distribution changed and must be re-judged.
func TestStrategyCoverageGate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~3M simulated measurements")
	}
	cfg, _, covPop, err := BuiltinSearchStudy()
	if err != nil {
		t.Fatal(err)
	}
	// Pinned outcome of the exact BuiltinSearchStudy coverage
	// configuration (replications=300, tail n=2000, seed=7, cap=0.10).
	pinned := map[string]int{"uniform": 286, "stratified": 290, "greedy": 291}
	for _, spec := range BuiltinStrategies() {
		strat, err := spec.New()
		if err != nil {
			t.Fatal(err)
		}
		if !strat.TailSafe() {
			continue
		}
		cc := cfg.Coverage
		cc.StrategyName = spec.Name
		if spec.Name != "uniform" {
			cc.NewStrategy = spec.New
		}
		res, err := RunSearchCoverage(cc, covPop)
		if err != nil {
			t.Fatal(err)
		}
		if res.Analyzed != res.Replications {
			t.Errorf("%s: %d of %d replications rejected", spec.Name, res.Replications-res.Analyzed, res.Replications)
		}
		if res.Coverage < 0.93 || res.Coverage > 0.97 {
			t.Errorf("%s: coverage %.4f outside the [0.93, 0.97] band", spec.Name, res.Coverage)
		}
		if want := pinned[spec.Name]; res.Covered != want {
			t.Errorf("%s: pinned coverage drifted: covered %d/%d, want %d", spec.Name, res.Covered, res.Analyzed, want)
		}
	}
}

// TestGreedyNoTailBias proves the Explore exclusion is load-bearing: on a
// smooth landscape where hill climbing genuinely works, the greedy
// strategy's *clean* fit (exploration excluded) behaves like uniform's,
// while deliberately contaminating the fit with the exploration draws
// destroys it. The additive landscape is misspecified for the GPD on
// purpose — comparing greedy to uniform on the same landscape cancels the
// misspecification, isolating the strategy's contribution.
func TestGreedyNoTailBias(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~1M simulated measurements")
	}
	pop, err := NewAdditivePopulation(t2.UltraSPARCT2(), 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	base := SearchCoverageConfig{Replications: 200, TailN: 2000, Seed: 7}
	base.POT.Threshold.MaxExceedFraction = 0.10
	greedy := func() (search.Strategy, error) { return search.New("greedy", nil, nil) }

	run := func(name string, newS func() (search.Strategy, error), contaminate bool) SearchCoverageResult {
		cfg := base
		cfg.StrategyName = name
		cfg.NewStrategy = newS
		cfg.IncludeExplore = contaminate
		r, err := RunSearchCoverage(cfg, pop)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	uniform := run("uniform", nil, false)
	clean := run("greedy", greedy, false)
	dirty := run("greedy-contaminated", greedy, true)

	// Clean greedy must track uniform on the identical landscape: its
	// non-explore draws are the same i.i.d. sample, so any gap beyond
	// noise is exploration leaking into the fit.
	if d := clean.Coverage - uniform.Coverage; d < -0.03 || d > 0.03 {
		t.Errorf("clean greedy coverage %.4f drifted %.4f from uniform %.4f (|Δ| budget 0.03)",
			clean.Coverage, d, uniform.Coverage)
	}
	// The contamination probe must visibly fail — either the estimator's
	// degeneracy guards reject the clustered exploration sample outright,
	// or whatever fits still get through cover far below nominal. If this
	// ever passes cleanly, the Explore flag has stopped reaching the fit.
	contaminationCaught := dirty.Analyzed < dirty.Replications/2 ||
		(dirty.Analyzed > 0 && dirty.Coverage < 0.5)
	if !contaminationCaught {
		t.Errorf("contaminated fit looked healthy: analyzed %d/%d, coverage %.4f — Explore draws are not being excluded or detected",
			dirty.Analyzed, dirty.Replications, dirty.Coverage)
	}
	// Pin the current deterministic outcome: every contaminated
	// replication is rejected by the degenerate-tail guard (exploration
	// draws cluster on near-identical values around the incumbent).
	if dirty.Analyzed != 0 || dirty.Rejections["degenerate_tail"] != 200 {
		t.Errorf("pinned contamination outcome drifted: analyzed=%d rejections=%v, want 0 analyzed, 200 degenerate_tail",
			dirty.Analyzed, dirty.Rejections)
	}
}

// TestSearchStudyEfficiencyGate is the headline acceptance gate in test
// form: at least one tail-safe non-uniform strategy must reach the same
// realized-loss promise as uniform with >= 25% fewer measurements and
// zero violations, on the enumerated known-optimum population. The
// full-output twin runs in CI as `calibrate -scenario search
// -search-speedup 0.25`.
func TestSearchStudyEfficiencyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the enumerated testbed population and runs 600 campaigns")
	}
	cfg, pop, _, err := BuiltinSearchStudy()
	if err != nil {
		t.Fatal(err)
	}
	cfg.SkipCoverage = true
	res, err := RunSearchStudy(cfg, pop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestStrategy == "" || res.BestSavingsPct < 25 {
		t.Fatalf("no strategy met the efficiency bar: best=%q savings=%.1f%%, want >= 25%%",
			res.BestStrategy, res.BestSavingsPct)
	}
	for _, ir := range res.Efficiency {
		if ir.Strategy != res.BestStrategy {
			continue
		}
		if ir.Violations != 0 {
			t.Errorf("winning strategy %s broke the loss promise %d times", ir.Strategy, ir.Violations)
		}
		if ir.Satisfied != ir.Replications {
			t.Errorf("winning strategy %s satisfied only %d/%d campaigns", ir.Strategy, ir.Satisfied, ir.Replications)
		}
	}
	// Pin the winner so silent regressions in either direction surface.
	if res.BestStrategy != "stratified" {
		t.Errorf("pinned winner drifted: %s (%.1f%% savings), want stratified", res.BestStrategy, res.BestSavingsPct)
	}
}
