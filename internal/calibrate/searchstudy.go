package calibrate

import (
	"fmt"
	"io"

	"optassign/internal/search"
)

// StrategySpec names a strategy factory for the comparison studies.
// Strategies are stateful, so every replication gets a fresh instance.
type StrategySpec struct {
	Name string
	New  func() (search.Strategy, error)
}

// BuiltinStrategies returns the four built-in strategies at their default
// parameters, uniform first (it is the baseline every comparison is
// relative to).
func BuiltinStrategies() []StrategySpec {
	specs := make([]StrategySpec, 0, len(search.Names))
	for _, name := range search.Names {
		name := name
		specs = append(specs, StrategySpec{
			Name: name,
			New:  func() (search.Strategy, error) { return search.New(name, nil, nil) },
		})
	}
	return specs
}

// SearchStudyConfig parameterizes the head-to-head strategy study: every
// strategy runs the full iterative campaign against the same known-optimum
// population, and every tail-safe strategy additionally runs the coverage
// calibration on a continuous landscape.
type SearchStudyConfig struct {
	// Strategies to compare; nil means BuiltinStrategies().
	Strategies []StrategySpec
	// Iter configures the per-strategy efficiency campaigns (the strategy
	// fields are overwritten per entry).
	Iter IterConfig
	// Coverage configures the per-strategy coverage calibration (ditto).
	Coverage SearchCoverageConfig
	// SkipCoverage drops the coverage half (for quick efficiency-only
	// runs).
	SkipCoverage bool
}

// SearchStudyResult reports the head-to-head comparison.
type SearchStudyResult struct {
	Efficiency []IterResult           `json:"efficiency"`
	Coverage   []SearchCoverageResult `json:"coverage,omitempty"`
	// UniformMeanSamples is the baseline cost; BestStrategy/BestSavingsPct
	// name the tail-safe, zero-violation strategy with the largest mean
	// measurement savings over uniform (savings ≤ 0 if none beats it).
	UniformMeanSamples float64 `json:"uniform_mean_samples"`
	BestStrategy       string  `json:"best_strategy"`
	BestSavingsPct     float64 `json:"best_savings_pct"`
}

// RunSearchStudy runs the strategy comparison: efficiency on effPop (the
// enumerated discrete population — the realistic tied landscape) and
// coverage on covPop (a continuous landscape, so coverage is measured
// against the analytic endpoint rather than a tie-dominated finite max).
func RunSearchStudy(cfg SearchStudyConfig, effPop *DiscretePopulation, covPop AssignPop) (SearchStudyResult, error) {
	specs := cfg.Strategies
	if specs == nil {
		specs = BuiltinStrategies()
	}
	var res SearchStudyResult
	for _, spec := range specs {
		ic := cfg.Iter
		ic.StrategyName = spec.Name
		if spec.Name != "uniform" {
			ic.NewStrategy = spec.New
		}
		ir, err := RunIterative(ic, effPop)
		if err != nil {
			return SearchStudyResult{}, fmt.Errorf("calibrate: efficiency study, strategy %s: %w", spec.Name, err)
		}
		res.Efficiency = append(res.Efficiency, ir)
		if spec.Name == "uniform" {
			res.UniformMeanSamples = ir.MeanSamples
		}
	}
	for _, ir := range res.Efficiency {
		if ir.Strategy == "uniform" || ir.Violations > 0 || ir.Satisfied == 0 {
			continue
		}
		savings := (1 - ir.MeanSamples/res.UniformMeanSamples) * 100
		if savings > res.BestSavingsPct {
			res.BestSavingsPct = savings
			res.BestStrategy = ir.Strategy
		}
	}
	if !cfg.SkipCoverage {
		for _, spec := range specs {
			strat, err := spec.New()
			if err != nil {
				return SearchStudyResult{}, err
			}
			if !strat.TailSafe() {
				continue // no EVT fit to calibrate
			}
			cc := cfg.Coverage
			cc.StrategyName = spec.Name
			if spec.Name != "uniform" {
				cc.NewStrategy = spec.New
			}
			cr, err := RunSearchCoverage(cc, covPop)
			if err != nil {
				return SearchStudyResult{}, fmt.Errorf("calibrate: coverage study, strategy %s: %w", spec.Name, err)
			}
			res.Coverage = append(res.Coverage, cr)
		}
	}
	return res, nil
}

// PrintSearchCoverage renders one strategy-driven coverage result.
func PrintSearchCoverage(w io.Writer, r SearchCoverageResult) {
	fmt.Fprintf(w, "scenario      %s\n", r.Scenario)
	fmt.Fprintf(w, "strategy      %s\n", r.Strategy)
	fmt.Fprintf(w, "true optimum  %.6g\n", r.TrueOptimum)
	fmt.Fprintf(w, "replications  %d (analyzed %d, tail n=%d per replication)\n", r.Replications, r.Analyzed, r.TailN)
	fmt.Fprintf(w, "coverage      %.4f  (SE %.4f, %d/%d covered)\n", r.Coverage, r.CoverageSE, r.Covered, r.Analyzed)
	fmt.Fprintf(w, "UPB bias      %+.3f%% mean\n", r.MeanBiasPct)
	fmt.Fprintf(w, "CI width      %.3f%% of optimum (mean over finite), %d unbounded above\n", r.MeanWidthPct, r.UnboundedHi)
	fmt.Fprintf(w, "cost          %.0f draws per replication (mean) for %d tail points\n", r.MeanDraws, r.TailN)
	for cause, n := range r.Rejections {
		fmt.Fprintf(w, "rejected      %d × %s\n", n, cause)
	}
}

// PrintSearchStudy renders the head-to-head comparison table.
func PrintSearchStudy(w io.Writer, r SearchStudyResult) {
	fmt.Fprintf(w, "strategy efficiency (same promise, same population):\n")
	fmt.Fprintf(w, "  %-12s %9s %9s %9s %9s %11s %9s\n",
		"strategy", "satisfied", "exhausted", "violations", "samples", "vs uniform", "loss%")
	for _, ir := range r.Efficiency {
		vs := "baseline"
		if ir.Strategy != "uniform" && r.UniformMeanSamples > 0 {
			vs = fmt.Sprintf("%+.1f%%", (ir.MeanSamples/r.UniformMeanSamples-1)*100)
		}
		fmt.Fprintf(w, "  %-12s %9d %9d %9d %9.0f %11s %9.3f\n",
			ir.Strategy, ir.Satisfied, ir.Exhausted, ir.Violations, ir.MeanSamples, vs, ir.MeanRealizedLossPct)
	}
	if r.BestStrategy != "" {
		fmt.Fprintf(w, "  best: %s, %.1f%% fewer measurements than uniform with zero violations\n",
			r.BestStrategy, r.BestSavingsPct)
	} else {
		fmt.Fprintf(w, "  best: none — no tail-safe strategy beat uniform without violations\n")
	}
	if len(r.Coverage) > 0 {
		fmt.Fprintf(w, "strategy coverage (tail-safe strategies, continuous landscape):\n")
		fmt.Fprintf(w, "  %-12s %9s %9s %9s %9s\n", "strategy", "coverage", "SE", "bias%", "draws")
		for _, cr := range r.Coverage {
			fmt.Fprintf(w, "  %-12s %9.4f %9.4f %+9.3f %9.0f\n",
				cr.Strategy, cr.Coverage, cr.CoverageSE, cr.MeanBiasPct, cr.MeanDraws)
		}
	}
}
