package calibrate

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/evt"
)

func TestGPDPopulationExactness(t *testing.T) {
	pop := GPDPopulation{Loc: 100, Tail: evt.GPD{Xi: -0.3, Sigma: 30}}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 100 + 30/0.3
	if got := pop.TrueOptimum(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TrueOptimum = %v, want %v", got, want)
	}
	rng := rand.New(rand.NewSource(3))
	xs := pop.Sample(rng, 5000)
	for _, x := range xs {
		if x < 100 || x > want {
			t.Fatalf("sample %v outside [100, %v]", x, want)
		}
	}
	if err := (GPDPopulation{Tail: evt.GPD{Xi: 0.1, Sigma: 1}}).Validate(); err == nil {
		t.Error("unbounded tail must fail validation")
	}
}

func TestMixturePopulationBounds(t *testing.T) {
	pop := MixturePopulation{W: 1000, Components: []MixtureComponent{
		{Weight: 0.5, K: 2}, {Weight: 0.5, K: 8},
	}}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	if pop.TrueOptimum() != 1000 {
		t.Errorf("TrueOptimum = %v", pop.TrueOptimum())
	}
	rng := rand.New(rand.NewSource(5))
	xs := pop.Sample(rng, 5000)
	best := 0.0
	for _, x := range xs {
		if x < 0 || x >= 1000 {
			t.Fatalf("sample %v outside [0, 1000)", x)
		}
		if x > best {
			best = x
		}
	}
	// The endpoint is approachable: large samples get close to W.
	if best < 900 {
		t.Errorf("best of 5000 draws = %v, expected to approach 1000", best)
	}
	if err := (MixturePopulation{W: 1000}).Validate(); err == nil {
		t.Error("empty mixture must fail validation")
	}
}

func TestRepSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]bool)
	for r := 0; r < 1000; r++ {
		s := repSeed(1, r)
		if seen[s] {
			t.Fatalf("seed collision at replication %d", r)
		}
		seen[s] = true
	}
	if repSeed(1, 0) == repSeed(2, 0) {
		t.Error("different base seeds must derive different streams")
	}
	// Stability: derived seeds are part of the reproducibility contract —
	// a silent change would shift every pinned calibration number.
	if got := repSeed(1, 0); got != repSeed(1, 0) {
		t.Errorf("repSeed not deterministic: %d", got)
	}
}

func TestRunWorkerInvariance(t *testing.T) {
	pop := GPDPopulation{Loc: 100, Tail: evt.GPD{Xi: -0.3, Sigma: 30}}
	base := Config{Replications: 60, N: 600, Seed: 11}
	base.POT.Threshold.MaxExceedFraction = 0.10
	serial, parallel := base, base
	serial.Workers = 1
	parallel.Workers = 8
	a, err := Run(serial, pop)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(parallel, pop)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("results differ across worker counts:\n1 worker:  %+v\n8 workers: %+v", a, b)
	}
}

// TestCoverageGateGPD is the CI coverage-regression gate: a fast
// deterministic slice of the exact-GPD calibration with its outcome pinned
// to the integer. The full-scale acceptance run (2000 replications) lives
// in cmd/calibrate and EXPERIMENTS.md; this slice re-runs on every commit
// and fails if estimator or threshold changes move coverage at all.
func TestCoverageGateGPD(t *testing.T) {
	sc, err := BuiltinScenario("gpd")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Replications: 150, N: sc.N, Seed: 7, POT: sc.POT}, sc.Pop)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned outcome of this exact configuration (replications=150, n=2000,
	// seed=7, cap=0.10). Any drift means the pipeline's statistical
	// behaviour changed and the full calibration must be re-run and
	// re-judged — deliberately including drift *upward*.
	if res.Analyzed != 150 || res.Covered != 143 {
		t.Errorf("pinned coverage drifted: covered %d/%d, want 143/150", res.Covered, res.Analyzed)
	}
	if res.UnboundedHi != 0 {
		t.Errorf("pinned gate had no unbounded intervals, got %d", res.UnboundedHi)
	}
	// Nominal-coverage floor, the regression gate proper: 143/150 = 0.9533
	// against nominal 0.95. The floor leaves 2σ of slack below the pin so
	// an intentional re-pin after a justified change still has room.
	if res.Coverage < 0.93 {
		t.Errorf("coverage %.4f fell below the 0.93 floor", res.Coverage)
	}
}

// TestStoppingRuleGate pins the iterative algorithm's promise on the
// discrete population: stopped-satisfied campaigns must realize a loss
// within the promised bound.
func TestStoppingRuleGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the enumerated testbed population")
	}
	sc, err := BuiltinScenario("discrete")
	if err != nil {
		t.Fatal(err)
	}
	pop := sc.Pop.(*DiscretePopulation)
	res, err := RunIterative(IterConfig{Replications: 25, Seed: 7}, pop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied != 24 || res.Exhausted != 1 || res.Failed != 0 {
		t.Errorf("pinned outcomes drifted: satisfied=%d exhausted=%d failed=%d, want 24/1/0",
			res.Satisfied, res.Exhausted, res.Failed)
	}
	if res.Violations != 0 {
		t.Errorf("%d satisfied campaigns broke the promised %v%% loss bound", res.Violations, res.AcceptLossPct)
	}
	if res.MaxRealizedLossPct > res.AcceptLossPct {
		t.Errorf("worst realized loss %.3f%% exceeds promise %.1f%%", res.MaxRealizedLossPct, res.AcceptLossPct)
	}
}

func TestDiscretePopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the enumerated testbed population")
	}
	sc, err := BuiltinScenario("discrete")
	if err != nil {
		t.Fatal(err)
	}
	pop := sc.Pop.(*DiscretePopulation)
	if pop.Classes() < 100 {
		t.Fatalf("only %d classes enumerated", pop.Classes())
	}
	vals := pop.Values()
	if got := vals[len(vals)-1]; got != pop.TrueOptimum() {
		t.Errorf("TrueOptimum %v != max class value %v", pop.TrueOptimum(), got)
	}
	inPop := make(map[float64]bool, len(vals))
	for _, v := range vals {
		inPop[v] = true
	}
	rng := rand.New(rand.NewSource(9))
	for _, x := range pop.Sample(rng, 500) {
		if !inPop[x] {
			t.Fatalf("draw %v is not a class value", x)
		}
	}
	// The runner serves exactly the class map.
	runner := pop.Runner()
	a, err := assign.Random(rng, pop.Topo(), pop.Tasks())
	if err != nil {
		t.Fatal(err)
	}
	v, err := runner.Measure(a)
	if err != nil {
		t.Fatal(err)
	}
	if !inPop[v] {
		t.Errorf("runner served %v, not a class value", v)
	}
}

// degeneratePop draws all-equal samples: every replication must be
// rejected cleanly, never crash or emit NaN.
type degeneratePop struct{}

func (degeneratePop) Name() string         { return "degenerate" }
func (degeneratePop) TrueOptimum() float64 { return 1 }
func (degeneratePop) Sample(_ *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1
	}
	return xs
}

func TestRunRejectionTally(t *testing.T) {
	res, err := Run(Config{Replications: 10, N: 500, Seed: 1}, degeneratePop{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyzed != 0 {
		t.Errorf("analyzed %d degenerate replications", res.Analyzed)
	}
	total := 0
	for _, n := range res.Rejections {
		total += n
	}
	if total != 10 {
		t.Errorf("rejection tally %v does not account for all 10 replications", res.Rejections)
	}
}

func TestSensitivity(t *testing.T) {
	pop := GPDPopulation{Loc: 100, Tail: evt.GPD{Xi: -0.3, Sigma: 30}}
	results, err := Sensitivity(Config{Replications: 30, N: 600, Seed: 3}, pop, []float64{0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for i, frac := range []string{"0.05", "0.1"} {
		if results[i].Replications != 30 {
			t.Errorf("result %d replications = %d", i, results[i].Replications)
		}
		if want := "@cap=" + frac; len(results[i].Scenario) == 0 || !containsStr(results[i].Scenario, want) {
			t.Errorf("result %d scenario %q missing %q", i, results[i].Scenario, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
