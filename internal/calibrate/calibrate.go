package calibrate

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"optassign/internal/evt"
)

// Config parameterizes a coverage calibration run.
type Config struct {
	// Replications is the number of independent synthetic campaigns
	// (default 1000).
	Replications int
	// N is the sample size per replication (default 1000, the paper's
	// initial sample size).
	N int
	// Seed derives every replication's RNG stream.
	Seed int64
	// POT configures the pipeline under test; the zero value is the
	// production default (RuleAuto, 5% cap, 95% confidence).
	POT evt.POTOptions
	// Workers bounds the replication fan-out (default GOMAXPROCS). The
	// result is byte-identical for every worker count: replication r always
	// uses repSeed(Seed, r) and reductions run serially in replication
	// order.
	Workers int
	// Metrics, when non-nil, publishes live progress counters. It never
	// influences results.
	Metrics *Metrics
}

func (c Config) withDefaults() Config {
	if c.Replications <= 0 {
		c.Replications = 1000
	}
	if c.N <= 0 {
		c.N = 1000
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Result aggregates one scenario's calibration outcome.
type Result struct {
	Scenario    string  `json:"scenario"`
	TrueOptimum float64 `json:"true_optimum"`
	// Replications is the number attempted; Analyzed the number on which
	// evt.Analyze produced a report (the rest are tallied in Rejections).
	Replications int `json:"replications"`
	Analyzed     int `json:"analyzed"`
	N            int `json:"n"`

	// Nominal is the configured confidence level; Covered counts analyzed
	// replications whose interval contained the true optimum, and Coverage
	// is the empirical rate Covered/Analyzed with binomial standard error
	// CoverageSE.
	Nominal    float64 `json:"nominal"`
	Covered    int     `json:"covered"`
	Coverage   float64 `json:"coverage"`
	CoverageSE float64 `json:"coverage_se"`

	// MeanBiasPct is the mean signed error of the UPB point estimate,
	// (point − true)/true·100; MeanAbsErrPct the mean absolute error. Both
	// are over analyzed replications.
	MeanBiasPct   float64 `json:"mean_bias_pct"`
	MeanAbsErrPct float64 `json:"mean_abs_err_pct"`

	// MeanWidthPct is the mean CI width as a percentage of the true
	// optimum, over replications with a finite upper bound; UnboundedHi
	// counts intervals whose upper bound was +Inf (the ξ→0 degradation).
	// Unbounded intervals trivially cover from above, so both numbers are
	// reported rather than folded together.
	MeanWidthPct float64 `json:"mean_width_pct"`
	UnboundedHi  int     `json:"unbounded_hi"`

	// Rejections tallies failed replications by cause.
	Rejections map[string]int `json:"rejections,omitempty"`

	// Estimators reports cross-estimator agreement on the analyzed
	// replications.
	Estimators []EstimatorAgreement `json:"estimators,omitempty"`
}

// EstimatorAgreement summarizes one alternative estimator (PWM or moments)
// against the MLE that drives the pipeline.
type EstimatorAgreement struct {
	Method string `json:"method"`
	// Accepted counts replications where the estimator produced a fit;
	// Rejected counts typed refusals (degenerate tail, moments validity
	// wall, ...).
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	// MeanAbsXiDiff is the mean |ξ̂_method − ξ̂_mle| over accepted
	// replications; MeanAbsUPBDiffPct the mean UPB disagreement as a
	// percentage of the true optimum (bounded fits only).
	MeanAbsXiDiff     float64 `json:"mean_abs_xi_diff"`
	MeanAbsUPBDiffPct float64 `json:"mean_abs_upb_diff_pct"`
}

// repOutcome is one replication's raw record, reduced serially after the
// fan-out so float accumulation order never depends on scheduling.
type repOutcome struct {
	ok        bool
	rejection string
	covered   bool
	point     float64
	lo, hi    float64
	est       []evt.EstimatorDiag
}

// Run executes the coverage calibration of pop under cfg: for each
// replication it draws an n-sample with that replication's derived seed,
// runs the full evt.Analyze pipeline, and checks the Wilks interval
// against the analytically known optimum.
func Run(cfg Config, pop Population) (Result, error) {
	cfg = cfg.withDefaults()
	truth := pop.TrueOptimum()
	if math.IsNaN(truth) || math.IsInf(truth, 0) {
		return Result{}, fmt.Errorf("calibrate: population %s has non-finite optimum %v", pop.Name(), truth)
	}
	alpha := cfg.POT.Alpha
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}

	outcomes := make([]repOutcome, cfg.Replications)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for r := 0; r < cfg.Replications; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			outcomes[r] = replicate(cfg, pop, truth, r)
			if m := cfg.Metrics; m != nil {
				m.Replications.Inc()
				if outcomes[r].covered {
					m.Covered.Inc()
				}
				if !outcomes[r].ok {
					m.Rejected.Inc()
				}
			}
		}(r)
	}
	wg.Wait()

	res := Result{
		Scenario:     pop.Name(),
		TrueOptimum:  truth,
		Replications: cfg.Replications,
		N:            cfg.N,
		Nominal:      1 - alpha,
		Rejections:   make(map[string]int),
	}
	agree := map[string]*EstimatorAgreement{
		"pwm":     {Method: "pwm"},
		"moments": {Method: "moments"},
	}
	var sumBias, sumAbs, sumWidth float64
	finiteWidths := 0
	for _, o := range outcomes {
		if !o.ok {
			res.Rejections[o.rejection]++
			continue
		}
		res.Analyzed++
		if o.covered {
			res.Covered++
		}
		sumBias += (o.point - truth) / truth * 100
		sumAbs += math.Abs(o.point-truth) / truth * 100
		if math.IsInf(o.hi, 1) {
			res.UnboundedHi++
		} else {
			sumWidth += (o.hi - o.lo) / truth * 100
			finiteWidths++
		}
		var mle *evt.EstimatorDiag
		for i := range o.est {
			if o.est[i].Method == "mle" {
				mle = &o.est[i]
			}
		}
		for i := range o.est {
			d := o.est[i]
			a := agree[d.Method]
			if a == nil {
				continue
			}
			if d.Rejected {
				a.Rejected++
				continue
			}
			a.Accepted++
			if mle != nil {
				a.MeanAbsXiDiff += math.Abs(d.Xi - mle.Xi)
				if d.Bounded && mle.Bounded {
					a.MeanAbsUPBDiffPct += math.Abs(d.UPB-mle.UPB) / truth * 100
				}
			}
		}
	}
	if res.Analyzed > 0 {
		res.Coverage = float64(res.Covered) / float64(res.Analyzed)
		res.CoverageSE = math.Sqrt(res.Coverage * (1 - res.Coverage) / float64(res.Analyzed))
		res.MeanBiasPct = sumBias / float64(res.Analyzed)
		res.MeanAbsErrPct = sumAbs / float64(res.Analyzed)
	}
	if finiteWidths > 0 {
		res.MeanWidthPct = sumWidth / float64(finiteWidths)
	}
	for _, method := range []string{"pwm", "moments"} {
		a := agree[method]
		if a.Accepted > 0 {
			a.MeanAbsXiDiff /= float64(a.Accepted)
			a.MeanAbsUPBDiffPct /= float64(a.Accepted)
		}
		res.Estimators = append(res.Estimators, *a)
	}
	if m := cfg.Metrics; m != nil && res.Analyzed > 0 {
		m.Coverage.Set(res.Coverage)
	}
	return res, nil
}

// replicate runs one synthetic campaign.
func replicate(cfg Config, pop Population, truth float64, r int) repOutcome {
	gen := rand.New(rand.NewSource(repSeed(cfg.Seed, r)))
	xs := pop.Sample(gen, cfg.N)
	rep, err := evt.Analyze(xs, cfg.POT)
	if err != nil {
		return repOutcome{rejection: rejectionCategory(err)}
	}
	return repOutcome{
		ok:      true,
		covered: rep.UPB.Lo <= truth && truth <= rep.UPB.Hi,
		point:   rep.UPB.Point,
		lo:      rep.UPB.Lo,
		hi:      rep.UPB.Hi,
		est:     rep.Estimators,
	}
}

// rejectionCategory buckets an Analyze error for the Rejections tally.
func rejectionCategory(err error) string {
	switch {
	case errors.Is(err, evt.ErrDegenerateTail):
		return "degenerate_tail"
	case errors.Is(err, evt.ErrSampleTooSmall):
		return "sample_too_small"
	case errors.Is(err, evt.ErrUnboundedTail):
		return "unbounded_tail"
	default:
		return "other"
	}
}

// Sensitivity reruns the coverage study across threshold caps: one Result
// per MaxExceedFraction in fractions, everything else held fixed. It
// quantifies §3.3.2 Step 2's judgment call — how much the guarantee moves
// when the threshold keeps more or less of the tail.
func Sensitivity(cfg Config, pop Population, fractions []float64) ([]Result, error) {
	out := make([]Result, 0, len(fractions))
	for _, f := range fractions {
		c := cfg
		c.POT.Threshold.MaxExceedFraction = f
		res, err := Run(c, pop)
		if err != nil {
			return nil, fmt.Errorf("calibrate: sensitivity at fraction %g: %w", f, err)
		}
		res.Scenario = fmt.Sprintf("%s @cap=%g", pop.Name(), f)
		out = append(out, res)
	}
	return out, nil
}
