package calibrate

import (
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/stats"
	"optassign/internal/t2"
)

// DiscretePopulation is an assignment-like population: the finite set of
// canonical assignment classes of a simulated testbed, each with its
// class-deterministic measured performance. A draw is a uniformly random
// assignment mapped to its class value — exactly the sampling process of
// the real method — so the sample is heavily tied (thousands of draws
// collapse onto ~1.5k distinct values) and quantized, the regime that
// stresses threshold tie handling and degenerate-tail guards. The true
// optimum is the exhaustive maximum over all classes, known by enumeration
// exactly as in the Figure 1 motivation study.
type DiscretePopulation struct {
	name  string
	topo  t2.Topology
	tasks int
	perf  map[string]float64 // canonical class key → measured performance
	best  float64
}

// NewDiscretePopulation enumerates every canonical assignment class of the
// testbed's workload, measures each once with MeasureAnalytic, and returns
// the resulting finite population. With 2 instances (6 tasks) on the full
// T2 this is the ~1.5k-class population of the paper's Figure 1.
func NewDiscretePopulation(tb *netdps.Testbed) (*DiscretePopulation, error) {
	all, err := assign.Enumerate(tb.Machine.Topo, tb.TaskCount(), 0)
	if err != nil {
		return nil, err
	}
	p := &DiscretePopulation{
		name:  fmt.Sprintf("discrete(%s,%d classes)", tb.App.Name(), len(all)),
		topo:  tb.Machine.Topo,
		tasks: tb.TaskCount(),
		perf:  make(map[string]float64, len(all)),
	}
	for _, a := range all {
		v, err := tb.MeasureAnalytic(a)
		if err != nil {
			return nil, err
		}
		p.perf[a.CanonicalKey()] = v
		if v > p.best {
			p.best = v
		}
	}
	return p, nil
}

// Name implements Population.
func (p *DiscretePopulation) Name() string { return p.name }

// TrueOptimum implements Population: the exhaustive maximum over classes.
func (p *DiscretePopulation) TrueOptimum() float64 { return p.best }

// Classes returns the number of distinct canonical classes.
func (p *DiscretePopulation) Classes() int { return len(p.perf) }

// Values returns the sorted distinct class performances (for quantile and
// headroom studies).
func (p *DiscretePopulation) Values() []float64 {
	vs := make([]float64, 0, len(p.perf))
	for _, v := range p.perf {
		vs = append(vs, v)
	}
	return stats.SortedCopy(vs)
}

// Sample implements Population: each draw is a uniformly random assignment
// looked up by canonical class — the same draw distribution core's
// CollectSample uses, without the solver cost.
func (p *DiscretePopulation) Sample(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		a, err := assign.Random(rng, p.topo, p.tasks)
		if err != nil {
			// Topology and task count were validated at construction; a
			// failure here is a programming error.
			panic(err)
		}
		xs[i] = p.perf[a.CanonicalKey()]
	}
	return xs
}

// Topo and Tasks expose the workload shape for driving core.Iterate
// against this population.
func (p *DiscretePopulation) Topo() t2.Topology { return p.topo }

// Tasks returns the workload's task count.
func (p *DiscretePopulation) Tasks() int { return p.tasks }

// Runner returns a core.Runner serving measurements from the precomputed
// class map. It measures identically to the backing testbed (the map holds
// MeasureAnalytic values) at map-lookup cost, so iterative-loop
// calibration can afford thousands of full campaigns.
func (p *DiscretePopulation) Runner() core.Runner {
	return core.RunnerFunc(func(a assign.Assignment) (float64, error) {
		v, ok := p.perf[a.CanonicalKey()]
		if !ok {
			return 0, fmt.Errorf("calibrate: assignment class %q outside the enumerated population", a.CanonicalKey())
		}
		return v, nil
	})
}
