package remote

// Graceful drain at the production default timings (1 s heartbeats, not
// the fast timers the rest of the suite uses), across a registry restart:
// the controller process a member first registered with dies, a new one
// takes over the address, the member re-announces through backoff — and a
// drain requested after all that must still complete promptly while a
// two-worker measurement loop keeps the pool busy.

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"optassign/internal/obs"
)

func TestDrainAtDefaultTimingsSurvivesRegistryRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock test")
	}
	tb, addr, shutdown := startTestbedServer(t, &Server{Name: "sim"})
	defer shutdown()

	events := &obs.CollectorSink{}
	pool := NewPool(PoolConfig{Events: events})
	defer pool.Close()
	reg := NewRegistry(pool, RegistryConfig{Events: events}) // default 1s heartbeat
	defer reg.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go reg.Serve(l)

	regAddr := l.Addr().String()
	registrant, err := NewRegistrant(RegistrantConfig{
		Dial:     func() (net.Conn, error) { return net.Dial("tcp", regAddr) },
		Hello:    Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "sim"},
		Addr:     addr,
		Identity: tb.Identity(),
		Events:   events,
	})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- registrant.Run(runCtx) }()

	if err := pool.WaitReady(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	// Two workers hammer the pool, like the CLI campaign does.
	var stop atomic.Bool
	a := validAssignmentFor(tb.TaskCount())
	for i := 0; i < 2; i++ {
		go func() {
			for !stop.Load() {
				pool.Measure(a)
			}
		}()
	}
	defer stop.Store(true)

	time.Sleep(1500 * time.Millisecond) // let heartbeats flow

	// Registry restart: the first controller exits, a second one starts on
	// the same address, the registrant re-announces after backoff.
	reg.Close()
	l.Close()
	pool.Close()
	time.Sleep(500 * time.Millisecond)
	pool2 := NewPool(PoolConfig{Events: events})
	defer pool2.Close()
	reg2 := NewRegistry(pool2, RegistryConfig{Events: events})
	defer reg2.Close()
	l2, err := net.Listen("tcp", regAddr)
	if err != nil {
		t.Fatal(err)
	}
	go reg2.Serve(l2)
	if err := pool2.WaitReady(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		go func() {
			for !stop.Load() {
				pool2.Measure(a)
			}
		}()
	}
	time.Sleep(1500 * time.Millisecond)

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	start := time.Now()
	if err := registrant.Drain(dctx); err != nil {
		t.Fatalf("drain after %v: %v (events: joins=%d drains=%d left=%d)",
			time.Since(start), err,
			events.Count("member_joined"), events.Count("member_draining"), events.Count("member_left"))
	}
	t.Logf("drain completed in %v", time.Since(start))
	if err := <-runErr; err != nil {
		t.Fatalf("registrant run: %v", err)
	}
}
