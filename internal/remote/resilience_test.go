package remote

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/faulty"
	"optassign/internal/netdps"
	"optassign/internal/t2"
)

// pipeServer runs a scripted fake server on one end of a net.Pipe and
// returns a client on the other. The script gets the raw connection after
// the hello has been sent.
func pipeServer(t *testing.T, hello Hello, script func(conn net.Conn)) *Client {
	t.Helper()
	server, clientConn := net.Pipe()
	go func() {
		enc := json.NewEncoder(server)
		if err := enc.Encode(hello); err != nil {
			server.Close()
			return
		}
		if script != nil {
			script(server)
		}
	}()
	c, err := NewClient(clientConn)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func validHello() Hello {
	return Hello{Topology: t2.UltraSPARCT2(), Tasks: 3, Name: "fake"}
}

func validAssignment() assign.Assignment {
	return assign.Assignment{Topo: t2.UltraSPARCT2(), Ctx: []int{0, 1, 2}}
}

func assertPoisoned(t *testing.T, c *Client) {
	t.Helper()
	// Without a dialer the client must fail fast and permanently; a
	// retry loop should quarantine instead of hammering a dead link.
	_, err := c.Measure(validAssignment())
	if err == nil {
		t.Fatal("poisoned client accepted a measurement")
	}
	if !core.IsPermanent(err) {
		t.Errorf("poisoned dialer-less client returned a transient error: %v", err)
	}
	if !errors.Is(err, ErrStreamBroken) {
		t.Errorf("err = %v, want ErrStreamBroken", err)
	}
}

func TestClientPoisonedByServerDeathMidRequest(t *testing.T) {
	c := pipeServer(t, validHello(), func(conn net.Conn) {
		// Read the request, then die without responding.
		var req Request
		json.NewDecoder(conn).Decode(&req)
		conn.Close()
	})
	defer c.Close()
	_, err := c.Measure(validAssignment())
	if err == nil || !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("err = %v, want stream-broken", err)
	}
	if core.IsPermanent(err) {
		t.Error("first transport error should look transient (a dialer could recover)")
	}
	assertPoisoned(t, c)
}

func TestClientPoisonedByGarbageResponse(t *testing.T) {
	c := pipeServer(t, validHello(), func(conn net.Conn) {
		var req Request
		json.NewDecoder(conn).Decode(&req)
		conn.Write([]byte("@@not-json@@\n"))
	})
	defer c.Close()
	if _, err := c.Measure(validAssignment()); err == nil || !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("err = %v, want stream-broken", err)
	}
	assertPoisoned(t, c)
}

func TestClientPoisonedByMismatchedResponseID(t *testing.T) {
	c := pipeServer(t, validHello(), func(conn net.Conn) {
		dec := json.NewDecoder(conn)
		enc := json.NewEncoder(conn)
		for {
			var req Request
			if dec.Decode(&req) != nil {
				return
			}
			enc.Encode(Response{ID: req.ID + 7, Perf: 1}) // stale/desynced id
		}
	})
	defer c.Close()
	if _, err := c.Measure(validAssignment()); err == nil || !errors.Is(err, ErrStreamBroken) {
		t.Fatalf("err = %v, want stream-broken", err)
	}
	// Even though the fake server keeps answering, the stream is
	// untrusted now: the client must refuse without a reconnect.
	assertPoisoned(t, c)
}

func TestClientContextCancelsInFlightMeasure(t *testing.T) {
	c := pipeServer(t, validHello(), func(conn net.Conn) {
		var req Request
		json.NewDecoder(conn).Decode(&req)
		// Never respond: the measurement hangs server-side.
	})
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.MeasureContext(ctx, validAssignment())
	if err == nil {
		t.Fatal("hung measurement returned success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not cut the hang: %v", elapsed)
	}
}

func startTestbedServer(t *testing.T, srv *Server) (*netdps.Testbed, string, func()) {
	t.Helper()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		t.Fatal(err)
	}
	srv.Runner = tb
	srv.Topo = tb.Machine.Topo
	srv.Tasks = tb.TaskCount()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return tb, l.Addr().String(), func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestClientReconnectsThroughDrops drives a campaign through a proxy that
// kills the connection every few responses: the reconnecting client plus
// a resilient retry wrapper must still deliver the identical sample a
// fault-free run produces.
func TestClientReconnectsThroughDrops(t *testing.T) {
	tb, addr, shutdown := startTestbedServer(t, &Server{Name: "sim"})
	defer shutdown()

	proxy, err := faulty.NewProxy(addr, 6) // hello + 5 responses, then cut
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client, err := DialConfig(ClientConfig{
		Dial:       func() (net.Conn, error) { return net.Dial("tcp", proxy.Addr()) },
		RedialBase: time.Millisecond,
		RedialMax:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resilient := core.NewResilientRunner(client, core.ResilientConfig{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
	})
	const n = 40
	results, skipped, err := core.CollectSampleContext(context.Background(),
		rand.New(rand.NewSource(4)), tb.Machine.Topo, tb.TaskCount(), n, resilient)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("%d measurements quarantined: %v", len(skipped), skipped[0].Err)
	}
	if len(results) != n {
		t.Fatalf("measured %d, want %d", len(results), n)
	}
	if proxy.Cuts() == 0 {
		t.Fatal("proxy never dropped a connection; the test proves nothing")
	}
	// Identical to fault-free local measurements.
	for i, r := range results {
		local, err := tb.Measure(r.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if local != r.Perf {
			t.Fatalf("measurement %d: remote %v != local %v", i, r.Perf, local)
		}
	}
}

func TestReconnectRejectsChangedServer(t *testing.T) {
	tbA, addrA, shutdownA := startTestbedServer(t, &Server{Name: "A"})
	defer shutdownA()
	// Server B announces a different workload (different task count).
	tbB, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 4)
	if err != nil {
		t.Fatal(err)
	}
	srvB := &Server{Runner: tbB, Topo: tbB.Machine.Topo, Tasks: tbB.TaskCount(), Name: "B"}
	lB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	doneB := make(chan error, 1)
	go func() { doneB <- srvB.Serve(lB) }()
	defer func() { srvB.Close(); <-doneB }()

	var dials atomic.Int64
	client, err := DialConfig(ClientConfig{
		Dial: func() (net.Conn, error) {
			if dials.Add(1) == 1 {
				return net.Dial("tcp", addrA)
			}
			return net.Dial("tcp", lB.Addr().String())
		},
		RedialBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rng := rand.New(rand.NewSource(5))
	a, err := assign.RandomPermutation(rng, tbA.Machine.Topo, tbA.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Measure(a); err != nil {
		t.Fatal(err)
	}
	// Break the stream; the next measurement redials — onto server B,
	// whose identity does not match. That must be a permanent error.
	client.mu.Lock()
	client.poison(errors.New("test: forced break"))
	client.mu.Unlock()
	_, err = client.Measure(a)
	if err == nil {
		t.Fatal("identity-changed reconnect accepted")
	}
	if !core.IsPermanent(err) {
		t.Errorf("identity mismatch should be permanent, got %v", err)
	}
}

func TestServerReadTimeoutReapsDeadPeer(t *testing.T) {
	_, addr, shutdown := startTestbedServer(t, &Server{Name: "sim", ReadTimeout: 50 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hello Hello
	if err := json.NewDecoder(conn).Decode(&hello); err != nil {
		t.Fatal(err)
	}
	// Send nothing. The server must give up on us and close the
	// connection instead of leaking the handler goroutine forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("expected the server to close the idle connection")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("idle reap took %v", elapsed)
	}
	// Close() must return promptly because no handler is stuck.
	doneClose := make(chan struct{})
	go func() { shutdown(); close(doneClose) }()
	select {
	case <-doneClose:
	case <-time.After(5 * time.Second):
		t.Fatal("server Close blocked on a leaked handler")
	}
}

func TestServerCloseDisconnectsClients(t *testing.T) {
	srv := &Server{Name: "sim"}
	_, addr, _ := startTestbedServer(t, srv)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The client's connection was severed; an immediate measurement
	// sees a transport error (transient: its dialer could in principle
	// reach a restarted server, which here stays down).
	a := validAssignment()
	a.Topo = client.Topology()
	a.Ctx = make([]int, client.Tasks())
	for i := range a.Ctx {
		a.Ctx[i] = i
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := client.MeasureContext(ctx, a); err == nil {
		t.Error("measurement through a closed server succeeded")
	}
	// Serving on a closed server must refuse.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

func TestServerShutdownDrains(t *testing.T) {
	srv := &Server{Name: "sim"}
	_, addr, _ := startTestbedServer(t, srv)

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	// An idle-but-open client holds Shutdown until the deadline, then
	// gets cut.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	client.Close()

	// A drained server shuts down cleanly.
	srv2 := &Server{Name: "sim"}
	_, addr2, _ := startTestbedServer(t, srv2)
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	c2.Close()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv2.Shutdown(ctx2); err != nil {
		t.Errorf("Shutdown of drained server = %v", err)
	}
}
