package remote

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/obs"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// TestObservabilityEndToEnd drives a full instrumented campaign — server
// metrics, client metrics, campaign gauges, one obs.Mux — and scrapes
// /metrics both mid-campaign and after, the way cmd/measured and
// cmd/optassign wire it up.
func TestObservabilityEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()

	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{
		Runner:  tb,
		Topo:    tb.Machine.Topo,
		Tasks:   tb.TaskCount(),
		Name:    "sim",
		Metrics: NewServerMetrics(reg),
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		l.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	web := httptest.NewServer(obs.Mux(reg, nil, func() any {
		return map[string]any{"benchmark": "sim"}
	}))
	defer web.Close()

	addr := l.Addr().String()
	client, err := DialConfig(ClientConfig{
		Dial:    func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Metrics: NewClientMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Scrape once from inside the campaign, at the 100th measurement —
	// the live-dashboard situation the endpoint exists for.
	var midScrape string
	measured := 0
	runner := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		measured++
		if measured == 100 {
			midScrape = scrape(t, web.URL+"/metrics")
		}
		return client.MeasureContext(ctx, a)
	})

	cfg := core.IterConfig{
		Topo:          tb.Machine.Topo,
		Tasks:         tb.TaskCount(),
		AcceptLossPct: 10, // generous: one round satisfies
		Ninit:         500,
		Ndelta:        200,
		MaxSamples:    1500,
		Seed:          4,
		Metrics:       core.NewIterMetrics(reg),
	}
	res, err := core.IterateContext(context.Background(), cfg, runner)
	if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
		// Convergence is not what this test checks; running out of budget
		// still exercised every instrument.
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("campaign measured nothing")
	}

	for _, series := range []string{
		"optassign_server_requests_total",
		"optassign_server_connections_total",
		"optassign_remote_requests_total",
	} {
		if !strings.Contains(midScrape, series) {
			t.Errorf("mid-campaign scrape lacks %s", series)
		}
	}

	final := scrape(t, web.URL+"/metrics")
	for _, want := range []string{
		"# TYPE optassign_server_measure_seconds histogram",
		"optassign_campaign_samples",
		"optassign_campaign_upb",
		"optassign_campaign_rounds_total",
	} {
		if !strings.Contains(final, want) {
			t.Errorf("final scrape lacks %q", want)
		}
	}
	// The wire agrees with itself: every request the client sent is a
	// request the server saw (single client, so the counts match exactly).
	var clientReqs, serverReqs string
	for _, line := range strings.Split(final, "\n") {
		if v, ok := strings.CutPrefix(line, "optassign_remote_requests_total "); ok {
			clientReqs = v
		}
		if v, ok := strings.CutPrefix(line, "optassign_server_requests_total "); ok {
			serverReqs = v
		}
	}
	if clientReqs == "" || clientReqs != serverReqs {
		t.Errorf("client sent %s requests, server saw %s", clientReqs, serverReqs)
	}

	resp, err := http.Get(web.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status string         `json:"status"`
		Detail map[string]any `json:"detail"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Detail["benchmark"] != "sim" {
		t.Errorf("healthz = %+v", h)
	}
}
