package remote

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/netdps"
	"optassign/internal/t2"
)

// startServer launches a testbed-backed server on a loopback listener and
// returns its address plus a shutdown func.
func startServer(t *testing.T) (*netdps.Testbed, string, func()) {
	t.Helper()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Runner: tb, Topo: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "sim"}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	return tb, l.Addr().String(), func() {
		l.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

func TestRemoteMeasureMatchesLocal(t *testing.T) {
	tb, addr, shutdown := startServer(t)
	defer shutdown()

	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if client.Topology() != tb.Machine.Topo || client.Tasks() != tb.TaskCount() {
		t.Fatalf("hello = %+v", client.Hello())
	}
	if client.Hello().Name != "sim" {
		t.Errorf("name = %q", client.Hello().Name)
	}

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
		if err != nil {
			t.Fatal(err)
		}
		remote, err := client.Measure(a)
		if err != nil {
			t.Fatal(err)
		}
		local, err := tb.Measure(a)
		if err != nil {
			t.Fatal(err)
		}
		if remote != local {
			t.Fatalf("remote %v != local %v", remote, local)
		}
	}
}

func TestRemoteDrivesStatisticalPipeline(t *testing.T) {
	tb, addr, shutdown := startServer(t)
	defer shutdown()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The whole §3 pipeline over the wire.
	rng := rand.New(rand.NewSource(2))
	rs, err := core.CollectSample(rng, client.Topology(), client.Tasks(), 1200, client)
	if err != nil {
		t.Fatal(err)
	}
	est, err := core.EstimateOptimal(core.Perfs(rs), evt.POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Optimal < est.BestObserved {
		t.Errorf("estimate %v below best %v", est.Optimal, est.BestObserved)
	}
	_ = tb
}

func TestRemoteErrorPropagation(t *testing.T) {
	tb, addr, shutdown := startServer(t)
	defer shutdown()
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Wrong task count: server-side validation comes back as an error.
	short := assign.Assignment{Topo: tb.Machine.Topo, Ctx: []int{0, 1, 2}}
	if _, err := client.Measure(short); err == nil || !strings.Contains(err.Error(), "tasks") {
		t.Errorf("err = %v", err)
	}
	// Colliding assignment: runner-side error crosses the wire.
	ctx := make([]int, tb.TaskCount())
	if _, err := client.Measure(assign.Assignment{Topo: tb.Machine.Topo, Ctx: ctx}); err == nil {
		t.Error("colliding assignment accepted")
	}
	// Topology mismatch is caught client-side without a round trip.
	other := assign.Assignment{Topo: t2.Topology{Cores: 1, PipesPerCore: 1, ContextsPerPipe: 12}, Ctx: make([]int, 12)}
	if _, err := client.Measure(other); err == nil {
		t.Error("topology mismatch accepted")
	}
	// The connection survives all those errors.
	rng := rand.New(rand.NewSource(3))
	a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Measure(a); err != nil {
		t.Errorf("connection did not survive error traffic: %v", err)
	}
}

func TestRemoteConcurrentClients(t *testing.T) {
	tb, addr, shutdown := startServer(t)
	defer shutdown()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer client.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
				if err != nil {
					errs[w] = err
					return
				}
				if _, err := client.Measure(a); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", w, err)
		}
	}
}

func TestServerValidation(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := (&Server{}).Serve(l); err == nil {
		t.Error("runner-less server accepted")
	}
	runner := core.RunnerFunc(func(assign.Assignment) (float64, error) { return 1, nil })
	if err := (&Server{Runner: runner}).Serve(l); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestClientRejectsBadHandshake(t *testing.T) {
	server, client := net.Pipe()
	go func() {
		server.Write([]byte("garbage\n"))
		server.Close()
	}()
	if _, err := NewClient(client); err == nil {
		t.Error("garbage handshake accepted")
	}

	server2, client2 := net.Pipe()
	go func() {
		server2.Write([]byte(`{"topology":{"Cores":0,"PipesPerCore":0,"ContextsPerPipe":0},"tasks":3}` + "\n"))
		server2.Close()
	}()
	if _, err := NewClient(client2); err == nil {
		t.Error("invalid announced topology accepted")
	}
}

func TestClientServerClosed(t *testing.T) {
	_, addr, shutdown := startServer(t)
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown()
	client.conn.Close()
	a := assign.Assignment{Topo: client.Topology(), Ctx: make([]int, client.Tasks())}
	for i := range a.Ctx {
		a.Ctx[i] = i
	}
	if _, err := client.Measure(a); err == nil {
		t.Error("measure on closed connection succeeded")
	}
	if !errors.Is(client.Close(), net.ErrClosed) && client.Close() == nil {
		// double close tolerated either way; just exercise the path
		_ = err
	}
}
