package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"optassign/internal/obs"
)

// RegistryConfig tunes the controller-side fleet registry.
type RegistryConfig struct {
	// HeartbeatInterval is what joining servers are told to heartbeat at.
	// Default 1 s.
	HeartbeatInterval time.Duration
	// SuspectAfter is how long a member may go silent before it is marked
	// suspect (the pool deprioritizes it but keeps it). Default 3×
	// HeartbeatInterval.
	SuspectAfter time.Duration
	// EvictAfter is how long a member may go silent before it is evicted
	// (removed from the pool; its in-flight measurement, if any, fails
	// over). Default 10× HeartbeatInterval.
	EvictAfter time.Duration
	// Verify, if set, gates registration beyond the built-in topology/
	// task-count check: return an error to refuse the server (wrong
	// testbed identity, unknown operator, ...).
	Verify func(h Hello, identity string) error
	// Events receives "member_joined", "member_rejected",
	// "member_suspect", "member_recovered", "member_draining" and
	// "member_left" events. nil disables.
	Events obs.EventSink
	// Metrics counts membership churn and heartbeat traffic. nil
	// disables.
	Metrics *MembershipMetrics
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.HeartbeatInterval
	}
	if c.EvictAfter <= c.SuspectAfter {
		c.EvictAfter = 10 * c.HeartbeatInterval
		if c.EvictAfter <= c.SuspectAfter {
			c.EvictAfter = 2 * c.SuspectAfter
		}
	}
	return c
}

// fleetMember is the registry's record of one registered server.
type fleetMember struct {
	addr     string
	identity string
	hello    Hello
	conn     net.Conn
	suspect  bool
	draining bool
}

// Registry is the controller half of the fleet-membership protocol: it
// accepts registration connections from measurement servers, verifies
// each joiner's identity by dialing back its advertised measurement
// address, admits it into the attached ClientPool, tracks its heartbeats
// (silent members turn suspect, then are evicted), and runs the graceful-
// drain handshake when a member announces its departure. The campaign
// never talks to the Registry — it measures through the pool, whose
// membership the Registry edits live.
type Registry struct {
	cfg  RegistryConfig
	pool *ClientPool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	members   map[string]*fleetMember
	wg        sync.WaitGroup
	closed    bool
}

// NewRegistry builds a registry that feeds pool. The pool is typically
// empty (NewPool) — servers populate it by registering.
func NewRegistry(pool *ClientPool, cfg RegistryConfig) *Registry {
	return &Registry{
		cfg:       cfg.withDefaults(),
		pool:      pool,
		listeners: make(map[net.Listener]struct{}),
		members:   make(map[string]*fleetMember),
	}
}

// ErrRegistryClosed is returned by Serve after Close.
var ErrRegistryClosed = errors.New("remote: registry closed")

// Serve accepts registration connections until the listener closes or the
// registry is shut down. Each connection carries one member's lifetime:
// announce, heartbeats, optional drain.
func (r *Registry) Serve(l net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRegistryClosed
	}
	r.listeners[l] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.listeners, l)
		r.mu.Unlock()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.wg.Add(1)
		r.mu.Unlock()
		go func() {
			defer r.wg.Done()
			r.handle(conn)
		}()
	}
}

// Close stops the registry: listeners and member connections close, and
// every handler exits. The attached pool is left as-is (the campaign owns
// its lifecycle). Close is idempotent.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	for l := range r.listeners {
		l.Close()
	}
	for _, m := range r.members {
		m.conn.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
	return nil
}

// Members reports the current fleet, address → state ("active",
// "suspect" or "draining").
func (r *Registry) Members() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.members))
	for addr, m := range r.members {
		switch {
		case m.draining:
			out[addr] = "draining"
		case m.suspect:
			out[addr] = "suspect"
		default:
			out[addr] = "active"
		}
	}
	return out
}

func (r *Registry) emit(name string, fields ...obs.Field) {
	if r.cfg.Events != nil {
		r.cfg.Events.Emit(obs.Event{Name: name, Fields: fields})
	}
}

// updateGaugesLocked refreshes the membership gauges. Callers hold r.mu.
func (r *Registry) updateGaugesLocked() {
	m := r.cfg.Metrics
	if m == nil {
		return
	}
	suspects := 0
	for _, fm := range r.members {
		if fm.suspect {
			suspects++
		}
	}
	m.Members.Set(float64(len(r.members)))
	m.Suspects.Set(float64(suspects))
}

// reject refuses a registration with a reason and closes the connection.
func (r *Registry) reject(conn net.Conn, enc *json.Encoder, reason string) {
	if m := r.cfg.Metrics; m != nil {
		m.RejectedJoins.Inc()
	}
	r.emit("member_rejected", obs.Field{Key: "error", Value: reason})
	enc.Encode(RegistryFrame{Type: FrameReject, Error: reason})
	conn.Close()
}

// handle runs one member's registration connection end to end.
func (r *Registry) handle(conn net.Conn) {
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))

	// The announce must arrive promptly; a silent dialer is not a member.
	conn.SetReadDeadline(time.Now().Add(r.cfg.SuspectAfter))
	var ann RegistryFrame
	if err := dec.Decode(&ann); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	if ann.Type != FrameAnnounce || ann.Hello == nil || ann.Addr == "" {
		r.reject(conn, enc, "malformed announce")
		return
	}
	if err := ann.Hello.Topology.Validate(); err != nil {
		r.reject(conn, enc, fmt.Sprintf("invalid topology: %v", err))
		return
	}
	if r.cfg.Verify != nil {
		if err := r.cfg.Verify(*ann.Hello, ann.Identity); err != nil {
			r.reject(conn, enc, fmt.Sprintf("verification failed: %v", err))
			return
		}
	}

	// Supersede any stale registration for the same address (a server
	// that reconnected after losing its registry link). The old handler
	// sees its connection close and exits without evicting the new
	// record — membership is keyed by address, and last announce wins.
	m := &fleetMember{addr: ann.Addr, identity: ann.Identity, hello: *ann.Hello, conn: conn}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	if old, ok := r.members[ann.Addr]; ok {
		old.conn.Close()
	}
	r.members[ann.Addr] = m
	r.updateGaugesLocked()
	r.mu.Unlock()

	// Identity verification on the measurement plane: the pool dials the
	// advertised address and checks the Hello against the fleet's. A
	// server announcing an address it does not serve — or serving a
	// different workload there — never joins.
	if err := r.pool.Add(ann.Addr); err != nil {
		r.forget(m)
		r.reject(conn, enc, fmt.Sprintf("measurement dial-back: %v", err))
		return
	}
	if err := enc.Encode(RegistryFrame{Type: FrameWelcome, Interval: r.cfg.HeartbeatInterval.String()}); err != nil {
		r.leave(m, "welcome failed")
		return
	}
	if mm := r.cfg.Metrics; mm != nil {
		mm.Joins.Inc()
	}
	r.emit("member_joined",
		obs.Field{Key: "server", Value: ann.Addr},
		obs.Field{Key: "identity", Value: ann.Identity})

	// Heartbeat watch. Frames arrive on a reader goroutine so the state
	// machine can also wake on timers; closing the connection unblocks a
	// reader stuck in Decode, the done channel one stuck handing a frame
	// over after the handler has already returned.
	frames := make(chan RegistryFrame)
	done := make(chan struct{})
	defer close(done)
	go func() {
		defer close(frames)
		for {
			var f RegistryFrame
			if err := dec.Decode(&f); err != nil {
				return
			}
			select {
			case frames <- f:
			case <-done:
				return
			}
		}
	}()

	suspect := time.NewTimer(r.cfg.SuspectAfter)
	defer suspect.Stop()
	evict := time.NewTimer(r.cfg.EvictAfter)
	defer evict.Stop()
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				r.leave(m, "disconnected")
				return
			}
			switch f.Type {
			case FrameHeartbeat:
				if mm := r.cfg.Metrics; mm != nil {
					mm.Heartbeats.Inc()
				}
				if !suspect.Stop() {
					select {
					case <-suspect.C:
					default:
					}
				}
				suspect.Reset(r.cfg.SuspectAfter)
				if !evict.Stop() {
					select {
					case <-evict.C:
					default:
					}
				}
				evict.Reset(r.cfg.EvictAfter)
				r.setSuspect(m, false)
			case FrameDrain:
				r.startDrain(m, enc)
			}
		case <-suspect.C:
			r.setSuspect(m, true)
		case <-evict.C:
			r.leave(m, "evicted")
			return
		}
	}
}

// setSuspect flips a member's suspect flag in registry and pool.
func (r *Registry) setSuspect(m *fleetMember, suspect bool) {
	r.mu.Lock()
	if r.members[m.addr] != m || m.suspect == suspect || m.draining {
		r.mu.Unlock()
		return
	}
	m.suspect = suspect
	r.updateGaugesLocked()
	r.mu.Unlock()
	r.pool.SetSuspect(m.addr, suspect)
	if suspect {
		r.emit("member_suspect", obs.Field{Key: "server", Value: m.addr})
	} else {
		r.emit("member_recovered", obs.Field{Key: "server", Value: m.addr})
	}
}

// startDrain begins the graceful-departure handshake: the pool stops
// routing to the member and, once its in-flight measurement has finished
// and its client is closed, the registry acknowledges with "drained" and
// drops the registration. Heartbeats keep flowing meanwhile, so a slow
// drain is not mistaken for a death.
func (r *Registry) startDrain(m *fleetMember, enc *json.Encoder) {
	r.mu.Lock()
	if r.members[m.addr] != m || m.draining {
		r.mu.Unlock()
		return
	}
	m.draining = true
	r.updateGaugesLocked()
	r.mu.Unlock()
	r.emit("member_draining", obs.Field{Key: "server", Value: m.addr})
	r.pool.Drain(m.addr, func() {
		if mm := r.cfg.Metrics; mm != nil {
			mm.Drains.Inc()
		}
		r.forgetLeft(m, "drained")
		enc.Encode(RegistryFrame{Type: FrameDrained})
		m.conn.Close() // unblocks the reader; the handler exits via !ok
	})
}

// leave evicts a member: out of the pool (interrupting any in-flight
// measurement — it fails over) and out of the registry.
func (r *Registry) leave(m *fleetMember, reason string) {
	if !r.forget(m) {
		return
	}
	r.pool.Remove(m.addr, reason)
	if mm := r.cfg.Metrics; mm != nil {
		mm.Leaves.Inc()
	}
	r.emit("member_left",
		obs.Field{Key: "server", Value: m.addr},
		obs.Field{Key: "reason", Value: reason})
}

// forgetLeft drops the registration of a member that already left the
// pool (a completed drain) and emits the leave accounting.
func (r *Registry) forgetLeft(m *fleetMember, reason string) {
	if !r.forget(m) {
		return
	}
	if mm := r.cfg.Metrics; mm != nil {
		mm.Leaves.Inc()
	}
	r.emit("member_left",
		obs.Field{Key: "server", Value: m.addr},
		obs.Field{Key: "reason", Value: reason})
}

// forget removes the registry record if m is still current; it reports
// whether this call won (exactly one of the racing paths does).
func (r *Registry) forget(m *fleetMember) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[m.addr] != m {
		return false
	}
	delete(r.members, m.addr)
	r.updateGaugesLocked()
	return true
}

// --- Server side: the registrant -------------------------------------

// RegistrantConfig tunes a measurement server's registration loop.
type RegistrantConfig struct {
	// Dial opens the transport to the registry. Required.
	Dial func() (net.Conn, error)
	// Hello is the workload announcement, Addr the advertised measurement
	// address (what the controller dials back), Identity the testbed
	// identity string.
	Hello    Hello
	Addr     string
	Identity string
	// RetryBase and RetryMax shape the reconnect backoff after a lost
	// registry link: RetryBase doubling up to RetryMax. Defaults 200 ms
	// and 5 s.
	RetryBase, RetryMax time.Duration
	// Events receives "registered", "registration_lost" and
	// "drain_acknowledged" events. nil disables.
	Events obs.EventSink
}

func (c RegistrantConfig) withDefaults() RegistrantConfig {
	if c.RetryBase <= 0 {
		c.RetryBase = 200 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	return c
}

// ErrRejected marks a registration the registry refused; retrying with
// the same announcement would be refused identically.
var ErrRejected = errors.New("remote: registration rejected")

// errSessionLost is the internal "reconnect and re-announce" signal.
var errSessionLost = errors.New("remote: registry session lost")

// Registrant is the server half of the fleet-membership protocol: it
// keeps one registration alive against a registry — announce, heartbeat
// at the interval the registry dictates, reconnect with backoff and
// re-announce when the link drops — and runs the drain handshake on
// demand. cmd/measured pairs it with a Server: Run in a goroutine for the
// server's lifetime, Drain from the SIGTERM path.
type Registrant struct {
	cfg RegistrantConfig

	mu         sync.Mutex
	draining   bool
	drainDone  chan struct{} // closed when the drained ack lands
	drainAsked chan struct{} // signals the live session to send the frame
}

// NewRegistrant validates cfg and builds a registrant.
func NewRegistrant(cfg RegistrantConfig) (*Registrant, error) {
	cfg = cfg.withDefaults()
	if cfg.Dial == nil {
		return nil, errors.New("remote: registrant needs a Dial function")
	}
	if cfg.Addr == "" {
		return nil, errors.New("remote: registrant needs an advertised address")
	}
	return &Registrant{
		cfg:        cfg,
		drainDone:  make(chan struct{}),
		drainAsked: make(chan struct{}, 1),
	}, nil
}

func (g *Registrant) emit(name string, fields ...obs.Field) {
	if g.cfg.Events != nil {
		g.cfg.Events.Emit(obs.Event{Name: name, Fields: fields})
	}
}

// Run maintains the registration until ctx is cancelled, the registry
// rejects the announcement (ErrRejected), or a requested drain completes
// (nil). Lost links are re-dialed with exponential backoff and announced
// afresh — the registry treats a re-announce as a rejoin.
func (g *Registrant) Run(ctx context.Context) error {
	delay := g.cfg.RetryBase
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := g.cfg.Dial()
		if err == nil {
			err = g.session(ctx, conn)
			conn.Close()
		}
		switch {
		case err == nil:
			return nil // drained
		case errors.Is(err, ErrRejected):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		}
		g.emit("registration_lost", obs.Field{Key: "error", Value: err.Error()})
		if !errors.Is(err, errSessionLost) {
			// Dial or handshake failure: back off harder each time.
			if delay *= 2; delay > g.cfg.RetryMax {
				delay = g.cfg.RetryMax
			}
		} else {
			delay = g.cfg.RetryBase
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}

// session runs one registration connection: announce, await welcome,
// heartbeat, handle drain. Returns nil only when a drain completed.
func (g *Registrant) session(ctx context.Context, conn net.Conn) error {
	enc := json.NewEncoder(conn)
	if err := enc.Encode(RegistryFrame{
		Type:     FrameAnnounce,
		Hello:    &g.cfg.Hello,
		Addr:     g.cfg.Addr,
		Identity: g.cfg.Identity,
	}); err != nil {
		return fmt.Errorf("announce: %w", err)
	}

	frames := make(chan RegistryFrame)
	sessionDone := make(chan struct{})
	go func() {
		defer close(frames)
		dec := json.NewDecoder(bufio.NewReader(conn))
		for {
			var f RegistryFrame
			if err := dec.Decode(&f); err != nil {
				return
			}
			select {
			case frames <- f:
			case <-sessionDone:
				return
			}
		}
	}()
	defer func() {
		close(sessionDone)
		conn.Close()
	}()

	// Await the verdict on the announcement.
	var interval time.Duration
	welcome := time.NewTimer(g.cfg.RetryMax)
	defer welcome.Stop()
	select {
	case f, ok := <-frames:
		if !ok {
			return fmt.Errorf("%w: closed before welcome", errSessionLost)
		}
		switch f.Type {
		case FrameWelcome:
			d, err := time.ParseDuration(f.Interval)
			if err != nil || d <= 0 {
				return fmt.Errorf("welcome with bad interval %q", f.Interval)
			}
			interval = d
		case FrameReject:
			return fmt.Errorf("%w: %s", ErrRejected, f.Error)
		default:
			return fmt.Errorf("unexpected %q before welcome", f.Type)
		}
	case <-welcome.C:
		return fmt.Errorf("%w: no welcome", errSessionLost)
	case <-ctx.Done():
		return ctx.Err()
	}
	g.emit("registered", obs.Field{Key: "interval", Value: interval.String()})

	// A drain requested while we were disconnected is sent as soon as
	// the session is up.
	g.mu.Lock()
	if g.draining {
		select {
		case g.drainAsked <- struct{}{}:
		default:
		}
	}
	g.mu.Unlock()

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var seq uint64
	for {
		select {
		case <-ticker.C:
			seq++
			if err := enc.Encode(RegistryFrame{Type: FrameHeartbeat, Seq: seq}); err != nil {
				return fmt.Errorf("%w: heartbeat: %v", errSessionLost, err)
			}
		case <-g.drainAsked:
			if err := enc.Encode(RegistryFrame{Type: FrameDrain}); err != nil {
				return fmt.Errorf("%w: drain: %v", errSessionLost, err)
			}
		case f, ok := <-frames:
			if !ok {
				return fmt.Errorf("%w: connection closed", errSessionLost)
			}
			switch f.Type {
			case FrameDrained:
				g.emit("drain_acknowledged")
				g.mu.Lock()
				select {
				case <-g.drainDone:
				default:
					close(g.drainDone)
				}
				g.mu.Unlock()
				return nil
			case FrameReject:
				return fmt.Errorf("%w: %s", ErrRejected, f.Error)
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Drain asks the registry for a graceful departure and waits for the
// acknowledgment: when Drain returns nil, every measurement this server
// ever completed has been committed controller-side and no new one will
// arrive — the server can shut down losing nothing. ctx bounds the wait.
func (g *Registrant) Drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
	select {
	case g.drainAsked <- struct{}{}:
	default:
	}
	select {
	case <-g.drainDone:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
