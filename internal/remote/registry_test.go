package remote

// Fleet-membership protocol tests: registration with dial-back identity
// verification, heartbeat-driven suspect/evict, the graceful-drain
// handshake, and rejoin after a lost registry link. Raw-frame clients are
// used where a test needs to misbehave (go silent, announce a bogus
// address) in ways the real Registrant never would.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// validAssignmentFor builds a trivially valid assignment (task i on
// hardware context i) for a testbed running the given task count.
func validAssignmentFor(tasks int) assign.Assignment {
	ctx := make([]int, tasks)
	for i := range ctx {
		ctx[i] = i
	}
	return assign.Assignment{Topo: t2.UltraSPARCT2(), Ctx: ctx}
}

// fastRegistryConfig keeps heartbeat timers test-sized.
func fastRegistryConfig() RegistryConfig {
	return RegistryConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectAfter:      80 * time.Millisecond,
		EvictAfter:        400 * time.Millisecond,
	}
}

// startRegistry wires a fresh pool + registry on a loopback listener.
func startRegistry(t *testing.T, cfg RegistryConfig) (*ClientPool, *Registry, string) {
	t.Helper()
	pool := NewPool(fastPoolConfig())
	reg := NewRegistry(pool, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go reg.Serve(l)
	t.Cleanup(func() {
		reg.Close()
		pool.Close()
	})
	return pool, reg, l.Addr().String()
}

// startRegistrant runs a real Registrant against the registry for a
// testbed server at addr and returns it plus a cancel/wait pair.
func startRegistrant(t *testing.T, regAddr, addr string, hello Hello, identity string) (*Registrant, context.CancelFunc, chan error) {
	t.Helper()
	g, err := NewRegistrant(RegistrantConfig{
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", regAddr) },
		Hello:     hello,
		Addr:      addr,
		Identity:  identity,
		RetryBase: 5 * time.Millisecond,
		RetryMax:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		done <- g.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-exited
	})
	return g, cancel, done
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestRegistryJoinMeasureDrain(t *testing.T) {
	tb, addr, kill := startPoolServer(t, 8)
	defer kill()
	reg := obs.NewRegistry()
	cfg := fastRegistryConfig()
	cfg.Metrics = NewMembershipMetrics(reg)
	pool, registry, regAddr := startRegistry(t, cfg)

	hello := Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "fleet-sim"}
	g, _, done := startRegistrant(t, regAddr, addr, hello, "test-identity")

	// The server registers; the pool gains a verified member.
	if err := pool.WaitReady(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := registry.Members()[addr]; got != "active" {
		t.Fatalf("registry member state = %q, want active", got)
	}
	if pool.Topology() != tb.Machine.Topo || pool.Tasks() != tb.TaskCount() {
		t.Fatalf("pool identity %+v does not match the testbed", pool.Hello())
	}

	// Measurements flow through the fleet exactly like a dialed pool.
	want, err := tb.Measure(validAssignmentFor(tb.TaskCount()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.Measure(validAssignmentFor(tb.TaskCount()))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("fleet measurement %v != local %v", got, want)
	}

	// Heartbeats keep the member active (and are counted).
	time.Sleep(5 * cfg.HeartbeatInterval)
	if pool.Members()[addr] != "active" {
		t.Fatalf("heartbeating member went %s", pool.Members()[addr])
	}
	if hb := cfg.Metrics.Heartbeats.Value(); hb < 2 {
		t.Fatalf("heartbeats counter = %v, want >= 2", hb)
	}

	// Graceful drain: acknowledged, zero members afterward, Run exits nil.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelDrain()
	if err := g.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run after drain = %v, want nil", err)
	}
	waitFor(t, "membership to empty", func() bool { return pool.Size() == 0 && len(registry.Members()) == 0 })
	if v := cfg.Metrics.Drains.Value(); v != 1 {
		t.Fatalf("drains counter = %v, want 1", v)
	}
	if v := cfg.Metrics.Members.Value(); v != 0 {
		t.Fatalf("members gauge = %v, want 0", v)
	}
}

func TestRegistryRejectsFailedVerification(t *testing.T) {
	tb, addr, kill := startPoolServer(t, 8)
	defer kill()
	cfg := fastRegistryConfig()
	cfg.Verify = func(h Hello, identity string) error {
		if identity != "expected" {
			return fmt.Errorf("unknown identity %q", identity)
		}
		return nil
	}
	pool, _, regAddr := startRegistry(t, cfg)

	hello := Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "fleet-sim"}
	_, _, done := startRegistrant(t, regAddr, addr, hello, "imposter")
	select {
	case err := <-done:
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("Run = %v, want ErrRejected", err)
		}
		if !strings.Contains(err.Error(), "imposter") {
			t.Fatalf("rejection reason lost: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("rejected registrant kept running")
	}
	if pool.Size() != 0 {
		t.Fatalf("rejected server joined the pool: %v", pool.Members())
	}
}

func TestRegistryRejectsUnreachableAdvertisedAddr(t *testing.T) {
	pool, _, regAddr := startRegistry(t, fastRegistryConfig())
	// Announce an address nothing listens on: the dial-back must fail and
	// the registration be refused — a server cannot join a fleet it would
	// not serve.
	_, _, done := startRegistrant(t, regAddr, "127.0.0.1:1", validHello(), "x")
	select {
	case err := <-done:
		if !errors.Is(err, ErrRejected) {
			t.Fatalf("Run = %v, want ErrRejected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unreachable registrant kept running")
	}
	if pool.Size() != 0 {
		t.Fatalf("unreachable server joined the pool: %v", pool.Members())
	}
}

// rawRegistryClient speaks the frame protocol by hand so tests can
// misbehave: skip heartbeats, go silent, or re-announce at will.
type rawRegistryClient struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func dialRawRegistrant(t *testing.T, regAddr, addr string, hello Hello) *rawRegistryClient {
	t.Helper()
	conn, err := net.Dial("tcp", regAddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	c := &rawRegistryClient{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(bufio.NewReader(conn))}
	if err := c.enc.Encode(RegistryFrame{Type: FrameAnnounce, Hello: &hello, Addr: addr, Identity: "raw"}); err != nil {
		t.Fatal(err)
	}
	var f RegistryFrame
	if err := c.dec.Decode(&f); err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameWelcome {
		t.Fatalf("announce answered with %q (%s), want welcome", f.Type, f.Error)
	}
	return c
}

func (c *rawRegistryClient) heartbeat(t *testing.T, seq uint64) {
	t.Helper()
	if err := c.enc.Encode(RegistryFrame{Type: FrameHeartbeat, Seq: seq}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryMarksSuspectAndRecovers(t *testing.T) {
	tb, addr, kill := startPoolServer(t, 8)
	defer kill()
	reg := obs.NewRegistry()
	cfg := fastRegistryConfig()
	cfg.Metrics = NewMembershipMetrics(reg)
	pool, registry, regAddr := startRegistry(t, cfg)

	hello := Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "pool-sim"}
	c := dialRawRegistrant(t, regAddr, addr, hello)

	// Silence past SuspectAfter: the member turns suspect but stays a
	// member — measurements still route to it when nothing else is free.
	waitFor(t, "suspect state", func() bool { return registry.Members()[addr] == "suspect" })
	if got := pool.Members()[addr]; got != "suspect" {
		t.Fatalf("pool state = %q, want suspect", got)
	}
	if v := cfg.Metrics.Suspects.Value(); v != 1 {
		t.Fatalf("suspects gauge = %v, want 1", v)
	}
	if _, err := pool.Measure(validAssignmentFor(tb.TaskCount())); err != nil {
		t.Fatalf("suspect-only fleet refused a measurement: %v", err)
	}

	// A heartbeat recovers it before eviction.
	c.heartbeat(t, 1)
	waitFor(t, "recovery", func() bool { return registry.Members()[addr] == "active" })
	if v := cfg.Metrics.Suspects.Value(); v != 0 {
		t.Fatalf("suspects gauge = %v, want 0 after recovery", v)
	}

	// Total silence past EvictAfter: the member is gone from both views.
	waitFor(t, "eviction", func() bool { return pool.Size() == 0 && len(registry.Members()) == 0 })
	if v := cfg.Metrics.Leaves.Value(); v != 1 {
		t.Fatalf("leaves counter = %v, want 1", v)
	}
}

func TestRegistrySupersedesReannounce(t *testing.T) {
	tb, addr, kill := startPoolServer(t, 8)
	defer kill()
	pool, registry, regAddr := startRegistry(t, fastRegistryConfig())
	hello := Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "pool-sim"}

	// First registration, then the server "restarts" and announces again
	// on a fresh connection without deregistering. Last announce wins;
	// the fleet still has exactly one member for the address.
	first := dialRawRegistrant(t, regAddr, addr, hello)
	second := dialRawRegistrant(t, regAddr, addr, hello)
	waitFor(t, "old session to close", func() bool {
		first.conn.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		var f RegistryFrame
		return first.dec.Decode(&f) != nil
	})
	if n := pool.Size(); n != 1 {
		t.Fatalf("pool size after re-announce = %d, want 1", n)
	}
	if n := len(registry.Members()); n != 1 {
		t.Fatalf("registry size after re-announce = %d, want 1", n)
	}
	second.heartbeat(t, 1)
	if got := registry.Members()[addr]; got != "active" {
		t.Fatalf("member state = %q, want active", got)
	}
}

func TestRegistrantReconnectsAfterRegistryBlip(t *testing.T) {
	tb, addr, kill := startPoolServer(t, 8)
	defer kill()
	pool, _, regAddr := startRegistry(t, fastRegistryConfig())
	hello := Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "pool-sim"}

	// Dial through a severable wrapper so the test can cut the registry
	// link without touching the registry itself.
	var mu sync.Mutex
	var live net.Conn
	g, err := NewRegistrant(RegistrantConfig{
		Dial: func() (net.Conn, error) {
			conn, err := net.Dial("tcp", regAddr)
			if err == nil {
				mu.Lock()
				live = conn
				mu.Unlock()
			}
			return conn, err
		},
		Hello:     hello,
		Addr:      addr,
		Identity:  "blip",
		RetryBase: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Run(ctx) }()
	defer func() { cancel(); <-done }()

	if err := pool.WaitReady(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Sever the registration link; the registrant must re-dial and
	// re-announce, and the registry must treat the rejoin idempotently.
	mu.Lock()
	live.Close()
	mu.Unlock()
	waitFor(t, "rejoin", func() bool {
		return pool.Size() == 1 && pool.Members()[addr] == "active"
	})
}

// --- pool satellite behaviors ----------------------------------------

func TestPoolCloseIdempotentAndRacesAcquire(t *testing.T) {
	_, addr, kill := startPoolServer(t, 8)
	defer kill()
	pool, err := DialPool([]string{addr}, fastPoolConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Hammer Close from many goroutines while measurements are in
	// flight: shutdown must be idempotent and every loser must see the
	// typed, permanent ErrPoolClosed (or a transport error from its own
	// in-flight request being cut) — never a send on a dead channel or a
	// deadlock. Run under -race in CI.
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 5; j++ {
				pool.Measure(validAssignmentFor(8))
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if err := pool.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if err := pool.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	_, err = pool.Measure(validAssignmentFor(8))
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("measure after close = %v, want ErrPoolClosed", err)
	}
	if !core.IsPermanent(err) {
		t.Fatal("ErrPoolClosed must be permanent: retrying a closed pool is useless")
	}
}

func TestPoolEmptyMembershipFailsFast(t *testing.T) {
	pool := NewPool(fastPoolConfig())
	defer pool.Close()
	start := time.Now()
	_, err := pool.Measure(validAssignmentFor(8))
	if !errors.Is(err, ErrNoServers) {
		t.Fatalf("empty pool measure = %v, want ErrNoServers", err)
	}
	if core.IsPermanent(err) {
		t.Fatal("ErrNoServers must stay transient: a server may join any moment")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("empty pool spun for %v instead of failing fast", elapsed)
	}
}

func TestPoolAllBenchedFailsFastWithStrikeSummary(t *testing.T) {
	_, addr1, kill1 := startPoolServer(t, 8)
	_, addr2, kill2 := startPoolServer(t, 8)
	cfg := fastPoolConfig()
	cfg.Cooldown = time.Hour // benches must not lapse mid-test
	pool, err := DialPool([]string{addr1, addr2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Kill both servers and measure until both members are benched.
	kill1()
	kill2()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = pool.Measure(validAssignmentFor(8))
		if errors.Is(err, ErrNoServers) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached ErrNoServers; last err: %v", err)
		}
	}
	// The error names every member with its strike count — the operator-
	// facing summary the satellite task asks for.
	for _, addr := range []string{addr1, addr2} {
		if !strings.Contains(err.Error(), addr) {
			t.Errorf("strike summary misses %s: %v", addr, err)
		}
	}
	if !strings.Contains(err.Error(), "strike") {
		t.Errorf("strike summary missing: %v", err)
	}
	// Fail-fast, not context-deadline spin.
	start := time.Now()
	_, err = pool.Measure(validAssignmentFor(8))
	if !errors.Is(err, ErrNoServers) {
		t.Fatalf("benched pool measure = %v, want ErrNoServers", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("benched pool spun for %v instead of failing fast", elapsed)
	}
}

func TestPoolDynamicAddAndDrainMidCampaign(t *testing.T) {
	tb, addr1, kill1 := startPoolServer(t, 8)
	defer kill1()
	_, addr2, kill2 := startPoolServer(t, 8)
	defer kill2()

	pool := NewPool(fastPoolConfig())
	defer pool.Close()
	if err := pool.Add(addr1); err != nil {
		t.Fatal(err)
	}

	// Measurements flow; a second member joins mid-stream; the first
	// drains away. The campaign never notices.
	drained := make(chan struct{})
	var once sync.Once
	for i := 0; i < 40; i++ {
		switch i {
		case 10:
			if err := pool.Add(addr2); err != nil {
				t.Fatal(err)
			}
		case 20:
			pool.Drain(addr1, func() { once.Do(func() { close(drained) }) })
		}
		want, err := tb.Measure(validAssignmentFor(tb.TaskCount()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.Measure(validAssignmentFor(tb.TaskCount()))
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("draw %d: pool %v != local %v", i, got, want)
		}
	}
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain callback never ran")
	}
	if got := pool.Addrs(); len(got) != 1 || got[0] != addr2 {
		t.Fatalf("membership after drain = %v, want [%s]", got, addr2)
	}
}
