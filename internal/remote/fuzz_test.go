package remote

// FuzzFrame throws arbitrary client bytes at the server's frame handler:
// whatever arrives, the handler must not panic, and everything it writes
// back must stay well-formed protocol frames — a hello first, then only
// valid Response lines. The measurement protocol is the repo's only
// network-facing parser, so it gets the fuzzer.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/t2"
)

func FuzzFrame(f *testing.F) {
	f.Add([]byte(`{"id":1,"ctx":[0,1,2]}` + "\n"))
	f.Add([]byte(`{"id":1,"ctx":[0,1,2]}` + "\n" + `{"id":2,"ctx":[3,4,5]}` + "\n"))
	f.Add([]byte(`{"id":18446744073709551615,"ctx":[]}` + "\n"))
	f.Add([]byte(`{"id":-1,"ctx":[0,1,2,3,4,5,6,7,8,9]}`))
	f.Add([]byte(`{"id":1,"ctx":[0,1,2]}{"id":2,"ctx":[0,1,2]}`))
	f.Add([]byte("{\"id\":1,\n\"ctx\":[0,1,2]}\n"))
	f.Add([]byte(`{"id":1,"ctx":null}` + "\n"))
	f.Add([]byte(`garbage not json at all`))
	f.Add([]byte(`{"id":1,"ctx":[1e309]}`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0xff, 0xfe, 0x00, '{', '}'})

	const fixedPerf = 42.0
	topo := t2.UltraSPARCT2()
	runner := core.RunnerFunc(func(a assign.Assignment) (float64, error) {
		return fixedPerf, nil
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &Server{Runner: runner, Topo: topo, Tasks: 3, Name: "fuzz",
			ReadTimeout: 200 * time.Millisecond}
		serverConn, clientConn := net.Pipe()

		handlerDone := make(chan struct{})
		go func() {
			defer close(handlerDone)
			s.handle(serverConn)
			serverConn.Close()
		}()

		// Drain everything the handler writes; net.Pipe is unbuffered, so
		// without this reader the handler would block on its first frame.
		var out bytes.Buffer
		readerDone := make(chan struct{})
		go func() {
			defer close(readerDone)
			io.Copy(&out, clientConn)
		}()

		// The handler stops reading as soon as one frame is malformed, so
		// a blocked write just means the rest of the input is undeliverable.
		clientConn.SetWriteDeadline(time.Now().Add(500 * time.Millisecond))
		clientConn.Write(data)
		clientConn.Close()
		<-handlerDone
		<-readerDone

		// Everything received must be well-formed frames: a hello, then
		// Response lines pairing our fixed perf with well-formed requests.
		dec := json.NewDecoder(bufio.NewReader(&out))
		var hello Hello
		if err := dec.Decode(&hello); err != nil {
			t.Fatalf("hello frame: %v", err)
		}
		if hello.Topology != topo || hello.Tasks != 3 {
			t.Fatalf("hello = %+v", hello)
		}
		for i := 0; ; i++ {
			var resp Response
			err := dec.Decode(&resp)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("response frame %d: %v", i, err)
			}
			if resp.Error == "" && resp.Perf != fixedPerf {
				t.Fatalf("response frame %d: perf %v with no error", i, resp.Perf)
			}
		}
	})
}
