package remote

import (
	"optassign/internal/obs"
)

// Metric bundles for the remote-measurement layer, following the
// internal/obs conventions: constructors accept a nil registry and
// return a nil (disabled) bundle, recording sites guard on nil, and
// instrumentation never changes protocol behavior.

// ClientMetrics counts one client's (or, when shared through a pool
// config, all clients') wire activity and recovery work.
type ClientMetrics struct {
	Requests          *obs.Counter
	StreamPoisonings  *obs.Counter
	Reconnects        *obs.Counter
	ReconnectFailures *obs.Counter
}

// NewClientMetrics registers the client series on r; nil registry, nil
// bundle.
func NewClientMetrics(r *obs.Registry) *ClientMetrics {
	if r == nil {
		return nil
	}
	return &ClientMetrics{
		Requests:          r.Counter("optassign_remote_requests_total", "Measurement requests sent to servers."),
		StreamPoisonings:  r.Counter("optassign_remote_stream_poisonings_total", "Transport errors that poisoned a request/response stream."),
		Reconnects:        r.Counter("optassign_remote_reconnects_total", "Successful redial-and-rehandshake recoveries."),
		ReconnectFailures: r.Counter("optassign_remote_reconnect_failures_total", "Reconnection cycles that exhausted their redial budget."),
	}
}

// PoolMetrics counts the pool-level fault tolerance: failovers between
// servers and the bench/unbench churn of unhealthy ones.
type PoolMetrics struct {
	Failovers      *obs.Counter
	Benches        *obs.Counter
	Unbenches      *obs.Counter
	BenchedServers *obs.Gauge
}

// NewPoolMetrics registers the client-pool series on r; nil registry,
// nil bundle.
func NewPoolMetrics(r *obs.Registry) *PoolMetrics {
	if r == nil {
		return nil
	}
	return &PoolMetrics{
		Failovers:      r.Counter("optassign_remote_pool_failovers_total", "Measurements moved to another server after a transient failure."),
		Benches:        r.Counter("optassign_remote_pool_benches_total", "Servers benched after consecutive failures."),
		Unbenches:      r.Counter("optassign_remote_pool_unbenches_total", "Benched servers restored by a success."),
		BenchedServers: r.Gauge("optassign_remote_pool_benched_servers", "Servers currently inside a bench cooldown window."),
	}
}

// ServerMetrics is what a measurement server (cmd/measured) exposes on
// /metrics: connection churn and per-measurement throughput/latency.
type ServerMetrics struct {
	Connections       *obs.Counter
	ActiveConnections *obs.Gauge
	Requests          *obs.Counter
	MeasureErrors     *obs.Counter
	MeasureSeconds    *obs.Histogram
}

// NewServerMetrics registers the server series on r; nil registry, nil
// bundle.
func NewServerMetrics(r *obs.Registry) *ServerMetrics {
	if r == nil {
		return nil
	}
	return &ServerMetrics{
		Connections:       r.Counter("optassign_server_connections_total", "Client connections accepted."),
		ActiveConnections: r.Gauge("optassign_server_active_connections", "Client connections currently being served."),
		Requests:          r.Counter("optassign_server_requests_total", "Measurement requests received."),
		MeasureErrors:     r.Counter("optassign_server_measure_errors_total", "Measurements that failed (including invalid assignments)."),
		MeasureSeconds:    r.Histogram("optassign_server_measure_seconds", "Testbed time per measurement.", obs.DurationBuckets()),
	}
}
