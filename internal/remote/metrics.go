package remote

import (
	"optassign/internal/obs"
)

// Metric bundles for the remote-measurement layer, following the
// internal/obs conventions: constructors accept a nil registry and
// return a nil (disabled) bundle, recording sites guard on nil, and
// instrumentation never changes protocol behavior.

// ClientMetrics counts one client's (or, when shared through a pool
// config, all clients') wire activity and recovery work.
type ClientMetrics struct {
	Requests          *obs.Counter
	StreamPoisonings  *obs.Counter
	Reconnects        *obs.Counter
	ReconnectFailures *obs.Counter
}

// NewClientMetrics registers the client series on r; nil registry, nil
// bundle.
func NewClientMetrics(r *obs.Registry) *ClientMetrics {
	if r == nil {
		return nil
	}
	return &ClientMetrics{
		Requests:          r.Counter("optassign_remote_requests_total", "Measurement requests sent to servers."),
		StreamPoisonings:  r.Counter("optassign_remote_stream_poisonings_total", "Transport errors that poisoned a request/response stream."),
		Reconnects:        r.Counter("optassign_remote_reconnects_total", "Successful redial-and-rehandshake recoveries."),
		ReconnectFailures: r.Counter("optassign_remote_reconnect_failures_total", "Reconnection cycles that exhausted their redial budget."),
	}
}

// PoolMetrics counts the pool-level fault tolerance and membership: the
// failover/bench churn of unhealthy servers plus the join/leave/drain
// churn of a dynamic fleet.
type PoolMetrics struct {
	Failovers      *obs.Counter
	Benches        *obs.Counter
	Unbenches      *obs.Counter
	BenchedServers *obs.Gauge
	Members        *obs.Gauge
	SuspectServers *obs.Gauge
	Joins          *obs.Counter
	Leaves         *obs.Counter
	Drains         *obs.Counter
}

// NewPoolMetrics registers the client-pool series on r; nil registry,
// nil bundle.
func NewPoolMetrics(r *obs.Registry) *PoolMetrics {
	if r == nil {
		return nil
	}
	return &PoolMetrics{
		Failovers:      r.Counter("optassign_remote_pool_failovers_total", "Measurements moved to another server after a transient failure."),
		Benches:        r.Counter("optassign_remote_pool_benches_total", "Servers benched after consecutive failures."),
		Unbenches:      r.Counter("optassign_remote_pool_unbenches_total", "Benched servers restored by a success."),
		BenchedServers: r.Gauge("optassign_remote_pool_benched_servers", "Servers currently inside a bench cooldown window."),
		Members:        r.Gauge("optassign_remote_pool_members", "Servers currently in the pool membership."),
		SuspectServers: r.Gauge("optassign_remote_pool_suspect_servers", "Members currently marked suspect (missed heartbeats)."),
		Joins:          r.Counter("optassign_remote_pool_joins_total", "Servers admitted to the pool."),
		Leaves:         r.Counter("optassign_remote_pool_leaves_total", "Servers removed from the pool (drains included)."),
		Drains:         r.Counter("optassign_remote_pool_drains_total", "Servers that left via graceful drain."),
	}
}

// MembershipMetrics is the registry's view of the fleet: how many servers
// are registered, how many are suspect, and the join/leave/drain/
// heartbeat traffic. The pool gauges above count what the campaign can
// route to; these count what the fleet protocol sees — the two must agree
// whenever the fleet is quiescent, which the chaos suite asserts.
type MembershipMetrics struct {
	Members       *obs.Gauge
	Suspects      *obs.Gauge
	Joins         *obs.Counter
	RejectedJoins *obs.Counter
	Leaves        *obs.Counter
	Drains        *obs.Counter
	Heartbeats    *obs.Counter
}

// NewMembershipMetrics registers the fleet-membership series on r; nil
// registry, nil bundle.
func NewMembershipMetrics(r *obs.Registry) *MembershipMetrics {
	if r == nil {
		return nil
	}
	return &MembershipMetrics{
		Members:       r.Gauge("optassign_fleet_members", "Servers currently registered with the fleet registry."),
		Suspects:      r.Gauge("optassign_fleet_suspects", "Registered servers currently suspect (missed heartbeats)."),
		Joins:         r.Counter("optassign_fleet_joins_total", "Servers that completed registration."),
		RejectedJoins: r.Counter("optassign_fleet_rejected_joins_total", "Registration attempts refused (identity mismatch, unreachable, draining)."),
		Leaves:        r.Counter("optassign_fleet_leaves_total", "Servers that left the fleet (drained, evicted or disconnected)."),
		Drains:        r.Counter("optassign_fleet_drains_total", "Graceful drains completed."),
		Heartbeats:    r.Counter("optassign_fleet_heartbeats_total", "Heartbeat frames received."),
	}
}

// ServerMetrics is what a measurement server (cmd/measured) exposes on
// /metrics: connection churn and per-measurement throughput/latency.
type ServerMetrics struct {
	Connections       *obs.Counter
	ActiveConnections *obs.Gauge
	Requests          *obs.Counter
	MeasureErrors     *obs.Counter
	MeasureSeconds    *obs.Histogram
}

// NewServerMetrics registers the server series on r; nil registry, nil
// bundle.
func NewServerMetrics(r *obs.Registry) *ServerMetrics {
	if r == nil {
		return nil
	}
	return &ServerMetrics{
		Connections:       r.Counter("optassign_server_connections_total", "Client connections accepted."),
		ActiveConnections: r.Gauge("optassign_server_active_connections", "Client connections currently being served."),
		Requests:          r.Counter("optassign_server_requests_total", "Measurement requests received."),
		MeasureErrors:     r.Counter("optassign_server_measure_errors_total", "Measurements that failed (including invalid assignments)."),
		MeasureSeconds:    r.Histogram("optassign_server_measure_seconds", "Testbed time per measurement.", obs.DurationBuckets()),
	}
}
