package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// PoolConfig tunes a multi-server client pool.
type PoolConfig struct {
	// Client is the per-server reconnect policy (RedialAttempts, backoff);
	// its Dial field is ignored — each server gets a dialer for its own
	// address (or DialAddr below).
	Client ClientConfig
	// DialAddr opens the transport to one server; nil means plain TCP.
	// Tests route this through fault-injection proxies.
	DialAddr func(addr string) (net.Conn, error)
	// QuarantineAfter is how many consecutive transport failures bench a
	// server (its reconnect machinery keeps trying lazily, but the pool
	// stops preferring it). Default 3.
	QuarantineAfter int
	// Cooldown is how long a benched server stays unpreferred. Default 5 s.
	Cooldown time.Duration
	// Failover is how many distinct servers one measurement may try before
	// reporting the last transport error (which is transient — a
	// core.ResilientRunner above the pool retries the whole cycle with
	// backoff). 0 means every server.
	Failover int
	// Events receives "failover", "server_benched" and
	// "server_unbenched" events, each carrying the server address. nil
	// disables. Per-connection events (reconnects, poisonings) come from
	// the Client config above.
	Events obs.EventSink
	// Metrics counts failovers and bench churn. nil disables.
	Metrics *PoolMetrics
	// now is a test seam; nil means time.Now.
	now func() time.Time
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.DialAddr == nil {
		c.DialAddr = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// poolServer is one server of the pool: its reconnecting client plus the
// health bookkeeping that drives quarantine.
type poolServer struct {
	addr   string
	client *Client

	mu           sync.Mutex
	strikes      int
	benchedUntil time.Time
}

func (s *poolServer) benched(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return now.Before(s.benchedUntil)
}

// recordSuccess clears a server's strikes; a success on a benched server
// unbenches it immediately.
func (p *ClientPool) recordSuccess(s *poolServer) {
	now := p.cfg.now()
	s.mu.Lock()
	wasBenched := now.Before(s.benchedUntil)
	s.strikes = 0
	s.benchedUntil = time.Time{}
	s.mu.Unlock()
	if wasBenched {
		if m := p.cfg.Metrics; m != nil {
			m.Unbenches.Inc()
		}
		if p.cfg.Events != nil {
			p.cfg.Events.Emit(obs.Event{Name: "server_unbenched", Fields: []obs.Field{
				{Key: "server", Value: s.addr},
			}})
		}
	}
	p.updateBenchedGauge()
}

// recordFailure adds a strike and benches the server once it accumulates
// QuarantineAfter of them.
func (p *ClientPool) recordFailure(s *poolServer) {
	now := p.cfg.now()
	s.mu.Lock()
	wasBenched := now.Before(s.benchedUntil)
	s.strikes++
	benched := false
	if s.strikes >= p.cfg.QuarantineAfter {
		s.benchedUntil = now.Add(p.cfg.Cooldown)
		benched = !wasBenched
	}
	strikes := s.strikes
	s.mu.Unlock()
	if benched {
		if m := p.cfg.Metrics; m != nil {
			m.Benches.Inc()
		}
		if p.cfg.Events != nil {
			p.cfg.Events.Emit(obs.Event{Name: "server_benched", Fields: []obs.Field{
				{Key: "server", Value: s.addr},
				{Key: "strikes", Value: strikes},
				{Key: "cooldown", Value: p.cfg.Cooldown.String()},
			}})
		}
	}
	p.updateBenchedGauge()
}

// updateBenchedGauge recomputes how many servers sit inside a bench
// window right now. Bench expiry is passive (no event fires when a
// cooldown lapses), so the gauge refreshes on every health transition —
// with a handful of servers per pool the scan is negligible.
func (p *ClientPool) updateBenchedGauge() {
	m := p.cfg.Metrics
	if m == nil {
		return
	}
	now := p.cfg.now()
	n := 0
	for _, s := range p.servers {
		if s.benched(now) {
			n++
		}
	}
	m.BenchedServers.Set(float64(n))
}

// ClientPool drives a campaign across several measurement servers — the
// many-testbeds generalization of the paper's two-machine setup. It
// implements core.Runner and core.ContextRunner and is safe for concurrent
// use: each concurrent measurement grabs whichever server is free
// (work-stealing — fast servers naturally take more measurements), so
// wrapping a ClientPool in a core.PoolRunner with one worker per server
// keeps every testbed busy.
//
// Fault tolerance reuses the single-client machinery per server (stream
// poisoning, redial with backoff, identity verification) and adds two
// pool-level behaviors: a measurement that hits a transport error fails
// over to the next free server, and a server with QuarantineAfter
// consecutive failures is benched for Cooldown — the pool stops routing to
// it unless every server is benched, and its first success unbenches it.
type ClientPool struct {
	cfg     PoolConfig
	servers []*poolServer
	free    chan *poolServer
	hello   Hello

	mu     sync.Mutex
	closed bool
}

// DialPool connects to every address and verifies the servers all announce
// the same topology and task count — a pool mixing workloads would produce
// a statistically meaningless sample. At least one address is required;
// every server must be reachable at dial time (fail fast on typos; mid-
// campaign failures are handled gracefully instead).
func DialPool(addrs []string, cfg PoolConfig) (*ClientPool, error) {
	cfg = cfg.withDefaults()
	if len(addrs) == 0 {
		return nil, errors.New("remote: pool needs at least one server address")
	}
	p := &ClientPool{cfg: cfg, free: make(chan *poolServer, len(addrs))}
	for i, addr := range addrs {
		addr := addr
		ccfg := cfg.Client
		ccfg.Dial = func() (net.Conn, error) { return cfg.DialAddr(addr) }
		client, err := DialConfig(ccfg)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("remote: pool server %s: %w", addr, err)
		}
		if i == 0 {
			p.hello = client.Hello()
		} else if h := client.Hello(); h.Topology != p.hello.Topology || h.Tasks != p.hello.Tasks {
			client.Close()
			p.Close()
			return nil, fmt.Errorf("remote: pool server %s runs %d tasks on %v, but %s runs %d tasks on %v",
				addr, h.Tasks, h.Topology, addrs[0], p.hello.Tasks, p.hello.Topology)
		}
		s := &poolServer{addr: addr, client: client}
		p.servers = append(p.servers, s)
		p.free <- s
	}
	return p, nil
}

// Hello returns the announcement shared by every server of the pool.
func (p *ClientPool) Hello() Hello { return p.hello }

// Topology returns the pooled testbeds' common topology.
func (p *ClientPool) Topology() t2.Topology { return p.hello.Topology }

// Tasks returns the pooled workload's task count.
func (p *ClientPool) Tasks() int { return p.hello.Tasks }

// Size returns the number of servers in the pool.
func (p *ClientPool) Size() int { return len(p.servers) }

// acquire blocks until a server is free and returns the best candidate:
// it scoops up every server that is free right now and prefers a healthy
// one; when all of them are benched it settles for the one whose bench
// expires soonest (availability over purity — the pool degrades to
// best-effort rather than stalling the campaign on a healthy-but-busy
// server).
func (p *ClientPool) acquire(ctx context.Context) (*poolServer, error) {
	var candidates []*poolServer
	select {
	case s := <-p.free:
		candidates = append(candidates, s)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
scoop:
	for len(candidates) < len(p.servers) {
		select {
		case s := <-p.free:
			candidates = append(candidates, s)
		default:
			break scoop
		}
	}
	now := p.cfg.now()
	pick := 0
	for i, s := range candidates {
		if !s.benched(now) {
			pick = i
			break
		}
		s.mu.Lock()
		until := s.benchedUntil
		s.mu.Unlock()
		candidates[pick].mu.Lock()
		best := candidates[pick].benchedUntil
		candidates[pick].mu.Unlock()
		if until.Before(best) {
			pick = i
		}
	}
	for i, s := range candidates {
		if i != pick {
			p.free <- s
		}
	}
	return candidates[pick], nil
}

func (p *ClientPool) release(s *poolServer) { p.free <- s }

// Measure implements core.Runner with a background context.
func (p *ClientPool) Measure(a assign.Assignment) (float64, error) {
	return p.MeasureContext(context.Background(), a)
}

// MeasureContext implements core.ContextRunner: grab a free server,
// measure, fail over to another on a transport error. Permanent errors
// (server-side measurement failures, identity mismatches) return
// immediately — they would fail identically everywhere. If Failover
// distinct servers all fail transiently the last transport error is
// returned as-is (transient), for an outer ResilientRunner to retry.
func (p *ClientPool) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return 0, core.Permanent(errors.New("remote: client pool is closed"))
	}
	p.mu.Unlock()

	failover := p.cfg.Failover
	if failover <= 0 || failover > len(p.servers) {
		failover = len(p.servers)
	}
	var lastErr error
	for try := 0; try < failover; try++ {
		s, err := p.acquire(ctx)
		if err != nil {
			return 0, err
		}
		perf, err := s.client.MeasureContext(ctx, a)
		if err == nil {
			p.recordSuccess(s)
			p.release(s)
			return perf, nil
		}
		if core.IsPermanent(err) || ctx.Err() != nil {
			p.release(s)
			return 0, err
		}
		p.recordFailure(s)
		p.release(s)
		lastErr = err
		if try+1 < failover {
			// The measurement moves on to another server.
			if m := p.cfg.Metrics; m != nil {
				m.Failovers.Inc()
			}
			if p.cfg.Events != nil {
				p.cfg.Events.Emit(obs.Event{Name: "failover", Fields: []obs.Field{
					{Key: "server", Value: s.addr},
					{Key: "try", Value: try + 1},
					{Key: "error", Value: err.Error()},
				}})
			}
		}
	}
	return 0, fmt.Errorf("remote: %d server(s) failed, last: %w", failover, lastErr)
}

// Strikes reports, per server address, the current consecutive-failure
// count — observability for operators deciding whether a testbed needs
// attention.
func (p *ClientPool) Strikes() map[string]int {
	out := make(map[string]int, len(p.servers))
	for _, s := range p.servers {
		s.mu.Lock()
		out[s.addr] = s.strikes
		s.mu.Unlock()
	}
	return out
}

// Close releases every connection. Subsequent measurements fail
// permanently.
func (p *ClientPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	var first error
	for _, s := range p.servers {
		if err := s.client.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
