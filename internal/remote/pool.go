package remote

import (
	"context"
	"errors"
	"fmt"
	"net"

	"strings"
	"sync"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// PoolConfig tunes a multi-server client pool.
type PoolConfig struct {
	// Client is the per-server reconnect policy (RedialAttempts, backoff);
	// its Dial field is ignored — each server gets a dialer for its own
	// address (or DialAddr below).
	Client ClientConfig
	// DialAddr opens the transport to one server; nil means plain TCP.
	// Tests route this through fault-injection proxies.
	DialAddr func(addr string) (net.Conn, error)
	// QuarantineAfter is how many consecutive transport failures bench a
	// server (its reconnect machinery keeps trying lazily, but the pool
	// stops preferring it). Default 3.
	QuarantineAfter int
	// Cooldown is how long a benched server stays unpreferred. Default 5 s.
	Cooldown time.Duration
	// Failover is how many distinct servers one measurement may try before
	// reporting the last transport error (which is transient — a
	// core.ResilientRunner above the pool retries the whole cycle with
	// backoff). 0 means every current member.
	Failover int
	// Events receives "failover", "server_benched", "server_unbenched",
	// "server_joined", "server_left" and "server_drained" events, each
	// carrying the server address. nil disables. Per-connection events
	// (reconnects, poisonings) come from the Client config above.
	Events obs.EventSink
	// Metrics counts failovers and bench/membership churn. nil disables.
	Metrics *PoolMetrics
	// now is a test seam; nil means time.Now.
	now func() time.Time
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.DialAddr == nil {
		c.DialAddr = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Typed pool errors. ErrPoolClosed is permanent — the pool will never
// serve again. ErrNoServers is transient — membership is dynamic, so a
// benched server may recover or a new one may join; an outer
// core.ResilientRunner owns the bounded backoff between tries.
var (
	// ErrPoolClosed marks measurements attempted after Close.
	ErrPoolClosed = errors.New("remote: client pool is closed")
	// ErrNoServers marks an acquire that found nothing to wait for:
	// the membership is empty, or every member is benched with no
	// in-flight measurement left that could unbench one. The error text
	// carries the per-server strike summary.
	ErrNoServers = errors.New("remote: no servers available")
)

// serverState is one member's place in the drain state machine.
type serverState int

const (
	// stateActive members take new measurements.
	stateActive serverState = iota
	// stateSuspect members (missed heartbeats) are deprioritized: the
	// pool routes to them only when no active member is usable.
	stateSuspect
	// stateDraining members refuse new measurements; an in-flight one
	// finishes, then the member is closed and removed.
	stateDraining
)

func (s serverState) String() string {
	switch s {
	case stateActive:
		return "active"
	case stateSuspect:
		return "suspect"
	default:
		return "draining"
	}
}

// poolServer is one member of the pool: its reconnecting client plus the
// health and membership bookkeeping. All fields are guarded by the pool's
// mutex — membership transitions and scheduling must see one consistent
// picture.
type poolServer struct {
	addr   string
	client *Client

	state        serverState
	busy         bool
	gone         bool // finalized: closed and removed from membership
	strikes      int
	benchedUntil time.Time
	onDrained    []func() // run (unlocked) once the member is finalized
}

func (s *poolServer) benched(now time.Time) bool { return now.Before(s.benchedUntil) }

// ClientPool drives a campaign across a dynamic fleet of measurement
// servers — the many-testbeds generalization of the paper's two-machine
// setup. It implements core.Runner and core.ContextRunner and is safe for
// concurrent use: each concurrent measurement grabs whichever member is
// free (work-stealing — fast servers naturally take more measurements), so
// wrapping a ClientPool in a core.PoolRunner keeps every testbed busy.
//
// Membership is dynamic: servers join mid-campaign (Add, typically driven
// by a Registry as they announce themselves), are deprioritized while
// their heartbeats are missing (SetSuspect), drain gracefully (Drain —
// the in-flight measurement finishes, no new one starts, then the client
// closes) and leave (Remove). Every joiner is identity-verified against
// the pool's Hello — a pool mixing workloads would produce a
// statistically meaningless sample.
//
// Fault tolerance reuses the single-client machinery per member (stream
// poisoning, redial with backoff, identity verification) and adds the
// pool-level behaviors: failover to the next free member on a transport
// error, and a bench after QuarantineAfter consecutive failures. When the
// whole membership is benched or empty the pool fails fast with
// ErrNoServers instead of spinning — the resilient wrapper above it owns
// the backoff, and a heartbeat-driven join may repopulate the pool
// between tries.
type ClientPool struct {
	cfg PoolConfig

	mu        sync.Mutex
	cond      *sync.Cond
	members   map[string]*poolServer
	order     []string // join order, for deterministic scheduling scans
	hello     Hello
	haveHello bool
	closed    bool
}

// NewPool creates an empty membership-driven pool; servers join via Add
// (or via a Registry wired to this pool). The pool's identity (Hello) is
// set by the first joiner; use WaitReady to block until the fleet has
// members.
func NewPool(cfg PoolConfig) *ClientPool {
	p := &ClientPool{cfg: cfg.withDefaults(), members: make(map[string]*poolServer)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// DialPool connects to every address and verifies the servers all announce
// the same topology and task count. At least one address is required;
// every server must be reachable at dial time (fail fast on typos; mid-
// campaign failures are handled gracefully instead). To open several
// connections to one server, repeat its address — each occurrence joins
// under a distinct member key.
func DialPool(addrs []string, cfg PoolConfig) (*ClientPool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("remote: pool needs at least one server address")
	}
	p := NewPool(cfg)
	seen := make(map[string]int)
	for _, addr := range addrs {
		key := addr
		if n := seen[addr]; n > 0 {
			key = fmt.Sprintf("%s#%d", addr, n)
		}
		seen[addr]++
		if err := p.add(key, addr); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// Add dials addr, verifies its announcement against the pool's identity,
// and admits it as a member. Adding an address that is already an active
// or suspect member refreshes it to active and succeeds (a re-announcing
// server after a network wobble is a rejoin, not an error); adding one
// that is draining fails.
func (p *ClientPool) Add(addr string) error { return p.add(addr, addr) }

func (p *ClientPool) add(key, addr string) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if s, ok := p.members[key]; ok {
		if s.state == stateDraining {
			p.mu.Unlock()
			return fmt.Errorf("remote: pool server %s is draining", key)
		}
		s.state = stateActive
		p.updateGauges()
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()

	// Dial outside the lock: a slow joiner must not stall the campaign.
	ccfg := p.cfg.Client
	ccfg.Dial = func() (net.Conn, error) { return p.cfg.DialAddr(addr) }
	client, err := DialConfig(ccfg)
	if err != nil {
		return fmt.Errorf("remote: pool server %s: %w", addr, err)
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		client.Close()
		return ErrPoolClosed
	}
	if s, ok := p.members[key]; ok {
		// A concurrent add won the race; keep the established member.
		client.Close()
		if s.state == stateDraining {
			return fmt.Errorf("remote: pool server %s is draining", key)
		}
		s.state = stateActive
		p.updateGauges()
		p.cond.Broadcast()
		return nil
	}
	h := client.Hello()
	if !p.haveHello {
		p.hello = h
		p.haveHello = true
	} else if h.Topology != p.hello.Topology || h.Tasks != p.hello.Tasks {
		client.Close()
		return fmt.Errorf("remote: pool server %s runs %d tasks on %v, but the pool runs %d tasks on %v",
			addr, h.Tasks, h.Topology, p.hello.Tasks, p.hello.Topology)
	}
	p.members[key] = &poolServer{addr: key, client: client}
	p.order = append(p.order, key)
	if m := p.cfg.Metrics; m != nil {
		m.Joins.Inc()
	}
	p.emit("server_joined", obs.Field{Key: "server", Value: key})
	p.updateGauges()
	p.cond.Broadcast()
	return nil
}

// SetSuspect flips a member between active and suspect. Suspect members
// (missed heartbeats) stay in the pool but only take work when no active
// member is usable — their measurement link may well be fine, so a fleet
// reduced to suspects degrades instead of stalling.
func (p *ClientPool) SetSuspect(addr string, suspect bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.members[addr]
	if !ok || s.state == stateDraining {
		return
	}
	was := s.state
	if suspect {
		s.state = stateSuspect
	} else {
		s.state = stateActive
	}
	if s.state != was {
		p.updateGauges()
		p.cond.Broadcast()
	}
}

// Drain starts a graceful departure: the member takes no new
// measurements, its in-flight one (if any) finishes and commits, then the
// client closes, the member leaves, and onDrained (optional) runs — the
// hook a Registry uses to acknowledge the drain back to the departing
// server. Draining an unknown address reports onDrained immediately.
func (p *ClientPool) Drain(addr string, onDrained func()) {
	p.mu.Lock()
	s, ok := p.members[addr]
	if !ok {
		p.mu.Unlock()
		if onDrained != nil {
			onDrained()
		}
		return
	}
	s.state = stateDraining
	if onDrained != nil {
		s.onDrained = append(s.onDrained, onDrained)
	}
	var callbacks []func()
	if !s.busy {
		callbacks = p.finalizeLocked(s, "drained")
	}
	p.mu.Unlock()
	for _, f := range callbacks {
		f()
	}
}

// Remove evicts a member immediately: its connection is closed even if a
// measurement is in flight (the measurement fails with a transport error
// and fails over to another member). Use Drain for graceful departures.
func (p *ClientPool) Remove(addr, reason string) {
	p.mu.Lock()
	s, ok := p.members[addr]
	if !ok {
		p.mu.Unlock()
		return
	}
	s.state = stateDraining // no new work while we tear down
	var callbacks []func()
	if s.busy {
		// Interrupt the in-flight measurement; release finalizes.
		s.client.Close()
	} else {
		callbacks = p.finalizeLocked(s, reason)
	}
	p.mu.Unlock()
	for _, f := range callbacks {
		f()
	}
}

// finalizeLocked closes and deletes a member. Callers hold p.mu and must
// run the returned callbacks after unlocking.
func (p *ClientPool) finalizeLocked(s *poolServer, reason string) []func() {
	if s.gone {
		return nil
	}
	s.gone = true
	s.client.Close()
	delete(p.members, s.addr)
	for i, a := range p.order {
		if a == s.addr {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
	if m := p.cfg.Metrics; m != nil {
		m.Leaves.Inc()
		if reason == "drained" {
			m.Drains.Inc()
		}
	}
	name := "server_left"
	if reason == "drained" {
		name = "server_drained"
	}
	p.emit(name, obs.Field{Key: "server", Value: s.addr}, obs.Field{Key: "reason", Value: reason})
	p.updateGauges()
	p.cond.Broadcast()
	return s.onDrained
}

// emit sends a pool event; callers may hold p.mu (sinks must not call
// back into the pool).
func (p *ClientPool) emit(name string, fields ...obs.Field) {
	if p.cfg.Events != nil {
		p.cfg.Events.Emit(obs.Event{Name: name, Fields: fields})
	}
}

// updateGauges recomputes the membership gauges. Callers hold p.mu.
func (p *ClientPool) updateGauges() {
	m := p.cfg.Metrics
	if m == nil {
		return
	}
	now := p.cfg.now()
	benched, suspects := 0, 0
	for _, s := range p.members {
		if s.benched(now) {
			benched++
		}
		if s.state == stateSuspect {
			suspects++
		}
	}
	m.Members.Set(float64(len(p.members)))
	m.SuspectServers.Set(float64(suspects))
	m.BenchedServers.Set(float64(benched))
}

// Hello returns the announcement shared by every member. Valid once the
// first member has joined (always, for a DialPool pool).
func (p *ClientPool) Hello() Hello {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hello
}

// Topology returns the pooled testbeds' common topology.
func (p *ClientPool) Topology() t2.Topology { return p.Hello().Topology }

// Tasks returns the pooled workload's task count.
func (p *ClientPool) Tasks() int { return p.Hello().Tasks }

// Size returns the current number of members.
func (p *ClientPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.members)
}

// watchCtx wakes cond waiters when ctx is cancelled. The broadcast runs
// under the pool mutex so a waiter between its ctx check and cond.Wait
// cannot miss it. Close the returned channel to stop the watcher.
func (p *ClientPool) watchCtx(ctx context.Context) chan<- struct{} {
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		case <-stop:
		}
	}()
	return stop
}

// WaitReady blocks until the pool has at least n members (after which
// Hello is meaningful) or ctx expires.
func (p *ClientPool) WaitReady(ctx context.Context, n int) error {
	stop := p.watchCtx(ctx)
	defer close(stop)
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.members) < n {
		if p.closed {
			return ErrPoolClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		p.cond.Wait()
	}
	return nil
}

// strikeSummaryLocked renders per-server strike counts for ErrNoServers
// diagnostics. Callers hold p.mu.
func (p *ClientPool) strikeSummaryLocked() string {
	if len(p.members) == 0 {
		return "membership is empty"
	}
	parts := make([]string, 0, len(p.members))
	for _, addr := range p.order {
		s := p.members[addr]
		parts = append(parts, fmt.Sprintf("%s: %d strike(s), %s", addr, s.strikes, s.state))
	}
	return strings.Join(parts, "; ")
}

// acquire blocks until a member is free and returns the best candidate:
// an unbenched active member first, an unbenched suspect as a fallback,
// the benched member whose bench expires soonest only while a healthy one
// is busy (it may free up). When there is nothing to wait for — empty
// membership, or every member benched and idle — acquire fails fast with
// ErrNoServers carrying the strike summary, instead of spinning on doomed
// servers until the context deadline; the error is transient, so the
// resilient layer above applies its bounded backoff and retries, by which
// time a bench may have lapsed or a new server joined.
func (p *ClientPool) acquire(ctx context.Context) (*poolServer, error) {
	stop := p.watchCtx(ctx)
	defer close(stop)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil, core.Permanent(ErrPoolClosed)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := p.cfg.now()
		var active, suspect, benched *poolServer
		busyUsable := false
		for _, addr := range p.order {
			s := p.members[addr]
			if s.state == stateDraining {
				continue
			}
			if s.busy {
				busyUsable = true
				continue
			}
			switch {
			case !s.benched(now) && s.state == stateActive:
				if active == nil {
					active = s
				}
			case !s.benched(now):
				if suspect == nil {
					suspect = s
				}
			default:
				if benched == nil || s.benchedUntil.Before(benched.benchedUntil) {
					benched = s
				}
			}
		}
		pick := active
		if pick == nil {
			pick = suspect
		}
		if pick != nil {
			pick.busy = true
			// Rotate the pick to the back of the scan order so load (and
			// failure detection) spreads round-robin across the fleet
			// instead of pinning to the oldest member.
			for i, a := range p.order {
				if a == pick.addr {
					p.order = append(append(p.order[:i], p.order[i+1:]...), a)
					break
				}
			}
			return pick, nil
		}
		if !busyUsable {
			if benched == nil {
				// Nothing usable at all: empty membership or only
				// draining members.
				return nil, fmt.Errorf("%w (%s)", ErrNoServers, p.strikeSummaryLocked())
			}
			// Every member is benched and idle: nothing in flight could
			// unbench one, so waiting would just spin out the context.
			return nil, fmt.Errorf("%w: all %d member(s) benched (%s)",
				ErrNoServers, len(p.members), p.strikeSummaryLocked())
		}
		p.cond.Wait()
	}
}

// release returns a member after a measurement; a member that started
// draining while busy is finalized here, once its in-flight work is done.
func (p *ClientPool) release(s *poolServer) {
	p.mu.Lock()
	s.busy = false
	var callbacks []func()
	switch {
	case s.state == stateDraining:
		callbacks = p.finalizeLocked(s, "drained")
	case p.closed:
		callbacks = p.finalizeLocked(s, "pool closed")
	default:
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	for _, f := range callbacks {
		f()
	}
}

// recordSuccess clears a member's strikes; a success on a benched member
// unbenches it immediately.
func (p *ClientPool) recordSuccess(s *poolServer) {
	p.mu.Lock()
	wasBenched := s.benched(p.cfg.now())
	s.strikes = 0
	s.benchedUntil = time.Time{}
	if wasBenched {
		if m := p.cfg.Metrics; m != nil {
			m.Unbenches.Inc()
		}
		p.emit("server_unbenched", obs.Field{Key: "server", Value: s.addr})
	}
	p.updateGauges()
	p.mu.Unlock()
}

// recordFailure adds a strike and benches the member once it accumulates
// QuarantineAfter of them.
func (p *ClientPool) recordFailure(s *poolServer) {
	p.mu.Lock()
	now := p.cfg.now()
	wasBenched := s.benched(now)
	s.strikes++
	benched := false
	if s.strikes >= p.cfg.QuarantineAfter {
		s.benchedUntil = now.Add(p.cfg.Cooldown)
		benched = !wasBenched
	}
	strikes := s.strikes
	if benched {
		if m := p.cfg.Metrics; m != nil {
			m.Benches.Inc()
		}
		p.emit("server_benched",
			obs.Field{Key: "server", Value: s.addr},
			obs.Field{Key: "strikes", Value: strikes},
			obs.Field{Key: "cooldown", Value: p.cfg.Cooldown.String()})
	}
	p.updateGauges()
	p.mu.Unlock()
}

// Measure implements core.Runner with a background context.
func (p *ClientPool) Measure(a assign.Assignment) (float64, error) {
	return p.MeasureContext(context.Background(), a)
}

// MeasureContext implements core.ContextRunner: grab a free member,
// measure, fail over to another on a transport error. Permanent errors
// (server-side measurement failures, identity mismatches) return
// immediately — they would fail identically everywhere. If Failover
// distinct members all fail transiently the last transport error is
// returned as-is (transient), for an outer ResilientRunner to retry.
func (p *ClientPool) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	failover := p.cfg.Failover
	if n := p.Size(); failover <= 0 || failover > n {
		failover = n
	}
	if failover < 1 {
		failover = 1
	}
	var lastErr error
	for try := 0; try < failover; try++ {
		s, err := p.acquire(ctx)
		if err != nil {
			return 0, err
		}
		perf, err := s.client.MeasureContext(ctx, a)
		if err == nil {
			p.recordSuccess(s)
			p.release(s)
			return perf, nil
		}
		if core.IsPermanent(err) || ctx.Err() != nil {
			p.release(s)
			return 0, err
		}
		p.recordFailure(s)
		p.release(s)
		lastErr = err
		if try+1 < failover {
			// The measurement moves on to another member.
			if m := p.cfg.Metrics; m != nil {
				m.Failovers.Inc()
			}
			p.emit("failover",
				obs.Field{Key: "server", Value: s.addr},
				obs.Field{Key: "try", Value: try + 1},
				obs.Field{Key: "error", Value: err.Error()})
		}
	}
	return 0, fmt.Errorf("remote: %d server(s) failed, last: %w", failover, lastErr)
}

// Strikes reports, per member address, the current consecutive-failure
// count — observability for operators deciding whether a testbed needs
// attention.
func (p *ClientPool) Strikes() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.members))
	for addr, s := range p.members {
		out[addr] = s.strikes
	}
	return out
}

// Members reports the current membership, sorted by address, with each
// member's drain/suspect state — what a registry-driven fleet looks like
// right now.
func (p *ClientPool) Members() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.members))
	for addr, s := range p.members {
		out[addr] = s.state.String()
	}
	return out
}

// Addrs returns the member addresses in join order.
func (p *ClientPool) Addrs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.order...)
}

// Close releases every connection and wakes every blocked acquire with
// ErrPoolClosed. It is idempotent and safe to race with in-flight
// measurements: a release after Close never touches a freed structure,
// and subsequent measurements fail permanently.
func (p *ClientPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	var first error
	var callbacks []func()
	for _, addr := range append([]string(nil), p.order...) {
		s := p.members[addr]
		if err := s.client.Close(); err != nil && first == nil {
			first = err
		}
		if !s.busy {
			callbacks = append(callbacks, p.finalizeLocked(s, "pool closed")...)
		}
		// Busy members finalize on release; their client is already
		// closed, so the in-flight measurement unblocks with an error.
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, f := range callbacks {
		f()
	}
	return first
}
