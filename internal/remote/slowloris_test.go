package remote

// Slow-write (slowloris) peers: a client whose request bytes trickle in
// one at a time must not wedge a measurement server — the per-frame read
// deadline reaps the connection — and the campaign-side resilient wrapper
// must quarantine the doomed measurement instead of hanging.

import (
	"errors"
	"net"
	"testing"
	"time"

	"optassign/internal/core"
	"optassign/internal/faulty"
)

func TestServerReadDeadlineDefeatsSlowloris(t *testing.T) {
	tb, addr, shutdown := startTestbedServer(t, &Server{
		Name:        "sim",
		ReadTimeout: 50 * time.Millisecond,
	})
	defer shutdown()

	// Every request byte takes 5 ms through the proxy, so a ~30-byte
	// request frame needs ~150 ms — far past the server's 50 ms read
	// deadline. The hello and response directions run at full speed; only
	// the client's writes are slowloris-slow.
	proxy, err := faulty.NewProxyConfig(addr, faulty.ProxyConfig{SlowWrite: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client, err := DialConfig(ClientConfig{
		Dial:           func() (net.Conn, error) { return net.Dial("tcp", proxy.Addr()) },
		RedialAttempts: 1,
		RedialBase:     time.Millisecond,
		RedialMax:      2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resilient := core.NewResilientRunner(client, core.ResilientConfig{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})

	// The measurement must fail by quarantine in bounded time — the read
	// deadline fires server-side, the client sees its stream die, and the
	// retry budget runs out. A hang here means the server waited forever
	// on the trickling frame.
	done := make(chan error, 1)
	go func() {
		_, err := resilient.Measure(validAssignmentFor(tb.TaskCount()))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("slowloris measurement succeeded, want quarantine")
		}
		if !errors.Is(err, core.ErrQuarantined) {
			t.Fatalf("err = %v, want ErrQuarantined", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("slowloris request hung the campaign instead of quarantining")
	}

	// The server itself must have survived the attack: a direct,
	// well-behaved client still measures.
	direct, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	want, err := tb.Measure(validAssignmentFor(tb.TaskCount()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := direct.Measure(validAssignmentFor(tb.TaskCount()))
	if err != nil {
		t.Fatalf("server unhealthy after slowloris: %v", err)
	}
	if got != want {
		t.Fatalf("post-slowloris measurement %v != local %v", got, want)
	}
}
