// Package remote runs measurement campaigns against a testbed on another
// machine, mirroring the paper's physical setup (one T5220 generating
// traffic, one executing assignments, §4): a Server wraps any core.Runner —
// typically the simulated testbed here, a thread-pinning harness on real
// hardware — behind a line-oriented JSON protocol, and a Client implements
// core.Runner over the connection, so CollectSample, Iterate and the whole
// statistical pipeline drive a remote machine unchanged.
//
// Protocol (newline-delimited JSON over TCP):
//
//	server → client  hello:    {"topology":{...},"tasks":N,"name":"..."}
//	client → server  request:  {"id":1,"ctx":[...]}
//	server → client  response: {"id":1,"perf":1.23e6} | {"id":1,"error":"..."}
package remote

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/t2"
)

// Hello is the server's greeting: what workload this testbed measures.
type Hello struct {
	Topology t2.Topology `json:"topology"`
	Tasks    int         `json:"tasks"`
	Name     string      `json:"name,omitempty"`
}

// Request asks for one assignment to be executed and measured.
type Request struct {
	ID  uint64 `json:"id"`
	Ctx []int  `json:"ctx"`
}

// Response carries the measurement or the failure.
type Response struct {
	ID    uint64  `json:"id"`
	Perf  float64 `json:"perf,omitempty"`
	Error string  `json:"error,omitempty"`
}

// Server exposes a Runner to remote clients.
type Server struct {
	Runner core.Runner
	Topo   t2.Topology
	Tasks  int
	Name   string
}

// Serve accepts connections until the listener closes. Each connection is
// handled on its own goroutine; requests within a connection are processed
// in order (measurements on one machine are inherently serial anyway).
func (s *Server) Serve(l net.Listener) error {
	if s.Runner == nil {
		return errors.New("remote: server has no runner")
	}
	if err := s.Topo.Validate(); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Hello{Topology: s.Topo, Tasks: s.Tasks, Name: s.Name}); err != nil {
		return
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or garbage: drop the connection
		}
		resp := Response{ID: req.ID}
		a := assign.Assignment{Topo: s.Topo, Ctx: req.Ctx}
		switch {
		case len(req.Ctx) != s.Tasks:
			resp.Error = fmt.Sprintf("remote: assignment has %d tasks, testbed runs %d", len(req.Ctx), s.Tasks)
		default:
			perf, err := s.Runner.Measure(a)
			if err != nil {
				resp.Error = err.Error()
			} else {
				resp.Perf = perf
			}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Client is a core.Runner that measures on a remote Server.
type Client struct {
	mu    sync.Mutex
	conn  net.Conn
	enc   *json.Encoder
	dec   *json.Decoder
	hello Hello
	next  uint64
}

// Dial connects to a measurement server and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (e.g. from a custom dialer or
// an in-memory pipe in tests).
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}
	if err := c.dec.Decode(&c.hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: handshake: %w", err)
	}
	if err := c.hello.Topology.Validate(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: server announced invalid topology: %w", err)
	}
	return c, nil
}

// Hello returns the server's announcement.
func (c *Client) Hello() Hello { return c.hello }

// Topology returns the remote machine's topology.
func (c *Client) Topology() t2.Topology { return c.hello.Topology }

// Tasks returns the remote workload's task count.
func (c *Client) Tasks() int { return c.hello.Tasks }

// Measure implements core.Runner over the wire.
func (c *Client) Measure(a assign.Assignment) (float64, error) {
	if a.Topo != c.hello.Topology {
		return 0, fmt.Errorf("remote: assignment topology %v differs from server's %v", a.Topo, c.hello.Topology)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	req := Request{ID: c.next, Ctx: a.Ctx}
	if err := c.enc.Encode(req); err != nil {
		return 0, fmt.Errorf("remote: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, fmt.Errorf("remote: server closed the connection")
		}
		return 0, fmt.Errorf("remote: receive: %w", err)
	}
	if resp.ID != req.ID {
		return 0, fmt.Errorf("remote: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return 0, fmt.Errorf("remote: server: %s", resp.Error)
	}
	return resp.Perf, nil
}

// Close releases the connection.
func (c *Client) Close() error { return c.conn.Close() }
