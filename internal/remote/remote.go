// Package remote runs measurement campaigns against a testbed on another
// machine, mirroring the paper's physical setup (one T5220 generating
// traffic, one executing assignments, §4): a Server wraps any core.Runner —
// typically the simulated testbed here, a thread-pinning harness on real
// hardware — behind a line-oriented JSON protocol, and a Client implements
// core.Runner over the connection, so CollectSample, Iterate and the whole
// statistical pipeline drive a remote machine unchanged.
//
// Protocol (newline-delimited JSON over TCP):
//
//	server → client  hello:    {"topology":{...},"tasks":N,"name":"..."}
//	client → server  request:  {"id":1,"ctx":[...]}
//	server → client  response: {"id":1,"perf":1.23e6} | {"id":1,"error":"..."}
//
// Fault tolerance: the stream is request/response in lockstep, so after
// any transport error its state is unknown — a later call could pair a
// stale response with a new request. The Client therefore poisons itself
// on the first transport error (or garbage / mismatched-ID response),
// drops the connection, and — when it owns a dialer — transparently
// redials with backoff and re-handshakes before the next measurement,
// verifying the server still announces the same topology and task count.
// Server-reported measurement errors travel inside a well-formed response
// and do not poison the stream.
package remote

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// Hello is the server's greeting: what workload this testbed measures.
type Hello struct {
	Topology t2.Topology `json:"topology"`
	Tasks    int         `json:"tasks"`
	Name     string      `json:"name,omitempty"`
}

// Request asks for one assignment to be executed and measured.
type Request struct {
	ID  uint64 `json:"id"`
	Ctx []int  `json:"ctx"`
}

// Response carries the measurement or the failure.
type Response struct {
	ID    uint64  `json:"id"`
	Perf  float64 `json:"perf,omitempty"`
	Error string  `json:"error,omitempty"`
}

// Fleet-membership frame types (newline-delimited JSON over TCP, like the
// measurement protocol). A measurement server dials the controller's
// registry endpoint, announces itself, and heartbeats; the registry
// verifies its identity out-of-band (by dialing the advertised
// measurement address and checking the Hello) and replies:
//
//	server → registry  announce:  {"type":"announce","hello":{...},"addr":"host:9120","identity":"..."}
//	registry → server  welcome:   {"type":"welcome","interval":"1s"}
//	registry → server  reject:    {"type":"reject","error":"..."}
//	server → registry  heartbeat: {"type":"heartbeat","seq":N}
//	server → registry  drain:     {"type":"drain"}
//	registry → server  drained:   {"type":"drained"}
//
// The drain exchange is the graceful-departure handshake: after the
// server sends "drain" the registry stops routing new measurements to it,
// lets the in-flight one finish and commit, closes the measurement
// connection, and only then acknowledges with "drained" — so a SIGTERM'd
// server that waits for the ack is guaranteed to have lost zero committed
// measurements.
const (
	FrameAnnounce  = "announce"
	FrameHeartbeat = "heartbeat"
	FrameDrain     = "drain"
	FrameWelcome   = "welcome"
	FrameReject    = "reject"
	FrameDrained   = "drained"
)

// RegistryFrame is one message of the fleet-membership protocol; Type
// selects which of the optional fields are meaningful.
type RegistryFrame struct {
	Type string `json:"type"`
	// Announce: what the server measures, where to dial it, and the
	// testbed identity string (netdps.Testbed.Identity or equivalent).
	Hello    *Hello `json:"hello,omitempty"`
	Addr     string `json:"addr,omitempty"`
	Identity string `json:"identity,omitempty"`
	// Heartbeat: a monotonically increasing sequence number.
	Seq uint64 `json:"seq,omitempty"`
	// Welcome: the heartbeat interval the registry expects, as a
	// time.Duration string.
	Interval string `json:"interval,omitempty"`
	// Reject: why registration was refused.
	Error string `json:"error,omitempty"`
}

// Server exposes a Runner to remote clients.
type Server struct {
	Runner core.Runner
	Topo   t2.Topology
	Tasks  int
	Name   string
	// ReadTimeout bounds how long a connection may sit idle between
	// requests. Without it a dead peer that never closes its socket
	// pins a handler goroutine forever; with it the handler times out
	// and the connection is reaped. 0 disables the deadline.
	ReadTimeout time.Duration
	// Metrics counts connections, requests and measurement latency —
	// the series cmd/measured exposes on /metrics. nil disables.
	Metrics *ServerMetrics

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
	closed    bool
}

// ErrServerClosed is returned by Serve after Close or Shutdown.
var ErrServerClosed = errors.New("remote: server closed")

// Serve accepts connections until the listener closes or the server is
// shut down. Each connection is handled on its own goroutine; requests
// within a connection are processed in order (measurements on one machine
// are inherently serial anyway).
func (s *Server) Serve(l net.Listener) error {
	if s.Runner == nil {
		return errors.New("remote: server has no runner")
	}
	if err := s.Topo.Validate(); err != nil {
		return err
	}
	if err := s.trackListener(l); err != nil {
		return err
	}
	defer s.untrackListener(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closing() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if !s.trackConn(conn) {
			conn.Close()
			return nil
		}
		go func() {
			defer s.untrackConn(conn)
			s.handle(conn)
		}()
	}
}

// Close stops the server immediately: listeners and live connections are
// closed, then Close waits for every handler goroutine to exit. Serve
// returns nil. Close is idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Shutdown stops the server gracefully: new connections are refused, but
// live ones keep serving until they disconnect or ctx expires, at which
// point they are closed like in Close. It returns ctx.Err() if the
// deadline forced the close, nil if everything drained on its own.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

func (s *Server) closing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) trackListener(l net.Listener) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServerClosed
	}
	if s.listeners == nil {
		s.listeners = make(map[net.Listener]struct{})
	}
	s.listeners[l] = struct{}{}
	return nil
}

func (s *Server) untrackListener(l net.Listener) {
	s.mu.Lock()
	delete(s.listeners, l)
	s.mu.Unlock()
}

func (s *Server) trackConn(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	if s.Metrics != nil {
		s.Metrics.Connections.Inc()
		s.Metrics.ActiveConnections.Inc()
	}
	return true
}

func (s *Server) untrackConn(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	if s.Metrics != nil {
		s.Metrics.ActiveConnections.Dec()
	}
	s.wg.Done()
}

func (s *Server) handle(conn net.Conn) {
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Hello{Topology: s.Topo, Tasks: s.Tasks, Name: s.Name}); err != nil {
		return
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, timeout or garbage: drop the connection
		}
		resp := Response{ID: req.ID}
		a := assign.Assignment{Topo: s.Topo, Ctx: req.Ctx}
		if s.Metrics != nil {
			s.Metrics.Requests.Inc()
		}
		switch {
		case len(req.Ctx) != s.Tasks:
			resp.Error = fmt.Sprintf("remote: assignment has %d tasks, testbed runs %d", len(req.Ctx), s.Tasks)
		default:
			start := time.Time{}
			if s.Metrics != nil {
				start = time.Now()
			}
			perf, err := s.Runner.Measure(a)
			if s.Metrics != nil {
				s.Metrics.MeasureSeconds.Observe(time.Since(start).Seconds())
			}
			if err != nil {
				resp.Error = err.Error()
			} else {
				resp.Perf = perf
			}
		}
		if s.Metrics != nil && resp.Error != "" {
			s.Metrics.MeasureErrors.Inc()
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// ErrStreamBroken marks a client whose request/response stream is in an
// unknown state after a transport error. A client with a dialer recovers
// by redialing; one wrapping a raw connection stays poisoned.
var ErrStreamBroken = errors.New("remote: stream broken")

// ClientConfig tunes the client's reconnect behavior.
type ClientConfig struct {
	// Dial re-establishes the transport after the stream breaks. nil
	// disables reconnection: the first transport error permanently
	// poisons the client.
	Dial func() (net.Conn, error)
	// RedialAttempts bounds how many dials one reconnection tries before
	// giving up (the measurement then fails; the next measurement tries
	// again). Default 5.
	RedialAttempts int
	// RedialBase and RedialMax shape the backoff between redials:
	// RedialBase doubling up to RedialMax. Defaults 100 ms and 3 s.
	RedialBase, RedialMax time.Duration
	// Events receives "stream_poisoned", "reconnect" and
	// "reconnect_failed" events. nil disables.
	Events obs.EventSink
	// Metrics counts requests, poisonings and reconnects; a bundle
	// shared between clients (e.g. across a pool) aggregates them. nil
	// disables.
	Metrics *ClientMetrics
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.RedialAttempts <= 0 {
		c.RedialAttempts = 5
	}
	if c.RedialBase <= 0 {
		c.RedialBase = 100 * time.Millisecond
	}
	if c.RedialMax <= 0 {
		c.RedialMax = 3 * time.Second
	}
	return c
}

// Client is a core.Runner (and core.ContextRunner) that measures on a
// remote Server, transparently reconnecting when it owns a dialer.
type Client struct {
	cfg ClientConfig

	mu     sync.Mutex
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder
	hello  Hello
	next   uint64
	broken bool
	closed bool
}

// Dial connects to a measurement server, performs the handshake, and
// arms automatic reconnection to addr.
func Dial(addr string) (*Client, error) {
	return DialConfig(ClientConfig{Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) }})
}

// DialConfig connects using cfg.Dial and keeps it for reconnection.
func DialConfig(cfg ClientConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Dial == nil {
		return nil, errors.New("remote: DialConfig needs a Dial function")
	}
	conn, err := cfg.Dial()
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg}
	if err := c.attach(conn, true); err != nil {
		return nil, err
	}
	return c, nil
}

// NewClient wraps an established connection (e.g. from a custom dialer or
// an in-memory pipe in tests). Without a dialer the client cannot recover
// from a transport error.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{cfg: ClientConfig{}.withDefaults()}
	if err := c.attach(conn, true); err != nil {
		return nil, err
	}
	return c, nil
}

// attach handshakes on conn and installs it as the client's transport.
// When first is true the announced Hello becomes the client's identity;
// on reconnects the announcement must match it.
func (c *Client) attach(conn net.Conn, first bool) error {
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(bufio.NewReader(conn))
	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return fmt.Errorf("remote: handshake: %w", err)
	}
	if err := hello.Topology.Validate(); err != nil {
		conn.Close()
		return fmt.Errorf("remote: server announced invalid topology: %w", err)
	}
	if !first && (hello.Topology != c.hello.Topology || hello.Tasks != c.hello.Tasks) {
		conn.Close()
		return core.Permanent(fmt.Errorf("remote: server changed between connections: was %d tasks on %v, now %d tasks on %v",
			c.hello.Tasks, c.hello.Topology, hello.Tasks, hello.Topology))
	}
	c.conn, c.enc, c.dec = conn, enc, dec
	if first {
		c.hello = hello
	}
	c.broken = false
	return nil
}

// Hello returns the server's announcement.
func (c *Client) Hello() Hello { return c.hello }

// Topology returns the remote machine's topology.
func (c *Client) Topology() t2.Topology { return c.hello.Topology }

// Tasks returns the remote workload's task count.
func (c *Client) Tasks() int { return c.hello.Tasks }

// Measure implements core.Runner over the wire.
func (c *Client) Measure(a assign.Assignment) (float64, error) {
	return c.MeasureContext(context.Background(), a)
}

// MeasureContext implements core.ContextRunner: ctx cancellation or
// deadline expiry interrupts the in-flight network round trip. Transport
// failures poison the stream (see the package comment) and surface as
// transient errors — wrap the client in a core.ResilientRunner to retry
// them; server-reported measurement failures and identity mismatches are
// marked permanent.
func (c *Client) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	if a.Topo != c.hello.Topology {
		return 0, core.Permanent(fmt.Errorf("remote: assignment topology %v differs from server's %v", a.Topo, c.hello.Topology))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, core.Permanent(errors.New("remote: client is closed"))
	}
	if c.broken {
		if err := c.reconnect(ctx); err != nil {
			return 0, err
		}
	}

	// Tie the blocking socket I/O to ctx: a watcher trips the connection
	// deadline on cancellation, failing the pending read/write. Clear any
	// deadline a previous call's watcher may have left behind first.
	c.conn.SetDeadline(time.Time{})
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		conn := c.conn
		go func() {
			select {
			case <-done:
				conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
		defer close(stop)
	}

	c.next++
	req := Request{ID: c.next, Ctx: a.Ctx}
	if m := c.cfg.Metrics; m != nil {
		m.Requests.Inc()
	}
	if err := c.enc.Encode(req); err != nil {
		c.poison(err)
		return 0, fmt.Errorf("remote: send: %w (%w)", err, ErrStreamBroken)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.poison(err)
		if errors.Is(err, io.EOF) {
			return 0, fmt.Errorf("remote: server closed the connection (%w)", ErrStreamBroken)
		}
		return 0, fmt.Errorf("remote: receive: %w (%w)", err, ErrStreamBroken)
	}
	if resp.ID != req.ID {
		// The stream is desynced: some earlier response is still in
		// flight. Nothing read from this connection can be trusted.
		c.poison(fmt.Errorf("response id %d for request %d", resp.ID, req.ID))
		return 0, fmt.Errorf("remote: response id %d for request %d (%w)", resp.ID, req.ID, ErrStreamBroken)
	}
	if resp.Error != "" {
		// A well-formed error response: the stream is intact, but the
		// measurement itself failed server-side; retrying the same
		// assignment would fail identically.
		return 0, core.Permanent(fmt.Errorf("remote: server: %s", resp.Error))
	}
	return resp.Perf, nil
}

// poison marks the stream unusable and drops the connection. Callers hold
// c.mu.
func (c *Client) poison(cause error) {
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
	if m := c.cfg.Metrics; m != nil {
		m.StreamPoisonings.Inc()
	}
	if c.cfg.Events != nil {
		c.cfg.Events.Emit(obs.Event{Name: "stream_poisoned", Fields: []obs.Field{
			{Key: "error", Value: cause.Error()},
		}})
	}
}

// reconnect redials with exponential backoff and re-handshakes, verifying
// the server still measures the same workload. Callers hold c.mu.
func (c *Client) reconnect(ctx context.Context) error {
	if c.cfg.Dial == nil {
		return core.Permanent(fmt.Errorf("remote: client has no dialer to recover with: %w", ErrStreamBroken))
	}
	delay := c.cfg.RedialBase
	var lastErr error
	for attempt := 1; attempt <= c.cfg.RedialAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		conn, err := c.cfg.Dial()
		if err == nil {
			if err = c.attach(conn, false); err == nil {
				if m := c.cfg.Metrics; m != nil {
					m.Reconnects.Inc()
				}
				if c.cfg.Events != nil {
					c.cfg.Events.Emit(obs.Event{Name: "reconnect", Fields: []obs.Field{
						{Key: "attempts", Value: attempt},
					}})
				}
				return nil
			}
			if core.IsPermanent(err) {
				return err
			}
		}
		lastErr = err
		if attempt == c.cfg.RedialAttempts {
			break
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		if delay *= 2; delay > c.cfg.RedialMax {
			delay = c.cfg.RedialMax
		}
	}
	if m := c.cfg.Metrics; m != nil {
		m.ReconnectFailures.Inc()
	}
	if c.cfg.Events != nil {
		c.cfg.Events.Emit(obs.Event{Name: "reconnect_failed", Fields: []obs.Field{
			{Key: "attempts", Value: c.cfg.RedialAttempts},
			{Key: "error", Value: fmt.Sprint(lastErr)},
		}})
	}
	return fmt.Errorf("remote: reconnect failed after %d attempts: %w (%w)", c.cfg.RedialAttempts, lastErr, ErrStreamBroken)
}

// Close releases the connection. Subsequent measurements fail permanently.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
