package remote

// Multi-server client pool: correctness of pooled measurement, identity
// verification across servers, failover when a server dies mid-batch, and
// survival of deterministic link cuts. The stress tests matter most under
// `go test -race`, which CI runs.

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/faulty"
	"optassign/internal/netdps"
)

// startPoolServer launches a testbed-backed server and returns its address
// plus a kill switch that severs listeners and live connections at once —
// the "testbed went down mid-campaign" event the pool must absorb.
func startPoolServer(t *testing.T, tasks int) (*netdps.Testbed, string, func()) {
	t.Helper()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), tasks)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Runner: tb, Topo: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: "pool-sim"}
	go srv.Serve(l)
	var once sync.Once
	return tb, l.Addr().String(), func() { once.Do(func() { srv.Close() }) }
}

// fastPoolConfig keeps every retry and cooldown small enough for tests.
func fastPoolConfig() PoolConfig {
	return PoolConfig{
		Client: ClientConfig{
			RedialAttempts: 1,
			RedialBase:     time.Millisecond,
			RedialMax:      2 * time.Millisecond,
		},
		QuarantineAfter: 2,
		Cooldown:        50 * time.Millisecond,
	}
}

func TestPoolMeasureMatchesLocal(t *testing.T) {
	tb, addr1, kill1 := startPoolServer(t, 8)
	defer kill1()
	_, addr2, kill2 := startPoolServer(t, 8)
	defer kill2()
	_, addr3, kill3 := startPoolServer(t, 8)
	defer kill3()

	pool, err := DialPool([]string{addr1, addr2, addr3}, fastPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if pool.Size() != 3 {
		t.Fatalf("Size() = %d, want 3", pool.Size())
	}
	if pool.Topology() != tb.Machine.Topo || pool.Tasks() != tb.TaskCount() {
		t.Fatalf("pool identity %+v does not match the testbed", pool.Hello())
	}

	// Drive the pool the way a parallel campaign does: one core worker
	// per server, sharing the concurrency-safe ClientPool.
	workers, err := core.NewReplicatedPool(pool, pool.Size())
	if err != nil {
		t.Fatal(err)
	}
	as, err := assign.Sample(rand.New(rand.NewSource(1)), tb.Machine.Topo, tb.TaskCount(), 60)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range workers.MeasureBatch(context.Background(), as) {
		if o.Err != nil {
			t.Fatalf("draw %d: %v", i, o.Err)
		}
		want, err := tb.Measure(as[i])
		if err != nil {
			t.Fatal(err)
		}
		if o.Perf != want {
			t.Fatalf("draw %d: pooled perf %v, local %v", i, o.Perf, want)
		}
	}
}

func TestDialPoolValidation(t *testing.T) {
	if _, err := DialPool(nil, PoolConfig{}); err == nil {
		t.Error("empty address list accepted")
	}
	// An unreachable server must fail at dial time, not mid-campaign.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	if _, err := DialPool([]string{dead}, fastPoolConfig()); err == nil {
		t.Error("unreachable server accepted")
	}
}

func TestDialPoolRejectsMismatchedServers(t *testing.T) {
	_, addr8, kill8 := startPoolServer(t, 8)
	defer kill8()
	_, addr4, kill4 := startPoolServer(t, 4)
	defer kill4()
	_, err := DialPool([]string{addr8, addr4}, fastPoolConfig())
	if err == nil {
		t.Fatal("pool accepted servers measuring different workloads")
	}
	if !strings.Contains(err.Error(), "tasks") {
		t.Errorf("err = %v, want a workload-mismatch explanation", err)
	}
}

// TestPoolFailoverOnServerDeath kills one of two servers mid-batch: every
// measurement must still succeed via the surviving server, and the dead
// server must accumulate strikes.
func TestPoolFailoverOnServerDeath(t *testing.T) {
	tb, addr1, kill1 := startPoolServer(t, 8)
	defer kill1()
	_, addr2, kill2 := startPoolServer(t, 8)
	defer kill2()

	pool, err := DialPool([]string{addr1, addr2}, fastPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	as, err := assign.Sample(rand.New(rand.NewSource(2)), tb.Machine.Topo, tb.TaskCount(), 40)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range as {
		if i == 10 {
			kill2() // the second testbed dies mid-campaign
		}
		perf, err := pool.MeasureContext(context.Background(), a)
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		want, err := tb.Measure(a)
		if err != nil {
			t.Fatal(err)
		}
		if perf != want {
			t.Fatalf("draw %d: perf %v, want %v", i, perf, want)
		}
	}
	if strikes := pool.Strikes(); strikes[addr2] == 0 {
		t.Errorf("dead server has no strikes: %v", strikes)
	}
}

// TestPoolAllServersDown: when every server is unreachable the pool
// reports a transient error (an outer ResilientRunner owns the retry
// policy), not a permanent one.
func TestPoolAllServersDown(t *testing.T) {
	_, addr, kill := startPoolServer(t, 8)
	pool, err := DialPool([]string{addr}, fastPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	kill()

	_, err = pool.MeasureContext(context.Background(), validAssignment())
	if err == nil {
		t.Fatal("measurement on a dead pool succeeded")
	}
	if core.IsPermanent(err) {
		t.Errorf("dead pool returned a permanent error: %v", err)
	}
	if !errors.Is(err, ErrStreamBroken) {
		t.Errorf("err = %v, want a stream-broken chain", err)
	}
}

// TestPoolSurvivesProxyDrops runs a parallel campaign through proxies that
// deterministically cut every link, with the standard resilient stack on
// top: the campaign must complete with correct values anyway.
func TestPoolSurvivesProxyDrops(t *testing.T) {
	tb, addr, kill := startPoolServer(t, 8)
	defer kill()

	proxies := make(map[string]*faulty.Proxy)
	for i := 0; i < 2; i++ {
		// Drop each connection after 12 server→client frames (the hello
		// counts as one), so every client loses its link repeatedly.
		p, err := faulty.NewProxy(addr, 12)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies[p.Addr()] = p
	}
	cfg := fastPoolConfig()
	cfg.Client.RedialAttempts = 3
	addrs := make([]string, 0, len(proxies))
	for a := range proxies {
		addrs = append(addrs, a)
	}
	pool, err := DialPool(addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	resilient := core.NewResilientRunner(pool, core.ResilientConfig{
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	})
	workers, err := core.NewReplicatedPool(resilient, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	results, skipped, err := core.CollectSampleParallel(context.Background(),
		rng, tb.Machine.Topo, tb.TaskCount(), 50, workers, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("%d draws quarantined despite retries", len(skipped))
	}
	for i, r := range results {
		want, err := tb.Measure(r.Assignment)
		if err != nil {
			t.Fatal(err)
		}
		if r.Perf != want {
			t.Fatalf("result %d: perf %v, want %v", i, r.Perf, want)
		}
	}
	cuts := 0
	for _, p := range proxies {
		cuts += p.Cuts()
	}
	if cuts == 0 {
		t.Fatal("proxies cut nothing; the test exercised no faults")
	}
}

// TestPoolConcurrentStress hammers one pool from many goroutines — the
// shape a core.PoolRunner imposes — and checks every value.
func TestPoolConcurrentStress(t *testing.T) {
	tb, addr1, kill1 := startPoolServer(t, 8)
	defer kill1()
	_, addr2, kill2 := startPoolServer(t, 8)
	defer kill2()
	_, addr3, kill3 := startPoolServer(t, 8)
	defer kill3()

	pool, err := DialPool([]string{addr1, addr2, addr3}, fastPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				a, err := assign.Random(rng, tb.Machine.Topo, tb.TaskCount())
				if err != nil {
					t.Error(err)
					return
				}
				perf, err := pool.MeasureContext(context.Background(), a)
				if err != nil {
					t.Errorf("goroutine %d draw %d: %v", seed, i, err)
					return
				}
				want, err := tb.Measure(a)
				if err != nil {
					t.Error(err)
					return
				}
				if perf != want {
					t.Errorf("goroutine %d draw %d: perf %v, want %v", seed, i, perf, want)
					return
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()
}

// TestPoolShutdownDuringInflight closes the pool while measurements are in
// flight: no measurement may hang, and post-close measurements fail
// permanently.
func TestPoolShutdownDuringInflight(t *testing.T) {
	tb, addr, kill := startPoolServer(t, 8)
	defer kill()
	pool, err := DialPool([]string{addr}, fastPoolConfig())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < 10; i++ {
				a, err := assign.Random(rng, tb.Machine.Topo, tb.TaskCount())
				if err != nil {
					t.Error(err)
					return
				}
				// Errors are expected once Close lands; hangs are not.
				pool.MeasureContext(context.Background(), a)
			}
		}(int64(g + 1))
	}
	close(start)
	time.Sleep(2 * time.Millisecond)
	if err := pool.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	wg.Wait()

	_, err = pool.Measure(validAssignment())
	if err == nil || !core.IsPermanent(err) {
		t.Fatalf("measurement on a closed pool: err = %v, want permanent", err)
	}
}
