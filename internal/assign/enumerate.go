package assign

import (
	"fmt"

	"optassign/internal/t2"
)

// ErrTooManyAssignments is returned by Enumerate when the population
// exceeds the caller's limit.
var ErrTooManyAssignments = fmt.Errorf("assign: population exceeds enumeration limit")

// Enumerate generates every distinct assignment (one representative per
// symmetry class, cf. CanonicalKey) of `tasks` tasks onto topo. It is the
// exhaustive-search engine behind Figures 1 and 3, where the 6-task
// population of ≈1.5k assignments is fully measured. limit bounds the
// number of generated assignments (0 means no bound); ErrTooManyAssignments
// is returned when it would be exceeded — use Count first for large
// populations.
//
// Canonicity is achieved by first-use ordering: a task may open only the
// lowest-numbered empty pipeline of a core and only the lowest-numbered
// empty core, so each equivalence class is produced exactly once.
func Enumerate(topo t2.Topology, tasks, limit int) ([]Assignment, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if tasks < 1 || tasks > topo.Contexts() {
		return nil, fmt.Errorf("assign: %d tasks do not fit %s", tasks, topo)
	}

	type pipeState struct {
		core, pipe int
		occupancy  int
	}
	var (
		out []Assignment
		// Open pipes in first-use order. Capacity is fixed up front: the
		// recursion appends and truncates, and a reallocation would detach
		// in-flight index references from the live array.
		pipes     = make([]pipeState, 0, topo.Pipes())
		pipesUsed = make([]int, topo.Cores)
		coresUsed int
		ctx       = make([]int, tasks)
	)

	var rec func(task int) error
	rec = func(task int) error {
		if task == tasks {
			if limit > 0 && len(out) >= limit {
				return ErrTooManyAssignments
			}
			out = append(out, Assignment{Topo: topo, Ctx: append([]int(nil), ctx...)})
			return nil
		}
		// Option 1: an existing pipe with a free strand.
		for i := range pipes {
			if pipes[i].occupancy >= topo.ContextsPerPipe {
				continue
			}
			ctx[task] = topo.Context(pipes[i].core, pipes[i].pipe, pipes[i].occupancy)
			pipes[i].occupancy++
			err := rec(task + 1)
			pipes[i].occupancy--
			if err != nil {
				return err
			}
		}
		// Option 2: open the next pipe of a core that already has one.
		for core := 0; core < coresUsed; core++ {
			if pipesUsed[core] >= topo.PipesPerCore {
				continue
			}
			pipe := pipesUsed[core]
			pipesUsed[core]++
			pipes = append(pipes, pipeState{core: core, pipe: pipe, occupancy: 1})
			ctx[task] = topo.Context(core, pipe, 0)
			err := rec(task + 1)
			pipes = pipes[:len(pipes)-1]
			pipesUsed[core]--
			if err != nil {
				return err
			}
		}
		// Option 3: open the next unused core.
		if coresUsed < topo.Cores {
			core := coresUsed
			coresUsed++
			pipesUsed[core] = 1
			pipes = append(pipes, pipeState{core: core, pipe: 0, occupancy: 1})
			ctx[task] = topo.Context(core, 0, 0)
			err := rec(task + 1)
			pipes = pipes[:len(pipes)-1]
			pipesUsed[core] = 0
			coresUsed--
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}
