package assign

import (
	"fmt"
	"math/rand"

	"optassign/internal/t2"
)

// Random generates one uniformly distributed valid assignment of tasks
// tasks onto topo using exactly the paper's §3.3.2 Step 1 procedure:
// independently draw a uniform context for every task and discard the whole
// assignment on any collision ("sampling with replacement" over the
// population of valid assignments). The resulting sample is iid uniform
// over valid (injective) assignments.
//
// The expected number of rejections grows steeply as tasks approaches
// topo.Contexts() (the birthday problem); use RandomPermutation for
// near-full workloads — it draws from the identical distribution.
func Random(rng *rand.Rand, topo t2.Topology, tasks int) (Assignment, error) {
	if err := topo.Validate(); err != nil {
		return Assignment{}, err
	}
	v := topo.Contexts()
	if tasks < 1 || tasks > v {
		return Assignment{}, fmt.Errorf("assign: %d tasks do not fit %d contexts", tasks, v)
	}
	ctx := make([]int, tasks)
	used := make([]bool, v)
	for {
		ok := true
		for i := range ctx {
			c := rng.Intn(v)
			if used[c] {
				ok = false
				// Finish drawing so the rejection step consumes the same
				// variates regardless of where the collision happened, then
				// clear and retry.
				break
			}
			used[c] = true
			ctx[i] = c
		}
		if ok {
			return Assignment{Topo: topo, Ctx: ctx}, nil
		}
		for i := range used {
			used[i] = false
		}
	}
}

// RandomPermutation generates one uniformly distributed valid assignment by
// a partial Fisher-Yates shuffle of the context indices. The distribution
// is identical to Random's (uniform over injective task→context maps) but
// generation is O(V) worst case, independent of how full the machine is.
func RandomPermutation(rng *rand.Rand, topo t2.Topology, tasks int) (Assignment, error) {
	if err := topo.Validate(); err != nil {
		return Assignment{}, err
	}
	v := topo.Contexts()
	if tasks < 1 || tasks > v {
		return Assignment{}, fmt.Errorf("assign: %d tasks do not fit %d contexts", tasks, v)
	}
	perm := make([]int, v)
	for i := range perm {
		perm[i] = i
	}
	ctx := make([]int, tasks)
	for i := 0; i < tasks; i++ {
		j := i + rng.Intn(v-i)
		perm[i], perm[j] = perm[j], perm[i]
		ctx[i] = perm[i]
	}
	return Assignment{Topo: topo, Ctx: ctx}, nil
}

// Sample draws n iid uniform random assignments. For workloads using more
// than half the machine's contexts it switches from the paper-faithful
// rejection generator to the equivalent permutation generator to keep
// generation cheap.
func Sample(rng *rand.Rand, topo t2.Topology, tasks, n int) ([]Assignment, error) {
	gen := Random
	if v := topo.Contexts(); v > 0 && tasks*2 > v {
		gen = RandomPermutation
	}
	out := make([]Assignment, 0, n)
	for i := 0; i < n; i++ {
		a, err := gen(rng, topo, tasks)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
