// Package assign represents task-to-hardware-context assignments and the
// combinatorics around them: validity, symmetry (canonical forms), uniform
// random sampling (the paper's §3.3.2 Step 1 method), exact counting of the
// assignment population (Table 1) and exhaustive enumeration for small
// workloads (the ~1500-assignment studies of Figures 1 and 3).
package assign

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"optassign/internal/t2"
)

// Assignment maps every task of a workload to a hardware context of a
// processor. Ctx[i] is the context executing task i.
type Assignment struct {
	Topo t2.Topology
	Ctx  []int
}

// Errors returned by Validate.
var (
	ErrContextOutOfRange = errors.New("assign: context out of range")
	ErrContextCollision  = errors.New("assign: two tasks mapped to the same context")
	ErrNoTasks           = errors.New("assign: assignment has no tasks")
)

// Tasks returns the number of tasks in the assignment.
func (a Assignment) Tasks() int { return len(a.Ctx) }

// Validate checks the assignment is well formed: the topology is valid,
// every context index is in range, and no two tasks share a context (Netra
// DPS binds at most one task per strand).
func (a Assignment) Validate() error {
	if err := a.Topo.Validate(); err != nil {
		return err
	}
	if len(a.Ctx) == 0 {
		return ErrNoTasks
	}
	v := a.Topo.Contexts()
	seen := make(map[int]int, len(a.Ctx))
	for i, c := range a.Ctx {
		if c < 0 || c >= v {
			return fmt.Errorf("%w: task %d -> context %d (V=%d)", ErrContextOutOfRange, i, c, v)
		}
		if j, dup := seen[c]; dup {
			return fmt.Errorf("%w: tasks %d and %d -> context %d", ErrContextCollision, j, i, c)
		}
		seen[c] = i
	}
	return nil
}

// Clone returns a deep copy.
func (a Assignment) Clone() Assignment {
	return Assignment{Topo: a.Topo, Ctx: append([]int(nil), a.Ctx...)}
}

// TasksByPipe groups task indices by the global pipeline they run in.
// Pipelines with no tasks are omitted.
func (a Assignment) TasksByPipe() map[int][]int {
	m := make(map[int][]int)
	for task, ctx := range a.Ctx {
		p := a.Topo.PipeOf(ctx)
		m[p] = append(m[p], task)
	}
	return m
}

// TasksByCore groups task indices by core. Cores with no tasks are omitted.
func (a Assignment) TasksByCore() map[int][]int {
	m := make(map[int][]int)
	for task, ctx := range a.Ctx {
		c := a.Topo.CoreOf(ctx)
		m[c] = append(m[c], task)
	}
	return m
}

// CanonicalKey returns a string that is identical for exactly those
// assignments that are equivalent under the hardware symmetries: permuting
// cores, permuting pipelines within a core, and permuting strand slots
// within a pipeline. Performance depends only on this equivalence class
// (which resources are shared by whom), not on the concrete context labels.
//
// The rendered bytes are exactly canonicalKeyRef's (the straightforward
// map/sort/fmt construction) — the testbed keys its deterministic
// measurement noise on this string, so the encoding is part of the
// reproducibility contract. This implementation is the memoization hot
// path: it buckets tasks with one CSR pass and renders into preallocated
// byte buffers instead of allocating maps, per-pipe slices and strings.
func (a Assignment) CanonicalKey() string {
	nPipes := a.Topo.Pipes()
	nTasks := len(a.Ctx)
	if nPipes <= 0 || nTasks == 0 {
		return ""
	}
	// CSR bucketing: counts[p] becomes the end offset of pipe p's tasks.
	counts := make([]int, nPipes)
	for _, ctx := range a.Ctx {
		counts[a.Topo.PipeOf(ctx)]++
	}
	for p := 1; p < nPipes; p++ {
		counts[p] += counts[p-1]
	}
	ends := append([]int(nil), counts...)
	tasks := make([]int, nTasks)
	for task := nTasks - 1; task >= 0; task-- {
		p := a.Topo.PipeOf(a.Ctx[task])
		counts[p]--
		tasks[counts[p]] = task
	}
	// Render each occupied pipe as "[t0 t1 ...]" (tasks ascending) into one
	// shared buffer; pipeSeg records the slice per pipe for later sorting.
	type seg struct{ start, end int }
	buf := make([]byte, 0, nTasks*4+2*nPipes)
	pipeSegs := make([]seg, 0, min(nPipes, nTasks))
	pipeCore := make([]int, 0, min(nPipes, nTasks))
	for p := 0; p < nPipes; p++ {
		start := 0
		if p > 0 {
			start = ends[p-1]
		}
		if start == ends[p] {
			continue // unoccupied pipe: omitted, exactly like the map form
		}
		ts := tasks[start:ends[p]]
		slices.Sort(ts)
		bStart := len(buf)
		buf = append(buf, '[')
		for i, t := range ts {
			if i > 0 {
				buf = append(buf, ' ')
			}
			buf = strconv.AppendInt(buf, int64(t), 10)
		}
		buf = append(buf, ']')
		pipeSegs = append(pipeSegs, seg{bStart, len(buf)})
		pipeCore = append(pipeCore, p/a.Topo.PipesPerCore)
	}
	// Per core: sort its pipe renderings lexicographically and join with
	// '|'. Pipe segments arrive in ascending pipe (hence core) order, so
	// each core's segments are contiguous.
	coreBuf := make([]byte, 0, len(buf)+len(pipeSegs))
	coreSegs := make([]seg, 0, len(pipeSegs))
	for i := 0; i < len(pipeSegs); {
		j := i
		for j < len(pipeSegs) && pipeCore[j] == pipeCore[i] {
			j++
		}
		group := pipeSegs[i:j]
		// Insertion sort: a core has at most PipesPerCore segments.
		for x := 1; x < len(group); x++ {
			for y := x; y > 0 && bytes.Compare(buf[group[y].start:group[y].end], buf[group[y-1].start:group[y-1].end]) < 0; y-- {
				group[y], group[y-1] = group[y-1], group[y]
			}
		}
		cStart := len(coreBuf)
		for k, s := range group {
			if k > 0 {
				coreBuf = append(coreBuf, '|')
			}
			coreBuf = append(coreBuf, buf[s.start:s.end]...)
		}
		coreSegs = append(coreSegs, seg{cStart, len(coreBuf)})
		i = j
	}
	// Sort the core renderings and join with " / ".
	for x := 1; x < len(coreSegs); x++ {
		for y := x; y > 0 && bytes.Compare(coreBuf[coreSegs[y].start:coreSegs[y].end], coreBuf[coreSegs[y-1].start:coreSegs[y-1].end]) < 0; y-- {
			coreSegs[y], coreSegs[y-1] = coreSegs[y-1], coreSegs[y]
		}
	}
	out := make([]byte, 0, len(coreBuf)+3*len(coreSegs))
	for i, s := range coreSegs {
		if i > 0 {
			out = append(out, " / "...)
		}
		out = append(out, coreBuf[s.start:s.end]...)
	}
	return string(out)
}

// canonicalKeyRef is the original map/sort/fmt construction of the
// canonical key. It is kept as the executable specification: the property
// tests require CanonicalKey to reproduce its output byte for byte, and
// BenchmarkCanonicalKey quantifies what the rewrite saves.
func (a Assignment) canonicalKeyRef() string {
	// Core content := sorted list of pipe contents; pipe content := sorted
	// task IDs. Cores sorted by their rendered content.
	coreMap := make(map[int]map[int][]int) // core -> pipeInCore -> tasks
	for task, ctx := range a.Ctx {
		core := a.Topo.CoreOf(ctx)
		pipe := a.Topo.PipeOf(ctx) % a.Topo.PipesPerCore
		if coreMap[core] == nil {
			coreMap[core] = make(map[int][]int)
		}
		coreMap[core][pipe] = append(coreMap[core][pipe], task)
	}
	var cores []string
	for _, pipes := range coreMap {
		var rendered []string
		for _, tasks := range pipes {
			sort.Ints(tasks)
			rendered = append(rendered, fmt.Sprint(tasks))
		}
		sort.Strings(rendered)
		cores = append(cores, strings.Join(rendered, "|"))
	}
	sort.Strings(cores)
	return strings.Join(cores, " / ")
}

// String renders the assignment in the paper's {[a b][c]}{[d][]} style, one
// brace group per occupied core, brackets per pipeline.
func (a Assignment) String() string {
	byCore := a.TasksByCore()
	coreIDs := make([]int, 0, len(byCore))
	for c := range byCore {
		coreIDs = append(coreIDs, c)
	}
	sort.Ints(coreIDs)
	var b strings.Builder
	for _, core := range coreIDs {
		b.WriteString("{")
		for p := 0; p < a.Topo.PipesPerCore; p++ {
			b.WriteString("[")
			var ts []int
			for _, task := range byCore[core] {
				if a.Topo.PipeOf(a.Ctx[task])%a.Topo.PipesPerCore == p {
					ts = append(ts, task)
				}
			}
			sort.Ints(ts)
			for i, task := range ts {
				if i > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "t%d", task)
			}
			b.WriteString("]")
		}
		b.WriteString("}")
	}
	return b.String()
}
