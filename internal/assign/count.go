package assign

import (
	"fmt"
	"math/big"

	"optassign/internal/t2"
)

// Count returns the exact number of distinct task assignments of `tasks`
// distinguishable tasks onto topo, where assignments are counted up to the
// hardware symmetries (cores interchangeable, pipelines within a core
// interchangeable, strand slots within a pipeline interchangeable). This is
// the population size of Table 1: 11 assignments for 3 tasks on the
// UltraSPARC T2, ~1.5k for 6 tasks, and astronomically many for 60.
//
// The computation is a two-level labeled-partition dynamic program in exact
// big-integer arithmetic:
//
//   - coreWays(s): ways to structure s labeled tasks as one core — set
//     partitions into at most PipesPerCore blocks of at most
//     ContextsPerPipe tasks each;
//   - the machine level: set partitions of all tasks into at most Cores
//     non-empty cores, each weighted by coreWays, via the standard
//     "block containing the smallest remaining element" recursion.
func Count(topo t2.Topology, tasks int) (*big.Int, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if tasks < 0 {
		return nil, fmt.Errorf("assign: negative task count %d", tasks)
	}
	if tasks > topo.Contexts() {
		return big.NewInt(0), nil
	}
	if tasks == 0 {
		return big.NewInt(1), nil
	}

	coreCap := topo.PipesPerCore * topo.ContextsPerPipe
	binomRows := tasks
	if coreCap > binomRows {
		binomRows = coreCap
	}
	binom := binomialTable(binomRows)

	// q[s][j]: partitions of s labeled tasks into exactly j blocks of size
	// <= ContextsPerPipe.
	q := make([][]*big.Int, coreCap+1)
	for s := range q {
		q[s] = make([]*big.Int, topo.PipesPerCore+1)
		for j := range q[s] {
			q[s][j] = big.NewInt(0)
		}
	}
	q[0][0].SetInt64(1)
	for s := 1; s <= coreCap; s++ {
		for j := 1; j <= topo.PipesPerCore; j++ {
			for k := 1; k <= topo.ContextsPerPipe && k <= s; k++ {
				term := new(big.Int).Mul(binom[s-1][k-1], q[s-k][j-1])
				q[s][j].Add(q[s][j], term)
			}
		}
	}
	// coreWays[s] = Σ_j q[s][j] for j = 1..PipesPerCore.
	coreWays := make([]*big.Int, coreCap+1)
	for s := 0; s <= coreCap; s++ {
		coreWays[s] = big.NewInt(0)
		for j := 1; j <= topo.PipesPerCore; j++ {
			coreWays[s].Add(coreWays[s], q[s][j])
		}
	}

	// a[n][c]: partitions of n labeled tasks into exactly c cores, each
	// core weighted by coreWays.
	a := make([][]*big.Int, tasks+1)
	for n := range a {
		a[n] = make([]*big.Int, topo.Cores+1)
		for c := range a[n] {
			a[n][c] = big.NewInt(0)
		}
	}
	a[0][0].SetInt64(1)
	for n := 1; n <= tasks; n++ {
		for c := 1; c <= topo.Cores; c++ {
			for s := 1; s <= coreCap && s <= n; s++ {
				if coreWays[s].Sign() == 0 {
					continue
				}
				term := new(big.Int).Mul(binom[n-1][s-1], coreWays[s])
				term.Mul(term, a[n-s][c-1])
				a[n][c].Add(a[n][c], term)
			}
		}
	}
	total := big.NewInt(0)
	for c := 1; c <= topo.Cores; c++ {
		total.Add(total, a[tasks][c])
	}
	return total, nil
}

// RawPlacements returns the number of injective task→context maps,
// V·(V−1)···(V−T+1): the size of the label-level space the random sampler
// draws from (context labels distinguished, no symmetry reduction).
func RawPlacements(topo t2.Topology, tasks int) (*big.Int, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	v := topo.Contexts()
	if tasks < 0 || tasks > v {
		return big.NewInt(0), nil
	}
	out := big.NewInt(1)
	for i := 0; i < tasks; i++ {
		out.Mul(out, big.NewInt(int64(v-i)))
	}
	return out, nil
}

// binomialTable returns Pascal's triangle up to row n as big integers.
func binomialTable(n int) [][]*big.Int {
	t := make([][]*big.Int, n+1)
	for i := 0; i <= n; i++ {
		t[i] = make([]*big.Int, i+1)
		t[i][0] = big.NewInt(1)
		t[i][i] = big.NewInt(1)
		for j := 1; j < i; j++ {
			t[i][j] = new(big.Int).Add(t[i-1][j-1], t[i-1][j])
		}
	}
	return t
}
