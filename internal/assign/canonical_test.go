package assign

import (
	"math/rand"
	"testing"

	"optassign/internal/t2"
)

// canonicalTopos are the topologies the byte-compatibility property runs
// over: the case-study T2, a degenerate single-core machine, a deep
// single-slot machine and a wide shallow one.
var canonicalTopos = []t2.Topology{
	{Cores: 8, PipesPerCore: 2, ContextsPerPipe: 4},
	{Cores: 1, PipesPerCore: 1, ContextsPerPipe: 8},
	{Cores: 4, PipesPerCore: 3, ContextsPerPipe: 1},
	{Cores: 2, PipesPerCore: 2, ContextsPerPipe: 2},
	{Cores: 16, PipesPerCore: 1, ContextsPerPipe: 2},
}

// TestCanonicalKeyMatchesReference pins the rewritten CanonicalKey to the
// original construction byte for byte: the testbed's deterministic
// measurement noise and the memoization cache both key on this string, so
// the encoding may never drift.
func TestCanonicalKeyMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, topo := range canonicalTopos {
		v := topo.Contexts()
		for trial := 0; trial < 200; trial++ {
			tasks := 1 + rng.Intn(v)
			a, err := RandomPermutation(rng, topo, tasks)
			if err != nil {
				t.Fatal(err)
			}
			fast, ref := a.CanonicalKey(), a.canonicalKeyRef()
			if fast != ref {
				t.Fatalf("topo %v tasks %v: CanonicalKey %q != reference %q", topo, a.Ctx, fast, ref)
			}
		}
	}
	// Full machine and single task, explicitly.
	topo := t2.UltraSPARCT2()
	full, err := RandomPermutation(rng, topo, topo.Contexts())
	if err != nil {
		t.Fatal(err)
	}
	if full.CanonicalKey() != full.canonicalKeyRef() {
		t.Error("full-machine key differs from reference")
	}
	one := Assignment{Topo: topo, Ctx: []int{13}}
	if one.CanonicalKey() != one.canonicalKeyRef() {
		t.Error("single-task key differs from reference")
	}
}

// TestCanonicalKeyDoesNotMutate verifies the CSR rewrite never reorders
// the caller's Ctx slice (the reference sorted freshly allocated copies;
// the rewrite must be equally side-effect free).
func TestCanonicalKeyDoesNotMutate(t *testing.T) {
	topo := t2.UltraSPARCT2()
	a := Assignment{Topo: topo, Ctx: []int{9, 1, 8, 0, 33}}
	want := append([]int(nil), a.Ctx...)
	a.CanonicalKey()
	for i, c := range a.Ctx {
		if c != want[i] {
			t.Fatalf("Ctx mutated: %v, want %v", a.Ctx, want)
		}
	}
}

// BenchmarkCanonicalKey compares the preallocated-buffer encoder against
// the original map/sort/fmt construction on the case-study workload size
// (24 tasks) and on a full 64-task machine.
func BenchmarkCanonicalKey(b *testing.B) {
	topo := t2.UltraSPARCT2()
	for _, tasks := range []int{24, 64} {
		rng := rand.New(rand.NewSource(11))
		a, err := RandomPermutation(rng, topo, tasks)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchLabel("fast", tasks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if a.CanonicalKey() == "" {
					b.Fatal("empty key")
				}
			}
		})
		b.Run(benchLabel("reference", tasks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if a.canonicalKeyRef() == "" {
					b.Fatal("empty key")
				}
			}
		})
	}
}

func benchLabel(kind string, tasks int) string {
	return kind + "-" + string(rune('0'+tasks/10)) + string(rune('0'+tasks%10)) + "tasks"
}
