package assign

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"optassign/internal/t2"
)

func topoT2() t2.Topology { return t2.UltraSPARCT2() }

func TestValidate(t *testing.T) {
	topo := topoT2()
	good := Assignment{Topo: topo, Ctx: []int{0, 5, 63}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	cases := []struct {
		a    Assignment
		want error
	}{
		{Assignment{Topo: topo, Ctx: nil}, ErrNoTasks},
		{Assignment{Topo: topo, Ctx: []int{64}}, ErrContextOutOfRange},
		{Assignment{Topo: topo, Ctx: []int{-1}}, ErrContextOutOfRange},
		{Assignment{Topo: topo, Ctx: []int{3, 3}}, ErrContextCollision},
	}
	for _, c := range cases {
		if err := c.a.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate(%v) = %v, want %v", c.a.Ctx, err, c.want)
		}
	}
	if err := (Assignment{Ctx: []int{0}}).Validate(); err == nil {
		t.Error("zero topology should be invalid")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Assignment{Topo: topoT2(), Ctx: []int{1, 2}}
	b := a.Clone()
	b.Ctx[0] = 9
	if a.Ctx[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestGrouping(t *testing.T) {
	topo := topoT2()
	// Tasks 0,1 in pipe 0; task 2 in pipe 1 (same core 0); task 3 in core 1.
	a := Assignment{Topo: topo, Ctx: []int{0, 1, 4, 8}}
	byPipe := a.TasksByPipe()
	if len(byPipe[0]) != 2 || len(byPipe[1]) != 1 || len(byPipe[2]) != 1 {
		t.Errorf("TasksByPipe = %v", byPipe)
	}
	byCore := a.TasksByCore()
	if len(byCore[0]) != 3 || len(byCore[1]) != 1 {
		t.Errorf("TasksByCore = %v", byCore)
	}
}

func TestCanonicalKeyInvariantUnderSymmetry(t *testing.T) {
	topo := topoT2()
	base := Assignment{Topo: topo, Ctx: []int{0, 1, 4, 8}}

	// Swap slot labels within pipe 0 (contexts 0<->1).
	slotSwap := Assignment{Topo: topo, Ctx: []int{1, 0, 4, 8}}
	// Swap the two pipes of core 0 (ctx c -> c±4) and of core 1.
	pipeSwap := Assignment{Topo: topo, Ctx: []int{4, 5, 0, 12}}
	// Swap core 0 and core 2 (ctx c -> c±16).
	coreSwap := Assignment{Topo: topo, Ctx: []int{16, 17, 20, 8}}

	want := base.CanonicalKey()
	for i, a := range []Assignment{slotSwap, pipeSwap, coreSwap} {
		if got := a.CanonicalKey(); got != want {
			t.Errorf("symmetry %d: key %q != base %q", i, got, want)
		}
	}
	// A structurally different assignment gets a different key: task 3
	// joins core 0 instead of its own core.
	diff := Assignment{Topo: topo, Ctx: []int{0, 1, 4, 5}}
	if diff.CanonicalKey() == want {
		t.Error("different structure produced the same canonical key")
	}
}

func TestCanonicalKeyRandomSymmetryProperty(t *testing.T) {
	topo := topoT2()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := RandomPermutation(rng, topo, 2+rng.Intn(20))
		if err != nil {
			return false
		}
		// Apply a random symmetry: permute cores, pipes in each core, slots.
		corePerm := rng.Perm(topo.Cores)
		pipePerms := make([][]int, topo.Cores)
		slotPerms := make([][]int, topo.Pipes())
		for i := range pipePerms {
			pipePerms[i] = rng.Perm(topo.PipesPerCore)
		}
		for i := range slotPerms {
			slotPerms[i] = rng.Perm(topo.ContextsPerPipe)
		}
		b := a.Clone()
		for i, ctx := range a.Ctx {
			core := topo.CoreOf(ctx)
			pipe := topo.PipeOf(ctx) % topo.PipesPerCore
			slot := topo.SlotOf(ctx)
			nc := corePerm[core]
			np := pipePerms[core][pipe]
			ns := slotPerms[topo.PipeOf(ctx)][slot]
			b.Ctx[i] = topo.Context(nc, np, ns)
		}
		return a.CanonicalKey() == b.CanonicalKey()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	topo := topoT2()
	a := Assignment{Topo: topo, Ctx: []int{0, 1, 4, 8}}
	s := a.String()
	if !strings.Contains(s, "t0") || !strings.Contains(s, "{") {
		t.Errorf("String() = %q", s)
	}
}

func TestCountAnchors(t *testing.T) {
	topo := topoT2()
	// The paper's §2 worked example: 3 tasks -> 11 assignments.
	c3, err := Count(topo, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Cmp(big.NewInt(11)) != 0 {
		t.Errorf("Count(3) = %v, want 11", c3)
	}
	// The paper's Fig. 1/3 population: 6 tasks -> "around 1500" (exactly 1526).
	c6, err := Count(topo, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c6.Cmp(big.NewInt(1526)) != 0 {
		t.Errorf("Count(6) = %v, want 1526", c6)
	}
	// Degenerate cases.
	c0, _ := Count(topo, 0)
	if c0.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("Count(0) = %v", c0)
	}
	c65, _ := Count(topo, 65)
	if c65.Sign() != 0 {
		t.Errorf("Count(65) = %v, want 0", c65)
	}
	if _, err := Count(topo, -1); err == nil {
		t.Error("negative task count should error")
	}
	if _, err := Count(t2.Topology{}, 1); err == nil {
		t.Error("invalid topology should error")
	}
}

func TestCountFullMachine(t *testing.T) {
	topo := topoT2()
	// 60 tasks: Table 1's last row. The population must be astronomically
	// large (the paper quotes ~10^51 years at one second per assignment,
	// i.e. a count of several times 10^58).
	c60, err := Count(topo, 60)
	if err != nil {
		t.Fatal(err)
	}
	digits := len(c60.Text(10))
	if digits < 50 || digits > 70 {
		t.Errorf("Count(60) has %d digits (%s), expected ~59", digits, c60.Text(10))
	}
	// Monotone growth in workload size until saturation effects near V.
	prev := big.NewInt(0)
	for n := 1; n <= 24; n++ {
		c, err := Count(topo, n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cmp(prev) <= 0 {
			t.Fatalf("Count(%d) = %v not greater than Count(%d) = %v", n, c, n-1, prev)
		}
		prev = c
	}
}

func TestCountMatchesEnumerate(t *testing.T) {
	topo := topoT2()
	for n := 1; n <= 6; n++ {
		want, err := Count(topo, n)
		if err != nil {
			t.Fatal(err)
		}
		all, err := Enumerate(topo, n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(all)) != want.Int64() {
			t.Errorf("n=%d: Enumerate found %d, Count says %v", n, len(all), want)
		}
		// All enumerated assignments are valid and canonically distinct.
		keys := make(map[string]bool, len(all))
		for _, a := range all {
			if err := a.Validate(); err != nil {
				t.Fatalf("n=%d: invalid enumerated assignment %v: %v", n, a.Ctx, err)
			}
			k := a.CanonicalKey()
			if keys[k] {
				t.Fatalf("n=%d: duplicate canonical class %q", n, k)
			}
			keys[k] = true
		}
	}
}

func TestCountSmallTopology(t *testing.T) {
	// 1 core, 1 pipe, K contexts: any k<=K tasks have exactly one
	// assignment.
	topo := t2.Topology{Cores: 1, PipesPerCore: 1, ContextsPerPipe: 4}
	for n := 1; n <= 4; n++ {
		c, err := Count(topo, n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cmp(big.NewInt(1)) != 0 {
			t.Errorf("Count(%d) on single pipe = %v, want 1", n, c)
		}
	}
	// 2 cores × 1 pipe × 1 ctx, 2 tasks: both tasks must take separate
	// cores -> 1 assignment.
	topo = t2.Topology{Cores: 2, PipesPerCore: 1, ContextsPerPipe: 1}
	c, _ := Count(topo, 2)
	if c.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("Count = %v, want 1", c)
	}
}

func TestEnumerateLimit(t *testing.T) {
	topo := topoT2()
	if _, err := Enumerate(topo, 6, 100); !errors.Is(err, ErrTooManyAssignments) {
		t.Errorf("err = %v, want ErrTooManyAssignments", err)
	}
	if _, err := Enumerate(topo, 0, 0); err == nil {
		t.Error("0 tasks should error")
	}
	if _, err := Enumerate(topo, 65, 0); err == nil {
		t.Error("overfull should error")
	}
}

func TestRawPlacements(t *testing.T) {
	topo := topoT2()
	r, err := RawPlacements(topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(big.NewInt(64*63)) != 0 {
		t.Errorf("RawPlacements(2) = %v, want %d", r, 64*63)
	}
	r0, _ := RawPlacements(topo, 0)
	if r0.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("RawPlacements(0) = %v", r0)
	}
	rOver, _ := RawPlacements(topo, 100)
	if rOver.Sign() != 0 {
		t.Errorf("RawPlacements(100) = %v", rOver)
	}
	if _, err := RawPlacements(t2.Topology{}, 1); err == nil {
		t.Error("invalid topology should error")
	}
}

func TestRandomGeneratorsProduceValidAssignments(t *testing.T) {
	topo := topoT2()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, err := Random(rng, topo, 24)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Random produced invalid assignment: %v", err)
		}
		b, err := RandomPermutation(rng, topo, 60)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("RandomPermutation produced invalid assignment: %v", err)
		}
	}
	if _, err := Random(rng, topo, 0); err == nil {
		t.Error("0 tasks should error")
	}
	if _, err := Random(rng, topo, 65); err == nil {
		t.Error("overfull should error")
	}
	if _, err := RandomPermutation(rng, topo, 65); err == nil {
		t.Error("overfull should error")
	}
	if _, err := Random(rng, t2.Topology{}, 1); err == nil {
		t.Error("invalid topology should error")
	}
	if _, err := RandomPermutation(rng, t2.Topology{}, 1); err == nil {
		t.Error("invalid topology should error")
	}
}

// TestRandomGeneratorsAgreeInDistribution checks that the paper-faithful
// rejection sampler and the Fisher-Yates sampler draw from the same
// distribution by comparing per-context usage frequencies.
func TestRandomGeneratorsAgreeInDistribution(t *testing.T) {
	topo := t2.Topology{Cores: 2, PipesPerCore: 2, ContextsPerPipe: 2} // V=8
	const tasks, trials = 3, 40000
	countA := make([]int, topo.Contexts())
	countB := make([]int, topo.Contexts())
	rngA := rand.New(rand.NewSource(2))
	rngB := rand.New(rand.NewSource(3))
	for i := 0; i < trials; i++ {
		a, err := Random(rngA, topo, tasks)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range a.Ctx {
			countA[c]++
		}
		b, err := RandomPermutation(rngB, topo, tasks)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range b.Ctx {
			countB[c]++
		}
	}
	expected := float64(trials*tasks) / float64(topo.Contexts())
	for c := range countA {
		for _, got := range []int{countA[c], countB[c]} {
			if math.Abs(float64(got)-expected) > 5*math.Sqrt(expected) {
				t.Errorf("context %d used %d times, expected ≈ %.0f", c, got, expected)
			}
		}
	}
}

func TestSample(t *testing.T) {
	topo := topoT2()
	rng := rand.New(rand.NewSource(4))
	s, err := Sample(rng, topo, 24, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 50 {
		t.Fatalf("sample size %d", len(s))
	}
	for _, a := range s {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Near-full machine exercises the permutation fast path.
	s, err = Sample(rng, topo, 60, 10)
	if err != nil || len(s) != 10 {
		t.Fatalf("near-full sample: %v", err)
	}
	if _, err := Sample(rng, topo, 0, 5); err == nil {
		t.Error("0 tasks should error")
	}
}
