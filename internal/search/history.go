package search

import (
	"optassign/internal/assign"
	"optassign/internal/t2"
)

// Entry is one draw of the running campaign together with its outcome,
// once known.
type Entry struct {
	Assignment assign.Assignment
	// Explore mirrors the Draw's flag: excluded from the EVT tail fit.
	Explore bool
	// Measured reports that the draw's outcome (a performance or a
	// quarantine) is known.
	Measured bool
	// Quarantined reports that the draw was abandoned by a resilient
	// runner; Perf is meaningless then.
	Quarantined bool
	Perf        float64
}

// History is the campaign record a Strategy draws against: every draw so
// far, with outcomes revealed batch by batch.
//
// The committed horizon is the determinism backbone: outcomes become
// visible to Next only when the engine commits a completed batch, so the
// draw sequence depends on (seed, batch schedule, committed outcomes) and
// on nothing else — not on measurement interleaving, worker count, or
// where a crash split a batch. A resumed campaign replays the journaled
// outcomes through the same strategy with the same commit points and
// regenerates the identical sequence.
//
// History is mutated by the engine only (Push/Resolve/Commit); strategies
// must treat it as read-only.
type History struct {
	topo      t2.Topology
	tasks     int
	entries   []Entry
	committed int
	// bestIdx is the index of the best committed successful entry, -1
	// until one exists. Maintained at commit time so Best is O(1) and
	// deterministic (first maximum wins).
	bestIdx int
}

// NewHistory starts an empty record for a campaign drawing `tasks` tasks
// on topo.
func NewHistory(topo t2.Topology, tasks int) *History {
	return &History{topo: topo, tasks: tasks, bestIdx: -1}
}

// Topo returns the campaign's topology.
func (h *History) Topo() t2.Topology { return h.topo }

// Tasks returns the campaign's task count.
func (h *History) Tasks() int { return h.tasks }

// Len is the total number of draws pushed, measured or not. By the engine
// contract, Next for draw i runs when Len() == i — strategies use it as
// the current draw index.
func (h *History) Len() int { return len(h.entries) }

// Committed is the visibility horizon: entries[0:Committed()] have final,
// visible outcomes.
func (h *History) Committed() int { return h.committed }

// At returns entry i. Strategies should only inspect i < Committed();
// later entries exist but their outcomes are not yet settled.
func (h *History) At(i int) Entry { return h.entries[i] }

// Best returns the best committed successful entry, if any.
func (h *History) Best() (Entry, bool) {
	if h.bestIdx < 0 {
		return Entry{}, false
	}
	return h.entries[h.bestIdx], true
}

// Push appends a new, unmeasured draw and returns its index.
func (h *History) Push(d Draw) int {
	h.entries = append(h.entries, Entry{Assignment: d.Assignment, Explore: d.Explore})
	return len(h.entries) - 1
}

// Resolve records draw i's outcome. The outcome stays invisible to
// strategies until the batch containing i is committed.
func (h *History) Resolve(i int, perf float64, quarantined bool) {
	e := &h.entries[i]
	e.Measured = true
	e.Quarantined = quarantined
	if !quarantined {
		e.Perf = perf
	}
}

// Commit advances the visibility horizon over every pushed entry — the
// engine calls it once per completed batch.
func (h *History) Commit() {
	for ; h.committed < len(h.entries); h.committed++ {
		e := h.entries[h.committed]
		if !e.Measured || e.Quarantined {
			continue
		}
		if h.bestIdx < 0 || e.Perf > h.entries[h.bestIdx].Perf {
			h.bestIdx = h.committed
		}
	}
}
