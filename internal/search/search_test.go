package search

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// smallTopo is a 1×2×2 machine (4 contexts) — small enough to enumerate
// canonical classes exhaustively in the coverage property.
var smallTopo = t2.Topology{Cores: 1, PipesPerCore: 2, ContextsPerPipe: 2}

// allStrategies builds one of each built-in strategy at default
// parameters.
func allStrategies(t *testing.T) map[string]Strategy {
	t.Helper()
	m := make(map[string]Strategy, len(Names))
	for _, name := range Names {
		s, err := New(name, nil, nil)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		m[name] = s
	}
	return m
}

// driveCampaign runs a strategy through a simulated engine loop: draws in
// batches, measures with a deterministic synthetic landscape, commits per
// batch — exactly the visibility contract core.iterate implements. It
// returns every draw made.
func driveCampaign(t *testing.T, s Strategy, seed int64, topo t2.Topology, tasks, draws, batch int) []Draw {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	h := NewHistory(topo, tasks)
	var out []Draw
	for len(out) < draws {
		n := batch
		if rem := draws - len(out); rem < n {
			n = rem
		}
		start := h.Len()
		for k := 0; k < n; k++ {
			d, err := s.Next(rng, h)
			if err != nil {
				t.Fatalf("%s: Next: %v", s.Name(), err)
			}
			if got := h.Push(d); got != start+k {
				t.Fatalf("%s: pushed draw got index %d, want %d", s.Name(), got, start+k)
			}
			out = append(out, d)
		}
		for i := start; i < h.Len(); i++ {
			// Synthetic deterministic landscape: a cheap hash of the
			// context vector. Every 17th draw is quarantined so
			// strategies also see abandoned outcomes.
			e := h.At(i)
			v := 0.0
			for _, c := range e.Assignment.Ctx {
				v = math.Mod(v*31+float64(c)+1, 997)
			}
			h.Resolve(i, v, i%17 == 16)
		}
		h.Commit()
	}
	return out
}

// TestStrategyDeterminism is the replay contract: the same seed and the
// same committed outcome sequence must reproduce the identical draw
// sequence, for every strategy. This is what journaled resume relies on.
func TestStrategyDeterminism(t *testing.T) {
	for _, name := range Names {
		t.Run(name, func(t *testing.T) {
			mk := func() Strategy {
				s, err := New(name, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			a := driveCampaign(t, mk(), 42, t2.UltraSPARCT2(), 6, 300, 50)
			b := driveCampaign(t, mk(), 42, t2.UltraSPARCT2(), 6, 300, 50)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("draw sequences diverged across identical replays")
			}
			c := driveCampaign(t, mk(), 43, t2.UltraSPARCT2(), 6, 300, 50)
			if reflect.DeepEqual(a, c) {
				t.Fatalf("different seeds produced identical draw sequences")
			}
		})
	}
}

// TestStrategyFeasibility: every draw any strategy ever proposes must be a
// valid member of the feasible set — on the full machine and on a small
// one, including the saturated case (tasks == contexts) where relocation
// is impossible and only swaps remain.
func TestStrategyFeasibility(t *testing.T) {
	shapes := []struct {
		topo  t2.Topology
		tasks int
	}{
		{t2.UltraSPARCT2(), 6},
		{smallTopo, 2},
		{smallTopo, 4}, // saturated: no free context to move to
	}
	for _, name := range Names {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%s/%dctx/%dtasks", name, sh.topo.Contexts(), sh.tasks), func(t *testing.T) {
				s, err := New(name, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				for i, d := range driveCampaign(t, s, 7, sh.topo, sh.tasks, 400, 64) {
					if err := d.Assignment.Validate(); err != nil {
						t.Fatalf("draw %d infeasible: %v", i, err)
					}
					if len(d.Assignment.Ctx) != sh.tasks {
						t.Fatalf("draw %d has %d tasks, want %d", i, len(d.Assignment.Ctx), sh.tasks)
					}
				}
			})
		}
	}
}

// TestStratifiedClassCoverage is the stratification guarantee: in
// enumerated mode every canonical class appears exactly once before any
// class repeats, in every pass.
func TestStratifiedClassCoverage(t *testing.T) {
	all, err := assign.Enumerate(smallTopo, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	classes := len(all)
	if classes < 2 {
		t.Fatalf("degenerate test topology: %d classes", classes)
	}
	s, err := New("stratified", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	draws := driveCampaign(t, s, 7, smallTopo, 2, 3*classes, 16)
	for pass := 0; pass < 3; pass++ {
		seen := map[string]bool{}
		for i := 0; i < classes; i++ {
			key := draws[pass*classes+i].Assignment.CanonicalKey()
			if seen[key] {
				t.Fatalf("pass %d repeated class %q at draw %d before covering all %d classes", pass, key, i, classes)
			}
			seen[key] = true
		}
		if len(seen) != classes {
			t.Fatalf("pass %d covered %d classes, want %d", pass, len(seen), classes)
		}
	}
}

// TestStratifiedRejectionMode: past the enumeration cap, stratified must
// still produce feasible draws and avoid class repeats while its retry
// budget lasts.
func TestStratifiedRejectionMode(t *testing.T) {
	s, err := New("stratified", Params{"classes": 2, "retries": 32}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// classes=2 caps enumeration far below the T2's ~1.5k classes, forcing
	// rejection mode on a space where distinct classes are plentiful.
	draws := driveCampaign(t, s, 7, t2.UltraSPARCT2(), 6, 100, 25)
	seen := map[string]int{}
	for _, d := range draws {
		seen[d.Assignment.CanonicalKey()]++
	}
	if len(seen) != len(draws) {
		t.Fatalf("rejection mode repeated a class early: %d distinct over %d draws", len(seen), len(draws))
	}
}

// TestUniformMatchesSample: the uniform strategy must consume the RNG
// draw-for-draw identically to the historical assign.Sample — the
// byte-identical-journal contract.
func TestUniformMatchesSample(t *testing.T) {
	for _, sh := range []struct {
		topo  t2.Topology
		tasks int
	}{
		{t2.UltraSPARCT2(), 6}, // Random path (tasks*2 <= contexts)
		{smallTopo, 3},         // RandomPermutation path (tasks*2 > contexts)
	} {
		const n = 200
		rngA := rand.New(rand.NewSource(99))
		want, err := assign.Sample(rngA, sh.topo, sh.tasks, n)
		if err != nil {
			t.Fatal(err)
		}
		rngB := rand.New(rand.NewSource(99))
		h := NewHistory(sh.topo, sh.tasks)
		var u Uniform
		for i := 0; i < n; i++ {
			d, err := u.Next(rngB, h)
			if err != nil {
				t.Fatal(err)
			}
			h.Push(d)
			if d.Explore {
				t.Fatal("uniform marked a draw Explore")
			}
			if !reflect.DeepEqual(d.Assignment.Ctx, want[i].Ctx) {
				t.Fatalf("%d contexts, %d tasks: draw %d diverged from assign.Sample: %v vs %v",
					sh.topo.Contexts(), sh.tasks, i, d.Assignment.Ctx, want[i].Ctx)
			}
		}
	}
}

// TestGreedyExploreMarking: greedy must mark exactly its adaptive draws
// Explore, and its scheduled uniform draws must stay tail-eligible.
func TestGreedyExploreMarking(t *testing.T) {
	s, err := New("greedy", Params{"init": 20, "explore": 0.25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	draws := driveCampaign(t, s, 7, t2.UltraSPARCT2(), 6, 120, 10)
	for i := 0; i < 20; i++ {
		if draws[i].Explore {
			t.Fatalf("init draw %d marked Explore", i)
		}
	}
	var explore, uniform int
	for i := 20; i < len(draws); i++ {
		if draws[i].Explore {
			explore++
		} else {
			uniform++
		}
	}
	if explore == 0 {
		t.Fatal("greedy never climbed")
	}
	if uniform == 0 {
		t.Fatal("greedy stopped feeding the tail fit")
	}
	// explore=0.25 → every 4th post-init draw is uniform.
	if uniform != 25 {
		t.Fatalf("got %d post-init uniform draws, want 25", uniform)
	}
}

// TestHistoryCommitVisibility: Best must only ever report committed
// entries, and first-maximum-wins must hold.
func TestHistoryCommitVisibility(t *testing.T) {
	h := NewHistory(smallTopo, 2)
	mk := func(c0, c1 int) Draw {
		return Draw{Assignment: assign.Assignment{Topo: smallTopo, Ctx: []int{c0, c1}}}
	}
	h.Push(mk(0, 1))
	h.Resolve(0, 10, false)
	if _, ok := h.Best(); ok {
		t.Fatal("Best visible before commit")
	}
	h.Commit()
	if b, ok := h.Best(); !ok || b.Perf != 10 {
		t.Fatalf("Best after commit: %+v %v", b, ok)
	}
	h.Push(mk(1, 2))
	h.Push(mk(2, 3))
	h.Resolve(1, 30, false)
	h.Resolve(2, 30, false) // tie: first max must win
	h.Commit()
	b, _ := h.Best()
	if b.Perf != 30 || !reflect.DeepEqual(b.Assignment.Ctx, []int{1, 2}) {
		t.Fatalf("tie-break drifted: %+v", b)
	}
	// Quarantines never become Best.
	h.Push(mk(3, 0))
	h.Resolve(3, 99, true)
	h.Commit()
	if b, _ := h.Best(); b.Perf != 30 {
		t.Fatalf("quarantined entry won Best: %+v", b)
	}
}

func TestParseParams(t *testing.T) {
	good := map[string]Params{
		"":                  {},
		"  ":                {},
		"a=1":               {"a": 1},
		"a=1,b=2.5":         {"a": 1, "b": 2.5},
		" a = 1 , b = -3 ":  {"a": 1, "b": -3},
		"t0=0.05,decay=0.9": {"t0": 0.05, "decay": 0.9},
	}
	for in, want := range good {
		got, err := ParseParams(in)
		if err != nil {
			t.Errorf("ParseParams(%q): %v", in, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("ParseParams(%q) = %v, want %v", in, got, want)
		}
	}
	bad := []string{"a", "a=", "=1", "a=1,", "a=1,a=2", "a=NaN", "a=+Inf", "a=-Inf", "a=x", ","}
	for _, in := range bad {
		if p, err := ParseParams(in); err == nil {
			t.Errorf("ParseParams(%q) accepted: %v", in, p)
		}
	}
}

func TestSpecCanonical(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		want string
	}{
		{"uniform", nil, ""},
		{"", nil, ""},
		{"stratified", nil, "stratified"},
		{"greedy", Params{"init": 200, "explore": 0.1}, "greedy(explore=0.1,init=200)"},
		{"greedy", Params{"explore": 0.1, "init": 200}, "greedy(explore=0.1,init=200)"},
	}
	for _, c := range cases {
		if got := Spec(c.name, c.p); got != c.want {
			t.Errorf("Spec(%q, %v) = %q, want %q", c.name, c.p, got, c.want)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []struct {
		name string
		p    Params
	}{
		{"nope", nil},
		{"uniform", Params{"x": 1}},
		{"stratified", Params{"classes": 0}},
		{"stratified", Params{"classes": 1.5}},
		{"stratified", Params{"bogus": 1}},
		{"greedy", Params{"explore": 1}},
		{"greedy", Params{"explore": -0.1}},
		{"greedy", Params{"init": 0}},
		{"anneal", Params{"t0": 0}},
		{"anneal", Params{"t0": -1}},
		{"anneal", Params{"decay": 0}},
		{"anneal", Params{"decay": 1.1}},
		{"anneal", Params{"temperature": 1}},
	}
	for _, c := range bad {
		if s, err := New(c.name, c.p, nil); err == nil {
			t.Errorf("New(%q, %v) accepted: %T", c.name, c.p, s)
		}
	}
}

// TestRepSeedProperties: the documented derivation is deterministic,
// order-independent and collision-free over a practical range.
func TestRepSeedProperties(t *testing.T) {
	seen := map[int64]string{}
	for _, base := range []int64{0, 7, -7, 1 << 50} {
		for rep := 0; rep < 1000; rep++ {
			s := RepSeed(base, rep)
			if s2 := RepSeed(base, rep); s2 != s {
				t.Fatalf("RepSeed(%d,%d) not deterministic", base, rep)
			}
			key := fmt.Sprintf("%d/%d", base, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("RepSeed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
