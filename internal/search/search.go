// Package search makes the campaign's sampling policy pluggable. The
// paper's method draws assignments uniformly at random (§3.3.2 Step 1) and
// feeds every measurement to the EVT estimator; the estimator, however,
// only needs an i.i.d.-ish tail sample — which leaves the *search* policy
// free to be smarter about where the measurement budget goes. A Strategy
// produces the campaign's draw sequence one assignment at a time, and
// declares — per strategy via TailSafe, per draw via Draw.Explore —
// whether its draws may feed the §3.3 tail fit.
//
// The engine contract (implemented by core.iterate) is:
//
//  1. Next for draw i is called when exactly i draws have been pushed to
//     the History (h.Len() == i), with the same *rand.Rand for every draw
//     of the campaign. A Strategy must be deterministic given the RNG
//     state and the History: replaying the same seed and outcome sequence
//     reproduces the identical draw sequence. That is what makes
//     journaled campaigns resumable under any strategy.
//  2. Outcomes become visible to Next only at batch boundaries (the
//     History's committed horizon): the engine measures Ninit draws, then
//     Ndelta per round, and commits each batch as a unit. A strategy
//     therefore never observes a partially measured batch — whether the
//     batch ran serially, on a worker pool, or was split by a crash and a
//     resume.
//  3. Draws marked Explore are excluded from the EVT fit; a strategy with
//     TailSafe() == false runs without the EVT stopping rule entirely
//     (the campaign is budget-bound).
//
// Derived RNG streams anywhere in the project use RepSeed, the single
// documented seed derivation; the campaign's own draw stream deliberately
// uses the raw seed because the write-ahead journal format pins it.
package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"optassign/internal/assign"
)

// Draw is one proposed measurement.
type Draw struct {
	// Assignment is the task placement to measure next. It is always a
	// valid member of the feasible set (injective task→context map).
	Assignment assign.Assignment
	// Explore marks a draw whose selection depended on earlier outcomes
	// (hill-climbing, annealing moves, ...). Explore draws still spend
	// budget and can win the campaign, but they are excluded from the EVT
	// tail fit: adaptive draws are not an i.i.d. sample and would bias the
	// estimated optimum.
	Explore bool
}

// Strategy generates the campaign's assignment draws.
//
// Implementations are not safe for concurrent use; the engine serializes
// Next calls (measurements fan out, draws do not).
type Strategy interface {
	// Name identifies the strategy in reports, metrics and journal
	// headers.
	Name() string
	// TailSafe reports whether the strategy's non-Explore draws form an
	// i.i.d. uniform sample fit for the EVT estimator. When false the
	// engine skips estimation and runs the campaign to its sample budget.
	TailSafe() bool
	// Next proposes the next draw. See the package comment for the engine
	// contract.
	Next(rng *rand.Rand, h *History) (Draw, error)
}

// Params are strategy tuning knobs, parsed from the CLI's
// "key=value,key=value" syntax. Values are finite float64s; each strategy
// rejects keys it does not define.
type Params map[string]float64

// ParseParams parses a "key=value,key=value" parameter string. Empty
// input yields empty Params. Keys must be non-empty and unique; values
// must parse as finite floats (NaN and ±Inf are configuration errors, not
// tuning choices).
func ParseParams(s string) (Params, error) {
	p := Params{}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("search: empty parameter in %q", s)
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("search: parameter %q is not key=value", part)
		}
		k = strings.TrimSpace(k)
		if k == "" {
			return nil, fmt.Errorf("search: empty parameter key in %q", part)
		}
		if _, dup := p[k]; dup {
			return nil, fmt.Errorf("search: duplicate parameter %q", k)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("search: parameter %q: %v", k, err)
		}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("search: parameter %q must be finite, got %v", k, f)
		}
		p[k] = f
	}
	return p, nil
}

// Spec renders a strategy name plus its parameters canonically —
// "greedy(explore=0.1,init=200)" — with keys sorted so equal
// configurations always serialize identically. This is the string journal
// headers record; a plain uniform campaign's spec is "" so that journals
// written before strategies existed stay byte-identical and resumable.
func Spec(name string, p Params) string {
	if len(p) == 0 {
		if name == "" || name == "uniform" {
			return ""
		}
		return name
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(p[k], 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Names lists the built-in strategies in presentation order.
var Names = []string{"uniform", "stratified", "greedy", "anneal"}

// New constructs a built-in strategy by name. params must contain only
// keys the strategy defines; m (nil allowed) receives the strategy-side
// counters (currently the annealer's accepted moves).
func New(name string, params Params, m *Metrics) (Strategy, error) {
	switch name {
	case "", "uniform":
		if len(params) > 0 {
			return nil, fmt.Errorf("search: uniform takes no parameters, got %s", Spec(name, params))
		}
		return Uniform{}, nil
	case "stratified":
		return newStratified(params)
	case "greedy":
		return newGreedy(params)
	case "anneal":
		return newAnneal(params, m)
	default:
		return nil, fmt.Errorf("search: unknown strategy %q (have %s)", name, strings.Join(Names, ", "))
	}
}

// paramInt reads an integer-valued parameter with a default, rejecting
// non-integral or out-of-range values.
func paramInt(p Params, key string, def, min int) (int, error) {
	v, ok := p[key]
	if !ok {
		return def, nil
	}
	n := int(v)
	if float64(n) != v {
		return 0, fmt.Errorf("search: parameter %s must be an integer, got %v", key, v)
	}
	if n < min {
		return 0, fmt.Errorf("search: parameter %s must be >= %d, got %d", key, min, n)
	}
	return n, nil
}

// rejectUnknown errors on any key outside known — an unknown knob is a
// typo, and a typo silently ignored is a campaign run with the wrong
// configuration.
func rejectUnknown(p Params, strategy string, known ...string) error {
	for k := range p {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("search: %s does not define parameter %q (known: %s)", strategy, k, strings.Join(known, ", "))
		}
	}
	return nil
}

// RepSeed derives the seed of stream rep from a base seed with a
// splitmix64 finalizer. This is the project's single documented seed
// derivation — calibrate's per-replication campaign seeds delegate here,
// and any future derived stream must too. Derived streams are
// deterministic, order-independent (stream 7 gets the same seed whether
// it is derived first or last) and well de-correlated, where a plain
// base+rep would hand adjacent streams nearly identical rand.Source
// states.
//
// The one deliberate exception is the campaign draw stream itself:
// core.iterate seeds its RNG with the raw campaign seed because the
// write-ahead journal header records that seed and resumable journals pin
// the historical stream.
func RepSeed(base int64, rep int) int64 {
	x := uint64(base) + (uint64(rep)+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
