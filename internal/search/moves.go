package search

import (
	"math/rand"

	"optassign/internal/assign"
)

// uniformDraw draws one i.i.d. uniform assignment with the same
// generator-selection rule as assign.Sample, so a stream of uniformDraw
// calls consumes the RNG identically to one assign.Sample call for the
// same count.
func uniformDraw(rng *rand.Rand, h *History) (assign.Assignment, error) {
	gen := assign.Random
	if v := h.topo.Contexts(); v > 0 && h.tasks*2 > v {
		gen = assign.RandomPermutation
	}
	return gen(rng, h.topo, h.tasks)
}

// neighbor proposes a local move from base: either relocate one task to a
// free context or swap two tasks' contexts, each feasible by
// construction. Both move kinds matter — relocation explores new context
// sets, swapping explores task-role placements within one set (tasks are
// not interchangeable; the canonical classes quotient only hardware
// symmetry).
func neighbor(rng *rand.Rand, base assign.Assignment) assign.Assignment {
	ctx := append([]int(nil), base.Ctx...)
	v := base.Topo.Contexts()
	canMove := len(ctx) < v
	canSwap := len(ctx) >= 2
	move := canMove
	if canMove && canSwap {
		move = rng.Intn(2) == 0
	}
	switch {
	case move:
		t := 0
		if len(ctx) > 1 {
			t = rng.Intn(len(ctx))
		}
		used := make([]bool, v)
		for _, c := range ctx {
			used[c] = true
		}
		for {
			c := rng.Intn(v)
			if !used[c] {
				ctx[t] = c
				break
			}
		}
	case canSwap:
		i := rng.Intn(len(ctx))
		j := rng.Intn(len(ctx) - 1)
		if j >= i {
			j++
		}
		ctx[i], ctx[j] = ctx[j], ctx[i]
	}
	// A full machine with a single task has no move at all; the copy of
	// base is the only legal "neighbor".
	return assign.Assignment{Topo: base.Topo, Ctx: ctx}
}
