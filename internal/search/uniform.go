package search

import (
	"math/rand"
)

// Uniform is the paper's §3.3.2 sampler as a Strategy: every draw is an
// i.i.d. uniform random assignment and every draw feeds the tail fit.
//
// Its RNG consumption is draw-for-draw identical to the historical
// assign.Sample loop (same generator choice, same variates), so a
// campaign run with Uniform produces byte-identical journals to campaigns
// recorded before strategies existed — and their journals resume under
// it.
type Uniform struct{}

// Name implements Strategy.
func (Uniform) Name() string { return "uniform" }

// TailSafe implements Strategy: uniform draws are exactly the i.i.d.
// sample the EVT machinery assumes.
func (Uniform) TailSafe() bool { return true }

// Next implements Strategy. The generator switch mirrors assign.Sample:
// rejection sampling (the paper-faithful procedure) for sparse workloads,
// the equivalent partial Fisher-Yates for workloads using more than half
// the machine — both uniform over the feasible set, chosen per draw by a
// condition that is constant for a campaign, so the stream matches
// assign.Sample's exactly.
func (Uniform) Next(rng *rand.Rand, h *History) (Draw, error) {
	a, err := uniformDraw(rng, h)
	if err != nil {
		return Draw{}, err
	}
	return Draw{Assignment: a}, nil
}
