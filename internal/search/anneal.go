package search

import (
	"fmt"
	"math"
	"math/rand"
)

// Anneal is simulated annealing over the assignment space: after a short
// uniform phase seeds an incumbent, every draw proposes a neighbor of the
// incumbent, and newly committed outcomes move the incumbent by the
// Metropolis rule under a deterministic temperature schedule
//
//	T(k) = t0 · decay^k        (k = draws past the init phase),
//
// with the acceptance scale relative to the incumbent's magnitude so one
// t0 works across benchmarks. The schedule and every acceptance decision
// are functions of the campaign seed and the committed outcomes alone, so
// annealed campaigns journal and resume like any other.
//
// Anneal is NOT TailSafe: past the init phase its draw distribution
// chases the incumbent, so no i.i.d. tail sample exists and the engine
// runs the campaign to its sample budget instead of the EVT stopping
// rule. Use it to hunt a good assignment under a fixed budget, not to
// certify one.
type Anneal struct {
	init  int
	t0    float64
	decay float64
	m     *Metrics

	processed int
	curSet    bool
	cur       Entry
}

func newAnneal(p Params, m *Metrics) (*Anneal, error) {
	if err := rejectUnknown(p, "anneal", "init", "t0", "decay"); err != nil {
		return nil, err
	}
	init, err := paramInt(p, "init", 100, 1)
	if err != nil {
		return nil, err
	}
	t0 := 0.05
	if v, ok := p["t0"]; ok {
		if v <= 0 {
			return nil, fmt.Errorf("search: anneal temperature t0 must be positive, got %v", v)
		}
		t0 = v
	}
	decay := 0.999
	if v, ok := p["decay"]; ok {
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("search: anneal decay must be in (0,1], got %v", v)
		}
		decay = v
	}
	return &Anneal{init: init, t0: t0, decay: decay, m: m}, nil
}

// Name implements Strategy.
func (a *Anneal) Name() string { return "anneal" }

// TailSafe implements Strategy.
func (a *Anneal) TailSafe() bool { return false }

// Next implements Strategy.
func (a *Anneal) Next(rng *rand.Rand, h *History) (Draw, error) {
	// Fold newly committed outcomes into the incumbent, in draw order.
	// Each downhill candidate consumes exactly one variate, so the
	// consumption is a function of the committed outcome sequence —
	// deterministic under replay.
	for c := h.Committed(); a.processed < c; a.processed++ {
		e := h.At(a.processed)
		if !e.Measured || e.Quarantined {
			continue
		}
		if !a.curSet || e.Perf >= a.cur.Perf {
			a.cur, a.curSet = e, true
			if a.m != nil {
				a.m.Accepted.Inc()
			}
			continue
		}
		k := a.processed - a.init
		if k < 0 {
			k = 0
		}
		t := a.t0 * math.Pow(a.decay, float64(k))
		scale := math.Abs(a.cur.Perf)
		if scale < 1 {
			scale = 1
		}
		if rng.Float64() < math.Exp((e.Perf-a.cur.Perf)/(t*scale)) {
			a.cur, a.curSet = e, true
			if a.m != nil {
				a.m.Accepted.Inc()
			}
		}
	}
	if h.Len() < a.init || !a.curSet {
		u, err := uniformDraw(rng, h)
		if err != nil {
			return Draw{}, err
		}
		return Draw{Assignment: u}, nil
	}
	return Draw{Assignment: neighbor(rng, a.cur.Assignment), Explore: true}, nil
}
