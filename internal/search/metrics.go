package search

import (
	"optassign/internal/obs"
)

// Metrics observes the search layer, labeled by strategy so dashboards
// can compare policies: draws proposed, adaptive (Explore) draws,
// improvements of the campaign best, and accepted annealing moves. The
// engine-side counters (Draws/Explore/Improved) are incremented by
// core.iterate; Accepted by the annealer itself. Per the internal/obs
// conventions a nil bundle disables recording, and instrumentation never
// perturbs draws or journal bytes.
type Metrics struct {
	Draws    *obs.Counter
	Explore  *obs.Counter
	Improved *obs.Counter
	Accepted *obs.Counter
}

// NewMetrics registers the search series for one strategy on r; a nil
// registry yields a nil bundle.
func NewMetrics(r *obs.Registry, strategy string) *Metrics {
	if r == nil {
		return nil
	}
	l := obs.L("strategy", strategy)
	return &Metrics{
		Draws:    r.Counter("optassign_search_draws_total", "Assignment draws proposed by the search strategy.", l),
		Explore:  r.Counter("optassign_search_explore_draws_total", "Adaptive draws excluded from the EVT tail fit.", l),
		Improved: r.Counter("optassign_search_improvements_total", "Draws that improved the campaign's best observed performance.", l),
		Accepted: r.Counter("optassign_search_accepted_moves_total", "Moves accepted by the annealer's Metropolis rule.", l),
	}
}
