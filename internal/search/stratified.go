package search

import (
	"errors"
	"math/rand"

	"optassign/internal/assign"
)

// Stratified allocates the measurement budget over canonical assignment
// classes (assign.CanonicalKey) instead of raw assignments, so
// hardware-symmetric duplicates stop burning budget: a uniform sampler
// keeps re-measuring popular classes (class mass is proportional to class
// size), while Stratified visits every class once before repeating any.
//
// Two modes, chosen at the first draw:
//
//   - Enumerated (class count ≤ the classes parameter): the canonical
//     representatives are enumerated once and served in passes; each pass
//     is a fresh seed-derived shuffle and draws without replacement, so
//     the class-coverage guarantee is exact.
//   - Rejection (class space too large to enumerate): uniform draws
//     deduplicated by canonical key with a bounded retry budget — a
//     best-effort stratification that degrades gracefully toward uniform
//     as the seen-set saturates.
//
// Both modes are tail-safe: enumerated draws are a without-replacement
// uniform sweep of the class population (a sample that, unlike the raw
// uniform one, is never tied), and rejection draws are uniform draws
// thinned by a predicate on the past only.
type Stratified struct {
	classes int // enumeration cap
	retries int // rejection-mode dedup attempts per draw

	decided bool
	// enumerated mode
	reps []assign.Assignment
	perm []int
	pos  int
	// rejection mode
	seen map[string]bool
}

func newStratified(p Params) (*Stratified, error) {
	if err := rejectUnknown(p, "stratified", "classes", "retries"); err != nil {
		return nil, err
	}
	classes, err := paramInt(p, "classes", 20000, 1)
	if err != nil {
		return nil, err
	}
	retries, err := paramInt(p, "retries", 16, 1)
	if err != nil {
		return nil, err
	}
	return &Stratified{classes: classes, retries: retries}, nil
}

// Name implements Strategy.
func (s *Stratified) Name() string { return "stratified" }

// TailSafe implements Strategy.
func (s *Stratified) TailSafe() bool { return true }

// Next implements Strategy.
func (s *Stratified) Next(rng *rand.Rand, h *History) (Draw, error) {
	if !s.decided {
		reps, err := assign.Enumerate(h.topo, h.tasks, s.classes)
		switch {
		case err == nil:
			s.reps = reps
		case errors.Is(err, assign.ErrTooManyAssignments):
			s.seen = make(map[string]bool)
		default:
			return Draw{}, err
		}
		s.decided = true
	}
	if s.reps != nil {
		if s.pos == 0 || s.pos >= len(s.reps) {
			// Start a pass: a fresh Fisher-Yates order over every class.
			if s.perm == nil {
				s.perm = make([]int, len(s.reps))
			}
			for i := range s.perm {
				s.perm[i] = i
			}
			rng.Shuffle(len(s.perm), func(i, j int) { s.perm[i], s.perm[j] = s.perm[j], s.perm[i] })
			s.pos = 0
		}
		a := s.reps[s.perm[s.pos]]
		s.pos++
		return Draw{Assignment: a}, nil
	}
	// Rejection mode: uniform draws, retried while the class was already
	// sampled. The budget bounds RNG consumption per draw; when it runs
	// out the duplicate is accepted — correctness never depends on
	// distinctness, only budget efficiency does.
	var last assign.Assignment
	for try := 0; try < s.retries; try++ {
		a, err := uniformDraw(rng, h)
		if err != nil {
			return Draw{}, err
		}
		last = a
		key := a.CanonicalKey()
		if !s.seen[key] {
			s.seen[key] = true
			return Draw{Assignment: a}, nil
		}
	}
	return Draw{Assignment: last}, nil
}
