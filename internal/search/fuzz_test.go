package search

import (
	"math"
	"strings"
	"testing"
)

// FuzzStrategyParams feeds arbitrary strategy names and parameter strings
// through the full ParseParams → New → Spec path: nothing may panic,
// invalid configurations (NaN or infinite values, negative temperatures,
// unknown keys, malformed syntax) must come back as errors, and anything
// accepted must round-trip through the canonical Spec rendering.
func FuzzStrategyParams(f *testing.F) {
	f.Add("uniform", "")
	f.Add("stratified", "classes=100,retries=4")
	f.Add("greedy", "init=50,explore=0.2")
	f.Add("anneal", "t0=0.01,decay=0.99")
	f.Add("anneal", "t0=NaN")
	f.Add("anneal", "t0=-1")
	f.Add("greedy", "explore=1.5")
	f.Add("stratified", "classes=0.5")
	f.Add("greedy", "temperature=3")
	f.Add("bogus", "a=1")
	f.Add("uniform", "a=1,a=2")
	f.Add("anneal", "=,=")
	f.Fuzz(func(t *testing.T, name, raw string) {
		p, err := ParseParams(raw)
		if err != nil {
			return
		}
		for k, v := range p {
			if k == "" {
				t.Fatalf("ParseParams(%q) accepted an empty key", raw)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ParseParams(%q) accepted non-finite %s=%v", raw, k, v)
			}
		}
		s, err := New(name, p, nil)
		if err != nil {
			return
		}
		known := false
		for _, n := range Names {
			if name == n || name == "" {
				known = true
				break
			}
		}
		if !known {
			t.Fatalf("New accepted unknown strategy %q", name)
		}
		if s.Name() == "" {
			t.Fatalf("strategy %q has an empty Name", name)
		}
		// Anything constructible must render a stable canonical spec.
		spec := Spec(name, p)
		if spec != Spec(name, p) {
			t.Fatalf("Spec(%q, %v) is not stable", name, p)
		}
		if len(p) > 0 && !strings.Contains(spec, "=") {
			t.Fatalf("Spec(%q, %v) dropped parameters: %q", name, p, spec)
		}
	})
}
