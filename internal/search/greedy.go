package search

import (
	"fmt"
	"math"
	"math/rand"
)

// Greedy is AMTHA-style hill climbing grafted onto the statistical
// method: an initial uniform phase seeds the tail fit and locates a
// promising region, then the budget shifts to local moves around the
// best committed assignment. Climbing draws are marked Explore — they
// are adaptive, not i.i.d., so they may win the campaign but never feed
// the EVT fit. A deterministic fraction of post-init draws stays uniform
// (and tail-eligible), so the fit keeps sharpening while the climber
// exploits: the strategy as a whole remains TailSafe because everything
// it feeds the fit is exactly a uniform draw.
type Greedy struct {
	init   int // uniform draws before climbing starts
	period int // every period-th post-init draw is uniform (0 disables)
}

func newGreedy(p Params) (*Greedy, error) {
	if err := rejectUnknown(p, "greedy", "init", "explore"); err != nil {
		return nil, err
	}
	init, err := paramInt(p, "init", 200, 1)
	if err != nil {
		return nil, err
	}
	frac := 0.1
	if v, ok := p["explore"]; ok {
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("search: greedy explore fraction must be in [0,1), got %v", v)
		}
		frac = v
	}
	period := 0
	if frac > 0 {
		period = int(math.Round(1 / frac))
	}
	return &Greedy{init: init, period: period}, nil
}

// Name implements Strategy.
func (g *Greedy) Name() string { return "greedy" }

// TailSafe implements Strategy: every tail-eligible draw Greedy emits is
// a plain uniform draw; the adaptive ones carry Explore.
func (g *Greedy) TailSafe() bool { return true }

// Next implements Strategy.
func (g *Greedy) Next(rng *rand.Rand, h *History) (Draw, error) {
	i := h.Len()
	uniform := i < g.init
	if !uniform && g.period > 0 && (i-g.init)%g.period == 0 {
		uniform = true
	}
	if !uniform {
		if best, ok := h.Best(); ok {
			return Draw{Assignment: neighbor(rng, best.Assignment), Explore: true}, nil
		}
		// Nothing committed yet (the whole init phase may still be in
		// flight): fall back to a uniform, tail-eligible draw.
	}
	a, err := uniformDraw(rng, h)
	if err != nil {
		return Draw{}, err
	}
	return Draw{Assignment: a}, nil
}
