package stats

import (
	"math/rand"
	"testing"
)

func TestDKWBandBasics(t *testing.T) {
	xs := make([]float64, 400)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.Float64()
	}
	band, err := NewDKWBand(NewECDF(xs), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if band.Epsilon <= 0 || band.Epsilon > 0.1 {
		t.Errorf("epsilon = %v for n=400", band.Epsilon)
	}
	// The true CDF (uniform) should be inside the band on a grid — the
	// guarantee holds with 95% probability; with this fixed seed it holds.
	for x := 0.05; x < 1; x += 0.05 {
		if !band.Contains(x, x) {
			lo, hi := band.Bounds(x)
			t.Errorf("true CDF %v outside band [%v, %v] at x=%v", x, lo, hi, x)
		}
	}
	// Bounds clamp to [0,1].
	lo, hi := band.Bounds(-5)
	if lo != 0 || hi > 1 {
		t.Errorf("bounds at -5: [%v, %v]", lo, hi)
	}
	lo, hi = band.Bounds(5)
	if hi != 1 || lo < 0 {
		t.Errorf("bounds at 5: [%v, %v]", lo, hi)
	}
}

func TestDKWBandErrors(t *testing.T) {
	if _, err := NewDKWBand(nil, 0.05); err == nil {
		t.Error("nil ECDF accepted")
	}
	if _, err := NewDKWBand(NewECDF(nil), 0.05); err == nil {
		t.Error("empty ECDF accepted")
	}
	if _, err := NewDKWBand(NewECDF([]float64{1}), 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewDKWBand(NewECDF([]float64{1}), 1); err == nil {
		t.Error("alpha=1 accepted")
	}
}

func TestRequiredSampleSizeDKW(t *testing.T) {
	// Half-width 0.05 at 95%: n = ln(40)/(2·0.0025) ≈ 738.
	n, err := RequiredSampleSizeDKW(0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n < 730 || n > 745 {
		t.Errorf("n = %d, want ≈ 738", n)
	}
	// Consistency: a sample of exactly n has epsilon <= requested.
	xs := make([]float64, n)
	band, err := NewDKWBand(NewECDF(xs), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if band.Epsilon > 0.05+1e-9 {
		t.Errorf("epsilon = %v > 0.05 at the required n", band.Epsilon)
	}
	if _, err := RequiredSampleSizeDKW(0, 0.05); err == nil {
		t.Error("epsilon=0 accepted")
	}
	if _, err := RequiredSampleSizeDKW(0.05, 2); err == nil {
		t.Error("alpha=2 accepted")
	}
}
