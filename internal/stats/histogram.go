package stats

import "math"

// Histogram is a fixed-width-bin histogram over a closed interval.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int // total observations, including clamped outliers
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi]. Observations outside the range are clamped into the first or
// last bin so that N always equals len(xs).
func NewHistogram(xs []float64, bins int, lo, hi float64) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int(math.Floor((x - lo) / width))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.N++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// MaxCount returns the largest bin count (useful for scaling ASCII plots).
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}
