package stats

import "math"

// RegularizedGammaP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0, using the standard series
// expansion for x < a+1 and the continued-fraction expansion otherwise.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// RegularizedGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 − P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 1000
)

// gammaPSeries evaluates P(a,x) by its power series, valid and fast for
// x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued fraction,
// valid and fast for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ErfInv returns the inverse of math.Erf on (-1, 1). It uses an initial
// rational approximation refined by two Newton steps, giving close to full
// double precision.
func ErfInv(y float64) float64 {
	switch {
	case math.IsNaN(y) || y <= -1 || y >= 1:
		if y == 1 {
			return math.Inf(1)
		}
		if y == -1 {
			return math.Inf(-1)
		}
		return math.NaN()
	case y == 0:
		return 0
	}
	// Initial guess via the logarithmic approximation
	//   x ≈ sign(y) * sqrt(sqrt((2/(πa) + ln(1-y²)/2)²  − ln(1-y²)/a) − (2/(πa) + ln(1-y²)/2))
	// with a = 0.147 (Winitzki), then polish with Newton on erf(x) − y = 0.
	const a = 0.147
	ln1my2 := math.Log(1 - y*y)
	t := 2/(math.Pi*a) + ln1my2/2
	x := math.Sqrt(math.Sqrt(t*t-ln1my2/a) - t)
	if y < 0 {
		x = -x
	}
	for i := 0; i < 3; i++ {
		err := math.Erf(x) - y
		deriv := 2 / math.Sqrt(math.Pi) * math.Exp(-x*x)
		if deriv == 0 {
			break
		}
		x -= err / deriv
	}
	return x
}
