package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
// The paper (§3.2) uses the ECDF of measured assignment performance to show
// which portion of the population performs well; it is a good estimator of
// the body of the true CDF but — as the paper stresses — not of its extreme
// right tail, which is why the EVT machinery in internal/evt exists.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	return &ECDF{sorted: SortedCopy(xs)}
}

// Len returns the number of observations behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns F̂(x) = (#observations <= x) / n.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x; we
	// want the count of elements <= x, so search for the first element > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the underlying sample.
func (e *ECDF) Quantile(p float64) float64 { return Quantile(e.sorted, p) }

// Min returns the smallest observation.
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest observation.
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Points returns (x, F̂(x)) pairs suitable for plotting: one point per
// observation, using the right-continuous step value at each observation.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i, x := range e.sorted {
		xs[i] = x
		ps[i] = float64(i+1) / float64(n)
	}
	return xs, ps
}

// Sorted exposes the sorted backing sample (callers must not modify it).
func (e *ECDF) Sorted() []float64 { return e.sorted }
