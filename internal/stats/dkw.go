package stats

import (
	"fmt"
	"math"
)

// DKWBand is a simultaneous confidence band for a CDF estimated by an ECDF:
// by the Dvoretzky–Kiefer–Wolfowitz inequality, with probability at least
// 1−alpha the true CDF lies within ±epsilon of the empirical one
// everywhere, with
//
//	epsilon = sqrt(ln(2/alpha) / (2n)).
//
// The paper builds empirical CDFs of assignment populations (§3.2, Fig. 3);
// the band quantifies how much an ECDF built from a *sample* can deviate
// from the population CDF — and why the extreme tail needs EVT instead.
type DKWBand struct {
	ECDF    *ECDF
	Epsilon float64
	Alpha   float64
}

// NewDKWBand wraps an ECDF with its (1−alpha) simultaneous band.
func NewDKWBand(e *ECDF, alpha float64) (*DKWBand, error) {
	if e == nil || e.Len() == 0 {
		return nil, ErrEmpty
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("stats: DKW alpha must be in (0,1), got %v", alpha)
	}
	return &DKWBand{
		ECDF:    e,
		Epsilon: math.Sqrt(math.Log(2/alpha) / (2 * float64(e.Len()))),
		Alpha:   alpha,
	}, nil
}

// Bounds returns the band's lower and upper CDF values at x, clamped to
// [0, 1].
func (b *DKWBand) Bounds(x float64) (lo, hi float64) {
	f := b.ECDF.At(x)
	lo = f - b.Epsilon
	hi = f + b.Epsilon
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Contains reports whether a candidate CDF value at x is consistent with
// the band.
func (b *DKWBand) Contains(x, cdf float64) bool {
	lo, hi := b.Bounds(x)
	return cdf >= lo && cdf <= hi
}

// RequiredSampleSize returns the number of observations needed for a
// (1−alpha) DKW band of half-width at most epsilon:
// n = ⌈ln(2/alpha) / (2 ε²)⌉.
func RequiredSampleSizeDKW(epsilon, alpha float64) (int, error) {
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("stats: DKW epsilon must be in (0,1), got %v", epsilon)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: DKW alpha must be in (0,1), got %v", alpha)
	}
	n := math.Log(2/alpha) / (2 * epsilon * epsilon)
	return int(math.Ceil(n - 1e-12)), nil
}
