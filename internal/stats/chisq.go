package stats

import (
	"fmt"
	"math"
)

// ChiSquared is the chi-squared distribution with K degrees of freedom.
// Wilks' theorem (used in §3.3.2 Step 4 of the paper to compute the UPB
// confidence interval) states that twice the log-likelihood-ratio statistic
// converges to a chi-squared distribution with df1−df2 degrees of freedom.
type ChiSquared struct {
	K float64 // degrees of freedom, > 0
}

// CDF returns P(X <= x).
func (c ChiSquared) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(c.K/2, x/2)
}

// PDF returns the probability density at x.
func (c ChiSquared) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		if c.K < 2 {
			return math.Inf(1)
		}
		if c.K == 2 {
			return 0.5
		}
		return 0
	}
	lg, _ := math.Lgamma(c.K / 2)
	return math.Exp((c.K/2-1)*math.Log(x) - x/2 - c.K/2*math.Ln2 - lg)
}

// Quantile returns the p-quantile (inverse CDF) for p in (0, 1).
//
// For K == 1 the quantile has the closed form (√2 · erf⁻¹(p))², used both
// directly and as a cross-check in tests; for other K a bracketed bisection
// with Newton polish on the CDF is used.
func (c ChiSquared) Quantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: chi-squared quantile needs p in (0,1), got %v", p)
	}
	if c.K == 1 {
		z := math.Sqrt2 * ErfInv(p)
		return z * z, nil
	}
	// Bracket: mean is K, variance 2K; expand until CDF crosses p.
	lo, hi := 0.0, c.K+10*math.Sqrt(2*c.K)+10
	for c.CDF(hi) < p {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("stats: chi-squared quantile failed to bracket p=%v", p)
		}
	}
	x := c.K // start at the mean
	for i := 0; i < 200; i++ {
		f := c.CDF(x) - p
		if math.Abs(f) < 1e-13 {
			return x, nil
		}
		if f > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step when it stays inside the bracket, else bisection.
		d := c.PDF(x)
		var next float64
		if d > 0 {
			next = x - f/d
		}
		if !(next > lo && next < hi) || d <= 0 {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) < 1e-14*math.Max(1, x) {
			return next, nil
		}
		x = next
	}
	return x, nil
}

// Chi2Quantile1DF returns the (1−alpha)-level quantile of the chi-squared
// distribution with one degree of freedom — the constant that appears in the
// paper's Equation (1). For alpha = 0.05 it is ≈ 3.8415.
func Chi2Quantile1DF(alpha float64) (float64, error) {
	return ChiSquared{K: 1}.Quantile(1 - alpha)
}
