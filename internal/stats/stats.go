// Package stats provides the descriptive and inferential statistics
// primitives used by the extreme-value analysis: summary statistics,
// empirical distribution functions, sample quantiles, special functions
// (regularized incomplete gamma, inverse error function) and the chi-squared
// distribution needed for Wilks' likelihood-ratio confidence intervals.
//
// Everything is implemented from scratch on top of the standard library so
// the module has no external dependencies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs using Kahan compensated summation, which keeps
// long accumulations (tens of thousands of measurements) accurate.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs. It returns NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance.
// It returns NaN for samples with fewer than two observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := ss + y
		comp = (t - ss) - y
		ss = t
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// MustMax is Max for samples known to be non-empty; it panics otherwise.
func MustMax(xs []float64) float64 {
	m, err := Max(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// SortedCopy returns a sorted copy of xs, leaving the input untouched.
func SortedCopy(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// Quantile returns the p-quantile (0 <= p <= 1) of the *sorted* sample xs
// using linear interpolation between order statistics (the common "type 7"
// definition used by Matlab and R defaults).
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case n == 0:
		return math.NaN()
	case n == 1:
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	frac := h - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}
