package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSumKahan(t *testing.T) {
	xs := make([]float64, 0, 10001)
	xs = append(xs, 1e16)
	for i := 0; i < 10000; i++ {
		xs = append(xs, 1.0)
	}
	got := Sum(xs)
	want := 1e16 + 10000
	if got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Unbiased variance of this classic sample is 32/7.
	if v := Variance(xs); !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEqual(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single element should be NaN")
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v", mx, err)
	}
	if MustMax(xs) != 7 {
		t.Error("MustMax mismatch")
	}
}

func TestMustMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMax(nil) should panic")
		}
	}()
	MustMax(nil)
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	s := SortedCopy(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("SortedCopy mutated input")
	}
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Errorf("SortedCopy = %v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
	if Quantile([]float64{42}, 0.3) != 42 {
		t.Error("Quantile of singleton should be that value")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		sorted := SortedCopy(xs)
		p1, p2 := r.Float64(), r.Float64()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Quantile(sorted, p1) <= Quantile(sorted, p2)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-12) && got != c.want {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Errorf("ECDF summary wrong: len=%d min=%v max=%v", e.Len(), e.Min(), e.Max())
	}
	xs, ps := e.Points()
	if len(xs) != 4 || ps[3] != 1 {
		t.Errorf("Points = %v %v", xs, ps)
	}
}

func TestECDFIsValidCDFProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		e := NewECDF(xs)
		// Non-decreasing and bounded in [0,1] on a probe grid.
		prev := -1.0
		for x := -10.0; x <= 110; x += 5 {
			v := e.At(x)
			if v < 0 || v > 1 || v < prev {
				return false
			}
			prev = v
		}
		return e.At(e.Max()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRegularizedGamma(t *testing.T) {
	// P(1, x) = 1 − e^−x (exponential distribution).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, x) + Q(a, x) = 1 across regimes.
	for _, a := range []float64{0.5, 1.5, 3, 10} {
		for _, x := range []float64{0.2, 1, 3, 10, 40} {
			p, q := RegularizedGammaP(a, x), RegularizedGammaQ(a, x)
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q != 1 for a=%v x=%v: %v", a, x, p+q)
			}
		}
	}
	// Known value: P(0.5, 0.5) = erf(sqrt(0.5)).
	if got, want := RegularizedGammaP(0.5, 0.5), math.Erf(math.Sqrt(0.5)); !almostEqual(got, want, 1e-10) {
		t.Errorf("P(.5,.5) = %v, want %v", got, want)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) || !math.IsNaN(RegularizedGammaP(1, -1)) {
		t.Error("invalid arguments should give NaN")
	}
	if RegularizedGammaP(2, 0) != 0 || RegularizedGammaQ(2, 0) != 1 {
		t.Error("boundary values at x=0 wrong")
	}
}

func TestErfInv(t *testing.T) {
	for _, y := range []float64{-0.999, -0.9, -0.5, -0.1, 0, 0.1, 0.5, 0.9, 0.999} {
		x := ErfInv(y)
		if !almostEqual(math.Erf(x), y, 1e-12) {
			t.Errorf("Erf(ErfInv(%v)) = %v", y, math.Erf(x))
		}
	}
	if !math.IsInf(ErfInv(1), 1) || !math.IsInf(ErfInv(-1), -1) {
		t.Error("ErfInv(±1) should be ±Inf")
	}
	if !math.IsNaN(ErfInv(1.5)) {
		t.Error("ErfInv outside (-1,1) should be NaN")
	}
}

func TestErfInvRoundTripProperty(t *testing.T) {
	f := func(u float64) bool {
		y := math.Mod(math.Abs(u), 0.9999)
		x := ErfInv(y)
		return almostEqual(math.Erf(x), y, 1e-10) || y == 0 && x == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestChiSquaredCDFAgainstKnown(t *testing.T) {
	// chi2(1 df): CDF(3.841459) ≈ 0.95; chi2(2 df): CDF(x) = 1 − e^{−x/2}.
	c1 := ChiSquared{K: 1}
	if got := c1.CDF(3.8414588206941236); !almostEqual(got, 0.95, 1e-9) {
		t.Errorf("chi2(1).CDF(3.8415) = %v, want 0.95", got)
	}
	c2 := ChiSquared{K: 2}
	for _, x := range []float64{0.5, 1, 3, 8} {
		want := 1 - math.Exp(-x/2)
		if got := c2.CDF(x); !almostEqual(got, want, 1e-10) {
			t.Errorf("chi2(2).CDF(%v) = %v, want %v", x, got, want)
		}
	}
	if c1.CDF(-1) != 0 {
		t.Error("CDF of negative should be 0")
	}
}

func TestChiSquaredQuantile(t *testing.T) {
	// The constant from the paper's Equation (1): chi2_{0.95,1} ≈ 3.8415.
	q, err := Chi2Quantile1DF(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(q, 3.8414588206941236, 1e-8) {
		t.Errorf("chi2_{0.95,1} = %v, want 3.84146", q)
	}
	// Round trip across several dfs and levels.
	for _, k := range []float64{1, 2, 3, 5, 10, 30} {
		c := ChiSquared{K: k}
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99} {
			x, err := c.Quantile(p)
			if err != nil {
				t.Fatalf("Quantile(%v df=%v): %v", p, k, err)
			}
			if got := c.CDF(x); !almostEqual(got, p, 1e-7) {
				t.Errorf("CDF(Quantile(%v)) df=%v = %v", p, k, got)
			}
		}
	}
	if _, err := (ChiSquared{K: 1}).Quantile(0); err == nil {
		t.Error("Quantile(0) should error")
	}
	if _, err := (ChiSquared{K: 1}).Quantile(1); err == nil {
		t.Error("Quantile(1) should error")
	}
}

func TestChiSquaredPDF(t *testing.T) {
	// df=2 is Exp(1/2): pdf(x) = e^{-x/2}/2.
	c := ChiSquared{K: 2}
	for _, x := range []float64{0.5, 1, 4} {
		want := math.Exp(-x/2) / 2
		if got := c.PDF(x); !almostEqual(got, want, 1e-12) {
			t.Errorf("PDF(%v) = %v, want %v", x, got, want)
		}
	}
	if c.PDF(-1) != 0 {
		t.Error("PDF of negative should be 0")
	}
	if c.PDF(0) != 0.5 {
		t.Errorf("chi2(2).PDF(0) = %v, want 0.5", c.PDF(0))
	}
	if !math.IsInf((ChiSquared{K: 1}).PDF(0), 1) {
		t.Error("chi2(1).PDF(0) should be +Inf")
	}
	if (ChiSquared{K: 4}).PDF(0) != 0 {
		t.Error("chi2(4).PDF(0) should be 0")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.5, 0.9, 1.5, -2}
	h := NewHistogram(xs, 4, 0, 1)
	if h.N != 6 {
		t.Errorf("N = %d, want 6", h.N)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 6 {
		t.Errorf("sum of counts = %d", total)
	}
	// Outliers clamp to edge bins: -2 into bin 0, 1.5 into bin 3.
	if h.Counts[0] < 1 || h.Counts[3] < 1 {
		t.Errorf("clamping failed: %v", h.Counts)
	}
	if h.MaxCount() < 1 {
		t.Error("MaxCount")
	}
	if c := h.BinCenter(0); !almostEqual(c, 0.125, 1e-12) {
		t.Errorf("BinCenter(0) = %v", c)
	}
	// Degenerate parameters are repaired rather than panicking.
	h2 := NewHistogram(xs, 0, 5, 5)
	if len(h2.Counts) != 1 || h2.N != 6 {
		t.Errorf("degenerate histogram: %+v", h2)
	}
}
