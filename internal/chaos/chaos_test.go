package chaos

// The chaos scenario matrix. Every scenario runs a real campaign over a
// real TCP fleet while one disturbance plays out, then asserts the two
// invariants the tentpole promises:
//
//  1. The campaign journal is byte-identical to an undisturbed serial
//     run — kills, partitions, heartbeat loss, drains and late joins are
//     all invisible to the estimator's sample.
//  2. The membership telemetry (pool and fleet gauges) matches the
//     fleet's actual state once the dust settles.
//
// Disturbances trigger on committed-draw counts, so every run hits the
// same campaign phase regardless of machine speed or -race overhead.

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"optassign/internal/core"
)

const (
	chaosSeed  = 7
	chaosTasks = 8
)

// baseline computes (once) the undisturbed serial reference journal. Its
// campaign error (e.g. a clean budget exhaustion at MaxSamples) is part
// of the reference: the fleet run must finish the same way.
var baseline struct {
	once  sync.Once
	bytes []byte
	res   core.IterResult
	err   error
}

func serialReference(t *testing.T) ([]byte, core.IterResult, error) {
	t.Helper()
	baseline.once.Do(func() {
		dir := t.TempDir()
		baseline.bytes, baseline.res, baseline.err = SerialBaseline(dir, chaosTasks, CampaignConfig{Seed: chaosSeed})
	})
	if len(baseline.bytes) == 0 {
		t.Fatalf("serial baseline produced no journal (err: %v)", baseline.err)
	}
	return baseline.bytes, baseline.res, baseline.err
}

func newFleet(t *testing.T, members int) (*Fleet, []*Member) {
	t.Helper()
	f, err := NewFleet(FleetConfig{Tasks: chaosTasks})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	ms := make([]*Member, members)
	for i := range ms {
		m, err := f.Join(context.Background(), fmt.Sprintf("member-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = m
	}
	return f, ms
}

// runScenario executes one disturbed campaign and applies the two
// invariant checks; scenario-specific asserts follow at the call site.
func runScenario(t *testing.T, f *Fleet, sched Schedule) {
	t.Helper()
	wantBytes, wantRes, wantErr := serialReference(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, data, err := f.RunCampaign(ctx, t.TempDir(), CampaignConfig{Seed: chaosSeed}, sched)
	if fmt.Sprint(err) != fmt.Sprint(wantErr) {
		t.Fatalf("fleet campaign ended with %v, serial baseline with %v", err, wantErr)
	}
	if !bytes.Equal(data, wantBytes) {
		t.Fatalf("fleet journal differs from undisturbed serial baseline: %d bytes vs %d",
			len(data), len(wantBytes))
	}
	if res.Samples != wantRes.Samples || !reflect.DeepEqual(res.Best, wantRes.Best) {
		t.Fatalf("fleet result (%d, %v) differs from serial (%d, %v)",
			res.Samples, res.Best, wantRes.Samples, wantRes.Best)
	}
	if err := f.VerifyTelemetry(); err != nil {
		t.Fatalf("telemetry lies: %v", err)
	}
}

// waitUntil polls a condition with a hard deadline — used inside commit
// hooks to sequence a disturbance against fleet reactions.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestChaosUndisturbedFleetMatchesSerial(t *testing.T) {
	f, _ := newFleet(t, 3)
	runScenario(t, f, nil)
	if f.Pool.Size() != 3 {
		t.Fatalf("fleet shrank to %d without any disturbance", f.Pool.Size())
	}
}

func TestChaosServerKilledMidCampaign(t *testing.T) {
	f, ms := newFleet(t, 3)
	victim := ms[1]
	runScenario(t, f, Schedule{
		// Abrupt death at draw 40: in-flight measurements on the victim
		// fail over, the registry evicts the silent member.
		40: func() { go victim.Kill() },
	})
	waitUntil(t, "victim eviction", func() bool { return f.Pool.Size() == 2 })
	if err := f.VerifyTelemetry(); err != nil {
		t.Fatalf("telemetry after kill: %v", err)
	}
	if f.Events.Count("member_left") == 0 {
		t.Error("no member_left event for the killed server")
	}
}

func TestChaosMeasurementPartitionHeals(t *testing.T) {
	f, ms := newFleet(t, 3)
	victim := ms[2]
	runScenario(t, f, Schedule{
		// The victim's measurement plane goes dark at draw 30 — requests
		// into it hang until the per-attempt timeout abandons them — and
		// heals at draw 120. Heartbeats flow throughout, so the member
		// stays in the fleet the whole time.
		30:  func() { victim.PartitionMeasure() },
		120: func() { victim.HealMeasure() },
	})
	if f.Pool.Size() != 3 {
		t.Fatalf("healed fleet has %d members, want 3", f.Pool.Size())
	}
	if got := f.Registry.Members()[victim.Addr()]; got != "active" {
		t.Fatalf("healed member is %q, want active", got)
	}
}

func TestChaosHeartbeatLossSuspectsAndRecovers(t *testing.T) {
	f, ms := newFleet(t, 3)
	victim := ms[0]
	runScenario(t, f, Schedule{
		30: func() {
			// Silence the registration link until the registry marks the
			// member suspect, then heal and hold the campaign's commit
			// stream until it recovers. Measurements keep flowing to the
			// suspect member throughout — suspicion deprioritizes, it
			// does not remove.
			victim.PartitionRegistry()
			waitUntil(t, "suspect", func() bool {
				return f.Registry.Members()[victim.Addr()] == "suspect"
			})
			if got := f.Pool.Members()[victim.Addr()]; got != "suspect" {
				t.Errorf("pool sees %q while registry sees suspect", got)
			}
			victim.HealRegistry()
			waitUntil(t, "recovery", func() bool {
				return f.Registry.Members()[victim.Addr()] == "active"
			})
		},
	})
	if f.Events.Count("member_suspect") == 0 {
		t.Error("no member_suspect event recorded")
	}
	if f.Events.Count("member_recovered") == 0 {
		t.Error("no member_recovered event recorded")
	}
	if err := f.VerifyTelemetry(); err != nil {
		t.Fatalf("telemetry after recovery: %v", err)
	}
}

func TestChaosEvictionAndRejoin(t *testing.T) {
	f, ms := newFleet(t, 3)
	victim := ms[1]
	runScenario(t, f, Schedule{
		25: func() {
			// Heartbeat silence past the evict timer: the member is
			// thrown out of the fleet entirely. Healing the link lets its
			// registrant re-announce — eviction is not a death sentence.
			victim.PartitionRegistry()
			waitUntil(t, "eviction", func() bool {
				_, ok := f.Registry.Members()[victim.Addr()]
				return !ok
			})
			victim.HealRegistry()
			waitUntil(t, "rejoin", func() bool {
				return f.Registry.Members()[victim.Addr()] == "active" &&
					f.Pool.Members()[victim.Addr()] == "active"
			})
		},
	})
	if f.Pool.Size() != 3 {
		t.Fatalf("fleet has %d members after rejoin, want 3", f.Pool.Size())
	}
	if f.Events.Count("member_left") == 0 {
		t.Error("no member_left event for the eviction")
	}
	if f.FleetMetrics.Joins.Value() < 4 {
		t.Errorf("joins counter = %v, want >= 4 (3 joins + 1 rejoin)", f.FleetMetrics.Joins.Value())
	}
}

func TestChaosGracefulDrainLosesNothing(t *testing.T) {
	f, ms := newFleet(t, 3)
	victim := ms[2]
	drained := make(chan error, 1)
	runScenario(t, f, Schedule{
		// Drain mid-campaign: the member finishes in-flight work, leaves
		// cleanly, and the journal still matches — the committed stream
		// lost nothing.
		50: func() {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				drained <- victim.Drain(ctx)
			}()
		},
	})
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never completed")
	}
	if f.Pool.Size() != 2 {
		t.Fatalf("fleet has %d members after drain, want 2", f.Pool.Size())
	}
	if v := f.FleetMetrics.Drains.Value(); v != 1 {
		t.Errorf("drains counter = %v, want 1", v)
	}
	if f.Events.Count("member_draining") == 0 {
		t.Error("no member_draining event recorded")
	}
	if err := f.VerifyTelemetry(); err != nil {
		t.Fatalf("telemetry after drain: %v", err)
	}
}

func TestChaosLateJoinersShareTheLoad(t *testing.T) {
	f, ms := newFleet(t, 1)
	_ = ms
	joined := make(chan error, 2)
	runScenario(t, f, Schedule{
		// The campaign starts on a single server; two more register while
		// it runs. Identity verification gates them in, then the pool's
		// work-stealing spreads subsequent draws across all three.
		30: func() {
			for i := 0; i < 2; i++ {
				name := fmt.Sprintf("late-%d", i)
				go func() {
					_, err := f.Join(context.Background(), name)
					joined <- err
				}()
			}
		},
	})
	for i := 0; i < 2; i++ {
		select {
		case err := <-joined:
			if err != nil {
				t.Fatalf("late join: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("late joiner never registered")
		}
	}
	if f.Pool.Size() != 3 {
		t.Fatalf("fleet has %d members after late joins, want 3", f.Pool.Size())
	}
	if v := f.FleetMetrics.Joins.Value(); v != 3 {
		t.Errorf("joins counter = %v, want 3", v)
	}
}

func TestChaosMetricsExpositionTellsTheTruth(t *testing.T) {
	f, _ := newFleet(t, 2)
	runScenario(t, f, nil)
	// The Prometheus exposition — what /metrics serves — must carry the
	// membership series with the live values.
	var buf bytes.Buffer
	if err := f.Obs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{
		"optassign_fleet_members 2",
		"optassign_fleet_suspects 0",
		"optassign_remote_pool_members 2",
		"optassign_fleet_joins_total 2",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}
