// Package chaos is the soak harness that proves the fleet's robustness
// story end to end: it stands up an in-process fleet of real measurement
// servers (TCP, the production protocol, the production registry) behind
// fault-injection proxies, runs real campaigns across it, and disturbs
// the fleet while they run — killing members, partitioning links,
// silencing heartbeats, draining servers mid-flight, adding late joiners.
//
// The harness exists for one assertion, made after every scenario: the
// campaign journal must be byte-identical to an undisturbed serial run's.
// The estimator's statistical contract (Chapter 3 of the paper: an i.i.d.
// sample of the assignment space) survives any fleet weather the
// disturbances can brew, or the scenario fails. A second assertion keeps
// the observability honest: the membership gauges in internal/obs must
// agree with the fleet's actual state whenever it is quiescent.
//
// Disturbances are keyed to committed-draw counts, not wall time, so
// scenarios hit the same campaign phase on every machine and under -race.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/campaign"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/faulty"
	"optassign/internal/netdps"
	"optassign/internal/obs"
	"optassign/internal/remote"
	"optassign/internal/t2"
)

// FleetConfig sizes the harness timers. The zero value is usable.
type FleetConfig struct {
	// Heartbeat is the registry's heartbeat interval; suspect fires at
	// 4×, evict at 16×. Default 25 ms — fast enough that scenarios can
	// provoke suspects and evictions in test time.
	Heartbeat time.Duration
	// Tasks is the per-testbed task count. Default 8.
	Tasks int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 25 * time.Millisecond
	}
	if c.Tasks <= 0 {
		c.Tasks = 8
	}
	return c
}

// Fleet is a live in-process fleet: registry, membership pool, telemetry,
// and the members joined so far. Scenarios drive it through Join and the
// per-member disturbance switches, and run campaigns with RunCampaign.
type Fleet struct {
	cfg FleetConfig

	Obs          *obs.Registry
	Events       *obs.CollectorSink
	Pool         *remote.ClientPool
	Registry     *remote.Registry
	PoolMetrics  *remote.PoolMetrics
	FleetMetrics *remote.MembershipMetrics

	regListener net.Listener

	mu      sync.Mutex
	members map[string]*Member
}

// NewFleet wires an empty fleet: a membership pool, a registry serving on
// loopback, and a shared metrics registry + event collector watching both.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	sink := &obs.CollectorSink{}
	f := &Fleet{
		cfg:          cfg,
		Obs:          reg,
		Events:       sink,
		PoolMetrics:  remote.NewPoolMetrics(reg),
		FleetMetrics: remote.NewMembershipMetrics(reg),
		members:      make(map[string]*Member),
	}
	f.Pool = remote.NewPool(remote.PoolConfig{
		Client: remote.ClientConfig{
			RedialAttempts: 2,
			RedialBase:     time.Millisecond,
			RedialMax:      5 * time.Millisecond,
		},
		QuarantineAfter: 3,
		Cooldown:        50 * time.Millisecond,
		Events:          sink,
		Metrics:         f.PoolMetrics,
	})
	f.Registry = remote.NewRegistry(f.Pool, remote.RegistryConfig{
		HeartbeatInterval: cfg.Heartbeat,
		SuspectAfter:      4 * cfg.Heartbeat,
		EvictAfter:        16 * cfg.Heartbeat,
		Events:            sink,
		Metrics:           f.FleetMetrics,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	f.regListener = l
	go f.Registry.Serve(l)
	return f, nil
}

// Close tears the whole fleet down: members, registry, pool.
func (f *Fleet) Close() {
	f.mu.Lock()
	members := make([]*Member, 0, len(f.members))
	for _, m := range f.members {
		members = append(members, m)
	}
	f.mu.Unlock()
	for _, m := range members {
		m.Kill()
	}
	f.Registry.Close()
	f.Pool.Close()
}

// Member is one fleet server: a deterministic simulated testbed behind a
// real remote.Server, reached through two fault proxies — one on the
// measurement plane, one on the registration link — so scenarios can
// disturb either independently.
type Member struct {
	Name     string
	Testbed  *netdps.Testbed
	Server   *remote.Server
	Reg      *remote.Registrant
	measureP *faulty.Proxy
	regP     *faulty.Proxy

	fleet  *Fleet
	cancel context.CancelFunc
	done   chan error

	mu     sync.Mutex
	killed bool
}

// Addr is the member's advertised measurement address (the proxy front).
func (m *Member) Addr() string { return m.measureP.Addr() }

// Join starts a new member — testbed, server, proxies, registrant — and
// blocks until the registry has verified it into the pool (or ctx gives
// up). Members may join before or during a campaign.
func (f *Fleet) Join(ctx context.Context, name string) (*Member, error) {
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), f.cfg.Tasks)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &remote.Server{
		Runner:      tb,
		Topo:        tb.Machine.Topo,
		Tasks:       tb.TaskCount(),
		Name:        name,
		ReadTimeout: 2 * time.Second,
	}
	go srv.Serve(l)
	mproxy, err := faulty.NewProxyConfig(l.Addr().String(), faulty.ProxyConfig{})
	if err != nil {
		srv.Close()
		return nil, err
	}
	rproxy, err := faulty.NewProxyConfig(f.regListener.Addr().String(), faulty.ProxyConfig{})
	if err != nil {
		srv.Close()
		mproxy.Close()
		return nil, err
	}
	registrant, err := remote.NewRegistrant(remote.RegistrantConfig{
		Dial:      func() (net.Conn, error) { return net.Dial("tcp", rproxy.Addr()) },
		Hello:     remote.Hello{Topology: tb.Machine.Topo, Tasks: tb.TaskCount(), Name: name},
		Addr:      mproxy.Addr(),
		Identity:  tb.Identity(),
		RetryBase: 5 * time.Millisecond,
		RetryMax:  250 * time.Millisecond,
		Events:    f.Events,
	})
	if err != nil {
		srv.Close()
		mproxy.Close()
		rproxy.Close()
		return nil, err
	}
	runCtx, cancel := context.WithCancel(context.Background())
	m := &Member{
		Name:     name,
		Testbed:  tb,
		Server:   srv,
		Reg:      registrant,
		measureP: mproxy,
		regP:     rproxy,
		fleet:    f,
		cancel:   cancel,
		done:     make(chan error, 1),
	}
	go func() { m.done <- registrant.Run(runCtx) }()

	// The member counts once the dial-back verification admitted it.
	deadline := time.Now().Add(10 * time.Second)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for {
		if _, ok := f.Pool.Members()[m.Addr()]; ok {
			break
		}
		if err := ctx.Err(); err != nil {
			m.Kill()
			return nil, err
		}
		if time.Now().After(deadline) {
			m.Kill()
			return nil, fmt.Errorf("chaos: member %s never joined the pool", name)
		}
		time.Sleep(2 * time.Millisecond)
	}
	f.mu.Lock()
	f.members[name] = m
	f.mu.Unlock()
	return m, nil
}

// Kill is the ungraceful death: the server dies mid-measurement, both
// proxies sever their links, the registrant stops. The registry sees the
// silence and evicts; any in-flight measurement fails over.
func (m *Member) Kill() {
	m.mu.Lock()
	if m.killed {
		m.mu.Unlock()
		return
	}
	m.killed = true
	m.mu.Unlock()
	m.cancel()
	m.Server.Close()
	m.measureP.Close()
	m.regP.Close()
	<-m.done
	m.fleet.mu.Lock()
	delete(m.fleet.members, m.Name)
	m.fleet.mu.Unlock()
}

// Drain is the graceful departure: the drain handshake runs, in-flight
// work finishes and commits, and only then does the member shut down.
// Returns once the registry has acknowledged — after which losing this
// server loses nothing.
func (m *Member) Drain(ctx context.Context) error {
	if err := m.Reg.Drain(ctx); err != nil {
		return err
	}
	if err := <-m.done; err != nil {
		return fmt.Errorf("chaos: registrant exit after drain: %w", err)
	}
	m.mu.Lock()
	m.killed = true
	m.mu.Unlock()
	m.Server.Shutdown(ctx)
	m.measureP.Close()
	m.regP.Close()
	m.fleet.mu.Lock()
	delete(m.fleet.members, m.Name)
	m.fleet.mu.Unlock()
	return nil
}

// PartitionMeasure cuts the measurement plane: connections stay up,
// bytes stop. In-flight requests hang until HealMeasure (the resilient
// layer's per-attempt timeout abandons them and fails over meanwhile).
func (m *Member) PartitionMeasure() { m.measureP.Hold() }

// HealMeasure ends a PartitionMeasure.
func (m *Member) HealMeasure() { m.measureP.Release() }

// PartitionRegistry silences the registration link — heartbeat loss
// without measurement loss. Held briefly the member turns suspect and
// recovers; held past the evict timer it is thrown out of the fleet (and
// rejoins by re-announcing once healed).
func (m *Member) PartitionRegistry() { m.regP.Hold() }

// HealRegistry ends a PartitionRegistry.
func (m *Member) HealRegistry() { m.regP.Release() }

// Schedule maps a committed-draw count to a disturbance fired right after
// that commit lands in the journal. Hooks run on the campaign's commit
// path: keep them quick, and spawn a goroutine for anything that blocks
// (Drain, Join).
type Schedule map[int]func()

// CampaignConfig shapes one soak campaign. Topo and Tasks come from the
// fleet; everything else has test-sized defaults.
type CampaignConfig struct {
	Seed       int64
	MaxSamples int // default 220
	Workers    int // default 4
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.MaxSamples <= 0 {
		c.MaxSamples = 220
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	return c
}

// fleetIterConfig builds the campaign configuration for a fleet testbed:
// a short iterated campaign, sized so scenarios finish in test time while
// still crossing several accept/extend rounds.
func fleetIterConfig(topo t2.Topology, tasks int, cfg CampaignConfig) core.IterConfig {
	return core.IterConfig{
		Topo:          topo,
		Tasks:         tasks,
		AcceptLossPct: 8,
		Ninit:         100,
		Ndelta:        30,
		MaxSamples:    cfg.MaxSamples,
		Seed:          cfg.Seed,
		// Small campaigns need a permissive threshold scan to keep enough
		// exceedances for the GPD fit.
		POT: evt.POTOptions{Threshold: evt.ThresholdOptions{MaxExceedFraction: 0.3}},
	}
}

// RunCampaign drives one journaled campaign across the fleet, firing the
// scheduled disturbances as their commit counts land, and returns the
// result plus the journal bytes. The measurement stack is the production
// one: membership pool → resilient retries → replicated workers →
// in-order journal commits.
func (f *Fleet) RunCampaign(ctx context.Context, dir string, cfg CampaignConfig, sched Schedule) (core.IterResult, []byte, error) {
	cfg = cfg.withDefaults()
	if err := f.Pool.WaitReady(ctx, 1); err != nil {
		return core.IterResult{}, nil, err
	}
	icfg := fleetIterConfig(f.Pool.Topology(), f.Pool.Tasks(), cfg)
	path := dir + "/fleet.journal"
	j, err := campaign.CreateJournal(path, campaign.JournalHeader{
		Benchmark: "chaos", Topo: icfg.Topo, Tasks: icfg.Tasks, Seed: cfg.Seed,
	})
	if err != nil {
		return core.IterResult{}, nil, err
	}
	// Retries hide every disturbance from the journal: a measurement that
	// dies with its server is re-run (same assignment, same deterministic
	// result) until it lands. Quarantine would poison the byte-equality
	// assertion, so the budget is generous and each attempt is bounded so
	// a partition cannot wedge a worker.
	resilient := core.NewResilientRunner(f.Pool, core.ResilientConfig{
		MaxAttempts: 60,
		Timeout:     2 * time.Second,
		BaseDelay:   time.Millisecond,
		MaxDelay:    25 * time.Millisecond,
	})
	workers, err := core.NewReplicatedPool(resilient, cfg.Workers)
	if err != nil {
		j.Close()
		return core.IterResult{}, nil, err
	}
	commits := 0
	commit := func(a assign.Assignment, perf float64, measureErr error) error {
		if err := j.Commit(a, perf, measureErr); err != nil {
			return err
		}
		commits++ // IterateParallel commits in order from one goroutine
		if hook, ok := sched[commits]; ok {
			hook()
		}
		return nil
	}
	res, iterErr := core.IterateParallel(ctx, icfg, workers, commit)
	if err := j.Close(); err != nil && iterErr == nil {
		iterErr = err
	}
	data, err := os.ReadFile(path)
	if err != nil && iterErr == nil {
		iterErr = err
	}
	return res, data, iterErr
}

// SerialBaseline runs the same campaign undisturbed on one local testbed
// — no network, no fleet — and returns the reference journal bytes.
func SerialBaseline(dir string, tasks int, cfg CampaignConfig) ([]byte, core.IterResult, error) {
	cfg = cfg.withDefaults()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), tasks)
	if err != nil {
		return nil, core.IterResult{}, err
	}
	icfg := fleetIterConfig(tb.Machine.Topo, tb.TaskCount(), cfg)
	path := dir + "/serial.journal"
	j, err := campaign.CreateJournal(path, campaign.JournalHeader{
		Benchmark: "chaos", Topo: icfg.Topo, Tasks: icfg.Tasks, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, core.IterResult{}, err
	}
	res, iterErr := core.IterateContext(context.Background(), icfg,
		campaign.JournalRunner{Journal: j, Runner: core.AsContextRunner(tb)})
	if err := j.Close(); err != nil && iterErr == nil {
		iterErr = err
	}
	data, err := os.ReadFile(path)
	if err != nil && iterErr == nil {
		iterErr = err
	}
	return data, res, iterErr
}

// VerifyTelemetry cross-checks the metrics gauges against the fleet's
// actual state. Only meaningful at quiescent moments (no disturbance or
// handshake in progress); scenarios call it after campaigns settle.
func (f *Fleet) VerifyTelemetry() error {
	poolMembers := f.Pool.Members()
	regMembers := f.Registry.Members()
	var errs []error
	if got, want := f.PoolMetrics.Members.Value(), float64(len(poolMembers)); got != want {
		errs = append(errs, fmt.Errorf("pool members gauge %v, pool has %v", got, want))
	}
	if got, want := f.FleetMetrics.Members.Value(), float64(len(regMembers)); got != want {
		errs = append(errs, fmt.Errorf("fleet members gauge %v, registry has %v", got, want))
	}
	suspects := 0
	for _, state := range regMembers {
		if state == "suspect" {
			suspects++
		}
	}
	if got, want := f.FleetMetrics.Suspects.Value(), float64(suspects); got != want {
		errs = append(errs, fmt.Errorf("fleet suspects gauge %v, registry has %v", got, want))
	}
	poolSuspects := 0
	for _, state := range poolMembers {
		if state == "suspect" {
			poolSuspects++
		}
	}
	if got, want := f.PoolMetrics.SuspectServers.Value(), float64(poolSuspects); got != want {
		errs = append(errs, fmt.Errorf("pool suspects gauge %v, pool has %v", got, want))
	}
	return errors.Join(errs...)
}
