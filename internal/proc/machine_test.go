package proc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

func computeDemand() Demand {
	var d Demand
	d.Serial = 100
	d.Res[IFU] = 100
	d.Res[IEU] = 700
	d.Res[L1D] = 100
	return d
}

func TestResourceLevels(t *testing.T) {
	if IFU.Level() != t2.IntraPipe || IEU.Level() != t2.IntraPipe {
		t.Error("pipe-level resources wrong")
	}
	if L1D.Level() != t2.IntraCore || LSU.Level() != t2.IntraCore {
		t.Error("core-level resources wrong")
	}
	if L2.Level() != t2.InterCore || MEM.Level() != t2.InterCore {
		t.Error("chip-level resources wrong")
	}
	for r := 0; r < NumResources; r++ {
		if Resource(r).String() == "Resource(?)" {
			t.Errorf("resource %d has no name", r)
		}
	}
	if Resource(99).String() != "Resource(?)" {
		t.Error("out-of-range resource name")
	}
}

func TestDemandArithmetic(t *testing.T) {
	d := computeDemand()
	if d.Base() != 1000 {
		t.Errorf("Base = %v, want 1000", d.Base())
	}
	sum := d.Add(d)
	if sum.Base() != 2000 || sum.Res[IEU] != 1400 {
		t.Errorf("Add wrong: %+v", sum)
	}
	half := d.Scale(0.5)
	if half.Base() != 500 || half.Serial != 50 {
		t.Errorf("Scale wrong: %+v", half)
	}
}

func TestMachineValidate(t *testing.T) {
	m := UltraSPARCT2Machine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *m
	bad.Caps[IEU] = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	bad2 := *m
	bad2.ClockHz = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	bad3 := *m
	bad3.Topo = t2.Topology{}
	if err := bad3.Validate(); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestSoloTaskRunsAtBaseRate(t *testing.T) {
	m := UltraSPARCT2Machine()
	tasks := []Task{{Demand: computeDemand(), Group: 0}}
	res, err := m.Solve(tasks, nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ServiceCycles[0]-1000) > 1e-6 {
		t.Errorf("solo service = %v, want 1000", res.ServiceCycles[0])
	}
	if math.Abs(res.Slowdown[0]-1) > 1e-9 {
		t.Errorf("solo slowdown = %v, want 1", res.Slowdown[0])
	}
	if math.Abs(res.TotalPPS-m.ClockHz/1000) > 1 {
		t.Errorf("PPS = %v, want %v", res.TotalPPS, m.ClockHz/1000)
	}
}

func TestSamePipeContention(t *testing.T) {
	m := UltraSPARCT2Machine()
	d := computeDemand() // IEU-heavy: two of these saturate one pipe's IEU
	tasks := []Task{{Demand: d, Group: 0}, {Demand: d, Group: 1}}

	samePipe, err := m.Solve(tasks, nil, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	diffPipe, err := m.Solve(tasks, nil, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	diffCore, err := m.Solve(tasks, nil, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !(samePipe.TotalPPS < diffPipe.TotalPPS) {
		t.Errorf("same-pipe %v should be slower than different-pipe %v", samePipe.TotalPPS, diffPipe.TotalPPS)
	}
	if samePipe.Slowdown[0] <= 1 {
		t.Errorf("expected same-pipe slowdown > 1, got %v", samePipe.Slowdown[0])
	}
	// The IEU is pipe-scoped: separate pipes of one core behave like
	// separate cores for this demand (L1D utilization stays below cap).
	if math.Abs(diffPipe.TotalPPS-diffCore.TotalPPS)/diffCore.TotalPPS > 0.01 {
		t.Errorf("diff-pipe %v vs diff-core %v should be close", diffPipe.TotalPPS, diffCore.TotalPPS)
	}
}

func TestCommunicationPlacement(t *testing.T) {
	m := UltraSPARCT2Machine()
	var light Demand
	light.Serial = 200
	light.Res[LSU] = 100
	light.Res[L1D] = 100
	tasks := []Task{{Demand: light, Group: 0}, {Demand: light, Group: 0}}
	links := []Link{{A: 0, B: 1, Volume: 1}}

	sameCore, err := m.Solve(tasks, links, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	crossCore, err := m.Solve(tasks, links, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !(sameCore.TotalPPS > crossCore.TotalPPS) {
		t.Errorf("co-located pipeline %v should beat cross-core %v", sameCore.TotalPPS, crossCore.TotalPPS)
	}
}

func TestGroupRateIsBottleneckStage(t *testing.T) {
	m := UltraSPARCT2Machine()
	fast := Demand{Serial: 100}
	slow := Demand{Serial: 1000}
	tasks := []Task{{Demand: fast, Group: 0}, {Demand: slow, Group: 0}, {Demand: fast, Group: 0}}
	res, err := m.Solve(tasks, nil, []int{0, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GroupRate[0]-1.0/1000) > 1e-9 {
		t.Errorf("group rate = %v, want bottleneck 1/1000", res.GroupRate[0])
	}
}

func TestSolveSymmetryInvariance(t *testing.T) {
	m := UltraSPARCT2Machine()
	topo := m.Topo
	d := computeDemand()
	mk := func() []Task {
		return []Task{
			{Demand: d, Group: 0}, {Demand: d.Scale(0.4), Group: 0},
			{Demand: d.Scale(0.7), Group: 1}, {Demand: d, Group: 1},
		}
	}
	links := []Link{{A: 0, B: 1, Volume: 1}, {A: 2, B: 3, Volume: 1}}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := assign.RandomPermutation(rng, topo, 4)
		if err != nil {
			return false
		}
		// Apply a random hardware symmetry to the placement.
		corePerm := rng.Perm(topo.Cores)
		pipePerms := make([][]int, topo.Cores)
		for i := range pipePerms {
			pipePerms[i] = rng.Perm(topo.PipesPerCore)
		}
		slotPerms := make([][]int, topo.Pipes())
		for i := range slotPerms {
			slotPerms[i] = rng.Perm(topo.ContextsPerPipe)
		}
		b := make([]int, len(a.Ctx))
		for i, ctx := range a.Ctx {
			core := topo.CoreOf(ctx)
			pipe := topo.PipeOf(ctx) % topo.PipesPerCore
			slot := topo.SlotOf(ctx)
			b[i] = topo.Context(corePerm[core], pipePerms[core][pipe], slotPerms[topo.PipeOf(ctx)][slot])
		}
		r1, err1 := m.Solve(mk(), links, a.Ctx)
		r2, err2 := m.Solve(mk(), links, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1.TotalPPS-r2.TotalPPS) < 1e-6*r1.TotalPPS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveDeterministic(t *testing.T) {
	m := UltraSPARCT2Machine()
	d := computeDemand()
	tasks := []Task{{Demand: d, Group: 0}, {Demand: d, Group: 0}, {Demand: d, Group: 1}}
	links := []Link{{A: 0, B: 1, Volume: 1}}
	placement := []int{0, 1, 2}
	r1, err := m.Solve(tasks, links, placement)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Solve(tasks, links, placement)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalPPS != r2.TotalPPS {
		t.Errorf("non-deterministic solve: %v vs %v", r1.TotalPPS, r2.TotalPPS)
	}
	if r1.Iterations >= solverMaxIter {
		t.Errorf("solver did not converge within %d iterations", solverMaxIter)
	}
}

func TestSolveErrors(t *testing.T) {
	m := UltraSPARCT2Machine()
	d := computeDemand()
	if _, err := m.Solve(nil, nil, nil); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := m.Solve([]Task{{Demand: d}}, nil, []int{0, 1}); err == nil {
		t.Error("placement length mismatch accepted")
	}
	if _, err := m.Solve([]Task{{Demand: d}}, nil, []int{-1}); err == nil {
		t.Error("negative context accepted")
	}
	if _, err := m.Solve([]Task{{Demand: d}}, nil, []int{64}); err == nil {
		t.Error("out-of-range context accepted")
	}
	if _, err := m.Solve([]Task{{Demand: d}, {Demand: d}}, nil, []int{3, 3}); err == nil {
		t.Error("duplicate context accepted")
	}
	if _, err := m.Solve([]Task{{Demand: d}}, []Link{{A: 0, B: 5}}, []int{0}); err == nil {
		t.Error("dangling link accepted")
	}
	if _, err := m.Solve([]Task{{Demand: Demand{}}}, nil, []int{0}); err == nil {
		t.Error("zero demand accepted")
	}
	if _, err := m.Solve([]Task{{Demand: d, Group: -1}}, nil, []int{0}); err == nil {
		t.Error("negative group accepted")
	}
}

func TestGlobalSaturation(t *testing.T) {
	// Fill the machine with memory-hungry tasks: the MEM controllers (cap
	// 4 work-units/cycle, chip-wide) must throttle everyone no matter the
	// placement.
	m := UltraSPARCT2Machine()
	var d Demand
	d.Serial = 100
	d.Res[MEM] = 900
	tasks := make([]Task, 32)
	placement := make([]int, 32)
	for i := range tasks {
		tasks[i] = Task{Demand: d, Group: i}
		placement[i] = i * 2 // spread out: two per pipe
	}
	res, err := m.Solve(tasks, nil, placement)
	if err != nil {
		t.Fatal(err)
	}
	// Unthrottled each task would run at 1/1000 pkt/cycle: 32 tasks × 900
	// cycles demand = 28.8 utilization >> 4 capacity.
	unthrottled := 32.0 / 1000
	if res.TotalRate > unthrottled*0.5 {
		t.Errorf("total rate %v not throttled below %v", res.TotalRate, unthrottled*0.5)
	}
	for i := range tasks {
		if res.Slowdown[i] <= 1.5 {
			t.Errorf("task %d slowdown %v, expected heavy MEM contention", i, res.Slowdown[i])
		}
	}
}
