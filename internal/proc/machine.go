package proc

import (
	"fmt"
	"math"

	"optassign/internal/t2"
)

// Capacities holds, for each resource kind, the sustainable occupancy (work
// units per cycle) of one instance of that resource. Utilization above
// capacity slows every sharer proportionally.
type Capacities [NumResources]float64

// Machine is a processor performance model: a topology plus per-resource
// capacities and communication costs.
type Machine struct {
	Topo t2.Topology
	Caps Capacities

	// Queue-communication demand added to both endpoint tasks of a
	// pipeline link, depending on where the endpoints are placed: sharing
	// an L1 domain (same core) makes the memory queues cheap; crossing
	// cores routes them through the L2 and the crossbar.
	LocalCommL1    float64 // cycles on L1D when endpoints share a core
	RemoteCommL2   float64 // cycles on L2 when endpoints are on different cores
	RemoteCommXBar float64 // cycles on XBAR when endpoints are on different cores

	ClockHz float64 // cycles per second, converts rates to PPS
}

// UltraSPARCT2Machine returns the calibrated performance model used by the
// case study: 8 cores × 2 pipes × 4 strands at 1.4 GHz, with capacities
// reflecting the T2's single fetch/issue slot per pipeline, dual-pipe L1
// bandwidth per core, 8-bank L2, 8×9 crossbar and 4 memory controller
// channels.
func UltraSPARCT2Machine() *Machine {
	m := &Machine{
		Topo:           t2.UltraSPARCT2(),
		LocalCommL1:    25,
		RemoteCommL2:   30,
		RemoteCommXBar: 12,
		ClockHz:        1.4e9,
	}
	m.Caps = Capacities{
		// One fetch slot and (just under) one issue slot per pipeline: two
		// compute-bound strands in a pipe clearly over-subscribe it.
		IFU: 1.0, IEU: 0.85,
		// One load/store unit per core shared by all eight strands — the
		// T2's classic secondary bottleneck: two full pipeline instances
		// in one core over-subscribe the LSU even when they avoid sharing
		// a pipe.
		L1I: 1.0, L1D: 1.0, TLB: 1.2, LSU: 0.8, FPU: 1.0, CRY: 1.0,
		L2: 6.0, XBAR: 7.0, MEM: 3.5,
	}
	return m
}

// Validate reports whether the machine model is well formed.
func (m *Machine) Validate() error {
	if err := m.Topo.Validate(); err != nil {
		return err
	}
	for r, c := range m.Caps {
		if !(c > 0) {
			return fmt.Errorf("proc: capacity of %v must be positive, got %v", Resource(r), c)
		}
	}
	if !(m.ClockHz > 0) {
		return fmt.Errorf("proc: clock must be positive, got %v", m.ClockHz)
	}
	return nil
}

// Task is one schedulable entity: a thread of a software pipeline with its
// resource demand. Tasks with the same Group form one pipeline instance and
// process packets at a common steady-state rate (the slowest stage's rate).
type Task struct {
	Demand Demand
	Group  int
}

// Link is a producer→consumer memory queue between two tasks of the same
// pipeline. Volume scales the communication cost (1 = one packet handoff
// per processed packet).
type Link struct {
	A, B   int
	Volume float64
}

// Result is the solved steady-state behaviour of a workload under one
// assignment.
type Result struct {
	ServiceCycles []float64 // effective cycles/packet per task, contention included
	GroupRate     []float64 // packets/cycle per pipeline group
	TotalRate     float64   // Σ group rates, packets/cycle
	TotalPPS      float64   // TotalRate · ClockHz
	Slowdown      []float64 // per-task aggregate slowdown vs. un-contended base
	Iterations    int       // fixed-point iterations used
}

const (
	solverMaxIter = 200
	solverTol     = 1e-10
)

// Solve computes the steady-state throughput of the given tasks placed on
// contexts placement[i] (one distinct hardware context per task). It
// iterates the coupled system
//
//	util(resource instance) = Σ_{tasks sharing it} rate(task) · demand
//	slowdown(instance)      = max(1, util / capacity)
//	service(task)           = serial + Σ_r demand_r · slowdown(instance_r(task))
//	rate(group)             = min over the group's tasks of 1/service
//
// with damping until rates converge. The solution is deterministic and
// depends on the placement only through which resource instances tasks
// share — so symmetric assignments (same canonical form) get identical
// results.
func (m *Machine) Solve(tasks []Task, links []Link, placement []int) (Result, error) {
	if err := m.Validate(); err != nil {
		return Result{}, err
	}
	n := len(tasks)
	if n == 0 {
		return Result{}, fmt.Errorf("proc: no tasks")
	}
	if len(placement) != n {
		return Result{}, fmt.Errorf("proc: %d tasks but %d placements", n, len(placement))
	}
	v := m.Topo.Contexts()
	seen := make(map[int]bool, n)
	for i, c := range placement {
		if c < 0 || c >= v {
			return Result{}, fmt.Errorf("proc: task %d placed on invalid context %d", i, c)
		}
		if seen[c] {
			return Result{}, fmt.Errorf("proc: context %d assigned twice", c)
		}
		seen[c] = true
	}

	// Effective demands: task demand plus link communication, which depends
	// on the placement distance of the endpoints.
	eff := make([]Demand, n)
	for i, t := range tasks {
		eff[i] = t.Demand
	}
	for _, l := range links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return Result{}, fmt.Errorf("proc: link %v references unknown task", l)
		}
		var comm Demand
		if m.Topo.ShareLevel(placement[l.A], placement[l.B]) == t2.InterCore {
			comm.Res[L2] = m.RemoteCommL2 * l.Volume
			comm.Res[XBAR] = m.RemoteCommXBar * l.Volume
		} else {
			comm.Res[L1D] = m.LocalCommL1 * l.Volume
		}
		eff[l.A] = eff[l.A].Add(comm)
		eff[l.B] = eff[l.B].Add(comm)
	}

	// Group bookkeeping.
	maxGroup := 0
	for _, t := range tasks {
		if t.Group < 0 {
			return Result{}, fmt.Errorf("proc: negative group %d", t.Group)
		}
		if t.Group > maxGroup {
			maxGroup = t.Group
		}
	}
	numGroups := maxGroup + 1

	// Resource instance index per task and resource kind.
	instOf := func(task int, r Resource) int {
		ctx := placement[task]
		switch r.Level() {
		case t2.IntraPipe:
			return m.Topo.PipeOf(ctx)
		case t2.IntraCore:
			return m.Topo.CoreOf(ctx)
		default:
			return 0
		}
	}
	instances := [NumResources]int{}
	for r := 0; r < NumResources; r++ {
		switch Resource(r).Level() {
		case t2.IntraPipe:
			instances[r] = m.Topo.Pipes()
		case t2.IntraCore:
			instances[r] = m.Topo.Cores
		default:
			instances[r] = 1
		}
	}

	// Fixed point on group rates.
	service := make([]float64, n)
	rate := make([]float64, numGroups)
	for i, d := range eff {
		s := d.Base()
		if s <= 0 {
			return Result{}, fmt.Errorf("proc: task %d has non-positive base service time", i)
		}
		service[i] = s
	}
	groupOf := make([]int, n)
	for i, t := range tasks {
		groupOf[i] = t.Group
	}
	updateRates := func() {
		for g := range rate {
			rate[g] = 0
		}
		for i := range service {
			r := 1 / service[i]
			g := groupOf[i]
			if rate[g] == 0 || r < rate[g] {
				rate[g] = r
			}
		}
	}
	updateRates()

	util := make([][]float64, NumResources)
	for r := range util {
		util[r] = make([]float64, instances[r])
	}

	iterations := 0
	for iter := 0; iter < solverMaxIter; iter++ {
		iterations = iter + 1
		// Utilization per resource instance under current rates.
		for r := range util {
			for j := range util[r] {
				util[r][j] = 0
			}
		}
		for i := range eff {
			taskRate := rate[groupOf[i]]
			for r := 0; r < NumResources; r++ {
				if d := eff[i].Res[r]; d > 0 {
					util[r][instOf(i, Resource(r))] += taskRate * d
				}
			}
		}
		// Slowdowns and new service times.
		maxDelta := 0.0
		for i := range eff {
			s := eff[i].Serial
			for r := 0; r < NumResources; r++ {
				d := eff[i].Res[r]
				if d == 0 {
					continue
				}
				slow := 1.0
				if u := util[r][instOf(i, Resource(r))]; u > m.Caps[r] {
					slow = contentionCurve(Resource(r), u/m.Caps[r])
				}
				s += d * slow
			}
			// Damping keeps the utilization↔rate loop from oscillating.
			newS := 0.5*service[i] + 0.5*s
			if delta := abs(newS-service[i]) / service[i]; delta > maxDelta {
				maxDelta = delta
			}
			service[i] = newS
		}
		updateRates()
		if maxDelta < solverTol {
			break
		}
	}

	res := Result{
		ServiceCycles: service,
		GroupRate:     rate,
		Slowdown:      make([]float64, n),
		Iterations:    iterations,
	}
	for g := range rate {
		res.TotalRate += rate[g]
	}
	res.TotalPPS = res.TotalRate * m.ClockHz
	for i := range service {
		res.Slowdown[i] = service[i] / eff[i].Base()
	}
	return res, nil
}

// contentionCurve maps over-subscription (utilization / capacity > 1) to a
// per-access slowdown. Issue-slot resources degrade linearly — two strands
// demanding the same slot each get half of it. Cache-like resources degrade
// quadratically: over-subscription does not just share bandwidth, it evicts
// the other sharer's working set (thrashing). Queue-backed resources (LSU,
// crossbar, memory controllers) sit in between.
func contentionCurve(r Resource, over float64) float64 {
	switch r {
	case IFU, IEU, FPU, CRY:
		return over
	case L1I, L1D, TLB, L2:
		return over * over
	default: // LSU, XBAR, MEM
		return over * math.Sqrt(over)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
