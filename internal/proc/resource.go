// Package proc models the performance behaviour of a multithreaded
// processor with several levels of resource sharing — the simulated stand-in
// for the UltraSPARC T2 silicon of the paper's case study.
//
// Every task presents a demand vector: cycles per packet of occupancy on
// each shared hardware resource, plus a serial component that never
// contends (long-latency private units, think of the integer multiplier in
// the IPFwd-intmul variant). Given a task-to-context assignment the solver
// computes, by fixed-point iteration, the utilization-driven slowdown of
// every resource instance, the resulting effective service time of every
// task, and the steady-state throughput of every software pipeline. The
// three sharing levels of Fig. 8 map directly onto resource scopes:
//
//	IntraPipe:  IFU, IEU                  — one instance per hardware pipeline
//	IntraCore:  L1I, L1D, TLB, LSU, FPU, CRY — one instance per core
//	InterCore:  L2, XBAR, MEM             — one instance for the whole chip
package proc

import "optassign/internal/t2"

// Resource identifies one kind of shared hardware resource.
type Resource int

// The modeled resources, grouped by sharing level.
const (
	// IntraPipe resources.
	IFU Resource = iota // instruction fetch unit
	IEU                 // integer execution units
	// IntraCore resources.
	L1I // L1 instruction cache
	L1D // L1 data cache
	TLB // instruction+data TLBs
	LSU // load/store unit
	FPU // floating point and graphics unit
	CRY // cryptographic processing unit
	// InterCore resources.
	L2   // shared L2 cache
	XBAR // on-chip crossbar
	MEM  // memory controllers

	NumResources int = iota
)

var resourceNames = [...]string{
	IFU: "IFU", IEU: "IEU", L1I: "L1I", L1D: "L1D", TLB: "TLB",
	LSU: "LSU", FPU: "FPU", CRY: "CRY", L2: "L2", XBAR: "XBAR", MEM: "MEM",
}

// String implements fmt.Stringer.
func (r Resource) String() string {
	if int(r) >= 0 && int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return "Resource(?)"
}

// Level returns the sharing level at which the resource is instantiated.
func (r Resource) Level() t2.SharingLevel {
	switch r {
	case IFU, IEU:
		return t2.IntraPipe
	case L1I, L1D, TLB, LSU, FPU, CRY:
		return t2.IntraCore
	default:
		return t2.InterCore
	}
}

// Demand is the per-packet resource footprint of one task: Serial cycles
// that never contend plus occupancy cycles on each shared resource. The
// un-contended per-packet service time is Serial + ΣRes.
type Demand struct {
	Serial float64
	Res    [NumResources]float64
}

// Base returns the un-contended cycles per packet.
func (d Demand) Base() float64 {
	s := d.Serial
	for _, v := range d.Res {
		s += v
	}
	return s
}

// Add returns the component-wise sum of two demands.
func (d Demand) Add(o Demand) Demand {
	out := d
	out.Serial += o.Serial
	for i := range out.Res {
		out.Res[i] += o.Res[i]
	}
	return out
}

// Scale returns the demand multiplied by f.
func (d Demand) Scale(f float64) Demand {
	out := d
	out.Serial *= f
	for i := range out.Res {
		out.Res[i] *= f
	}
	return out
}
