package proc

import (
	"strings"
	"testing"
)

func TestSolveProfileBasics(t *testing.T) {
	m := UltraSPARCT2Machine()
	d := computeDemand() // IEU-heavy
	tasks := []Task{{Demand: d, Group: 0}, {Demand: d, Group: 1}}
	// Same pipe: the pipe's IEU must be the hottest resource and saturated.
	prof, err := m.SolveProfile(tasks, nil, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Uses) == 0 {
		t.Fatal("no resource uses reported")
	}
	hot := prof.Hottest(1)[0]
	if hot.Resource != IEU || hot.Instance != 0 {
		t.Errorf("hottest = %+v, want IEU[0]", hot)
	}
	if !hot.Saturated() {
		t.Errorf("IEU should be saturated: %+v", hot)
	}
	if prof.SaturatedCount() < 1 {
		t.Error("saturated count")
	}
	// Utilization equals the analytic expectation: both tasks run at rate
	// 1/service; IEU util = Σ rate·demand.
	wantUtil := prof.Result.GroupRate[0]*d.Res[IEU] + prof.Result.GroupRate[1]*d.Res[IEU]
	if diff := hot.Util - wantUtil; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("IEU util = %v, want %v", hot.Util, wantUtil)
	}
}

func TestSolveProfileSeparatedNotSaturated(t *testing.T) {
	m := UltraSPARCT2Machine()
	d := computeDemand()
	tasks := []Task{{Demand: d, Group: 0}, {Demand: d, Group: 1}}
	prof, err := m.SolveProfile(tasks, nil, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	if prof.SaturatedCount() != 0 {
		t.Errorf("separated tasks should not saturate anything: %+v", prof.Hottest(3))
	}
}

func TestSolveProfileIncludesCommunication(t *testing.T) {
	m := UltraSPARCT2Machine()
	var light Demand
	light.Serial = 400
	tasks := []Task{{Demand: light, Group: 0}, {Demand: light, Group: 0}}
	links := []Link{{A: 0, B: 1, Volume: 1}}
	// Cross-core: communication shows up as L2/XBAR utilization even
	// though the tasks themselves demand nothing shared.
	prof, err := m.SolveProfile(tasks, links, []int{0, 8})
	if err != nil {
		t.Fatal(err)
	}
	var sawL2 bool
	for _, u := range prof.Uses {
		if u.Resource == L2 && u.Util > 0 {
			sawL2 = true
		}
	}
	if !sawL2 {
		t.Error("cross-core link produced no L2 utilization")
	}
	// Same core: L1D instead.
	prof, err = m.SolveProfile(tasks, links, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	var sawL1 bool
	for _, u := range prof.Uses {
		if u.Resource == L1D && u.Util > 0 {
			sawL1 = true
		}
		if u.Resource == L2 && u.Util > 0 {
			t.Error("same-core link should not touch L2")
		}
	}
	if !sawL1 {
		t.Error("same-core link produced no L1D utilization")
	}
}

func TestProfileDump(t *testing.T) {
	m := UltraSPARCT2Machine()
	d := computeDemand()
	prof, err := m.SolveProfile([]Task{{Demand: d, Group: 0}}, nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	prof.Dump(&b, 5)
	out := b.String()
	if !strings.Contains(out, "total rate") || !strings.Contains(out, "IEU") {
		t.Errorf("dump output:\n%s", out)
	}
	// Hottest with n larger than available is clamped.
	if len(prof.Hottest(1000)) != len(prof.Uses) {
		t.Error("Hottest clamp")
	}
}

func TestSolveProfileErrorPropagation(t *testing.T) {
	m := UltraSPARCT2Machine()
	if _, err := m.SolveProfile(nil, nil, nil); err == nil {
		t.Error("no-task error not propagated")
	}
}
