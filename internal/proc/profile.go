package proc

import (
	"fmt"
	"io"
	"sort"

	"optassign/internal/t2"
)

// ResourceUse is the utilization of one resource instance at the solved
// steady state, in work units per cycle against its capacity.
type ResourceUse struct {
	Resource Resource
	Instance int // pipe index, core index, or 0 for chip-wide resources
	Util     float64
	Cap      float64
}

// Saturated reports whether the instance is over-subscribed.
func (u ResourceUse) Saturated() bool { return u.Util > u.Cap }

// Profile is the hardware-counter view of one solved assignment: what every
// shared resource instance sees, and which ones throttle the workload. It
// plays the role of the performance-counter data that profile-based
// schedulers (SOS and friends, §6 of the paper) consume.
type Profile struct {
	Result Result
	Uses   []ResourceUse // sorted by Util/Cap descending
}

// Hottest returns the most over-subscribed resource uses, at most n.
func (p *Profile) Hottest(n int) []ResourceUse {
	if n > len(p.Uses) {
		n = len(p.Uses)
	}
	return p.Uses[:n]
}

// SaturatedCount returns how many resource instances are over capacity.
func (p *Profile) SaturatedCount() int {
	n := 0
	for _, u := range p.Uses {
		if u.Saturated() {
			n++
		}
	}
	return n
}

// Dump writes a human-readable counter report.
func (p *Profile) Dump(w io.Writer, top int) {
	fmt.Fprintf(w, "total rate: %.6g PPS; %d saturated resource instances\n",
		p.Result.TotalPPS, p.SaturatedCount())
	for _, u := range p.Hottest(top) {
		mark := ""
		if u.Saturated() {
			mark = "  << saturated"
		}
		fmt.Fprintf(w, "  %-4v[%2d]  util %.3f / cap %.3f%s\n", u.Resource, u.Instance, u.Util, u.Cap, mark)
	}
}

// SolveProfile runs Solve and additionally reports the per-instance
// utilization of every shared resource at the solved operating point — the
// simulated equivalent of reading hardware performance counters after a
// measurement run.
func (m *Machine) SolveProfile(tasks []Task, links []Link, placement []int) (*Profile, error) {
	res, err := m.Solve(tasks, links, placement)
	if err != nil {
		return nil, err
	}

	// Recompute effective demands exactly as Solve does (communication
	// placement included) and accumulate utilization at the final rates.
	eff := make([]Demand, len(tasks))
	for i, t := range tasks {
		eff[i] = t.Demand
	}
	for _, l := range links {
		var comm Demand
		if m.Topo.ShareLevel(placement[l.A], placement[l.B]) == t2.InterCore {
			comm.Res[L2] = m.RemoteCommL2 * l.Volume
			comm.Res[XBAR] = m.RemoteCommXBar * l.Volume
		} else {
			comm.Res[L1D] = m.LocalCommL1 * l.Volume
		}
		eff[l.A] = eff[l.A].Add(comm)
		eff[l.B] = eff[l.B].Add(comm)
	}

	util := make(map[[2]int]float64)
	for i := range tasks {
		rate := res.GroupRate[tasks[i].Group]
		ctx := placement[i]
		for r := 0; r < NumResources; r++ {
			d := eff[i].Res[r]
			if d == 0 {
				continue
			}
			var inst int
			switch Resource(r).Level() {
			case t2.IntraPipe:
				inst = m.Topo.PipeOf(ctx)
			case t2.IntraCore:
				inst = m.Topo.CoreOf(ctx)
			default:
				inst = 0
			}
			util[[2]int{r, inst}] += rate * d
		}
	}

	prof := &Profile{Result: res}
	for key, u := range util {
		prof.Uses = append(prof.Uses, ResourceUse{
			Resource: Resource(key[0]),
			Instance: key[1],
			Util:     u,
			Cap:      m.Caps[key[0]],
		})
	}
	sort.Slice(prof.Uses, func(i, j int) bool {
		a, b := prof.Uses[i], prof.Uses[j]
		ra, rb := a.Util/a.Cap, b.Util/b.Cap
		if ra != rb {
			return ra > rb
		}
		if a.Resource != b.Resource {
			return a.Resource < b.Resource
		}
		return a.Instance < b.Instance
	})
	return prof, nil
}
