// Package table is an append-only, indexed, queryable table store — the
// result side of campaign-as-a-service. A finished campaign's journal is
// the raw evidence (every draw, byte-exact, replayable); the table holds
// the distilled row a user actually asks about — benchmark, testbed,
// samples, best, ÛPB, gap, satisfied — so "all campaigns on testbed X
// where gap < 2%" answers from an index over thousands of campaigns
// without opening a single journal file.
//
// Layout: a directory holding schema.json (the typed schema, written once
// at create) and rows.tab (JSON-lines, one array of column values per
// line, append-only). Durability follows the journal's discipline: rows
// buffer in memory until Commit, which appends them in one write and
// fsyncs; a crash mid-append leaves a torn final line that Open truncates
// away under the table's exclusive flock. Committed rows are immutable
// and never rewritten — the store only grows, so yesterday's query
// results stay reproducible.
//
// Concurrency: one process owns a table at a time (the open handle holds
// an exclusive flock on rows.tab; a second opener gets ErrTableBusy), and
// the handle is safe for concurrent use within that process. Equality
// lookups on columns declared Indexed are served by in-memory hash
// indexes rebuilt at Open; everything else is a predicate scan over the
// in-memory rows.
package table

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"optassign/internal/cas"
)

// FormatVersion identifies the on-disk layout.
const FormatVersion = 1

const (
	schemaName = "schema.json"
	rowsName   = "rows.tab"
)

// Type is a column's value type.
type Type uint8

const (
	String Type = iota
	Int
	Float
	Bool
)

var typeNames = [...]string{"string", "int", "float", "bool"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// MarshalJSON encodes the type by name so schema.json is self-describing.
func (t Type) MarshalJSON() ([]byte, error) {
	if int(t) >= len(typeNames) {
		return nil, fmt.Errorf("table: unknown column type %d", uint8(t))
	}
	return json.Marshal(typeNames[t])
}

// UnmarshalJSON decodes a type name.
func (t *Type) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range typeNames {
		if n == s {
			*t = Type(i)
			return nil
		}
	}
	return fmt.Errorf("table: unknown column type %q", s)
}

// Column is one typed column. Indexed columns get an in-memory hash
// index over their values at Open, serving equality predicates without a
// scan.
type Column struct {
	Name    string `json:"name"`
	Type    Type   `json:"type"`
	Indexed bool   `json:"indexed,omitempty"`
}

// Schema is a table's ordered column set.
type Schema struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
}

// Validate checks the schema is usable: a name, at least one column, no
// duplicate or empty column names.
func (s Schema) Validate() error {
	if s.Name == "" {
		return errors.New("table: schema has no name")
	}
	if len(s.Columns) == 0 {
		return errors.New("table: schema has no columns")
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return errors.New("table: column with empty name")
		}
		if seen[c.Name] {
			return fmt.Errorf("table: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
		if int(c.Type) >= len(typeNames) {
			return fmt.Errorf("table: column %q has unknown type %d", c.Name, uint8(c.Type))
		}
	}
	return nil
}

// Col returns the position and definition of the named column.
func (s Schema) Col(name string) (int, Column, bool) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, c, true
		}
	}
	return -1, Column{}, false
}

// equal reports structural schema identity — Open refuses a directory
// whose persisted schema differs from the one the caller expects.
func (s Schema) equal(o Schema) bool {
	if s.Name != o.Name || len(s.Columns) != len(o.Columns) {
		return false
	}
	for i := range s.Columns {
		if s.Columns[i] != o.Columns[i] {
			return false
		}
	}
	return true
}

// Row is one record: values in schema column order, normalized to
// string / int64 / float64 / bool.
type Row []any

// Typed errors for the conditions callers branch on.
var (
	// ErrTableExists reports a Create against a directory that already
	// holds a table.
	ErrTableExists = errors.New("table: table already exists")
	// ErrTableMissing reports an Open against a directory with no table.
	ErrTableMissing = errors.New("table: no table in directory")
	// ErrTableBusy reports that another process holds the table's
	// exclusive lock.
	ErrTableBusy = errors.New("table: table is in use by another process")
	// ErrSchemaMismatch reports an Open whose expected schema differs
	// from the persisted one.
	ErrSchemaMismatch = errors.New("table: schema does not match the stored table")
)

// Table is an open table store. Safe for concurrent use; exactly one
// process may hold it open.
type Table struct {
	mu      sync.Mutex
	dir     string
	schema  Schema
	f       *os.File // rows.tab, holds the exclusive flock
	rows    []Row
	buf     []Row
	bufSize int
	index   map[string]map[string][]int // column -> encoded value -> row ids
}

// persistedSchema wraps the schema with a format version on disk.
type persistedSchema struct {
	Format int    `json:"format"`
	Schema Schema `json:"schema"`
}

// Create initializes a new table in dir (creating the directory if
// needed) and returns the open handle. A directory that already holds a
// table fails with ErrTableExists.
func Create(dir string, s Schema, bufSize int) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	sp := filepath.Join(dir, schemaName)
	if _, err := os.Stat(sp); err == nil {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, dir)
	}
	data, err := json.MarshalIndent(persistedSchema{Format: FormatVersion, Schema: s}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("table: encoding schema: %w", err)
	}
	f, err := lockRows(dir)
	if err != nil {
		return nil, err
	}
	// Schema lands after the lock: two racing Creates serialize on the
	// rows file, and the loser sees the winner's schema.
	if err := os.WriteFile(sp, append(data, '\n'), 0o644); err != nil {
		f.Close()
		return nil, fmt.Errorf("table: writing schema: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("table: syncing directory: %w", err)
	}
	return &Table{dir: dir, schema: s, f: f, bufSize: normBuf(bufSize), index: buildIndex(s, nil)}, nil
}

// Open opens an existing table, verifying the persisted schema against
// want (pass a zero Schema to accept whatever is stored). The rows file
// is scanned to rebuild the in-memory rows and indexes; a torn final
// line left by a crashed writer is truncated away.
func Open(dir string, want Schema, bufSize int) (*Table, error) {
	data, err := os.ReadFile(filepath.Join(dir, schemaName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrTableMissing, dir)
	}
	if err != nil {
		return nil, fmt.Errorf("table: reading schema: %w", err)
	}
	var ps persistedSchema
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, fmt.Errorf("table: decoding schema: %w", err)
	}
	if ps.Format != FormatVersion {
		return nil, fmt.Errorf("table: unsupported format %d", ps.Format)
	}
	if err := ps.Schema.Validate(); err != nil {
		return nil, err
	}
	if want.Name != "" && !ps.Schema.equal(want) {
		return nil, fmt.Errorf("%w: %s", ErrSchemaMismatch, dir)
	}
	f, err := lockRows(dir)
	if err != nil {
		return nil, err
	}
	t := &Table{dir: dir, schema: ps.Schema, f: f, bufSize: normBuf(bufSize)}
	valid, err := t.scan()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Whatever follows the last complete line is a torn append from a
	// crashed writer; cut it under our exclusive lock so the next commit
	// extends a clean log.
	if fi, err := f.Stat(); err == nil && fi.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("table: truncating torn tail: %w", err)
		}
	}
	t.index = buildIndex(t.schema, t.rows)
	return t, nil
}

// OpenOrCreate opens dir's table (verifying its schema) or creates it if
// the directory holds none.
func OpenOrCreate(dir string, s Schema, bufSize int) (*Table, error) {
	t, err := Open(dir, s, bufSize)
	if errors.Is(err, ErrTableMissing) {
		return Create(dir, s, bufSize)
	}
	return t, err
}

// lockRows opens the rows file and takes the table's exclusive lock.
func lockRows(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, rowsName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	if err := cas.TryLockEx(f); err != nil {
		f.Close()
		if errors.Is(err, cas.ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrTableBusy, dir)
		}
		return nil, fmt.Errorf("table: locking %s: %w", dir, err)
	}
	return f, nil
}

func normBuf(n int) int {
	if n <= 0 {
		return 64
	}
	return n
}

// scan stream-parses the rows file, returning the byte length of the
// well-formed prefix. A torn final line is tolerated (the caller
// truncates it); corruption anywhere else is an error.
func (t *Table) scan() (int64, error) {
	br := bufio.NewReaderSize(t.f, 64*1024)
	var valid int64
	var spill []byte
	line := 0
	for {
		chunk, err := br.ReadSlice('\n')
		if errors.Is(err, bufio.ErrBufferFull) {
			spill = append(spill, chunk...)
			continue
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return 0, fmt.Errorf("table: reading rows: %w", err)
		}
		raw := chunk
		if len(spill) > 0 {
			spill = append(spill, chunk...)
			raw = spill
		}
		if err != nil {
			return valid, nil // clean EOF, or a torn tail the caller cuts
		}
		line++
		row, perr := t.parseRow(raw[:len(raw)-1])
		if perr != nil {
			return 0, fmt.Errorf("table: row %d: %w", line, perr)
		}
		t.rows = append(t.rows, row)
		valid += int64(len(raw))
		spill = spill[:0]
	}
}

// parseRow decodes one JSON-array line into a normalized Row.
func (t *Table) parseRow(line []byte) (Row, error) {
	var vals []json.RawMessage
	if err := json.Unmarshal(line, &vals); err != nil {
		return nil, err
	}
	if len(vals) != len(t.schema.Columns) {
		return nil, fmt.Errorf("has %d values, schema has %d columns", len(vals), len(t.schema.Columns))
	}
	row := make(Row, len(vals))
	for i, c := range t.schema.Columns {
		switch c.Type {
		case String:
			var s string
			if err := json.Unmarshal(vals[i], &s); err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			row[i] = s
		case Int:
			var n json.Number
			if err := json.Unmarshal(vals[i], &n); err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			v, err := strconv.ParseInt(n.String(), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			row[i] = v
		case Float:
			var v float64
			if err := json.Unmarshal(vals[i], &v); err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			row[i] = v
		case Bool:
			var v bool
			if err := json.Unmarshal(vals[i], &v); err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			row[i] = v
		}
	}
	return row, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Dir returns the table's directory.
func (t *Table) Dir() string { return t.dir }

// Len reports the committed row count. Buffered rows are invisible until
// Commit.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.rows)
}

// Pending reports the buffered, not-yet-committed row count.
func (t *Table) Pending() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Insert buffers one row, validating arity and types. Go ints are
// accepted for Int and Float columns; a non-finite float is rejected up
// front (JSON cannot represent it, and a half-committed buffer is worse
// than a refused insert). When the buffer reaches the commit size the
// batch is committed automatically.
func (t *Table) Insert(vals ...any) error {
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("table: insert has %d values, schema has %d columns", len(vals), len(t.schema.Columns))
	}
	row := make(Row, len(vals))
	for i, c := range t.schema.Columns {
		v, err := normalize(c, vals[i])
		if err != nil {
			return err
		}
		row[i] = v
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, row)
	if len(t.buf) >= t.bufSize {
		return t.commitLocked()
	}
	return nil
}

// normalize coerces v to the column's storage type.
func normalize(c Column, v any) (any, error) {
	switch c.Type {
	case String:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case Int:
		switch n := v.(type) {
		case int:
			return int64(n), nil
		case int64:
			return n, nil
		}
	case Float:
		switch n := v.(type) {
		case float64:
			if math.IsNaN(n) || math.IsInf(n, 0) {
				return nil, fmt.Errorf("table: column %q: non-finite value %v", c.Name, n)
			}
			return n, nil
		case int:
			return float64(n), nil
		case int64:
			return float64(n), nil
		}
	case Bool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("table: column %q (%s) cannot hold %T", c.Name, c.Type, v)
}

// Commit appends every buffered row to the rows file in one write,
// fsyncs, and makes them visible to queries. An error leaves the buffer
// intact for a retry — nothing half-committed becomes visible.
func (t *Table) Commit() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.commitLocked()
}

func (t *Table) commitLocked() error {
	if len(t.buf) == 0 {
		return nil
	}
	var out []byte
	for _, row := range t.buf {
		line, err := json.Marshal([]any(row))
		if err != nil {
			return fmt.Errorf("table: encoding row: %w", err)
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	if _, err := t.f.Write(out); err != nil {
		return fmt.Errorf("table: appending rows: %w", err)
	}
	if err := t.f.Sync(); err != nil {
		return fmt.Errorf("table: syncing rows: %w", err)
	}
	for _, row := range t.buf {
		id := len(t.rows)
		t.rows = append(t.rows, row)
		t.indexRow(id, row)
	}
	t.buf = t.buf[:0]
	return nil
}

// Get returns the committed row with the given id (its position in
// commit order), or nil when out of range. The returned slice is shared
// — callers must not mutate it.
func (t *Table) Get(id int) Row {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.rows) {
		return nil
	}
	return t.rows[id]
}

// Scan visits every committed row in commit order until visit returns
// false. Rows are shared — visit must not mutate or retain them past the
// call.
func (t *Table) Scan(visit func(id int, r Row) bool) {
	t.mu.Lock()
	rows := t.rows
	t.mu.Unlock()
	for i, r := range rows {
		if !visit(i, r) {
			return
		}
	}
}

// buildIndex constructs the hash indexes for every Indexed column.
func buildIndex(s Schema, rows []Row) map[string]map[string][]int {
	idx := make(map[string]map[string][]int)
	for _, c := range s.Columns {
		if c.Indexed {
			idx[c.Name] = make(map[string][]int)
		}
	}
	t := &Table{schema: s, index: idx}
	for i, r := range rows {
		t.indexRow(i, r)
	}
	return idx
}

// indexRow adds one committed row to the indexes. Caller holds t.mu (or
// exclusive construction).
func (t *Table) indexRow(id int, r Row) {
	for i, c := range t.schema.Columns {
		if m := t.index[c.Name]; m != nil {
			k := encodeKey(r[i])
			m[k] = append(m[k], id)
		}
	}
}

// encodeKey renders a normalized value as its canonical index key.
func encodeKey(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	}
	return fmt.Sprint(v)
}

// Lookup returns the ids of committed rows whose indexed column equals
// val (normalized like Insert). It errors on unknown or unindexed
// columns — the caller asked for an index the schema does not provide.
func (t *Table) Lookup(col string, val any) ([]int, error) {
	_, c, ok := t.schema.Col(col)
	if !ok {
		return nil, fmt.Errorf("table: no column %q", col)
	}
	if !c.Indexed {
		return nil, fmt.Errorf("table: column %q is not indexed", col)
	}
	v, err := normalize(c, val)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := t.index[col][encodeKey(v)]
	return append([]int(nil), ids...), nil
}

// Close commits any buffered rows and releases the table's lock.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.f == nil {
		return nil
	}
	cerr := t.commitLocked()
	ferr := t.f.Close()
	t.f = nil
	if cerr != nil {
		return cerr
	}
	if ferr != nil {
		return fmt.Errorf("table: %w", ferr)
	}
	return nil
}

// syncDir fsyncs a directory, making a just-created entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
