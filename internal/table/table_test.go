package table

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testSchema is the shape of the campaigns table in miniature.
func testSchema() Schema {
	return Schema{
		Name: "campaigns",
		Columns: []Column{
			{Name: "id", Type: String, Indexed: true},
			{Name: "benchmark", Type: String, Indexed: true},
			{Name: "samples", Type: Int},
			{Name: "upb", Type: Float},
			{Name: "satisfied", Type: Bool, Indexed: true},
		},
	}
}

func TestCreateInsertReopen(t *testing.T) {
	dir := t.TempDir()
	tb, err := Create(dir, testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert("c1", "IPFwd", 120, 1.25, true); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert("c2", "Hash", 200, 2.5, false); err != nil {
		t.Fatal(err)
	}
	if err := tb.Close(); err != nil { // Close commits the buffer
		t.Fatal(err)
	}

	tb2, err := Open(dir, testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tb2.Close()
	if tb2.Len() != 2 {
		t.Fatalf("reopened table has %d rows, want 2", tb2.Len())
	}
	r := tb2.Get(0)
	if r[0] != "c1" || r[1] != "IPFwd" || r[2] != int64(120) || r[3] != 1.25 || r[4] != true {
		t.Fatalf("row 0 round-trip = %v", r)
	}
	ids, err := tb2.Lookup("benchmark", "Hash")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Lookup(benchmark, Hash) = %v, want [1]", ids)
	}
}

// TestBufferedCommit pins the csvdb discipline: inserted rows are
// invisible — in memory and on disk — until Commit, and Commit lands the
// whole batch in one append.
func TestBufferedCommit(t *testing.T) {
	dir := t.TempDir()
	tb, err := Create(dir, testSchema(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	for i := 0; i < 3; i++ {
		if err := tb.Insert("c", "b", i, 0.5, false); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 0 || tb.Pending() != 3 {
		t.Fatalf("before commit: len=%d pending=%d, want 0/3", tb.Len(), tb.Pending())
	}
	if data, err := os.ReadFile(filepath.Join(dir, rowsName)); err != nil || len(data) != 0 {
		t.Fatalf("rows file before commit: %d bytes, err=%v", len(data), err)
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 3 || tb.Pending() != 0 {
		t.Fatalf("after commit: len=%d pending=%d, want 3/0", tb.Len(), tb.Pending())
	}
	data, err := os.ReadFile(filepath.Join(dir, rowsName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 3 {
		t.Fatalf("rows file has %d lines, want 3", n)
	}
}

// TestAutoCommitAtBufferSize: the buffer flushes itself when it fills.
func TestAutoCommitAtBufferSize(t *testing.T) {
	tb, err := Create(t.TempDir(), testSchema(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tb.Insert("a", "b", 1, 1.0, true)
	if tb.Len() != 0 {
		t.Fatalf("len after 1 insert = %d, want 0", tb.Len())
	}
	tb.Insert("c", "d", 2, 2.0, false)
	if tb.Len() != 2 || tb.Pending() != 0 {
		t.Fatalf("len=%d pending=%d after hitting bufSize, want 2/0", tb.Len(), tb.Pending())
	}
}

// TestOpenTruncatesTornTail: a crash mid-append leaves a partial final
// line; Open must drop exactly that line and keep every complete row.
func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	tb, err := Create(dir, testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.Insert("c1", "IPFwd", 1, 1.0, true)
	tb.Insert("c2", "Hash", 2, 2.0, false)
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, rowsName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`["c3","torn",3`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	tb2, err := Open(dir, Schema{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != 2 {
		t.Fatalf("table with torn tail opened with %d rows, want 2", tb2.Len())
	}
	if err := tb2.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(clean) {
		t.Fatalf("torn tail not truncated back to the clean prefix:\n%q\nwant\n%q", after, clean)
	}
}

func TestOpenRejectsCorruptMidFile(t *testing.T) {
	dir := t.TempDir()
	tb, err := Create(dir, testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.Insert("c1", "b", 1, 1.0, true)
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, rowsName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A complete but malformed line, followed by a valid one: corruption
	// that is NOT a torn tail must refuse to open.
	f.WriteString("{not json}\n")
	f.WriteString("[\"c2\",\"b\",2,2.0,false]\n")
	f.Close()
	if _, err := Open(dir, Schema{}, 0); err == nil {
		t.Fatal("Open accepted a corrupt mid-file line")
	}
}

func TestExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	tb, err := Create(dir, testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Schema{}, 0); !errors.Is(err, ErrTableBusy) {
		t.Fatalf("second open: err = %v, want ErrTableBusy", err)
	}
	if err := tb.Close(); err != nil {
		t.Fatal(err)
	}
	tb2, err := Open(dir, Schema{}, 0)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	tb2.Close()
}

func TestSchemaMismatchAndMissing(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, testSchema(), 0); !errors.Is(err, ErrTableMissing) {
		t.Fatalf("open of empty dir: err = %v, want ErrTableMissing", err)
	}
	tb, err := Create(dir, testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.Close()
	if _, err := Create(dir, testSchema(), 0); !errors.Is(err, ErrTableExists) {
		t.Fatalf("second create: err = %v, want ErrTableExists", err)
	}
	other := testSchema()
	other.Columns[2].Type = Float
	if _, err := Open(dir, other, 0); !errors.Is(err, ErrSchemaMismatch) {
		t.Fatalf("open with wrong schema: err = %v, want ErrSchemaMismatch", err)
	}
	// OpenOrCreate with the right schema reopens; with none existing it creates.
	tb2, err := OpenOrCreate(dir, testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tb2.Close()
}

func TestInsertTypeChecking(t *testing.T) {
	tb, err := Create(t.TempDir(), testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if err := tb.Insert("c", "b", "not-an-int", 1.0, true); err == nil {
		t.Fatal("string into int column accepted")
	}
	if err := tb.Insert("c", "b", 1, 1.0); err == nil {
		t.Fatal("short row accepted")
	}
	nan := 0.0
	nan = nan / nan
	if err := tb.Insert("c", "b", 1, nan, true); err == nil {
		t.Fatal("NaN accepted")
	}
	// Go ints coerce into both Int and Float columns.
	if err := tb.Insert("c", "b", 7, 3, true); err != nil {
		t.Fatalf("int literals refused: %v", err)
	}
}

func TestLookupErrors(t *testing.T) {
	tb, err := Create(t.TempDir(), testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	if _, err := tb.Lookup("nope", "x"); err == nil {
		t.Fatal("lookup on unknown column succeeded")
	}
	if _, err := tb.Lookup("samples", 1); err == nil {
		t.Fatal("lookup on unindexed column succeeded")
	}
}
