package table

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func queryTable(t *testing.T) *Table {
	t.Helper()
	tb, err := Create(t.TempDir(), testSchema(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.Close() })
	rows := []struct {
		id, bench string
		samples   int
		upb       float64
		sat       bool
	}{
		{"c0", "IPFwd", 100, 1.0, true},
		{"c1", "IPFwd", 200, 2.5, false},
		{"c2", "Hash", 150, 0.5, true},
		{"c3", "Hash", 300, 3.5, true},
		{"c4", "Stats", 120, 2.0, false},
	}
	for _, r := range rows {
		if err := tb.Insert(r.id, r.bench, r.samples, r.upb, r.sat); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestParseFilterAndSelect(t *testing.T) {
	tb := queryTable(t)
	s := tb.Schema()
	cases := []struct {
		expr string
		want []int
	}{
		{"", []int{0, 1, 2, 3, 4}},
		{"benchmark=IPFwd", []int{0, 1}},
		{"benchmark=IPFwd,satisfied=true", []int{0}},
		{"samples>=150", []int{1, 2, 3}},
		{"samples>120,samples<=200", []int{1, 2}},
		{"upb<2", []int{0, 2}},
		{"satisfied=true,upb>0.9", []int{0, 3}},
		{"benchmark!=Hash", []int{0, 1, 4}},
		{"id~c", []int{0, 1, 2, 3, 4}},
		{"benchmark~Fwd", []int{0, 1}},
		{"benchmark=Nope", nil},
		{" benchmark = Hash , samples > 200 ", []int{3}}, // whitespace tolerated
	}
	for _, c := range cases {
		f, err := ParseFilter(c.expr, s)
		if err != nil {
			t.Fatalf("ParseFilter(%q): %v", c.expr, err)
		}
		got := tb.Select(f)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Select(%q) = %v, want %v", c.expr, got, c.want)
		}
		if n := tb.Count(f); n != len(c.want) {
			t.Errorf("Count(%q) = %d, want %d", c.expr, n, len(c.want))
		}
	}
}

// TestIndexScanEquivalence: every filter must answer identically through
// the index-driven path and a forced full scan.
func TestIndexScanEquivalence(t *testing.T) {
	tb := queryTable(t)
	s := tb.Schema()
	for _, expr := range []string{
		"benchmark=Hash", "benchmark=Hash,samples>100", "satisfied=false",
		"id=c2", "benchmark=IPFwd,satisfied=false",
	} {
		f, err := ParseFilter(expr, s)
		if err != nil {
			t.Fatal(err)
		}
		indexed := tb.Select(f)
		var scanned []int
		tb.Scan(func(id int, r Row) bool {
			if f.Match(r) {
				scanned = append(scanned, id)
			}
			return true
		})
		if !reflect.DeepEqual(indexed, scanned) {
			t.Errorf("Select(%q): indexed %v != scanned %v", expr, indexed, scanned)
		}
	}
}

func TestParseFilterErrors(t *testing.T) {
	s := testSchema()
	for _, expr := range []string{
		"benchmark",       // no operator
		"nope=x",          // unknown column
		"samples=abc",     // non-integer literal
		"upb=high",        // non-numeric literal
		"satisfied=maybe", // non-bool literal
		"satisfied<true",  // ordering on bool
		"samples~12",      // substring on non-string
		"=IPFwd",          // empty column name
	} {
		f, err := ParseFilter(expr, s)
		if err == nil {
			t.Errorf("ParseFilter(%q) accepted: %+v", expr, f)
			continue
		}
		if !errors.Is(err, ErrBadFilter) {
			t.Errorf("ParseFilter(%q): err %v does not wrap ErrBadFilter", expr, err)
		}
	}
}

// TestTwoCharOperators pins that "<=" and ">=" never parse as "<"/">"
// with a stray "=" glued to the literal.
func TestTwoCharOperators(t *testing.T) {
	s := testSchema()
	f, err := ParseFilter("samples<=150,upb>=2.0,samples!=100", s)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{OpLe, OpGe, OpNe}
	for i, c := range f.Conds {
		if c.Op != want[i] {
			t.Errorf("cond %d parsed as %s, want %s", i, c.Op, want[i])
		}
	}
}

// TestSelectScalesViaIndex: with many rows, an indexed equality filter
// must only evaluate the candidate set, not every row. We can't observe
// row visits directly, so pin the semantics at a size where a wrong index
// would be visible: duplicate keys, interleaved, all found in commit
// order.
func TestSelectScalesViaIndex(t *testing.T) {
	tb, err := Create(t.TempDir(), testSchema(), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	var want []int
	for i := 0; i < 1000; i++ {
		bench := fmt.Sprintf("b%d", i%10)
		if err := tb.Insert(fmt.Sprintf("c%d", i), bench, i, float64(i), i%2 == 0); err != nil {
			t.Fatal(err)
		}
		if bench == "b7" {
			want = append(want, i)
		}
	}
	if err := tb.Commit(); err != nil {
		t.Fatal(err)
	}
	f, err := ParseFilter("benchmark=b7", tb.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Select(f); !reflect.DeepEqual(got, want) {
		t.Fatalf("indexed select over 1000 rows: got %d ids, want %d", len(got), len(want))
	}
}
