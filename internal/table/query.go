package table

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Op is a predicate operator.
type Op uint8

const (
	OpEq  Op = iota // =
	OpNe            // !=
	OpLt            // <
	OpLe            // <=
	OpGt            // >
	OpGe            // >=
	OpHas           // ~  (substring, string columns only)
)

var opNames = [...]string{"=", "!=", "<", "<=", ">", ">=", "~"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cond is one typed condition: column OP literal.
type Cond struct {
	Col string
	Op  Op
	// Val is the literal, normalized to the column's storage type.
	Val any

	col int  // column position
	typ Type // column type
}

// Filter is a conjunction of conditions; the zero Filter matches
// everything.
type Filter struct {
	Conds []Cond
}

// ErrBadFilter wraps every filter-parse failure so HTTP handlers can map
// the whole family to a 400.
var ErrBadFilter = errors.New("table: bad filter")

// ParseFilter parses a comma-separated conjunction of conditions against
// a schema, e.g.
//
//	benchmark=IPFwd-L1,gap_pct<2,testbed~local,satisfied=true
//
// Operators: = != < <= > >= and ~ (substring, string columns only).
// Literals are typed by the column: int and float columns parse numbers,
// bool columns parse true/false, string columns take the literal text
// verbatim (commas cannot appear in a literal). An empty expression is
// the match-everything filter.
func ParseFilter(expr string, s Schema) (Filter, error) {
	var f Filter
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return f, nil
	}
	for _, term := range strings.Split(expr, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		c, err := parseCond(term, s)
		if err != nil {
			return Filter{}, err
		}
		f.Conds = append(f.Conds, c)
	}
	return f, nil
}

// parseCond splits one term at its operator. Two-character operators are
// tried first so "<=" does not parse as "<" with a stray "=" in the
// literal.
func parseCond(term string, s Schema) (Cond, error) {
	type opTok struct {
		tok string
		op  Op
	}
	// Order matters: longest tokens first.
	for _, t := range []opTok{
		{"<=", OpLe}, {">=", OpGe}, {"!=", OpNe},
		{"=", OpEq}, {"<", OpLt}, {">", OpGt}, {"~", OpHas},
	} {
		i := strings.Index(term, t.tok)
		if i <= 0 {
			continue
		}
		name := strings.TrimSpace(term[:i])
		lit := strings.TrimSpace(term[i+len(t.tok):])
		return typeCond(name, t.op, lit, s)
	}
	return Cond{}, fmt.Errorf("%w: %q has no operator (= != < <= > >= ~)", ErrBadFilter, term)
}

// typeCond validates the column and coerces the literal to its type.
func typeCond(name string, op Op, lit string, s Schema) (Cond, error) {
	pos, col, ok := s.Col(name)
	if !ok {
		var names []string
		for _, c := range s.Columns {
			names = append(names, c.Name)
		}
		return Cond{}, fmt.Errorf("%w: no column %q (have %s)", ErrBadFilter, name, strings.Join(names, ", "))
	}
	c := Cond{Col: name, Op: op, col: pos, typ: col.Type}
	switch col.Type {
	case String:
		c.Val = lit
	case Int:
		v, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return Cond{}, fmt.Errorf("%w: column %q wants an integer, got %q", ErrBadFilter, name, lit)
		}
		c.Val = v
	case Float:
		v, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return Cond{}, fmt.Errorf("%w: column %q wants a number, got %q", ErrBadFilter, name, lit)
		}
		c.Val = v
	case Bool:
		v, err := strconv.ParseBool(lit)
		if err != nil {
			return Cond{}, fmt.Errorf("%w: column %q wants true/false, got %q", ErrBadFilter, name, lit)
		}
		c.Val = v
		if op != OpEq && op != OpNe {
			return Cond{}, fmt.Errorf("%w: column %q (bool) supports only = and !=", ErrBadFilter, name)
		}
	}
	if op == OpHas && col.Type != String {
		return Cond{}, fmt.Errorf("%w: ~ needs a string column, %q is %s", ErrBadFilter, name, col.Type)
	}
	return c, nil
}

// match evaluates one condition against a row.
func (c Cond) match(r Row) bool {
	switch c.typ {
	case String:
		a, b := r[c.col].(string), c.Val.(string)
		switch c.Op {
		case OpHas:
			return strings.Contains(a, b)
		default:
			return cmpOrd(strings.Compare(a, b), c.Op)
		}
	case Int:
		a, b := r[c.col].(int64), c.Val.(int64)
		switch {
		case a < b:
			return cmpOrd(-1, c.Op)
		case a > b:
			return cmpOrd(1, c.Op)
		default:
			return cmpOrd(0, c.Op)
		}
	case Float:
		a, b := r[c.col].(float64), c.Val.(float64)
		switch {
		case a < b:
			return cmpOrd(-1, c.Op)
		case a > b:
			return cmpOrd(1, c.Op)
		default:
			return cmpOrd(0, c.Op)
		}
	case Bool:
		a, b := r[c.col].(bool), c.Val.(bool)
		if c.Op == OpNe {
			return a != b
		}
		return a == b
	}
	return false
}

// cmpOrd maps a three-way comparison to an ordering operator.
func cmpOrd(cmp int, op Op) bool {
	switch op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

// Match evaluates the full conjunction against a row.
func (f Filter) Match(r Row) bool {
	for _, c := range f.Conds {
		if !c.match(r) {
			return false
		}
	}
	return true
}

// Select returns the ids of committed rows matching f, in commit order.
// When a condition is an equality on an indexed column, the candidate
// set comes from that column's hash index instead of a full scan — the
// "answer from the index" path that keeps queries over thousands of
// campaigns cheap.
func (t *Table) Select(f Filter) []int {
	t.mu.Lock()
	defer t.mu.Unlock()

	// Pick the most selective indexed equality condition as the driver.
	driver := -1
	best := -1
	for i, c := range f.Conds {
		if c.Op != OpEq {
			continue
		}
		m := t.index[c.Col]
		if m == nil {
			continue
		}
		n := len(m[encodeKey(c.Val)])
		if best == -1 || n < best {
			best, driver = n, i
		}
	}

	var out []int
	if driver >= 0 {
		c := f.Conds[driver]
		for _, id := range t.index[c.Col][encodeKey(c.Val)] {
			if f.Match(t.rows[id]) {
				out = append(out, id)
			}
		}
		return out
	}
	for id, r := range t.rows {
		if f.Match(r) {
			out = append(out, id)
		}
	}
	return out
}

// Count returns how many committed rows match f.
func (t *Table) Count(f Filter) int {
	return len(t.Select(f))
}
