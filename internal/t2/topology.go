// Package t2 models the hardware topology of multithreaded processors with
// several levels of resource sharing, parameterized as cores × hardware
// pipelines × hardware contexts (strands). The UltraSPARC T2 of the paper's
// case study is the 8 × 2 × 4 instance: resources are shared at three
// levels — IntraPipe (instruction fetch/integer units), IntraCore (L1
// caches, TLBs, LSU, FPU, crypto unit) and InterCore (L2, crossbar, memory
// controllers) — so where a task lands determines what it competes for.
package t2

import (
	"fmt"
)

// SharingLevel identifies one of the levels at which hardware resources are
// shared between concurrently running tasks (cf. Fig. 8 of the paper).
type SharingLevel int

const (
	// IntraPipe resources (IFU, IEU) are shared by tasks in the same
	// hardware pipeline.
	IntraPipe SharingLevel = iota
	// IntraCore resources (L1I, L1D, TLBs, LSU, FPU, crypto) are shared by
	// tasks on the same core.
	IntraCore
	// InterCore resources (L2 cache, crossbar, memory controllers) are
	// shared by every task on the processor.
	InterCore
)

// String implements fmt.Stringer.
func (l SharingLevel) String() string {
	switch l {
	case IntraPipe:
		return "IntraPipe"
	case IntraCore:
		return "IntraCore"
	case InterCore:
		return "InterCore"
	default:
		return fmt.Sprintf("SharingLevel(%d)", int(l))
	}
}

// Topology describes a processor as cores, each split into hardware
// pipelines, each supporting a fixed number of hardware contexts
// (virtual CPUs).
type Topology struct {
	Cores           int // number of physical cores
	PipesPerCore    int // hardware execution pipelines per core
	ContextsPerPipe int // hardware contexts (strands) per pipeline
}

// UltraSPARCT2 returns the topology of the paper's case-study processor:
// eight cores, two pipelines per core, four strands per pipeline — up to 64
// simultaneously running tasks.
func UltraSPARCT2() Topology { return Topology{Cores: 8, PipesPerCore: 2, ContextsPerPipe: 4} }

// Validate reports whether the topology is well formed.
func (t Topology) Validate() error {
	if t.Cores < 1 || t.PipesPerCore < 1 || t.ContextsPerPipe < 1 {
		return fmt.Errorf("t2: invalid topology %+v: all dimensions must be >= 1", t)
	}
	return nil
}

// Contexts returns the total number of hardware contexts V.
func (t Topology) Contexts() int { return t.Cores * t.PipesPerCore * t.ContextsPerPipe }

// Pipes returns the total number of hardware pipelines.
func (t Topology) Pipes() int { return t.Cores * t.PipesPerCore }

// CoreOf returns the core index of hardware context ctx.
func (t Topology) CoreOf(ctx int) int { return ctx / (t.PipesPerCore * t.ContextsPerPipe) }

// PipeOf returns the global pipeline index of hardware context ctx
// (core * PipesPerCore + pipe-in-core).
func (t Topology) PipeOf(ctx int) int { return ctx / t.ContextsPerPipe }

// SlotOf returns the strand slot of ctx within its pipeline.
func (t Topology) SlotOf(ctx int) int { return ctx % t.ContextsPerPipe }

// Context returns the hardware context index for (core, pipeInCore, slot).
func (t Topology) Context(core, pipeInCore, slot int) int {
	return (core*t.PipesPerCore+pipeInCore)*t.ContextsPerPipe + slot
}

// ContextName renders a context like "core3.pipe1.ctx2" (the Netra DPS
// style of naming strands for static binding).
func (t Topology) ContextName(ctx int) string {
	return fmt.Sprintf("core%d.pipe%d.ctx%d",
		t.CoreOf(ctx), t.PipeOf(ctx)%t.PipesPerCore, t.SlotOf(ctx))
}

// ShareLevel returns the closest (most contended) sharing level between two
// hardware contexts: IntraPipe if they sit in the same pipeline, IntraCore
// if in the same core, InterCore otherwise. Both arguments must be valid
// context indices; a == b is reported as IntraPipe.
func (t Topology) ShareLevel(a, b int) SharingLevel {
	switch {
	case t.PipeOf(a) == t.PipeOf(b):
		return IntraPipe
	case t.CoreOf(a) == t.CoreOf(b):
		return IntraCore
	default:
		return InterCore
	}
}

// String implements fmt.Stringer.
func (t Topology) String() string {
	return fmt.Sprintf("%d cores × %d pipes × %d contexts (%d virtual CPUs)",
		t.Cores, t.PipesPerCore, t.ContextsPerPipe, t.Contexts())
}
