package t2

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestUltraSPARCT2(t *testing.T) {
	topo := UltraSPARCT2()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.Contexts() != 64 {
		t.Errorf("Contexts = %d, want 64", topo.Contexts())
	}
	if topo.Pipes() != 16 {
		t.Errorf("Pipes = %d, want 16", topo.Pipes())
	}
}

func TestValidate(t *testing.T) {
	bad := []Topology{{}, {Cores: 1}, {Cores: 1, PipesPerCore: 1}, {Cores: -1, PipesPerCore: 2, ContextsPerPipe: 4}}
	for _, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid topology", topo)
		}
	}
}

func TestContextDecomposition(t *testing.T) {
	topo := UltraSPARCT2()
	// Context 0 is core0.pipe0.slot0; context 63 is core7.pipe1.slot3.
	if topo.CoreOf(0) != 0 || topo.PipeOf(0) != 0 || topo.SlotOf(0) != 0 {
		t.Error("context 0 decomposition wrong")
	}
	if topo.CoreOf(63) != 7 || topo.PipeOf(63) != 15 || topo.SlotOf(63) != 3 {
		t.Errorf("context 63: core=%d pipe=%d slot=%d", topo.CoreOf(63), topo.PipeOf(63), topo.SlotOf(63))
	}
	// Context 9 = core1? 9/(2*4)=1, pipe 9/4=2, slot 1.
	if topo.CoreOf(9) != 1 || topo.PipeOf(9) != 2 || topo.SlotOf(9) != 1 {
		t.Errorf("context 9: core=%d pipe=%d slot=%d", topo.CoreOf(9), topo.PipeOf(9), topo.SlotOf(9))
	}
}

func TestContextRoundTripProperty(t *testing.T) {
	topo := UltraSPARCT2()
	f := func(raw uint8) bool {
		ctx := int(raw) % topo.Contexts()
		core := topo.CoreOf(ctx)
		pipeInCore := topo.PipeOf(ctx) % topo.PipesPerCore
		slot := topo.SlotOf(ctx)
		return topo.Context(core, pipeInCore, slot) == ctx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShareLevel(t *testing.T) {
	topo := UltraSPARCT2()
	cases := []struct {
		a, b int
		want SharingLevel
	}{
		{0, 0, IntraPipe},
		{0, 3, IntraPipe},  // same pipe, different slots
		{0, 4, IntraCore},  // same core, different pipes
		{3, 7, IntraCore},  // slots 3 of pipe0 and pipe1 in core0
		{0, 8, InterCore},  // core0 vs core1
		{7, 63, InterCore}, // core0 vs core7
	}
	for _, c := range cases {
		if got := topo.ShareLevel(c.a, c.b); got != c.want {
			t.Errorf("ShareLevel(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestShareLevelSymmetricProperty(t *testing.T) {
	topo := UltraSPARCT2()
	f := func(ra, rb uint8) bool {
		a, b := int(ra)%64, int(rb)%64
		return topo.ShareLevel(a, b) == topo.ShareLevel(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNamesAndStrings(t *testing.T) {
	topo := UltraSPARCT2()
	if got := topo.ContextName(9); got != "core1.pipe0.ctx1" {
		t.Errorf("ContextName(9) = %q", got)
	}
	if got := topo.ContextName(63); got != "core7.pipe1.ctx3" {
		t.Errorf("ContextName(63) = %q", got)
	}
	if s := topo.String(); !strings.Contains(s, "64") {
		t.Errorf("String() = %q", s)
	}
	for _, l := range []SharingLevel{IntraPipe, IntraCore, InterCore, SharingLevel(9)} {
		if l.String() == "" {
			t.Error("empty sharing level name")
		}
	}
}
