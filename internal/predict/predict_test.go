package predict

import (
	"math"
	"math/rand"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/netdps"
)

func testbed(t *testing.T) *netdps.Testbed {
	t.Helper()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8, netdps.WithNoise(0))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestHeuristicTracksMeasurements(t *testing.T) {
	tb := testbed(t)
	p := NewHeuristic(tb, 0, 0)
	rng := rand.New(rand.NewSource(1))
	var sumAbs, worst float64
	const trials = 200
	for i := 0; i < trials; i++ {
		a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
		if err != nil {
			t.Fatal(err)
		}
		measured, err := tb.MeasureAnalytic(a)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := p.Predict(a)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(predicted-measured) / measured
		sumAbs += rel
		if rel > worst {
			worst = rel
		}
	}
	mean := sumAbs / trials
	// The predictor is useful (mean error a few percent) but not perfect
	// (it must have real structural error, or the §5.4 study is vacuous).
	if mean > 0.10 {
		t.Errorf("mean relative error %.1f%% — predictor too inaccurate", mean*100)
	}
	if mean < 0.0005 {
		t.Errorf("mean relative error %.3f%% — predictor suspiciously exact", mean*100)
	}
	if worst > 0.5 {
		t.Errorf("worst relative error %.1f%%", worst*100)
	}
}

func TestHeuristicRanksAssignments(t *testing.T) {
	// What matters for the integrated approach is ranking: a clearly good
	// placement must predict above a clearly bad one.
	tb := testbed(t)
	p := NewHeuristic(tb, 0, 0)
	topo := tb.Machine.Topo
	good := make([]int, 24)
	for i := 0; i < 8; i++ {
		good[i*3+0] = topo.Context(i, 1, 0)
		good[i*3+1] = topo.Context(i, 0, 0)
		good[i*3+2] = topo.Context(i, 1, 1)
	}
	bad := make([]int, 24)
	for i := range bad {
		bad[i] = topo.Context(i/8, (i/4)%2, i%4) // packed into 3 cores
	}
	pg, err := p.Predict(assign.Assignment{Topo: topo, Ctx: good})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := p.Predict(assign.Assignment{Topo: topo, Ctx: bad})
	if err != nil {
		t.Fatal(err)
	}
	if !(pg > pb*1.05) {
		t.Errorf("predictor ranking wrong: good %v vs bad %v", pg, pb)
	}
}

func TestHeuristicErrorKnob(t *testing.T) {
	tb := testbed(t)
	exact := NewHeuristic(tb, 0, 0)
	noisy := NewHeuristic(tb, 0.05, 7)
	rng := rand.New(rand.NewSource(2))
	a, err := assign.RandomPermutation(rng, tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	p0, err := exact.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := noisy.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	if p0 == p1 {
		t.Error("error knob had no effect")
	}
	if math.Abs(p1-p0)/p0 > 0.06 {
		t.Errorf("error exceeded its half-width: %v vs %v", p1, p0)
	}
	// Deterministic per assignment.
	p2, err := noisy.Predict(a)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("prediction not deterministic")
	}
}

func TestHeuristicValidation(t *testing.T) {
	tb := testbed(t)
	p := NewHeuristic(tb, 0, 0)
	if _, err := p.Predict(assign.Assignment{Topo: tb.Machine.Topo, Ctx: []int{0, 1}}); err == nil {
		t.Error("wrong task count accepted")
	}
	ctx := make([]int, 24)
	for i := range ctx {
		ctx[i] = 5 // collisions
	}
	if _, err := p.Predict(assign.Assignment{Topo: tb.Machine.Topo, Ctx: ctx}); err == nil {
		t.Error("invalid assignment accepted")
	}
}

func TestIntegratedApproachEndToEnd(t *testing.T) {
	// §5.4: the whole statistical pipeline runs on predictions. The
	// prediction-based estimate should approximate the measurement-based
	// one within a few times the predictor's error scale.
	tb := testbed(t)
	rng := rand.New(rand.NewSource(3))
	measuredSample, err := core.CollectSample(rng, tb.Machine.Topo, tb.TaskCount(), 1500, tb)
	if err != nil {
		t.Fatal(err)
	}
	measuredEst, err := core.EstimateOptimal(core.Perfs(measuredSample), evt.POTOptions{})
	if err != nil {
		t.Fatal(err)
	}

	rng = rand.New(rand.NewSource(3)) // same assignments
	predictedSample, err := core.CollectSample(rng, tb.Machine.Topo, tb.TaskCount(), 1500,
		Runner{P: NewHeuristic(tb, 0.01, 9)})
	if err != nil {
		t.Fatal(err)
	}
	predictedEst, err := core.EstimateOptimal(core.Perfs(predictedSample), evt.POTOptions{})
	if err != nil {
		t.Fatal(err)
	}

	rel := math.Abs(predictedEst.Optimal-measuredEst.Optimal) / measuredEst.Optimal
	if rel > 0.10 {
		t.Errorf("integrated estimate %v vs measured estimate %v (%.1f%% apart)",
			predictedEst.Optimal, measuredEst.Optimal, rel*100)
	}
}
