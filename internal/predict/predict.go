// Package predict implements the paper's §5.4 proposal: when executing
// thousands of assignments on the target machine is too expensive, feed the
// statistical analysis with the output of a *performance predictor* instead
// of measurements. The accuracy of the integrated approach then depends on
// the accuracy of the predictor — this package provides a tunable heuristic
// predictor so that dependence can be studied (the ext-predictor experiment
// in internal/exp).
package predict

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/netdps"
	"optassign/internal/proc"
	"optassign/internal/t2"
)

// Predictor estimates the performance of a task assignment without running
// it. It deliberately has the same shape as core.Runner, so the whole
// statistical pipeline works unchanged on predictions.
type Predictor interface {
	Predict(a assign.Assignment) (float64, error)
}

// Heuristic is an architecture-dependent analytical predictor in the style
// the paper cites ([20], [44]): it knows the machine's topology, the tasks'
// demand vectors and the communication structure, but approximates the
// contention equilibrium with a single relaxation step from uncontended
// rates instead of solving the fixed point — the kind of systematic
// shortcut real predictors take. An optional relative error term models
// further prediction inaccuracy; it is deterministic per assignment class,
// like a real model's bias for a given placement shape.
type Heuristic struct {
	machine *proc.Machine
	tasks   []proc.Task
	links   []proc.Link
	// RelError is the half-width of the uniform multiplicative error added
	// on top of the heuristic's own systematic error. 0 means "only the
	// model's structural error".
	RelError float64
	// Seed decorrelates the error from the testbed's measurement noise.
	Seed int64
}

// NewHeuristic builds a predictor for the workload of the given testbed.
func NewHeuristic(tb *netdps.Testbed, relError float64, seed int64) *Heuristic {
	tasks, links := tb.Tasks()
	return &Heuristic{
		machine:  tb.Machine,
		tasks:    tasks,
		links:    links,
		RelError: relError,
		Seed:     seed,
	}
}

// Predict implements Predictor.
func (h *Heuristic) Predict(a assign.Assignment) (float64, error) {
	if len(a.Ctx) != len(h.tasks) {
		return 0, fmt.Errorf("predict: assignment has %d tasks, workload has %d", len(a.Ctx), len(h.tasks))
	}
	if err := a.Validate(); err != nil {
		return 0, err
	}
	topo := h.machine.Topo

	// Effective demands including placement-dependent communication.
	eff := make([]proc.Demand, len(h.tasks))
	for i, t := range h.tasks {
		eff[i] = t.Demand
	}
	for _, l := range h.links {
		var comm proc.Demand
		if topo.ShareLevel(a.Ctx[l.A], a.Ctx[l.B]) == t2.InterCore {
			comm.Res[proc.L2] = h.machine.RemoteCommL2 * l.Volume
			comm.Res[proc.XBAR] = h.machine.RemoteCommXBar * l.Volume
		} else {
			comm.Res[proc.L1D] = h.machine.LocalCommL1 * l.Volume
		}
		eff[l.A] = eff[l.A].Add(comm)
		eff[l.B] = eff[l.B].Add(comm)
	}

	// One relaxation step: utilization at uncontended rates, slowdown,
	// service, bottleneck per group. (The real solver iterates this to a
	// fixed point; stopping after one step systematically over-estimates
	// contention for slow groups and under-estimates it for fast ones.)
	rate0 := make([]float64, len(eff))
	for i, d := range eff {
		rate0[i] = 1 / d.Base()
	}
	util := make(map[[2]int]float64)
	instOf := func(task int, r proc.Resource) int {
		switch r.Level() {
		case t2.IntraPipe:
			return topo.PipeOf(a.Ctx[task])
		case t2.IntraCore:
			return topo.CoreOf(a.Ctx[task])
		default:
			return 0
		}
	}
	for i, d := range eff {
		for r := 0; r < proc.NumResources; r++ {
			if d.Res[r] > 0 {
				util[[2]int{r, instOf(i, proc.Resource(r))}] += rate0[i] * d.Res[r]
			}
		}
	}
	maxGroup := 0
	for _, t := range h.tasks {
		if t.Group > maxGroup {
			maxGroup = t.Group
		}
	}
	groupRate := make([]float64, maxGroup+1)
	for i, d := range eff {
		s := d.Serial
		for r := 0; r < proc.NumResources; r++ {
			dem := d.Res[r]
			if dem == 0 {
				continue
			}
			slow := 1.0
			if u := util[[2]int{r, instOf(i, proc.Resource(r))}]; u > h.machine.Caps[r] {
				slow = u / h.machine.Caps[r]
			}
			s += dem * slow
		}
		g := h.tasks[i].Group
		rate := 1 / s
		if groupRate[g] == 0 || rate < groupRate[g] {
			groupRate[g] = rate
		}
	}
	var total float64
	for _, r := range groupRate {
		total += r
	}
	pps := total * h.machine.ClockHz

	if h.RelError > 0 {
		hash := fnv.New64a()
		fmt.Fprintf(hash, "predict|%s|%d", a.CanonicalKey(), h.Seed)
		rng := rand.New(rand.NewSource(int64(hash.Sum64())))
		pps *= 1 + h.RelError*(2*rng.Float64()-1)
	}
	return pps, nil
}

// Runner adapts the predictor to the core.Runner shape so CollectSample,
// EstimateOptimal and Iterate work unchanged on predictions — the
// "integrated approach" of §5.4.
type Runner struct{ P Predictor }

// Measure implements core.Runner by predicting.
func (r Runner) Measure(a assign.Assignment) (float64, error) { return r.P.Predict(a) }
