// Package optimize provides the derivative-free optimizers the EVT analysis
// needs: a Nelder-Mead simplex minimizer equivalent to the Matlab
// fminsearch() the paper used to fit the Generalized Pareto Distribution, a
// golden-section/parabolic 1-D minimizer for profile likelihoods, and a
// bisection root finder for confidence-interval boundaries.
package optimize

import (
	"errors"
	"math"
	"sort"
)

// ErrDimension is returned when a starting point has no coordinates.
var ErrDimension = errors.New("optimize: empty starting point")

// NelderMeadOptions tunes the simplex search. The zero value selects the
// fminsearch-compatible defaults.
type NelderMeadOptions struct {
	// MaxIter bounds the number of simplex iterations (default 200*dim,
	// matching fminsearch).
	MaxIter int
	// TolX is the simplex-diameter convergence tolerance (default 1e-8).
	TolX float64
	// TolF is the function-value spread tolerance (default 1e-10).
	TolF float64
	// InitialStep is the relative perturbation used to build the initial
	// simplex (default 0.05, matching fminsearch; absolute 0.00025 is used
	// for zero coordinates).
	InitialStep float64
}

func (o *NelderMeadOptions) withDefaults(dim int) NelderMeadOptions {
	out := NelderMeadOptions{MaxIter: 200 * dim, TolX: 1e-8, TolF: 1e-10, InitialStep: 0.05}
	if o == nil {
		return out
	}
	if o.MaxIter > 0 {
		out.MaxIter = o.MaxIter
	}
	if o.TolX > 0 {
		out.TolX = o.TolX
	}
	if o.TolF > 0 {
		out.TolF = o.TolF
	}
	if o.InitialStep > 0 {
		out.InitialStep = o.InitialStep
	}
	return out
}

// Result reports the outcome of a minimization.
type Result struct {
	X          []float64 // best point found
	F          float64   // objective value at X
	Iterations int
	Converged  bool
}

// NelderMead minimizes f starting from x0 using the Nelder-Mead downhill
// simplex method with the standard coefficients (reflection 1, expansion 2,
// contraction 0.5, shrink 0.5). The objective may return +Inf (or NaN, which
// is treated as +Inf) to encode constraint violations; the simplex simply
// moves away from such points, which is how the GPD support constraint
// (1 + ξy/σ > 0) is enforced by callers.
func NelderMead(f func([]float64) float64, x0 []float64, opts *NelderMeadOptions) (Result, error) {
	dim := len(x0)
	if dim == 0 {
		return Result{}, ErrDimension
	}
	o := opts.withDefaults(dim)

	eval := func(x []float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Build the initial simplex: x0 plus one perturbed vertex per dimension.
	verts := make([][]float64, dim+1)
	fvals := make([]float64, dim+1)
	verts[0] = append([]float64(nil), x0...)
	fvals[0] = eval(verts[0])
	for i := 0; i < dim; i++ {
		v := append([]float64(nil), x0...)
		if v[i] != 0 {
			v[i] *= 1 + o.InitialStep
		} else {
			v[i] = 0.00025
		}
		verts[i+1] = v
		fvals[i+1] = eval(v)
	}

	order := make([]int, dim+1)
	centroid := make([]float64, dim)
	xr := make([]float64, dim)
	xe := make([]float64, dim)
	xc := make([]float64, dim)

	res := Result{}
	for iter := 0; iter < o.MaxIter; iter++ {
		res.Iterations = iter + 1
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return fvals[order[a]] < fvals[order[b]] })
		best, worst, second := order[0], order[dim], order[dim-1]

		// Convergence: spread of values and simplex size.
		fSpread := math.Abs(fvals[worst] - fvals[best])
		xSpread := 0.0
		for i := 0; i < dim; i++ {
			for _, vi := range order[1:] {
				d := math.Abs(verts[vi][i] - verts[best][i])
				if d > xSpread {
					xSpread = d
				}
			}
		}
		if fSpread <= o.TolF && xSpread <= o.TolX {
			res.Converged = true
			break
		}

		// Centroid of all but the worst vertex.
		for i := range centroid {
			centroid[i] = 0
		}
		for _, vi := range order[:dim] {
			for i, c := range verts[vi] {
				centroid[i] += c
			}
		}
		for i := range centroid {
			centroid[i] /= float64(dim)
		}

		// Reflection.
		for i := range xr {
			xr[i] = centroid[i] + (centroid[i] - verts[worst][i])
		}
		fr := eval(xr)
		switch {
		case fr < fvals[best]:
			// Expansion.
			for i := range xe {
				xe[i] = centroid[i] + 2*(centroid[i]-verts[worst][i])
			}
			fe := eval(xe)
			if fe < fr {
				copy(verts[worst], xe)
				fvals[worst] = fe
			} else {
				copy(verts[worst], xr)
				fvals[worst] = fr
			}
		case fr < fvals[second]:
			copy(verts[worst], xr)
			fvals[worst] = fr
		default:
			// Contraction (outside if reflected point improved on worst,
			// inside otherwise).
			if fr < fvals[worst] {
				for i := range xc {
					xc[i] = centroid[i] + 0.5*(xr[i]-centroid[i])
				}
			} else {
				for i := range xc {
					xc[i] = centroid[i] + 0.5*(verts[worst][i]-centroid[i])
				}
			}
			fc := eval(xc)
			if fc < math.Min(fr, fvals[worst]) {
				copy(verts[worst], xc)
				fvals[worst] = fc
			} else {
				// Shrink toward the best vertex.
				for _, vi := range order[1:] {
					for i := range verts[vi] {
						verts[vi][i] = verts[best][i] + 0.5*(verts[vi][i]-verts[best][i])
					}
					fvals[vi] = eval(verts[vi])
				}
			}
		}
	}

	bi := 0
	for i, fv := range fvals {
		if fv < fvals[bi] {
			bi = i
		}
	}
	res.X = append([]float64(nil), verts[bi]...)
	res.F = fvals[bi]
	return res, nil
}
