package optimize

import (
	"errors"
	"math"
)

// ErrBracket is returned when a root finder's bracket does not straddle a
// sign change.
var ErrBracket = errors.New("optimize: bracket does not straddle a root")

// GoldenSection minimizes a unimodal scalar function on [a, b] using
// golden-section search. It returns the minimizer and the minimum. The
// objective may return +Inf/NaN (treated as +Inf) inside the interval; the
// search simply avoids such regions, which callers use to encode support
// constraints in profile likelihoods.
func GoldenSection(f func(float64) float64, a, b, tol float64) (xmin, fmin float64) {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-10
	}
	eval := func(x float64) float64 {
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	const invPhi = 0.6180339887498949  // 1/φ
	const invPhi2 = 0.3819660112501051 // 1/φ²
	h := b - a
	c := a + invPhi2*h
	d := a + invPhi*h
	fc, fd := eval(c), eval(d)
	// ~log_φ((b−a)/tol) iterations suffice; cap generously.
	for i := 0; i < 400 && h > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			h = b - a
			c = a + invPhi2*h
			fc = eval(c)
		} else {
			a, c, fc = c, d, fd
			h = b - a
			d = a + invPhi*h
			fd = eval(d)
		}
	}
	if fc < fd {
		return c, fc
	}
	return d, fd
}

// Bisect finds a root of f in [a, b] where f(a) and f(b) have opposite
// signs, to absolute tolerance tol on x.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) || (fa > 0) == (fb > 0) {
		return 0, ErrBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 500; i++ {
		mid := a + (b-a)/2
		fm := f(mid)
		if fm == 0 || (b-a)/2 < tol {
			return mid, nil
		}
		if math.IsNaN(fm) {
			// Retreat: treat NaN as the same side as the nearer finite
			// endpoint with matching uncertainty; shrink toward a.
			b, fb = mid, fm
			_ = fb
			continue
		}
		if (fm > 0) == (fa > 0) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return a + (b-a)/2, nil
}
