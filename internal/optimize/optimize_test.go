package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1) + 5
	}
	res, err := NelderMead(f, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-5 || math.Abs(res.X[1]+1) > 1e-5 {
		t.Errorf("minimizer = %v, want (3,-1)", res.X)
	}
	if math.Abs(res.F-5) > 1e-8 {
		t.Errorf("minimum = %v, want 5", res.F)
	}
	if !res.Converged {
		t.Error("should have converged")
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	// The classic banana function: minimum 0 at (1, 1).
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, &NelderMeadOptions{MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Errorf("minimizer = %v, want (1,1)", res.X)
	}
}

func TestNelderMead1D(t *testing.T) {
	f := func(x []float64) float64 { return math.Abs(x[0] - 7) }
	res, err := NelderMead(f, []float64{100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-7) > 1e-4 {
		t.Errorf("minimizer = %v, want 7", res.X[0])
	}
}

func TestNelderMeadConstraintViaInf(t *testing.T) {
	// Minimize (x−5)² subject to x <= 2, encoded by +Inf.
	f := func(x []float64) float64 {
		if x[0] > 2 {
			return math.Inf(1)
		}
		d := x[0] - 5
		return d * d
	}
	res, err := NelderMead(f, []float64{-3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-4 {
		t.Errorf("constrained minimizer = %v, want 2", res.X[0])
	}
}

func TestNelderMeadNaNTreatedAsInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return (x[0] - 1) * (x[0] - 1)
	}
	res, err := NelderMead(f, []float64{4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Errorf("minimizer = %v, want 1", res.X[0])
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, err := NelderMead(func(x []float64) float64 { return 0 }, nil, nil); err != ErrDimension {
		t.Errorf("err = %v, want ErrDimension", err)
	}
}

func TestNelderMeadZeroStartCoordinate(t *testing.T) {
	// Regression: a zero coordinate must still receive a perturbation.
	f := func(x []float64) float64 { return (x[0] + 2) * (x[0] + 2) }
	res, err := NelderMead(f, []float64{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]+2) > 1e-4 {
		t.Errorf("minimizer = %v, want -2", res.X[0])
	}
}

func TestNelderMeadRandomQuadraticsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		center := make([]float64, dim)
		start := make([]float64, dim)
		for i := range center {
			center[i] = r.Float64()*20 - 10
			start[i] = r.Float64()*20 - 10
		}
		obj := func(x []float64) float64 {
			s := 0.0
			for i := range x {
				d := x[i] - center[i]
				s += d * d
			}
			return s
		}
		res, err := NelderMead(obj, start, &NelderMeadOptions{MaxIter: 4000})
		if err != nil {
			return false
		}
		for i := range res.X {
			if math.Abs(res.X[i]-center[i]) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGoldenSection(t *testing.T) {
	x, fx := GoldenSection(func(x float64) float64 { return (x - 2.5) * (x - 2.5) }, 0, 10, 1e-10)
	if math.Abs(x-2.5) > 1e-6 {
		t.Errorf("minimizer = %v, want 2.5", x)
	}
	if fx > 1e-10 {
		t.Errorf("minimum = %v", fx)
	}
	// Reversed interval and default tolerance also work.
	x, _ = GoldenSection(func(x float64) float64 { return math.Cos(x) }, 4, 2, 0)
	if math.Abs(x-math.Pi) > 1e-6 {
		t.Errorf("minimizer of cos on [2,4] = %v, want π", x)
	}
}

func TestGoldenSectionWithInfRegion(t *testing.T) {
	f := func(x float64) float64 {
		if x < 1 {
			return math.Inf(1)
		}
		return (x - 3) * (x - 3)
	}
	x, _ := GoldenSection(f, 0, 10, 1e-9)
	if math.Abs(x-3) > 1e-5 {
		t.Errorf("minimizer = %v, want 3", x)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want √2", root)
	}
	// Endpoint roots are returned directly.
	root, err = Bisect(func(x float64) float64 { return x }, 0, 5, 1e-12)
	if err != nil || root != 0 {
		t.Errorf("root = %v err = %v", root, err)
	}
	// No sign change -> ErrBracket.
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-12); err != ErrBracket {
		t.Errorf("err = %v, want ErrBracket", err)
	}
}

func TestBisectRandomRootsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := r.Float64()*100 - 50
		g := func(x float64) float64 { return math.Tanh(x - root) }
		got, err := Bisect(g, root-30, root+17, 1e-10)
		return err == nil && math.Abs(got-root) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
