package cas

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := []string{"tb|a\x1f8x2x4\x1fK1", "tb|a\x1f8x2x4\x1fK2", "tb|b\x1f8x2x4\x1fK1"}
	for i, k := range keys {
		if err := s.Put(k, 1e6+float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate Put is a no-op, not a second record.
	before := s.Bytes()
	if err := s.Put(keys[0], 1e6); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != before {
		t.Fatalf("duplicate Put grew the segment: %d -> %d bytes", before, s.Bytes())
	}
	for i, k := range keys {
		got, ok := s.Get(k)
		if !ok || got != 1e6+float64(i) {
			t.Fatalf("Get(%q) = %v, %v; want %v, true", k, got, ok, 1e6+float64(i))
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get(absent) reported a hit")
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len() = %d, want %d", s.Len(), len(keys))
	}
}

// TestStoreReopenRecovers proves persistence: a second Open on the same
// directory (a new process, a resumed campaign, a sibling fleet member)
// rebuilds the identical index from the segment alone.
func TestStoreReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("class-%03d", i)
		v := float64(i) * 1.5
		want[k] = v
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(want) {
		t.Fatalf("reopened Len() = %d, want %d", s2.Len(), len(want))
	}
	for k, v := range want {
		if got, ok := s2.Get(k); !ok || got != v {
			t.Fatalf("reopened Get(%q) = %v, %v; want %v, true", k, got, ok, v)
		}
	}
}

// TestStoreExactBitPatterns: performance values round-trip bit-for-bit —
// the disk tier must be as invisible to journal bytes as the LRU is.
func TestStoreExactBitPatterns(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{0, math.Copysign(0, -1), 1e-308, math.MaxFloat64, 1234567.89012345, math.Nextafter(1e6, 2e6)}
	for i, v := range vals {
		if err := s.Put(fmt.Sprintf("k%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, v := range vals {
		got, ok := s2.Get(fmt.Sprintf("k%d", i))
		if !ok || math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("value %d: got bits %x, want %x", i, math.Float64bits(got), math.Float64bits(v))
		}
	}
}

func segPath(dir string) string { return filepath.Join(dir, segmentName) }

// corrupt appends or rewrites raw bytes to simulate a writer killed
// mid-append.
func corrupt(t *testing.T, dir string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(segPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir), mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCrashConsistency is the kill-mid-write gate: every way an
// append can be torn — length prefix cut, key cut, perf cut, checksum
// half-written, trailing garbage — must be detected at reopen, the torn
// tail rejected from the index and truncated away, and the store must
// accept new appends that survive a further reopen.
func TestStoreCrashConsistency(t *testing.T) {
	mkRecord := func(key string, perf float64) []byte {
		rec := make([]byte, 8+len(key)+8)
		binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
		copy(rec[8:], key)
		binary.LittleEndian.PutUint64(rec[8+len(key):], math.Float64bits(perf))
		binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(rec[8:]))
		return rec
	}
	tears := []struct {
		name string
		tail func() []byte
	}{
		{"cut-length-prefix", func() []byte { return mkRecord("torn-key", 9e9)[:3] }},
		{"cut-mid-key", func() []byte { return mkRecord("torn-key", 9e9)[:12] }},
		{"cut-mid-perf", func() []byte { r := mkRecord("torn-key", 9e9); return r[:len(r)-3] }},
		{"bad-crc", func() []byte {
			r := mkRecord("torn-key", 9e9)
			r[5] ^= 0xff
			return r
		}},
		{"zero-length", func() []byte { return make([]byte, 8) }},
		{"garbage", func() []byte { return []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02} }},
		{"huge-length", func() []byte {
			r := make([]byte, 8)
			binary.LittleEndian.PutUint32(r[0:4], 1<<30)
			return r
		}},
	}
	for _, tear := range tears {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put("good-1", 1.5); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("good-2", 2.5); err != nil {
				t.Fatal(err)
			}
			clean := s.Bytes()
			s.Close()
			corrupt(t, dir, func(b []byte) []byte { return append(b, tear.tail()...) })

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			if s2.Len() != 2 {
				t.Fatalf("index holds %d records after torn tail, want the 2 intact ones", s2.Len())
			}
			if _, ok := s2.Get("torn-key"); ok {
				t.Fatal("torn record leaked into the index")
			}
			if s2.Bytes() != clean {
				t.Fatalf("validated size %d, want %d (torn tail not rejected)", s2.Bytes(), clean)
			}
			if fi, err := os.Stat(segPath(dir)); err != nil || fi.Size() != clean {
				t.Fatalf("segment size %d after reopen, want torn tail truncated to %d", fi.Size(), clean)
			}
			// The log must stay appendable and durable after the repair.
			if err := s2.Put("good-3", 3.5); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			for k, v := range map[string]float64{"good-1": 1.5, "good-2": 2.5, "good-3": 3.5} {
				if got, ok := s3.Get(k); !ok || got != v {
					t.Fatalf("after repair+append+reopen, Get(%q) = %v, %v; want %v", k, got, ok, v)
				}
			}
		})
	}
}

// TestStoreRejectsForeignFile: a directory holding a non-cas file must be
// refused, not misparsed into a poisoned cache.
func TestStoreRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir), []byte("this is not a cas segment at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a foreign segment file")
	}
}

// TestStoreCrossProcessSharing simulates two fleet members on one host:
// two independent Store handles on one directory. A Put through one is
// visible to the other's next Get miss via the catch-up scan — no reopen,
// no signal, no shared memory.
func TestStoreCrossProcessSharing(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Put("from-a", 11); err != nil {
		t.Fatal(err)
	}
	if got, ok := b.Get("from-a"); !ok || got != 11 {
		t.Fatalf("peer Get(from-a) = %v, %v; want 11, true", got, ok)
	}
	if err := b.Put("from-b", 22); err != nil {
		t.Fatal(err)
	}
	if got, ok := a.Get("from-b"); !ok || got != 22 {
		t.Fatalf("peer Get(from-b) = %v, %v; want 22, true", got, ok)
	}
	// Same key written by both sides: one record, one value.
	if err := a.Put("shared", 33); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("shared", 33); err != nil {
		t.Fatal(err)
	}
	if a.Bytes() != b.Bytes() {
		t.Fatalf("validated sizes diverged: a=%d b=%d", a.Bytes(), b.Bytes())
	}
}

// TestStoreConcurrentPutGet hammers one handle from many goroutines —
// the in-process concurrency contract, run under -race in CI.
func TestStoreConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := fmt.Sprintf("class-%d", i) // all workers contend on the same keys
				if err := s.Put(k, float64(i)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(k); !ok || got != float64(i) {
					t.Errorf("Get(%q) = %v, %v", k, got, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != perWorker {
		t.Fatalf("Len() = %d, want %d", s.Len(), perWorker)
	}
}

// TestStoreWarmGetAllocFree pins the acceptance criterion: a warm disk
// hit is a map read — zero allocations on the lookup.
func TestStoreWarmGetAllocFree(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("warm-key", 42); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Get("warm-key"); !ok {
			t.Fatal("warm key missing")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Get allocates %.1f objects per lookup, want 0", allocs)
	}
}

// TestStoreDeleteDirInvalidates documents the operational contract from
// the README: removing the directory is the (only) invalidation story.
func TestStoreDeleteDirInvalidates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("stale", 1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get("stale"); ok {
		t.Fatal("deleted directory still serves old measurements")
	}
	if s2.Len() != 0 {
		t.Fatalf("fresh store has %d entries", s2.Len())
	}
}

func BenchmarkStoreWarmGet(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("warm-key", 42); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get("warm-key"); !ok {
			b.Fatal("missing")
		}
	}
}

func BenchmarkStorePut(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("class-%d", i), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
