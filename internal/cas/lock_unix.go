//go:build unix

package cas

import "syscall"

// flockEx takes an exclusive advisory lock on f, blocking until it is
// granted. EINTR is retried: a signal during a blocking flock must not
// surface as a store failure.
func flockEx(f interface{ Fd() uintptr }) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if err != syscall.EINTR {
			return err
		}
	}
}

// funlock releases the advisory lock. Errors are ignored — the lock dies
// with the descriptor anyway, and a failed unlock must not mask the
// operation it was guarding.
func funlock(f interface{ Fd() uintptr }) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
