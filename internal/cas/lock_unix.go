//go:build unix

package cas

import "syscall"

// flockEx takes an exclusive advisory lock on f, blocking until it is
// granted. EINTR is retried: a signal during a blocking flock must not
// surface as a store failure.
func flockEx(f interface{ Fd() uintptr }) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if err != syscall.EINTR {
			return err
		}
	}
}

// tryFlockEx is the non-blocking flockEx: it returns ErrLocked instead
// of waiting when another open file description holds the lock.
func tryFlockEx(f interface{ Fd() uintptr }) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		switch err {
		case syscall.EINTR:
			continue
		case syscall.EWOULDBLOCK:
			return ErrLocked
		default:
			return err
		}
	}
}

// funlock releases the advisory lock. Errors are ignored — the lock dies
// with the descriptor anyway, and a failed unlock must not mask the
// operation it was guarding.
func funlock(f interface{ Fd() uintptr }) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
