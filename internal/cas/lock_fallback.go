//go:build !unix

package cas

// Non-unix platforms get no cross-process append serialization: the store
// stays crash-safe and correct for one process (s.mu serializes in-process
// appends, records stay self-checking), but two processes sharing one
// directory may append the same class twice — harmless, since duplicate
// records carry identical values and the index keeps the first.
func flockEx(f interface{ Fd() uintptr }) error { return nil }

func tryFlockEx(f interface{ Fd() uintptr }) error { return nil }

func funlock(f interface{ Fd() uintptr }) {}
