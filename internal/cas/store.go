// Package cas is a persistent, content-addressed store for measured
// performance values — the disk tier of the measurement cache. The paper's
// symmetry argument makes a canonical assignment class's performance a pure
// function of (testbed identity, topology, canonical form); cas persists
// that function's graph, so a class measured by ANY prior campaign on a
// host — last week's run, a sibling fleet member, a killed-and-resumed
// process — is never simulated again.
//
// Layout: one directory holding a single append-only segment file plus a
// lock file. Every record is self-checking:
//
//	[keyLen u32 LE][crc32 u32 LE][key bytes][perf float64 bits LE]
//
// with the CRC taken over key+perf. The in-memory index is rebuilt by
// scanning the segment at Open; nothing else is ever persisted, so there
// is no index to corrupt. Records are immutable and duplicate appends of a
// key are harmless (first-writer-wins in the index — the value is a pure
// function of the key, so duplicates carry the same performance).
//
// Crash safety: each Put is a single O_APPEND write followed by fsync. A
// crash mid-append leaves a torn tail that fails its length or CRC check;
// Open (and any writer holding the exclusive lock) truncates the torn
// tail away, while lock-free readers simply stop scanning at it. A torn
// tail can therefore never poison the index — it is detected, rejected
// and removed, and only whole fsynced records survive a kill at any
// instant.
//
// Concurrency: one process may share a Store across goroutines (all
// methods lock s.mu). Several PROCESSES may share one directory: appends
// serialize on an flock'd lock file, and a Get miss triggers a catch-up
// scan of whatever other processes appended since, so fleet members on a
// host see each other's measurements within one lookup. Readers take no
// lock — the file only grows (truncation happens only under the exclusive
// lock, and only ever removes bytes no reader could have validated).
package cas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// segmentName is the single append-only data file inside a store
// directory; lockName is the flock target serializing cross-process
// appends (flocking the segment itself would race with O_APPEND dups on
// some platforms).
const (
	segmentName = "measurements.cas"
	lockName    = "lock"
)

// header identifies a segment file. The version byte lets a future format
// refuse old files instead of misparsing them.
var header = []byte{'O', 'C', 'A', 'S', 1, 0, 0, 0}

// maxKeyLen bounds a record's key so a corrupt length prefix cannot make
// the scanner allocate gigabytes. Cache keys are identity+topology+
// canonical form — a few hundred bytes in practice.
const maxKeyLen = 1 << 20

// ErrCorruptHeader reports a segment whose leading bytes are not a cas
// header — the directory holds something that is not a measurement store.
var ErrCorruptHeader = errors.New("cas: segment header mismatch (not a measurement store, or an incompatible version)")

// Store is an open measurement store. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	dir     string
	seg     *os.File // O_APPEND data file
	lock    *os.File // flock target for cross-process append ordering
	index   map[string]float64
	scanned int64 // segment bytes validated into the index
}

// Open opens (creating if absent) the store in dir. The segment is
// scanned to rebuild the index; a torn tail left by a crashed writer is
// truncated away under the exclusive lock.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	seg, err := os.OpenFile(filepath.Join(dir, segmentName), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		lock.Close()
		return nil, fmt.Errorf("cas: %w", err)
	}
	s := &Store{dir: dir, seg: seg, lock: lock, index: make(map[string]float64)}

	// Header and torn-tail repair happen under the exclusive lock: no
	// other process can be mid-append, so an invalid tail is a crash
	// leftover and safe to cut.
	if err := flockEx(lock); err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("cas: locking %s: %w", dir, err)
	}
	defer funlock(lock)
	fi, err := seg.Stat()
	if err != nil {
		s.closeFiles()
		return nil, fmt.Errorf("cas: %w", err)
	}
	switch {
	case fi.Size() == 0:
		if _, err := seg.Write(header); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("cas: writing header: %w", err)
		}
		if err := seg.Sync(); err != nil {
			s.closeFiles()
			return nil, fmt.Errorf("cas: %w", err)
		}
		s.scanned = int64(len(header))
	default:
		if err := s.checkHeader(); err != nil {
			s.closeFiles()
			return nil, err
		}
		s.scanned = int64(len(header))
		if err := s.catchUpLocked(); err != nil {
			s.closeFiles()
			return nil, err
		}
		// Whatever failed validation past s.scanned is a torn tail; cut it
		// so future appends extend a clean log.
		if fi2, err := seg.Stat(); err == nil && fi2.Size() > s.scanned {
			if err := seg.Truncate(s.scanned); err != nil {
				s.closeFiles()
				return nil, fmt.Errorf("cas: truncating torn tail: %w", err)
			}
		}
	}
	return s, nil
}

func (s *Store) closeFiles() {
	s.seg.Close()
	s.lock.Close()
}

// checkHeader validates the segment's leading bytes.
func (s *Store) checkHeader() error {
	buf := make([]byte, len(header))
	if _, err := s.seg.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("cas: reading header: %w", err)
	}
	for i, b := range header {
		if buf[i] != b {
			return ErrCorruptHeader
		}
	}
	return nil
}

// catchUpLocked scans segment bytes from s.scanned to EOF, adding every
// valid record to the index and leaving s.scanned at the end of the last
// valid record. Caller holds s.mu (or is inside Open). It never treats an
// invalid record as fatal — that is how a torn tail (or a concurrent
// writer's half-visible append) presents, and the caller decides whether
// to truncate (exclusive-lock holders) or ignore it (readers).
func (s *Store) catchUpLocked() error {
	fi, err := s.seg.Stat()
	if err != nil {
		return fmt.Errorf("cas: %w", err)
	}
	size := fi.Size()
	if size < s.scanned {
		// The segment shrank under us — only a torn-tail truncation by
		// another writer can do that, and it only removes bytes that never
		// validated, so our index holds no record from the removed range.
		// Restart the unvalidated region at the new end of file.
		s.scanned = size
		return nil
	}
	if size == s.scanned {
		return nil
	}
	r := io.NewSectionReader(s.seg, s.scanned, size-s.scanned)
	var prefix [8]byte
	off := s.scanned
	for {
		if _, err := io.ReadFull(r, prefix[:]); err != nil {
			return nil // clean EOF or torn length prefix: stop here
		}
		keyLen := binary.LittleEndian.Uint32(prefix[0:4])
		crc := binary.LittleEndian.Uint32(prefix[4:8])
		if keyLen == 0 || keyLen > maxKeyLen {
			return nil // corrupt length: torn tail starts at off
		}
		payload := make([]byte, int(keyLen)+8)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // record cut short: torn tail
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return nil // bit rot or torn write: reject the tail
		}
		key := string(payload[:keyLen])
		perf := bitsToFloat(payload[keyLen:])
		if _, ok := s.index[key]; !ok {
			s.index[key] = perf
		}
		off += int64(8 + len(payload))
		s.scanned = off
	}
}

// Get returns the stored performance for key. A warm hit is a single map
// read — no locks beyond s.mu, no syscalls, no allocations. On a miss the
// store catches up on records other processes appended since the last
// scan and retries, so one host's fleet members serve each other within a
// lookup.
func (s *Store) Get(key string) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if perf, ok := s.index[key]; ok {
		return perf, true
	}
	// Miss: another process may have measured this class since our last
	// scan. The catch-up is one stat plus a read of only the new bytes,
	// both trivial next to the simulation a true miss costs.
	if err := s.catchUpLocked(); err != nil {
		return 0, false
	}
	perf, ok := s.index[key]
	return perf, ok
}

// Put appends (key, perf) and fsyncs it. Appends from all processes
// serialize on the lock file; a key already present (here or appended by
// a peer since our last scan) is not written again.
func (s *Store) Put(key string, perf float64) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("cas: invalid key length %d", len(key))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		return nil
	}
	if err := flockEx(s.lock); err != nil {
		return fmt.Errorf("cas: locking: %w", err)
	}
	defer funlock(s.lock)
	// Under the exclusive lock: absorb peers' appends (the key may have
	// landed already), and cut any crash-torn tail so our record extends
	// a clean log.
	if err := s.catchUpLocked(); err != nil {
		return err
	}
	if _, ok := s.index[key]; ok {
		return nil
	}
	if fi, err := s.seg.Stat(); err == nil && fi.Size() > s.scanned {
		if err := s.seg.Truncate(s.scanned); err != nil {
			return fmt.Errorf("cas: truncating torn tail: %w", err)
		}
	}
	rec := make([]byte, 8+len(key)+8)
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	copy(rec[8:], key)
	floatToBits(rec[8+len(key):], perf)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(rec[8:]))
	if _, err := s.seg.Write(rec); err != nil {
		return fmt.Errorf("cas: appending record: %w", err)
	}
	if err := s.seg.Sync(); err != nil {
		return fmt.Errorf("cas: syncing record: %w", err)
	}
	s.index[key] = perf
	s.scanned += int64(len(rec))
	return nil
}

// Len reports the number of distinct keys in the index.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes reports the validated segment size — the on-disk footprint of the
// store as of the last scan.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scanned
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the store's files. The segment needs no final flush —
// every Put synced itself.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err1 := s.seg.Close()
	err2 := s.lock.Close()
	if err1 != nil {
		return fmt.Errorf("cas: %w", err1)
	}
	if err2 != nil {
		return fmt.Errorf("cas: %w", err2)
	}
	return nil
}

func bitsToFloat(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func floatToBits(b []byte, f float64) {
	binary.LittleEndian.PutUint64(b, math.Float64bits(f))
}
