package cas

import "errors"

// ErrLocked reports that a non-blocking lock attempt found the file
// already exclusively locked — by another process, or by another open
// descriptor in this one. Callers that need a domain-specific error
// (e.g. campaign.ErrJournalBusy) wrap this one.
var ErrLocked = errors.New("cas: file is locked by another holder")

// TryLockEx takes a non-blocking exclusive advisory lock on f. It
// returns ErrLocked when the lock is held elsewhere, so a caller can
// refuse to share an append-only file rather than silently interleave
// writes with a concurrent owner. On platforms without flock the call
// is a no-op that always succeeds (the same degradation the store's
// own locking documents in lock_fallback.go).
//
// The lock belongs to f's open file description and is released by
// Unlock or by closing f.
func TryLockEx(f interface{ Fd() uintptr }) error { return tryFlockEx(f) }

// Unlock releases a lock taken by TryLockEx. Errors are ignored for
// the same reason funlock's are: the lock dies with the descriptor,
// and a failed unlock must not mask the operation it guarded.
func Unlock(f interface{ Fd() uintptr }) { funlock(f) }
