// Package netgen is the synthetic stand-in for Oracle's NTGen traffic
// generator of the paper's testbed (§4): it produces IPv4 TCP/UDP packets
// with real wire-format headers, configurable field distributions, a
// Zipf-skewed flow population and optional keyword planting in payloads (so
// the Aho-Corasick benchmark has something to find). Generation is fully
// deterministic given a seed, and fast enough to saturate the simulated
// processing machine — the measurement bottleneck stays on the processing
// side, as in the paper.
package netgen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
)

// Wire-format constants.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	TCPHeaderLen      = 20
	UDPHeaderLen      = 8

	EtherTypeIPv4 = 0x0800

	ProtoTCP = 6
	ProtoUDP = 17
)

// Packet is one network packet as raw bytes: Ethernet + IPv4 + TCP/UDP +
// payload, exactly as it would arrive from the NIU.
type Packet struct {
	Raw []byte
}

// Errors returned by the packet accessors.
var (
	ErrTruncated   = errors.New("netgen: packet truncated")
	ErrNotIPv4     = errors.New("netgen: not an IPv4 packet")
	ErrUnsupported = errors.New("netgen: unsupported transport protocol")
)

// Header carries the decoded fields the benchmarks work with.
type Header struct {
	SrcMAC, DstMAC     [6]byte
	SrcIP, DstIP       uint32
	Proto              uint8
	TTL                uint8
	SrcPort, DstPort   uint16
	PayloadOff, Length int
}

// FlowKey is the 5-tuple identifying a flow (the paper's stateful benchmark
// keys its hash table on it).
type FlowKey struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            uint8
}

// Key extracts the 5-tuple from a decoded header.
func (h *Header) Key() FlowKey {
	return FlowKey{SrcIP: h.SrcIP, DstIP: h.DstIP, SrcPort: h.SrcPort, DstPort: h.DstPort, Proto: h.Proto}
}

// Decode parses the Ethernet, IPv4 and transport headers of the packet. It
// is the canonical parser used by the packet-analyzer benchmark and by
// tests to validate generated traffic.
func (p Packet) Decode() (Header, error) {
	var h Header
	raw := p.Raw
	if len(raw) < EthernetHeaderLen+IPv4HeaderLen {
		return h, ErrTruncated
	}
	copy(h.DstMAC[:], raw[0:6])
	copy(h.SrcMAC[:], raw[6:12])
	if binary.BigEndian.Uint16(raw[12:14]) != EtherTypeIPv4 {
		return h, ErrNotIPv4
	}
	ip := raw[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return h, ErrNotIPv4
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return h, ErrTruncated
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	// A total length beyond the captured bytes means truncation; one
	// smaller than the header itself means a malformed (or hostile)
	// length field.
	if totalLen > len(ip) || totalLen < ihl {
		return h, ErrTruncated
	}
	h.TTL = ip[8]
	h.Proto = ip[9]
	h.SrcIP = binary.BigEndian.Uint32(ip[12:16])
	h.DstIP = binary.BigEndian.Uint32(ip[16:20])
	trans := ip[ihl:totalLen]
	switch h.Proto {
	case ProtoTCP:
		if len(trans) < TCPHeaderLen {
			return h, ErrTruncated
		}
		h.SrcPort = binary.BigEndian.Uint16(trans[0:2])
		h.DstPort = binary.BigEndian.Uint16(trans[2:4])
		dataOff := int(trans[12]>>4) * 4
		if dataOff < TCPHeaderLen || dataOff > len(trans) {
			return h, ErrTruncated
		}
		h.PayloadOff = EthernetHeaderLen + ihl + dataOff
	case ProtoUDP:
		if len(trans) < UDPHeaderLen {
			return h, ErrTruncated
		}
		h.SrcPort = binary.BigEndian.Uint16(trans[0:2])
		h.DstPort = binary.BigEndian.Uint16(trans[2:4])
		h.PayloadOff = EthernetHeaderLen + ihl + UDPHeaderLen
	default:
		return h, fmt.Errorf("%w: %d", ErrUnsupported, h.Proto)
	}
	h.Length = EthernetHeaderLen + totalLen
	return h, nil
}

// Payload returns the transport payload bytes, or nil if the packet cannot
// be decoded.
func (p Packet) Payload() []byte {
	h, err := p.Decode()
	if err != nil {
		return nil
	}
	if h.PayloadOff > len(p.Raw) {
		return nil
	}
	end := h.Length
	if end > len(p.Raw) {
		end = len(p.Raw)
	}
	return p.Raw[h.PayloadOff:end]
}

// IPv4Checksum computes the Internet checksum of an IPv4 header (with the
// checksum field zeroed by the caller or skipped).
func IPv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 { // skip the checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum reports whether the packet's IPv4 header checksum is
// consistent.
func (p Packet) VerifyIPv4Checksum() bool {
	if len(p.Raw) < EthernetHeaderLen+IPv4HeaderLen {
		return false
	}
	ip := p.Raw[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	return IPv4Checksum(ip) == binary.BigEndian.Uint16(ip[10:12])
}

// Build assembles a packet from fields; payload is copied.
func Build(srcMAC, dstMAC [6]byte, srcIP, dstIP uint32, proto uint8, ttl uint8, srcPort, dstPort uint16, payload []byte) Packet {
	transLen := TCPHeaderLen
	if proto == ProtoUDP {
		transLen = UDPHeaderLen
	}
	total := EthernetHeaderLen + IPv4HeaderLen + transLen + len(payload)
	raw := make([]byte, total)
	copy(raw[0:6], dstMAC[:])
	copy(raw[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(raw[12:14], EtherTypeIPv4)

	ip := raw[EthernetHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+transLen+len(payload)))
	ip[8] = ttl
	ip[9] = proto
	binary.BigEndian.PutUint32(ip[12:16], srcIP)
	binary.BigEndian.PutUint32(ip[16:20], dstIP)
	binary.BigEndian.PutUint16(ip[10:12], IPv4Checksum(ip[:IPv4HeaderLen]))

	trans := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(trans[0:2], srcPort)
	binary.BigEndian.PutUint16(trans[2:4], dstPort)
	if proto == ProtoTCP {
		trans[12] = 5 << 4 // data offset 5 words
	} else {
		binary.BigEndian.PutUint16(trans[4:6], uint16(UDPHeaderLen+len(payload)))
	}
	copy(raw[EthernetHeaderLen+IPv4HeaderLen+transLen:], payload)
	return Packet{Raw: raw}
}

// IPString renders a uint32 IPv4 address in dotted form (for logs).
func IPString(ip uint32) string {
	return net.IPv4(byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip)).String()
}
