package netgen

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestPcapRoundTrip(t *testing.T) {
	gen, err := NewGenerator(DefaultProfile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	var sent []Packet
	for i := 0; i < 25; i++ {
		pkt := gen.Next()
		sent = append(sent, pkt)
		if err := w.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != 25 {
		t.Errorf("Packets = %d", w.Packets())
	}
	got, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Fatalf("read %d packets", len(got))
	}
	for i := range sent {
		if !bytes.Equal(got[i].Raw, sent[i].Raw) {
			t.Fatalf("packet %d differs after round trip", i)
		}
		if _, err := got[i].Decode(); err != nil {
			t.Fatalf("packet %d undecodable after round trip: %v", i, err)
		}
	}
}

func TestPcapHeaderFields(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, 1000)
	if err != nil {
		t.Fatal(err)
	}
	pkt := Build([6]byte{1}, [6]byte{2}, 1, 2, ProtoUDP, 64, 1, 2, []byte("x"))
	if err := w.WritePacket(pkt); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(pkt); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if binary.LittleEndian.Uint32(raw[0:4]) != 0xa1b2c3d4 {
		t.Error("bad magic")
	}
	if binary.LittleEndian.Uint32(raw[20:24]) != 1 {
		t.Error("link type not Ethernet")
	}
	// Second record's timestamp is 1000 µs after the first (1000 PPS).
	rec2 := 24 + 16 + len(pkt.Raw)
	usec := binary.LittleEndian.Uint32(raw[rec2+4 : rec2+8])
	if usec != 1000 {
		t.Errorf("second record at %d µs, want 1000", usec)
	}
}

func TestPcapWriterValidation(t *testing.T) {
	if _, err := NewPcapWriter(nil, 1000); err == nil {
		t.Error("nil writer accepted")
	}
	var buf bytes.Buffer
	if _, err := NewPcapWriter(&buf, 0); err == nil {
		t.Error("zero rate accepted")
	}
	w, err := NewPcapWriter(&buf, 1e9) // faster than 1 µs spacing: clamps
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(Packet{}); err == nil {
		t.Error("empty packet accepted")
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(strings.NewReader("short")); err == nil {
		t.Error("short file accepted")
	}
	bad := make([]byte, 24)
	if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Correct magic, wrong link type.
	binary.LittleEndian.PutUint32(bad[0:4], 0xa1b2c3d4)
	binary.LittleEndian.PutUint32(bad[20:24], 101) // raw IP
	if _, err := ReadPcap(bytes.NewReader(bad)); err == nil {
		t.Error("wrong link type accepted")
	}
	// Truncated record body.
	binary.LittleEndian.PutUint32(bad[20:24], 1)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], 100) // claims 100 bytes
	if _, err := ReadPcap(bytes.NewReader(append(bad, rec...))); err == nil {
		t.Error("truncated record accepted")
	}
}
