package netgen

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildDecodeRoundTripTCP(t *testing.T) {
	payload := []byte("hello world payload")
	pkt := Build([6]byte{1}, [6]byte{2}, 0x0a000001, 0xc0a80001, ProtoTCP, 64, 1234, 80, payload)
	h, err := pkt.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcIP != 0x0a000001 || h.DstIP != 0xc0a80001 {
		t.Errorf("IPs: %x %x", h.SrcIP, h.DstIP)
	}
	if h.SrcPort != 1234 || h.DstPort != 80 || h.Proto != ProtoTCP || h.TTL != 64 {
		t.Errorf("header: %+v", h)
	}
	if got := pkt.Payload(); !bytes.Equal(got, payload) {
		t.Errorf("payload = %q", got)
	}
	if h.Length != len(pkt.Raw) {
		t.Errorf("length %d != raw %d", h.Length, len(pkt.Raw))
	}
	if !pkt.VerifyIPv4Checksum() {
		t.Error("bad IPv4 checksum on built packet")
	}
}

func TestBuildDecodeRoundTripUDP(t *testing.T) {
	payload := []byte{1, 2, 3}
	pkt := Build([6]byte{1}, [6]byte{2}, 1, 2, ProtoUDP, 10, 53, 5353, payload)
	h, err := pkt.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if h.Proto != ProtoUDP || h.SrcPort != 53 || h.DstPort != 5353 {
		t.Errorf("header: %+v", h)
	}
	if got := pkt.Payload(); !bytes.Equal(got, payload) {
		t.Errorf("payload = %v", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := (Packet{Raw: make([]byte, 10)}).Decode(); !errors.Is(err, ErrTruncated) {
		t.Errorf("short packet: %v", err)
	}
	// Non-IPv4 ethertype.
	pkt := Build([6]byte{}, [6]byte{}, 1, 2, ProtoTCP, 64, 1, 2, nil)
	raw := append([]byte(nil), pkt.Raw...)
	raw[12] = 0x86
	raw[13] = 0xdd // IPv6
	if _, err := (Packet{Raw: raw}).Decode(); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("ethertype: %v", err)
	}
	// Unsupported transport.
	raw = append([]byte(nil), pkt.Raw...)
	raw[EthernetHeaderLen+9] = 47 // GRE
	if _, err := (Packet{Raw: raw}).Decode(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("proto: %v", err)
	}
	// Corrupted version nibble.
	raw = append([]byte(nil), pkt.Raw...)
	raw[EthernetHeaderLen] = 0x55
	if _, err := (Packet{Raw: raw}).Decode(); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("version: %v", err)
	}
	if (Packet{Raw: raw}).Payload() != nil {
		t.Error("payload of broken packet should be nil")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	pkt := Build([6]byte{}, [6]byte{}, 0x01020304, 0x05060708, ProtoTCP, 64, 1, 2, []byte("x"))
	if !pkt.VerifyIPv4Checksum() {
		t.Fatal("fresh packet fails checksum")
	}
	pkt.Raw[EthernetHeaderLen+12]++ // corrupt source IP
	if pkt.VerifyIPv4Checksum() {
		t.Error("corruption not detected")
	}
	if (Packet{Raw: []byte{1}}).VerifyIPv4Checksum() {
		t.Error("truncated packet should fail checksum")
	}
}

func TestProfileValidate(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{Flows: 0, PayloadMax: 10},
		{Flows: 1, PayloadMin: -1, PayloadMax: 10},
		{Flows: 1, PayloadMin: 20, PayloadMax: 10},
		{Flows: 1, PayloadMax: 10, TCPFraction: 2},
		{Flows: 1, PayloadMax: 10, KeywordRate: -0.1},
		{Flows: 1, PayloadMax: 10, ZipfS: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	p := DefaultProfile()
	g1, err := NewGenerator(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if !bytes.Equal(a.Raw, b.Raw) {
			t.Fatalf("packet %d differs between identical generators", i)
		}
	}
	if g1.Count() != 100 {
		t.Errorf("Count = %d", g1.Count())
	}
	g3, err := NewGenerator(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(g1.Next().Raw, g3.Next().Raw) {
		t.Error("different seeds produced identical packets")
	}
}

func TestGeneratorPacketsAreWellFormed(t *testing.T) {
	g, err := NewGenerator(DefaultProfile(), 7)
	if err != nil {
		t.Fatal(err)
	}
	flowSet := make(map[FlowKey]bool)
	for i := 0; i < 2000; i++ {
		pkt := g.Next()
		h, err := pkt.Decode()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !pkt.VerifyIPv4Checksum() {
			t.Fatalf("packet %d: bad checksum", i)
		}
		pl := pkt.Payload()
		if len(pl) < 64 || len(pl) > 800 {
			t.Fatalf("packet %d: payload %d outside profile range", i, len(pl))
		}
		if h.Proto != ProtoTCP && h.Proto != ProtoUDP {
			t.Fatalf("packet %d: proto %d", i, h.Proto)
		}
		flowSet[h.Key()] = true
	}
	// Zipf reuse: far fewer distinct flows than packets, far more than one.
	if len(flowSet) < 10 || len(flowSet) >= 2000 {
		t.Errorf("distinct flows = %d, want Zipf-style reuse", len(flowSet))
	}
}

func TestGeneratorKeywordInjection(t *testing.T) {
	p := DefaultProfile()
	p.KeywordRate = 1.0
	g, err := NewGenerator(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for i := 0; i < 200; i++ {
		pl := string(g.Next().Payload())
		for _, kw := range p.Keywords {
			if strings.Contains(pl, kw) {
				found++
				break
			}
		}
	}
	if found < 195 {
		t.Errorf("keywords found in %d/200 packets at rate 1.0", found)
	}
	// Rate 0: filler is lowercase letters, keywords are longer words —
	// accidental hits possible but should be rare.
	p.KeywordRate = 0
	g, err = NewGenerator(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	found = 0
	for i := 0; i < 200; i++ {
		pl := string(g.Next().Payload())
		for _, kw := range p.Keywords {
			if strings.Contains(pl, kw) {
				found++
				break
			}
		}
	}
	if found > 5 {
		t.Errorf("keywords found in %d/200 packets at rate 0", found)
	}
}

func TestGeneratorUniformFlowsWhenZipfDisabled(t *testing.T) {
	p := DefaultProfile()
	p.ZipfS = 0
	p.Flows = 16
	g, err := NewGenerator(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[FlowKey]int)
	for i := 0; i < 4800; i++ {
		h, err := g.Next().Decode()
		if err != nil {
			t.Fatal(err)
		}
		counts[h.Key()]++
	}
	if len(counts) != 16 {
		t.Fatalf("flows = %d, want 16", len(counts))
	}
	for k, c := range counts {
		if c < 150 || c > 450 { // expectation 300
			t.Errorf("flow %+v count %d far from uniform", k, c)
		}
	}
}

func TestIPString(t *testing.T) {
	if got := IPString(0x0a000001); got != "10.0.0.1" {
		t.Errorf("IPString = %q", got)
	}
}

func TestMeanPayload(t *testing.T) {
	p := Profile{PayloadMin: 100, PayloadMax: 300}
	if p.MeanPayload() != 200 {
		t.Errorf("MeanPayload = %v", p.MeanPayload())
	}
}

func TestBuildRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, ttl uint8, useTCP bool, payload []byte) bool {
		proto := uint8(ProtoUDP)
		if useTCP {
			proto = ProtoTCP
		}
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		pkt := Build([6]byte{1}, [6]byte{2}, src, dst, proto, ttl, sp, dp, payload)
		h, err := pkt.Decode()
		if err != nil {
			return false
		}
		return h.SrcIP == src && h.DstIP == dst && h.SrcPort == sp && h.DstPort == dp &&
			h.TTL == ttl && h.Proto == proto && bytes.Equal(pkt.Payload(), payload) &&
			pkt.VerifyIPv4Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
