package netgen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Pcap constants (classic libpcap format, microsecond timestamps).
const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	pcapLinkEthernet = 1
	pcapSnapLen      = 65535
)

// PcapWriter streams packets into the classic libpcap capture format, so
// generated traffic can be inspected with tcpdump or Wireshark — the tools
// the paper's packet-analyzer benchmark models. Timestamps are synthetic:
// the writer spaces packets evenly at the configured rate.
type PcapWriter struct {
	w        io.Writer
	wrote    bool
	packets  uint64
	interval uint64 // microseconds between packets
}

// NewPcapWriter creates a writer that timestamps packets as if they
// arrived at ratePPS packets per second (minimum 1 µs spacing).
func NewPcapWriter(w io.Writer, ratePPS float64) (*PcapWriter, error) {
	if w == nil {
		return nil, errors.New("netgen: nil writer")
	}
	if ratePPS <= 0 {
		return nil, fmt.Errorf("netgen: rate must be positive, got %v", ratePPS)
	}
	interval := uint64(1e6 / ratePPS)
	if interval == 0 {
		interval = 1
	}
	return &PcapWriter{w: w, interval: interval}, nil
}

// writeHeader emits the global pcap header once.
func (p *PcapWriter) writeHeader() error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], pcapVersionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], pcapVersionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:24], pcapLinkEthernet)
	_, err := p.w.Write(hdr[:])
	return err
}

// WritePacket appends one packet record.
func (p *PcapWriter) WritePacket(pkt Packet) error {
	if len(pkt.Raw) == 0 {
		return errors.New("netgen: empty packet")
	}
	if !p.wrote {
		if err := p.writeHeader(); err != nil {
			return err
		}
		p.wrote = true
	}
	usec := p.packets * p.interval
	var rec [16]byte
	binary.LittleEndian.PutUint32(rec[0:4], uint32(usec/1e6)) // ts seconds
	binary.LittleEndian.PutUint32(rec[4:8], uint32(usec%1e6)) // ts microseconds
	binary.LittleEndian.PutUint32(rec[8:12], uint32(len(pkt.Raw)))
	binary.LittleEndian.PutUint32(rec[12:16], uint32(len(pkt.Raw)))
	if _, err := p.w.Write(rec[:]); err != nil {
		return err
	}
	if _, err := p.w.Write(pkt.Raw); err != nil {
		return err
	}
	p.packets++
	return nil
}

// Packets returns how many records were written.
func (p *PcapWriter) Packets() uint64 { return p.packets }

// ReadPcap parses a capture written by PcapWriter (or any classic
// little-endian pcap with Ethernet link type) back into packets — the
// round-trip half used by tests and by offline replay.
func ReadPcap(r io.Reader) ([]Packet, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("netgen: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != pcapMagic {
		return nil, errors.New("netgen: not a little-endian pcap file")
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:24]); lt != pcapLinkEthernet {
		return nil, fmt.Errorf("netgen: unsupported link type %d", lt)
	}
	var out []Packet
	for {
		var rec [16]byte
		_, err := io.ReadFull(r, rec[:])
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("netgen: record %d header: %w", len(out), err)
		}
		incl := binary.LittleEndian.Uint32(rec[8:12])
		if incl > pcapSnapLen {
			return nil, fmt.Errorf("netgen: record %d: implausible length %d", len(out), incl)
		}
		raw := make([]byte, incl)
		if _, err := io.ReadFull(r, raw); err != nil {
			return nil, fmt.Errorf("netgen: record %d body: %w", len(out), err)
		}
		out = append(out, Packet{Raw: raw})
	}
}
