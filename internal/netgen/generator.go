package netgen

import (
	"fmt"
	"math/rand"
)

// Profile configures the synthetic traffic mix.
type Profile struct {
	Flows       int      // number of distinct 5-tuple flows
	ZipfS       float64  // Zipf skew over flows (>1); 0 disables skew
	PayloadMin  int      // smallest payload in bytes
	PayloadMax  int      // largest payload in bytes (inclusive)
	TCPFraction float64  // fraction of flows using TCP (rest UDP)
	Keywords    []string // strings occasionally planted into payloads
	KeywordRate float64  // probability a packet carries a planted keyword
}

// DefaultProfile is the traffic mix used by the case study: 4096 flows with
// mild Zipf skew, payloads of 64–800 bytes, 80% TCP, and a Snort-style
// keyword planted in 10% of packets.
func DefaultProfile() Profile {
	return Profile{
		Flows:       4096,
		ZipfS:       1.2,
		PayloadMin:  64,
		PayloadMax:  800,
		TCPFraction: 0.8,
		Keywords:    DoSKeywords(),
		KeywordRate: 0.10,
	}
}

// MeanPayload returns the expected payload size in bytes.
func (p Profile) MeanPayload() float64 {
	return float64(p.PayloadMin+p.PayloadMax) / 2
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.Flows < 1:
		return fmt.Errorf("netgen: need at least one flow, got %d", p.Flows)
	case p.PayloadMin < 0 || p.PayloadMax < p.PayloadMin:
		return fmt.Errorf("netgen: bad payload range [%d, %d]", p.PayloadMin, p.PayloadMax)
	case p.TCPFraction < 0 || p.TCPFraction > 1:
		return fmt.Errorf("netgen: TCP fraction %v outside [0,1]", p.TCPFraction)
	case p.KeywordRate < 0 || p.KeywordRate > 1:
		return fmt.Errorf("netgen: keyword rate %v outside [0,1]", p.KeywordRate)
	case p.ZipfS != 0 && p.ZipfS <= 1:
		return fmt.Errorf("netgen: Zipf skew must be > 1 (or 0 to disable), got %v", p.ZipfS)
	}
	return nil
}

// flowSpec is one generated flow's immutable 5-tuple.
type flowSpec struct {
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	proto            uint8
}

// Generator produces a deterministic packet stream for a Profile.
type Generator struct {
	profile Profile
	rng     *rand.Rand
	zipf    *rand.Zipf
	flows   []flowSpec
	srcMAC  [6]byte
	dstMAC  [6]byte
	count   uint64
}

// NewGenerator builds a generator; the same (profile, seed) pair always
// yields the same packet stream.
func NewGenerator(profile Profile, seed int64) (*Generator, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Generator{
		profile: profile,
		rng:     rng,
		srcMAC:  [6]byte{0x02, 0x00, 0x5e, 0x10, 0x20, 0x30},
		dstMAC:  [6]byte{0x02, 0x00, 0x5e, 0x40, 0x50, 0x60},
	}
	if profile.ZipfS > 1 && profile.Flows > 1 {
		g.zipf = rand.NewZipf(rng, profile.ZipfS, 1, uint64(profile.Flows-1))
	}
	g.flows = make([]flowSpec, profile.Flows)
	for i := range g.flows {
		proto := uint8(ProtoUDP)
		if rng.Float64() < profile.TCPFraction {
			proto = ProtoTCP
		}
		g.flows[i] = flowSpec{
			srcIP:   0x0a000000 | uint32(rng.Intn(1<<24)), // 10.0.0.0/8
			dstIP:   0xc0a80000 | uint32(rng.Intn(1<<16)), // 192.168.0.0/16
			srcPort: uint16(1024 + rng.Intn(64000)),
			dstPort: uint16(1 + rng.Intn(1024)),
			proto:   proto,
		}
	}
	return g, nil
}

// Flows returns the number of distinct flows in the stream.
func (g *Generator) Flows() int { return len(g.flows) }

// Count returns how many packets have been generated so far.
func (g *Generator) Count() uint64 { return g.count }

// Next produces the next packet of the stream.
func (g *Generator) Next() Packet {
	g.count++
	fi := 0
	if g.zipf != nil {
		fi = int(g.zipf.Uint64())
	} else if len(g.flows) > 1 {
		fi = g.rng.Intn(len(g.flows))
	}
	f := g.flows[fi]

	size := g.profile.PayloadMin
	if g.profile.PayloadMax > g.profile.PayloadMin {
		size += g.rng.Intn(g.profile.PayloadMax - g.profile.PayloadMin + 1)
	}
	payload := make([]byte, size)
	for i := range payload {
		// Printable-ish filler keeps accidental keyword matches rare.
		payload[i] = byte('a' + g.rng.Intn(26))
	}
	if len(g.profile.Keywords) > 0 && g.rng.Float64() < g.profile.KeywordRate {
		kw := g.profile.Keywords[g.rng.Intn(len(g.profile.Keywords))]
		if len(kw) <= len(payload) {
			off := g.rng.Intn(len(payload) - len(kw) + 1)
			copy(payload[off:], kw)
		}
	}
	ttl := uint8(32 + g.rng.Intn(224))
	return Build(g.srcMAC, g.dstMAC, f.srcIP, f.dstIP, f.proto, ttl, f.srcPort, f.dstPort, payload)
}

// DoSKeywords returns a Snort-style denial-of-service keyword set — the
// role played in the paper by the Snort DoS rules (v2.9) that the
// Aho-Corasick benchmark searched for in packet payloads.
func DoSKeywords() []string {
	return []string{
		"naptha", "synflood", "landattack", "teardrop", "bonk",
		"jolt", "winnuke", "smurf", "fraggle", "pingofdeath",
		"slowloris", "rudy", "sockstress", "xmasscan", "udpstorm",
		"ackflood", "rstflood", "httpflood", "dnsamp", "ntpamp",
	}
}
