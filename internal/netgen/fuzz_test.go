package netgen

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the packet parser with arbitrary bytes: it must never
// panic, and whatever it accepts must be internally consistent.
func FuzzDecode(f *testing.F) {
	// Seed with real packets and their truncations/corruptions.
	pkt := Build([6]byte{1}, [6]byte{2}, 0x0a000001, 0xc0a80001, ProtoTCP, 64, 1234, 80, []byte("payload"))
	f.Add(pkt.Raw)
	f.Add(pkt.Raw[:20])
	udp := Build([6]byte{1}, [6]byte{2}, 1, 2, ProtoUDP, 1, 1, 2, nil)
	f.Add(udp.Raw)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, raw []byte) {
		p := Packet{Raw: raw}
		h, err := p.Decode()
		if err != nil {
			if p.Payload() != nil && len(p.Payload()) > 0 {
				t.Error("undecodable packet returned a payload")
			}
			return
		}
		// Accepted packets are self-consistent.
		if h.Length > len(raw) {
			t.Errorf("decoded length %d exceeds raw %d", h.Length, len(raw))
		}
		if h.PayloadOff > h.Length {
			t.Errorf("payload offset %d beyond length %d", h.PayloadOff, h.Length)
		}
		if h.Proto != ProtoTCP && h.Proto != ProtoUDP {
			t.Errorf("accepted unsupported proto %d", h.Proto)
		}
		_ = p.Payload()
		_ = p.VerifyIPv4Checksum()
	})
}

// FuzzReadPcap ensures arbitrary capture bytes never panic the reader.
func FuzzReadPcap(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewPcapWriter(&buf, 1000)
	if err != nil {
		f.Fatal(err)
	}
	pkt := Build([6]byte{1}, [6]byte{2}, 1, 2, ProtoUDP, 1, 1, 2, []byte("x"))
	if err := w.WritePacket(pkt); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:30])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		pkts, err := ReadPcap(bytes.NewReader(raw))
		if err != nil {
			return
		}
		for _, p := range pkts {
			if len(p.Raw) > pcapSnapLen {
				t.Errorf("accepted packet of %d bytes", len(p.Raw))
			}
		}
	})
}
