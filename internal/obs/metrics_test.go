package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this doubles as the data-race check for the CAS hot path.
func TestCounterConcurrent(t *testing.T) {
	const goroutines, perG = 16, 2000
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				c.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), float64(goroutines*perG)*1.5; got != want {
		t.Fatalf("counter = %v, want %v", got, want)
	}
}

func TestCounterRejectsDecreases(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(-1)
	c.Add(math.NaN())
	c.Add(math.Inf(1))
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	const goroutines, perG = 16, 2000
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Inc()
				g.Dec()
				g.Add(2)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(goroutines*perG*2); got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 1000
	h := newHistogram([]float64{1, 10})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(0.5) // le 1
				h.Observe(5)   // le 10
				h.Observe(50)  // +Inf
			}
		}()
	}
	wg.Wait()
	n := uint64(goroutines * perG)
	if got := h.Count(); got != 3*n {
		t.Fatalf("count = %d, want %d", got, 3*n)
	}
	if got, want := h.Sum(), float64(n)*(0.5+5+50); got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if got := h.counts[0].Load(); got != n {
		t.Fatalf("bucket le=1 count %d, want %d", got, n)
	}
	if got := h.inf.Load(); got != n {
		t.Fatalf("+Inf bucket count %d, want %d", got, n)
	}
}

// TestNilSafety is the zero-overhead-when-disabled contract: nothing may
// panic when observability is off.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	g.Inc()
	g.Dec()
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed something")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("y", "") != nil || r.Histogram("z", "", nil) != nil {
		t.Fatal("nil registry handed out a live instrument")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	Emit(nil, "anything", F("k", "v"))
	if MultiSink(nil, nil) != nil {
		t.Fatal("MultiSink of nils is not nil")
	}
}

func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "hits", L("worker", "0"))
	b := r.Counter("hits_total", "hits", L("worker", "0"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	other := r.Counter("hits_total", "hits", L("worker", "1"))
	if a == other {
		t.Fatal("distinct labels share a counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("hits_total", "oops")
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("draws_total", "completed draws").Add(42)
	r.Counter("busy_seconds_total", "busy time", L("worker", "0")).Add(1.5)
	r.Counter("busy_seconds_total", "busy time", L("worker", "1")).Add(2.5)
	r.Gauge("upb", "estimated optimum").Set(1.25e6)
	h := r.Histogram("lag", "commit lag", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP draws_total completed draws
# TYPE draws_total counter
draws_total 42
# HELP busy_seconds_total busy time
# TYPE busy_seconds_total counter
busy_seconds_total{worker="0"} 1.5
busy_seconds_total{worker="1"} 2.5
# HELP upb estimated optimum
# TYPE upb gauge
upb 1.25e+06
# HELP lag commit lag
# TYPE lag histogram
lag_bucket{le="1"} 1
lag_bucket{le="10"} 2
lag_bucket{le="+Inf"} 3
lag_sum 103.5
lag_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("errs_total", "", L("cause", "read \"x\"\nfailed")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `errs_total{cause="read \"x\"\nfailed"} 1`) {
		t.Fatalf("labels not escaped:\n%s", b.String())
	}
}

func TestLogSink(t *testing.T) {
	var b strings.Builder
	s := &LogSink{W: &b}
	Emit(s, "retry", F("attempt", 2), F("error", "broken pipe detected"))
	if got, want := b.String(), "retry attempt=2 error=\"broken pipe detected\"\n"; got != want {
		t.Fatalf("log line = %q, want %q", got, want)
	}
}

func TestCollectorAndMultiSink(t *testing.T) {
	var a, b CollectorSink
	s := MultiSink(&a, nil, &b)
	Emit(s, "quarantine", F("attempts", 3))
	Emit(s, "retry")
	if a.Count("quarantine") != 1 || b.Count("quarantine") != 1 || a.Count("retry") != 1 {
		t.Fatalf("multi sink did not fan out: %v / %v", a.Events(), b.Events())
	}
	if got := a.Events()[0].Field("attempts"); got != 3 {
		t.Fatalf("field attempts = %v, want 3", got)
	}
	if a.Events()[0].Field("missing") != nil {
		t.Fatal("missing field is non-nil")
	}
}

func TestHTTPHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "requests").Add(7)
	unhealthy := false
	mux := Mux(r, func() error {
		if unhealthy {
			return errDown
		}
		return nil
	}, func() any { return map[string]string{"benchmark": "IPFwd-L1"} })

	srv := httptest.NewServer(mux)
	defer srv.Close()

	body, ct, code := httpGet(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, "requests_total 7") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	body, ct, code = httpGet(t, srv.URL+"/healthz")
	if code != 200 || !strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, "IPFwd-L1") {
		t.Fatalf("/healthz = %d %q (%s)", code, body, ct)
	}

	unhealthy = true
	body, _, code = httpGet(t, srv.URL+"/healthz")
	if code != 503 || !strings.Contains(body, "testbed down") {
		t.Fatalf("unhealthy /healthz = %d %q", code, body)
	}
}
