package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves reg in Prometheus text exposition format.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
}

// Health is what /healthz reports.
type Health struct {
	Status string `json:"status"` // "ok" or "unhealthy"
	Error  string `json:"error,omitempty"`
	Detail any    `json:"detail,omitempty"`
}

// HealthHandler serves a JSON health report: 200 {"status":"ok"} while
// check returns nil, 503 with the error otherwise. A nil check always
// reports healthy (the process answering is the health signal). detail,
// if non-nil, is invoked per request and embedded verbatim — identity
// info like benchmark name, topology and uptime belongs there.
func HealthHandler(check func() error, detail func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := Health{Status: "ok"}
		code := http.StatusOK
		if check != nil {
			if err := check(); err != nil {
				h.Status = "unhealthy"
				h.Error = err.Error()
				code = http.StatusServiceUnavailable
			}
		}
		if detail != nil {
			h.Detail = detail()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(h)
	})
}

// Mux wires the conventional observability endpoints — /metrics
// (Prometheus text format) and /healthz (JSON) — onto one handler,
// ready for http.Serve on whatever listener the command owns.
func Mux(reg *Registry, check func() error, detail func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/healthz", HealthHandler(check, detail))
	return mux
}
