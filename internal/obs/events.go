package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Field is one key/value of a structured event.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured occurrence inside the measurement stack — a
// retry, a quarantine, a reconnect, an estimation round. Names are
// snake_case and stable; DESIGN.md §9 catalogs them.
type Event struct {
	Name   string
	Fields []Field
}

// Field returns the value for key, or nil.
func (e Event) Field(key string) any {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value
		}
	}
	return nil
}

// EventSink receives structured events. Implementations must be safe for
// concurrent use and must not block: sinks run inline on measurement
// paths (the sequencing is what makes events trustworthy), so a slow sink
// slows the campaign.
type EventSink interface {
	Emit(Event)
}

// Emit sends an event to s, tolerating a nil sink. Hot paths should
// still guard with `if s != nil` before building fields so a disabled
// sink costs no allocation.
func Emit(s EventSink, name string, fields ...Field) {
	if s == nil {
		return
	}
	s.Emit(Event{Name: name, Fields: fields})
}

// FuncSink adapts a function to EventSink.
type FuncSink func(Event)

// Emit implements EventSink.
func (f FuncSink) Emit(e Event) { f(e) }

// MultiSink fans events out to every non-nil sink. It returns nil when
// no sink remains, so callers keep the cheap nil-disables contract.
func MultiSink(sinks ...EventSink) EventSink {
	var live []EventSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []EventSink

func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// LogSink writes one logfmt-style line per event ("name key=value ...")
// to W, serializing concurrent emits.
type LogSink struct {
	W io.Writer

	mu sync.Mutex
}

// Emit implements EventSink.
func (l *LogSink) Emit(e Event) {
	var b strings.Builder
	b.WriteString(e.Name)
	for _, f := range e.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(formatField(f.Value))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.W, b.String())
}

func formatField(v any) string {
	s, ok := v.(string)
	if !ok {
		if sg, isStringer := v.(fmt.Stringer); isStringer {
			s = sg.String()
		} else if err, isErr := v.(error); isErr {
			s = err.Error()
		} else {
			return fmt.Sprint(v)
		}
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	if s == "" {
		return `""`
	}
	return s
}

// CollectorSink buffers events for tests and status displays. Safe for
// concurrent use.
type CollectorSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements EventSink.
func (c *CollectorSink) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything collected so far.
func (c *CollectorSink) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns how many events with the given name were collected.
func (c *CollectorSink) Count(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Name == name {
			n++
		}
	}
	return n
}
