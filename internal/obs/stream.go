package obs

// StreamMetrics publishes the live state of the streaming tail estimator
// (evt.StreamEstimator): the per-commit monotone quantities — committed
// observations, best observed, exceedances above the current threshold
// and their ECDF mass — and the headline numbers of the last scheduled
// refit (UPB point estimate, confidence-interval width, refit count).
// Together with the campaign gauges this is what makes a long campaign's
// converging optimum visible on /metrics while it runs, instead of only
// in the final report.
//
// As with every bundle, a nil registry yields a nil bundle, nil bundles
// are skipped at the recording site, and recording never influences the
// campaign.
type StreamMetrics struct {
	Observed        *Gauge
	Best            *Gauge
	UPBPoint        *Gauge
	UPBCIWidth      *Gauge
	TailExceedances *Gauge
	TailMass        *Gauge
	RefitCount      *Gauge
}

// NewStreamMetrics registers the streaming-estimator series on r; a nil
// registry yields a nil (disabled) bundle.
func NewStreamMetrics(r *Registry) *StreamMetrics {
	if r == nil {
		return nil
	}
	return &StreamMetrics{
		Observed:        r.Gauge("optassign_stream_observed", "Committed tail-eligible observations in the streaming estimator."),
		Best:            r.Gauge("optassign_stream_best_observed", "Best committed observation in the streaming estimator."),
		UPBPoint:        r.Gauge("optassign_stream_upb_point", "Streaming UPB point estimate from the last scheduled refit."),
		UPBCIWidth:      r.Gauge("optassign_stream_upb_ci_width", "Width of the streaming UPB confidence interval (+Inf while the tail cannot be bounded)."),
		TailExceedances: r.Gauge("optassign_stream_tail_exceedances", "Observations above the current POT threshold, updated per commit."),
		TailMass:        r.Gauge("optassign_stream_tail_mass", "ECDF mass above the current POT threshold (exceedances / observations)."),
		RefitCount:      r.Gauge("optassign_stream_refit_count", "Full refits (threshold scan + MLE + Wilks CI) completed."),
	}
}
