// Package obs is the repo's observability layer: a dependency-free
// metrics registry (counters, gauges, histograms) plus a structured
// event-sink contract, with Prometheus text-format exposition over HTTP.
//
// A measurement campaign is hours of testbed time (§5.4); once it runs
// on a farm of remote testbeds behind retries and failover, operators
// need to see retries, quarantines, worker utilization and ÛPB
// convergence while the campaign runs, not in a post-mortem.
//
// Two rules shape the design:
//
//  1. Zero overhead when disabled. Every instrument is nil-safe — a
//     method on a nil *Counter, *Gauge, *Histogram or a nil *Registry is
//     a no-op — so instrumented code paths pay one nil check and no
//     allocation when nobody is watching. Event emission sites must
//     guard with `if sink != nil` before building fields.
//  2. No influence on the campaign. Instruments only observe; they
//     never touch the RNG, the draw order or the commit sequence, so
//     the deterministic-equivalence guarantee (journal bytes identical
//     across worker counts) holds with instrumentation on or off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "worker", Value: "3"}.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing float64. All methods are atomic
// and nil-safe: a nil Counter silently discards updates.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by delta. Negative or non-finite deltas are
// ignored — a counter only goes up.
func (c *Counter) Add(delta float64) {
	if c == nil || delta <= 0 || math.IsNaN(delta) || math.IsInf(delta, 1) {
		return
	}
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current total; 0 for a nil counter.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 that can go up and down. All methods are atomic and
// nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value; 0 for a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed cumulative buckets, Prometheus
// style. Observations and exposition may race freely; a scrape sees a
// consistent-enough snapshot (bucket counts may trail the total count by
// in-flight observations, never the reverse by more than the race
// window). All methods are nil-safe.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    Counter // reuse the CAS float accumulator
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sum.forceAdd(v) // sums may include zero or negative observations
	h.count.Add(1)
}

// forceAdd adds delta without Counter's monotonicity guard, for the
// histogram sum, which may include zero or negative observations.
func (c *Counter) forceAdd(delta float64) {
	if delta == 0 || math.IsNaN(delta) {
		return
	}
	for {
		old := c.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns how many values were observed; 0 for a nil histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 for a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// DurationBuckets are exposition bounds suited to measurement latencies:
// 1 ms up to ~30 s (one §5.4 testbed measurement is ~1.5 s).
func DurationBuckets() []float64 {
	return []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instrument of a family.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	series     []*series
}

// Registry holds instruments and renders them in Prometheus text format.
// A nil *Registry hands out nil instruments, so a subsystem constructed
// without observability runs uninstrumented at no cost. Registration
// takes a lock; the instruments themselves are lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func labelsKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// register returns the family's series for labels, creating both as
// needed. It panics when name is reused with a different kind — that is
// a programming error no campaign should run with.
func (r *Registry) register(kind metricKind, name, help string, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	key := labelsKey(labels)
	for _, s := range f.series {
		if labelsKey(s.labels) == key {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.series = append(f.series, s)
	return s
}

// Counter registers (or finds) a counter. Nil-safe: a nil registry
// returns a nil instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.register(kindCounter, name, help, labels)
	if s.c == nil {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or finds) a gauge. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.register(kindGauge, name, help, labels)
	if s.g == nil {
		s.g = &Gauge{}
	}
	return s.g
}

// Histogram registers (or finds) a histogram with the given bucket upper
// bounds (+Inf is implicit). Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.register(kindHistogram, name, help, labels)
	if s.h == nil {
		s.h = newHistogram(bounds)
	}
	return s.h
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		// Prometheus label escaping: only \, " and newline, not Go %q.
		fmt.Fprintf(b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), families in registration order.
// Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(s.c.Value()))
				b.WriteByte('\n')
			case kindGauge:
				b.WriteString(f.name)
				writeLabels(&b, s.labels)
				b.WriteByte(' ')
				b.WriteString(formatValue(s.g.Value()))
				b.WriteByte('\n')
			case kindHistogram:
				h := s.h
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(&b, s.labels, L("le", formatValue(bound)))
					fmt.Fprintf(&b, " %d\n", cum)
				}
				cum += h.inf.Load()
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(&b, s.labels, L("le", "+Inf"))
				fmt.Fprintf(&b, " %d\n", cum)
				fmt.Fprintf(&b, "%s_sum", f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %s\n", formatValue(h.Sum()))
				fmt.Fprintf(&b, "%s_count", f.name)
				writeLabels(&b, s.labels)
				fmt.Fprintf(&b, " %d\n", h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
