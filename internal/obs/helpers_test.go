package obs

import (
	"errors"
	"io"
	"net/http"
	"testing"
)

var errDown = errors.New("testbed down")

func httpGet(t *testing.T, url string) (body, contentType string, status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), resp.Header.Get("Content-Type"), resp.StatusCode
}
