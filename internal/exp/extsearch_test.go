package exp

import (
	"errors"
	"testing"

	"optassign/internal/core"
	"optassign/internal/search"
)

// TestSearchStrategiesHonorLossPromiseOnRealPopulation closes the loop the
// same way capture_test.go does for §3.1: on the exhaustively-enumerated
// 6-thread IPFwd-intadd population the true optimum is known, so the §5.3
// stopping promise is checkable against ground truth per strategy. Every
// tail-safe strategy that stops satisfied must have realized a loss within
// the promised bound — the strategy changes how draws are generated, never
// what the certificate means.
func TestSearchStrategiesHonorLossPromiseOnRealPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("enumerates the population and runs a campaign per strategy")
	}
	env := NewEnv(1)
	fig3, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	trueOpt := fig3.ECDF.Max()

	tb, err := env.Testbed("IPFwd-intadd", Figure1Instances)
	if err != nil {
		t.Fatal(err)
	}
	const promise = 4.0
	for _, name := range search.Names {
		strat, err := search.New(name, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.IterConfig{
			Topo:          tb.Machine.Topo,
			Tasks:         tb.TaskCount(),
			AcceptLossPct: promise,
			Ninit:         600,
			Ndelta:        150,
			MaxSamples:    4000,
			Seed:          env.Seed,
			Strategy:      strat,
		}
		res, err := core.Iterate(cfg, core.Runner(tb))
		if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
			t.Fatalf("%s: %v", name, err)
		}
		realized := (trueOpt - res.Best.Perf) / trueOpt * 100
		t.Logf("%s: satisfied=%t samples=%d best=%.6g realized loss %.3f%%",
			name, res.Satisfied, res.Samples, res.Best.Perf, realized)
		if res.Satisfied && realized > promise {
			t.Errorf("%s stopped satisfied but realized loss %.3f%% breaks the %.1f%% promise",
				name, realized, promise)
		}
		if !strat.TailSafe() {
			continue
		}
		// Tail-safe strategies must actually converge on this easy
		// population within the budget — a strategy that stalls here is
		// broken, not just unlucky.
		if !res.Satisfied {
			t.Errorf("tail-safe strategy %s exhausted the %d-sample budget without satisfying the promise", name, cfg.MaxSamples)
		}
	}
}
