package exp

import (
	"fmt"
	"io"
	"math"

	"optassign/internal/core"
	"optassign/internal/evt"
)

// AblationCell is one (rule/estimator/interval) configuration's outcome on
// a common sample, against the reference configuration.
type AblationCell struct {
	Study    string // "threshold", "estimator" or "interval"
	Variant  string
	Optimal  float64 // estimated optimal performance
	Lo, Hi   float64 // confidence interval (NaN when not applicable)
	Xi       float64 // fitted shape
	Exceed   int     // exceedances used
	Failed   bool    // configuration could not produce an estimate
	FailNote string
}

// AblationStudy exercises the design decisions DESIGN.md §5 calls out, all
// on one shared 5000-measurement IPFwd-L1 sample:
//
//   - threshold rule: fit-scored scan (default) vs plain 5% cap vs
//     mean-excess linearity scan;
//   - tail estimator: maximum likelihood vs method of moments vs
//     probability-weighted moments;
//   - interval construction: Wilks likelihood ratio vs parametric
//     bootstrap.
func AblationStudy(env *Env) ([]AblationCell, error) {
	rs, err := env.Sample("IPFwd-L1", 5000)
	if err != nil {
		return nil, err
	}
	perfs := core.Perfs(rs)
	var cells []AblationCell

	// --- Threshold rules ------------------------------------------------
	for _, rule := range []struct {
		name string
		rule evt.ThresholdRule
	}{
		{"auto (fit-scored scan)", evt.RuleAuto},
		{"plain 5% cap", evt.RuleMaxFraction},
		{"mean-excess linearity", evt.RuleLinearityScan},
	} {
		cell := AblationCell{Study: "threshold", Variant: rule.name, Lo: math.NaN(), Hi: math.NaN()}
		rep, err := evt.Analyze(perfs, evt.POTOptions{Threshold: evt.ThresholdOptions{Rule: rule.rule}})
		if err != nil {
			cell.Failed, cell.FailNote = true, err.Error()
		} else {
			cell.Optimal, cell.Lo, cell.Hi = rep.UPB.Point, rep.UPB.Lo, rep.UPB.Hi
			cell.Xi, cell.Exceed = rep.Fit.GPD.Xi, rep.Fit.Exceedances
		}
		cells = append(cells, cell)
	}

	// --- Estimators on the default threshold's exceedances ---------------
	thr, err := evt.SelectThreshold(perfs, evt.ThresholdOptions{})
	if err != nil {
		return nil, err
	}
	for _, est := range []struct {
		name string
		fit  func([]float64) (evt.Fit, error)
	}{
		{"maximum likelihood", evt.FitGPD},
		{"method of moments", evt.FitGPDMoments},
		{"probability-weighted moments", evt.FitGPDPWM},
	} {
		cell := AblationCell{Study: "estimator", Variant: est.name, Lo: math.NaN(), Hi: math.NaN()}
		fit, err := est.fit(thr.Exceedances)
		if err != nil {
			cell.Failed, cell.FailNote = true, err.Error()
			cells = append(cells, cell)
			continue
		}
		cell.Xi, cell.Exceed = fit.GPD.Xi, fit.Exceedances
		upb, err := evt.UPBPoint(thr.U, fit.GPD)
		if err != nil {
			cell.Failed, cell.FailNote = true, err.Error()
		} else {
			cell.Optimal = upb
		}
		cells = append(cells, cell)
	}

	// --- Interval constructions ------------------------------------------
	fit, err := evt.FitGPD(thr.Exceedances)
	if err != nil {
		return nil, err
	}
	point, err := evt.UPBPoint(thr.U, fit.GPD)
	if err != nil {
		return nil, err
	}
	wilks, err := evt.UPBConfidenceInterval(thr.U, thr.Exceedances, fit, 0.05)
	if err != nil {
		return nil, err
	}
	cells = append(cells, AblationCell{
		Study: "interval", Variant: "Wilks likelihood ratio",
		Optimal: point, Lo: wilks.Lo, Hi: wilks.Hi, Xi: fit.GPD.Xi, Exceed: fit.Exceedances,
	})
	boot, err := evt.BootstrapUPB(thr.U, thr.Exceedances, fit, evt.BootstrapOptions{Replicates: 400, Seed: env.Seed})
	if err != nil {
		return nil, err
	}
	cells = append(cells, AblationCell{
		Study: "interval", Variant: "parametric bootstrap (400 reps)",
		Optimal: point, Lo: boot.Lo, Hi: boot.Hi, Xi: fit.GPD.Xi, Exceed: fit.Exceedances,
	})
	return cells, nil
}

// PrintAblationStudy renders the ablation table.
func PrintAblationStudy(w io.Writer, cells []AblationCell) {
	fmt.Fprintln(w, "Ablation: design decisions on a shared IPFwd-L1 sample (n=5000)")
	fmt.Fprintf(w, "%-10s %-30s %12s %24s %8s %7s\n", "study", "variant", "estimate", "0.95 interval", "ξ̂", "exceed")
	for _, c := range cells {
		if c.Failed {
			fmt.Fprintf(w, "%-10s %-30s %12s %24s\n", c.Study, c.Variant, "failed", c.FailNote)
			continue
		}
		interval := "n/a"
		if !math.IsNaN(c.Lo) {
			hi := fmt.Sprintf("%.5g", c.Hi)
			if math.IsInf(c.Hi, 1) {
				hi = "unbounded"
			}
			interval = fmt.Sprintf("[%.5g, %s]", c.Lo, hi)
		}
		fmt.Fprintf(w, "%-10s %-30s %12.5g %24s %8.3f %7d\n",
			c.Study, c.Variant, c.Optimal, interval, c.Xi, c.Exceed)
	}
}
