package exp

import (
	"io"
	"math"

	"optassign/internal/core"
)

// Figure2Pcts are the best-performing percentages the paper plots.
var Figure2Pcts = []float64{1, 2, 5, 10, 25}

// Figure2Curve is one P% series of Figure 2.
type Figure2Curve struct {
	TopPct float64
	Points []core.CapturePoint
}

// Figure2 evaluates the §3.1 capture-probability formula over sample sizes
// 1..10000 (log-spaced) for P = 1, 2, 5, 10 and 25%.
func Figure2() ([]Figure2Curve, error) {
	var ns []int
	for i := 0; i <= 40; i++ {
		n := int(math.Round(math.Pow(10, float64(i)/10)))
		if len(ns) == 0 || n != ns[len(ns)-1] {
			ns = append(ns, n)
		}
	}
	curves := make([]Figure2Curve, 0, len(Figure2Pcts))
	for _, pct := range Figure2Pcts {
		pts, err := core.CaptureCurve(pct, ns)
		if err != nil {
			return nil, err
		}
		curves = append(curves, Figure2Curve{TopPct: pct, Points: pts})
	}
	return curves, nil
}

// PrintFigure2 renders the probability curves on a log-x ASCII plot.
func PrintFigure2(w io.Writer, curves []Figure2Curve) {
	series := make([]Series, 0, len(curves))
	for _, c := range curves {
		s := Series{Name: figure2Label(c.TopPct)}
		for _, p := range c.Points {
			s.Xs = append(s.Xs, math.Log10(float64(p.N)))
			s.Ys = append(s.Ys, p.Prob)
		}
		series = append(series, s)
	}
	PlotXY(w, "Figure 2: P(sample contains a top-P% assignment) vs log10(sample size)", series, 72, 18)
}

func figure2Label(pct float64) string {
	switch pct {
	case 1:
		return "P=1%"
	case 2:
		return "P=2%"
	case 5:
		return "P=5%"
	case 10:
		return "P=10%"
	case 25:
		return "P=25%"
	default:
		return "P=?"
	}
}
