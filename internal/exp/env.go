package exp

import (
	"fmt"
	"math/rand"
	"sync"

	"optassign/internal/apps"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
)

// CaseStudyInstances is the number of simultaneously running benchmark
// instances in the case study: eight (24 threads), the NIU DMA-channel
// limit described in §5.
const CaseStudyInstances = 8

// SuiteNames lists the five case-study benchmarks in the order the paper's
// figures present them.
var SuiteNames = []string{"Aho-Corasick", "IPFwd-L1", "IPFwd-Mem", "Packet-analyzer", "Stateful"}

// Env carries the shared state of a paper-reproduction run: the simulated
// testbeds and a memoized random-assignment sample per benchmark, so
// Figures 10, 11 and 12 analyze prefixes of one common sample exactly like
// consecutive experiments on one machine would.
type Env struct {
	Seed    int64
	Profile netgen.Profile
	// Resilience, when set, wraps every campaign measurement in a
	// core.ResilientRunner with this policy (retry + backoff + per-attempt
	// timeout). Pointless against the in-process simulator, essential when
	// the same experiments drive flaky real hardware; cmd/paperbench
	// exposes it as -timeout/-retries.
	Resilience *core.ResilientConfig
	// Cache, when set, memoizes measurements by canonical assignment class
	// (keyed per testbed identity, so one cache safely serves all five
	// benchmarks). Sound here because the simulated testbeds are
	// class-deterministic: symmetric assignments measure identically, so
	// the memoized samples are bit-identical to uncached ones.
	Cache *core.Cache

	mu       sync.Mutex
	testbeds map[string]*netdps.Testbed
	samples  map[string][]core.SampleResult
}

// NewEnv creates an environment with the default traffic profile.
func NewEnv(seed int64) *Env {
	return &Env{
		Seed:     seed,
		Profile:  netgen.DefaultProfile(),
		testbeds: make(map[string]*netdps.Testbed),
		samples:  make(map[string][]core.SampleResult),
	}
}

// Testbed returns (building on first use) the benchmark's testbed with the
// given instance count.
func (e *Env) Testbed(name string, instances int) (*netdps.Testbed, error) {
	key := fmt.Sprintf("%s/%d", name, instances)
	e.mu.Lock()
	defer e.mu.Unlock()
	if tb, ok := e.testbeds[key]; ok {
		return tb, nil
	}
	app, err := apps.ByName(name, e.Profile)
	if err != nil {
		return nil, err
	}
	tb, err := netdps.NewTestbed(app, instances,
		netdps.WithSeed(e.Seed), netdps.WithProfile(e.Profile))
	if err != nil {
		return nil, err
	}
	e.testbeds[key] = tb
	return tb, nil
}

// Sample returns the first n measured random assignments of the benchmark's
// case-study testbed (8 instances), extending the memoized sample if it is
// not long enough yet.
func (e *Env) Sample(name string, n int) ([]core.SampleResult, error) {
	tb, err := e.Testbed(name, CaseStudyInstances)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	have := e.samples[name]
	if len(have) < n {
		// Extend deterministically: the RNG is re-seeded and fast-forwarded
		// by regenerating the prefix, so Sample(name, 1000) is always a
		// prefix of Sample(name, 5000).
		rng := rand.New(rand.NewSource(e.Seed*7919 + int64(len(name))))
		runner := core.Runner(tb)
		if e.Resilience != nil {
			runner = core.NewResilientRunner(runner, *e.Resilience)
		}
		if e.Cache != nil {
			runner = core.NewCachedRunner(runner, e.Cache, tb.Identity())
		}
		all, err := core.CollectSample(rng, tb.Machine.Topo, tb.TaskCount(), n, runner)
		if err != nil {
			return nil, err
		}
		// The regenerated prefix must match what we handed out before.
		have = all
		e.samples[name] = have
	}
	return have[:n], nil
}
