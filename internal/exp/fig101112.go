package exp

import (
	"fmt"
	"io"

	"optassign/internal/core"
	"optassign/internal/evt"
)

// ResultSampleSizes are the sample sizes of the §5 estimation studies.
var ResultSampleSizes = []int{1000, 2000, 5000}

// EstimateCell is one (benchmark, sample size) measurement of the Figures
// 10–12 family.
type EstimateCell struct {
	Benchmark string
	N         int
	BestObs   float64 // Figure 10: best assignment captured in the sample
	Optimal   float64 // Figure 11: estimated optimal performance (point)
	Lo, Hi    float64 // Figure 11: 0.95 confidence interval
	Headroom  float64 // Figure 12: estimated improvement potential, %
	// HeadroomHi is the improvement implied by the CI's upper bound — the
	// error bar of Figure 12.
	HeadroomHi float64
	// Estimable is false when the sample's tail fit gave ξ̂ >= 0 and the
	// optimum could not be bounded at this sample size.
	Estimable bool
}

// EstimationStudy runs the §5.1/§5.2 analysis for every suite benchmark and
// every sample size: collect the random sample, record the best observed
// assignment and estimate the optimal performance with its confidence
// interval. Figures 10, 11 and 12 are different projections of these cells.
func EstimationStudy(env *Env) ([]EstimateCell, error) {
	var cells []EstimateCell
	for _, name := range SuiteNames {
		for _, n := range ResultSampleSizes {
			rs, err := env.Sample(name, n)
			if err != nil {
				return nil, err
			}
			perfs := core.Perfs(rs)
			cell := EstimateCell{Benchmark: name, N: n, BestObs: rs[core.Best(rs)].Perf}
			est, err := core.EstimateOptimal(perfs, evt.POTOptions{})
			switch {
			case err == nil:
				cell.Estimable = true
				cell.Optimal = est.Optimal
				cell.Lo, cell.Hi = est.Lo, est.Hi
				cell.Headroom = est.HeadroomPct
				cell.HeadroomHi = est.HeadroomHiPct
			case isUnbounded(err):
				// Leave the cell marked not estimable; Figure 11/12 show a
				// gap at this sample size, as a real experimenter would.
			default:
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func isUnbounded(err error) bool {
	for e := err; e != nil; {
		if e == evt.ErrUnboundedTail {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}

// PrintFigure10 renders the best-in-sample performance bars and the
// headline check: going from 1000 to 5000 samples barely improves the
// captured best assignment.
func PrintFigure10(w io.Writer, cells []EstimateCell) {
	groups := groupCells(cells, func(c EstimateCell) Bar {
		return Bar{Name: fmt.Sprintf("n=%d", c.N), Value: c.BestObs}
	})
	PlotBars(w, "Figure 10: performance of the best task assignment in the random sample", "PPS", groups, 40)
	for _, name := range SuiteNames {
		first, last := cellFor(cells, name, 1000), cellFor(cells, name, 5000)
		if first == nil || last == nil {
			continue
		}
		gain := (last.BestObs - first.BestObs) / first.BestObs * 100
		fmt.Fprintf(w, "%s: best-in-sample gain 1000→5000 = %.2f%%\n", name, gain)
	}
}

// PrintFigure11 renders the estimated optimal performance with its 0.95
// confidence intervals.
func PrintFigure11(w io.Writer, cells []EstimateCell) {
	groups := groupCells(cells, func(c EstimateCell) Bar {
		if !c.Estimable {
			return Bar{Name: fmt.Sprintf("n=%d (no est.)", c.N)}
		}
		return Bar{Name: fmt.Sprintf("n=%d", c.N), Value: c.Optimal, ErrLo: c.Lo, ErrHi: c.Hi}
	})
	PlotBars(w, "Figure 11: estimated optimal system performance (0.95 CI)", "PPS", groups, 40)
}

// PrintFigure12 renders the estimated improvement potential of the best
// observed assignment.
func PrintFigure12(w io.Writer, cells []EstimateCell) {
	groups := groupCells(cells, func(c EstimateCell) Bar {
		if !c.Estimable {
			return Bar{Name: fmt.Sprintf("n=%d (no est.)", c.N)}
		}
		return Bar{Name: fmt.Sprintf("n=%d", c.N), Value: c.Headroom, ErrHi: c.HeadroomHi}
	})
	PlotBars(w, "Figure 12: estimated possible performance improvement of the best sampled assignment", "%", groups, 40)
}

func groupCells(cells []EstimateCell, mk func(EstimateCell) Bar) []BarGroup {
	var groups []BarGroup
	for _, name := range SuiteNames {
		g := BarGroup{Label: name}
		for _, c := range cells {
			if c.Benchmark == name {
				g.Bars = append(g.Bars, mk(c))
			}
		}
		groups = append(groups, g)
	}
	return groups
}

func cellFor(cells []EstimateCell, name string, n int) *EstimateCell {
	for i := range cells {
		if cells[i].Benchmark == name && cells[i].N == n {
			return &cells[i]
		}
	}
	return nil
}
