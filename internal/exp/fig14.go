package exp

import (
	"errors"
	"fmt"
	"io"

	"optassign/internal/core"
)

// Figure14Losses are the acceptable performance losses of the case study.
var Figure14Losses = []float64{2.5, 5, 10}

// Figure14Cell is the sample budget the iterative algorithm needed for one
// (benchmark, acceptable loss) pair.
type Figure14Cell struct {
	Benchmark string
	LossPct   float64
	Samples   int
	Satisfied bool
	FinalLoss float64 // headroom at termination, %
	BestPPS   float64
}

// Figure14 runs the §5.3 iterative algorithm (Ninit=1000, Ndelta=100, 0.95
// confidence) for every benchmark at acceptable losses of 2.5%, 5% and
// 10%, reporting the number of random assignments each run needed.
func Figure14(env *Env) ([]Figure14Cell, error) {
	var cells []Figure14Cell
	for _, name := range SuiteNames {
		tb, err := env.Testbed(name, CaseStudyInstances)
		if err != nil {
			return nil, err
		}
		for _, loss := range Figure14Losses {
			cfg := core.IterConfig{
				Topo:          tb.Machine.Topo,
				Tasks:         tb.TaskCount(),
				AcceptLossPct: loss,
				Ninit:         1000,
				Ndelta:        100,
				MaxSamples:    12000,
				Seed:          env.Seed,
			}
			res, err := core.Iterate(cfg, tb)
			if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
				return nil, fmt.Errorf("exp: %s at %.1f%%: %w", name, loss, err)
			}
			cells = append(cells, Figure14Cell{
				Benchmark: name,
				LossPct:   loss,
				Samples:   res.Samples,
				Satisfied: res.Satisfied,
				FinalLoss: res.Final.HeadroomHiPct,
				BestPPS:   res.Best.Perf,
			})
		}
	}
	return cells, nil
}

// PrintFigure14 renders the required-sample bars.
func PrintFigure14(w io.Writer, cells []Figure14Cell) {
	var groups []BarGroup
	for _, name := range SuiteNames {
		g := BarGroup{Label: name}
		for _, c := range cells {
			if c.Benchmark != name {
				continue
			}
			bar := Bar{Name: fmt.Sprintf("loss %.1f%%", c.LossPct), Value: float64(c.Samples)}
			if !c.Satisfied {
				bar.Name += " (budget hit)"
			}
			g.Bars = append(g.Bars, bar)
		}
		groups = append(groups, g)
	}
	PlotBars(w, "Figure 14: random task assignments needed to reach the acceptable loss", "assignments", groups, 40)
}
