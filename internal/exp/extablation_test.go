package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAblationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation study is slow")
	}
	env := NewEnv(1)
	cells, err := AblationStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 { // 3 threshold + 3 estimator + 2 interval
		t.Fatalf("cells = %d", len(cells))
	}
	byVariant := map[string]AblationCell{}
	var reference float64
	for _, c := range cells {
		byVariant[c.Study+"/"+c.Variant] = c
		if c.Study == "threshold" && strings.HasPrefix(c.Variant, "auto") {
			reference = c.Optimal
		}
	}
	if reference == 0 {
		t.Fatal("no reference estimate")
	}
	// Every successful configuration lands within 20% of the reference —
	// the method is robust to these design choices on well-behaved data.
	for _, c := range cells {
		if c.Failed || c.Optimal == 0 {
			continue
		}
		if math.Abs(c.Optimal-reference)/reference > 0.2 {
			t.Errorf("%s/%s: estimate %v far from reference %v", c.Study, c.Variant, c.Optimal, reference)
		}
	}
	// The two interval constructions both cover the point estimate.
	for _, v := range []string{"interval/Wilks likelihood ratio", "interval/parametric bootstrap (400 reps)"} {
		c, ok := byVariant[v]
		if !ok {
			t.Fatalf("missing %s", v)
		}
		if !(c.Lo <= c.Optimal) || (!math.IsInf(c.Hi, 1) && c.Hi < c.Optimal) {
			t.Errorf("%s: interval [%v, %v] vs point %v", v, c.Lo, c.Hi, c.Optimal)
		}
	}
	var buf bytes.Buffer
	PrintAblationStudy(&buf, cells)
	if !strings.Contains(buf.String(), "Ablation") || !strings.Contains(buf.String(), "bootstrap") {
		t.Error("render incomplete")
	}
}
