package exp

import (
	"fmt"
	"io"

	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/stats"
)

// Figure6Sample is the sample size of the Figure 6 study.
const Figure6Sample = 5000

// Figure6Result holds the ordered 5000-assignment sample (Fig. 6a) and its
// sample mean excess plot (Fig. 6b) for 24 threads of IPFwd-L1.
type Figure6Result struct {
	Benchmark string
	Sorted    []float64
	MeanEx    []evt.MeanExcessPoint
	Threshold evt.Threshold
}

// Figure6 reproduces the threshold-selection illustration: 5000 random
// assignments of the 24-thread IPFwd-L1 workload, sorted, with the sample
// mean excess function and the selected threshold.
func Figure6(env *Env) (Figure6Result, error) {
	const name = "IPFwd-L1"
	rs, err := env.Sample(name, Figure6Sample)
	if err != nil {
		return Figure6Result{}, err
	}
	perfs := core.Perfs(rs)
	points, err := evt.MeanExcess(perfs)
	if err != nil {
		return Figure6Result{}, err
	}
	thr, err := evt.SelectThreshold(perfs, evt.ThresholdOptions{})
	if err != nil {
		return Figure6Result{}, err
	}
	return Figure6Result{
		Benchmark: name,
		Sorted:    stats.SortedCopy(perfs),
		MeanEx:    points,
		Threshold: thr,
	}, nil
}

// PrintFigure6 renders both panels.
func PrintFigure6(w io.Writer, r Figure6Result) {
	idx := make([]float64, len(r.Sorted))
	for i := range idx {
		idx[i] = float64(i)
	}
	PlotXY(w, fmt.Sprintf("Figure 6a: ordered sample of %d task assignments (%s, 24 threads)", len(r.Sorted), r.Benchmark),
		[]Series{{Name: "sorted PPS", Xs: idx, Ys: r.Sorted}}, 72, 14)

	var us, es []float64
	for _, p := range r.MeanEx {
		us = append(us, p.U)
		es = append(es, p.E)
	}
	PlotXY(w, "Figure 6b: sample mean excess plot", []Series{{Name: "e_n(u)", Xs: us, Ys: es}}, 72, 14)
	fmt.Fprintf(w, "selected threshold u = %.6g (%d exceedances, tail linearity R² = %.3f)\n",
		r.Threshold.U, len(r.Threshold.Exceedances), r.Threshold.Linearity.R2)
}
