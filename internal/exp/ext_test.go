package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSchedulerStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("scheduler study is slow")
	}
	env := NewEnv(1)
	cells, err := SchedulerStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	const perBench = 6 // naive, linux, greedy, best-of-N, local search, optimum
	if len(cells) != len(SuiteNames)*perBench {
		t.Fatalf("cells = %d", len(cells))
	}
	byKey := map[string]SchedulerCell{}
	for _, c := range cells {
		byKey[c.Benchmark+"/"+c.Scheduler] = c
	}
	for _, name := range SuiteNames {
		naive := byKey[name+"/Naive (expected)"]
		linux := byKey[name+"/Linux-like"]
		greedy := byKey[name+"/Greedy-demand"]
		boN := byKey[name+"/Best-of-1000"]
		search := byKey[name+"/Local-search-1000"]
		opt := byKey[name+"/Estimated optimum"]

		// The motivating ordering: informed schedulers beat naive; the
		// search-based ones beat the static ones; nobody beats the
		// estimated optimum by more than estimation error.
		if !(linux.PPS > naive.PPS) {
			t.Errorf("%s: Linux-like %v not above naive %v", name, linux.PPS, naive.PPS)
		}
		if !(greedy.PPS >= linux.PPS*0.99) {
			t.Errorf("%s: greedy %v clearly below Linux-like %v", name, greedy.PPS, linux.PPS)
		}
		if !(boN.PPS >= linux.PPS) {
			t.Errorf("%s: best-of-1000 %v below Linux-like %v", name, boN.PPS, linux.PPS)
		}
		if !(search.PPS >= linux.PPS) {
			t.Errorf("%s: local search %v below its Linux-like start %v", name, search.PPS, linux.PPS)
		}
		for _, c := range []SchedulerCell{naive, linux, greedy, boN, search} {
			if c.LossPct < -2 {
				t.Errorf("%s/%s: loss %v%% — scheduler 'beat' the estimated optimum by too much",
					c.Benchmark, c.Scheduler, c.LossPct)
			}
		}
		if opt.LossPct != 0 {
			t.Errorf("%s: optimum row loss = %v", name, opt.LossPct)
		}
	}
	var buf bytes.Buffer
	PrintSchedulerStudy(&buf, cells)
	if !strings.Contains(buf.String(), "Greedy-demand") {
		t.Error("render incomplete")
	}
}

func TestPredictorStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor study is slow")
	}
	env := NewEnv(1)
	cells, err := PredictorStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(PredictorStudyBenchmarks)*len(PredictorErrorLevels) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if math.IsNaN(c.Predicted) {
			continue // estimation can legitimately fail on noisy predictions
		}
		// The integrated estimate tracks the measured one within a modest
		// multiple of the predictor's error scale.
		allowance := 5 + c.RelError*400 // percent
		if c.DeltaPct > allowance {
			t.Errorf("%s at err %.0f%%: estimates differ by %.1f%% (> %.1f%%)",
				c.Benchmark, c.RelError*100, c.DeltaPct, allowance)
		}
		// The predictor's chosen assignment is genuinely good when
		// executed for real.
		if c.PickAgreePct < 95 {
			t.Errorf("%s at err %.0f%%: predictor's pick only %.1f%% of measured best",
				c.Benchmark, c.RelError*100, c.PickAgreePct)
		}
	}
	var buf bytes.Buffer
	PrintPredictorStudy(&buf, cells)
	if !strings.Contains(buf.String(), "predicted est") {
		t.Error("render incomplete")
	}
}
