package exp

import (
	"fmt"
	"io"

	"optassign/internal/assign"
	"optassign/internal/sched"
	"optassign/internal/stats"
)

// Figure1Instances: two 3-thread pipeline instances — six threads, the
// ~1500-assignment population of the motivation study.
const Figure1Instances = 2

// Figure1Row is one benchmark's bar cluster in Figure 1.
type Figure1Row struct {
	Benchmark   string
	NaivePPS    float64 // expected performance of a random assignment
	LinuxPPS    float64 // the balanced Linux-like assignment
	OptimalPPS  float64 // true optimum from exhaustive enumeration
	Population  int     // number of distinct assignments measured
	LinuxGainPP float64 // Linux-like improvement over naive, % of naive
	NaiveGapPP  float64 // optimal headroom over naive, % of naive
	LinuxLossPP float64 // Linux-like loss vs optimal, % of optimal
}

// Figure1 reproduces the motivation study: for IPFwd-intadd and
// IPFwd-intmul, measure every distinct assignment of the 6-thread workload
// exhaustively and compare the naive and Linux-like schedulers with the
// true optimum. The paper's punchline must hold: the Linux-like scheduler's
// larger gain on intadd reflects a larger room for improvement, yet its
// loss versus the optimum is larger for intadd than for intmul.
func Figure1(env *Env) ([]Figure1Row, error) {
	rows := make([]Figure1Row, 0, 2)
	for _, name := range []string{"IPFwd-intadd", "IPFwd-intmul"} {
		tb, err := env.Testbed(name, Figure1Instances)
		if err != nil {
			return nil, err
		}
		all, err := assign.Enumerate(tb.Machine.Topo, tb.TaskCount(), 0)
		if err != nil {
			return nil, err
		}
		perfs := make([]float64, 0, len(all))
		for _, a := range all {
			p, err := tb.MeasureAnalytic(a)
			if err != nil {
				return nil, err
			}
			perfs = append(perfs, p)
		}
		linuxA, err := sched.LinuxLike{}.Assign(tb.Machine.Topo, tb.TaskCount())
		if err != nil {
			return nil, err
		}
		linux, err := tb.MeasureAnalytic(linuxA)
		if err != nil {
			return nil, err
		}
		row := Figure1Row{
			Benchmark:  name,
			NaivePPS:   stats.Mean(perfs), // a random draw's expectation
			LinuxPPS:   linux,
			OptimalPPS: stats.MustMax(perfs),
			Population: len(perfs),
		}
		row.LinuxGainPP = (row.LinuxPPS - row.NaivePPS) / row.NaivePPS * 100
		row.NaiveGapPP = (row.OptimalPPS - row.NaivePPS) / row.NaivePPS * 100
		row.LinuxLossPP = (row.OptimalPPS - row.LinuxPPS) / row.OptimalPPS * 100
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFigure1 renders the two bar clusters with the paper's derived
// percentages.
func PrintFigure1(w io.Writer, rows []Figure1Row) {
	groups := make([]BarGroup, 0, len(rows))
	for _, r := range rows {
		groups = append(groups, BarGroup{
			Label: fmt.Sprintf("%s (population %d)", r.Benchmark, r.Population),
			Bars: []Bar{
				{Name: "Naive", Value: r.NaivePPS},
				{Name: "Linux-like", Value: r.LinuxPPS},
				{Name: "Optimal", Value: r.OptimalPPS},
			},
		})
	}
	PlotBars(w, "Figure 1: naive vs Linux-like vs optimal task assignment", "PPS", groups, 40)
	for _, r := range rows {
		fmt.Fprintf(w, "%s: Linux-like gain over naive %.1f%%; optimal headroom over naive %.1f%%; Linux-like loss vs optimal %.1f%%\n",
			r.Benchmark, r.LinuxGainPP, r.NaiveGapPP, r.LinuxLossPP)
	}
}
