package exp

import (
	"fmt"
	"io"
	"math/rand"

	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/sched"
)

// SchedulerCell is one scheduler's outcome on one benchmark, with its
// distance from the estimated optimum — the evaluation §2 argues every
// scheduling proposal should report.
type SchedulerCell struct {
	Benchmark string
	Scheduler string
	PPS       float64
	// LossPct is the measured loss versus the estimated optimal system
	// performance for this workload, percent.
	LossPct float64
	// Budget is the number of measurements the scheduler consumed.
	Budget int
}

// SchedulerStudy compares every implemented assignment policy — naive,
// Linux-like, demand-aware greedy, best-of-N sampling, and local search —
// against the EVT-estimated optimal performance of each suite benchmark.
// This implements the paper's §2 position ("the evaluation of those
// proposals could significantly improve if they were also compared to the
// performance of the optimal task assignment") on our own baselines.
func SchedulerStudy(env *Env) ([]SchedulerCell, error) {
	const searchBudget = 1000
	var cells []SchedulerCell
	for _, name := range SuiteNames {
		tb, err := env.Testbed(name, CaseStudyInstances)
		if err != nil {
			return nil, err
		}
		topo := tb.Machine.Topo

		// The yardstick: estimated optimum from the shared 5000 sample.
		rs, err := env.Sample(name, 5000)
		if err != nil {
			return nil, err
		}
		est, err := core.EstimateOptimal(core.Perfs(rs), evt.POTOptions{})
		if err != nil {
			return nil, err
		}
		optimal := est.Optimal

		add := func(schedName string, pps float64, budget int) {
			cells = append(cells, SchedulerCell{
				Benchmark: name,
				Scheduler: schedName,
				PPS:       pps,
				LossPct:   (optimal - pps) / optimal * 100,
				Budget:    budget,
			})
		}

		// Naive: expected performance of one random draw.
		var naive float64
		const naiveDraws = 50
		for s := int64(0); s < naiveDraws; s++ {
			a, err := sched.Naive{Rng: rand.New(rand.NewSource(env.Seed + s))}.Assign(topo, tb.TaskCount())
			if err != nil {
				return nil, err
			}
			p, err := tb.Measure(a)
			if err != nil {
				return nil, err
			}
			naive += p / naiveDraws
		}
		add("Naive (expected)", naive, 1)

		linuxA, err := sched.LinuxLike{}.Assign(topo, tb.TaskCount())
		if err != nil {
			return nil, err
		}
		linux, err := tb.Measure(linuxA)
		if err != nil {
			return nil, err
		}
		add("Linux-like", linux, 1)

		tasks, links := tb.Tasks()
		greedyA, err := (sched.GreedyDemand{Machine: tb.Machine, Tasks: tasks, Links: links}).Assign()
		if err != nil {
			return nil, err
		}
		greedy, err := tb.Measure(greedyA)
		if err != nil {
			return nil, err
		}
		add("Greedy-demand", greedy, 1)

		bo := sched.BestOfN{N: searchBudget, Seed: env.Seed}
		_, boPerf, err := bo.Assign(topo, tb.TaskCount(), tb)
		if err != nil {
			return nil, err
		}
		add(bo.Name(), boPerf, searchBudget)

		ls := sched.LocalSearch{Budget: searchBudget, Seed: env.Seed}
		_, lsPerf, err := ls.Assign(topo, tb.TaskCount(), tb)
		if err != nil {
			return nil, err
		}
		add(ls.Name(), lsPerf, searchBudget+1)

		add("Estimated optimum", optimal, 5000)
	}
	return cells, nil
}

// PrintSchedulerStudy renders the comparison table.
func PrintSchedulerStudy(w io.Writer, cells []SchedulerCell) {
	fmt.Fprintln(w, "Extension: schedulers vs the estimated optimal performance")
	fmt.Fprintf(w, "%-16s %-20s %12s %10s %8s\n", "benchmark", "scheduler", "PPS", "loss", "budget")
	for _, c := range cells {
		fmt.Fprintf(w, "%-16s %-20s %12.5g %9.2f%% %8d\n",
			c.Benchmark, c.Scheduler, c.PPS, c.LossPct, c.Budget)
	}
}
