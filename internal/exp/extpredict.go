package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/predict"
)

// PredictorCell is one row of the §5.4 integrated-approach study: the
// optimal-performance estimate obtained from *predicted* sample values at a
// given predictor error level, compared with the measurement-based
// estimate.
type PredictorCell struct {
	Benchmark string
	RelError  float64 // the predictor's injected error half-width
	Measured  float64 // estimate from measured performance
	Predicted float64 // estimate from predicted performance
	DeltaPct  float64 // |Predicted − Measured| / Measured · 100
	// PickAgreePct is the predicted sample's best assignment measured on
	// the testbed, as a percentage of the measured sample's best — "did the
	// predictor point at an equally good assignment?".
	PickAgreePct float64
}

// PredictorStudyBenchmarks are the workloads used by the §5.4 study.
var PredictorStudyBenchmarks = []string{"IPFwd-L1", "Stateful"}

// PredictorErrorLevels are the injected predictor inaccuracies studied.
var PredictorErrorLevels = []float64{0, 0.01, 0.05}

// PredictorStudy implements the paper's §5.4 proposal: feed the statistical
// analysis with a performance predictor's output instead of measurements,
// and quantify how the accuracy of the integrated approach depends on the
// accuracy of the predictor.
func PredictorStudy(env *Env) ([]PredictorCell, error) {
	const samples = 2000
	var cells []PredictorCell
	for _, name := range PredictorStudyBenchmarks {
		tb, err := env.Testbed(name, CaseStudyInstances)
		if err != nil {
			return nil, err
		}
		measuredSample, err := env.Sample(name, samples)
		if err != nil {
			return nil, err
		}
		measuredEst, err := core.EstimateOptimal(core.Perfs(measuredSample), evt.POTOptions{})
		if err != nil {
			return nil, err
		}
		measuredBest := measuredSample[core.Best(measuredSample)].Perf

		for _, relErr := range PredictorErrorLevels {
			predictor := predict.NewHeuristic(tb, relErr, env.Seed+100)
			rng := rand.New(rand.NewSource(env.Seed * 31))
			predictedSample, err := core.CollectSample(rng, tb.Machine.Topo, tb.TaskCount(),
				samples, predict.Runner{P: predictor})
			if err != nil {
				return nil, err
			}
			cell := PredictorCell{Benchmark: name, RelError: relErr, Measured: measuredEst.Optimal}
			predictedEst, err := core.EstimateOptimal(core.Perfs(predictedSample), evt.POTOptions{})
			if err != nil {
				// ξ̂ >= 0 on the predicted tail: record the cell as failed
				// estimation (NaN) rather than aborting the study.
				cell.Predicted = math.NaN()
				cell.DeltaPct = math.NaN()
			} else {
				cell.Predicted = predictedEst.Optimal
				cell.DeltaPct = math.Abs(predictedEst.Optimal-measuredEst.Optimal) / measuredEst.Optimal * 100
			}
			// Execute the predictor's favourite assignment for real.
			pickPerf, err := tb.Measure(predictedSample[core.Best(predictedSample)].Assignment)
			if err != nil {
				return nil, err
			}
			cell.PickAgreePct = pickPerf / measuredBest * 100
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// PrintPredictorStudy renders the integrated-approach table.
func PrintPredictorStudy(w io.Writer, cells []PredictorCell) {
	fmt.Fprintln(w, "Extension (§5.4): statistical analysis over predicted instead of measured performance")
	fmt.Fprintf(w, "%-12s %10s %14s %14s %10s %12s\n",
		"benchmark", "pred.err", "measured est", "predicted est", "delta", "pick quality")
	for _, c := range cells {
		pred, delta := fmt.Sprintf("%.5g", c.Predicted), fmt.Sprintf("%.2f%%", c.DeltaPct)
		if math.IsNaN(c.Predicted) {
			pred, delta = "n/a", "n/a"
		}
		fmt.Fprintf(w, "%-12s %9.1f%% %14.5g %14s %10s %11.1f%%\n",
			c.Benchmark, c.RelError*100, c.Measured, pred, delta, c.PickAgreePct)
	}
	fmt.Fprintln(w, "(pick quality: the predictor-chosen best assignment, measured, vs the measurement-chosen best)")
}
