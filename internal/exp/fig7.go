package exp

import (
	"fmt"
	"io"

	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/stats"
)

// Figure7Result is the profile log-likelihood study: L*(UPB) around the
// point estimate, the Wilks cut line, and the resulting confidence
// interval.
type Figure7Result struct {
	Benchmark string
	UPBs      []float64
	Profile   []float64
	Cut       float64 // L(ξ̂, ÛPB) − ½·χ²₀.₉₅,₁
	Interval  evt.UPBInterval
}

// Figure7 reproduces the confidence-interval construction on the Figure 6
// sample: the profile log-likelihood is maximal at the UPB point estimate
// and the 0.95 interval collects every UPB whose profile stays above the
// chi-squared cut.
func Figure7(env *Env) (Figure7Result, error) {
	const name = "IPFwd-L1"
	rs, err := env.Sample(name, Figure6Sample)
	if err != nil {
		return Figure7Result{}, err
	}
	perfs := core.Perfs(rs)
	thr, err := evt.SelectThreshold(perfs, evt.ThresholdOptions{})
	if err != nil {
		return Figure7Result{}, err
	}
	fit, err := evt.FitGPD(thr.Exceedances)
	if err != nil {
		return Figure7Result{}, err
	}
	iv, err := evt.UPBConfidenceInterval(thr.U, thr.Exceedances, fit, 0.05)
	if err != nil {
		return Figure7Result{}, err
	}
	chi2, err := stats.Chi2Quantile1DF(0.05)
	if err != nil {
		return Figure7Result{}, err
	}
	lmax, _ := evt.ProfileLogLikelihood(thr.U, thr.Exceedances, iv.Point)

	lo := iv.Lo - (iv.Point-iv.Lo)*0.5
	hi := iv.Hi + (iv.Hi-iv.Point)*1.5
	maxObs := thr.U + stats.MustMax(thr.Exceedances)
	if lo <= maxObs {
		lo = maxObs * (1 + 1e-9)
	}
	upbs, lls := evt.ProfileCurve(thr.U, thr.Exceedances, lo, hi, 61)
	return Figure7Result{
		Benchmark: name,
		UPBs:      upbs,
		Profile:   lls,
		Cut:       lmax - chi2/2,
		Interval:  iv,
	}, nil
}

// PrintFigure7 renders the profile and the interval.
func PrintFigure7(w io.Writer, r Figure7Result) {
	cut := make([]float64, len(r.UPBs))
	for i := range cut {
		cut[i] = r.Cut
	}
	PlotXY(w, fmt.Sprintf("Figure 7: profile log-likelihood L*(UPB) (%s)", r.Benchmark),
		[]Series{
			{Name: "L*(UPB)", Xs: r.UPBs, Ys: r.Profile},
			{Name: "cut = Lmax − χ²/2", Xs: r.UPBs, Ys: cut},
		}, 72, 16)
	fmt.Fprintf(w, "UPB point estimate %.6g, 0.95 CI [%.6g, %.6g]\n",
		r.Interval.Point, r.Interval.Lo, r.Interval.Hi)
}
