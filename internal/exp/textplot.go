// Package exp regenerates every table and figure of the paper's evaluation
// on the simulated testbed: Table 1 and Figures 1–3, 4/5 (didactic POT),
// 6, 7, 10, 11, 12 and 14. Each experiment is a pure function returning
// structured rows plus a Print method rendering the same table/series the
// paper reports, so cmd/paperbench and the root-level benchmarks share one
// implementation.
package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of an XY plot.
type Series struct {
	Name string
	Xs   []float64
	Ys   []float64
}

// PlotXY renders series as a fixed-size ASCII chart. X positions are mapped
// linearly (pass log-transformed Xs for a log axis). NaN/Inf points are
// skipped.
func PlotXY(w io.Writer, title string, series []Series, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		fmt.Fprintf(w, "%s\n(no finite data)\n", title)
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := "*o+x#@%&"
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			c := int((x - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = mark
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "y: [%.4g .. %.4g]\n", minY, maxY)
	for _, row := range grid {
		fmt.Fprintf(w, "|%s|\n", row)
	}
	fmt.Fprintf(w, "x: [%.4g .. %.4g]\n", minX, maxX)
	for si, s := range series {
		fmt.Fprintf(w, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
}

// Bar is one bar of a grouped bar chart, with an optional error interval.
type Bar struct {
	Name  string
	Value float64
	ErrLo float64 // lower bound of the error bar (0 = none)
	ErrHi float64 // upper bound of the error bar (0 = none)
}

// BarGroup is one labelled cluster of bars.
type BarGroup struct {
	Label string
	Bars  []Bar
}

// PlotBars renders grouped bars as scaled text rows: one line per bar with
// a proportional run of '#' and the numeric value (plus the error interval
// when present).
func PlotBars(w io.Writer, title, unit string, groups []BarGroup, width int) {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	for _, g := range groups {
		for _, b := range g.Bars {
			v := b.Value
			if b.ErrHi > v {
				v = b.ErrHi
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if maxV <= 0 {
		maxV = 1
	}
	for _, g := range groups {
		fmt.Fprintf(w, "%s\n", g.Label)
		for _, b := range g.Bars {
			n := int(b.Value / maxV * float64(width))
			if n < 0 {
				n = 0
			}
			line := fmt.Sprintf("  %-14s %s %.4g %s", b.Name, strings.Repeat("#", n), b.Value, unit)
			if b.ErrLo != 0 || b.ErrHi != 0 {
				line += fmt.Sprintf("  [%.4g, %.4g]", b.ErrLo, b.ErrHi)
			}
			fmt.Fprintln(w, line)
		}
	}
}
