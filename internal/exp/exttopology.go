package exp

import (
	"fmt"
	"io"

	"optassign/internal/apps"
	"optassign/internal/proc"
	"optassign/internal/t2"
)

// PrintTopology renders the Figure-8 information as text: the simulated
// processor's shape and which resources are shared at which level, with
// their modeled capacities.
func PrintTopology(w io.Writer, m *proc.Machine) {
	fmt.Fprintf(w, "Figure 8 (as text): %s @ %.2f GHz\n", m.Topo, m.ClockHz/1e9)
	levels := []t2.SharingLevel{t2.IntraPipe, t2.IntraCore, t2.InterCore}
	for _, level := range levels {
		fmt.Fprintf(w, "%s resources:\n", level)
		for r := 0; r < proc.NumResources; r++ {
			if proc.Resource(r).Level() != level {
				continue
			}
			fmt.Fprintf(w, "  %-4v capacity %.2f work/cycle per instance\n", proc.Resource(r), m.Caps[r])
		}
	}
	fmt.Fprintf(w, "communication: same-core queue %g cycles on L1D; cross-core %g on L2 + %g on XBAR\n",
		m.LocalCommL1, m.RemoteCommL2, m.RemoteCommXBar)
}

// PrintBenchmarks renders the Figure-9 information as text: the R→P→T
// pipeline structure of every benchmark with its per-stage demand budgets.
func PrintBenchmarks(w io.Writer, env *Env) error {
	fmt.Fprintln(w, "Figure 9 (as text): benchmark pipelines (cycles/packet by stage)")
	names := append(append([]string(nil), SuiteNames...), "IPFwd-intadd", "IPFwd-intmul")
	for _, name := range names {
		app, err := apps.ByName(name, env.Profile)
		if err != nil {
			return err
		}
		d := app.MeanDemands()
		fmt.Fprintf(w, "%-16s NIU -> [R %4.0f] -> queue -> [P %4.0f] -> queue -> [T %4.0f] -> NIU\n",
			app.Name(), d[apps.Receive].Base(), d[apps.Process].Base(), d[apps.Transmit].Base())
		p := d[apps.Process]
		fmt.Fprintf(w, "%16s P profile: serial %.0f, IEU %.0f, LSU %.0f, L1D %.0f, L2 %.0f, MEM %.0f\n",
			"", p.Serial, p.Res[proc.IEU], p.Res[proc.LSU], p.Res[proc.L1D], p.Res[proc.L2], p.Res[proc.MEM])
	}
	return nil
}
