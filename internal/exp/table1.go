package exp

import (
	"fmt"
	"io"
	"math/big"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// Table1Row is one row of Table 1: the assignment-population size for a
// workload of Tasks tasks on the UltraSPARC T2, with the time needed to
// execute every assignment (1 s each) and to predict every assignment
// (1 µs each).
type Table1Row struct {
	Tasks       int
	Assignments *big.Int
	ExecuteAll  string // humanized duration at 1 s per assignment
	PredictAll  string // humanized duration at 1 µs per assignment
}

// Table1Tasks are the workload sizes the paper tabulates.
var Table1Tasks = []int{3, 6, 9, 12, 15, 18, 60}

// Table1 computes Table 1 exactly (big-integer combinatorics; no sampling
// involved).
func Table1() ([]Table1Row, error) {
	topo := t2.UltraSPARCT2()
	rows := make([]Table1Row, 0, len(Table1Tasks))
	for _, n := range Table1Tasks {
		c, err := assign.Count(topo, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Tasks:       n,
			Assignments: c,
			ExecuteAll:  humanizeSeconds(new(big.Float).SetInt(c)),
			PredictAll:  humanizeSeconds(new(big.Float).Quo(new(big.Float).SetInt(c), big.NewFloat(1e6))),
		})
	}
	return rows, nil
}

// humanizeSeconds renders an arbitrary-precision duration in the most
// natural unit, years for anything above one year.
func humanizeSeconds(s *big.Float) string {
	f, _ := s.Float64()
	const (
		minute = 60.0
		hour   = 3600.0
		day    = 86400.0
		year   = 365.25 * day
	)
	switch {
	case f < 1e-3:
		return fmt.Sprintf("%.3g ms", f*1e3)
	case f < minute:
		return fmt.Sprintf("%.3g s", f)
	case f < hour:
		return fmt.Sprintf("%.3g min", f/minute)
	case f < day:
		return fmt.Sprintf("%.3g hours", f/hour)
	case f < year:
		return fmt.Sprintf("%.3g days", f/day)
	default:
		y := new(big.Float).Quo(s, big.NewFloat(year))
		return fmt.Sprintf("%.3g years", mustFloat(y))
	}
}

func mustFloat(f *big.Float) float64 {
	v, _ := f.Float64()
	return v
}

// PrintTable1 renders the table the way the paper lays it out.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: Number of different task assignments on the UltraSPARC T2")
	fmt.Fprintf(w, "%-8s %-28s %-22s %-22s\n", "tasks", "assignments", "execute all (1 s ea.)", "predict all (1 µs ea.)")
	for _, r := range rows {
		count := r.Assignments.Text(10)
		if len(count) > 26 {
			f := new(big.Float).SetInt(r.Assignments)
			count = fmt.Sprintf("%.3e", f)
		}
		fmt.Fprintf(w, "%-8d %-28s %-22s %-22s\n", r.Tasks, count, r.ExecuteAll, r.PredictAll)
	}
}
