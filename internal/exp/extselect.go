package exp

import (
	"fmt"
	"io"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/proc"
)

// SelectStudyResult is the §7 combined workload-selection + task-assignment
// study: the statistical method applied to the product space of
// "which tasks co-run" × "where they go".
type SelectStudyResult struct {
	PoolSize     int
	WorkloadSize int
	Samples      int
	Best         core.SelectResult
	// BestWorkloadOnly is the best performance achievable with the best
	// pick's tasks under a *balanced* (Linux-like) placement — showing how
	// much of the combination's value comes from the assignment half.
	BestWorkloadOnly float64
}

// selectPool builds a heterogeneous 24-task candidate pool: CPU-bound,
// memory-bound, cache-bound and mixed candidates, so co-schedule symbiosis
// and placement both matter.
func selectPool() []proc.Demand {
	var pool []proc.Demand
	mk := func(serial, ieu, lsu, l1d, l2, mem float64) {
		var d proc.Demand
		d.Serial = serial
		d.Res[proc.IEU] = ieu
		d.Res[proc.LSU] = lsu
		d.Res[proc.L1D] = l1d
		d.Res[proc.L2] = l2
		d.Res[proc.MEM] = mem
		pool = append(pool, d)
	}
	for i := 0; i < 6; i++ {
		mk(50, 600+30*float64(i), 120, 100, 0, 0) // CPU-bound
	}
	for i := 0; i < 6; i++ {
		mk(50, 150, 260, 80, 150, 280+25*float64(i)) // memory-bound
	}
	for i := 0; i < 6; i++ {
		mk(50, 260, 200, 340+20*float64(i), 60, 0) // cache-bound
	}
	for i := 0; i < 6; i++ {
		mk(90, 340, 190, 170, 90, 90+15*float64(i)) // mixed
	}
	return pool
}

// poolRunner measures a (pick, assignment) combination on the machine.
type poolRunner struct {
	machine *proc.Machine
	pool    []proc.Demand
}

// MeasureWorkload implements core.WorkloadRunner.
func (r *poolRunner) MeasureWorkload(pick []int, a assign.Assignment) (float64, error) {
	tasks := make([]proc.Task, len(pick))
	for i, idx := range pick {
		if idx < 0 || idx >= len(r.pool) {
			return 0, fmt.Errorf("exp: pick %d outside pool", idx)
		}
		tasks[i] = proc.Task{Demand: r.pool[idx], Group: i}
	}
	res, err := r.machine.Solve(tasks, nil, a.Ctx)
	if err != nil {
		return 0, err
	}
	return res.TotalPPS, nil
}

// SelectStudy runs the combined problem on the T2 machine: 12 of 24
// candidate tasks co-run, 2000 random combinations are measured, and the
// EVT estimator bounds the best possible combination.
func SelectStudy(env *Env) (SelectStudyResult, error) {
	machine := proc.UltraSPARCT2Machine()
	runner := &poolRunner{machine: machine, pool: selectPool()}
	cfg := core.SelectConfig{
		Topo:         machine.Topo,
		PoolSize:     len(runner.pool),
		WorkloadSize: 12,
		Samples:      2000,
		Seed:         env.Seed,
	}
	best, err := core.SelectAndAssign(cfg, runner)
	if err != nil {
		return SelectStudyResult{}, err
	}
	out := SelectStudyResult{
		PoolSize:     cfg.PoolSize,
		WorkloadSize: cfg.WorkloadSize,
		Samples:      cfg.Samples,
		Best:         best,
	}
	// Re-place the winning workload with a balanced scheduler to separate
	// the two halves of the combined decision: spread the 12 tasks over
	// the 12 lowest contexts of distinct pipes.
	ctx := make([]int, cfg.WorkloadSize)
	for i := range ctx {
		ctx[i] = machine.Topo.Context(i%machine.Topo.Cores, (i/machine.Topo.Cores)%machine.Topo.PipesPerCore, i/(machine.Topo.Cores*machine.Topo.PipesPerCore))
	}
	balanced, err := runner.MeasureWorkload(best.BestPick, assign.Assignment{Topo: machine.Topo, Ctx: ctx})
	if err != nil {
		return SelectStudyResult{}, err
	}
	out.BestWorkloadOnly = balanced
	return out, nil
}

// PrintSelectStudy renders the combined-problem summary.
func PrintSelectStudy(w io.Writer, r SelectStudyResult) {
	fmt.Fprintln(w, "Extension (§7): combined workload selection + task assignment")
	fmt.Fprintf(w, "pool %d tasks, co-run %d, %d random combinations sampled\n",
		r.PoolSize, r.WorkloadSize, r.Samples)
	fmt.Fprintf(w, "best sampled combination:    %.6g PPS\n", r.Best.BestPerf)
	fmt.Fprintf(w, "  picked tasks: %v\n", r.Best.BestPick)
	fmt.Fprintf(w, "same workload, balanced map: %.6g PPS\n", r.BestWorkloadOnly)
	fmt.Fprintf(w, "estimated optimal combo:     %.6g PPS (0.95 CI [%.6g, %.6g])\n",
		r.Best.Estimate.Optimal, r.Best.Estimate.Lo, r.Best.Estimate.Hi)
	fmt.Fprintf(w, "headroom of sampled best:    %.2f%%\n", r.Best.Estimate.HeadroomPct)
}
