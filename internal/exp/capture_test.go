package exp

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"optassign/internal/core"
)

// TestCaptureProbabilityHoldsOnRealPopulation closes the loop on §3.1: the
// formula P(A) = 1 − ((100−P)/100)^n is derived for sampling with
// replacement from a large population; here we check it *empirically* on
// the actual 1526-assignment population of the 6-thread IPFwd-intadd
// workload, top-P% defined by measured performance.
func TestCaptureProbabilityHoldsOnRealPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("empirical capture study is slow")
	}
	env := NewEnv(1)
	r, err := Figure3(env) // exhaustive population, sorted inside the ECDF
	if err != nil {
		t.Fatal(err)
	}
	perfs := r.ECDF.Sorted()
	n := len(perfs)

	for _, topPct := range []float64{5, 10, 25} {
		// The population is small (1526), so top-P% is an exact cutoff.
		k := int(math.Ceil(float64(n) * topPct / 100))
		cutoff := perfs[n-k]

		for _, sample := range []int{10, 40} {
			want, err := core.CaptureProbability(sample, topPct)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(1000*sample) + int64(topPct)))
			const trials = 2000
			captured := 0
			for trial := 0; trial < trials; trial++ {
				hit := false
				for i := 0; i < sample; i++ {
					// Sampling with replacement from the population.
					if perfs[rng.Intn(n)] >= cutoff {
						hit = true
						break
					}
				}
				if hit {
					captured++
				}
			}
			got := float64(captured) / trials
			// Binomial noise at 2000 trials: ~3σ ≈ 0.035.
			if math.Abs(got-want) > 0.04 {
				t.Errorf("P=%v%% n=%d: empirical capture %v vs formula %v", topPct, sample, got, want)
			}
		}
	}
}

// TestTopPercentIsNearOptimal validates the method's premise on the real
// population: assignments in the top 1% are within a whisker of the true
// optimum (the paper's §3.2 observation that motivates random sampling).
func TestTopPercentIsNearOptimal(t *testing.T) {
	env := NewEnv(1)
	r, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	perfs := r.ECDF.Sorted()
	n := len(perfs)
	sorted := append([]float64(nil), perfs...)
	sort.Float64s(sorted)
	top1 := sorted[n-int(math.Ceil(float64(n)/100))]
	opt := sorted[n-1]
	if loss := (opt - top1) / opt * 100; loss > 2 {
		t.Errorf("worst of the top 1%% loses %.2f%% vs the optimum — premise violated", loss)
	}
}
