package exp

import (
	"errors"
	"fmt"
	"io"

	"optassign/internal/core"
	"optassign/internal/obs"
	"optassign/internal/search"
)

// SearchStrategyCell is one strategy's outcome on the shared case-study
// campaign: how many measurements it needed to reach (or fail to reach)
// the same §5.3 stopping promise, and what its fit-relevant sample looked
// like.
type SearchStrategyCell struct {
	Strategy  string
	TailSafe  bool
	Satisfied bool
	Samples   int     // measurements consumed
	Explore   int     // adaptive draws excluded from the EVT fit
	Best      float64 // best measured performance
	Optimal   float64 // estimated optimum at stop
	Lo, Hi    float64 // its 0.95 confidence interval
	LossBound float64 // guaranteed loss bound at stop, percent
}

// searchStudyLossPct is the promise every strategy runs under. It is
// deliberately tight (0.1%, not the case study's 2.5%): on IPFwd-L1 the
// first fit already certifies ~0.45% at n=500, so an easy promise makes
// every policy stop immediately and the table says nothing. The tight
// promise is where draw policy matters.
const searchStudyLossPct = 0.1

// SearchStrategyStudy runs the §5.3 campaign once per built-in search
// strategy on the IPFwd-L1 case study (8 instances, 24 threads), identical
// promise, budget and seed, and reports what each draw policy costs: does
// a smarter sampler reach the same guaranteed loss bound with fewer
// testbed runs, and what does it give up? Exploration draws (greedy's
// hill-climbing moves, anneal's walk) are counted separately — they are
// excluded from the EVT fit, so a strategy that explores a lot pays for
// draws that buy it no statistical confidence. Two structural effects
// show up here: stratified collapses to uniform because the 24-task class
// space dwarfs its enumeration cap (rejection mode never rejects), and
// greedy closes the gap from the *best* side — climbing finds assignments
// the i.i.d. policies need thousands of draws to stumble on, while its
// clean i.i.d. subsample keeps the certificate honest. The calibration
// twin of this table (known-optimum populations, hundreds of
// replications) lives in internal/calibrate and gates CI; this study
// shows the same contrast on the realistic testbed.
func SearchStrategyStudy(env *Env) ([]SearchStrategyCell, error) {
	tb, err := env.Testbed("IPFwd-L1", CaseStudyInstances)
	if err != nil {
		return nil, err
	}
	runner := core.Runner(tb)
	if env.Resilience != nil {
		runner = core.NewResilientRunner(runner, *env.Resilience)
	}
	var cells []SearchStrategyCell
	for _, name := range search.Names {
		reg := obs.NewRegistry()
		sm := search.NewMetrics(reg, name)
		strat, err := search.New(name, nil, sm)
		if err != nil {
			return nil, err
		}
		cfg := core.IterConfig{
			Topo:          tb.Machine.Topo,
			Tasks:         tb.TaskCount(),
			AcceptLossPct: searchStudyLossPct,
			Ninit:         500,
			Ndelta:        200,
			MaxSamples:    6000,
			Seed:          env.Seed,
			Strategy:      strat,
			SearchMetrics: sm,
		}
		res, err := core.Iterate(cfg, runner)
		if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
			return nil, fmt.Errorf("exp: strategy %s: %w", name, err)
		}
		cells = append(cells, SearchStrategyCell{
			Strategy:  name,
			TailSafe:  strat.TailSafe(),
			Satisfied: res.Satisfied,
			Samples:   res.Samples,
			Explore:   int(sm.Explore.Value()),
			Best:      res.Best.Perf,
			Optimal:   res.Final.Optimal,
			Lo:        res.Final.Lo,
			Hi:        res.Final.Hi,
			LossBound: res.Final.HeadroomHiPct,
		})
	}
	return cells, nil
}

// PrintSearchStrategyStudy renders the strategy comparison table.
func PrintSearchStrategyStudy(w io.Writer, cells []SearchStrategyCell) {
	fmt.Fprintln(w, "Extension: search strategies on the IPFwd-L1 case study (same promise, budget and seed)")
	fmt.Fprintf(w, "%-12s %-9s %-9s %8s %8s %12s %12s %10s\n",
		"strategy", "tailsafe", "stopped", "samples", "explore", "best PPS", "est. opt", "loss<=%")
	for _, c := range cells {
		stopped := "budget"
		if c.Satisfied {
			stopped = "promise"
		}
		fmt.Fprintf(w, "%-12s %-9t %-9s %8d %8d %12.6g %12.6g %10.2f\n",
			c.Strategy, c.TailSafe, stopped, c.Samples, c.Explore, c.Best, c.Optimal, c.LossBound)
	}
	fmt.Fprintf(w, "(exploration draws are excluded from the EVT fit; non-tail-safe strategies report an advisory estimate only)\n")
}
