package exp

import (
	"bytes"
	"math/big"
	"strings"
	"testing"
)

func TestTable1MatchesPaperAnchors(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table1Tasks) {
		t.Fatalf("rows = %d", len(rows))
	}
	// §2's worked anchor: 3 tasks → 11 assignments, executing all takes 11 s.
	if rows[0].Tasks != 3 || rows[0].Assignments.Cmp(big.NewInt(11)) != 0 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if !strings.Contains(rows[0].ExecuteAll, "s") {
		t.Errorf("ExecuteAll = %q", rows[0].ExecuteAll)
	}
	// 6 tasks → 1526 ("around 1500").
	if rows[1].Assignments.Cmp(big.NewInt(1526)) != 0 {
		t.Errorf("6-task count = %v", rows[1].Assignments)
	}
	// Growth: every row larger than the last; the 60-task row is
	// astronomic and both durations are reported in years.
	for i := 1; i < len(rows); i++ {
		if rows[i].Assignments.Cmp(rows[i-1].Assignments) <= 0 {
			t.Errorf("row %d not larger than predecessor", i)
		}
	}
	last := rows[len(rows)-1]
	if !strings.Contains(last.ExecuteAll, "years") || !strings.Contains(last.PredictAll, "years") {
		t.Errorf("60-task durations = %q / %q", last.ExecuteAll, last.PredictAll)
	}
	// Paper: executing all 9-task assignments takes ~7 days; ours must be
	// in the days range too (same combinatorial model).
	if !strings.Contains(rows[2].ExecuteAll, "days") {
		t.Errorf("9-task ExecuteAll = %q", rows[2].ExecuteAll)
	}

	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "11") {
		t.Errorf("rendered table:\n%s", out)
	}
}

func TestHumanizeSeconds(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{0.0001, "ms"},
		{30, "s"},
		{120, "min"},
		{7200, "hours"},
		{200000, "days"},
		{1e9, "years"},
	}
	for _, c := range cases {
		got := humanizeSeconds(big.NewFloat(c.sec))
		if !strings.Contains(got, c.want) {
			t.Errorf("humanizeSeconds(%v) = %q, want unit %q", c.sec, got, c.want)
		}
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	env := NewEnv(1)
	rows, err := Figure1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Figure1Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		// Ordering that motivates the paper: naive <= linux <= optimal.
		if !(r.NaivePPS < r.OptimalPPS) {
			t.Errorf("%s: naive %v not below optimal %v", r.Benchmark, r.NaivePPS, r.OptimalPPS)
		}
		if !(r.LinuxPPS < r.OptimalPPS) {
			t.Errorf("%s: linux %v not below optimal %v", r.Benchmark, r.LinuxPPS, r.OptimalPPS)
		}
		if r.Population != 1526 {
			t.Errorf("%s: population %d, want 1526", r.Benchmark, r.Population)
		}
	}
	add, mul := byName["IPFwd-intadd"], byName["IPFwd-intmul"]
	// The paper's punchline: intadd has the larger naive→optimal headroom.
	if !(add.NaiveGapPP > mul.NaiveGapPP) {
		t.Errorf("intadd headroom %.1f%% should exceed intmul %.1f%%", add.NaiveGapPP, mul.NaiveGapPP)
	}

	var buf bytes.Buffer
	PrintFigure1(&buf, rows)
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFigure2CurvesAnchors(t *testing.T) {
	curves, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		last := c.Points[len(c.Points)-1]
		if last.N < 9000 || last.Prob < 0.999 {
			t.Errorf("P=%v%%: final point %+v should be ≈1", c.TopPct, last)
		}
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Prob < c.Points[i-1].Prob {
				t.Errorf("P=%v%%: non-monotone curve", c.TopPct)
			}
		}
	}
	var buf bytes.Buffer
	PrintFigure2(&buf, curves)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFigure3(t *testing.T) {
	env := NewEnv(1)
	r, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.ECDF.Len() != 1526 {
		t.Errorf("population = %d", r.ECDF.Len())
	}
	if r.WorstLossPct < 5 || r.WorstLossPct > 70 {
		t.Errorf("worst-case loss %.1f%% out of band", r.WorstLossPct)
	}
	// §3.2: the spread within the top 1% is small compared to the full
	// spread.
	if r.Top1SpreadPct > r.WorstLossPct/3 {
		t.Errorf("top-1%% spread %.2f%% not small vs %.1f%%", r.Top1SpreadPct, r.WorstLossPct)
	}
	var buf bytes.Buffer
	PrintFigure3(&buf, r)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFigure45(t *testing.T) {
	r, err := Figure45(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Exceedances) < 20 {
		t.Errorf("exceedances = %d", len(r.Exceedances))
	}
	// The fitted CDF should track the empirical one closely.
	for i := range r.Grid {
		if d := r.ExcessECDF[i] - r.FittedCDF[i]; d > 0.15 || d < -0.15 {
			t.Errorf("fit deviates by %.2f at y=%.3g", d, r.Grid[i])
		}
	}
	var buf bytes.Buffer
	PrintFigure45(&buf, r)
	if !strings.Contains(buf.String(), "Figures 4/5") {
		t.Error("render missing title")
	}
}

func TestFigures6And7ShareTheSample(t *testing.T) {
	env := NewEnv(1)
	r6, err := Figure6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r6.Sorted) != Figure6Sample {
		t.Errorf("sample = %d", len(r6.Sorted))
	}
	// Sorted ascending; threshold leaves at most 5% above.
	for i := 1; i < len(r6.Sorted); i++ {
		if r6.Sorted[i] < r6.Sorted[i-1] {
			t.Fatal("sample not sorted")
		}
	}
	if n := len(r6.Threshold.Exceedances); n < 20 || n > Figure6Sample/20 {
		t.Errorf("exceedances = %d", n)
	}

	r7, err := Figure7(env)
	if err != nil {
		t.Fatal(err)
	}
	if !(r7.Interval.Lo <= r7.Interval.Point && r7.Interval.Point <= r7.Interval.Hi) {
		t.Errorf("interval %+v", r7.Interval)
	}
	// The profile maximum along the curve sits above the cut.
	maxLL := r7.Profile[0]
	for _, ll := range r7.Profile {
		if ll > maxLL {
			maxLL = ll
		}
	}
	if maxLL < r7.Cut {
		t.Errorf("profile max %v below cut %v", maxLL, r7.Cut)
	}
	var buf bytes.Buffer
	PrintFigure6(&buf, r6)
	PrintFigure7(&buf, r7)
	out := buf.String()
	if !strings.Contains(out, "Figure 6a") || !strings.Contains(out, "Figure 7") {
		t.Error("render missing titles")
	}
}

func TestEstimationStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("estimation study is slow")
	}
	env := NewEnv(1)
	cells, err := EstimationStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(SuiteNames)*len(ResultSampleSizes) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, name := range SuiteNames {
		c1, c5 := cellFor(cells, name, 1000), cellFor(cells, name, 5000)
		if c1 == nil || c5 == nil {
			t.Fatalf("%s: missing cells", name)
		}
		// Figure 10's conclusion: 1000→5000 improves the captured best
		// only marginally (paper: at most 0.6%; we allow 2%).
		gain := (c5.BestObs - c1.BestObs) / c1.BestObs * 100
		if gain < -0.01 || gain > 2 {
			t.Errorf("%s: best-in-sample gain %.2f%% out of band", name, gain)
		}
		if !c5.Estimable {
			t.Errorf("%s: n=5000 must be estimable", name)
			continue
		}
		if c5.BestObs > c5.Optimal {
			t.Errorf("%s: best %.0f above estimate %.0f", name, c5.BestObs, c5.Optimal)
		}
		// Figure 12's conclusion: at n=5000 the best sampled assignment is
		// close to the estimated optimum (paper: ≤ 2.4%; we allow 6%).
		if c5.Headroom > 6 {
			t.Errorf("%s: headroom at 5000 = %.2f%%", name, c5.Headroom)
		}
		// Figure 11's conclusion: the CI narrows as the sample grows
		// (compare against n=1000 when that cell was estimable).
		if c1.Estimable && c5.Estimable {
			w1, w5 := c1.Hi-c1.Lo, c5.Hi-c5.Lo
			if w5 > w1*1.5 {
				t.Errorf("%s: CI widened with sample size: %.0f → %.0f", name, w1, w5)
			}
		}
	}
	var buf bytes.Buffer
	PrintFigure10(&buf, cells)
	PrintFigure11(&buf, cells)
	PrintFigure12(&buf, cells)
	out := buf.String()
	for _, want := range []string{"Figure 10", "Figure 11", "Figure 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %s", want)
		}
	}
}

func TestFigure14Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("iterative study is slow")
	}
	env := NewEnv(1)
	cells, err := Figure14(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(SuiteNames)*len(Figure14Losses) {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, name := range SuiteNames {
		var at25, at10 *Figure14Cell
		for i := range cells {
			if cells[i].Benchmark != name {
				continue
			}
			switch cells[i].LossPct {
			case 2.5:
				at25 = &cells[i]
			case 10:
				at10 = &cells[i]
			}
		}
		if at25 == nil || at10 == nil {
			t.Fatalf("%s: missing loss cells", name)
		}
		// Looser requirements need no more samples than tighter ones.
		if at10.Samples > at25.Samples {
			t.Errorf("%s: 10%% loss needed %d samples but 2.5%% needed %d",
				name, at10.Samples, at25.Samples)
		}
		// The paper's 10%-loss headline: well under ~1300 assignments.
		if at10.Satisfied && at10.Samples > 2000 {
			t.Errorf("%s: 10%% loss took %d samples", name, at10.Samples)
		}
	}
	var buf bytes.Buffer
	PrintFigure14(&buf, cells)
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Error("render missing title")
	}
}

func TestEnvUnknownBenchmark(t *testing.T) {
	env := NewEnv(1)
	if _, err := env.Testbed("nope", 2); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSamplePrefixProperty(t *testing.T) {
	env := NewEnv(1)
	small, err := env.Sample("IPFwd-L1", 50)
	if err != nil {
		t.Fatal(err)
	}
	big, err := env.Sample("IPFwd-L1", 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := range small {
		if small[i].Perf != big[i].Perf {
			t.Fatalf("sample %d differs between prefix requests", i)
		}
	}
}

func TestPlotHelpersDegenerateInputs(t *testing.T) {
	var buf bytes.Buffer
	PlotXY(&buf, "empty", nil, 0, 0)
	if !strings.Contains(buf.String(), "no finite data") {
		t.Error("empty plot not handled")
	}
	buf.Reset()
	PlotXY(&buf, "flat", []Series{{Name: "s", Xs: []float64{1, 2}, Ys: []float64{5, 5}}}, 20, 5)
	if buf.Len() == 0 {
		t.Error("flat plot empty")
	}
	buf.Reset()
	PlotBars(&buf, "zero", "u", []BarGroup{{Label: "g", Bars: []Bar{{Name: "b"}}}}, 0)
	if buf.Len() == 0 {
		t.Error("zero bars empty")
	}
}
