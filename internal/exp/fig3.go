package exp

import (
	"fmt"
	"io"

	"optassign/internal/assign"
	"optassign/internal/stats"
)

// Figure3Result is the exhaustive CDF study of a six-thread workload.
type Figure3Result struct {
	Benchmark string
	ECDF      *stats.ECDF
	// WorstLossPct is the §3.2 headline: the performance loss of the worst
	// assignment versus the best, in percent of the best.
	WorstLossPct float64
	// Top1SpreadPct is the performance difference within the top 1% of
	// assignments, in percent of the optimum (the paper reports ~0.6%).
	Top1SpreadPct float64
}

// Figure3 measures every distinct assignment of the 6-thread IPFwd-intadd
// workload and builds the population CDF of Figure 3.
func Figure3(env *Env) (Figure3Result, error) {
	const name = "IPFwd-intadd"
	tb, err := env.Testbed(name, Figure1Instances)
	if err != nil {
		return Figure3Result{}, err
	}
	all, err := assign.Enumerate(tb.Machine.Topo, tb.TaskCount(), 0)
	if err != nil {
		return Figure3Result{}, err
	}
	perfs := make([]float64, 0, len(all))
	for _, a := range all {
		p, err := tb.MeasureAnalytic(a)
		if err != nil {
			return Figure3Result{}, err
		}
		perfs = append(perfs, p)
	}
	e := stats.NewECDF(perfs)
	res := Figure3Result{
		Benchmark:    name,
		ECDF:         e,
		WorstLossPct: (e.Max() - e.Min()) / e.Max() * 100,
	}
	top1 := e.Quantile(0.99)
	res.Top1SpreadPct = (e.Max() - top1) / e.Max() * 100
	return res, nil
}

// PrintFigure3 renders the CDF and its headline statistics.
func PrintFigure3(w io.Writer, r Figure3Result) {
	xs, ps := r.ECDF.Points()
	PlotXY(w, fmt.Sprintf("Figure 3: CDF of all %d task assignments (%s, 6 threads)", r.ECDF.Len(), r.Benchmark),
		[]Series{{Name: "CDF", Xs: xs, Ys: ps}}, 72, 16)
	fmt.Fprintf(w, "performance range: %.4g .. %.4g PPS; worst-case loss %.1f%%; spread within top 1%%: %.2f%%\n",
		r.ECDF.Min(), r.ECDF.Max(), r.WorstLossPct, r.Top1SpreadPct)
}
