package exp

import (
	"bytes"
	"strings"
	"testing"

	"optassign/internal/proc"
)

func TestSelectStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("combined study is slow")
	}
	env := NewEnv(1)
	r, err := SelectStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.PoolSize != 24 || r.WorkloadSize != 12 || r.Samples != 2000 {
		t.Fatalf("meta: %+v", r)
	}
	if len(r.Best.BestPick) != 12 {
		t.Fatalf("pick = %v", r.Best.BestPick)
	}
	if r.Best.Estimate.Optimal < r.Best.BestPerf {
		t.Errorf("estimate %v below best %v", r.Best.Estimate.Optimal, r.Best.BestPerf)
	}
	// The winning combination should beat a random workload under the
	// same balanced map by a clear margin — composition matters. Verify by
	// measuring a deliberately bad (all memory-bound) pick.
	machine := proc.UltraSPARCT2Machine()
	runner := &poolRunner{machine: machine, pool: selectPool()}
	badPick := []int{6, 7, 8, 9, 10, 11, 6 + 0, 7, 8, 9, 10, 11} // duplicates not allowed; build properly below
	badPick = []int{6, 7, 8, 9, 10, 11, 0, 1, 12, 13, 18, 19}
	a := r.Best.BestAssignment
	badPerf, err := runner.MeasureWorkload(badPick, a)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.Best.BestPerf > badPerf) {
		t.Errorf("best combination %v not above an arbitrary mixed pick %v", r.Best.BestPerf, badPerf)
	}

	var buf bytes.Buffer
	PrintSelectStudy(&buf, r)
	if !strings.Contains(buf.String(), "workload selection") {
		t.Error("render incomplete")
	}
}

func TestTopologyAndBenchmarkRenders(t *testing.T) {
	var buf bytes.Buffer
	PrintTopology(&buf, proc.UltraSPARCT2Machine())
	out := buf.String()
	for _, want := range []string{"IntraPipe", "IntraCore", "InterCore", "LSU", "communication"} {
		if !strings.Contains(out, want) {
			t.Errorf("topology render missing %q", want)
		}
	}
	buf.Reset()
	env := NewEnv(1)
	if err := PrintBenchmarks(&buf, env); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"Aho-Corasick", "IPFwd-intmul", "queue"} {
		if !strings.Contains(out, want) {
			t.Errorf("benchmark render missing %q", want)
		}
	}
}
