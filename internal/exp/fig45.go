package exp

import (
	"fmt"
	"io"
	"math/rand"

	"optassign/internal/evt"
	"optassign/internal/stats"
)

// Figure45Result is the didactic Peak-Over-Threshold illustration of
// Figures 4 and 5: a synthetic observation sequence, the exceedances over a
// threshold u, and the conditional excess distribution compared with its
// GPD approximation.
type Figure45Result struct {
	Observations []float64
	U            float64
	Exceedances  []float64
	Fit          evt.Fit
	// ExcessECDF and FittedCDF are evaluated on a common grid for the
	// bottom chart of Figure 5.
	Grid       []float64
	ExcessECDF []float64
	FittedCDF  []float64
}

// Figure45 draws a bounded synthetic sample, applies the POT method and
// reports how well the GPD models the conditional excess distribution.
func Figure45(seed int64) (Figure45Result, error) {
	rng := rand.New(rand.NewSource(seed))
	// A population whose tail above 70 is exactly GPD(ξ=−0.3, σ=9) — by
	// threshold stability every higher threshold also sees a GPD with the
	// same shape, so the POT fit has a known right answer (endpoint 100).
	tail := evt.GPD{Xi: -0.3, Sigma: 9}
	obs := make([]float64, 4000)
	for i := range obs {
		if rng.Float64() < 0.2 {
			obs[i] = 70 + tail.Rand(rng)
		} else {
			obs[i] = 20 + 50*rng.Float64() // the unremarkable body
		}
	}
	// The didactic figure uses the plain 5% rule so the exceedance set is
	// large enough to draw a smooth conditional excess distribution.
	thr, err := evt.SelectThreshold(obs, evt.ThresholdOptions{Rule: evt.RuleMaxFraction})
	if err != nil {
		return Figure45Result{}, err
	}
	fit, err := evt.FitGPD(thr.Exceedances)
	if err != nil {
		return Figure45Result{}, err
	}
	res := Figure45Result{
		Observations: obs,
		U:            thr.U,
		Exceedances:  thr.Exceedances,
		Fit:          fit,
	}
	e := stats.NewECDF(thr.Exceedances)
	maxY := e.Max()
	for i := 0; i <= 40; i++ {
		y := maxY * float64(i) / 40
		res.Grid = append(res.Grid, y)
		res.ExcessECDF = append(res.ExcessECDF, e.At(y))
		res.FittedCDF = append(res.FittedCDF, fit.GPD.CDF(y))
	}
	return res, nil
}

// PrintFigure45 renders the excess distribution against its GPD fit.
func PrintFigure45(w io.Writer, r Figure45Result) {
	fmt.Fprintf(w, "Figures 4/5: POT on a synthetic bounded sample — u = %.4g, %d of %d observations exceed\n",
		r.U, len(r.Exceedances), len(r.Observations))
	PlotXY(w, "conditional excess distribution Fu(y) vs fitted GPD",
		[]Series{
			{Name: "empirical Fu", Xs: r.Grid, Ys: r.ExcessECDF},
			{Name: fmt.Sprintf("fitted %v", r.Fit.GPD), Xs: r.Grid, Ys: r.FittedCDF},
		}, 72, 14)
}
