package core

import (
	"context"

	"optassign/internal/assign"
)

// ContextRunner is the context-aware measurement contract: an
// implementation executes one assignment and reports its performance,
// honoring ctx for cancellation and per-measurement deadlines. Long
// campaigns (hours of testbed time, §5.4) need both: a hung measurement
// must not wedge the whole study, and an operator interrupt must stop the
// loop at a measurement boundary with everything measured so far intact.
type ContextRunner interface {
	MeasureContext(ctx context.Context, a assign.Assignment) (float64, error)
}

// ContextRunnerFunc adapts a plain function to the ContextRunner interface.
type ContextRunnerFunc func(ctx context.Context, a assign.Assignment) (float64, error)

// MeasureContext implements ContextRunner.
func (f ContextRunnerFunc) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	return f(ctx, a)
}

// attemptKey carries the 1-based attempt number of the measurement a
// context belongs to (see WithAttempt).
type attemptKey struct{}

// WithAttempt annotates ctx with the 1-based attempt number of the
// measurement about to run. ResilientRunner stamps every attempt, so a
// runner downstream (a deterministic fault injector, a logging wrapper)
// can tell a retry from a fresh measurement without shared state — which
// keeps its behavior independent of the order concurrent measurements
// interleave in.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// Attempt returns the attempt number stamped by WithAttempt, or 1 for a
// context without one (a measurement outside any retry loop is its own
// first attempt).
func Attempt(ctx context.Context) int {
	if n, ok := ctx.Value(attemptKey{}).(int); ok {
		return n
	}
	return 1
}

// AsContextRunner upgrades any Runner to a ContextRunner. Runners that
// already implement MeasureContext (remote clients, the resilient wrapper)
// are returned as-is; legacy runners are wrapped in a shim that checks ctx
// before starting a measurement but cannot interrupt one in flight — pair
// such runners with ResilientRunner's per-attempt timeout if they can hang.
func AsContextRunner(r Runner) ContextRunner {
	if cr, ok := r.(ContextRunner); ok {
		return cr
	}
	return legacyRunner{r}
}

// AsRunner downgrades a ContextRunner to the legacy Runner interface,
// measuring with a background context. ContextRunners that already
// implement Measure are returned as-is.
func AsRunner(cr ContextRunner) Runner {
	if r, ok := cr.(Runner); ok {
		return r
	}
	return contextOnlyRunner{cr}
}

type legacyRunner struct{ r Runner }

func (l legacyRunner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return l.r.Measure(a)
}

func (l legacyRunner) Measure(a assign.Assignment) (float64, error) { return l.r.Measure(a) }

type contextOnlyRunner struct{ cr ContextRunner }

func (c contextOnlyRunner) Measure(a assign.Assignment) (float64, error) {
	return c.cr.MeasureContext(context.Background(), a)
}

func (c contextOnlyRunner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	return c.cr.MeasureContext(ctx, a)
}
