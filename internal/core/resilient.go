package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"optassign/internal/assign"
	"optassign/internal/obs"
)

// ErrQuarantined marks a measurement that was abandoned after exhausting
// its retry budget (or failing permanently). The campaign-level sampling
// loops treat it as "skip this assignment and keep going" rather than
// aborting the whole study: on a real testbed (~1.5 s per measurement,
// §5.4) one bad assignment must not throw away hours of collected data.
var ErrQuarantined = errors.New("core: measurement quarantined")

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// Permanent marks err as permanent: retrying the same measurement will
// fail the same way (invalid assignment, topology mismatch, server-side
// validation), so the resilient runner quarantines it immediately instead
// of burning retry budget. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// ResilientConfig parameterizes ResilientRunner. The zero value is usable:
// 3 attempts, 100 ms base backoff doubling to 5 s, 20% jitter, no
// per-attempt timeout.
type ResilientConfig struct {
	// MaxAttempts is the total number of tries per measurement (first
	// attempt included). Default 3.
	MaxAttempts int
	// Timeout bounds each attempt; 0 disables it. Attempts against
	// runners that honor ctx are cancelled cleanly; a legacy runner that
	// ignores ctx is abandoned on its goroutine (it keeps running until
	// it returns), so prefer ContextRunner implementations when
	// measurements can genuinely hang.
	Timeout time.Duration
	// BaseDelay is the backoff before the first retry; it doubles each
	// retry up to MaxDelay. Defaults 100 ms and 5 s.
	BaseDelay, MaxDelay time.Duration
	// Jitter spreads each delay uniformly over ±Jitter·delay to avoid
	// retry lockstep. Default 0.2; negative disables.
	Jitter float64
	// Seed makes the jitter sequence reproducible. 0 means seed 1.
	Seed int64
	// Classify overrides error classification: return true if the error
	// is transient (retryable). The default treats everything as
	// transient except errors marked with Permanent.
	Classify func(error) bool
	// OnRetry, if set, observes every failed attempt that will be
	// retried (for logging).
	OnRetry func(a assign.Assignment, attempt int, err error)
	// Events receives the runner's lifecycle as structured events:
	// "retry", "quarantine", "attempt_abandoned" and — when an abandoned
	// attempt's goroutine eventually returns — "attempt_late_result"
	// with the outcome that would otherwise vanish. nil disables.
	Events obs.EventSink
	// Metrics counts attempts, retries, backoff time, quarantines and
	// abandoned attempts. nil disables.
	Metrics *ResilientMetrics
	// sleep is a test seam; nil means a ctx-aware time.Sleep.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseDelay <= 0 {
		c.BaseDelay = 100 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Classify == nil {
		c.Classify = func(err error) bool { return !IsPermanent(err) }
	}
	if c.sleep == nil {
		c.sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FailedMeasurement records one quarantined assignment: what was supposed
// to run, how many attempts it got, and the final error.
type FailedMeasurement struct {
	Assignment assign.Assignment
	Attempts   int
	Err        error
}

// ResilientRunner wraps a measurement runner with retries, exponential
// backoff with jitter, per-attempt timeouts and graceful degradation: a
// measurement that keeps failing is quarantined (recorded in Failed and
// reported as ErrQuarantined) instead of killing the campaign. It
// implements both Runner and ContextRunner and is safe for concurrent use.
type ResilientRunner struct {
	cfg    ResilientConfig
	runner ContextRunner

	mu     sync.Mutex
	rng    *rand.Rand
	failed []FailedMeasurement
}

// NewResilientRunner wraps runner (upgraded via AsContextRunner if needed)
// with the given policy.
func NewResilientRunner(runner Runner, cfg ResilientConfig) *ResilientRunner {
	cfg = cfg.withDefaults()
	return &ResilientRunner{
		cfg:    cfg,
		runner: AsContextRunner(runner),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Failed returns a copy of the quarantined-measurement list, in the order
// the quarantines happened.
func (r *ResilientRunner) Failed() []FailedMeasurement {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]FailedMeasurement(nil), r.failed...)
}

// Measure implements Runner with a background context.
func (r *ResilientRunner) Measure(a assign.Assignment) (float64, error) {
	return r.MeasureContext(context.Background(), a)
}

// MeasureContext implements ContextRunner: try up to MaxAttempts times,
// backing off between attempts, then quarantine. Cancellation of ctx
// aborts immediately with ctx's error (never a quarantine): the caller
// asked the campaign to stop, the assignment did not fail.
func (r *ResilientRunner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	var lastErr error
	for attempt := 1; attempt <= r.cfg.MaxAttempts; attempt++ {
		r.cfg.Metrics.attempts().Inc()
		perf, err := r.attempt(WithAttempt(ctx, attempt), a)
		if err == nil {
			return perf, nil
		}
		if ctx.Err() != nil {
			// The campaign itself was cancelled; don't classify, don't
			// quarantine.
			return 0, ctx.Err()
		}
		lastErr = err
		if !r.cfg.Classify(err) {
			return 0, r.quarantine(a, attempt, err)
		}
		if attempt == r.cfg.MaxAttempts {
			break
		}
		if r.cfg.OnRetry != nil {
			r.cfg.OnRetry(a, attempt, err)
		}
		r.cfg.Metrics.retries().Inc()
		if r.cfg.Events != nil {
			r.cfg.Events.Emit(obs.Event{Name: "retry", Fields: []obs.Field{
				{Key: "assignment", Value: a.String()},
				{Key: "attempt", Value: attempt},
				{Key: "error", Value: err.Error()},
			}})
		}
		delay := r.backoff(attempt)
		r.cfg.Metrics.backoffSeconds().Add(delay.Seconds())
		if err := r.cfg.sleep(ctx, delay); err != nil {
			return 0, err
		}
	}
	return 0, r.quarantine(a, r.cfg.MaxAttempts, lastErr)
}

// attempt runs one measurement under the per-attempt timeout. The runner
// executes on its own goroutine so that even a ctx-ignoring runner cannot
// wedge the campaign past the deadline.
func (r *ResilientRunner) attempt(ctx context.Context, a assign.Assignment) (float64, error) {
	if r.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	} else if ctx.Done() == nil {
		// No deadline and nothing to cancel: measure inline.
		return r.runner.MeasureContext(ctx, a)
	}
	type outcome struct {
		perf float64
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		perf, err := r.runner.MeasureContext(ctx, a)
		ch <- outcome{perf, err}
	}()
	select {
	case o := <-ch:
		return o.perf, o.err
	case <-ctx.Done():
		// The attempt is abandoned on its goroutine. Its eventual outcome
		// used to vanish silently — the assignment could be quarantined
		// even though a measurement later succeeded, and the operator had
		// no evidence Timeout was set too tight. Record the abandonment
		// and, when observability is on, keep a watcher around to report
		// the late outcome once the goroutine returns.
		r.cfg.Metrics.abandoned().Inc()
		if r.cfg.Events != nil {
			r.cfg.Events.Emit(obs.Event{Name: "attempt_abandoned", Fields: []obs.Field{
				{Key: "assignment", Value: a.String()},
				{Key: "attempt", Value: Attempt(ctx)},
				{Key: "cause", Value: ctx.Err().Error()},
			}})
		}
		if r.cfg.Events != nil || r.cfg.Metrics != nil {
			abandonedAt := time.Now()
			attempt := Attempt(ctx)
			go func() {
				o := <-ch
				r.cfg.Metrics.lateOutcome(o.err == nil).Inc()
				if r.cfg.Events != nil {
					fields := []obs.Field{
						{Key: "assignment", Value: a.String()},
						{Key: "attempt", Value: attempt},
						{Key: "late_by_seconds", Value: time.Since(abandonedAt).Seconds()},
					}
					if o.err == nil {
						fields = append(fields, obs.Field{Key: "perf", Value: o.perf})
					} else {
						fields = append(fields, obs.Field{Key: "error", Value: o.err.Error()})
					}
					r.cfg.Events.Emit(obs.Event{Name: "attempt_late_result", Fields: fields})
				}
			}()
		}
		return 0, fmt.Errorf("core: measurement attempt: %w", ctx.Err())
	}
}

// backoff returns the delay before retry number `attempt` (1-based):
// BaseDelay·2^(attempt−1) capped at MaxDelay, jittered by ±Jitter.
func (r *ResilientRunner) backoff(attempt int) time.Duration {
	d := r.cfg.BaseDelay << (attempt - 1)
	if d > r.cfg.MaxDelay || d <= 0 { // <= 0 guards shift overflow
		d = r.cfg.MaxDelay
	}
	if r.cfg.Jitter > 0 {
		r.mu.Lock()
		u := r.rng.Float64()
		r.mu.Unlock()
		d = time.Duration(float64(d) * (1 + r.cfg.Jitter*(2*u-1)))
	}
	return d
}

func (r *ResilientRunner) quarantine(a assign.Assignment, attempts int, cause error) error {
	r.mu.Lock()
	r.failed = append(r.failed, FailedMeasurement{Assignment: a.Clone(), Attempts: attempts, Err: cause})
	r.mu.Unlock()
	r.cfg.Metrics.quarantines().Inc()
	if r.cfg.Events != nil {
		r.cfg.Events.Emit(obs.Event{Name: "quarantine", Fields: []obs.Field{
			{Key: "assignment", Value: a.String()},
			{Key: "attempts", Value: attempts},
			{Key: "error", Value: cause.Error()},
		}})
	}
	return fmt.Errorf("%w after %d attempt(s): %w", ErrQuarantined, attempts, cause)
}
