package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

func batchTopo() t2.Topology { return t2.Topology{Cores: 2, PipesPerCore: 2, ContextsPerPipe: 2} }

// batchSource mimics netdps.Testbed's shape: a legacy Runner that also
// exposes MeasureBatch, both class-deterministic, with counters proving
// which path ran and how many assignments were actually measured.
type batchSource struct {
	batches  atomic.Int64 // MeasureBatch invocations
	measured atomic.Int64 // individual assignments measured, either path
	fail     func(a assign.Assignment) error
}

func (s *batchSource) measure(a assign.Assignment) (float64, error) {
	s.measured.Add(1)
	if s.fail != nil {
		if err := s.fail(a); err != nil {
			return 0, err
		}
	}
	return classPerf(a), nil
}

func (s *batchSource) Measure(a assign.Assignment) (float64, error) { return s.measure(a) }

func (s *batchSource) MeasureBatch(as []assign.Assignment) ([]float64, []error) {
	s.batches.Add(1)
	perfs := make([]float64, len(as))
	errs := make([]error, len(as))
	for i, a := range as {
		perfs[i], errs[i] = s.measure(a)
	}
	return perfs, errs
}

// TestBatchMeasurerOfSeesThroughAdapters: the batch capability must be
// found through the package's own Runner/ContextRunner adapters (the
// wrapping cmd/optassign relies on), and must NOT be claimed by a source
// that lacks it.
func TestBatchMeasurerOfSeesThroughAdapters(t *testing.T) {
	src := &batchSource{}
	if _, ok := batchMeasurerOf(src); !ok {
		t.Fatal("direct BatchMeasurer not detected")
	}
	if _, ok := batchMeasurerOf(AsContextRunner(src)); !ok {
		t.Fatal("BatchMeasurer hidden by legacyRunner adapter")
	}
	if _, ok := batchMeasurerOf(AsContextRunner(AsRunner(AsContextRunner(src)))); !ok {
		t.Fatal("BatchMeasurer hidden by stacked adapters")
	}
	if _, ok := batchMeasurerOf(&countingRunner{}); ok {
		t.Fatal("plain ContextRunner claimed batch capability")
	}
}

// TestMeasureBatchContextMatchesSerialAndDedups: the batched cache path
// must return bit-identical values to per-draw MeasureContext, while
// measuring each canonical class at most once.
func TestMeasureBatchContextMatchesSerialAndDedups(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	as, err := assign.Sample(rng, batchTopo(), 5, 200)
	if err != nil {
		t.Fatal(err)
	}
	src := &batchSource{}
	r := NewCachedRunner(src, NewCache(1024, nil), "tb")
	perfs, errs := r.MeasureBatchContext(context.Background(), as)

	ref := NewCachedRunner(&batchSource{}, NewCache(1024, nil), "tb")
	classes := map[string]struct{}{}
	for i, a := range as {
		classes[r.key(a)] = struct{}{}
		want, werr := ref.MeasureContext(context.Background(), a)
		if errs[i] != nil || werr != nil {
			t.Fatalf("draw %d: errs %v / %v", i, errs[i], werr)
		}
		if math.Float64bits(perfs[i]) != math.Float64bits(want) {
			t.Fatalf("draw %d: batch %v != serial %v", i, perfs[i], want)
		}
	}
	if got := int(src.measured.Load()); got != len(classes) {
		t.Fatalf("batch path measured %d assignments, want one per class (%d)", got, len(classes))
	}
	if src.batches.Load() == 0 {
		t.Fatal("batch-capable source was measured serially")
	}
	// A second pass over the same draws is answered entirely by the cache.
	before := src.measured.Load()
	r.MeasureBatchContext(context.Background(), as)
	if src.measured.Load() != before {
		t.Fatalf("warm batch re-measured %d assignments", src.measured.Load()-before)
	}
}

// TestMeasureBatchContextFailedClassDuplicates: when a class's batch
// measurement fails, the error belongs to the first draw of the class and
// every duplicate re-measures individually — the single-flight follower
// rule, so transient failures don't fan out across a batch.
func TestMeasureBatchContextFailedClassDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a, err := assign.RandomPermutation(rng, batchTopo(), 5)
	if err != nil {
		t.Fatal(err)
	}
	var failures atomic.Int64
	src := &batchSource{fail: func(assign.Assignment) error {
		if failures.Add(1) == 1 {
			return errors.New("transient")
		}
		return nil
	}}
	r := NewCachedRunner(src, NewCache(64, nil), "tb")
	as := []assign.Assignment{a, a, a}
	perfs, errs := r.MeasureBatchContext(context.Background(), as)
	if errs[0] == nil {
		t.Fatal("leader's failure was not reported on the first draw")
	}
	for i := 1; i < 3; i++ {
		if errs[i] != nil {
			t.Fatalf("duplicate %d inherited the leader's error: %v", i, errs[i])
		}
		if math.Float64bits(perfs[i]) != math.Float64bits(classPerf(a)) {
			t.Fatalf("duplicate %d: perf %v != %v", i, perfs[i], classPerf(a))
		}
	}
	// Leader + one re-measure; the third draw hits the cache the re-measure
	// populated.
	if got := src.measured.Load(); got != 2 {
		t.Fatalf("measured %d times, want 2 (failed leader + one follower)", got)
	}
}

// TestMeasureBatchedCommitSemantics: outcomes commit strictly in draw
// order; quarantines commit and continue; the first fatal error aborts
// with every earlier commit intact and nothing after it.
func TestMeasureBatchedCommitSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	as, err := assign.Sample(rng, batchTopo(), 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	quarantineClass := as[7].CanonicalKey()
	fatalClass := as[41].CanonicalKey()
	if quarantineClass == fatalClass {
		t.Fatal("test setup: classes collide, pick new seeds")
	}
	fatalAt := -1
	for i, a := range as {
		if a.CanonicalKey() == fatalClass {
			fatalAt = i
			break
		}
	}
	src := &batchSource{fail: func(a assign.Assignment) error {
		switch a.CanonicalKey() {
		case quarantineClass:
			return fmt.Errorf("%w: flaky context", ErrQuarantined)
		case fatalClass:
			return errors.New("testbed died")
		}
		return nil
	}}
	// No cache: exercises the raw chunking and commit walk.
	r := NewCachedContextRunner(AsContextRunner(src), nil, "tb")
	var committedKeys []string
	commit := func(a assign.Assignment, perf float64, cerr error) error {
		committedKeys = append(committedKeys, a.CanonicalKey())
		if cerr == nil && math.Float64bits(perf) != math.Float64bits(classPerf(a)) {
			t.Fatalf("committed perf %v != class perf %v", perf, classPerf(a))
		}
		return nil
	}
	outs, err := measureBatched(context.Background(), r, as, 8, commit)
	if err == nil || !strings.Contains(err.Error(), "testbed died") {
		t.Fatalf("fatal error not surfaced: %v", err)
	}
	if len(outs) != fatalAt {
		t.Fatalf("got %d outcomes before the fatal draw, want %d", len(outs), fatalAt)
	}
	if len(committedKeys) != fatalAt {
		t.Fatalf("committed %d outcomes, want %d (everything before the fatal draw)", len(committedKeys), fatalAt)
	}
	for i, k := range committedKeys {
		if k != as[i].CanonicalKey() {
			t.Fatalf("commit %d out of draw order", i)
		}
	}
	sawQuarantine := false
	for i, o := range outs {
		wantQ := as[i].CanonicalKey() == quarantineClass
		if o.quarantined != wantQ {
			t.Fatalf("outcome %d: quarantined=%v, want %v", i, o.quarantined, wantQ)
		}
		sawQuarantine = sawQuarantine || wantQ
	}
	if !sawQuarantine {
		t.Fatal("test setup: no quarantined draw before the fatal one")
	}
}

// TestIterateBatchedMatchesIterateContext is the batch differential gate
// at the campaign level: same config and seed, same IterResult — Best,
// Final estimate, history, everything — across batch sizes, with and
// without the cache dedup in the loop.
func TestIterateBatchedMatchesIterateContext(t *testing.T) {
	cfg := IterConfig{
		Topo:          batchTopo(),
		Tasks:         4,
		AcceptLossPct: 8,
		Ninit:         120,
		Ndelta:        40,
		MaxSamples:    400,
	}
	for _, seed := range []int64{1, 5} {
		cfg.Seed = seed
		serial, serialErr := IterateContext(context.Background(), cfg, AsContextRunner(&batchSource{}))
		for _, size := range []int{1, 7, 64} {
			for _, cacheSize := range []int{0, 4096} {
				var cache *Cache
				if cacheSize > 0 {
					cache = NewCache(cacheSize, nil)
				}
				runner := NewCachedRunner(&batchSource{}, cache, "tb")
				got, err := IterateBatched(context.Background(), cfg, runner, BatchOptions{Size: size}, nil)
				if fmt.Sprint(err) != fmt.Sprint(serialErr) {
					t.Fatalf("seed %d size %d cache %d: err %v vs serial %v", seed, size, cacheSize, err, serialErr)
				}
				if !reflect.DeepEqual(got, serial) {
					t.Fatalf("seed %d size %d cache %d: IterResult diverged:\nbatch:  %+v\nserial: %+v", seed, size, cacheSize, got, serial)
				}
			}
		}
	}
}

// TestCollectSampleBatchedMatchesSerial: one sampling round, identical
// results and RNG consumption as CollectSampleContext.
func TestCollectSampleBatchedMatchesSerial(t *testing.T) {
	topo := batchTopo()
	rngA := rand.New(rand.NewSource(77))
	rngB := rand.New(rand.NewSource(77))
	serialRes, serialSkip, serialErr := CollectSampleContext(context.Background(), rngA, topo, 5, 150, AsContextRunner(&batchSource{}))
	runner := NewCachedRunner(&batchSource{}, NewCache(1024, nil), "tb")
	batchRes, batchSkip, batchErr := CollectSampleBatched(context.Background(), rngB, topo, 5, 150, runner, BatchOptions{Size: 32}, nil)
	if serialErr != nil || batchErr != nil {
		t.Fatalf("errs: %v / %v", serialErr, batchErr)
	}
	if !reflect.DeepEqual(serialRes, batchRes) || !reflect.DeepEqual(serialSkip, batchSkip) {
		t.Fatal("batched sampling round diverged from serial")
	}
	// Same RNG consumption: the next draw from both streams agrees.
	if rngA.Int63() != rngB.Int63() {
		t.Fatal("batched sampling consumed a different amount of RNG state")
	}
}

// TestBatchMetricsObserved: IterateBatched records batch counts and the
// deduped batch sizes into the registry's histogram.
func TestBatchMetricsObserved(t *testing.T) {
	reg := obs.NewRegistry()
	bm := NewBatchMetrics(reg)
	cfg := IterConfig{
		Topo: batchTopo(), Tasks: 4,
		AcceptLossPct: 8, Ninit: 120, Ndelta: 40, MaxSamples: 240, Seed: 2,
	}
	runner := NewCachedRunner(&batchSource{}, NewCache(4096, nil), "tb")
	// The campaign itself may fail estimation at this tiny sample size;
	// only the batch accounting is under test here.
	IterateBatched(context.Background(), cfg, runner, BatchOptions{Size: 16, Metrics: bm}, nil)
	if bm.Batches.Value() == 0 {
		t.Fatal("no batches counted")
	}
	if bm.Size.Count() != uint64(bm.Batches.Value()) {
		t.Fatalf("batch size observations %d != batches %v", bm.Size.Count(), bm.Batches.Value())
	}
	if bm.Size.Sum() > float64(cfg.MaxSamples) {
		t.Fatalf("measured %v assignments in batches, cache dedup should keep it <= %d draws", bm.Size.Sum(), cfg.MaxSamples)
	}
}
