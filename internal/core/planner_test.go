package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"optassign/internal/evt"
)

// syntheticEstimate builds an estimate from a known bounded population:
// X = bound − GPD(ξ, σ) so the tail above any threshold is a GPD with the
// same shape (threshold stability of the construction in reverse is only
// approximate, but the planner consumes the *fitted* model, so consistency
// is what matters).
func syntheticEstimate(t *testing.T, seed int64, n int) (Estimate, func() float64) {
	t.Helper()
	const bound = 1000.0
	tail := evt.GPD{Xi: -0.35, Sigma: 40}
	rng := rand.New(rand.NewSource(seed))
	draw := func() float64 { return bound - tail.Rand(rng) }
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = draw()
	}
	est, err := EstimateOptimal(xs, evt.POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return est, draw
}

func TestPlannerMedianMatchesSimulation(t *testing.T) {
	est, draw := syntheticEstimate(t, 1, 4000)
	p, err := NewPlanner(est)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{500, 2000} {
		want, err := p.MedianBestOfN(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Empirical distribution of best-of-n over independent trials.
		const trials = 120
		bests := make([]float64, trials)
		for tr := range bests {
			best := math.Inf(-1)
			for i := 0; i < n; i++ {
				if x := draw(); x > best {
					best = x
				}
			}
			bests[tr] = best
		}
		sort.Float64s(bests)
		empirical := bests[trials/2]
		if math.Abs(want-empirical)/empirical > 0.01 {
			t.Errorf("n=%d: predicted median best %v, simulated %v", n, want, empirical)
		}
	}
}

func TestPlannerMonotonicity(t *testing.T) {
	est, _ := syntheticEstimate(t, 2, 3000)
	p, err := NewPlanner(est)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, n := range []int{300, 1000, 3000, 10000, 100000} {
		m, err := p.MedianBestOfN(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if m <= prev {
			t.Errorf("median best-of-%d = %v not increasing", n, m)
		}
		if m > est.Optimal {
			t.Errorf("median best-of-%d = %v exceeds the estimated optimum %v", n, m, est.Optimal)
		}
		prev = m
	}
	// Improvement probability increases with n, stays in [0,1].
	p1, err := p.ProbImprove(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.ProbImprove(10000)
	if err != nil {
		t.Fatal(err)
	}
	if !(p1 >= 0 && p1 <= 1 && p2 >= p1 && p2 <= 1) {
		t.Errorf("ProbImprove: %v then %v", p1, p2)
	}
}

func TestPlannerSamplesForTarget(t *testing.T) {
	est, _ := syntheticEstimate(t, 3, 3000)
	p, err := NewPlanner(est)
	if err != nil {
		t.Fatal(err)
	}
	// A target halfway between the threshold and the optimum.
	target := (est.Report.Threshold.U + est.Optimal) / 2
	n, err := p.SamplesForTarget(target, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Errorf("n = %d", n)
	}
	// Closer targets need more samples.
	harder := est.Optimal - (est.Optimal-target)/10
	n2, err := p.SamplesForTarget(harder, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n {
		t.Errorf("harder target needs %d <= %d samples", n2, n)
	}
	if _, err := p.SamplesForTarget(est.Optimal*1.01, 0.95); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := p.SamplesForTarget(target, 1); err == nil {
		t.Error("prob=1 accepted")
	}
}

func TestPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(Estimate{}); err == nil {
		t.Error("empty estimate accepted")
	}
	est, _ := syntheticEstimate(t, 4, 2000)
	p, err := NewPlanner(est)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.BestOfNQuantile(0, 0.5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := p.BestOfNQuantile(100, 0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := p.ProbImprove(0); err == nil {
		t.Error("ProbImprove n=0 accepted")
	}
	// A tiny n whose best likely sits below the threshold is refused
	// rather than extrapolated.
	if _, err := p.BestOfNQuantile(2, 0.5); err == nil {
		t.Error("below-threshold quantile should error")
	}
}
