package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

func testAssignment(t *testing.T) assign.Assignment {
	t.Helper()
	a := assign.Assignment{Topo: t2.UltraSPARCT2(), Ctx: []int{0, 1, 2}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	return a
}

// flaky fails the first `failures` calls with errs (cycled), then succeeds.
type flaky struct {
	mu       sync.Mutex
	failures int
	err      error
	calls    int
}

func (f *flaky) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.calls <= f.failures {
		return 0, f.err
	}
	return 42, nil
}

func noSleep(recorded *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		if recorded != nil {
			*recorded = append(*recorded, d)
		}
		return nil
	}
}

func TestResilientRetriesTransient(t *testing.T) {
	f := &flaky{failures: 2, err: errors.New("transient glitch")}
	var delays []time.Duration
	r := NewResilientRunner(AsRunner(f), ResilientConfig{MaxAttempts: 3, sleep: noSleep(&delays)})
	perf, err := r.MeasureContext(context.Background(), testAssignment(t))
	if err != nil || perf != 42 {
		t.Fatalf("perf=%v err=%v", perf, err)
	}
	if f.calls != 3 {
		t.Errorf("calls = %d, want 3", f.calls)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2", len(delays))
	}
	// Backoff doubles: second delay ∈ 2·base·(1±jitter), first ∈ base·(1±jitter).
	base := 100 * time.Millisecond
	for i, d := range delays {
		want := base << i
		lo := time.Duration(float64(want) * 0.8)
		hi := time.Duration(float64(want) * 1.2)
		if d < lo || d > hi {
			t.Errorf("delay %d = %v, want within [%v, %v]", i, d, lo, hi)
		}
	}
	if len(r.Failed()) != 0 {
		t.Errorf("unexpected quarantines: %v", r.Failed())
	}
}

func TestResilientQuarantinesAfterBudget(t *testing.T) {
	f := &flaky{failures: 100, err: errors.New("still down")}
	r := NewResilientRunner(AsRunner(f), ResilientConfig{MaxAttempts: 4, sleep: noSleep(nil)})
	a := testAssignment(t)
	_, err := r.MeasureContext(context.Background(), a)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}
	if f.calls != 4 {
		t.Errorf("calls = %d, want 4", f.calls)
	}
	failed := r.Failed()
	if len(failed) != 1 || failed[0].Attempts != 4 {
		t.Fatalf("failed = %+v", failed)
	}
	if got := failed[0].Assignment.Ctx; len(got) != len(a.Ctx) {
		t.Errorf("quarantined assignment = %v", got)
	}
}

func TestResilientPermanentFailsFast(t *testing.T) {
	f := &flaky{failures: 100, err: Permanent(errors.New("invalid assignment"))}
	r := NewResilientRunner(AsRunner(f), ResilientConfig{MaxAttempts: 5, sleep: noSleep(nil)})
	_, err := r.MeasureContext(context.Background(), testAssignment(t))
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}
	if f.calls != 1 {
		t.Errorf("calls = %d, want 1 (no retries of a permanent error)", f.calls)
	}
}

func TestResilientTimeoutCutsHang(t *testing.T) {
	// The abandoned first attempt keeps running on its own goroutine
	// concurrently with the retry, so the counter must be atomic.
	var calls atomic.Int32
	hung := ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // hang until the per-attempt timeout fires
			return 0, ctx.Err()
		}
		return 7, nil
	})
	r := NewResilientRunner(AsRunner(hung), ResilientConfig{
		MaxAttempts: 2,
		Timeout:     20 * time.Millisecond,
		sleep:       noSleep(nil),
	})
	start := time.Now()
	perf, err := r.MeasureContext(context.Background(), testAssignment(t))
	if err != nil || perf != 7 {
		t.Fatalf("perf=%v err=%v", perf, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hang was not cut short: %v", elapsed)
	}
}

func TestResilientCancelAbortsWithoutQuarantine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := &flaky{failures: 100, err: errors.New("down")}
	r := NewResilientRunner(AsRunner(f), ResilientConfig{MaxAttempts: 3, sleep: noSleep(nil)})
	_, err := r.MeasureContext(ctx, testAssignment(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrQuarantined) || len(r.Failed()) != 0 {
		t.Error("cancellation must not quarantine the assignment")
	}
}

func TestPermanentMarking(t *testing.T) {
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
	base := errors.New("boom")
	p := Permanent(base)
	if !IsPermanent(p) || IsPermanent(base) {
		t.Error("classification broken")
	}
	if !errors.Is(p, base) {
		t.Error("Permanent must preserve the error chain")
	}
	if !IsPermanent(fmt.Errorf("wrapped: %w", p)) {
		t.Error("marking must survive wrapping")
	}
}

func TestCollectSampleContextSkipsQuarantined(t *testing.T) {
	topo := t2.UltraSPARCT2()
	// Quarantine every third measurement.
	calls := 0
	runner := ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		calls++
		if calls%3 == 0 {
			return 0, fmt.Errorf("%w: injected", ErrQuarantined)
		}
		return float64(calls), nil
	})
	rng := rand.New(rand.NewSource(1))
	results, skipped, err := CollectSampleContext(context.Background(), rng, topo, 6, 30, runner)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 || len(skipped) != 10 {
		t.Fatalf("results=%d skipped=%d, want 20/10", len(results), len(skipped))
	}
	// The drawn assignment sequence must be identical to a fault-free
	// run's: quarantines skip measurements, not draws.
	rng2 := rand.New(rand.NewSource(1))
	as, err := assign.Sample(rng2, topo, 6, 30)
	if err != nil {
		t.Fatal(err)
	}
	merged := 0
	for i, a := range as {
		var got []int
		if (i+1)%3 == 0 {
			got = skipped[i/3].Assignment.Ctx
		} else {
			got = results[merged].Assignment.Ctx
			merged++
		}
		for j := range got {
			if got[j] != a.Ctx[j] {
				t.Fatalf("draw %d diverged: %v vs %v", i, got, a.Ctx)
			}
		}
	}
}

func TestCollectSampleContextAbortsOnOtherErrors(t *testing.T) {
	topo := t2.UltraSPARCT2()
	runner := ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		return 0, errors.New("hard failure")
	})
	_, _, err := CollectSampleContext(context.Background(), rand.New(rand.NewSource(1)), topo, 6, 5, runner)
	if err == nil {
		t.Fatal("hard failure did not abort the sample")
	}
}

func TestIterateResumeContinuesDrawSequence(t *testing.T) {
	topo := t2.UltraSPARCT2()
	perfOf := func(a assign.Assignment) float64 {
		// A deterministic, assignment-dependent pseudo-performance with a
		// bounded tail so the estimator converges.
		s := 0.0
		for i, c := range a.Ctx {
			s += float64((c*31+i*7)%97) / 97
		}
		return 1000 + 100*s/float64(len(a.Ctx))
	}
	var full, resumedLog []assign.Assignment
	mkRunner := func(log *[]assign.Assignment) Runner {
		return RunnerFunc(func(a assign.Assignment) (float64, error) {
			*log = append(*log, a.Clone())
			return perfOf(a), nil
		})
	}
	cfg := IterConfig{Topo: topo, Tasks: 8, AcceptLossPct: 0.5, Ninit: 300, Ndelta: 100, MaxSamples: 600, Seed: 5}

	fullRes, fullErr := Iterate(cfg, mkRunner(&full))

	// "Crash" after 150 measurements: resume with those results.
	k := 150
	resumeCfg := cfg
	resumeCfg.Resume = make([]SampleResult, k)
	for i, a := range full[:k] {
		resumeCfg.Resume[i] = SampleResult{Assignment: a, Perf: perfOf(a)}
	}
	resumedRes, resumedErr := Iterate(resumeCfg, mkRunner(&resumedLog))

	if (fullErr == nil) != (resumedErr == nil) {
		t.Fatalf("errs differ: %v vs %v", fullErr, resumedErr)
	}
	// Zero re-measurements of the resumed prefix, and the continued draw
	// sequence is exactly the uninterrupted run's.
	if want := len(full) - k; len(resumedLog) != want {
		t.Fatalf("resumed run measured %d, want %d", len(resumedLog), want)
	}
	for i, a := range resumedLog {
		for j := range a.Ctx {
			if a.Ctx[j] != full[k+i].Ctx[j] {
				t.Fatalf("resumed draw %d diverged", i)
			}
		}
	}
	if resumedRes.Samples != fullRes.Samples {
		t.Errorf("samples: %d vs %d", resumedRes.Samples, fullRes.Samples)
	}
	if resumedRes.Best.Perf != fullRes.Best.Perf {
		t.Errorf("best: %v vs %v", resumedRes.Best.Perf, fullRes.Best.Perf)
	}
}

func TestIterateAllQuarantinedTerminates(t *testing.T) {
	topo := t2.UltraSPARCT2()
	runner := ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		return 0, fmt.Errorf("%w: testbed unreachable", ErrQuarantined)
	})
	cfg := IterConfig{Topo: topo, Tasks: 6, AcceptLossPct: 1, Ninit: 50, Ndelta: 10, MaxSamples: 100}
	_, err := IterateContext(context.Background(), cfg, runner)
	if err == nil {
		t.Fatal("fully-quarantined campaign reported success")
	}
}

func TestIterResultCaptureProbCountsMeasuredOnly(t *testing.T) {
	res := IterResult{Samples: 100, Quarantined: make([]Skipped, 50)}
	got, err := res.CaptureProb(1)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := CaptureProbability(100, 1)
	if got != want {
		t.Errorf("capture prob %v, want %v (measured-only accounting)", got, want)
	}
}
