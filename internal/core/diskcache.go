package core

// This file layers a persistent second tier under the in-memory LRU
// measurement cache. The LRU (L1) answers within a process; a CacheStore
// (L2, in practice internal/cas.Store) answers across processes and across
// campaign lifetimes: a canonical class measured by any prior run sharing
// the store directory is promoted into L1 and served without touching the
// testbed.
//
// Tier protocol, per lookup key:
//
//  1. L1 hit  → serve (optassign_cache_hits_total).
//  2. In-flight leader exists → join it (coalesced).
//  3. Lead a flight; probe L2. A disk hit resolves the flight without
//     measuring: promote into L1, count a cache hit plus a disk hit.
//  4. Disk miss → measure. Success populates L1 and writes through to L2.
//
// L2 failures are never fatal to a measurement: a store that cannot be
// read or written degrades the cache to L1-only for that lookup, counted
// on optassign_diskcache_errors_total. Only successful measurements are
// written through — errors and quarantines stay un-memoized at both
// tiers, exactly as for L1, so journal bytes are identical with the disk
// tier on or off.

// A CacheStore is a persistent key→performance map used as the L2 tier of
// a Cache. Implementations must be safe for concurrent use; cas.Store is
// the canonical one. Get reports whether the key is present; Put persists
// a value durably (it may be a no-op for keys already present); Bytes
// reports the store's on-disk footprint for the
// optassign_diskcache_bytes gauge.
type CacheStore interface {
	Get(key string) (float64, bool)
	Put(key string, perf float64) error
	Bytes() int64
}

// AttachStore layers store under the LRU as a persistent L2 tier. Pass
// nil to detach. Attach before the cache is in use; the store pointer is
// read without synchronization on hot paths.
func (c *Cache) AttachStore(store CacheStore) {
	c.store = store
}

// storeGet probes the L2 tier. It reports (0, false) when no store is
// attached; disk hits and misses are counted only when a store exists, so
// L1-only configurations publish no diskcache series movement.
func (c *Cache) storeGet(key string) (float64, bool) {
	if c.store == nil {
		return 0, false
	}
	perf, ok := c.store.Get(key)
	if ok {
		c.m.diskHits().Inc()
	} else {
		c.m.diskMisses().Inc()
	}
	return perf, ok
}

// storePut writes a successful measurement through to the L2 tier. Store
// errors are counted, not propagated: the measurement already succeeded,
// and a broken disk cache must not fail the campaign.
func (c *Cache) storePut(key string, perf float64) {
	if c.store == nil {
		return
	}
	if err := c.store.Put(key, perf); err != nil {
		c.m.diskErrors().Inc()
		return
	}
	c.m.diskBytes().Set(float64(c.store.Bytes()))
}
