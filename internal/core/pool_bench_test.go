package core_test

// Benchmarks for the parallel sampling layer. delayRunner models a
// testbed with a fixed per-measurement cost (the paper's real testbed
// spends ~1.5 s per measurement, §5.4); the parallel/serial ratio at a
// given worker count is the campaign-time speedup an operator can expect
// from that many testbeds.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
)

// delayRunner is a concurrency-safe runner costing delay per measurement.
func delayRunner(delay time.Duration) core.ContextRunner {
	return core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return hashPerf(a), nil
	})
}

const (
	benchDraws = 64
	benchDelay = time.Millisecond
)

func BenchmarkCollectSample(b *testing.B) {
	topo, tasks := smallTopo(), 3
	runner := delayRunner(benchDelay)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := core.CollectSampleContext(context.Background(),
			rand.New(rand.NewSource(1)), topo, tasks, benchDraws, runner)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectSampleParallel(b *testing.B) {
	topo, tasks := smallTopo(), 3
	for _, workers := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			pool, err := core.NewReplicatedPool(delayRunner(benchDelay), workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, _, err := core.CollectSampleParallel(context.Background(),
					rand.New(rand.NewSource(1)), topo, tasks, benchDraws, pool, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPoolRunner measures raw dispatch overhead: a zero-delay runner
// makes the channel machinery itself the cost.
func BenchmarkPoolRunner(b *testing.B) {
	topo, tasks := smallTopo(), 3
	pool, err := core.NewReplicatedPool(delayRunner(0), 8)
	if err != nil {
		b.Fatal(err)
	}
	as, err := assign.Sample(rand.New(rand.NewSource(1)), topo, tasks, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range pool.MeasureBatch(context.Background(), as) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}
