package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"optassign/internal/assign"
)

// Outcome is the result of measuring one assignment of a batch.
type Outcome struct {
	Perf float64
	Err  error
	// Started reports that the measurement was actually dispatched to a
	// worker. A false Started means the batch was cancelled before this
	// assignment's turn came: Err carries the context error and no testbed
	// time was spent — exactly the draws a serial loop would never have
	// reached.
	Started bool
}

// PoolRunner fans a batch of measurements out across a fixed pool of
// workers. The samples of a campaign are iid by construction (§3.1), so
// they are embarrassingly parallel: with N independent testbeds (or one
// concurrency-safe simulator) the §5.4 wall-clock cost of a campaign
// divides by N. Dispatch is work-stealing — each worker pulls the next
// undone draw index as it frees up — so one slow measurement never stalls
// the rest of the batch.
//
// PoolRunner itself imposes no ordering; CollectSampleParallel reassembles
// outcomes in draw order and is the layer that makes a parallel campaign
// byte-identical to a serial one.
type PoolRunner struct {
	workers []ContextRunner
	metrics *PoolMetrics
}

// NewPoolRunner builds a pool with one goroutine per worker runner. Each
// worker measures on its own runner, so runners that are not safe for
// concurrent use (a remote.Client, a stateful harness) get exactly one
// in-flight measurement each. Wrap each worker in its own ResilientRunner
// for per-worker retry/quarantine.
func NewPoolRunner(workers ...ContextRunner) (*PoolRunner, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("core: pool needs at least one worker")
	}
	for i, w := range workers {
		if w == nil {
			return nil, fmt.Errorf("core: pool worker %d is nil", i)
		}
	}
	return &PoolRunner{workers: append([]ContextRunner(nil), workers...)}, nil
}

// NewReplicatedPool builds an n-worker pool whose workers share one
// runner. The runner must be safe for concurrent use — the simulated
// testbed (a pure function of the assignment), a ResilientRunner, or a
// remote.ClientPool all qualify.
func NewReplicatedPool(runner ContextRunner, n int) (*PoolRunner, error) {
	if runner == nil {
		return nil, fmt.Errorf("core: nil runner")
	}
	if n < 1 {
		return nil, fmt.Errorf("core: pool needs at least one worker, got %d", n)
	}
	workers := make([]ContextRunner, n)
	for i := range workers {
		workers[i] = runner
	}
	return NewPoolRunner(workers...)
}

// Workers returns the pool's concurrency.
func (p *PoolRunner) Workers() int { return len(p.workers) }

// Instrument attaches a metrics bundle (typically NewPoolMetrics with
// this pool's worker count). Instrumentation only observes — dispatch
// order, RNG consumption and commit order are untouched, so the
// deterministic-equivalence guarantee holds with it on. A nil bundle
// leaves the pool uninstrumented. Call before the first measurement.
func (p *PoolRunner) Instrument(m *PoolMetrics) { p.metrics = m }

// completion pairs an outcome with the draw index it belongs to.
type completion struct {
	i int
	o Outcome
}

// stream dispatches every assignment to the pool and delivers completions
// as they happen, in completion order. The channel closes after the last
// worker exits. Cancellation does not abandon in-flight measurements —
// each worker finishes (or is interrupted by) its current one and then
// stops pulling; undispatched draws are delivered unstarted with ctx's
// error.
func (p *PoolRunner) stream(ctx context.Context, as []assign.Assignment) <-chan completion {
	out := make(chan completion, len(p.workers))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(next)
		for i := range as {
			select {
			case next <- i:
			case <-ctx.Done():
				// Deliver the rest unstarted so every index gets exactly
				// one completion.
				for j := i; j < len(as); j++ {
					out <- completion{j, Outcome{Err: ctx.Err()}}
				}
				return
			}
		}
	}()
	m := p.metrics
	for wi, w := range p.workers {
		wg.Add(1)
		go func(wi int, w ContextRunner) {
			defer wg.Done()
			busy := m.busy(wi)
			for i := range next {
				if m != nil {
					m.Dispatched.Inc()
				}
				start := time.Time{}
				if busy != nil {
					start = time.Now()
				}
				perf, err := w.MeasureContext(ctx, as[i])
				if busy != nil {
					busy.Add(time.Since(start).Seconds())
				}
				if m != nil {
					m.Completed.Inc()
				}
				out <- completion{i, Outcome{Perf: perf, Err: err, Started: true}}
			}
		}(wi, w)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// MeasureBatch measures every assignment across the pool and returns the
// outcomes indexed like the input. It never fails as a whole: per-draw
// errors (including cancellation) live in each Outcome.
func (p *PoolRunner) MeasureBatch(ctx context.Context, as []assign.Assignment) []Outcome {
	out := make([]Outcome, len(as))
	for c := range p.stream(ctx, as) {
		out[c.i] = c.o
	}
	return out
}
