package core

import (
	"context"
	"errors"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/cas"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// fakeStore is a CacheStore with scriptable failures and call counts.
type fakeStore struct {
	data     map[string]float64
	gets     int
	puts     int
	failPuts bool
}

func newFakeStore() *fakeStore { return &fakeStore{data: map[string]float64{}} }

func (f *fakeStore) Get(key string) (float64, bool) {
	f.gets++
	v, ok := f.data[key]
	return v, ok
}

func (f *fakeStore) Put(key string, perf float64) error {
	f.puts++
	if f.failPuts {
		return errors.New("disk full")
	}
	f.data[key] = perf
	return nil
}

func (f *fakeStore) Bytes() int64 { return int64(len(f.data)) * 32 }

// TestDiskTierServesAcrossProcessLifetimes is the point of the L2: a
// class measured under one Cache+Store is served by a COMPLETELY fresh
// Cache (fresh LRU, fresh store handle on the same directory) without
// ever reaching the wrapped runner — the "any prior run on this host"
// guarantee.
func TestDiskTierServesAcrossProcessLifetimes(t *testing.T) {
	dir := t.TempDir()
	topo := t2.UltraSPARCT2()
	a := assign.Assignment{Topo: topo, Ctx: []int{0, 1, 9}}
	ctx := context.Background()

	st1, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inner1 := &countingRunner{}
	c1 := NewCache(0, nil)
	c1.AttachStore(st1)
	want, err := NewCachedContextRunner(inner1, c1, "tb-A").MeasureContext(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	if inner1.calls.Load() != 1 {
		t.Fatalf("first run measured %d times, want 1", inner1.calls.Load())
	}
	st1.Close()

	// "Next process": nothing survives but the directory.
	st2, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m := NewCacheMetrics(obs.NewRegistry())
	inner2 := &countingRunner{}
	c2 := NewCache(0, m)
	c2.AttachStore(st2)
	got, err := NewCachedContextRunner(inner2, c2, "tb-A").MeasureContext(ctx, a)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("disk-served perf %v != originally measured %v", got, want)
	}
	if inner2.calls.Load() != 0 {
		t.Fatalf("second run re-measured a persisted class (%d inner calls)", inner2.calls.Load())
	}
	if m.DiskHits.Value() != 1 {
		t.Fatalf("DiskHits = %v, want 1", m.DiskHits.Value())
	}
	if m.Hits.Value() != 1 {
		t.Fatalf("a disk hit must also count as a cache hit; Hits = %v", m.Hits.Value())
	}
}

// TestDiskHitPromotesToL1: after one disk hit the class lives in the LRU,
// so repeat lookups stop touching the store entirely.
func TestDiskHitPromotesToL1(t *testing.T) {
	topo := t2.UltraSPARCT2()
	a := assign.Assignment{Topo: topo, Ctx: []int{3}}
	ctx := context.Background()

	st := newFakeStore()
	inner := &countingRunner{}
	c := NewCache(0, nil)
	c.AttachStore(st)
	r := NewCachedContextRunner(inner, c, "tb-A")

	if _, err := r.MeasureContext(ctx, a); err != nil { // miss → measure → write-through
		t.Fatal(err)
	}
	if st.puts != 1 {
		t.Fatalf("write-through Puts = %d, want 1", st.puts)
	}
	getsAfterFill := st.gets
	for i := 0; i < 5; i++ {
		if _, err := r.MeasureContext(ctx, a); err != nil {
			t.Fatal(err)
		}
	}
	if st.gets != getsAfterFill {
		t.Fatalf("L1-resident class still probed the store (%d extra Gets)", st.gets-getsAfterFill)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls.Load())
	}
}

// TestDiskTierStoresOnlySuccesses: failed measurements must stay
// un-memoized at both tiers, exactly like the L1 rule.
func TestDiskTierStoresOnlySuccesses(t *testing.T) {
	topo := t2.UltraSPARCT2()
	a := assign.Assignment{Topo: topo, Ctx: []int{5}}
	st := newFakeStore()
	boom := errors.New("transient")
	inner := &countingRunner{perf: func(assign.Assignment) (float64, error) { return 0, boom }}
	c := NewCache(0, nil)
	c.AttachStore(st)
	r := NewCachedContextRunner(inner, c, "tb-A")
	if _, err := r.MeasureContext(context.Background(), a); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if st.puts != 0 {
		t.Fatalf("a failed measurement reached the persistent store (%d Puts)", st.puts)
	}
}

// TestDiskErrorsDegradeNotFail: a store that cannot persist must not fail
// the measurement — the campaign keeps running on L1 alone, with the
// failure counted.
func TestDiskErrorsDegradeNotFail(t *testing.T) {
	topo := t2.UltraSPARCT2()
	a := assign.Assignment{Topo: topo, Ctx: []int{2, 7}}
	st := newFakeStore()
	st.failPuts = true
	m := NewCacheMetrics(obs.NewRegistry())
	inner := &countingRunner{}
	c := NewCache(0, m)
	c.AttachStore(st)
	r := NewCachedContextRunner(inner, c, "tb-A")
	perf, err := r.MeasureContext(context.Background(), a)
	if err != nil {
		t.Fatalf("measurement failed because the disk cache did: %v", err)
	}
	if perf != classPerf(a) {
		t.Fatalf("perf = %v, want %v", perf, classPerf(a))
	}
	if m.DiskErrors.Value() != 1 {
		t.Fatalf("DiskErrors = %v, want 1", m.DiskErrors.Value())
	}
	// The class is still served from L1 afterwards.
	if _, err := r.MeasureContext(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls.Load())
	}
}

// TestLookupInsertRoundTrip covers the batch-path probes directly: lookup
// misses cold, insert populates both tiers, lookup then hits L1, and a
// fresh cache sharing the store hits via L2 promotion.
func TestLookupInsertRoundTrip(t *testing.T) {
	st := newFakeStore()
	c := NewCache(0, nil)
	c.AttachStore(st)
	const key = "tb\x1f8x2x4\x1fK"
	if _, ok := c.lookup(key); ok {
		t.Fatal("cold lookup hit")
	}
	c.insert(key, 321)
	if v, ok := c.lookup(key); !ok || v != 321 {
		t.Fatalf("lookup after insert = %v, %v", v, ok)
	}
	c2 := NewCache(0, nil)
	c2.AttachStore(st)
	if v, ok := c2.lookup(key); !ok || v != 321 {
		t.Fatalf("fresh-cache lookup via store = %v, %v", v, ok)
	}
}
