package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// This file is the batched measurement path: instead of resolving one
// draw at a time, a whole chunk of draws is probed against the cache at
// once and the unique cache-missing classes are handed to the measurement
// source as a single batch, which it may evaluate core-sharded
// (netdps.Testbed.MeasureBatch, cycle.BatchSim). Outcomes still commit
// strictly in draw order with the same semantics as the serial and
// parallel collectors, so journals are byte-identical across all three.

// BatchMeasurer is the capability a measurement source exposes to have
// cache misses coalesced into one core-sharded pass instead of being
// measured one by one. Values and errors are index-aligned with as; a
// per-assignment error must not affect its batchmates. netdps.Testbed
// satisfies it structurally.
type BatchMeasurer interface {
	MeasureBatch(as []assign.Assignment) ([]float64, []error)
}

// DefaultBatchSize is the draws-per-chunk used when BatchOptions.Size is
// unset: large enough to amortize batch setup and keep every core busy,
// small enough that journal commits stay frequent.
const DefaultBatchSize = 64

// BatchOptions tunes IterateBatched.
type BatchOptions struct {
	// Size is the number of draws probed and measured per chunk
	// (DefaultBatchSize if <= 0). Chunks are commit units: every outcome
	// of a chunk is journaled before the next chunk starts measuring.
	Size int
	// Metrics observes batch counts and sizes; nil disables.
	Metrics *BatchMetrics
}

// batchMeasurerOf extracts the batch capability from a runner stack,
// looking through the package's own interface adapters. Middleware that
// adds semantics (retry, journaling) deliberately hides the capability:
// batching through it would change how faults present.
func batchMeasurerOf(r any) (BatchMeasurer, bool) {
	for {
		if bm, ok := r.(BatchMeasurer); ok {
			return bm, true
		}
		switch v := r.(type) {
		case legacyRunner:
			r = v.r
		case contextOnlyRunner:
			r = v.cr
		default:
			return nil, false
		}
	}
}

// InstrumentBatch attaches batch-path metrics to the runner; nil detaches.
func (r *CachedRunner) InstrumentBatch(m *BatchMetrics) { r.bm = m }

func (r *CachedRunner) observeBatch(measured int) {
	r.bm.batches().Inc()
	r.bm.batchSize().Observe(float64(measured))
}

// MeasureBatchContext resolves a chunk of assignments through the cache
// tiers and the wrapped source's batch path:
//
//  1. every draw is probed against the LRU and the persistent store;
//  2. the unique canonical classes still missing are measured in ONE
//     batch (core-sharded when the source implements BatchMeasurer,
//     serially otherwise), and successes populate both cache tiers;
//  3. duplicates of a failed class re-measure individually — exactly the
//     single-flight rule that a leader's error belongs to its own draw
//     while followers measure for themselves.
//
// Results are index-aligned with as and identical, value for value, to
// measuring each assignment with MeasureContext in order.
func (r *CachedRunner) MeasureBatchContext(ctx context.Context, as []assign.Assignment) ([]float64, []error) {
	perfs := make([]float64, len(as))
	errs := make([]error, len(as))
	if len(as) == 0 {
		return perfs, errs
	}
	bm, hasBatch := batchMeasurerOf(r.inner)
	if r.cache == nil {
		// Uncached: no class identity to dedup on, measure everything.
		r.observeBatch(len(as))
		if hasBatch {
			return bm.MeasureBatch(as)
		}
		for i, a := range as {
			perfs[i], errs[i] = r.inner.MeasureContext(ctx, a)
		}
		return perfs, errs
	}

	keys := make([]string, len(as))
	resolved := make([]bool, len(as))
	seen := make(map[string]struct{}, len(as))
	var uniq []int // first unresolved occurrence per class, in draw order
	for i, a := range as {
		keys[i] = r.key(a)
		if perf, ok := r.cache.lookup(keys[i]); ok {
			perfs[i], resolved[i] = perf, true
			continue
		}
		if _, dup := seen[keys[i]]; !dup {
			seen[keys[i]] = struct{}{}
			uniq = append(uniq, i)
		}
	}

	if len(uniq) > 0 {
		r.observeBatch(len(uniq))
		ua := make([]assign.Assignment, len(uniq))
		for j, i := range uniq {
			ua[j] = as[i]
		}
		var uperfs []float64
		var uerrs []error
		if hasBatch {
			uperfs, uerrs = bm.MeasureBatch(ua)
		} else {
			uperfs, uerrs = make([]float64, len(ua)), make([]error, len(ua))
			for j, a := range ua {
				uperfs[j], uerrs[j] = r.inner.MeasureContext(ctx, a)
			}
		}
		for j, i := range uniq {
			if uerrs[j] == nil {
				r.cache.insert(keys[i], uperfs[j])
			}
			perfs[i], errs[i], resolved[i] = uperfs[j], uerrs[j], true
		}
	}

	for i := range as {
		if resolved[i] {
			continue
		}
		// A duplicate whose class leader ran in this batch: a success is
		// in the cache now; a failure means this draw measures for itself.
		if perf, ok := r.cache.lookup(keys[i]); ok {
			perfs[i] = perf
			continue
		}
		perfs[i], errs[i] = r.MeasureContext(ctx, as[i])
	}
	return perfs, errs
}

// measureBatched is the measurer behind IterateBatched: it slices the
// round into chunks of at most size draws, resolves each chunk through
// runner.MeasureBatchContext, and walks the outcomes in draw order with
// the collectors' shared semantics — successes and quarantines commit and
// extend the outcome stream, the first fatal error aborts with everything
// before it intact and the rest of the round discarded.
func measureBatched(ctx context.Context, runner *CachedRunner, as []assign.Assignment, size int, commit CommitFunc) ([]outcome, error) {
	outs := make([]outcome, 0, len(as))
	for start := 0; start < len(as); start += size {
		if err := ctx.Err(); err != nil {
			return outs, err
		}
		end := start + size
		if end > len(as) {
			end = len(as)
		}
		chunk := as[start:end]
		perfs, errs := runner.MeasureBatchContext(ctx, chunk)
		for i, a := range chunk {
			switch {
			case errs[i] == nil:
				if commit != nil {
					if cerr := commit(a, perfs[i], nil); cerr != nil {
						return outs, fmt.Errorf("core: measuring assignment: %w", cerr)
					}
				}
				outs = append(outs, outcome{perf: perfs[i]})
			case errors.Is(errs[i], ErrQuarantined):
				if commit != nil {
					if cerr := commit(a, 0, errs[i]); cerr != nil {
						return outs, fmt.Errorf("core: measuring assignment: %w", cerr)
					}
				}
				outs = append(outs, outcome{quarantined: true, err: errs[i]})
			default:
				return outs, fmt.Errorf("core: measuring assignment: %w", errs[i])
			}
		}
	}
	return outs, nil
}

// CollectSampleBatched is CollectSampleContext with chunk-batched
// measurement: it draws the identical n iid assignments from rng (same
// RNG consumption, so -resume fast-forwarding is unaffected), resolves
// them in batches through the cache and the source's core-sharded batch
// path, and returns results, skipped and commits exactly as a serial run
// with the same seed produces them.
func CollectSampleBatched(ctx context.Context, rng *rand.Rand, topo t2.Topology, tasks, n int, runner *CachedRunner, opts BatchOptions, commit CommitFunc) (results []SampleResult, skipped []Skipped, err error) {
	if runner == nil {
		return nil, nil, fmt.Errorf("core: nil runner")
	}
	as, err := assign.Sample(rng, topo, tasks, n)
	if err != nil {
		return nil, nil, err
	}
	size := opts.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	runner.InstrumentBatch(opts.Metrics)
	outs, err := measureBatched(ctx, runner, as, size, commit)
	results, skipped = splitOutcomes(as, outs)
	return results, skipped, err
}

// IterateBatched runs the §5.3 iterative algorithm with every sampling
// round measured in cache-deduped, core-sharded batches. Given the same
// IterConfig (seed included) and a deterministic measurement source, it
// visits the identical assignment sequence and produces the identical
// result and commit stream as IterateContext and IterateParallel — only
// the measurement wall-clock changes.
func IterateBatched(ctx context.Context, cfg IterConfig, runner *CachedRunner, opts BatchOptions, commit CommitFunc) (IterResult, error) {
	if runner == nil {
		return IterResult{}, fmt.Errorf("core: nil runner")
	}
	size := opts.Size
	if size <= 0 {
		size = DefaultBatchSize
	}
	runner.InstrumentBatch(opts.Metrics)
	return iterate(ctx, cfg, func(ctx context.Context, as []assign.Assignment) ([]outcome, error) {
		return measureBatched(ctx, runner, as, size, commit)
	})
}
