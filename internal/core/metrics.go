package core

import (
	"strconv"

	"optassign/internal/obs"
)

// This file defines the package's metric bundles: one struct per
// instrumented subsystem, built from an obs.Registry. Every constructor
// accepts a nil registry and then returns nil, and every recording site
// guards on the nil bundle, so an uninstrumented campaign pays one
// pointer check per event and allocates nothing — the
// zero-overhead-when-disabled rule of internal/obs.

// ResilientMetrics counts what a ResilientRunner does to keep a campaign
// alive: attempts, retries, backoff time, quarantines, and attempts
// abandoned at their timeout (with the eventual late outcomes, so
// operators can see when Timeout is set too tight).
type ResilientMetrics struct {
	Attempts       *obs.Counter
	Retries        *obs.Counter
	Quarantines    *obs.Counter
	BackoffSeconds *obs.Counter
	Abandoned      *obs.Counter
	LateSuccesses  *obs.Counter
	LateFailures   *obs.Counter
}

// NewResilientMetrics registers the resilient-runner series on r; a nil
// registry yields a nil (disabled) bundle.
func NewResilientMetrics(r *obs.Registry) *ResilientMetrics {
	if r == nil {
		return nil
	}
	return &ResilientMetrics{
		Attempts:       r.Counter("optassign_resilient_attempts_total", "Measurement attempts, first tries and retries included."),
		Retries:        r.Counter("optassign_resilient_retries_total", "Attempts that failed transiently and were retried."),
		Quarantines:    r.Counter("optassign_resilient_quarantines_total", "Assignments abandoned after exhausting their retry budget."),
		BackoffSeconds: r.Counter("optassign_resilient_backoff_seconds_total", "Time scheduled sleeping between retries."),
		Abandoned:      r.Counter("optassign_resilient_abandoned_total", "Attempts abandoned on their goroutine at the per-attempt timeout."),
		LateSuccesses:  r.Counter("optassign_resilient_late_outcomes_total", "Outcomes from abandoned attempts, by eventual result.", obs.L("result", "success")),
		LateFailures:   r.Counter("optassign_resilient_late_outcomes_total", "Outcomes from abandoned attempts, by eventual result.", obs.L("result", "failure")),
	}
}

// The lowercase accessors make recording sites read naturally while
// staying nil-safe on a disabled bundle: m.attempts() on a nil m is a
// nil *obs.Counter, whose methods no-op.

func (m *ResilientMetrics) attempts() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Attempts
}

func (m *ResilientMetrics) retries() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Retries
}

func (m *ResilientMetrics) quarantines() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Quarantines
}

func (m *ResilientMetrics) backoffSeconds() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.BackoffSeconds
}

func (m *ResilientMetrics) abandoned() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Abandoned
}

func (m *ResilientMetrics) lateOutcome(ok bool) *obs.Counter {
	if m == nil {
		return nil
	}
	if ok {
		return m.LateSuccesses
	}
	return m.LateFailures
}

// PoolMetrics observes a PoolRunner and the parallel collector above it:
// how busy each worker is, how far completions run ahead of the in-order
// commit point (reorder-buffer depth, commit lag), and how many draws
// flow through.
type PoolMetrics struct {
	Dispatched  *obs.Counter
	Completed   *obs.Counter
	Committed   *obs.Counter
	BusySeconds []*obs.Counter // indexed by worker
	// ReorderDepth is the number of completions parked in the reorder
	// buffer waiting for an earlier draw; CommitLag is, per completion,
	// how many draw indices ahead of the commit point it arrived.
	ReorderDepth *obs.Gauge
	CommitLag    *obs.Histogram
}

// NewPoolMetrics registers the worker-pool series on r for a pool of the
// given size; a nil registry yields a nil bundle.
func NewPoolMetrics(r *obs.Registry, workers int) *PoolMetrics {
	if r == nil {
		return nil
	}
	m := &PoolMetrics{
		Dispatched:   r.Counter("optassign_pool_dispatched_total", "Draws handed to a worker."),
		Completed:    r.Counter("optassign_pool_completed_total", "Draws whose measurement finished (successfully or not)."),
		Committed:    r.Counter("optassign_pool_committed_total", "Draws committed in order by the parallel collector."),
		ReorderDepth: r.Gauge("optassign_pool_reorder_depth", "Completions buffered awaiting an earlier draw."),
		CommitLag:    r.Histogram("optassign_pool_commit_lag", "Draw indices a completion arrived ahead of the commit point.", []float64{0, 1, 2, 4, 8, 16, 32, 64}),
	}
	for i := 0; i < workers; i++ {
		m.BusySeconds = append(m.BusySeconds,
			r.Counter("optassign_pool_worker_busy_seconds_total", "Wall-clock time each worker spent measuring.", obs.L("worker", strconv.Itoa(i))))
	}
	return m
}

// busy returns worker i's busy-time counter, nil-safely.
func (m *PoolMetrics) busy(i int) *obs.Counter {
	if m == nil || i >= len(m.BusySeconds) {
		return nil
	}
	return m.BusySeconds[i]
}

// CacheMetrics observes a measurement Cache: how many draws were served
// from memoized classes (hits), how many reached the real testbed
// (misses), how many joined an in-flight measurement instead of starting
// their own (coalesced), plus the entry count, evictions and in-flight
// leaders.
// The Disk* series observe the optional persistent L2 tier (see
// diskcache.go): lookups answered from disk, lookups that fell through to
// a real measurement, the store's on-disk footprint, and store I/O errors
// (which degrade the cache, never the campaign).
type CacheMetrics struct {
	Hits       *obs.Counter
	Misses     *obs.Counter
	Coalesced  *obs.Counter
	Evictions  *obs.Counter
	Size       *obs.Gauge
	Inflight   *obs.Gauge
	DiskHits   *obs.Counter
	DiskMisses *obs.Counter
	DiskBytes  *obs.Gauge
	DiskErrors *obs.Counter
}

// NewCacheMetrics registers the measurement-cache series on r; a nil
// registry yields a nil (disabled) bundle.
func NewCacheMetrics(r *obs.Registry) *CacheMetrics {
	if r == nil {
		return nil
	}
	return &CacheMetrics{
		Hits:       r.Counter("optassign_cache_hits_total", "Measurements served from the canonical-form cache."),
		Misses:     r.Counter("optassign_cache_misses_total", "Measurements that reached the wrapped runner."),
		Coalesced:  r.Counter("optassign_cache_coalesced_total", "Callers that joined an in-flight measurement of the same class."),
		Evictions:  r.Counter("optassign_cache_evictions_total", "Entries evicted by the LRU bound."),
		Size:       r.Gauge("optassign_cache_entries", "Canonical classes currently memoized."),
		Inflight:   r.Gauge("optassign_cache_inflight", "Cache-led measurements currently running."),
		DiskHits:   r.Counter("optassign_diskcache_hits_total", "Lookups answered by the persistent store without measuring."),
		DiskMisses: r.Counter("optassign_diskcache_misses_total", "Lookups the persistent store could not answer."),
		DiskBytes:  r.Gauge("optassign_diskcache_bytes", "On-disk footprint of the persistent measurement store."),
		DiskErrors: r.Counter("optassign_diskcache_errors_total", "Persistent-store failures (cache degraded, measurement unaffected)."),
	}
}

func (m *CacheMetrics) hits() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Hits
}

func (m *CacheMetrics) misses() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Misses
}

func (m *CacheMetrics) coalesced() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Coalesced
}

func (m *CacheMetrics) evictions() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Evictions
}

func (m *CacheMetrics) size() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.Size
}

func (m *CacheMetrics) inflight() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.Inflight
}

func (m *CacheMetrics) diskHits() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.DiskHits
}

func (m *CacheMetrics) diskMisses() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.DiskMisses
}

func (m *CacheMetrics) diskBytes() *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.DiskBytes
}

func (m *CacheMetrics) diskErrors() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.DiskErrors
}

// BatchMetrics observes the batched measurement path: how many draws each
// core-sharded batch actually measured (after cache hits and in-batch
// duplicates are peeled off) and how many batches ran.
type BatchMetrics struct {
	Batches *obs.Counter
	Size    *obs.Histogram
}

// NewBatchMetrics registers the batch-path series on r; a nil registry
// yields a nil (disabled) bundle.
func NewBatchMetrics(r *obs.Registry) *BatchMetrics {
	if r == nil {
		return nil
	}
	return &BatchMetrics{
		Batches: r.Counter("optassign_batches_total", "Core-sharded measurement batches executed."),
		Size:    r.Histogram("optassign_batch_size", "Unique cache-missing assignments measured per batch.", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}),
	}
}

func (m *BatchMetrics) batches() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.Batches
}

func (m *BatchMetrics) batchSize() *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.Size
}

// IterMetrics publishes the live state of the §5.3 iterative algorithm:
// the per-round estimate (ÛPB and its confidence interval), the best
// observed performance, and the convergence gap the loop thresholds on.
type IterMetrics struct {
	Rounds        *obs.Counter
	Samples       *obs.Gauge
	Quarantined   *obs.Gauge
	BestObserved  *obs.Gauge
	UPB           *obs.Gauge
	UPBLo         *obs.Gauge
	UPBHi         *obs.Gauge
	HeadroomHiPct *obs.Gauge
	Satisfied     *obs.Gauge
}

// NewIterMetrics registers the campaign-progress series on r; a nil
// registry yields a nil bundle.
func NewIterMetrics(r *obs.Registry) *IterMetrics {
	if r == nil {
		return nil
	}
	return &IterMetrics{
		Rounds:        r.Counter("optassign_campaign_rounds_total", "Estimation rounds completed (Fig. 13 iterations)."),
		Samples:       r.Gauge("optassign_campaign_samples", "Successful measurements in the sample."),
		Quarantined:   r.Gauge("optassign_campaign_quarantined", "Draws quarantined after exhausting retries."),
		BestObserved:  r.Gauge("optassign_campaign_best_observed", "Best measured performance so far."),
		UPB:           r.Gauge("optassign_campaign_upb", "Estimated optimal performance (UPB point estimate)."),
		UPBLo:         r.Gauge("optassign_campaign_upb_lo", "Lower confidence bound on the optimum."),
		UPBHi:         r.Gauge("optassign_campaign_upb_hi", "Upper confidence bound on the optimum (may be +Inf)."),
		HeadroomHiPct: r.Gauge("optassign_campaign_headroom_hi_pct", "Convergence gap: conservative headroom of the best observed assignment vs the CI upper bound, percent."),
		Satisfied:     r.Gauge("optassign_campaign_satisfied", "1 once the acceptable-loss requirement is met."),
	}
}
