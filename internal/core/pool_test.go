package core_test

// Race and stress coverage for the parallel sampling layer. These tests
// are most valuable under `go test -race`, which CI runs.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
)

func TestNewPoolRunnerValidation(t *testing.T) {
	if _, err := core.NewPoolRunner(); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := core.NewPoolRunner(hashRunner(0), nil); err == nil {
		t.Error("nil worker accepted")
	}
	if _, err := core.NewReplicatedPool(nil, 4); err == nil {
		t.Error("nil runner accepted")
	}
	if _, err := core.NewReplicatedPool(hashRunner(0), 0); err == nil {
		t.Error("zero workers accepted")
	}
	pool, err := core.NewReplicatedPool(hashRunner(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Workers() != 7 {
		t.Errorf("Workers() = %d, want 7", pool.Workers())
	}
}

// TestMeasureBatchStress hammers one pool from several goroutines at once:
// every batch must come back complete, correctly indexed, with no race.
func TestMeasureBatchStress(t *testing.T) {
	topo, tasks := smallTopo(), 3
	var calls atomic.Int64
	runner := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		calls.Add(1)
		return hashPerf(a), nil
	})
	pool, err := core.NewReplicatedPool(runner, 16)
	if err != nil {
		t.Fatal(err)
	}
	const batches, n = 6, 200
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			as, err := assign.Sample(rand.New(rand.NewSource(seed)), topo, tasks, n)
			if err != nil {
				t.Error(err)
				return
			}
			outcomes := pool.MeasureBatch(context.Background(), as)
			if len(outcomes) != n {
				t.Errorf("batch %d: %d outcomes, want %d", seed, len(outcomes), n)
				return
			}
			for i, o := range outcomes {
				if !o.Started || o.Err != nil {
					t.Errorf("batch %d outcome %d: started=%v err=%v", seed, i, o.Started, o.Err)
					return
				}
				if want := hashPerf(as[i]); o.Perf != want {
					t.Errorf("batch %d outcome %d: perf %v, want %v (misindexed?)", seed, i, o.Perf, want)
					return
				}
			}
		}(int64(b + 1))
	}
	wg.Wait()
	if got := calls.Load(); got != batches*n {
		t.Errorf("runner saw %d calls, want %d", got, batches*n)
	}
}

// TestMeasureBatchCancellation cancels mid-batch: every index still gets
// exactly one outcome, dispatched ones finish, undispatched ones carry the
// context error and are flagged unstarted.
func TestMeasureBatchCancellation(t *testing.T) {
	topo, tasks := smallTopo(), 3
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	runner := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		time.Sleep(100 * time.Microsecond)
		if done.Add(1) == 30 {
			cancel()
		}
		return hashPerf(a), nil
	})
	pool, err := core.NewReplicatedPool(runner, 8)
	if err != nil {
		t.Fatal(err)
	}
	as, err := assign.Sample(rand.New(rand.NewSource(2)), topo, tasks, 400)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := pool.MeasureBatch(ctx, as)
	if len(outcomes) != len(as) {
		t.Fatalf("%d outcomes for %d draws", len(outcomes), len(as))
	}
	var started, unstarted int
	for i, o := range outcomes {
		switch {
		case o.Started:
			started++
			if o.Err != nil {
				t.Fatalf("outcome %d: started but failed: %v", i, o.Err)
			}
		default:
			unstarted++
			if !errors.Is(o.Err, context.Canceled) {
				t.Fatalf("outcome %d: unstarted with err %v", i, o.Err)
			}
		}
	}
	if started == 0 || unstarted == 0 {
		t.Fatalf("started=%d unstarted=%d: cancellation landed at a useless point", started, unstarted)
	}
}

// TestMeasureBatchWorkStealing gives the pool one slow worker and one fast
// worker: the fast one must absorb most of the batch instead of the batch
// taking slow-worker time.
func TestMeasureBatchWorkStealing(t *testing.T) {
	topo, tasks := smallTopo(), 3
	var slowCalls, fastCalls atomic.Int64
	slow := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		slowCalls.Add(1)
		time.Sleep(5 * time.Millisecond)
		return hashPerf(a), nil
	})
	fast := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		fastCalls.Add(1)
		return hashPerf(a), nil
	})
	pool, err := core.NewPoolRunner(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	as, err := assign.Sample(rand.New(rand.NewSource(3)), topo, tasks, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range pool.MeasureBatch(context.Background(), as) {
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
	}
	if f, s := fastCalls.Load(), slowCalls.Load(); f < 4*s {
		t.Errorf("fast worker took %d draws, slow took %d: dispatch is not work-stealing", f, s)
	}
}

// TestPoolWorkerErrorsStayPerDraw: a worker error lands in its own draw's
// outcome without disturbing neighbors.
func TestPoolWorkerErrorsStayPerDraw(t *testing.T) {
	topo, tasks := smallTopo(), 3
	boom := errors.New("boom")
	runner := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if a.Ctx[0] == 0 {
			return 0, fmt.Errorf("%w: %v", boom, a.Ctx)
		}
		return hashPerf(a), nil
	})
	pool, err := core.NewReplicatedPool(runner, 4)
	if err != nil {
		t.Fatal(err)
	}
	as, err := assign.Sample(rand.New(rand.NewSource(4)), topo, tasks, 120)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := pool.MeasureBatch(context.Background(), as)
	for i, o := range outcomes {
		wantErr := as[i].Ctx[0] == 0
		if wantErr != (o.Err != nil) {
			t.Fatalf("outcome %d (ctx %v): err = %v", i, as[i].Ctx, o.Err)
		}
		if wantErr && !errors.Is(o.Err, boom) {
			t.Fatalf("outcome %d: err = %v, want boom", i, o.Err)
		}
	}
}
