// Package core implements the paper's contribution: the statistical
// approach to optimal task assignment. It has three parts, mirroring §3:
//
//  1. the sampling-probability analysis — how likely a sample of n random
//     assignments is to contain one of the best-performing P% (§3.1);
//  2. the optimal-performance estimator — a Peak-Over-Threshold fit of the
//     sample's upper tail yielding the Upper Performance Bound and its
//     confidence interval (§3.3, via internal/evt);
//  3. the iterative assignment algorithm — keep sampling until the best
//     observed assignment is within the customer's acceptable distance of
//     the estimated optimum (§5.3, Fig. 13).
//
// The method is architecture- and application-independent: it needs only a
// Runner that can execute an assignment and report its performance.
package core

import (
	"fmt"
	"math"
)

// CaptureProbability returns P(A): the probability that a sample of n
// independent uniformly drawn task assignments contains at least one of the
// best-performing topPct% of the population,
//
//	P(A) = 1 − ((100 − topPct)/100)^n,
//
// independent of the population size for the astronomically large
// populations of Table 1 (§3.1).
func CaptureProbability(n int, topPct float64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative sample size %d", n)
	}
	if topPct <= 0 || topPct > 100 {
		return 0, fmt.Errorf("core: top percentage must be in (0, 100], got %v", topPct)
	}
	return 1 - math.Pow((100-topPct)/100, float64(n)), nil
}

// RequiredSampleSize returns the smallest n with
// CaptureProbability(n, topPct) >= prob. It inverts the §3.1 formula:
// n = ⌈ln(1−prob) / ln((100−topPct)/100)⌉.
func RequiredSampleSize(topPct, prob float64) (int, error) {
	if topPct <= 0 || topPct > 100 {
		return 0, fmt.Errorf("core: top percentage must be in (0, 100], got %v", topPct)
	}
	if prob < 0 || prob >= 1 {
		return 0, fmt.Errorf("core: probability must be in [0, 1), got %v", prob)
	}
	if prob == 0 {
		return 0, nil
	}
	if topPct == 100 {
		return 1, nil
	}
	n := math.Log(1-prob) / math.Log((100-topPct)/100)
	return int(math.Ceil(n - 1e-12)), nil
}

// CapturePoint is one point of a Figure-2 curve.
type CapturePoint struct {
	N    int
	Prob float64
}

// CaptureCurve evaluates CaptureProbability over the sample sizes ns —
// one Figure-2 series for a given topPct.
func CaptureCurve(topPct float64, ns []int) ([]CapturePoint, error) {
	out := make([]CapturePoint, 0, len(ns))
	for _, n := range ns {
		p, err := CaptureProbability(n, topPct)
		if err != nil {
			return nil, err
		}
		out = append(out, CapturePoint{N: n, Prob: p})
	}
	return out, nil
}
