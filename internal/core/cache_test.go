package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// classPerf is a class-deterministic performance function: bit-identical
// for symmetric assignments, spread out enough that distinct classes
// essentially never collide.
func classPerf(a assign.Assignment) float64 {
	h := fnv.New64a()
	fmt.Fprint(h, a.CanonicalKey())
	return 1e6 + float64(h.Sum64()%1e9)/1e3
}

// countingRunner counts inner measurements and (optionally) injects
// latency so single-flight windows are wide.
type countingRunner struct {
	calls atomic.Int64
	delay time.Duration
	perf  func(a assign.Assignment) (float64, error)
}

func (c *countingRunner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	c.calls.Add(1)
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if c.perf != nil {
		return c.perf(a)
	}
	return classPerf(a), nil
}

// symmetricVariant relabels an assignment by a random hardware symmetry:
// permute cores, permute pipes within each core, permute strand slots
// within each pipe. By construction the result is in the same canonical
// class.
func symmetricVariant(rng *rand.Rand, a assign.Assignment) assign.Assignment {
	topo := a.Topo
	corePerm := rng.Perm(topo.Cores)
	pipePerms := make([][]int, topo.Cores)
	slotPerms := make([][][]int, topo.Cores)
	for c := range pipePerms {
		pipePerms[c] = rng.Perm(topo.PipesPerCore)
		slotPerms[c] = make([][]int, topo.PipesPerCore)
		for p := range slotPerms[c] {
			slotPerms[c][p] = rng.Perm(topo.ContextsPerPipe)
		}
	}
	out := a.Clone()
	for i, ctx := range a.Ctx {
		core := topo.CoreOf(ctx)
		pipe := topo.PipeOf(ctx) % topo.PipesPerCore
		slot := topo.SlotOf(ctx)
		out.Ctx[i] = topo.Context(corePerm[core], pipePerms[core][pipe], slotPerms[core][pipe][slot])
	}
	return out
}

// TestCachedRunnerServesSymmetricPairs is the cache-soundness property
// test: for random assignment pairs related by a hardware symmetry, the
// second measurement is served from the cache bit-identical to the first,
// without touching the wrapped runner again.
func TestCachedRunnerServesSymmetricPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo := t2.UltraSPARCT2()
	inner := &countingRunner{}
	cached := NewCachedContextRunner(inner, NewCache(0, nil), "tb-A")
	ctx := context.Background()
	for trial := 0; trial < 100; trial++ {
		tasks := 1 + rng.Intn(topo.Contexts())
		a, err := assign.RandomPermutation(rng, topo, tasks)
		if err != nil {
			t.Fatal(err)
		}
		b := symmetricVariant(rng, a)
		if a.CanonicalKey() != b.CanonicalKey() {
			t.Fatalf("symmetricVariant left the class: %q vs %q", a.CanonicalKey(), b.CanonicalKey())
		}
		before := inner.calls.Load()
		pa, err := cached.MeasureContext(ctx, a)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := cached.MeasureContext(ctx, b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(pa) != math.Float64bits(pb) {
			t.Fatalf("symmetric pair measured differently: %v vs %v", pa, pb)
		}
		if got := inner.calls.Load() - before; got > 1 {
			t.Fatalf("symmetric pair hit the runner %d times, want at most 1", got)
		}
	}
}

// TestCachedRunnerNeverCrossesTestbeds shares one Cache between runners
// for different testbeds and for different topologies whose canonical keys
// collide, and requires complete isolation.
func TestCachedRunnerNeverCrossesTestbeds(t *testing.T) {
	cache := NewCache(0, nil)
	topo := t2.UltraSPARCT2()
	a := assign.Assignment{Topo: topo, Ctx: []int{0, 1, 4}}
	ctx := context.Background()

	mk := func(perf float64) *countingRunner {
		return &countingRunner{perf: func(assign.Assignment) (float64, error) { return perf, nil }}
	}
	innerA, innerB := mk(111), mk(222)
	runnerA := NewCachedContextRunner(innerA, cache, "tb-A")
	runnerB := NewCachedContextRunner(innerB, cache, "tb-B")
	if p, _ := runnerA.MeasureContext(ctx, a); p != 111 {
		t.Fatalf("tb-A perf %v", p)
	}
	if p, _ := runnerB.MeasureContext(ctx, a); p != 222 {
		t.Fatalf("tb-B got %v: a hit crossed testbed identities", p)
	}
	if innerB.calls.Load() != 1 {
		t.Fatal("tb-B runner was never consulted")
	}

	// Two topologies whose canonical keys are the identical string "[0]":
	// one task in the first pipe. Only the topology shape in the key keeps
	// them apart.
	t1 := t2.Topology{Cores: 2, PipesPerCore: 1, ContextsPerPipe: 2}
	t2x := t2.Topology{Cores: 1, PipesPerCore: 2, ContextsPerPipe: 2}
	a1 := assign.Assignment{Topo: t1, Ctx: []int{0}}
	a2 := assign.Assignment{Topo: t2x, Ctx: []int{0}}
	if a1.CanonicalKey() != a2.CanonicalKey() {
		t.Fatalf("test premise broken: keys %q vs %q", a1.CanonicalKey(), a2.CanonicalKey())
	}
	inner1, inner2 := mk(331), mk(332)
	r1 := NewCachedContextRunner(inner1, cache, "tb-C")
	r2 := NewCachedContextRunner(inner2, cache, "tb-C")
	if p, _ := r1.MeasureContext(ctx, a1); p != 331 {
		t.Fatalf("topo1 perf %v", p)
	}
	if p, _ := r2.MeasureContext(ctx, a2); p != 332 {
		t.Fatalf("topo2 got %v: a hit crossed topologies", p)
	}
}

// TestCacheSingleFlight launches many concurrent measurements of one
// canonical class through a slow runner: exactly one must reach the
// runner, everyone must get its value.
func TestCacheSingleFlight(t *testing.T) {
	inner := &countingRunner{delay: 50 * time.Millisecond}
	reg := obs.NewRegistry()
	m := NewCacheMetrics(reg)
	cached := NewCachedContextRunner(inner, NewCache(0, m), "tb")
	topo := t2.UltraSPARCT2()
	a := assign.Assignment{Topo: topo, Ctx: []int{3, 9, 27}}

	const callers = 32
	perfs := make([]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Half measure a symmetric variant, not a itself.
			use := a
			if i%2 == 1 {
				use = symmetricVariant(rand.New(rand.NewSource(int64(i))), a)
			}
			p, err := cached.MeasureContext(context.Background(), use)
			if err != nil {
				t.Error(err)
			}
			perfs[i] = p
		}(i)
	}
	wg.Wait()
	if got := inner.calls.Load(); got != 1 {
		t.Fatalf("single-flight leaked: %d inner measurements, want 1", got)
	}
	for i, p := range perfs {
		if math.Float64bits(p) != math.Float64bits(perfs[0]) {
			t.Fatalf("caller %d got %v, caller 0 got %v", i, p, perfs[0])
		}
	}
	if m.Misses.Value() != 1 || m.Hits.Value() != callers-1 {
		t.Fatalf("metrics: hits %v misses %v, want %d/1", m.Hits.Value(), m.Misses.Value(), callers-1)
	}
	if m.Coalesced.Value() == 0 {
		t.Error("no caller recorded as coalesced despite a 50ms flight")
	}
}

// TestCacheDoesNotMemoizeErrors verifies failures and quarantines always
// propagate and are re-measured by the next draw — the property that keeps
// journals identical with the cache on or off.
func TestCacheDoesNotMemoizeErrors(t *testing.T) {
	fail := errors.New("testbed down")
	var n atomic.Int64
	inner := ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if n.Add(1) <= 2 {
			return 0, fail
		}
		return 42, nil
	})
	cached := NewCachedContextRunner(inner, NewCache(0, nil), "tb")
	a := assign.Assignment{Topo: t2.UltraSPARCT2(), Ctx: []int{5}}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := cached.MeasureContext(ctx, a); !errors.Is(err, fail) {
			t.Fatalf("draw %d: error not propagated", i)
		}
	}
	if p, err := cached.MeasureContext(ctx, a); err != nil || p != 42 {
		t.Fatalf("recovery draw: %v, %v", p, err)
	}
	if p, err := cached.MeasureContext(ctx, a); err != nil || p != 42 {
		t.Fatalf("hit after recovery: %v, %v", p, err)
	}
	if n.Load() != 3 {
		t.Fatalf("inner measured %d times, want 3 (two failures + one success)", n.Load())
	}
}

// TestCacheLRUBound fills a 2-entry cache with 3 classes and checks the
// coldest is evicted and re-measured.
func TestCacheLRUBound(t *testing.T) {
	inner := &countingRunner{}
	reg := obs.NewRegistry()
	m := NewCacheMetrics(reg)
	cache := NewCache(2, m)
	cached := NewCachedContextRunner(inner, cache, "tb")
	topo := t2.UltraSPARCT2()
	ctx := context.Background()
	// Three distinct classes: task 0 alone in pipes of 1, 2 and 3 strands.
	as := []assign.Assignment{
		{Topo: topo, Ctx: []int{0}},
		{Topo: topo, Ctx: []int{0, 1}},
		{Topo: topo, Ctx: []int{0, 1, 2}},
	}
	for _, a := range as {
		if _, err := cached.MeasureContext(ctx, a); err != nil {
			t.Fatal(err)
		}
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
	if m.Evictions.Value() != 1 {
		t.Fatalf("evictions %v, want 1", m.Evictions.Value())
	}
	before := inner.calls.Load()
	if _, err := cached.MeasureContext(ctx, as[0]); err != nil {
		t.Fatal(err)
	}
	if inner.calls.Load() != before+1 {
		t.Fatal("evicted class was served from the cache")
	}
}

// TestCacheUnderPoolWorkers hammers a single cache from 16 pool workers
// measuring a duplicate-heavy sample; run with -race this is the cache's
// concurrency proof. Every measured perf must still be class-deterministic.
func TestCacheUnderPoolWorkers(t *testing.T) {
	topo := t2.UltraSPARCT2()
	inner := &countingRunner{delay: time.Millisecond}
	cached := NewCachedContextRunner(inner, NewCache(0, nil), "tb")
	pool, err := NewReplicatedPool(cached, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// 3 tasks on 64 contexts: 11 canonical classes, so 300 draws are ~96%
	// duplicates and workers constantly collide on the same keys.
	results, skipped, err := CollectSampleParallel(context.Background(), rng, topo, 3, 300, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 || len(results) != 300 {
		t.Fatalf("results %d skipped %d", len(results), len(skipped))
	}
	for _, r := range results {
		if want := classPerf(r.Assignment); math.Float64bits(r.Perf) != math.Float64bits(want) {
			t.Fatalf("class-nondeterministic perf for %v: %v vs %v", r.Assignment.Ctx, r.Perf, want)
		}
	}
	if calls := inner.calls.Load(); calls >= 100 {
		t.Fatalf("cache ineffective under pool: %d inner measurements for 300 draws", calls)
	}
}

// TestCacheWaiterHonorsContext cancels a waiter stuck behind a slow
// leader and expects a prompt context error, not the leader's result.
func TestCacheWaiterHonorsContext(t *testing.T) {
	inner := &countingRunner{delay: 200 * time.Millisecond}
	cached := NewCachedContextRunner(inner, NewCache(0, nil), "tb")
	a := assign.Assignment{Topo: t2.UltraSPARCT2(), Ctx: []int{7}}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		if _, err := cached.MeasureContext(context.Background(), a); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the leader take the flight
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := cached.MeasureContext(ctx, a); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter returned %v, want deadline exceeded", err)
	}
	<-leaderDone
}
