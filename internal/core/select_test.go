package core

import (
	"errors"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/evt"
	"optassign/internal/proc"
	"optassign/internal/t2"
)

// poolRunner measures combined (workload, assignment) samples on the
// processor model: candidate i has an IEU-heavy or memory-heavy demand, so
// both which tasks co-run and where they go matter.
type poolRunner struct {
	machine *proc.Machine
	demands []proc.Demand
}

func newPoolRunner(pool int) *poolRunner {
	m := proc.UltraSPARCT2Machine()
	r := &poolRunner{machine: m}
	for i := 0; i < pool; i++ {
		var d proc.Demand
		d.Serial = 100
		switch i % 3 {
		case 0:
			d.Res[proc.IEU] = 700
			d.Res[proc.L1D] = 150
		case 1:
			d.Res[proc.MEM] = 500
			d.Res[proc.LSU] = 250
		default:
			d.Res[proc.IEU] = 300
			d.Res[proc.LSU] = 200
			d.Res[proc.L1D] = 200
		}
		r.demands = append(r.demands, d)
	}
	return r
}

func (r *poolRunner) MeasureWorkload(pick []int, a assign.Assignment) (float64, error) {
	tasks := make([]proc.Task, len(pick))
	for i, idx := range pick {
		tasks[i] = proc.Task{Demand: r.demands[idx], Group: i}
	}
	res, err := r.machine.Solve(tasks, nil, a.Ctx)
	if err != nil {
		return 0, err
	}
	return res.TotalPPS, nil
}

func TestSelectAndAssign(t *testing.T) {
	runner := newPoolRunner(18)
	cfg := SelectConfig{
		Topo:         t2.UltraSPARCT2(),
		PoolSize:     18,
		WorkloadSize: 8,
		Samples:      800,
		Seed:         5,
	}
	res, err := SelectAndAssign(cfg, runner)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 800 || len(res.BestPick) != 8 {
		t.Fatalf("result meta: %+v", res)
	}
	if err := res.BestAssignment.Validate(); err != nil {
		t.Fatal(err)
	}
	// The pick indices are distinct members of the pool.
	seen := map[int]bool{}
	for _, idx := range res.BestPick {
		if idx < 0 || idx >= 18 || seen[idx] {
			t.Fatalf("bad pick %v", res.BestPick)
		}
		seen[idx] = true
	}
	if res.Estimate.Optimal < res.BestPerf {
		t.Errorf("estimated optimum %v below best observed %v", res.Estimate.Optimal, res.BestPerf)
	}
	// The best combination must beat a random one comfortably — workload
	// composition matters in this pool.
	check, err := runner.MeasureWorkload(res.BestPick, res.BestAssignment)
	if err != nil {
		t.Fatal(err)
	}
	if check != res.BestPerf {
		t.Errorf("best not reproducible: %v vs %v", check, res.BestPerf)
	}
}

func TestSelectAndAssignValidation(t *testing.T) {
	runner := newPoolRunner(10)
	topo := t2.UltraSPARCT2()
	base := SelectConfig{Topo: topo, PoolSize: 10, WorkloadSize: 4, Samples: 10, Seed: 1}

	if _, err := SelectAndAssign(base, nil); err == nil {
		t.Error("nil runner accepted")
	}
	bad := base
	bad.PoolSize = 0
	if _, err := SelectAndAssign(bad, runner); err == nil {
		t.Error("empty pool accepted")
	}
	bad = base
	bad.WorkloadSize = 11
	if _, err := SelectAndAssign(bad, runner); err == nil {
		t.Error("workload larger than pool accepted")
	}
	bad = base
	bad.Samples = 0
	if _, err := SelectAndAssign(bad, runner); err == nil {
		t.Error("zero samples accepted")
	}
	bad = base
	bad.Topo = t2.Topology{}
	if _, err := SelectAndAssign(bad, runner); err == nil {
		t.Error("invalid topology accepted")
	}
	bad = base
	bad.Topo = t2.Topology{Cores: 1, PipesPerCore: 1, ContextsPerPipe: 2}
	bad.WorkloadSize = 4
	if _, err := SelectAndAssign(bad, runner); err == nil {
		t.Error("workload larger than machine accepted")
	}
}

func TestSelectAndAssignErrorPropagation(t *testing.T) {
	failing := workloadRunnerFunc(func([]int, assign.Assignment) (float64, error) {
		return 0, errors.New("boom")
	})
	cfg := SelectConfig{Topo: t2.UltraSPARCT2(), PoolSize: 8, WorkloadSize: 3, Samples: 5, Seed: 1}
	if _, err := SelectAndAssign(cfg, failing); err == nil {
		t.Error("runner error not propagated")
	}
	// Estimation failure (constant perf -> degenerate tail) surfaces too,
	// with the partial result preserved.
	constant := workloadRunnerFunc(func([]int, assign.Assignment) (float64, error) {
		return 42, nil
	})
	cfg.Samples = 50
	if _, err := SelectAndAssign(cfg, constant); err == nil {
		t.Error("degenerate sample should fail estimation")
	}
	_ = evt.POTOptions{}
}

type workloadRunnerFunc func([]int, assign.Assignment) (float64, error)

func (f workloadRunnerFunc) MeasureWorkload(p []int, a assign.Assignment) (float64, error) {
	return f(p, a)
}
