package core

import (
	"container/list"
	"context"
	"strconv"
	"strings"
	"sync"

	"optassign/internal/assign"
)

// Cache memoizes measured performance by canonical assignment form. The
// paper's symmetry argument (§3.2) is what makes this sound: performance
// depends only on which tasks share a pipe, a core and the chip — the
// equivalence class rendered by assign.CanonicalKey — never on the
// physical context indices. Random sampling over the full assignment
// population draws many structural duplicates (the population is V!/(V−N)!
// assignments but far fewer canonical classes), and every duplicate served
// from the cache is a testbed run saved.
//
// The cache is safe for concurrent use by PoolRunner workers and
// single-flight: when several workers draw the same canonical class at
// once, one leader measures while the rest wait for its result instead of
// re-measuring. Only successful measurements are stored — errors and
// quarantines always propagate to every caller and are re-tried by the
// next draw, which keeps fault handling (and journal bytes) identical with
// the cache on or off. Entries are LRU-bounded.
//
// One Cache may back runners for different testbeds and topologies: every
// key carries the owning runner's identity string and topology shape, so a
// hit can never cross testbeds.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	flights map[string]*flight
	store   CacheStore // optional persistent L2 tier; see diskcache.go
	m       *CacheMetrics
}

type cacheEntry struct {
	key  string
	perf float64
}

// flight is one in-progress measurement other callers of the same key can
// wait on. perf/err are written before done is closed and read only after.
type flight struct {
	done chan struct{}
	perf float64
	err  error
}

// DefaultCacheSize bounds a cache built with size <= 0. At ~100 bytes per
// entry this caps memory in the tens of megabytes while comfortably
// holding every class of the case-study samples (a few thousand draws).
const DefaultCacheSize = 1 << 18

// NewCache builds a measurement cache holding at most size entries
// (DefaultCacheSize if size <= 0). The metrics bundle may be nil.
func NewCache(size int, m *CacheMetrics) *Cache {
	if size <= 0 {
		size = DefaultCacheSize
	}
	return &Cache{
		cap:     size,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		flights: make(map[string]*flight),
		m:       m,
	}
}

// Len reports the number of memoized entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// do returns the memoized value for key, joining an in-flight measurement
// when one exists and otherwise leading one via measure.
//
// Metric discipline: the hit, miss and coalesced counters are bumped in
// the same critical section as the map state they describe, so a /metrics
// scrape can never observe hits+misses smaller than the lookups already
// answered (the counters may run ahead of returns, never behind the
// cache's visible state).
func (c *Cache) do(ctx context.Context, key string, measure func() (float64, error)) (float64, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			perf := el.Value.(*cacheEntry).perf
			c.m.hits().Inc()
			c.mu.Unlock()
			return perf, nil
		}
		if f, ok := c.flights[key]; ok {
			c.m.coalesced().Inc()
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			if f.err == nil {
				c.m.hits().Inc()
				return f.perf, nil
			}
			// The leader failed. Its error belongs to its own draw; this
			// caller re-enters the loop and measures for itself (becoming
			// the next leader), unless its context is gone.
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		// Leading. The persistent tier answers before the testbed does: a
		// class measured by any prior process sharing the store resolves
		// the whole flight without a simulation.
		if perf, ok := c.storeGet(key); ok {
			f.perf, f.err = perf, nil
			c.mu.Lock()
			delete(c.flights, key)
			c.storeLocked(key, perf) // promote into L1
			c.m.hits().Inc()
			c.mu.Unlock()
			close(f.done)
			return perf, nil
		}

		c.m.inflight().Inc()
		perf, err := measure()
		c.m.inflight().Dec()
		f.perf, f.err = perf, err

		c.mu.Lock()
		delete(c.flights, key)
		if err == nil {
			c.storeLocked(key, perf)
		}
		c.m.misses().Inc()
		c.mu.Unlock()
		close(f.done)
		if err == nil {
			c.storePut(key, perf)
		}
		return perf, err
	}
}

// lookup probes both cache tiers for key without joining or leading a
// flight; a disk hit is promoted into L1. It is the batch path's probe:
// the batched collector separates hits from misses up front, then
// measures all misses in one core-sharded pass.
func (c *Cache) lookup(key string) (float64, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		perf := el.Value.(*cacheEntry).perf
		c.m.hits().Inc()
		c.mu.Unlock()
		return perf, true
	}
	c.mu.Unlock()
	if perf, ok := c.storeGet(key); ok {
		c.mu.Lock()
		c.storeLocked(key, perf)
		c.m.hits().Inc()
		c.mu.Unlock()
		return perf, true
	}
	return 0, false
}

// insert records a successful batch measurement in both tiers.
func (c *Cache) insert(key string, perf float64) {
	c.mu.Lock()
	c.storeLocked(key, perf)
	c.m.misses().Inc()
	c.mu.Unlock()
	c.storePut(key, perf)
}

// storeLocked inserts key into the LRU, evicting the coldest entry when
// over capacity. Caller holds c.mu.
func (c *Cache) storeLocked(key string, perf float64) {
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, perf: perf})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
		c.m.evictions().Inc()
	}
	c.m.size().Set(float64(c.order.Len()))
}

// CachedRunner wraps a measurement runner with canonical-form memoization
// against a Cache. It implements both Runner and ContextRunner, so it
// slots anywhere in the middleware stack; the intended position is
// directly around the real testbed (inside retries and journaling), so
// every layer above still sees one measurement per draw.
//
// Memoization assumes the wrapped runner is class-deterministic:
// symmetric assignments measure identically (true for the simulated
// testbeds, whose noise is keyed on the canonical form, and for noise-free
// models). For a noisy physical testbed where independent samples of one
// class are wanted, disable the cache.
type CachedRunner struct {
	inner  ContextRunner
	cache  *Cache
	prefix string        // identity + topology shape, precomputed
	bm     *BatchMetrics // batch-path observability; see InstrumentBatch
}

// NewCachedRunner wraps a legacy Runner. identity names the measured
// system (testbed, app, seed — see netdps.Testbed.Identity); it becomes
// part of every key so distinct testbeds sharing one Cache never serve
// each other's results.
func NewCachedRunner(inner Runner, cache *Cache, identity string) *CachedRunner {
	return NewCachedContextRunner(AsContextRunner(inner), cache, identity)
}

// NewCachedContextRunner wraps a ContextRunner; see NewCachedRunner.
func NewCachedContextRunner(inner ContextRunner, cache *Cache, identity string) *CachedRunner {
	return &CachedRunner{inner: inner, cache: cache, prefix: identity + "\x1f"}
}

// Measure implements Runner.
func (r *CachedRunner) Measure(a assign.Assignment) (float64, error) {
	return r.MeasureContext(context.Background(), a)
}

// MeasureContext implements ContextRunner: a hit returns the memoized
// performance without touching the wrapped runner; a miss measures (at
// most once per key machine-wide, thanks to single-flight) and memoizes on
// success.
func (r *CachedRunner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	if r.cache == nil {
		return r.inner.MeasureContext(ctx, a)
	}
	return r.cache.do(ctx, r.key(a), func() (float64, error) {
		return r.inner.MeasureContext(ctx, a)
	})
}

// key renders the full cache key: identity, topology shape, canonical
// form. The shape is required because CanonicalKey's output alone does not
// pin the topology (the same task grouping can arise on machines with
// different pipe/core structure).
func (r *CachedRunner) key(a assign.Assignment) string {
	ck := a.CanonicalKey()
	var b strings.Builder
	b.Grow(len(r.prefix) + len(ck) + 16)
	b.WriteString(r.prefix)
	b.WriteString(strconv.Itoa(a.Topo.Cores))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(a.Topo.PipesPerCore))
	b.WriteByte('x')
	b.WriteString(strconv.Itoa(a.Topo.ContextsPerPipe))
	b.WriteByte(0x1f)
	b.WriteString(ck)
	return b.String()
}

var _ Runner = (*CachedRunner)(nil)
var _ ContextRunner = (*CachedRunner)(nil)
