package core

import (
	"math"

	"optassign/internal/evt"
)

// Estimate is the outcome of the optimal-performance estimation for one
// measured sample.
type Estimate struct {
	// Report is the full POT analysis (threshold, GPD fit, diagnostics).
	Report evt.Report
	// Optimal is the estimated optimal system performance (ÛPB).
	Optimal float64
	// Lo and Hi bound Optimal at the requested confidence level.
	Lo, Hi float64
	// BestObserved is the best performance in the sample.
	BestObserved float64
	// HeadroomPct is the estimated room for improvement of the best
	// observed assignment against the point estimate:
	// (Optimal − BestObserved)/Optimal · 100 — the solid bars of Fig. 12.
	HeadroomPct float64
	// HeadroomHiPct is the conservative room for improvement against the
	// confidence interval's upper bound: (Hi − BestObserved)/Hi · 100 —
	// Fig. 12's error-bar tips. This is what the iterative algorithm
	// thresholds on: only when even the 0.95-confidence upper bound is
	// within X% of the best observed assignment is the requirement met
	// with confidence. It is 100 when the upper bound is unbounded (the
	// sample cannot yet reject an unbounded tail).
	HeadroomHiPct float64
}

// EstimateOptimal runs the §3.3 analysis on measured performance values:
// select a POT threshold, fit a GPD to the exceedances by maximum
// likelihood, and estimate the optimal system performance with a
// (1−opts.Alpha) confidence interval.
func EstimateOptimal(perfs []float64, opts evt.POTOptions) (Estimate, error) {
	return EstimateOptimalAgainst(perfs, math.NaN(), opts)
}

// EstimateOptimalAgainst is EstimateOptimal with the headroom computed
// against an explicitly supplied best observed performance instead of the
// fit sample's maximum. Adaptive search strategies need the split: their
// tail-eligible draws form the i.i.d. sample the GPD is fitted to, while
// the campaign's best assignment may come from exploration draws excluded
// from that sample. A NaN best (or one equal to the sample maximum)
// reduces exactly to EstimateOptimal.
func EstimateOptimalAgainst(perfs []float64, best float64, opts evt.POTOptions) (Estimate, error) {
	rep, err := evt.Analyze(perfs, opts)
	if err != nil {
		return Estimate{}, err
	}
	return estimateFromReport(rep, best), nil
}

// estimateFromReport derives the engine's Estimate from a finished POT
// report and the campaign-wide best performance. It is shared by the
// batch path (EstimateOptimalAgainst) and the streaming path (a
// StreamEstimator refit produces the same Report type), so both compute
// headroom identically. Headroom falls back to 0 (display) and the
// stopping-rule HeadroomHiPct to 100 (conservative: requirement not yet
// met) whenever the bound cannot support a relative gap — unbounded Hi,
// or a zero bound on a degenerate scale.
func estimateFromReport(rep evt.Report, best float64) Estimate {
	est := Estimate{
		Report:        rep,
		Optimal:       rep.UPB.Point,
		Lo:            rep.UPB.Lo,
		Hi:            rep.UPB.Hi,
		BestObserved:  rep.BestObs,
		HeadroomPct:   rep.HeadroomPct,
		HeadroomHiPct: 100,
	}
	if !math.IsNaN(best) && best != rep.BestObs {
		est.BestObserved = best
		est.HeadroomPct = 0
		if h, ok := evt.HeadroomPercent(est.Optimal, best); ok {
			est.HeadroomPct = h
		}
	}
	if !math.IsInf(est.Hi, 1) {
		if h, ok := evt.HeadroomPercent(est.Hi, est.BestObserved); ok {
			est.HeadroomHiPct = h
		}
	}
	return est
}
