package core

import (
	"fmt"
	"math"
)

// Planner answers campaign-planning questions from a finished estimate:
// the fitted tail model says how the best observed assignment would grow if
// the campaign continued, so the operator can decide whether more testbed
// hours are worth it *before* spending them. This generalizes the paper's
// empirical Figure 10 ("1000 → 5000 barely improves the best") into a
// predictive tool.
type Planner struct {
	est Estimate
	// exceedProb is the empirical probability that one random assignment
	// lands above the POT threshold.
	exceedProb float64
}

// NewPlanner builds a planner from an estimate produced by EstimateOptimal.
func NewPlanner(est Estimate) (*Planner, error) {
	if est.Report.N == 0 || est.Report.Fit.Exceedances == 0 {
		return nil, fmt.Errorf("core: estimate carries no sample metadata")
	}
	return &Planner{
		est:        est,
		exceedProb: float64(est.Report.Fit.Exceedances) / float64(est.Report.N),
	}, nil
}

// BestOfNQuantile returns the q-quantile (0 < q < 1) of the best
// performance among n future iid random assignments, under the fitted tail
// model: P(best ≤ x) = F(x)ⁿ with the tail of F modelled by the GPD above
// the threshold. It reports an error when the requested quantile falls
// below the POT threshold, where the tail model has no authority.
func (p *Planner) BestOfNQuantile(n int, q float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: n must be >= 1, got %d", n)
	}
	if q <= 0 || q >= 1 {
		return 0, fmt.Errorf("core: quantile must be in (0,1), got %v", q)
	}
	// F(x)^n = q  ⇒  1 − F(x) = 1 − q^{1/n}.
	tailProb := -math.Expm1(math.Log(q) / float64(n))
	if tailProb > p.exceedProb {
		return 0, fmt.Errorf("core: the q=%v best-of-%d lies below the POT threshold (tail prob %.4f > exceedance prob %.4f); sample more or ask about larger n",
			q, n, tailProb, p.exceedProb)
	}
	// Within the tail: 1 − F(x) = p_u · (1 − G(x − u)).
	g := 1 - tailProb/p.exceedProb
	y := p.est.Report.Fit.GPD.Quantile(g)
	return p.est.Report.Threshold.U + y, nil
}

// MedianBestOfN is BestOfNQuantile at q = 0.5.
func (p *Planner) MedianBestOfN(n int) (float64, error) { return p.BestOfNQuantile(n, 0.5) }

// ProbImprove returns the probability that n further random assignments
// contain one better than the current best observation.
func (p *Planner) ProbImprove(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("core: n must be >= 1, got %d", n)
	}
	best := p.est.BestObserved
	u := p.est.Report.Threshold.U
	var tail float64 // P(one sample > best)
	if best <= u {
		tail = p.exceedProb
	} else {
		tail = p.exceedProb * (1 - p.est.Report.Fit.GPD.CDF(best-u))
	}
	if tail <= 0 {
		return 0, nil
	}
	// 1 − (1 − tail)^n, computed stably.
	return -math.Expm1(float64(n) * math.Log1p(-tail)), nil
}

// SamplesForTarget returns the smallest n with ProbImprove-style
// probability >= prob of drawing a sample above the performance target.
// Targets at or above the estimated optimum are unreachable and return an
// error.
func (p *Planner) SamplesForTarget(target, prob float64) (int, error) {
	if prob <= 0 || prob >= 1 {
		return 0, fmt.Errorf("core: probability must be in (0,1), got %v", prob)
	}
	u := p.est.Report.Threshold.U
	g := p.est.Report.Fit.GPD
	if target >= p.est.Optimal {
		return 0, fmt.Errorf("core: target %v at or above the estimated optimum %v", target, p.est.Optimal)
	}
	var tail float64
	if target <= u {
		tail = p.exceedProb
	} else {
		tail = p.exceedProb * (1 - g.CDF(target-u))
	}
	if tail <= 0 {
		return 0, fmt.Errorf("core: target %v has vanishing probability under the fitted tail", target)
	}
	n := math.Log1p(-prob) / math.Log1p(-tail)
	return int(math.Ceil(n - 1e-12)), nil
}
