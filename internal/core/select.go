package core

import (
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/evt"
	"optassign/internal/t2"
)

// WorkloadRunner measures a combination of workload selection and task
// assignment: pick names the chosen tasks (indices into a caller-defined
// candidate pool) and a places them on the hardware. It generalizes Runner
// to the combined scheduling problem the paper leaves as future work (§7):
// on processors with several sharing levels the OS both selects which ready
// tasks co-run and where they go.
type WorkloadRunner interface {
	MeasureWorkload(pick []int, a assign.Assignment) (float64, error)
}

// SelectConfig parameterizes SelectAndAssign.
type SelectConfig struct {
	Topo t2.Topology
	// PoolSize is the number of ready-to-run candidate tasks.
	PoolSize int
	// WorkloadSize is how many of them co-run (== tasks in the assignment).
	WorkloadSize int
	// Samples is the number of random (workload, assignment) combinations
	// to measure.
	Samples int
	// POT configures the optimal-performance estimation.
	POT  evt.POTOptions
	Seed int64
}

// SelectResult is the outcome of the combined sampling study.
type SelectResult struct {
	BestPick       []int             // the best workload found
	BestAssignment assign.Assignment // and its assignment
	BestPerf       float64
	Estimate       Estimate // EVT estimate of the optimal combination
	Samples        int
}

// SelectAndAssign applies the §3 statistical machinery to the *combined*
// workload-selection + task-assignment space: each sample uniformly draws a
// WorkloadSize-subset of the candidate pool and a uniform valid assignment
// for it, measures the combination, and the EVT estimator bounds the
// performance of the best possible combination. The population here is the
// product of the C(pool, k) subsets and the assignment population — even
// more hopeless to enumerate, and the method does not care.
func SelectAndAssign(cfg SelectConfig, runner WorkloadRunner) (SelectResult, error) {
	switch {
	case runner == nil:
		return SelectResult{}, fmt.Errorf("core: nil workload runner")
	case cfg.PoolSize < 1:
		return SelectResult{}, fmt.Errorf("core: pool size %d", cfg.PoolSize)
	case cfg.WorkloadSize < 1 || cfg.WorkloadSize > cfg.PoolSize:
		return SelectResult{}, fmt.Errorf("core: workload size %d of pool %d", cfg.WorkloadSize, cfg.PoolSize)
	case cfg.Samples < 1:
		return SelectResult{}, fmt.Errorf("core: sample count %d", cfg.Samples)
	}
	if err := cfg.Topo.Validate(); err != nil {
		return SelectResult{}, err
	}
	if cfg.WorkloadSize > cfg.Topo.Contexts() {
		return SelectResult{}, fmt.Errorf("core: workload of %d tasks does not fit %s", cfg.WorkloadSize, cfg.Topo)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	res := SelectResult{Samples: cfg.Samples}
	perfs := make([]float64, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		pick := rng.Perm(cfg.PoolSize)[:cfg.WorkloadSize]
		a, err := assign.RandomPermutation(rng, cfg.Topo, cfg.WorkloadSize)
		if err != nil {
			return SelectResult{}, err
		}
		perf, err := runner.MeasureWorkload(pick, a)
		if err != nil {
			return SelectResult{}, fmt.Errorf("core: measuring combination %d: %w", i, err)
		}
		perfs = append(perfs, perf)
		if res.BestPick == nil || perf > res.BestPerf {
			res.BestPick = append([]int(nil), pick...)
			res.BestAssignment = a
			res.BestPerf = perf
		}
	}
	est, err := EstimateOptimal(perfs, cfg.POT)
	if err != nil {
		return res, fmt.Errorf("core: estimating optimal combination: %w", err)
	}
	res.Estimate = est
	return res, nil
}
