package core

import (
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// Runner executes a task assignment on the target system and reports its
// measured performance (higher is better; the case study measures packets
// per second). The netdps.Testbed satisfies this interface with its
// simulated machine; on real hardware an implementation would bind the
// workload and read counters, exactly as the paper's Netra DPS setup did.
type Runner interface {
	Measure(a assign.Assignment) (float64, error)
}

// RunnerFunc adapts a plain function to the Runner interface.
type RunnerFunc func(a assign.Assignment) (float64, error)

// Measure implements Runner.
func (f RunnerFunc) Measure(a assign.Assignment) (float64, error) { return f(a) }

// SampleResult pairs an executed assignment with its measured performance.
type SampleResult struct {
	Assignment assign.Assignment
	Perf       float64
}

// Best returns the index of the best-performing result, or -1 for an empty
// slice.
func Best(results []SampleResult) int {
	best := -1
	for i, r := range results {
		if best < 0 || r.Perf > results[best].Perf {
			best = i
		}
	}
	return best
}

// Perfs extracts the performance values from results.
func Perfs(results []SampleResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Perf
	}
	return out
}

// CollectSample generates n iid random assignments of `tasks` tasks on
// topo (the paper's §3.3.2 Step 1), measures each with the runner, and
// returns the results in execution order.
func CollectSample(rng *rand.Rand, topo t2.Topology, tasks, n int, runner Runner) ([]SampleResult, error) {
	if runner == nil {
		return nil, fmt.Errorf("core: nil runner")
	}
	as, err := assign.Sample(rng, topo, tasks, n)
	if err != nil {
		return nil, err
	}
	results := make([]SampleResult, 0, n)
	for _, a := range as {
		perf, err := runner.Measure(a)
		if err != nil {
			return nil, fmt.Errorf("core: measuring assignment: %w", err)
		}
		results = append(results, SampleResult{Assignment: a, Perf: perf})
	}
	return results, nil
}
