package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// Runner executes a task assignment on the target system and reports its
// measured performance (higher is better; the case study measures packets
// per second). The netdps.Testbed satisfies this interface with its
// simulated machine; on real hardware an implementation would bind the
// workload and read counters, exactly as the paper's Netra DPS setup did.
type Runner interface {
	Measure(a assign.Assignment) (float64, error)
}

// RunnerFunc adapts a plain function to the Runner interface.
type RunnerFunc func(a assign.Assignment) (float64, error)

// Measure implements Runner.
func (f RunnerFunc) Measure(a assign.Assignment) (float64, error) { return f(a) }

// SampleResult pairs an executed assignment with its measured performance.
type SampleResult struct {
	Assignment assign.Assignment
	Perf       float64
}

// Best returns the index of the best-performing result, or -1 for an empty
// slice.
func Best(results []SampleResult) int {
	best := -1
	for i, r := range results {
		if best < 0 || r.Perf > results[best].Perf {
			best = i
		}
	}
	return best
}

// Perfs extracts the performance values from results.
func Perfs(results []SampleResult) []float64 {
	out := make([]float64, len(results))
	for i, r := range results {
		out[i] = r.Perf
	}
	return out
}

// CollectSample generates n iid random assignments of `tasks` tasks on
// topo (the paper's §3.3.2 Step 1), measures each with the runner, and
// returns the results in execution order. Any measurement failure —
// including a quarantine — aborts the sample; use CollectSampleContext for
// the degrade-gracefully semantics of long campaigns.
func CollectSample(rng *rand.Rand, topo t2.Topology, tasks, n int, runner Runner) ([]SampleResult, error) {
	if runner == nil {
		return nil, fmt.Errorf("core: nil runner")
	}
	results, skipped, err := CollectSampleContext(context.Background(), rng, topo, tasks, n, AsContextRunner(runner))
	if err != nil {
		return nil, err
	}
	if len(skipped) > 0 {
		return nil, fmt.Errorf("core: measuring assignment: %w", skipped[0].Err)
	}
	return results, nil
}

// Skipped records an assignment that was drawn for a sample but never
// yielded a measurement because its runner quarantined it.
type Skipped struct {
	Assignment assign.Assignment
	Err        error
}

// CollectSampleContext is the fault-tolerant CollectSample: it draws the
// same n iid assignments from rng, measures them under ctx, and degrades
// gracefully — an assignment whose measurement reports ErrQuarantined (see
// ResilientRunner) is recorded in skipped and the campaign continues, so
// partial testbed failures cost only the quarantined points. Any other
// error (including ctx cancellation) aborts and returns the results
// measured so far, so a journaling caller keeps everything completed.
//
// Sample-size accounting (§3.1): only len(results) measurements contribute
// to the capture probability — compute it with
// CaptureProbability(len(results), p), not with the number drawn.
func CollectSampleContext(ctx context.Context, rng *rand.Rand, topo t2.Topology, tasks, n int, runner ContextRunner) (results []SampleResult, skipped []Skipped, err error) {
	if runner == nil {
		return nil, nil, fmt.Errorf("core: nil runner")
	}
	as, err := assign.Sample(rng, topo, tasks, n)
	if err != nil {
		return nil, nil, err
	}
	outs, err := measureSerial(ctx, runner, as)
	results, skipped = splitOutcomes(as, outs)
	return results, skipped, err
}

// outcome is one draw's fate inside a batch measurement: a performance,
// or a quarantine carrying its error. Fatal errors are not outcomes —
// they abort the batch.
type outcome struct {
	perf        float64
	quarantined bool
	err         error
}

// measurer executes a batch of already-drawn assignments and returns
// their outcomes in draw order. On a fatal error it returns the outcomes
// of the draws completed (and committed) before the failure alongside the
// error, exactly like the historical collectors. The serial and parallel
// measurers are interchangeable: same inputs, same outcomes, same commit
// order.
type measurer func(ctx context.Context, as []assign.Assignment) ([]outcome, error)

// measureSerial measures the batch one assignment at a time under ctx,
// degrading gracefully on quarantines.
func measureSerial(ctx context.Context, runner ContextRunner, as []assign.Assignment) ([]outcome, error) {
	outs := make([]outcome, 0, len(as))
	for _, a := range as {
		if err := ctx.Err(); err != nil {
			return outs, err
		}
		perf, err := runner.MeasureContext(ctx, a)
		switch {
		case err == nil:
			outs = append(outs, outcome{perf: perf})
		case errors.Is(err, ErrQuarantined):
			outs = append(outs, outcome{quarantined: true, err: err})
		default:
			return outs, fmt.Errorf("core: measuring assignment: %w", err)
		}
	}
	return outs, nil
}

// splitOutcomes reassembles a batch's outcomes into the historical
// results/skipped pair.
func splitOutcomes(as []assign.Assignment, outs []outcome) (results []SampleResult, skipped []Skipped) {
	results = make([]SampleResult, 0, len(as))
	for i, o := range outs {
		if o.quarantined {
			skipped = append(skipped, Skipped{Assignment: as[i], Err: o.err})
		} else {
			results = append(results, SampleResult{Assignment: as[i], Perf: o.perf})
		}
	}
	return results, skipped
}
