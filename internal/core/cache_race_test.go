package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// TestCacheMetricsNeverUndercount is the regression test for the metrics
// race window: hit/miss/coalesced counters used to be bumped after c.mu
// was released (and the miss counter after the flight was closed), so a
// concurrent /metrics scrape could observe hits+misses smaller than the
// number of lookups the cache had already answered. The counters now move
// in the same critical section as the map state; this hammers the cache
// from many goroutines while a sampler continuously checks the invariant
//
//	hits + misses + coalesced >= completed lookups
//
// and a final quiescent check requires hits + misses == lookups exactly
// (every lookup ends as a hit or a miss; coalesced is a strict extra).
// Run under -race in CI.
func TestCacheMetricsNeverUndercount(t *testing.T) {
	topo := t2.UltraSPARCT2()
	m := NewCacheMetrics(obs.NewRegistry())
	cache := NewCache(0, m)
	// A handful of classes so workers collide constantly, a sliver of
	// latency so single-flight windows are wide, and occasional transient
	// errors so the follower-retry path is exercised too.
	var calls atomic.Int64
	inner := &countingRunner{
		delay: 200 * time.Microsecond,
		perf: func(a assign.Assignment) (float64, error) {
			if calls.Add(1)%7 == 0 {
				return 0, errors.New("transient")
			}
			return classPerf(a), nil
		},
	}
	r := NewCachedContextRunner(inner, cache, "tb-race")

	var completed atomic.Int64
	var violations atomic.Int64
	done := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			// Read the lookup floor FIRST: completed can only grow between
			// the two loads, so served >= countersAtLeast must still hold.
			floor := completed.Load()
			counted := m.Hits.Value() + m.Misses.Value() + m.Coalesced.Value()
			if counted < float64(floor) {
				violations.Add(1)
			}
		}
	}()

	const workers, perWorker = 8, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				a := assign.Assignment{Topo: topo, Ctx: []int{rng.Intn(4)}}
				_, _ = r.MeasureContext(context.Background(), a)
				completed.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	samplerWG.Wait()

	if v := violations.Load(); v > 0 {
		t.Fatalf("scraper observed hits+misses+coalesced < completed lookups %d times", v)
	}
	total := float64(workers * perWorker)
	if got := m.Hits.Value() + m.Misses.Value(); got != total {
		t.Fatalf("at quiescence hits(%v)+misses(%v) = %v, want exactly %v lookups",
			m.Hits.Value(), m.Misses.Value(), got, total)
	}
}

// TestCacheEvictionGaugeUnderLock: the entry gauge and eviction counter
// move with the map they describe — after any quiescent point,
// entries gauge == Len() and evictions == inserts - entries.
func TestCacheEvictionGaugeUnderLock(t *testing.T) {
	topo := t2.UltraSPARCT2()
	m := NewCacheMetrics(obs.NewRegistry())
	cache := NewCache(8, m) // tiny capacity to force evictions
	inner := &countingRunner{}
	r := NewCachedContextRunner(inner, cache, "tb-evict")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				a := assign.Assignment{Topo: topo, Ctx: []int{(w*64 + i) % topo.Contexts()}}
				if _, err := r.MeasureContext(context.Background(), a); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := m.Size.Value(), float64(cache.Len()); got != want {
		t.Fatalf("entries gauge %v != Len() %v", got, want)
	}
	if inserts := m.Misses.Value(); m.Evictions.Value() != inserts-float64(cache.Len()) {
		t.Fatalf("evictions %v != inserts %v - resident %d", m.Evictions.Value(), inserts, cache.Len())
	}
}
