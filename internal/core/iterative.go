package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/evt"
	"optassign/internal/obs"
	"optassign/internal/search"
	"optassign/internal/t2"
)

// IterConfig parameterizes the iterative task-assignment algorithm of §5.3
// (Fig. 13).
type IterConfig struct {
	Topo  t2.Topology
	Tasks int
	// AcceptLossPct is the customer's requirement X: the algorithm stops
	// once the best observed assignment is within X% of the estimated
	// optimal system performance.
	AcceptLossPct float64
	// Ninit and Ndelta are the initial sample size and the per-iteration
	// increment. The paper's case study uses 1000 and 100; those are the
	// defaults.
	Ninit, Ndelta int
	// MaxSamples bounds the total number of executed assignments (default
	// 20·Ninit) so an unreachable requirement terminates.
	MaxSamples int
	// POT configures the estimator (threshold rule and confidence level).
	POT evt.POTOptions
	// Seed makes the sampled assignments reproducible. The draw stream
	// deliberately seeds its RNG with this raw value — the journal header
	// records it and resumable journals pin the historical stream; every
	// *derived* stream in the project goes through search.RepSeed instead.
	Seed int64
	// Strategy generates the campaign's draws. nil runs the paper's
	// uniform baseline (search.Uniform), whose draw stream — and therefore
	// whose journals — are byte-identical to the historical
	// assign.Sample-based loop. A strategy with TailSafe() == false runs
	// without the EVT stopping rule: the campaign hunts a good assignment
	// until MaxSamples and always ends in ErrBudgetExhausted.
	Strategy search.Strategy
	// Resume seeds the algorithm with measurements recovered from an
	// interrupted campaign (e.g. a write-ahead journal, see
	// internal/campaign). They count toward Ninit and MaxSamples, so a
	// resumed run re-measures nothing it already has.
	Resume []SampleResult
	// ResumeDraws is the number of random-assignment draws the resumed
	// campaign had already consumed — measured plus quarantined. The
	// resumed campaign replays this many draws through the strategy so
	// that, given the same Seed, it continues the exact assignment
	// sequence the interrupted one was executing, and the
	// ResumeDraws-len(Resume) quarantined prefix draws keep counting
	// toward Ninit and MaxSamples, so the resumed draw and estimation
	// schedule matches the uninterrupted one exactly. 0 defaults to
	// len(Resume).
	ResumeDraws int
	// ResumeLog is the interrupted campaign's full per-draw outcome log in
	// draw order (campaign.JournalState.Log). Outcome-driven strategies
	// need it: replaying the outcomes through the strategy regenerates its
	// internal state, and each replayed draw is verified against the
	// journaled assignment — a mismatch means the journal was produced by
	// a different strategy, seed or configuration. Optional for the
	// uniform baseline (the historical RNG fast-forward suffices);
	// required by every other strategy when ResumeDraws > 0.
	ResumeLog []ResumeDraw
	// Events receives one "round" event per estimation round (§5.3
	// Fig. 13 iteration): sample sizes, the best observed performance,
	// ÛPB with its confidence interval, and the convergence gap. This is
	// what live progress displays subscribe to. nil disables.
	Events obs.EventSink
	// Metrics publishes the same per-round state as gauges for scraping.
	// nil disables. Neither hook influences the campaign: draws, RNG
	// consumption and results are identical with observability on or off.
	Metrics *IterMetrics
	// SearchMetrics counts draws, exploration draws and best-improvements,
	// labeled by strategy. nil disables; never influences the campaign.
	SearchMetrics *search.Metrics
	// StreamMetrics publishes the streaming tail estimator's live state —
	// committed observations, current threshold exceedances, UPB point and
	// CI width — updated per committed batch, not just per estimation
	// round. nil disables; never influences the campaign.
	StreamMetrics *obs.StreamMetrics
	// StreamCheckpoint restores the streaming estimator from a state
	// captured by OnRefit, so a resumed campaign rebuilds its tail state
	// from the checkpoint plus the post-checkpoint journal delta instead
	// of re-feeding the whole sample. The checkpoint's commit-order hash
	// is verified against the replayed journal prefix: a mismatch —
	// checkpoint from a different campaign, seed or strategy — is fatal
	// rather than silently diverging.
	StreamCheckpoint *evt.StreamState
	// OnRefit receives the estimator's serializable state after every
	// scheduled refit (the campaign layer persists it next to the
	// journal). An error aborts the campaign: a checkpoint that cannot be
	// written is a checkpoint that cannot be resumed from.
	OnRefit func(evt.StreamState) error
}

// ResumeDraw is one journaled draw of an interrupted campaign: the
// assignment, and either its measured performance or the fact it was
// quarantined.
type ResumeDraw struct {
	Assignment  assign.Assignment
	Perf        float64
	Quarantined bool
}

func (c IterConfig) withDefaults() IterConfig {
	if c.Ninit <= 0 {
		c.Ninit = 1000
	}
	if c.Ndelta <= 0 {
		c.Ndelta = 100
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 20 * c.Ninit
	}
	return c
}

// IterStep records one round of the algorithm: the sample size after the
// round's measurements and the resulting estimate.
type IterStep struct {
	Samples  int
	Estimate Estimate
}

// IterResult is the algorithm's final outcome.
type IterResult struct {
	// Best is the best assignment observed across all samples, with its
	// measured performance.
	Best SampleResult
	// Final is the last estimate (the one that satisfied the requirement,
	// or the state at MaxSamples).
	Final Estimate
	// Samples is the total number of assignments measured successfully.
	// Quarantined assignments are not included: the §3.1 capture
	// probability of the campaign is CaptureProbability(Samples, p).
	Samples int
	// Quarantined lists the assignments abandoned by a resilient runner
	// after exhausting their retry budget. They consumed draws (and
	// testbed time) but contribute nothing to the sample.
	Quarantined []Skipped
	// Satisfied reports whether the acceptable-loss requirement was met.
	Satisfied bool
	// History holds every round's estimate, for convergence studies.
	History []IterStep
}

// CaptureProb returns the §3.1 probability that this campaign's measured
// sample contains at least one of the best-performing topPct% of all
// assignments. It deliberately counts only successful measurements, so
// quarantined failures do not inflate the claimed coverage.
func (r IterResult) CaptureProb(topPct float64) (float64, error) {
	return CaptureProbability(r.Samples, topPct)
}

// ErrBudgetExhausted is returned when MaxSamples assignments have been
// executed without meeting the requirement; the partial result is still
// returned alongside it.
var ErrBudgetExhausted = errors.New("core: sample budget exhausted before reaching acceptable loss")

// Iterate runs the §5.3 algorithm:
//
//	Step 1: execute Ninit random assignments and measure each;
//	Step 2: estimate the optimal system performance from the sample;
//	Step 3: if the best observed assignment is within AcceptLossPct of the
//	        estimate, stop;
//	Step 4: otherwise execute Ndelta more random assignments, extend the
//	        sample, and repeat from Step 2.
//
// Larger samples both raise the chance of capturing a top assignment
// (§3.1) and tighten the estimate (§5.2), so the loop converges from both
// sides.
//
// With cfg.Strategy set, "random" in Steps 1 and 4 becomes whatever the
// strategy proposes; the estimate in Step 2 is fitted to the strategy's
// tail-eligible draws only, while Step 3 compares against the best
// assignment observed anywhere.
func Iterate(cfg IterConfig, runner Runner) (IterResult, error) {
	return IterateContext(context.Background(), cfg, AsContextRunner(runner))
}

// IterateContext is the fault-tolerant Iterate: measurements run under ctx
// (cancellation stops the campaign at a measurement boundary, returning
// everything measured so far alongside ctx's error), quarantined
// assignments are skipped rather than fatal, and cfg.Resume restarts an
// interrupted campaign from its checkpoint instead of from zero.
func IterateContext(ctx context.Context, cfg IterConfig, runner ContextRunner) (IterResult, error) {
	if runner == nil {
		return IterResult{}, fmt.Errorf("core: nil runner")
	}
	return iterate(ctx, cfg, func(ctx context.Context, as []assign.Assignment) ([]outcome, error) {
		return measureSerial(ctx, runner, as)
	})
}

// iterate is the shared §5.3 loop behind IterateContext and
// IterateParallel: the strategy draws each batch serially from the
// campaign RNG, the measurer executes it (serially or fanned out — both
// produce the identical in-order outcome stream), and completed batches
// are committed to the search history as units.
func iterate(ctx context.Context, cfg IterConfig, measure measurer) (IterResult, error) {
	cfg = cfg.withDefaults()
	if cfg.AcceptLossPct <= 0 {
		return IterResult{}, fmt.Errorf("core: acceptable loss must be positive, got %v", cfg.AcceptLossPct)
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = search.Uniform{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hist := search.NewHistory(cfg.Topo, cfg.Tasks)

	results := append([]SampleResult(nil), cfg.Resume...)
	var res IterResult
	// tailPerfs is the estimator's sample over any resumed prefix:
	// successful, non-Explore draws. For the uniform baseline it is
	// exactly Perfs(results).
	var tailPerfs []float64
	// priorQuarantined is the count of resumed-prefix draws that were
	// quarantined rather than measured (ResumeDraws minus the recovered
	// results). They are gone — the journal keeps only their failure
	// records — but they consumed draws, so they must keep counting
	// toward Ninit and MaxSamples exactly as they did before the
	// interruption; otherwise a resumed campaign draws extra assignments
	// and diverges from the uninterrupted sequence.
	priorQuarantined := 0
	if draws := cfg.resumeDraws(); draws > 0 {
		if q := draws - len(cfg.Resume); q > 0 {
			priorQuarantined = q
		}
		var err error
		tailPerfs, err = replayResume(cfg, strategy, rng, hist, draws)
		if err != nil {
			return IterResult{}, err
		}
	}
	// stream maintains the estimator's sample incrementally: the order
	// statistics, exceedance counts and best-observed update per committed
	// draw, and each estimation round is a scheduled refit of the same
	// pipeline Analyze runs — bitwise-identical by construction, proven by
	// the differential suite in internal/evt. A checkpoint skips
	// re-feeding the restored prefix; without one, the replayed sample is
	// fed in journal order, reproducing the uninterrupted stream exactly.
	stream := evt.NewStreamEstimator(evt.StreamOptions{POT: cfg.POT})
	if st := cfg.StreamCheckpoint; st != nil {
		if st.N > len(tailPerfs) {
			return IterResult{}, fmt.Errorf("core: estimator checkpoint holds %d observations but the journal replay recovered only %d (checkpoint from a different campaign?)", st.N, len(tailPerfs))
		}
		if got := evt.CommitOrderHash(tailPerfs[:st.N]); got != st.Hash {
			return IterResult{}, fmt.Errorf("core: estimator checkpoint hash %s does not match the journal's first %d tail observations (%s) — checkpoint from a different campaign, seed or strategy", st.Hash, st.N, got)
		}
		restored, err := evt.RestoreStream(*st, evt.StreamOptions{POT: cfg.POT})
		if err != nil {
			return IterResult{}, fmt.Errorf("core: estimator checkpoint: %w", err)
		}
		stream = restored
		tailPerfs = tailPerfs[st.N:]
	}
	if err := stream.ObserveAll(tailPerfs); err != nil {
		return IterResult{}, fmt.Errorf("core: resumed sample: %w", err)
	}
	publishStream := func() {
		m := cfg.StreamMetrics
		if m == nil {
			return
		}
		l := stream.Live()
		m.Observed.Set(float64(l.N))
		m.Best.Set(l.Best)
		m.TailExceedances.Set(float64(l.TailCount))
		m.TailMass.Set(l.TailMass)
		m.RefitCount.Set(float64(l.RefitCount))
		if l.Fitted {
			m.UPBPoint.Set(l.UPB)
			m.UPBCIWidth.Set(l.CIWidth())
		}
	}
	sm := cfg.SearchMetrics
	bestPerf, haveBest := 0.0, false
	if i := Best(results); i >= 0 {
		bestPerf, haveBest = results[i].Perf, true
	}
	drawn := func() int { return len(results) + len(res.Quarantined) + priorQuarantined }

	// collect draws and measures `add` fresh assignments as one batch,
	// committing it to the history when complete. lastAdded feeds the
	// round event: Ninit on the first round, Ndelta (or the budget
	// remainder) afterwards.
	lastAdded := 0
	collect := func(add int) error {
		batch := make([]assign.Assignment, 0, add)
		explore := make([]bool, 0, add)
		base := hist.Len()
		for i := 0; i < add; i++ {
			d, err := strategy.Next(rng, hist)
			if err != nil {
				return fmt.Errorf("core: strategy %s: %w", strategy.Name(), err)
			}
			hist.Push(d)
			batch = append(batch, d.Assignment)
			explore = append(explore, d.Explore)
			if sm != nil {
				sm.Draws.Inc()
				if d.Explore {
					sm.Explore.Inc()
				}
			}
		}
		outs, err := measure(ctx, batch)
		for i, o := range outs {
			hist.Resolve(base+i, o.perf, o.quarantined)
			if o.quarantined {
				res.Quarantined = append(res.Quarantined, Skipped{Assignment: batch[i], Err: o.err})
				continue
			}
			results = append(results, SampleResult{Assignment: batch[i], Perf: o.perf})
			if !explore[i] {
				if serr := stream.Observe(o.perf); serr != nil {
					return fmt.Errorf("core: draw %d: %w", base+i+1, serr)
				}
			}
			if !haveBest || o.perf > bestPerf {
				bestPerf, haveBest = o.perf, true
				if sm != nil {
					sm.Improved.Inc()
				}
			}
		}
		hist.Commit()
		publishStream()
		lastAdded = add
		return err
	}

	// fitAt walks the estimation schedule: Ninit, then +Ndelta per round,
	// with a final clamped fit at MaxSamples. A resumed campaign starts at
	// the first scheduled point not yet passed, so its batch boundaries —
	// and therefore the outcomes each strategy draw can see — line up with
	// the uninterrupted run's no matter where the interruption fell.
	fitAt := nextFitPoint(cfg, drawn())
	round := 0
	for {
		if add := fitAt - drawn(); add > 0 {
			if err := collect(add); err != nil {
				res.Samples = len(results)
				if len(results) > 0 {
					res.Best = results[Best(results)]
				}
				return res, err
			}
		}
		res.Samples = len(results)
		if len(results) == 0 {
			return res, fmt.Errorf("core: every assignment of the initial sample was quarantined: %w", ErrQuarantined)
		}
		res.Best = results[Best(results)]
		round++
		if m := cfg.Metrics; m != nil {
			m.Rounds.Inc()
			m.Samples.Set(float64(len(results)))
			m.Quarantined.Set(float64(len(res.Quarantined)))
			m.BestObserved.Set(res.Best.Perf)
		}
		if !strategy.TailSafe() {
			// No i.i.d. tail exists, so no estimate and no stopping rule:
			// the campaign hunts until the budget runs out.
			if cfg.Events != nil {
				cfg.Events.Emit(obs.Event{Name: "round", Fields: []obs.Field{
					{Key: "round", Value: round},
					{Key: "samples", Value: len(results)},
					{Key: "quarantined", Value: len(res.Quarantined)},
					{Key: "added", Value: lastAdded},
					{Key: "best", Value: res.Best.Perf},
					{Key: "tail_unsafe", Value: true},
				}})
			}
		} else {
			// Step 2 is a scheduled refit of the streaming estimator: the
			// full threshold scan + MLE + Wilks interval on the maintained
			// order statistics — the same analysis, on the same sample, as
			// the historical from-scratch EstimateOptimalAgainst, with the
			// O(n log n) re-sort amortized away.
			rep, err := stream.Refit()
			var est Estimate
			if err == nil {
				est = estimateFromReport(rep, res.Best.Perf)
			}
			publishStream()
			if hook := cfg.OnRefit; hook != nil && (err == nil || errors.Is(err, evt.ErrUnboundedTail)) {
				if herr := hook(stream.Snapshot()); herr != nil {
					return res, fmt.Errorf("core: estimator checkpoint at %d samples: %w", len(results), herr)
				}
			}
			switch {
			case errors.Is(err, evt.ErrUnboundedTail):
				// The sample's tail is not yet distinguishable from an
				// unbounded one (ξ̂ >= 0), so the optimum cannot be bounded.
				// More observations sharpen the tail; keep sampling.
				if cfg.Events != nil {
					cfg.Events.Emit(obs.Event{Name: "round", Fields: []obs.Field{
						{Key: "round", Value: round},
						{Key: "samples", Value: len(results)},
						{Key: "quarantined", Value: len(res.Quarantined)},
						{Key: "added", Value: lastAdded},
						{Key: "best", Value: res.Best.Perf},
						{Key: "tail_unbounded", Value: true},
					}})
				}
			case err != nil:
				return res, fmt.Errorf("core: estimation at %d samples: %w", len(results), err)
			default:
				res.Final = est
				res.History = append(res.History, IterStep{Samples: len(results), Estimate: est})
				// Threshold on the conservative headroom: the requirement is
				// met only when even the 0.95-confidence upper bound on the
				// optimum is within the acceptable loss of the best observed
				// assignment.
				satisfied := est.HeadroomHiPct <= cfg.AcceptLossPct
				if m := cfg.Metrics; m != nil {
					m.UPB.Set(est.Optimal)
					m.UPBLo.Set(est.Lo)
					m.UPBHi.Set(est.Hi)
					m.HeadroomHiPct.Set(est.HeadroomHiPct)
					if satisfied {
						m.Satisfied.Set(1)
					}
				}
				if cfg.Events != nil {
					cfg.Events.Emit(obs.Event{Name: "round", Fields: []obs.Field{
						{Key: "round", Value: round},
						{Key: "samples", Value: len(results)},
						{Key: "quarantined", Value: len(res.Quarantined)},
						{Key: "added", Value: lastAdded},
						{Key: "best", Value: res.Best.Perf},
						{Key: "upb", Value: est.Optimal},
						{Key: "upb_lo", Value: est.Lo},
						{Key: "upb_hi", Value: est.Hi},
						{Key: "headroom_hi_pct", Value: est.HeadroomHiPct},
						{Key: "satisfied", Value: satisfied},
					}})
				}
				if satisfied {
					res.Satisfied = true
					return res, nil
				}
			}
		}
		// Quarantined draws count against the budget too: at a 100%
		// failure rate the loop must still terminate.
		if drawn() >= cfg.MaxSamples {
			return res, ErrBudgetExhausted
		}
		fitAt += cfg.Ndelta
		if fitAt > cfg.MaxSamples {
			fitAt = cfg.MaxSamples
		}
	}
}

// nextFitPoint returns the first point of the estimation schedule
// (Ninit, Ninit+Ndelta, ..., clamped to MaxSamples) at or beyond `drawn`
// draws. A resumed campaign that died mid-batch finishes that batch
// before estimating, exactly as the uninterrupted run would have; one
// that died past the budget estimates once on what it has.
func nextFitPoint(cfg IterConfig, drawn int) int {
	if drawn <= cfg.Ninit {
		return cfg.Ninit
	}
	k := (drawn - cfg.Ninit + cfg.Ndelta - 1) / cfg.Ndelta
	at := cfg.Ninit + k*cfg.Ndelta
	if at > cfg.MaxSamples {
		at = cfg.MaxSamples
	}
	if at < drawn {
		at = drawn
	}
	return at
}

// replayResume drives the interrupted campaign's journaled draws back
// through the strategy: the RNG advances exactly as it did originally,
// the strategy rebuilds its internal state from the logged outcomes, and
// batches commit at the original estimation schedule so post-resume draws
// see the same committed horizon they would have seen uninterrupted. Each
// regenerated draw is checked against the journal — divergence means the
// journal belongs to a different strategy, seed or configuration. It
// returns the tail-eligible performance sample accumulated over the
// replayed prefix.
func replayResume(cfg IterConfig, strategy search.Strategy, rng *rand.Rand, hist *search.History, draws int) ([]float64, error) {
	log := cfg.ResumeLog
	if len(log) == 0 {
		if _, ok := strategy.(search.Uniform); !ok {
			return nil, fmt.Errorf("core: resuming strategy %s requires the journal draw log (ResumeLog)", strategy.Name())
		}
		// Historical fast path: uniform ignores outcomes, so fast-forward
		// the RNG by the consumed draws; every recovered result is
		// tail-eligible.
		if _, err := assign.Sample(rng, cfg.Topo, cfg.Tasks, draws); err != nil {
			return nil, fmt.Errorf("core: resume fast-forward: %w", err)
		}
		return Perfs(cfg.Resume), nil
	}
	if len(log) != draws {
		return nil, fmt.Errorf("core: resume log has %d draws, ResumeDraws says %d", len(log), draws)
	}
	succ := 0
	for _, d := range log {
		if !d.Quarantined {
			succ++
		}
	}
	if succ != len(cfg.Resume) {
		return nil, fmt.Errorf("core: resume log has %d successful draws, Resume carries %d", succ, len(cfg.Resume))
	}
	var tailPerfs []float64
	for i := 0; i < draws; i++ {
		if i > 0 && onFitSchedule(cfg, i) {
			hist.Commit()
		}
		d, err := strategy.Next(rng, hist)
		if err != nil {
			return nil, fmt.Errorf("core: resume replay: strategy %s: %w", strategy.Name(), err)
		}
		hist.Push(d)
		if !sameCtx(d.Assignment.Ctx, log[i].Assignment.Ctx) {
			return nil, fmt.Errorf("core: resume replay diverged at draw %d: journal has %v, strategy %s regenerated %v (journal from a different strategy, parameters or seed?)",
				i+1, log[i].Assignment.Ctx, strategy.Name(), d.Assignment.Ctx)
		}
		hist.Resolve(i, log[i].Perf, log[i].Quarantined)
		if !log[i].Quarantined && !d.Explore {
			tailPerfs = append(tailPerfs, log[i].Perf)
		}
	}
	if onFitSchedule(cfg, draws) {
		// The interruption fell exactly on a batch boundary: the final
		// batch completed, so its outcomes are visible.
		hist.Commit()
	}
	return tailPerfs, nil
}

// onFitSchedule reports whether n draws is one of the estimation points —
// a committed batch boundary.
func onFitSchedule(cfg IterConfig, n int) bool {
	if n == cfg.Ninit || n == cfg.MaxSamples {
		return true
	}
	if n < cfg.Ninit || n > cfg.MaxSamples {
		return false
	}
	return (n-cfg.Ninit)%cfg.Ndelta == 0
}

func sameCtx(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c IterConfig) resumeDraws() int {
	if c.ResumeDraws > 0 {
		return c.ResumeDraws
	}
	if len(c.ResumeLog) > 0 {
		return len(c.ResumeLog)
	}
	return len(c.Resume)
}
