package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/evt"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// IterConfig parameterizes the iterative task-assignment algorithm of §5.3
// (Fig. 13).
type IterConfig struct {
	Topo  t2.Topology
	Tasks int
	// AcceptLossPct is the customer's requirement X: the algorithm stops
	// once the best observed assignment is within X% of the estimated
	// optimal system performance.
	AcceptLossPct float64
	// Ninit and Ndelta are the initial sample size and the per-iteration
	// increment. The paper's case study uses 1000 and 100; those are the
	// defaults.
	Ninit, Ndelta int
	// MaxSamples bounds the total number of executed assignments (default
	// 20·Ninit) so an unreachable requirement terminates.
	MaxSamples int
	// POT configures the estimator (threshold rule and confidence level).
	POT evt.POTOptions
	// Seed makes the sampled assignments reproducible.
	Seed int64
	// Resume seeds the algorithm with measurements recovered from an
	// interrupted campaign (e.g. a write-ahead journal, see
	// internal/campaign). They count toward Ninit and MaxSamples, so a
	// resumed run re-measures nothing it already has.
	Resume []SampleResult
	// ResumeDraws is the number of random-assignment draws the resumed
	// campaign had already consumed — measured plus quarantined. The RNG
	// is fast-forwarded by this many draws so that, given the same Seed,
	// a resumed campaign continues the exact assignment sequence the
	// interrupted one was executing, and the ResumeDraws-len(Resume)
	// quarantined prefix draws keep counting toward Ninit and MaxSamples,
	// so the resumed draw schedule matches the uninterrupted one exactly.
	// 0 defaults to len(Resume).
	ResumeDraws int
	// Events receives one "round" event per estimation round (§5.3
	// Fig. 13 iteration): sample sizes, the best observed performance,
	// ÛPB with its confidence interval, and the convergence gap. This is
	// what live progress displays subscribe to. nil disables.
	Events obs.EventSink
	// Metrics publishes the same per-round state as gauges for scraping.
	// nil disables. Neither hook influences the campaign: draws, RNG
	// consumption and results are identical with observability on or off.
	Metrics *IterMetrics
}

func (c IterConfig) withDefaults() IterConfig {
	if c.Ninit <= 0 {
		c.Ninit = 1000
	}
	if c.Ndelta <= 0 {
		c.Ndelta = 100
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 20 * c.Ninit
	}
	return c
}

// IterStep records one round of the algorithm: the sample size after the
// round's measurements and the resulting estimate.
type IterStep struct {
	Samples  int
	Estimate Estimate
}

// IterResult is the algorithm's final outcome.
type IterResult struct {
	// Best is the best assignment observed across all samples, with its
	// measured performance.
	Best SampleResult
	// Final is the last estimate (the one that satisfied the requirement,
	// or the state at MaxSamples).
	Final Estimate
	// Samples is the total number of assignments measured successfully.
	// Quarantined assignments are not included: the §3.1 capture
	// probability of the campaign is CaptureProbability(Samples, p).
	Samples int
	// Quarantined lists the assignments abandoned by a resilient runner
	// after exhausting their retry budget. They consumed draws (and
	// testbed time) but contribute nothing to the sample.
	Quarantined []Skipped
	// Satisfied reports whether the acceptable-loss requirement was met.
	Satisfied bool
	// History holds every round's estimate, for convergence studies.
	History []IterStep
}

// CaptureProb returns the §3.1 probability that this campaign's measured
// sample contains at least one of the best-performing topPct% of all
// assignments. It deliberately counts only successful measurements, so
// quarantined failures do not inflate the claimed coverage.
func (r IterResult) CaptureProb(topPct float64) (float64, error) {
	return CaptureProbability(r.Samples, topPct)
}

// ErrBudgetExhausted is returned when MaxSamples assignments have been
// executed without meeting the requirement; the partial result is still
// returned alongside it.
var ErrBudgetExhausted = errors.New("core: sample budget exhausted before reaching acceptable loss")

// Iterate runs the §5.3 algorithm:
//
//	Step 1: execute Ninit random assignments and measure each;
//	Step 2: estimate the optimal system performance from the sample;
//	Step 3: if the best observed assignment is within AcceptLossPct of the
//	        estimate, stop;
//	Step 4: otherwise execute Ndelta more random assignments, extend the
//	        sample, and repeat from Step 2.
//
// Larger samples both raise the chance of capturing a top assignment
// (§3.1) and tighten the estimate (§5.2), so the loop converges from both
// sides.
func Iterate(cfg IterConfig, runner Runner) (IterResult, error) {
	return IterateContext(context.Background(), cfg, AsContextRunner(runner))
}

// IterateContext is the fault-tolerant Iterate: measurements run under ctx
// (cancellation stops the campaign at a measurement boundary, returning
// everything measured so far alongside ctx's error), quarantined
// assignments are skipped rather than fatal, and cfg.Resume restarts an
// interrupted campaign from its checkpoint instead of from zero.
func IterateContext(ctx context.Context, cfg IterConfig, runner ContextRunner) (IterResult, error) {
	return iterate(ctx, cfg, func(ctx context.Context, rng *rand.Rand, add int) ([]SampleResult, []Skipped, error) {
		return CollectSampleContext(ctx, rng, cfg.Topo, cfg.Tasks, add, runner)
	})
}

// collector gathers `add` fresh draws from rng — serially
// (CollectSampleContext) or fanned out (CollectSampleParallel). Both
// consume rng identically, so the iterate loop below is oblivious to which
// one drives it.
type collector func(ctx context.Context, rng *rand.Rand, add int) ([]SampleResult, []Skipped, error)

// iterate is the shared §5.3 loop behind IterateContext and
// IterateParallel.
func iterate(ctx context.Context, cfg IterConfig, collectFresh collector) (IterResult, error) {
	cfg = cfg.withDefaults()
	if cfg.AcceptLossPct <= 0 {
		return IterResult{}, fmt.Errorf("core: acceptable loss must be positive, got %v", cfg.AcceptLossPct)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	results := append([]SampleResult(nil), cfg.Resume...)
	var res IterResult
	// priorQuarantined is the count of resumed-prefix draws that were
	// quarantined rather than measured (ResumeDraws minus the recovered
	// results). They are gone — the journal keeps only their failure
	// records — but they consumed draws, so they must keep counting
	// toward Ninit and MaxSamples exactly as they did before the
	// interruption; otherwise a resumed campaign draws extra assignments
	// and diverges from the uninterrupted sequence.
	priorQuarantined := 0
	if draws := cfg.resumeDraws(); draws > 0 {
		if q := draws - len(cfg.Resume); q > 0 {
			priorQuarantined = q
		}
		// Fast-forward the RNG past the draws the interrupted campaign
		// already consumed: with the same Seed, the resumed campaign
		// continues the identical assignment sequence.
		if _, err := assign.Sample(rng, cfg.Topo, cfg.Tasks, draws); err != nil {
			return IterResult{}, fmt.Errorf("core: resume fast-forward: %w", err)
		}
	}
	// collect measures `add` fresh draws, accumulating quarantines.
	// lastAdded feeds the round event: Ninit on the first round, Ndelta
	// (or the budget remainder) afterwards.
	lastAdded := 0
	collect := func(add int) error {
		more, skipped, err := collectFresh(ctx, rng, add)
		results = append(results, more...)
		res.Quarantined = append(res.Quarantined, skipped...)
		lastAdded = add
		return err
	}
	if need := cfg.Ninit - len(results) - priorQuarantined; need > 0 {
		if err := collect(need); err != nil {
			res.Samples = len(results)
			if len(results) > 0 {
				res.Best = results[Best(results)]
			}
			return res, err
		}
	}
	round := 0
	for {
		res.Samples = len(results)
		if len(results) == 0 {
			return res, fmt.Errorf("core: every assignment of the initial sample was quarantined: %w", ErrQuarantined)
		}
		res.Best = results[Best(results)]
		est, err := EstimateOptimal(Perfs(results), cfg.POT)
		round++
		if m := cfg.Metrics; m != nil {
			m.Rounds.Inc()
			m.Samples.Set(float64(len(results)))
			m.Quarantined.Set(float64(len(res.Quarantined)))
			m.BestObserved.Set(res.Best.Perf)
		}
		switch {
		case errors.Is(err, evt.ErrUnboundedTail):
			// The sample's tail is not yet distinguishable from an
			// unbounded one (ξ̂ >= 0), so the optimum cannot be bounded.
			// More observations sharpen the tail; keep sampling.
			if cfg.Events != nil {
				cfg.Events.Emit(obs.Event{Name: "round", Fields: []obs.Field{
					{Key: "round", Value: round},
					{Key: "samples", Value: len(results)},
					{Key: "quarantined", Value: len(res.Quarantined)},
					{Key: "added", Value: lastAdded},
					{Key: "best", Value: res.Best.Perf},
					{Key: "tail_unbounded", Value: true},
				}})
			}
		case err != nil:
			return res, fmt.Errorf("core: estimation at %d samples: %w", len(results), err)
		default:
			res.Final = est
			res.History = append(res.History, IterStep{Samples: len(results), Estimate: est})
			// Threshold on the conservative headroom: the requirement is
			// met only when even the 0.95-confidence upper bound on the
			// optimum is within the acceptable loss of the best observed
			// assignment.
			satisfied := est.HeadroomHiPct <= cfg.AcceptLossPct
			if m := cfg.Metrics; m != nil {
				m.UPB.Set(est.Optimal)
				m.UPBLo.Set(est.Lo)
				m.UPBHi.Set(est.Hi)
				m.HeadroomHiPct.Set(est.HeadroomHiPct)
				if satisfied {
					m.Satisfied.Set(1)
				}
			}
			if cfg.Events != nil {
				cfg.Events.Emit(obs.Event{Name: "round", Fields: []obs.Field{
					{Key: "round", Value: round},
					{Key: "samples", Value: len(results)},
					{Key: "quarantined", Value: len(res.Quarantined)},
					{Key: "added", Value: lastAdded},
					{Key: "best", Value: res.Best.Perf},
					{Key: "upb", Value: est.Optimal},
					{Key: "upb_lo", Value: est.Lo},
					{Key: "upb_hi", Value: est.Hi},
					{Key: "headroom_hi_pct", Value: est.HeadroomHiPct},
					{Key: "satisfied", Value: satisfied},
				}})
			}
			if satisfied {
				res.Satisfied = true
				return res, nil
			}
		}
		// Quarantined draws count against the budget too: at a 100%
		// failure rate the loop must still terminate.
		drawn := len(results) + len(res.Quarantined) + priorQuarantined
		if drawn >= cfg.MaxSamples {
			return res, ErrBudgetExhausted
		}
		add := cfg.Ndelta
		if room := cfg.MaxSamples - drawn; add > room {
			add = room
		}
		if err := collect(add); err != nil {
			res.Samples = len(results)
			res.Best = results[Best(results)]
			return res, err
		}
	}
}

func (c IterConfig) resumeDraws() int {
	if c.ResumeDraws > 0 {
		return c.ResumeDraws
	}
	return len(c.Resume)
}
