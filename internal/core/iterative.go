package core

import (
	"errors"
	"fmt"
	"math/rand"

	"optassign/internal/evt"
	"optassign/internal/t2"
)

// IterConfig parameterizes the iterative task-assignment algorithm of §5.3
// (Fig. 13).
type IterConfig struct {
	Topo  t2.Topology
	Tasks int
	// AcceptLossPct is the customer's requirement X: the algorithm stops
	// once the best observed assignment is within X% of the estimated
	// optimal system performance.
	AcceptLossPct float64
	// Ninit and Ndelta are the initial sample size and the per-iteration
	// increment. The paper's case study uses 1000 and 100; those are the
	// defaults.
	Ninit, Ndelta int
	// MaxSamples bounds the total number of executed assignments (default
	// 20·Ninit) so an unreachable requirement terminates.
	MaxSamples int
	// POT configures the estimator (threshold rule and confidence level).
	POT evt.POTOptions
	// Seed makes the sampled assignments reproducible.
	Seed int64
}

func (c IterConfig) withDefaults() IterConfig {
	if c.Ninit <= 0 {
		c.Ninit = 1000
	}
	if c.Ndelta <= 0 {
		c.Ndelta = 100
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 20 * c.Ninit
	}
	return c
}

// IterStep records one round of the algorithm: the sample size after the
// round's measurements and the resulting estimate.
type IterStep struct {
	Samples  int
	Estimate Estimate
}

// IterResult is the algorithm's final outcome.
type IterResult struct {
	// Best is the best assignment observed across all samples, with its
	// measured performance.
	Best SampleResult
	// Final is the last estimate (the one that satisfied the requirement,
	// or the state at MaxSamples).
	Final Estimate
	// Samples is the total number of assignments executed.
	Samples int
	// Satisfied reports whether the acceptable-loss requirement was met.
	Satisfied bool
	// History holds every round's estimate, for convergence studies.
	History []IterStep
}

// ErrBudgetExhausted is returned when MaxSamples assignments have been
// executed without meeting the requirement; the partial result is still
// returned alongside it.
var ErrBudgetExhausted = errors.New("core: sample budget exhausted before reaching acceptable loss")

// Iterate runs the §5.3 algorithm:
//
//	Step 1: execute Ninit random assignments and measure each;
//	Step 2: estimate the optimal system performance from the sample;
//	Step 3: if the best observed assignment is within AcceptLossPct of the
//	        estimate, stop;
//	Step 4: otherwise execute Ndelta more random assignments, extend the
//	        sample, and repeat from Step 2.
//
// Larger samples both raise the chance of capturing a top assignment
// (§3.1) and tighten the estimate (§5.2), so the loop converges from both
// sides.
func Iterate(cfg IterConfig, runner Runner) (IterResult, error) {
	cfg = cfg.withDefaults()
	if cfg.AcceptLossPct <= 0 {
		return IterResult{}, fmt.Errorf("core: acceptable loss must be positive, got %v", cfg.AcceptLossPct)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	results, err := CollectSample(rng, cfg.Topo, cfg.Tasks, cfg.Ninit, runner)
	if err != nil {
		return IterResult{}, err
	}
	var res IterResult
	for {
		res.Samples = len(results)
		res.Best = results[Best(results)]
		est, err := EstimateOptimal(Perfs(results), cfg.POT)
		switch {
		case errors.Is(err, evt.ErrUnboundedTail):
			// The sample's tail is not yet distinguishable from an
			// unbounded one (ξ̂ >= 0), so the optimum cannot be bounded.
			// More observations sharpen the tail; keep sampling.
		case err != nil:
			return res, fmt.Errorf("core: estimation at %d samples: %w", len(results), err)
		default:
			res.Final = est
			res.History = append(res.History, IterStep{Samples: len(results), Estimate: est})
			// Threshold on the conservative headroom: the requirement is
			// met only when even the 0.95-confidence upper bound on the
			// optimum is within the acceptable loss of the best observed
			// assignment.
			if est.HeadroomHiPct <= cfg.AcceptLossPct {
				res.Satisfied = true
				return res, nil
			}
		}
		if len(results) >= cfg.MaxSamples {
			return res, ErrBudgetExhausted
		}
		add := cfg.Ndelta
		if room := cfg.MaxSamples - len(results); add > room {
			add = room
		}
		more, err := CollectSample(rng, cfg.Topo, cfg.Tasks, add, runner)
		if err != nil {
			return res, err
		}
		results = append(results, more...)
	}
}
