package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// CommitFunc observes completed measurements in draw order: err is nil for
// a success, wraps ErrQuarantined for an abandoned draw. A parallel
// campaign completes measurements out of order, but commits them strictly
// in draw order — this is where journaling and recording hook in, so the
// journal of a parallel run is byte-identical to a serial run's and stays
// a well-formed prefix for -resume no matter when the process dies. A
// non-nil return aborts the campaign (a journal that cannot be written is
// as fatal as a testbed that cannot measure).
type CommitFunc func(a assign.Assignment, perf float64, err error) error

// ChainCommits composes commit observers; each runs in order for every
// committed draw and the first error wins.
func ChainCommits(fs ...CommitFunc) CommitFunc {
	return func(a assign.Assignment, perf float64, err error) error {
		for _, f := range fs {
			if f == nil {
				continue
			}
			if cerr := f(a, perf, err); cerr != nil {
				return cerr
			}
		}
		return nil
	}
}

// CollectSampleParallel is CollectSampleContext fanned out across a worker
// pool. It draws the identical n iid assignments from rng (the RNG
// consumption is the same as the serial collector's, so -resume
// fast-forwarding is unaffected), measures them concurrently, and
// reassembles the outcomes in draw order: results, skipped and the commit
// sequence are exactly what a serial run with the same seed produces,
// provided each measurement is a deterministic function of its assignment
// and attempt number.
//
// Semantics mirror the serial collector draw by draw: a success extends
// results, a quarantine extends skipped, and the first fatal error —
// walking in draw order — aborts with everything before it intact; draws
// after a fatal error are discarded even if their measurements completed,
// and in-flight work is cancelled. commit (optional) is invoked in draw
// order for every success and quarantine before it is returned.
func CollectSampleParallel(ctx context.Context, rng *rand.Rand, topo t2.Topology, tasks, n int, pool *PoolRunner, commit CommitFunc) (results []SampleResult, skipped []Skipped, err error) {
	if pool == nil {
		return nil, nil, fmt.Errorf("core: nil pool")
	}
	as, err := assign.Sample(rng, topo, tasks, n)
	if err != nil {
		return nil, nil, err
	}
	outs, err := measureParallel(ctx, pool, as, commit)
	results, skipped = splitOutcomes(as, outs)
	return results, skipped, err
}

// measureParallel fans the batch out across the pool and reassembles the
// outcomes in draw order (see CollectSampleParallel for the semantics).
func measureParallel(ctx context.Context, pool *PoolRunner, as []assign.Assignment, commit CommitFunc) ([]outcome, error) {
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Reorder buffer: completions arrive in any order, draws commit in
	// index order as soon as their prefix is complete.
	pending := make(map[int]Outcome, pool.Workers())
	commitNext := 0
	var finalErr error
	m := pool.metrics

	outs := make([]outcome, 0, len(as))
	for c := range pool.stream(poolCtx, as) {
		if finalErr != nil {
			continue // drain only; the campaign is already aborted
		}
		if m != nil {
			// How far ahead of the commit point this completion landed:
			// 0 means it commits immediately, larger values mean a slow
			// earlier draw is holding the buffer open.
			m.CommitLag.Observe(float64(c.i - commitNext))
		}
		pending[c.i] = c.o
		for {
			o, ok := pending[commitNext]
			if !ok {
				break
			}
			delete(pending, commitNext)
			a := as[commitNext]
			commitNext++
			switch {
			case !o.Started:
				// Never dispatched: the serial loop's pre-measurement ctx
				// check, which returns the bare context error.
				finalErr = o.Err
			case o.Err == nil:
				if commit != nil {
					if cerr := commit(a, o.Perf, nil); cerr != nil {
						finalErr = fmt.Errorf("core: measuring assignment: %w", cerr)
						break
					}
				}
				outs = append(outs, outcome{perf: o.Perf})
			case errors.Is(o.Err, ErrQuarantined):
				if commit != nil {
					if cerr := commit(a, 0, o.Err); cerr != nil {
						finalErr = fmt.Errorf("core: measuring assignment: %w", cerr)
						break
					}
				}
				outs = append(outs, outcome{quarantined: true, err: o.Err})
			default:
				finalErr = fmt.Errorf("core: measuring assignment: %w", o.Err)
			}
			if m != nil && finalErr == nil {
				m.Committed.Inc()
			}
			if finalErr != nil {
				cancel() // stop burning testbed time on discarded draws
				break
			}
		}
		if m != nil {
			m.ReorderDepth.Set(float64(len(pending)))
		}
	}
	return outs, finalErr
}

// IterateParallel runs the §5.3 iterative algorithm with every sampling
// round fanned out across pool. Given the same IterConfig (seed included),
// a deterministic measurement source and any worker count, it visits the
// identical assignment sequence, produces the identical IterStep history
// and result as IterateContext, and commit sees the identical in-order
// measurement stream — only the wall-clock time divides by the pool size.
func IterateParallel(ctx context.Context, cfg IterConfig, pool *PoolRunner, commit CommitFunc) (IterResult, error) {
	if pool == nil {
		return IterResult{}, fmt.Errorf("core: nil pool")
	}
	return iterate(ctx, cfg, func(ctx context.Context, as []assign.Assignment) ([]outcome, error) {
		return measureParallel(ctx, pool, as, commit)
	})
}
