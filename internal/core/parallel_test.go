package core_test

// Deterministic-equivalence suite: a parallel campaign must be
// indistinguishable from a serial one — same measured sequence, same
// skipped draws, same iterative-algorithm trace — for any worker count,
// any seed, and under injected faults. These tests are the contract that
// lets operators fan a campaign out across N testbeds and still trust
// -resume, recorded campaigns and published results byte for byte.

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/faulty"
	"optassign/internal/t2"
)

// smallTopo keeps the assignment population small enough that campaigns
// with duplicate draws are likely — the hard case for order independence.
func smallTopo() t2.Topology { return t2.Topology{Cores: 2, PipesPerCore: 2, ContextsPerPipe: 2} }

// hashPerf is a pure measurement function: performance depends only on
// the assignment, like the simulated testbed's analytic solver.
func hashPerf(a assign.Assignment) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", a.Ctx)
	return 1e6 * (1 + float64(h.Sum64()%1000)/1000)
}

// hashRunner measures hashPerf after a deterministic per-assignment delay,
// so parallel completions genuinely arrive out of draw order.
func hashRunner(maxDelay time.Duration) core.ContextRunner {
	return core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if maxDelay > 0 {
			h := fnv.New64a()
			fmt.Fprintf(h, "d|%v", a.Ctx)
			time.Sleep(time.Duration(h.Sum64() % uint64(maxDelay)))
		}
		return hashPerf(a), nil
	})
}

var equivalenceWorkers = []int{1, 4, 16}
var equivalenceSeeds = []int64{1, 7, 42}

func TestCollectSampleParallelMatchesSerial(t *testing.T) {
	topo, tasks, n := smallTopo(), 3, 150
	runner := hashRunner(200 * time.Microsecond)
	for _, seed := range equivalenceSeeds {
		serial, serialSkipped, err := core.CollectSampleContext(context.Background(),
			rand.New(rand.NewSource(seed)), topo, tasks, n, runner)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range equivalenceWorkers {
			t.Run(fmt.Sprintf("seed%d-workers%d", seed, workers), func(t *testing.T) {
				pool, err := core.NewReplicatedPool(runner, workers)
				if err != nil {
					t.Fatal(err)
				}
				var committed []core.SampleResult
				commit := func(a assign.Assignment, perf float64, err error) error {
					if err != nil {
						t.Errorf("unexpected commit failure for %v: %v", a.Ctx, err)
						return nil
					}
					committed = append(committed, core.SampleResult{Assignment: a, Perf: perf})
					return nil
				}
				parallel, skipped, err := core.CollectSampleParallel(context.Background(),
					rand.New(rand.NewSource(seed)), topo, tasks, n, pool, commit)
				if err != nil {
					t.Fatal(err)
				}
				if len(skipped) != len(serialSkipped) {
					t.Fatalf("skipped %d, serial skipped %d", len(skipped), len(serialSkipped))
				}
				if !reflect.DeepEqual(parallel, serial) {
					t.Fatal("parallel results differ from serial")
				}
				if !reflect.DeepEqual(committed, serial) {
					t.Fatal("commit order differs from serial measurement order")
				}
			})
		}
	}
}

// faultStack builds the full fault-tolerant measurement stack over a
// deterministic injector: faults are keyed by (assignment, attempt), so
// serial and parallel runs meet the identical fault sequence.
func faultStack() core.ContextRunner {
	inj := faulty.NewRunner(core.AsRunner(hashRunner(100*time.Microsecond)), faulty.Config{
		Seed:            3,
		PermanentRate:   0.03,
		TransientRate:   0.2,
		KeyByAssignment: true,
	})
	return core.NewResilientRunner(inj, core.ResilientConfig{
		MaxAttempts: 3,
		BaseDelay:   time.Nanosecond,
		MaxDelay:    time.Microsecond,
	})
}

func TestCollectSampleParallelMatchesSerialUnderFaults(t *testing.T) {
	topo, tasks, n := smallTopo(), 3, 200
	for _, seed := range equivalenceSeeds {
		serial, serialSkipped, err := core.CollectSampleContext(context.Background(),
			rand.New(rand.NewSource(seed)), topo, tasks, n, faultStack())
		if err != nil {
			t.Fatal(err)
		}
		if len(serialSkipped) == 0 {
			t.Fatalf("seed %d: no quarantines injected; the test proves nothing", seed)
		}
		for _, workers := range equivalenceWorkers {
			t.Run(fmt.Sprintf("seed%d-workers%d", seed, workers), func(t *testing.T) {
				pool, err := core.NewReplicatedPool(faultStack(), workers)
				if err != nil {
					t.Fatal(err)
				}
				parallel, skipped, err := core.CollectSampleParallel(context.Background(),
					rand.New(rand.NewSource(seed)), topo, tasks, n, pool, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(parallel, serial) {
					t.Fatal("parallel results differ from serial under faults")
				}
				if len(skipped) != len(serialSkipped) {
					t.Fatalf("quarantined %d, serial quarantined %d", len(skipped), len(serialSkipped))
				}
				for i := range skipped {
					if !reflect.DeepEqual(skipped[i].Assignment, serialSkipped[i].Assignment) {
						t.Fatalf("quarantine %d: assignment %v, serial %v",
							i, skipped[i].Assignment.Ctx, serialSkipped[i].Assignment.Ctx)
					}
					if skipped[i].Err.Error() != serialSkipped[i].Err.Error() {
						t.Fatalf("quarantine %d error %q, serial %q", i, skipped[i].Err, serialSkipped[i].Err)
					}
				}
			})
		}
	}
}

func TestIterateParallelMatchesSerial(t *testing.T) {
	cfg := core.IterConfig{
		Topo:          smallTopo(),
		Tasks:         3,
		AcceptLossPct: 8,
		Ninit:         120,
		Ndelta:        40,
		MaxSamples:    400,
	}
	for _, seed := range equivalenceSeeds {
		cfg.Seed = seed
		serial, serialErr := core.IterateContext(context.Background(), cfg, faultStack())
		for _, workers := range equivalenceWorkers {
			t.Run(fmt.Sprintf("seed%d-workers%d", seed, workers), func(t *testing.T) {
				pool, err := core.NewReplicatedPool(faultStack(), workers)
				if err != nil {
					t.Fatal(err)
				}
				parallel, parallelErr := core.IterateParallel(context.Background(), cfg, pool, nil)
				if !errors.Is(parallelErr, serialErr) && fmt.Sprint(parallelErr) != fmt.Sprint(serialErr) {
					t.Fatalf("error %v, serial %v", parallelErr, serialErr)
				}
				if !reflect.DeepEqual(parallel.History, serial.History) {
					t.Fatal("IterStep history differs from serial")
				}
				if !reflect.DeepEqual(parallel.Best, serial.Best) {
					t.Fatalf("best %v (%v), serial %v (%v)",
						parallel.Best.Assignment.Ctx, parallel.Best.Perf,
						serial.Best.Assignment.Ctx, serial.Best.Perf)
				}
				if parallel.Samples != serial.Samples || parallel.Satisfied != serial.Satisfied {
					t.Fatalf("samples/satisfied = %d/%v, serial %d/%v",
						parallel.Samples, parallel.Satisfied, serial.Samples, serial.Satisfied)
				}
				if len(parallel.Quarantined) != len(serial.Quarantined) {
					t.Fatalf("quarantined %d, serial %d", len(parallel.Quarantined), len(serial.Quarantined))
				}
			})
		}
	}
}

// TestCollectSampleParallelCommitError proves a failing commit aborts the
// campaign with everything already committed intact — the journal-write-
// failure path of a parallel campaign.
func TestCollectSampleParallelCommitError(t *testing.T) {
	topo, tasks, n := smallTopo(), 3, 60
	const killAt = 25
	errKill := errors.New("commit rejected")
	pool, err := core.NewReplicatedPool(hashRunner(50*time.Microsecond), 8)
	if err != nil {
		t.Fatal(err)
	}
	var commits int
	commit := func(a assign.Assignment, perf float64, err error) error {
		if commits == killAt {
			return errKill
		}
		commits++
		return nil
	}
	results, _, err := core.CollectSampleParallel(context.Background(),
		rand.New(rand.NewSource(1)), topo, tasks, n, pool, commit)
	if !errors.Is(err, errKill) {
		t.Fatalf("err = %v, want the commit error", err)
	}
	if len(results) != killAt {
		t.Fatalf("kept %d results, want the %d committed before the failure", len(results), killAt)
	}
	// The committed prefix must equal the serial prefix.
	serial, _, err := core.CollectSampleContext(context.Background(),
		rand.New(rand.NewSource(1)), topo, tasks, n, hashRunner(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results, serial[:killAt]) {
		t.Fatal("committed prefix differs from serial prefix")
	}
}

// TestCollectSampleParallelCancellation: cancelling the context stops the
// campaign with a valid in-order prefix and the context's error, like the
// serial loop's measurement-boundary stop.
func TestCollectSampleParallelCancellation(t *testing.T) {
	topo, tasks, n := smallTopo(), 3, 500
	pool, err := core.NewReplicatedPool(hashRunner(200*time.Microsecond), 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var commits atomic.Int64
	commit := func(a assign.Assignment, perf float64, err error) error {
		if commits.Add(1) == 20 {
			cancel()
		}
		return nil
	}
	results, _, err := core.CollectSampleParallel(ctx, rand.New(rand.NewSource(9)),
		topo, tasks, n, pool, commit)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) >= n || len(results) < 20 {
		t.Fatalf("cancelled campaign kept %d results", len(results))
	}
	serial, _, serr := core.CollectSampleContext(context.Background(),
		rand.New(rand.NewSource(9)), topo, tasks, n, hashRunner(0))
	if serr != nil {
		t.Fatal(serr)
	}
	if !reflect.DeepEqual(results, serial[:len(results)]) {
		t.Fatal("cancelled prefix differs from serial prefix")
	}
}

func TestAttemptContext(t *testing.T) {
	ctx := context.Background()
	if got := core.Attempt(ctx); got != 1 {
		t.Fatalf("Attempt(background) = %d, want 1", got)
	}
	if got := core.Attempt(core.WithAttempt(ctx, 3)); got != 3 {
		t.Fatalf("Attempt = %d, want 3", got)
	}
}

func TestChainCommits(t *testing.T) {
	var order []string
	mk := func(name string, err error) core.CommitFunc {
		return func(assign.Assignment, float64, error) error {
			order = append(order, name)
			return err
		}
	}
	boom := errors.New("boom")
	chain := core.ChainCommits(mk("a", nil), nil, mk("b", boom), mk("c", nil))
	if err := chain(assign.Assignment{}, 1, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b"}) {
		t.Fatalf("order = %v", order)
	}
}
