package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/evt"
	"optassign/internal/netdps"
	"optassign/internal/t2"
)

func TestCaptureProbabilityKnownValues(t *testing.T) {
	cases := []struct {
		n    int
		pct  float64
		want float64
	}{
		{0, 1, 0},
		{1, 50, 0.5},
		{100, 1, 1 - math.Pow(0.99, 100)}, // ≈ 0.634
		{459, 1, 0.99005},                 // §3.1: several hundred suffice for top 1%
		{10, 100, 1},
	}
	for _, c := range cases {
		got, err := CaptureProbability(c.n, c.pct)
		if err != nil {
			t.Fatalf("(%d, %v): %v", c.n, c.pct, err)
		}
		if math.Abs(got-c.want) > 1e-4 {
			t.Errorf("CaptureProbability(%d, %v) = %v, want %v", c.n, c.pct, got, c.want)
		}
	}
}

func TestCaptureProbabilityErrors(t *testing.T) {
	if _, err := CaptureProbability(-1, 1); err == nil {
		t.Error("negative n accepted")
	}
	for _, pct := range []float64{0, -5, 101} {
		if _, err := CaptureProbability(10, pct); err == nil {
			t.Errorf("pct=%v accepted", pct)
		}
	}
}

func TestCaptureProbabilityMonotoneProperty(t *testing.T) {
	f := func(rawN uint16, rawP uint8) bool {
		n := int(rawN) % 5000
		pct := 0.5 + float64(rawP%25)
		p1, err1 := CaptureProbability(n, pct)
		p2, err2 := CaptureProbability(n+100, pct)
		p3, err3 := CaptureProbability(n, pct+1)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		// More samples and a wider top-set both raise the probability.
		return p2 >= p1 && p3 >= p1 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRequiredSampleSize(t *testing.T) {
	// The paper's headline: a few hundred samples capture a top-1%
	// assignment with 99% probability.
	n, err := RequiredSampleSize(1, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if n != 459 {
		t.Errorf("RequiredSampleSize(1, 0.99) = %d, want 459", n)
	}
	// Consistency: n achieves the probability, n−1 does not.
	for _, c := range []struct{ pct, prob float64 }{{1, 0.99}, {2, 0.999}, {5, 0.95}, {0.5, 0.9}} {
		n, err := RequiredSampleSize(c.pct, c.prob)
		if err != nil {
			t.Fatal(err)
		}
		pAt, _ := CaptureProbability(n, c.pct)
		pBelow, _ := CaptureProbability(n-1, c.pct)
		if pAt < c.prob || pBelow >= c.prob {
			t.Errorf("RequiredSampleSize(%v, %v) = %d: P(n)=%v P(n-1)=%v", c.pct, c.prob, n, pAt, pBelow)
		}
	}
	if n, _ := RequiredSampleSize(5, 0); n != 0 {
		t.Errorf("prob 0 should need 0 samples, got %d", n)
	}
	if n, _ := RequiredSampleSize(100, 0.5); n != 1 {
		t.Errorf("pct 100 should need 1 sample, got %d", n)
	}
	if _, err := RequiredSampleSize(0, 0.5); err == nil {
		t.Error("pct 0 accepted")
	}
	if _, err := RequiredSampleSize(1, 1); err == nil {
		t.Error("prob 1 accepted")
	}
}

func TestCaptureCurve(t *testing.T) {
	pts, err := CaptureCurve(1, []int{1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Prob <= pts[i-1].Prob {
			t.Error("curve not increasing")
		}
	}
	if _, err := CaptureCurve(0, []int{1}); err == nil {
		t.Error("bad pct accepted")
	}
}

func TestBestAndPerfs(t *testing.T) {
	if Best(nil) != -1 {
		t.Error("Best(nil) should be -1")
	}
	rs := []SampleResult{{Perf: 2}, {Perf: 9}, {Perf: 5}}
	if Best(rs) != 1 {
		t.Errorf("Best = %d", Best(rs))
	}
	ps := Perfs(rs)
	if len(ps) != 3 || ps[1] != 9 {
		t.Errorf("Perfs = %v", ps)
	}
}

func TestCollectSample(t *testing.T) {
	topo := t2.UltraSPARCT2()
	rng := rand.New(rand.NewSource(1))
	calls := 0
	runner := RunnerFunc(func(a assign.Assignment) (float64, error) {
		calls++
		if err := a.Validate(); err != nil {
			return 0, err
		}
		return float64(a.Ctx[0]), nil
	})
	rs, err := CollectSample(rng, topo, 6, 25, runner)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 25 || calls != 25 {
		t.Errorf("len=%d calls=%d", len(rs), calls)
	}
	if _, err := CollectSample(rng, topo, 6, 5, nil); err == nil {
		t.Error("nil runner accepted")
	}
	failing := RunnerFunc(func(assign.Assignment) (float64, error) { return 0, errors.New("boom") })
	if _, err := CollectSample(rng, topo, 6, 5, failing); err == nil {
		t.Error("runner error not propagated")
	}
	if _, err := CollectSample(rng, topo, 0, 5, runner); err == nil {
		t.Error("bad task count accepted")
	}
}

func newTestbed(t *testing.T, instances int) *netdps.Testbed {
	t.Helper()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), instances)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestEstimateOptimalOnTestbed(t *testing.T) {
	tb := newTestbed(t, 8)
	rng := rand.New(rand.NewSource(3))
	rs, err := CollectSample(rng, tb.Machine.Topo, tb.TaskCount(), 1000, tb)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateOptimal(Perfs(rs), evt.POTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Optimal < est.BestObserved {
		t.Errorf("optimal %v below best observed %v", est.Optimal, est.BestObserved)
	}
	if !(est.Lo <= est.Optimal && est.Optimal <= est.Hi) {
		t.Errorf("CI [%v, %v] does not contain point %v", est.Lo, est.Hi, est.Optimal)
	}
	if est.Report.Fit.GPD.Xi >= 0 {
		t.Errorf("fitted shape %v should be negative on a bounded system", est.Report.Fit.GPD.Xi)
	}
	if est.HeadroomPct < 0 || est.HeadroomPct > 30 {
		t.Errorf("headroom %v%% out of plausible band", est.HeadroomPct)
	}
	if _, err := EstimateOptimal(nil, evt.POTOptions{}); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestIterateConvergesAndRespectsTarget(t *testing.T) {
	tb := newTestbed(t, 8)
	base := IterConfig{
		Topo:  tb.Machine.Topo,
		Tasks: tb.TaskCount(),
		Ninit: 500,

		Ndelta: 100,
		Seed:   7,
	}

	loose := base
	loose.AcceptLossPct = 10
	rl, err := Iterate(loose, tb)
	if err != nil {
		t.Fatalf("loose target: %v", err)
	}
	if !rl.Satisfied {
		t.Error("loose target not satisfied")
	}
	if rl.Final.HeadroomHiPct > 10 {
		t.Errorf("final conservative headroom %v above target", rl.Final.HeadroomHiPct)
	}

	tight := base
	tight.AcceptLossPct = 2.0
	tight.MaxSamples = 8000
	rt, err := Iterate(tight, tb)
	if err != nil && !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("tight target: %v", err)
	}
	if rt.Samples < rl.Samples {
		t.Errorf("tighter target used fewer samples (%d) than loose (%d)", rt.Samples, rl.Samples)
	}
	// History is monotone in sample count and per-step best never regresses.
	for i := 1; i < len(rt.History); i++ {
		if rt.History[i].Samples <= rt.History[i-1].Samples {
			t.Error("history sample counts not increasing")
		}
	}
	if rt.Best.Perf < rl.Best.Perf*0.95 {
		t.Errorf("larger sample found much worse best: %v vs %v", rt.Best.Perf, rl.Best.Perf)
	}
}

func TestIterateBudgetExhaustion(t *testing.T) {
	tb := newTestbed(t, 8)
	cfg := IterConfig{
		Topo:          tb.Machine.Topo,
		Tasks:         tb.TaskCount(),
		AcceptLossPct: 0.0001, // unreachably tight
		Ninit:         500,
		Ndelta:        100,
		MaxSamples:    800,
		Seed:          1,
	}
	res, err := Iterate(cfg, tb)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res.Satisfied {
		t.Error("Satisfied should be false")
	}
	if res.Samples != 800 {
		t.Errorf("Samples = %d, want exactly the budget", res.Samples)
	}
}

func TestIterateValidation(t *testing.T) {
	tb := newTestbed(t, 2)
	cfg := IterConfig{Topo: tb.Machine.Topo, Tasks: tb.TaskCount(), Seed: 1}
	if _, err := Iterate(cfg, tb); err == nil {
		t.Error("zero acceptable loss accepted")
	}
	cfg.AcceptLossPct = 5
	cfg.Tasks = 0
	if _, err := Iterate(cfg, tb); err == nil {
		t.Error("bad task count accepted")
	}
}

func TestIterateFasterForLooserTargets(t *testing.T) {
	// Figure 14's shape: the looser the acceptable loss, the fewer samples
	// the algorithm needs.
	tb := newTestbed(t, 8)
	samplesFor := func(loss float64) int {
		cfg := IterConfig{
			Topo: tb.Machine.Topo, Tasks: tb.TaskCount(),
			AcceptLossPct: loss, Ninit: 500, Ndelta: 100, MaxSamples: 6000, Seed: 42,
		}
		res, err := Iterate(cfg, tb)
		if err != nil && !errors.Is(err, ErrBudgetExhausted) {
			t.Fatal(err)
		}
		return res.Samples
	}
	n10, n5 := samplesFor(10), samplesFor(5)
	if n10 > n5 {
		t.Errorf("loss 10%% used %d samples, loss 5%% used %d — should not decrease", n10, n5)
	}
}

func ExampleCaptureProbability() {
	p, _ := CaptureProbability(1000, 1)
	fmt.Printf("P(top-1%% in 1000 samples) = %.4f\n", p)
	// Output: P(top-1% in 1000 samples) = 1.0000
}
