package cycle

import (
	"testing"

	"optassign/internal/proc"
	"optassign/internal/t2"
)

// mkTriple builds a 3-stage pipeline workload (one group) with the given P
// demand and light R/T demands.
func mkTriple(p proc.Demand) []proc.Task {
	light := proc.Demand{Serial: 60}
	light.Res[proc.IEU] = 80
	light.Res[proc.LSU] = 100
	light.Res[proc.L1D] = 60
	return []proc.Task{
		{Demand: light, Group: 0},
		{Demand: p, Group: 0},
		{Demand: light, Group: 0},
	}
}

func heavyP() proc.Demand {
	var d proc.Demand
	d.Serial = 20
	d.Res[proc.IFU] = 30
	d.Res[proc.IEU] = 650
	d.Res[proc.LSU] = 360
	d.Res[proc.L1D] = 200
	d.Res[proc.L2] = 20
	return d
}

func TestBuildProgramConservesWork(t *testing.T) {
	d := heavyP()
	prog := buildProgram(d)
	var issue, lsu, miss, serial int
	for _, o := range prog.ops {
		switch o.class {
		case opIssue:
			issue++
		case opLSU:
			lsu++
		case opMiss:
			miss += int(o.latency)
		case opSerial:
			serial += int(o.latency)
		}
	}
	if want := int(d.Res[proc.IFU] + d.Res[proc.IEU]); issue != want {
		t.Errorf("issue ops = %d, want %d", issue, want)
	}
	if want := int(d.Res[proc.LSU]); lsu != want {
		t.Errorf("LSU ops = %d, want %d", lsu, want)
	}
	if want := int(d.Res[proc.L1D] + d.Res[proc.L2]); miss != want {
		t.Errorf("miss latency = %d, want %d", miss, want)
	}
	if serial != int(d.Serial) {
		t.Errorf("serial latency = %d, want %v", serial, d.Serial)
	}
	// Degenerate demand still yields a non-empty program.
	if len(buildProgram(proc.Demand{}).ops) == 0 {
		t.Error("empty demand program")
	}
}

func TestSoloPipelineApproachesBottleneckRate(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	tasks := mkTriple(heavyP())
	topo := m.Topo
	// Ideal placement: P alone in pipe 0, R/T in pipe 1 of core 0.
	placement := []int{topo.Context(0, 1, 0), topo.Context(0, 0, 0), topo.Context(0, 1, 1)}
	sim, err := New(m, tasks, []proc.Link{{A: 0, B: 1, Volume: 1}, {A: 1, B: 2, Volume: 1}}, placement, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	// The P stage needs ~1280 cycles of work + ~25 comm per packet and
	// runs alone in its pipe with latency fully hidden only if R/T keep
	// queues busy — throughput should be within ~20% of the 1/1305
	// packets-per-cycle bound.
	bound := m.ClockHz / 1305
	if res.TotalPPS > bound*1.02 {
		t.Errorf("cycle sim faster than physics: %v > %v", res.TotalPPS, bound)
	}
	if res.TotalPPS < bound*0.75 {
		t.Errorf("cycle sim too slow: %v < 0.75×%v", res.TotalPPS, bound)
	}
	if res.Cycles <= 0 || res.GroupPPS[0] != res.TotalPPS {
		t.Errorf("result bookkeeping: %+v", res)
	}
}

func TestPipeSharingEmergesAsContention(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	// Two pipelines; compare both P threads in one pipe vs separate pipes.
	tasks := append(mkTriple(heavyP()), mkTriple(heavyP())...)
	for i := 3; i < 6; i++ {
		tasks[i].Group = 1
	}
	links := []proc.Link{{A: 0, B: 1}, {A: 1, B: 2}, {A: 3, B: 4}, {A: 4, B: 5}}
	topo := m.Topo

	shared := []int{
		topo.Context(0, 1, 0), topo.Context(0, 0, 0), topo.Context(0, 1, 1),
		topo.Context(1, 1, 0), topo.Context(0, 0, 1), topo.Context(1, 1, 1),
	}
	separate := []int{
		topo.Context(0, 1, 0), topo.Context(0, 0, 0), topo.Context(0, 1, 1),
		topo.Context(1, 1, 0), topo.Context(1, 0, 0), topo.Context(1, 1, 1),
	}
	run := func(placement []int) Result {
		sim, err := New(m, tasks, links, placement, Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(300)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rs, rsep := run(shared), run(separate)
	if !(rsep.TotalPPS > rs.TotalPPS*1.1) {
		t.Errorf("pipe sharing should clearly hurt: shared %v vs separate %v", rs.TotalPPS, rsep.TotalPPS)
	}
	// The shared pipe's issue slot is the contended resource.
	if rs.IssueBusy[0] <= rsep.IssueBusy[0] {
		t.Errorf("shared pipe not busier: %v vs %v", rs.IssueBusy[0], rsep.IssueBusy[0])
	}
}

func TestLSUPortContentionEmerges(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	// LSU-only heavy tasks: two instances fully inside one core must lose
	// strand-cycles to port arbitration versus two cores.
	var lsuHeavy proc.Demand
	lsuHeavy.Res[proc.IEU] = 100
	lsuHeavy.Res[proc.LSU] = 700
	tasks := append(mkTriple(lsuHeavy), mkTriple(lsuHeavy)...)
	for i := 3; i < 6; i++ {
		tasks[i].Group = 1
	}
	links := []proc.Link{{A: 0, B: 1}, {A: 1, B: 2}, {A: 3, B: 4}, {A: 4, B: 5}}
	topo := m.Topo
	oneCore := []int{
		topo.Context(0, 0, 0), topo.Context(0, 0, 1), topo.Context(0, 0, 2),
		topo.Context(0, 1, 0), topo.Context(0, 1, 1), topo.Context(0, 1, 2),
	}
	twoCores := []int{
		topo.Context(0, 0, 0), topo.Context(0, 0, 1), topo.Context(0, 0, 2),
		topo.Context(1, 0, 0), topo.Context(1, 0, 1), topo.Context(1, 0, 2),
	}
	run := func(placement []int) Result {
		sim, err := New(m, tasks, links, placement, Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, two := run(oneCore), run(twoCores)
	if !(two.TotalPPS > one.TotalPPS*1.05) {
		t.Errorf("LSU port sharing should hurt: one core %v vs two cores %v", one.TotalPPS, two.TotalPPS)
	}
	if one.LSUBlocked == 0 {
		t.Error("no LSU arbitration losses recorded in the contended case")
	}
}

func TestNewValidation(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	tasks := mkTriple(heavyP())
	if _, err := New(m, nil, nil, nil, Config{}); err == nil {
		t.Error("no tasks accepted")
	}
	if _, err := New(m, tasks, nil, []int{0}, Config{}); err == nil {
		t.Error("placement mismatch accepted")
	}
	if _, err := New(m, tasks, nil, []int{0, 0, 1}, Config{}); err == nil {
		t.Error("duplicate context accepted")
	}
	if _, err := New(m, tasks, nil, []int{0, 1, 999}, Config{}); err == nil {
		t.Error("out-of-range context accepted")
	}
	if _, err := New(m, tasks, []proc.Link{{A: 0, B: 99}}, []int{0, 1, 2}, Config{}); err == nil {
		t.Error("dangling link accepted")
	}
	twoTask := []proc.Task{{Demand: heavyP(), Group: 0}, {Demand: heavyP(), Group: 0}}
	if _, err := New(m, twoTask, nil, []int{0, 1}, Config{}); err == nil {
		t.Error("non-triple group accepted")
	}
	bad := *m
	bad.Topo = t2.Topology{}
	if _, err := New(&bad, tasks, nil, []int{0, 1, 2}, Config{}); err == nil {
		t.Error("invalid machine accepted")
	}
	sim, err := New(m, tasks, nil, []int{0, 4, 5}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(0); err == nil {
		t.Error("0 packets accepted")
	}
	// MaxCycles abort.
	sim2, err := New(m, tasks, nil, []int{0, 4, 5}, Config{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim2.Run(1000); err == nil {
		t.Error("MaxCycles not enforced")
	}
}
