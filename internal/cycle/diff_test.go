package cycle

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"optassign/internal/proc"
	"optassign/internal/t2"
)

// diffWorkload is one randomized trial for the differential test: a
// workload, a placement and a config, all generated from the trial RNG.
type diffWorkload struct {
	machine   *proc.Machine
	tasks     []proc.Task
	links     []proc.Link
	placement []int
	cfg       Config
	packets   int
}

// randomDemand draws a demand vector covering every op class the program
// builder emits: issue work, LSU work, miss latency split over several
// resources, and serial regions — with zeros common enough to exercise the
// degenerate single-op program.
func randomDemand(rng *rand.Rand) proc.Demand {
	var d proc.Demand
	if rng.Intn(4) > 0 {
		d.Res[proc.IFU] = float64(rng.Intn(20))
		d.Res[proc.IEU] = float64(rng.Intn(60))
	}
	if rng.Intn(3) > 0 {
		d.Res[proc.LSU] = float64(rng.Intn(40))
	}
	if rng.Intn(3) > 0 {
		d.Res[proc.L1D] = float64(rng.Intn(80))
		d.Res[proc.L2] = float64(rng.Intn(30))
		d.Res[proc.MEM] = float64(rng.Intn(25))
	}
	if rng.Intn(2) == 0 {
		d.Serial = float64(rng.Intn(50))
	}
	return d
}

// randomWorkload draws a workload of 1–4 pipeline instances (occasionally
// with a gap in the group numbering, which New tolerates and the rollup
// must handle), random demands, R→P/P→T links and a random distinct
// placement.
func randomWorkload(rng *rand.Rand, m *proc.Machine) diffWorkload {
	topo := m.Topo
	maxGroups := topo.Contexts() / 3
	if maxGroups > 4 {
		maxGroups = 4
	}
	nGroups := 1 + rng.Intn(maxGroups)
	gap := 0
	if nGroups < maxGroups && rng.Intn(4) == 0 {
		gap = 1 + rng.Intn(2) // sparse group indices: groups {gap, gap+1, ...}
	}
	var tasks []proc.Task
	var links []proc.Link
	for g := 0; g < nGroups; g++ {
		base := len(tasks)
		for stage := 0; stage < 3; stage++ {
			tasks = append(tasks, proc.Task{Demand: randomDemand(rng), Group: g + gap})
		}
		links = append(links,
			proc.Link{A: base, B: base + 1, Volume: 1},
			proc.Link{A: base + 1, B: base + 2, Volume: 1})
	}
	perm := rng.Perm(topo.Contexts())
	placement := perm[:len(tasks)]
	cfg := Config{QueueDepth: 1 + rng.Intn(64)}
	if rng.Intn(5) == 0 {
		// Some trials must abort: both loops have to produce the identical
		// error at the identical point.
		cfg.MaxCycles = int64(5 + rng.Intn(200))
	}
	return diffWorkload{
		machine:   m,
		tasks:     tasks,
		links:     links,
		placement: placement,
		cfg:       cfg,
		packets:   10 + rng.Intn(50),
	}
}

func (w diffWorkload) newSim(t testing.TB) *Sim {
	s, err := New(w.machine, w.tasks, w.links, w.placement, w.cfg)
	if err != nil {
		t.Fatalf("New: %v (workload %+v)", err, w)
	}
	return s
}

// checkEquivalent runs the event-driven loop and the reference polling loop
// on two identically-constructed simulators and requires bit-identical
// Results (cycles, PPS, busy counters, blocked counts) and identical
// errors.
func checkEquivalent(t *testing.T, w diffWorkload) {
	t.Helper()
	fast, ferr := w.newSim(t).Run(w.packets)
	ref, rerr := w.newSim(t).runReference(w.packets)
	if fmt.Sprint(ferr) != fmt.Sprint(rerr) {
		t.Fatalf("error mismatch: event-driven %v vs reference %v\nworkload: %+v", ferr, rerr, w)
	}
	if !reflect.DeepEqual(fast, ref) {
		t.Fatalf("Result mismatch:\nevent-driven: %+v\nreference:    %+v\nworkload: %+v", fast, ref, w)
	}
}

// TestRunMatchesReferenceRandomized is the differential proof required by
// the event-driven rewrite: across randomized workloads, placements, queue
// depths and MaxCycles bounds on two machine shapes, Run reproduces the
// original per-cycle polling loop exactly.
func TestRunMatchesReferenceRandomized(t *testing.T) {
	small := *proc.UltraSPARCT2Machine()
	small.Topo = t2.Topology{Cores: 2, PipesPerCore: 2, ContextsPerPipe: 2}
	machines := []*proc.Machine{proc.UltraSPARCT2Machine(), &small}
	for mi, m := range machines {
		rng := rand.New(rand.NewSource(int64(41 + mi)))
		for trial := 0; trial < 40; trial++ {
			checkEquivalent(t, randomWorkload(rng, m))
		}
	}
}

// TestRunMatchesReferenceIdleJump targets the clock-jump path: enormous
// serial regions park the whole machine for long stretches, which the
// event-driven loop skips in one step and the reference loop grinds
// through cycle by cycle.
func TestRunMatchesReferenceIdleJump(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	var d proc.Demand
	d.Res[proc.IEU] = 3
	d.Serial = 2000
	tasks := []proc.Task{{Demand: d, Group: 0}, {Demand: d, Group: 0}, {Demand: d, Group: 0}}
	links := []proc.Link{{A: 0, B: 1, Volume: 1}, {A: 1, B: 2, Volume: 1}}
	w := diffWorkload{
		machine: m, tasks: tasks, links: links,
		placement: []int{0, 17, 34}, // spread across cores: comm parks too
		cfg:       Config{},
		packets:   8,
	}
	checkEquivalent(t, w)

	// Same workload with MaxCycles landing inside an idle stretch: the jump
	// must still abort exactly where the polling loop would.
	for _, mc := range []int64{100, 2001, 2050, 16000, 17000} {
		w.cfg = Config{MaxCycles: mc}
		checkEquivalent(t, w)
	}
}

// TestRunIsolatedGroupFinishesIndependently pins the completion counter: a
// fast group must not keep the simulation alive once every group hit the
// packet target, and per-group PPS must reflect any extra packets a
// finished transmitter drained while slower groups ran on (exactly as the
// reference loop allows).
func TestRunIsolatedGroupFinishesIndependently(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	var fast, slow proc.Demand
	fast.Res[proc.IEU] = 2
	slow.Res[proc.IEU] = 40
	slow.Serial = 300
	mk := func(d proc.Demand, g int) []proc.Task {
		return []proc.Task{{Demand: d, Group: g}, {Demand: d, Group: g}, {Demand: d, Group: g}}
	}
	tasks := append(mk(fast, 0), mk(slow, 1)...)
	links := []proc.Link{
		{A: 0, B: 1, Volume: 1}, {A: 1, B: 2, Volume: 1},
		{A: 3, B: 4, Volume: 1}, {A: 4, B: 5, Volume: 1},
	}
	topo := m.Topo
	placement := []int{
		topo.Context(0, 0, 0), topo.Context(0, 0, 1), topo.Context(0, 1, 0),
		topo.Context(1, 0, 0), topo.Context(1, 0, 1), topo.Context(1, 1, 0),
	}
	w := diffWorkload{machine: m, tasks: tasks, links: links, placement: placement, cfg: Config{}, packets: 25}
	checkEquivalent(t, w)
}

// BenchmarkSimRun compares the event-driven loop against the reference
// polling loop on the standard single-instance workload. Construction is
// included in both arms (Run consumes the Sim), so the delta understates
// the pure loop speedup.
func BenchmarkSimRun(b *testing.B) {
	m := proc.UltraSPARCT2Machine()
	tasks := mkTriple(heavyP())
	links := []proc.Link{{A: 0, B: 1, Volume: 1}, {A: 1, B: 2, Volume: 1}}
	topo := m.Topo
	placement := []int{topo.Context(0, 1, 0), topo.Context(0, 0, 0), topo.Context(0, 1, 1)}
	b.Run("event", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := New(m, tasks, links, placement, Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(100); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := New(m, tasks, links, placement, Config{})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.runReference(100); err != nil {
				b.Fatal(err)
			}
		}
	})
}
