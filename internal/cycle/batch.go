package cycle

import (
	"fmt"
	"runtime"
	"sync"

	"optassign/internal/proc"
)

// BatchSim evaluates many placements of ONE task set on ONE machine. It
// exists because the sampling loop measures thousands of assignments that
// differ only in placement: the packet programs (the expensive derived
// state — one op stream per task) are built once here and shared
// read-only by every placement and every worker, strand and rollup
// storage is arena-allocated per batch instead of per assignment, and the
// placements are sharded across GOMAXPROCS workers.
//
// Each placement still runs through exactly the same init + RunScratch
// code path as a standalone Sim, so batch results are bit-identical to
// per-assignment New+Run — the batch differential test pins this.
type BatchSim struct {
	machine *proc.Machine
	tasks   []proc.Task
	links   []proc.Link
	cfg     Config
	progs   []packetProgram // per task, read-only
	groups  int
}

// NewBatchSim validates the placement-independent inputs once and
// precomputes the per-task packet programs shared by every Run.
func NewBatchSim(machine *proc.Machine, tasks []proc.Task, links []proc.Link, cfg Config) (*BatchSim, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("cycle: no tasks")
	}
	b := &BatchSim{machine: machine, tasks: tasks, links: links, cfg: cfg.withDefaults()}
	byDemand := make(map[proc.Demand]packetProgram)
	b.progs = make([]packetProgram, len(tasks))
	for i, task := range tasks {
		if task.Group >= b.groups {
			b.groups = task.Group + 1
		}
		prog, ok := byDemand[task.Demand]
		if !ok {
			prog = buildProgram(task.Demand)
			byDemand[task.Demand] = prog
		}
		b.progs[i] = prog
	}
	return b, nil
}

// Run simulates every placement for `packets` packets and returns one
// Result (or one error) per placement, index-aligned with placements.
// Per-placement failures are reported in errs without failing the batch.
//
// Result slices are carved from three arena allocations shared by the
// whole batch; they stay valid after Run returns and are never reused.
func (b *BatchSim) Run(placements [][]int, packets int) (results []Result, errs []error) {
	k := len(placements)
	if k == 0 {
		return nil, nil
	}
	topo := b.machine.Topo
	pipes, cores := topo.Pipes(), topo.Cores
	results = make([]Result, k)
	errs = make([]error, k)
	// One allocation per rollup kind for the whole batch.
	issueArena := make([]int64, k*pipes)
	lsuArena := make([]int64, k*cores)
	ppsArena := make([]float64, k*b.groups)

	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Worker-private reusable machinery: one Sim re-inited per
			// placement, one Scratch, one duplicate-context table.
			var sim Sim
			var sc Scratch
			seen := make([]bool, topo.Contexts())
			for i := w; i < k; i += workers {
				if err := sim.init(b.machine, b.tasks, b.links, placements[i], b.cfg, b.progs, seen); err != nil {
					errs[i] = err
					continue
				}
				r, err := sim.RunScratch(packets, &sc)
				if err != nil {
					errs[i] = err
					continue
				}
				// r's slices alias sc; move them into this placement's arena
				// segment so the returned Result outlives the next run.
				out := &results[i]
				*out = r
				out.IssueBusy = issueArena[i*pipes : (i+1)*pipes : (i+1)*pipes]
				out.LSUBusy = lsuArena[i*cores : (i+1)*cores : (i+1)*cores]
				out.GroupPPS = ppsArena[i*b.groups : (i+1)*b.groups : (i+1)*b.groups]
				copy(out.IssueBusy, r.IssueBusy)
				copy(out.LSUBusy, r.LSUBusy)
				copy(out.GroupPPS, r.GroupPPS)
			}
		}(w)
	}
	wg.Wait()
	return results, errs
}
