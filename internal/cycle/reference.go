package cycle

import "fmt"

// runReference is the original cycle-by-cycle polling loop of Sim.Run,
// transcribed onto the value-typed strand storage. Every cycle it rescans
// completion (the old done() closure), polls every occupied pipe and skips
// parked strands one by one, and the final PPS rollup is the original
// O(groups × strands) nested scan. It exists purely as the executable
// specification for the differential tests: Run must reproduce its Result
// and errors exactly. Not used by any production path.
func (s *Sim) runReference(packets int) (Result, error) {
	if packets < 1 {
		return Result{}, fmt.Errorf("cycle: need at least one packet")
	}
	topo := s.machine.Topo
	res := Result{
		IssueBusy: make([]int64, topo.Pipes()),
		LSUBusy:   make([]int64, topo.Cores),
		GroupPPS:  make([]float64, s.groups),
	}
	target := int64(packets)
	lsuTaken := make([]int64, topo.Cores) // cycle number when last used
	var cycle int64

	done := func() bool {
		for i := range s.strands {
			if st := &s.strands[i]; st.stage == 2 && st.packets < target {
				return false
			}
		}
		return true
	}

	for !done() {
		cycle++
		if s.cfg.MaxCycles > 0 && cycle > s.cfg.MaxCycles {
			return Result{}, fmt.Errorf("cycle: exceeded %d cycles", s.cfg.MaxCycles)
		}
		for pipe := range s.byPipe {
			idxs := s.byPipe[pipe]
			if len(idxs) == 0 {
				continue
			}
			// Round-robin: try each strand starting after the last issuer.
			issued := false
			for k := 0; k < len(idxs) && !issued; k++ {
				st := &s.strands[idxs[(s.rrIndex[pipe]+k)%len(idxs)]]
				if st.wakeCycle > cycle {
					continue // parked
				}
				if !s.canWork(st, target) {
					continue // blocked on queues or finished
				}
				o := st.program.ops[st.pc]
				switch o.class {
				case opIssue:
					st.pc++
				case opLSU:
					if lsuTaken[st.core] == cycle {
						continue // port busy this cycle; try the next strand
					}
					lsuTaken[st.core] = cycle
					res.LSUBusy[st.core]++
					st.pc++
				case opMiss, opSerial:
					st.wakeCycle = cycle + int64(o.latency)
					st.pc++
				}
				issued = true
				res.IssueBusy[pipe]++
				s.rrIndex[pipe] = (s.rrIndex[pipe] + k + 1) % len(idxs)
				if int(st.pc) >= len(st.program.ops) {
					s.completePacket(st, cycle)
				}
			}
			if !issued {
				// Count strands that wanted the LSU but lost arbitration.
				for _, si := range idxs {
					st := &s.strands[si]
					if st.wakeCycle <= cycle && s.canWork(st, target) &&
						st.program.ops[st.pc].class == opLSU && lsuTaken[st.core] == cycle {
						res.LSUBlocked++
					}
				}
			}
		}
	}

	res.Cycles = cycle
	seconds := float64(cycle) / s.machine.ClockHz
	for g := 0; g < s.groups; g++ {
		for i := range s.strands {
			if st := &s.strands[i]; int(st.group) == g && st.stage == 2 {
				res.GroupPPS[g] = float64(st.packets) / seconds
			}
		}
		res.TotalPPS += res.GroupPPS[g]
	}
	return res, nil
}
