package cycle

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"optassign/internal/proc"
	"optassign/internal/t2"
)

// randomPlacements draws k distinct-context placements for n tasks.
func randomPlacements(rng *rand.Rand, topo t2.Topology, n, k int) [][]int {
	out := make([][]int, k)
	for i := range out {
		perm := rng.Perm(topo.Contexts())
		out[i] = perm[:n]
	}
	return out
}

// TestBatchSimMatchesPerAssignmentRuns is the batch differential gate:
// for random workloads and placement batches, BatchSim.Run must be
// bit-identical, placement by placement, to building a standalone Sim per
// placement — including the per-placement errors when MaxCycles aborts a
// run. Transitively (via TestRunMatchesReferenceRandomized) this pins the
// batch path to the reference polling loop too.
func TestBatchSimMatchesPerAssignmentRuns(t *testing.T) {
	small := *proc.UltraSPARCT2Machine()
	small.Topo = t2.Topology{Cores: 2, PipesPerCore: 2, ContextsPerPipe: 2}
	machines := []*proc.Machine{proc.UltraSPARCT2Machine(), &small}
	for mi, m := range machines {
		rng := rand.New(rand.NewSource(int64(97 + mi)))
		for trial := 0; trial < 12; trial++ {
			w := randomWorkload(rng, m)
			placements := randomPlacements(rng, m.Topo, len(w.tasks), 1+rng.Intn(24))
			bs, err := NewBatchSim(w.machine, w.tasks, w.links, w.cfg)
			if err != nil {
				t.Fatalf("NewBatchSim: %v", err)
			}
			results, errs := bs.Run(placements, w.packets)
			for i, placement := range placements {
				wi := w
				wi.placement = placement
				want, werr := wi.newSim(t).Run(w.packets)
				if fmt.Sprint(errs[i]) != fmt.Sprint(werr) {
					t.Fatalf("placement %d: error mismatch: batch %v vs solo %v", i, errs[i], werr)
				}
				if werr != nil {
					continue
				}
				if !reflect.DeepEqual(results[i], want) {
					t.Fatalf("placement %d: Result mismatch:\nbatch: %+v\nsolo:  %+v\nworkload: %+v", i, results[i], want, wi)
				}
			}
		}
	}
}

// TestBatchSimIsolatesBadPlacements: an invalid placement fails alone;
// its batchmates still get exact results.
func TestBatchSimIsolatesBadPlacements(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	tasks := mkTriple(heavyP())
	links := []proc.Link{{A: 0, B: 1, Volume: 1}, {A: 1, B: 2, Volume: 1}}
	topo := m.Topo
	good := []int{topo.Context(0, 1, 0), topo.Context(0, 0, 0), topo.Context(0, 1, 1)}
	dup := []int{0, 0, 1}               // duplicate context
	oob := []int{0, 1, topo.Contexts()} // out of range
	bs, err := NewBatchSim(m, tasks, links, Config{})
	if err != nil {
		t.Fatal(err)
	}
	results, errs := bs.Run([][]int{good, dup, oob, good}, 50)
	if errs[1] == nil || errs[2] == nil {
		t.Fatalf("invalid placements did not error: %v", errs)
	}
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid placements errored: %v", errs)
	}
	solo, err := New(m, tasks, links, good, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := solo.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 3} {
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("placement %d diverged next to failed batchmates", i)
		}
	}
}

// TestBatchSimEmptyBatch: a zero-placement batch is a no-op, not a panic.
func TestBatchSimEmptyBatch(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	bs, err := NewBatchSim(m, mkTriple(heavyP()), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if results, errs := bs.Run(nil, 10); results != nil || errs != nil {
		t.Fatalf("empty batch returned %v, %v", results, errs)
	}
}

// TestBatchSimAmortizesAllocations pins the arena design: the whole batch
// must average far fewer allocations per placement than one standalone
// New+Run (which costs dozens). The bound is loose — worker-count
// dependent fixed costs divided by the batch size — but fails immediately
// if someone reintroduces per-placement strand or rollup allocation.
func TestBatchSimAmortizesAllocations(t *testing.T) {
	m := proc.UltraSPARCT2Machine()
	tasks := mkTriple(heavyP())
	links := []proc.Link{{A: 0, B: 1, Volume: 1}, {A: 1, B: 2, Volume: 1}}
	topo := m.Topo
	const k = 64
	rng := rand.New(rand.NewSource(7))
	placements := randomPlacements(rng, topo, len(tasks), k)
	bs, err := NewBatchSim(m, tasks, links, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bs.Run(placements, 20) // warm one run so one-time growth is excluded
	allocs := testing.AllocsPerRun(3, func() {
		_, errs := bs.Run(placements, 20)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if perPlacement := allocs / k; perPlacement > 5 {
		t.Fatalf("batch Run averages %.1f allocs per placement (%.0f total for %d), want amortized <= 5",
			perPlacement, allocs, k)
	}
}

// BenchmarkBatchSim compares batched evaluation against per-assignment
// construction+run over the same placement set.
func BenchmarkBatchSim(b *testing.B) {
	m := proc.UltraSPARCT2Machine()
	tasks := mkTriple(heavyP())
	links := []proc.Link{{A: 0, B: 1, Volume: 1}, {A: 1, B: 2, Volume: 1}}
	topo := m.Topo
	const k = 32
	rng := rand.New(rand.NewSource(11))
	placements := randomPlacements(rng, topo, len(tasks), k)
	b.Run("batched", func(b *testing.B) {
		bs, err := NewBatchSim(m, tasks, links, Config{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, errs := bs.Run(placements, 100); errs[0] != nil {
				b.Fatal(errs[0])
			}
		}
	})
	b.Run("per-assignment", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range placements {
				s, err := New(m, tasks, links, p, Config{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Run(100); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
