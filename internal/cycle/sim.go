// Package cycle is a cycle-approximate simulator of a fine-grained
// multithreaded processor in the UltraSPARC T2 style: every hardware
// pipeline issues at most one instruction per cycle, round-robin among its
// ready strands; every core has a single load/store port; cache misses and
// long-latency private operations park a strand without consuming issue
// slots (latency hiding — the very mechanism that makes MMT processors
// throughput machines).
//
// It is the third, lowest-level measurement path of the repository (next to
// netdps.MeasureAnalytic and netdps.MeasureEngine): instead of charging
// contention through utilization curves, contention *emerges* from slot and
// port arbitration. The cross-validation tests check that the emergent
// behaviour agrees qualitatively with the analytic model — same winners,
// same bottlenecks — which grounds the calibrated curves used by the mass
// experiments.
package cycle

import (
	"fmt"
	"math"

	"optassign/internal/proc"
	"optassign/internal/t2"
)

// opClass is the kind of work a strand performs next.
type opClass uint8

const (
	opIssue  opClass = iota // occupies the pipe's issue slot for one cycle
	opLSU                   // issue slot + the core's load/store port
	opMiss                  // parks the strand for a memory latency
	opSerial                // parks the strand in a private long-latency unit
)

// op is one unit of strand work.
type op struct {
	class   opClass
	latency int32 // park duration for opMiss/opSerial
}

// packetProgram is the per-packet op sequence of one task, derived from its
// demand vector. The same packet program repeats for every packet.
type packetProgram struct {
	ops []op
}

// missChunk splits aggregate miss latency into chunks of this many cycles
// so misses interleave with computation instead of forming one mega-stall.
const missChunk = 40

// buildProgram converts a demand vector into an op stream with the same
// aggregate resource occupancy:
//
//	IFU+IEU cycles   → that many issue ops
//	LSU cycles       → that many LSU ops
//	cache/mem cycles → miss ops totalling that latency
//	Serial cycles    → serial ops totalling that latency
func buildProgram(d proc.Demand) packetProgram {
	issue := int(math.Round(d.Res[proc.IFU] + d.Res[proc.IEU]))
	lsu := int(math.Round(d.Res[proc.LSU]))
	missTotal := int(math.Round(d.Res[proc.L1I] + d.Res[proc.L1D] + d.Res[proc.TLB] +
		d.Res[proc.L2] + d.Res[proc.MEM] + d.Res[proc.XBAR] + d.Res[proc.FPU] + d.Res[proc.CRY]))
	serial := int(math.Round(d.Serial))

	var ops []op
	// Interleave the op classes so the stream is representative: compute
	// the total "tokens" and emit round-robin proportionally.
	misses := 0
	if missTotal > 0 {
		misses = (missTotal + missChunk - 1) / missChunk
	}
	total := issue + lsu + misses
	if total == 0 && serial == 0 {
		ops = append(ops, op{class: opIssue})
		return packetProgram{ops: ops}
	}
	remIssue, remLSU, remMissLat := issue, lsu, missTotal
	for remIssue > 0 || remLSU > 0 || remMissLat > 0 {
		if remIssue > 0 {
			n := remIssue / max(1, misses+1)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n && remIssue > 0; i++ {
				ops = append(ops, op{class: opIssue})
				remIssue--
			}
		}
		if remLSU > 0 {
			n := remLSU / max(1, misses+1)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n && remLSU > 0; i++ {
				ops = append(ops, op{class: opLSU})
				remLSU--
			}
		}
		if remMissLat > 0 {
			lat := missChunk
			if remMissLat < lat {
				lat = remMissLat
			}
			ops = append(ops, op{class: opMiss, latency: int32(lat)})
			remMissLat -= lat
		}
	}
	if serial > 0 {
		// One private long-latency region per packet (e.g. the intmul
		// multiplier), placed mid-stream.
		mid := len(ops) / 2
		ops = append(ops[:mid:mid], append([]op{{class: opSerial, latency: int32(serial)}}, ops[mid:]...)...)
	}
	return packetProgram{ops: ops}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// strand is one hardware context with a bound task.
type strand struct {
	task      int
	pipe      int
	core      int
	program   packetProgram
	pc        int   // index into program.ops for the current packet
	wakeCycle int64 // strand parked until this cycle
	// Pipeline-stage coupling.
	group, stage int
	commLatency  int32 // added park when taking a packet from the queue
	packets      int64 // packets completed
}

// Config tunes the simulation.
type Config struct {
	// QueueDepth is the R→P / P→T memory queue capacity.
	QueueDepth int
	// MaxCycles aborts runaway simulations (0 = no bound).
	MaxCycles int64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Result reports a finished simulation.
type Result struct {
	Cycles     int64
	TotalPPS   float64
	GroupPPS   []float64
	IssueBusy  []int64 // per pipe: cycles the issue slot was used
	LSUBusy    []int64 // per core: cycles the LSU port was used
	LSUBlocked int64   // strand-cycles lost waiting for a busy LSU port
}

// Sim is a configured simulation instance.
type Sim struct {
	machine *proc.Machine
	cfg     Config
	strands []*strand
	byPipe  [][]*strand
	rrIndex []int
	groups  int
	// queue occupancy per (group, boundary): boundary 0 = R→P, 1 = P→T.
	queues [][2]int
}

// New builds a simulator for tasks placed per placement (context index per
// task). Tasks with the same Group form an R→P→T pipeline in index order,
// exactly like netdps testbeds lay them out; links (same shape as
// proc.Link) determine communication latency by placement distance.
func New(machine *proc.Machine, tasks []proc.Task, links []proc.Link, placement []int, cfg Config) (*Sim, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("cycle: no tasks")
	}
	if len(placement) != len(tasks) {
		return nil, fmt.Errorf("cycle: %d tasks, %d placements", len(tasks), len(placement))
	}
	topo := machine.Topo
	seen := make(map[int]bool)
	groups := 0
	stageOf := make(map[int]int)
	s := &Sim{machine: machine, cfg: cfg.withDefaults()}
	for i, task := range tasks {
		ctx := placement[i]
		if ctx < 0 || ctx >= topo.Contexts() || seen[ctx] {
			return nil, fmt.Errorf("cycle: invalid or duplicate context %d", ctx)
		}
		seen[ctx] = true
		if task.Group >= groups {
			groups = task.Group + 1
		}
		st := &strand{
			task:    i,
			pipe:    topo.PipeOf(ctx),
			core:    topo.CoreOf(ctx),
			program: buildProgram(task.Demand),
			group:   task.Group,
			stage:   stageOf[task.Group],
		}
		stageOf[task.Group]++
		s.strands = append(s.strands, st)
	}
	for g, n := range stageOf {
		if n != 3 {
			return nil, fmt.Errorf("cycle: group %d has %d tasks, need exactly 3 (R, P, T)", g, n)
		}
	}
	s.groups = groups
	s.queues = make([][2]int, groups)

	// Communication latency per consuming strand (P pays for R→P, T for
	// P→T), by placement distance.
	for _, l := range links {
		if l.A < 0 || l.A >= len(tasks) || l.B < 0 || l.B >= len(tasks) {
			return nil, fmt.Errorf("cycle: link %v references unknown task", l)
		}
		var lat float64
		if topo.ShareLevel(placement[l.A], placement[l.B]) == t2.InterCore {
			lat = machine.RemoteCommL2 + machine.RemoteCommXBar
		} else {
			lat = machine.LocalCommL1
		}
		s.strands[l.B].commLatency += int32(lat)
	}

	s.byPipe = make([][]*strand, topo.Pipes())
	for _, st := range s.strands {
		s.byPipe[st.pipe] = append(s.byPipe[st.pipe], st)
	}
	s.rrIndex = make([]int, topo.Pipes())
	return s, nil
}

// Run simulates until every pipeline instance has transmitted `packets`
// packets and returns throughput measured in simulated time.
func (s *Sim) Run(packets int) (Result, error) {
	if packets < 1 {
		return Result{}, fmt.Errorf("cycle: need at least one packet")
	}
	topo := s.machine.Topo
	res := Result{
		IssueBusy: make([]int64, topo.Pipes()),
		LSUBusy:   make([]int64, topo.Cores),
		GroupPPS:  make([]float64, s.groups),
	}
	target := int64(packets)
	lsuTaken := make([]int64, topo.Cores) // cycle number when last used
	var cycle int64

	done := func() bool {
		for _, st := range s.strands {
			if st.stage == 2 && st.packets < target {
				return false
			}
		}
		return true
	}

	for !done() {
		cycle++
		if s.cfg.MaxCycles > 0 && cycle > s.cfg.MaxCycles {
			return Result{}, fmt.Errorf("cycle: exceeded %d cycles", s.cfg.MaxCycles)
		}
		for pipe := range s.byPipe {
			strands := s.byPipe[pipe]
			if len(strands) == 0 {
				continue
			}
			// Round-robin: try each strand starting after the last issuer.
			issued := false
			for k := 0; k < len(strands) && !issued; k++ {
				st := strands[(s.rrIndex[pipe]+k)%len(strands)]
				if st.wakeCycle > cycle {
					continue // parked
				}
				if !s.canWork(st, target) {
					continue // blocked on queues or finished
				}
				o := st.program.ops[st.pc]
				switch o.class {
				case opIssue:
					st.pc++
				case opLSU:
					if lsuTaken[st.core] == cycle {
						continue // port busy this cycle; try the next strand
					}
					lsuTaken[st.core] = cycle
					res.LSUBusy[st.core]++
					st.pc++
				case opMiss, opSerial:
					st.wakeCycle = cycle + int64(o.latency)
					st.pc++
				}
				issued = true
				res.IssueBusy[pipe]++
				s.rrIndex[pipe] = (s.rrIndex[pipe] + k + 1) % len(strands)
				if st.pc >= len(st.program.ops) {
					s.completePacket(st, cycle)
				}
			}
			if !issued {
				// Count strands that wanted the LSU but lost arbitration.
				for _, st := range strands {
					if st.wakeCycle <= cycle && s.canWork(st, target) &&
						st.program.ops[st.pc].class == opLSU && lsuTaken[st.core] == cycle {
						res.LSUBlocked++
					}
				}
			}
		}
	}

	res.Cycles = cycle
	seconds := float64(cycle) / s.machine.ClockHz
	for g := 0; g < s.groups; g++ {
		for _, st := range s.strands {
			if st.group == g && st.stage == 2 {
				res.GroupPPS[g] = float64(st.packets) / seconds
			}
		}
		res.TotalPPS += res.GroupPPS[g]
	}
	return res, nil
}

// canWork reports whether the strand may make progress on its current
// packet: the upstream queue must have data (P, T) and the downstream queue
// must have room (R, P). A strand beginning a new packet pays its
// communication latency implicitly through the queue structure.
func (s *Sim) canWork(st *strand, target int64) bool {
	q := &s.queues[st.group]
	switch st.stage {
	case 0: // R: source is the saturating NIU; needs room in R→P.
		if st.packets >= target+int64(s.cfg.QueueDepth) {
			return false // produced far enough ahead
		}
		return q[0] < s.cfg.QueueDepth
	case 1: // P: needs input and room in P→T.
		return q[0] > 0 && q[1] < s.cfg.QueueDepth
	default: // T: needs input.
		return q[1] > 0
	}
}

// completePacket finishes the strand's current packet: move a token across
// the queues and start the next packet (with communication latency for
// consumers).
func (s *Sim) completePacket(st *strand, cycle int64) {
	q := &s.queues[st.group]
	switch st.stage {
	case 0:
		q[0]++
	case 1:
		q[0]--
		q[1]++
	default:
		q[1]--
	}
	st.packets++
	st.pc = 0
	if st.stage > 0 && st.commLatency > 0 {
		st.wakeCycle = cycle + int64(st.commLatency)
	}
}
