// Package cycle is a cycle-approximate simulator of a fine-grained
// multithreaded processor in the UltraSPARC T2 style: every hardware
// pipeline issues at most one instruction per cycle, round-robin among its
// ready strands; every core has a single load/store port; cache misses and
// long-latency private operations park a strand without consuming issue
// slots (latency hiding — the very mechanism that makes MMT processors
// throughput machines).
//
// It is the third, lowest-level measurement path of the repository (next to
// netdps.MeasureAnalytic and netdps.MeasureEngine): instead of charging
// contention through utilization curves, contention *emerges* from slot and
// port arbitration. The cross-validation tests check that the emergent
// behaviour agrees qualitatively with the analytic model — same winners,
// same bottlenecks — which grounds the calibrated curves used by the mass
// experiments.
//
// Run is event-driven: parked strands live in a wake-time min-heap instead
// of being polled every cycle, pipes with no awake strand are skipped, and
// globally idle stretches are jumped over in one step. reference.go keeps
// the original cycle-by-cycle polling loop as the executable specification;
// the differential tests prove both produce identical Results.
package cycle

import (
	"fmt"
	"math"

	"optassign/internal/proc"
	"optassign/internal/t2"
)

// opClass is the kind of work a strand performs next.
type opClass uint8

const (
	opIssue  opClass = iota // occupies the pipe's issue slot for one cycle
	opLSU                   // issue slot + the core's load/store port
	opMiss                  // parks the strand for a memory latency
	opSerial                // parks the strand in a private long-latency unit
)

// op is one unit of strand work.
type op struct {
	class   opClass
	latency int32 // park duration for opMiss/opSerial
}

// packetProgram is the per-packet op sequence of one task, derived from its
// demand vector. The same packet program repeats for every packet; strands
// with identical demand share one read-only program.
type packetProgram struct {
	ops []op
}

// missChunk splits aggregate miss latency into chunks of this many cycles
// so misses interleave with computation instead of forming one mega-stall.
const missChunk = 40

// buildProgram converts a demand vector into an op stream with the same
// aggregate resource occupancy:
//
//	IFU+IEU cycles   → that many issue ops
//	LSU cycles       → that many LSU ops
//	cache/mem cycles → miss ops totalling that latency
//	Serial cycles    → serial ops totalling that latency
//
// The op count is known up front, so the stream is built in one exactly
// sized allocation (the serial op is spliced in place within capacity).
func buildProgram(d proc.Demand) packetProgram {
	issue := int(math.Round(d.Res[proc.IFU] + d.Res[proc.IEU]))
	lsu := int(math.Round(d.Res[proc.LSU]))
	missTotal := int(math.Round(d.Res[proc.L1I] + d.Res[proc.L1D] + d.Res[proc.TLB] +
		d.Res[proc.L2] + d.Res[proc.MEM] + d.Res[proc.XBAR] + d.Res[proc.FPU] + d.Res[proc.CRY]))
	serial := int(math.Round(d.Serial))

	// Interleave the op classes so the stream is representative: compute
	// the total "tokens" and emit round-robin proportionally.
	misses := 0
	if missTotal > 0 {
		misses = (missTotal + missChunk - 1) / missChunk
	}
	total := issue + lsu + misses
	if total == 0 && serial == 0 {
		return packetProgram{ops: []op{{class: opIssue}}}
	}
	size := total
	if serial > 0 {
		size++
	}
	ops := make([]op, 0, size)
	remIssue, remLSU, remMissLat := issue, lsu, missTotal
	for remIssue > 0 || remLSU > 0 || remMissLat > 0 {
		if remIssue > 0 {
			n := remIssue / max(1, misses+1)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n && remIssue > 0; i++ {
				ops = append(ops, op{class: opIssue})
				remIssue--
			}
		}
		if remLSU > 0 {
			n := remLSU / max(1, misses+1)
			if n < 1 {
				n = 1
			}
			for i := 0; i < n && remLSU > 0; i++ {
				ops = append(ops, op{class: opLSU})
				remLSU--
			}
		}
		if remMissLat > 0 {
			lat := missChunk
			if remMissLat < lat {
				lat = remMissLat
			}
			ops = append(ops, op{class: opMiss, latency: int32(lat)})
			remMissLat -= lat
		}
	}
	if serial > 0 {
		// One private long-latency region per packet (e.g. the intmul
		// multiplier), placed mid-stream. Splice within capacity.
		mid := len(ops) / 2
		ops = append(ops, op{})
		copy(ops[mid+1:], ops[mid:len(ops)-1])
		ops[mid] = op{class: opSerial, latency: int32(serial)}
	}
	return packetProgram{ops: ops}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// strand is one hardware context with a bound task. Strands are stored by
// value in one flat slice — the hot loop walks them without pointer
// chasing.
type strand struct {
	pipe, core int32
	// Pipeline-stage coupling.
	group, stage int32
	pc           int32 // index into program.ops for the current packet
	commLatency  int32 // added park when taking a packet from the queue
	wakeCycle    int64 // strand parked until this cycle
	packets      int64 // packets completed
	program      packetProgram
}

// Config tunes the simulation.
type Config struct {
	// QueueDepth is the R→P / P→T memory queue capacity.
	QueueDepth int
	// MaxCycles aborts runaway simulations (0 = no bound).
	MaxCycles int64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	return c
}

// Result reports a finished simulation.
type Result struct {
	Cycles     int64
	TotalPPS   float64
	GroupPPS   []float64
	IssueBusy  []int64 // per pipe: cycles the issue slot was used
	LSUBusy    []int64 // per core: cycles the LSU port was used
	LSUBlocked int64   // strand-cycles lost waiting for a busy LSU port
}

// Sim is a configured simulation instance.
type Sim struct {
	machine *proc.Machine
	cfg     Config
	strands []strand
	byPipe  [][]int32 // strand indices per global pipe
	occ     []int32   // pipes with at least one strand, ascending
	rrIndex []int
	groups  int
	// txByGroup indexes each group's stage-2 (T) strand, -1 for a group
	// with no tasks. Completion tracking and the PPS rollup both use it
	// instead of rescanning every strand.
	txByGroup []int32
	// queue occupancy per (group, boundary): boundary 0 = R→P, 1 = P→T.
	queues [][2]int
	// stageOf is init's per-group task counter, kept on the Sim so a
	// reused instance (the batch path re-inits one Sim per placement)
	// allocates it once.
	stageOf []int32
}

// New builds a simulator for tasks placed per placement (context index per
// task). Tasks with the same Group form an R→P→T pipeline in index order,
// exactly like netdps testbeds lay them out; links (same shape as
// proc.Link) determine communication latency by placement distance.
func New(machine *proc.Machine, tasks []proc.Task, links []proc.Link, placement []int, cfg Config) (*Sim, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{}
	if err := s.init(machine, tasks, links, placement, cfg, nil, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// init (re)builds s for one placement, reusing every buffer s already
// holds. progs, when non-nil, is a per-task program slice shared across
// placements (the batch path computes it once per batch); seen, when
// non-nil, is a caller-owned duplicate-context scratch of length
// topo.Contexts(). The machine itself must already be validated by the
// caller — everything placement-dependent is validated here.
func (s *Sim) init(machine *proc.Machine, tasks []proc.Task, links []proc.Link, placement []int, cfg Config, progs []packetProgram, seen []bool) error {
	if len(tasks) == 0 {
		return fmt.Errorf("cycle: no tasks")
	}
	if len(placement) != len(tasks) {
		return fmt.Errorf("cycle: %d tasks, %d placements", len(tasks), len(placement))
	}
	topo := machine.Topo
	if seen == nil {
		seen = make([]bool, topo.Contexts())
	} else {
		clear(seen)
	}
	s.machine = machine
	s.cfg = cfg.withDefaults()
	s.strands = s.strands[:0]
	groups := 0
	var progByDemand map[proc.Demand]packetProgram
	if progs == nil {
		progByDemand = make(map[proc.Demand]packetProgram) // tasks sharing a demand share a program
	}
	// stageOf counts tasks per group; grown on demand so group numbering
	// needs no first pass.
	stageOf := s.stageOf[:0]
	for i, task := range tasks {
		ctx := placement[i]
		if ctx < 0 || ctx >= topo.Contexts() || seen[ctx] {
			return fmt.Errorf("cycle: invalid or duplicate context %d", ctx)
		}
		seen[ctx] = true
		if task.Group < 0 {
			return fmt.Errorf("cycle: task %d has negative group %d", i, task.Group)
		}
		if task.Group >= groups {
			groups = task.Group + 1
		}
		for len(stageOf) < groups {
			stageOf = append(stageOf, 0)
		}
		var prog packetProgram
		if progs != nil {
			prog = progs[i]
		} else {
			var ok bool
			prog, ok = progByDemand[task.Demand]
			if !ok {
				prog = buildProgram(task.Demand)
				progByDemand[task.Demand] = prog
			}
		}
		s.strands = append(s.strands, strand{
			pipe:    int32(topo.PipeOf(ctx)),
			core:    int32(topo.CoreOf(ctx)),
			program: prog,
			group:   int32(task.Group),
			stage:   stageOf[task.Group],
		})
		stageOf[task.Group]++
	}
	s.stageOf = stageOf
	for g, n := range stageOf {
		// Group numbers may be sparse; a group with no tasks at all is
		// fine (its GroupPPS stays 0), a partial pipeline is not.
		if n != 0 && n != 3 {
			return fmt.Errorf("cycle: group %d has %d tasks, need exactly 3 (R, P, T)", g, n)
		}
	}
	s.groups = groups
	if cap(s.queues) < groups {
		s.queues = make([][2]int, groups)
	} else {
		s.queues = s.queues[:groups]
		clear(s.queues)
	}
	s.txByGroup = s.txByGroup[:0]
	for g := 0; g < groups; g++ {
		s.txByGroup = append(s.txByGroup, -1)
	}
	for i := range s.strands {
		if st := &s.strands[i]; st.stage == 2 {
			s.txByGroup[st.group] = int32(i)
		}
	}

	// Communication latency per consuming strand (P pays for R→P, T for
	// P→T), by placement distance.
	for _, l := range links {
		if l.A < 0 || l.A >= len(tasks) || l.B < 0 || l.B >= len(tasks) {
			return fmt.Errorf("cycle: link %v references unknown task", l)
		}
		var lat float64
		if topo.ShareLevel(placement[l.A], placement[l.B]) == t2.InterCore {
			lat = machine.RemoteCommL2 + machine.RemoteCommXBar
		} else {
			lat = machine.LocalCommL1
		}
		s.strands[l.B].commLatency += int32(lat)
	}

	if len(s.byPipe) == topo.Pipes() {
		for p := range s.byPipe {
			s.byPipe[p] = s.byPipe[p][:0]
		}
	} else {
		s.byPipe = make([][]int32, topo.Pipes())
	}
	for i := range s.strands {
		p := s.strands[i].pipe
		s.byPipe[p] = append(s.byPipe[p], int32(i))
	}
	s.occ = s.occ[:0]
	for p := range s.byPipe {
		if len(s.byPipe[p]) > 0 {
			s.occ = append(s.occ, int32(p))
		}
	}
	if cap(s.rrIndex) < topo.Pipes() {
		s.rrIndex = make([]int, topo.Pipes())
	} else {
		s.rrIndex = s.rrIndex[:topo.Pipes()]
		clear(s.rrIndex)
	}
	return nil
}

// wakeEvent is one parked strand in the wake-time min-heap.
type wakeEvent struct {
	cycle int64
	idx   int32
}

// shortParkLimit splits parks into two regimes. A strand parked for more
// than this many cycles (serial regions, accumulated communication
// latency) leaves the per-cycle scan entirely: its pipe's awake count
// drops and the wake-time min-heap re-admits it at the right cycle, so a
// long park costs O(log strands) total instead of one poll per cycle. A
// short park (a miss chunk, a queue handoff) stays in the scan and costs
// one comparison per cycle, which is cheaper than heap churn at this
// length. The idle-jump does not depend on the split: when no strand
// issues machine-wide, the next wake is found by scanning all strands, so
// frozen stretches are skipped in one step either way.
const shortParkLimit = 64

// wakePush adds an event to the min-heap.
func wakePush(h *[]wakeEvent, e wakeEvent) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent].cycle <= s[i].cycle {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// wakePop removes the earliest event. The caller checks len > 0.
func wakePop(h *[]wakeEvent) wakeEvent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].cycle < s[small].cycle {
			small = l
		}
		if r < n && s[r].cycle < s[small].cycle {
			small = r
		}
		if small == i {
			break
		}
		s[small], s[i] = s[i], s[small]
		i = small
	}
	*h = s
	return top
}

// Scratch holds every buffer a simulation run needs — the wake-time heap,
// per-pipe awake counts, the LSU arbitration table and the Result's rollup
// slices. A zero Scratch is ready to use; reusing one across RunScratch
// calls (as the batch path and netdps.MeasureCycle do) makes repeat runs
// allocation-free.
type Scratch struct {
	heap      []wakeEvent
	awake     []int32
	lsuTaken  []int64
	issueBusy []int64
	lsuBusy   []int64
	groupPPS  []float64
}

// grow returns buf resized to n with every element zeroed, reusing its
// backing array when capacity allows.
func grow[T int64 | int32 | float64](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// Run simulates until every pipeline instance has transmitted `packets`
// packets and returns throughput measured in simulated time. The returned
// Result owns its slices.
func (s *Sim) Run(packets int) (Result, error) {
	return s.RunScratch(packets, &Scratch{})
}

// RunScratch is Run with caller-owned buffers: the returned Result's
// slices ALIAS sc and are overwritten by the next RunScratch call on the
// same Scratch. Callers that keep results across runs must copy them.
//
// The loop is event-driven but cycle-for-cycle identical to runReference
// (the original polling loop, kept in reference.go): parked strands sit in
// a wake-time min-heap and per-pipe awake counts let idle pipes be
// skipped; a cycle in which no strand issues anywhere freezes queues,
// programs and round-robin cursors, so the clock jumps straight to the
// next wake event instead of replaying no-op cycles one by one.
func (s *Sim) RunScratch(packets int, sc *Scratch) (Result, error) {
	if packets < 1 {
		return Result{}, fmt.Errorf("cycle: need at least one packet")
	}
	topo := s.machine.Topo
	sc.issueBusy = grow(sc.issueBusy, topo.Pipes())
	sc.lsuBusy = grow(sc.lsuBusy, topo.Cores)
	sc.groupPPS = grow(sc.groupPPS, s.groups)
	res := Result{
		IssueBusy: sc.issueBusy,
		LSUBusy:   sc.lsuBusy,
		GroupPPS:  sc.groupPPS,
	}
	target := int64(packets)
	sc.lsuTaken = grow(sc.lsuTaken, topo.Cores)
	lsuTaken := sc.lsuTaken // cycle number when last used
	var cycle int64

	// O(1) completion tracking: remaining counts groups whose T strand has
	// not yet transmitted `target` packets (the old loop rescanned every
	// strand per cycle).
	remaining := 0
	for _, ti := range s.txByGroup {
		if ti >= 0 && s.strands[ti].packets < target {
			remaining++
		}
	}

	if cap(sc.heap) < len(s.strands) {
		sc.heap = make([]wakeEvent, 0, len(s.strands))
	}
	heap := sc.heap[:0]
	sc.awake = grow(sc.awake, topo.Pipes())
	awake := sc.awake // strands not long-parked, per pipe
	for i := range s.strands {
		st := &s.strands[i]
		if st.wakeCycle-cycle > shortParkLimit {
			wakePush(&heap, wakeEvent{st.wakeCycle, int32(i)})
		} else {
			awake[st.pipe]++
		}
	}

	for remaining > 0 {
		cycle++
		if s.cfg.MaxCycles > 0 && cycle > s.cfg.MaxCycles {
			sc.heap = heap[:0]
			return Result{}, fmt.Errorf("cycle: exceeded %d cycles", s.cfg.MaxCycles)
		}
		for len(heap) > 0 && heap[0].cycle <= cycle {
			e := wakePop(&heap)
			awake[s.strands[e.idx].pipe]++
		}
		anyIssued := false
		for _, pipe := range s.occ {
			if awake[pipe] == 0 {
				continue // every strand of this pipe is parked
			}
			idxs := s.byPipe[pipe]
			// Round-robin: try each strand starting after the last issuer.
			issued := false
			blocked := 0
			n := len(idxs)
			for k := 0; k < n && !issued; k++ {
				j := s.rrIndex[pipe] + k
				if j >= n {
					j -= n
				}
				si := idxs[j]
				st := &s.strands[si]
				if st.wakeCycle > cycle {
					continue // parked
				}
				if !s.canWork(st, target) {
					continue // blocked on queues or finished
				}
				o := st.program.ops[st.pc]
				switch o.class {
				case opIssue:
					st.pc++
				case opLSU:
					if lsuTaken[st.core] == cycle {
						blocked++ // port busy this cycle; try the next strand
						continue
					}
					lsuTaken[st.core] = cycle
					res.LSUBusy[st.core]++
					st.pc++
				case opMiss, opSerial:
					st.wakeCycle = cycle + int64(o.latency)
					st.pc++
				}
				issued = true
				res.IssueBusy[pipe]++
				if j++; j >= n {
					j = 0
				}
				s.rrIndex[pipe] = j
				if int(st.pc) >= len(st.program.ops) {
					if s.completePacket(st, cycle) && st.packets == target {
						remaining--
					}
				}
				if st.wakeCycle-cycle > shortParkLimit {
					// Long park (serial region, accumulated communication
					// latency): the strand leaves the per-cycle scan and the
					// heap re-admits it at its wake cycle. Short parks stay
					// in the scan — see shortParkLimit.
					awake[pipe]--
					wakePush(&heap, wakeEvent{st.wakeCycle, si})
				}
			}
			if issued {
				anyIssued = true
			} else {
				// Strands that wanted the LSU but lost arbitration. When no
				// strand issues the scan above visited every strand exactly
				// once, so it already counted them — the reference loop's
				// second pass re-evaluated the same predicates verbatim.
				res.LSUBlocked += int64(blocked)
			}
		}
		if !anyIssued {
			// Globally idle: no issue means no queue, program or cursor
			// change, so every cycle until the earliest wake replays this
			// one. Short-parked strands are not in the heap, so find that
			// wake by scanning every strand — once per idle stretch, not per
			// cycle — and jump the clock there in a single step.
			next := int64(math.MaxInt64)
			for i := range s.strands {
				if w := s.strands[i].wakeCycle; w > cycle && w < next {
					next = w
				}
			}
			if next != math.MaxInt64 && next > cycle+1 {
				if s.cfg.MaxCycles > 0 && next > s.cfg.MaxCycles+1 {
					// The polling loop would idle up to MaxCycles+1 and
					// abort before any strand wakes.
					sc.heap = heap[:0]
					return Result{}, fmt.Errorf("cycle: exceeded %d cycles", s.cfg.MaxCycles)
				}
				cycle = next - 1
			}
		}
	}

	sc.heap = heap[:0] // keep any capacity append growth gave the heap
	res.Cycles = cycle
	seconds := float64(cycle) / s.machine.ClockHz
	for g, ti := range s.txByGroup {
		if ti < 0 {
			continue // group without tasks: GroupPPS stays 0
		}
		res.GroupPPS[g] = float64(s.strands[ti].packets) / seconds
		res.TotalPPS += res.GroupPPS[g]
	}
	return res, nil
}

// canWork reports whether the strand may make progress on its current
// packet: the upstream queue must have data (P, T) and the downstream queue
// must have room (R, P). A strand beginning a new packet pays its
// communication latency implicitly through the queue structure.
func (s *Sim) canWork(st *strand, target int64) bool {
	q := &s.queues[st.group]
	switch st.stage {
	case 0: // R: source is the saturating NIU; needs room in R→P.
		if st.packets >= target+int64(s.cfg.QueueDepth) {
			return false // produced far enough ahead
		}
		return q[0] < s.cfg.QueueDepth
	case 1: // P: needs input and room in P→T.
		return q[0] > 0 && q[1] < s.cfg.QueueDepth
	default: // T: needs input.
		return q[1] > 0
	}
}

// completePacket finishes the strand's current packet: move a token across
// the queues and start the next packet (with communication latency for
// consumers). It reports whether the strand is a transmitter (stage 2),
// so Run can maintain its completion counter.
func (s *Sim) completePacket(st *strand, cycle int64) bool {
	q := &s.queues[st.group]
	switch st.stage {
	case 0:
		q[0]++
	case 1:
		q[0]--
		q[1]++
	default:
		q[1]--
	}
	st.packets++
	st.pc = 0
	if st.stage > 0 && st.commLatency > 0 {
		st.wakeCycle = cycle + int64(st.commLatency)
	}
	return st.stage == 2
}
