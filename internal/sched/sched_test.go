package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"optassign/internal/t2"
)

func TestNaiveProducesValidAssignments(t *testing.T) {
	topo := t2.UltraSPARCT2()
	n := Naive{Rng: rand.New(rand.NewSource(1))}
	if n.Name() == "" {
		t.Error("empty name")
	}
	for i := 0; i < 50; i++ {
		a, err := n.Assign(topo, 24)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Nil RNG falls back to a default source.
	if _, err := (Naive{}).Assign(topo, 3); err != nil {
		t.Fatal(err)
	}
}

func TestLinuxLikeBalances(t *testing.T) {
	topo := t2.UltraSPARCT2()
	l := LinuxLike{}
	if l.Name() == "" {
		t.Error("empty name")
	}
	a, err := l.Assign(topo, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// 24 tasks on 8 cores: exactly 3 per core; pipes within a core differ
	// by at most one.
	byCore := a.TasksByCore()
	if len(byCore) != 8 {
		t.Fatalf("cores used = %d, want 8", len(byCore))
	}
	for core, ts := range byCore {
		if len(ts) != 3 {
			t.Errorf("core %d has %d tasks, want 3", core, len(ts))
		}
	}
	byPipe := a.TasksByPipe()
	for pipe, ts := range byPipe {
		if len(ts) > 2 {
			t.Errorf("pipe %d has %d tasks, want <= 2", pipe, len(ts))
		}
	}
}

func TestLinuxLikeSmallWorkloadSpreads(t *testing.T) {
	topo := t2.UltraSPARCT2()
	a, err := LinuxLike{}.Assign(topo, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 6 tasks across 8 cores: all on distinct cores.
	if got := len(a.TasksByCore()); got != 6 {
		t.Errorf("cores used = %d, want 6", got)
	}
}

func TestLinuxLikeDeterministic(t *testing.T) {
	topo := t2.UltraSPARCT2()
	a, _ := LinuxLike{}.Assign(topo, 17)
	b, _ := LinuxLike{}.Assign(topo, 17)
	for i := range a.Ctx {
		if a.Ctx[i] != b.Ctx[i] {
			t.Fatal("Linux-like not deterministic")
		}
	}
}

func TestLinuxLikeFullMachine(t *testing.T) {
	topo := t2.UltraSPARCT2()
	a, err := LinuxLike{}.Assign(topo, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerErrors(t *testing.T) {
	topo := t2.UltraSPARCT2()
	if _, err := (LinuxLike{}).Assign(topo, 0); err == nil {
		t.Error("0 tasks accepted")
	}
	if _, err := (LinuxLike{}).Assign(topo, 65); err == nil {
		t.Error("overfull accepted")
	}
	if _, err := (LinuxLike{}).Assign(t2.Topology{}, 1); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestLinuxLikeBalancePropertyAllSizes(t *testing.T) {
	topo := t2.UltraSPARCT2()
	f := func(raw uint8) bool {
		tasks := 1 + int(raw)%64
		a, err := LinuxLike{}.Assign(topo, tasks)
		if err != nil || a.Validate() != nil {
			return false
		}
		// Core loads differ by at most one.
		byCore := a.TasksByCore()
		minL, maxL := 64, 0
		for c := 0; c < topo.Cores; c++ {
			l := len(byCore[c])
			if l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		return maxL-minL <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}
