package sched

import (
	"fmt"
	"sort"

	"optassign/internal/assign"
	"optassign/internal/proc"
)

// GreedyDemand is a demand-aware heuristic in the spirit of the
// profile-driven assignment algorithms the paper surveys (El-Moursy et al.,
// McGregor et al., §6): it knows each task's resource demand vector and the
// pipeline communication structure, sorts tasks by their dominant demand
// and places each one on the free hardware context that minimizes the
// predicted marginal contention, preferring to keep communicating threads
// inside one core.
//
// Unlike the statistical method it cannot say how far from optimal its
// answer is — that is precisely the gap the paper's estimator fills.
type GreedyDemand struct {
	Machine *proc.Machine
	Tasks   []proc.Task
	Links   []proc.Link
}

// Name implements a Scheduler-style identity.
func (GreedyDemand) Name() string { return "Greedy-demand" }

// Assign places the workload. The topology is taken from the machine.
func (g GreedyDemand) Assign() (assign.Assignment, error) {
	if g.Machine == nil {
		return assign.Assignment{}, fmt.Errorf("sched: greedy needs a machine model")
	}
	topo := g.Machine.Topo
	if err := topo.Validate(); err != nil {
		return assign.Assignment{}, err
	}
	n := len(g.Tasks)
	if n < 1 || n > topo.Contexts() {
		return assign.Assignment{}, fmt.Errorf("sched: %d tasks do not fit %s", n, topo)
	}

	// Uncontended rates approximate each task's activity level.
	rate := make([]float64, n)
	for i, t := range g.Tasks {
		base := t.Demand.Base()
		if base <= 0 {
			return assign.Assignment{}, fmt.Errorf("sched: task %d has non-positive demand", i)
		}
		rate[i] = 1 / base
	}

	// Process the heaviest IEU consumers first: they are the hardest to
	// place well.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.Tasks[order[a]].Demand.Res[proc.IEU]*rate[order[a]] >
			g.Tasks[order[b]].Demand.Res[proc.IEU]*rate[order[b]]
	})

	partners := make([][]int, n)
	for _, l := range g.Links {
		if l.A < 0 || l.A >= n || l.B < 0 || l.B >= n {
			return assign.Assignment{}, fmt.Errorf("sched: link %v references unknown task", l)
		}
		partners[l.A] = append(partners[l.A], l.B)
		partners[l.B] = append(partners[l.B], l.A)
	}

	pipeIEU := make([]float64, topo.Pipes())
	coreLSU := make([]float64, topo.Cores)
	used := make([]bool, topo.Contexts())
	ctxOf := make([]int, n)
	for i := range ctxOf {
		ctxOf[i] = -1
	}

	remoteCommCost := (g.Machine.RemoteCommL2 + g.Machine.RemoteCommXBar - g.Machine.LocalCommL1)
	if remoteCommCost < 0 {
		remoteCommCost = 0
	}

	for _, task := range order {
		d := g.Tasks[task].Demand
		bestCtx, bestCost := -1, 0.0
		for ctx := 0; ctx < topo.Contexts(); ctx++ {
			if used[ctx] {
				continue
			}
			pipe, core := topo.PipeOf(ctx), topo.CoreOf(ctx)
			// Predicted over-subscription after placing here.
			newIEU := pipeIEU[pipe] + d.Res[proc.IEU]*rate[task]
			newLSU := coreLSU[core] + d.Res[proc.LSU]*rate[task]
			cost := 0.0
			if over := newIEU - g.Machine.Caps[proc.IEU]; over > 0 {
				cost += 10 * over
			}
			if over := newLSU - g.Machine.Caps[proc.LSU]; over > 0 {
				cost += 6 * over
			}
			// Keep communicating threads in one core where possible.
			for _, p := range partners[task] {
				if ctxOf[p] >= 0 && topo.CoreOf(ctxOf[p]) != core {
					cost += remoteCommCost * rate[task] * 0.01
				}
			}
			// Mild preference for low indices keeps the result canonical.
			cost += float64(ctx) * 1e-9
			if bestCtx < 0 || cost < bestCost {
				bestCtx, bestCost = ctx, cost
			}
		}
		used[bestCtx] = true
		ctxOf[task] = bestCtx
		pipe, core := topo.PipeOf(bestCtx), topo.CoreOf(bestCtx)
		pipeIEU[pipe] += d.Res[proc.IEU] * rate[task]
		coreLSU[core] += d.Res[proc.LSU] * rate[task]
	}
	return assign.Assignment{Topo: topo, Ctx: ctxOf}, nil
}
