// Package sched provides the baseline task-assignment policies the paper
// compares against (§2, Figure 1): the naive scheduler, which assigns tasks
// to virtual CPUs at random, and a Linux-like scheduler, which balances the
// number of tasks per core and per scheduling domain the way a
// load-balancing OS scheduler would.
package sched

import (
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// Scheduler produces one task assignment for a workload of `tasks` tasks.
type Scheduler interface {
	Name() string
	Assign(topo t2.Topology, tasks int) (assign.Assignment, error)
}

// Naive assigns tasks to hardware contexts uniformly at random — the
// paper's "naive task assignment" baseline.
type Naive struct {
	Rng *rand.Rand
}

// Name implements Scheduler.
func (Naive) Name() string { return "Naive" }

// Assign implements Scheduler.
func (n Naive) Assign(topo t2.Topology, tasks int) (assign.Assignment, error) {
	rng := n.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return assign.RandomPermutation(rng, topo, tasks)
}

// LinuxLike balances the task count across cores and, within each core,
// across hardware pipelines — the "number of tasks per core or scheduling
// domain is balanced" policy the paper attributes to Linux-style
// schedulers. Ties break toward lower indices, so the result is
// deterministic.
type LinuxLike struct{}

// Name implements Scheduler.
func (LinuxLike) Name() string { return "Linux-like" }

// Assign implements Scheduler.
func (LinuxLike) Assign(topo t2.Topology, tasks int) (assign.Assignment, error) {
	if err := topo.Validate(); err != nil {
		return assign.Assignment{}, err
	}
	if tasks < 1 || tasks > topo.Contexts() {
		return assign.Assignment{}, fmt.Errorf("sched: %d tasks do not fit %s", tasks, topo)
	}
	coreLoad := make([]int, topo.Cores)
	pipeLoad := make([]int, topo.Pipes())
	ctx := make([]int, tasks)
	for task := 0; task < tasks; task++ {
		// Least-loaded core, then least-loaded pipe inside it.
		core := 0
		for c := 1; c < topo.Cores; c++ {
			if coreLoad[c] < coreLoad[core] {
				core = c
			}
		}
		pipe := 0
		for p := 1; p < topo.PipesPerCore; p++ {
			if pipeLoad[core*topo.PipesPerCore+p] < pipeLoad[core*topo.PipesPerCore+pipe] {
				pipe = p
			}
		}
		slot := pipeLoad[core*topo.PipesPerCore+pipe]
		if slot >= topo.ContextsPerPipe {
			return assign.Assignment{}, fmt.Errorf("sched: internal balance overflow on core %d pipe %d", core, pipe)
		}
		ctx[task] = topo.Context(core, pipe, slot)
		coreLoad[core]++
		pipeLoad[core*topo.PipesPerCore+pipe]++
	}
	return assign.Assignment{Topo: topo, Ctx: ctx}, nil
}
