package sched

import (
	"fmt"
	"math/rand"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/t2"
)

// BestOfN is the sampling scheduler implicit in the paper's own method (and
// in SOS-style symbiotic job schedulers, §6): measure N random assignments
// and keep the best. It is exactly Step 1 of the statistical approach
// without the estimation step, so it can find good assignments but cannot
// bound their distance from the optimum.
type BestOfN struct {
	N    int
	Seed int64
}

// Name identifies the scheduler.
func (s BestOfN) Name() string { return fmt.Sprintf("Best-of-%d", s.N) }

// Assign measures s.N random assignments with the runner and returns the
// best one with its measured performance.
func (s BestOfN) Assign(topo t2.Topology, tasks int, runner core.Runner) (assign.Assignment, float64, error) {
	if s.N < 1 {
		return assign.Assignment{}, 0, fmt.Errorf("sched: best-of-N needs N >= 1, got %d", s.N)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	results, err := core.CollectSample(rng, topo, tasks, s.N, runner)
	if err != nil {
		return assign.Assignment{}, 0, err
	}
	best := results[core.Best(results)]
	return best.Assignment, best.Perf, nil
}

// LocalSearch is measurement-driven hill climbing: start from a seed
// assignment (Linux-like by default), then repeatedly propose a random
// single-task move to a free context or a swap of two tasks, keep the
// proposal if the measured performance improves, and stop after Budget
// measurements. This is the strongest classical baseline here — and, like
// every heuristic the paper discusses, it terminates with no idea how much
// performance is still on the table.
type LocalSearch struct {
	Budget int
	Seed   int64
	// Start provides the initial assignment; nil starts from Linux-like.
	Start *assign.Assignment
}

// Name identifies the scheduler.
func (s LocalSearch) Name() string { return fmt.Sprintf("Local-search-%d", s.Budget) }

// Assign runs the search and returns the best assignment found with its
// measured performance. The runner is consulted exactly Budget+1 times.
func (s LocalSearch) Assign(topo t2.Topology, tasks int, runner core.Runner) (assign.Assignment, float64, error) {
	if s.Budget < 0 {
		return assign.Assignment{}, 0, fmt.Errorf("sched: negative budget %d", s.Budget)
	}
	var cur assign.Assignment
	if s.Start != nil {
		cur = s.Start.Clone()
	} else {
		var err error
		cur, err = LinuxLike{}.Assign(topo, tasks)
		if err != nil {
			return assign.Assignment{}, 0, err
		}
	}
	if err := cur.Validate(); err != nil {
		return assign.Assignment{}, 0, err
	}
	curPerf, err := runner.Measure(cur)
	if err != nil {
		return assign.Assignment{}, 0, err
	}

	rng := rand.New(rand.NewSource(s.Seed))
	v := topo.Contexts()
	usedBy := make([]int, v) // context -> task+1, 0 = free
	for task, ctx := range cur.Ctx {
		usedBy[ctx] = task + 1
	}

	for step := 0; step < s.Budget; step++ {
		task := rng.Intn(tasks)
		target := rng.Intn(v)
		oldCtx := cur.Ctx[task]
		if target == oldCtx {
			continue
		}
		occupant := usedBy[target] - 1

		// Propose: move or swap.
		cur.Ctx[task] = target
		if occupant >= 0 {
			cur.Ctx[occupant] = oldCtx
		}
		perf, err := runner.Measure(cur)
		if err != nil {
			return assign.Assignment{}, 0, err
		}
		if perf > curPerf {
			curPerf = perf
			usedBy[oldCtx] = 0
			if occupant >= 0 {
				usedBy[oldCtx] = occupant + 1
			}
			usedBy[target] = task + 1
			continue
		}
		// Revert.
		cur.Ctx[task] = oldCtx
		if occupant >= 0 {
			cur.Ctx[occupant] = target
		}
	}
	return cur, curPerf, nil
}
