package sched

import (
	"errors"
	"math/rand"
	"testing"

	"optassign/internal/apps"
	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/t2"
)

func testbed(t *testing.T) *netdps.Testbed {
	t.Helper()
	tb, err := netdps.NewTestbed(apps.NewIPFwd(apps.IPFwdL1), 8, netdps.WithNoise(0))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestBestOfNImprovesWithN(t *testing.T) {
	tb := testbed(t)
	topo := tb.Machine.Topo
	a1, p1, err := BestOfN{N: 5, Seed: 1}.Assign(topo, tb.TaskCount(), tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.Validate(); err != nil {
		t.Fatal(err)
	}
	_, p2, err := BestOfN{N: 200, Seed: 1}.Assign(topo, tb.TaskCount(), tb)
	if err != nil {
		t.Fatal(err)
	}
	if !(p2 >= p1) {
		t.Errorf("best-of-200 (%v) below best-of-5 (%v)", p2, p1)
	}
	if _, _, err := (BestOfN{N: 0}).Assign(topo, tb.TaskCount(), tb); err == nil {
		t.Error("N=0 accepted")
	}
	if (BestOfN{N: 7}).Name() == "" {
		t.Error("name")
	}
}

func TestLocalSearchImprovesOverStart(t *testing.T) {
	tb := testbed(t)
	topo := tb.Machine.Topo
	start, err := LinuxLike{}.Assign(topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	startPerf, err := tb.Measure(start)
	if err != nil {
		t.Fatal(err)
	}
	a, perf, err := LocalSearch{Budget: 400, Seed: 3}.Assign(topo, tb.TaskCount(), tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("search produced invalid assignment: %v", err)
	}
	if perf < startPerf {
		t.Errorf("search (%v) regressed below its start (%v)", perf, startPerf)
	}
	// The returned performance matches a fresh measurement of the returned
	// assignment (internal bookkeeping is consistent).
	re, err := tb.Measure(a)
	if err != nil {
		t.Fatal(err)
	}
	if re != perf {
		t.Errorf("reported %v, re-measured %v", perf, re)
	}
}

func TestLocalSearchBudgetAndErrors(t *testing.T) {
	tb := testbed(t)
	topo := tb.Machine.Topo
	calls := 0
	counting := core.RunnerFunc(func(a assign.Assignment) (float64, error) {
		calls++
		return tb.Measure(a)
	})
	if _, _, err := (LocalSearch{Budget: 50, Seed: 1}).Assign(topo, tb.TaskCount(), counting); err != nil {
		t.Fatal(err)
	}
	if calls > 51 {
		t.Errorf("search used %d measurements, budget allows 51", calls)
	}
	if _, _, err := (LocalSearch{Budget: -1}).Assign(topo, tb.TaskCount(), tb); err == nil {
		t.Error("negative budget accepted")
	}
	boom := core.RunnerFunc(func(assign.Assignment) (float64, error) { return 0, errors.New("boom") })
	if _, _, err := (LocalSearch{Budget: 5}).Assign(topo, tb.TaskCount(), boom); err == nil {
		t.Error("runner error not propagated")
	}
	if (LocalSearch{Budget: 10}).Name() == "" {
		t.Error("name")
	}
}

func TestLocalSearchCustomStart(t *testing.T) {
	tb := testbed(t)
	topo := tb.Machine.Topo
	rng := rand.New(rand.NewSource(9))
	start, err := assign.RandomPermutation(rng, topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := (LocalSearch{Budget: 20, Seed: 2, Start: &start}).Assign(topo, tb.TaskCount(), tb)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// The caller's start assignment must not have been mutated in place:
	// it still validates.
	if err := start.Validate(); err != nil {
		t.Fatalf("start mutated: %v", err)
	}
}

func TestGreedyDemand(t *testing.T) {
	tb := testbed(t)
	tasks, links := tb.Tasks()
	g := GreedyDemand{Machine: tb.Machine, Tasks: tasks, Links: links}
	if g.Name() == "" {
		t.Error("name")
	}
	a, err := g.Assign()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	perf, err := tb.Measure(a)
	if err != nil {
		t.Fatal(err)
	}
	// The demand-aware heuristic must beat the demand-blind Linux-like
	// balancer on this workload.
	linuxA, err := LinuxLike{}.Assign(tb.Machine.Topo, tb.TaskCount())
	if err != nil {
		t.Fatal(err)
	}
	linuxPerf, err := tb.Measure(linuxA)
	if err != nil {
		t.Fatal(err)
	}
	if perf < linuxPerf {
		t.Errorf("greedy (%v) below Linux-like (%v)", perf, linuxPerf)
	}
	// No two of the 8 heavy P threads should share a pipeline.
	byPipe := a.TasksByPipe()
	for pipe, ts := range byPipe {
		heavy := 0
		for _, task := range ts {
			if task%3 == 1 { // P threads
				heavy++
			}
		}
		if heavy > 1 {
			t.Errorf("pipe %d hosts %d P threads", pipe, heavy)
		}
	}
}

func TestGreedyDemandErrors(t *testing.T) {
	tb := testbed(t)
	tasks, links := tb.Tasks()
	if _, err := (GreedyDemand{}).Assign(); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := (GreedyDemand{Machine: tb.Machine}).Assign(); err == nil {
		t.Error("no tasks accepted")
	}
	badLinks := append(links[:0:0], links...)
	badLinks[0].A = 999
	if _, err := (GreedyDemand{Machine: tb.Machine, Tasks: tasks, Links: badLinks}).Assign(); err == nil {
		t.Error("dangling link accepted")
	}
}

var _ = t2.UltraSPARCT2 // keep the import for future topology-specific cases
