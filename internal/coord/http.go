package coord

import (
	"encoding/json"
	"errors"
	"net/http"

	"optassign/internal/campaign"
	"optassign/internal/obs"
	"optassign/internal/table"
)

// Handler serves the coordinator's HTTP API:
//
//	POST /campaigns                submit a Spec (JSON body) -> 201 Status
//	GET  /campaigns                list; ?state= and ?benchmark= filter
//	GET  /campaigns/{id}           one campaign's live Status
//	POST /campaigns/{id}/pause     stop at the next measurement boundary
//	POST /campaigns/{id}/resume    re-admit a paused or failed campaign
//	POST /campaigns/{id}/cancel    terminate; journal kept, row promoted
//	GET  /query?q=EXPR             predicate query over promoted rows
//
// plus /metrics and /healthz when a registry is supplied. Conflicts —
// duplicate ids, a journal locked by another process, lifecycle
// transitions the state forbids — map to 409; malformed specs and filter
// expressions to 400; unknown campaigns to 404.
func (c *Coordinator) Handler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("/metrics", obs.MetricsHandler(reg))
		mux.Handle("/healthz", obs.HealthHandler(nil, func() any {
			c.mu.Lock()
			defer c.mu.Unlock()
			return map[string]any{
				"campaigns": len(c.campaigns),
				"running":   c.running,
				"queued":    len(c.queue),
				"rows":      c.table.Len(),
			}
		}))
	}

	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		st, err := c.Submit(spec)
		if err != nil {
			httpError(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})

	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		list := c.List(State(q.Get("state")), q.Get("benchmark"))
		writeJSON(w, http.StatusOK, map[string]any{"campaigns": list, "count": len(list)})
	})

	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := c.Status(r.PathValue("id"))
		if err != nil {
			httpError(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	lifecycle := func(f func(string) (Status, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			st, err := f(r.PathValue("id"))
			if err != nil {
				httpError(w, codeFor(err), err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		}
	}
	mux.HandleFunc("POST /campaigns/{id}/pause", lifecycle(c.Pause))
	mux.HandleFunc("POST /campaigns/{id}/resume", lifecycle(c.Resume))
	mux.HandleFunc("POST /campaigns/{id}/cancel", lifecycle(c.Cancel))

	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		rows, err := c.Query(r.URL.Query().Get("q"))
		if err != nil {
			httpError(w, codeFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"rows": rows, "count": len(rows)})
	})

	return mux
}

// codeFor maps the coordinator's typed errors to HTTP status codes.
func codeFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownCampaign):
		return http.StatusNotFound
	case errors.Is(err, ErrCampaignExists),
		errors.Is(err, ErrWrongState),
		errors.Is(err, ErrClosed),
		errors.Is(err, campaign.ErrJournalBusy),
		errors.Is(err, campaign.ErrJournalExists),
		errors.Is(err, table.ErrTableBusy):
		return http.StatusConflict
	case errors.Is(err, table.ErrBadFilter), errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
