package coord

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/campaign"
	"optassign/internal/core"
)

// smallSpec is a campaign that finishes in well under a second on the
// simulated testbed: 2 pipeline instances (6 tasks) and a tight budget.
func smallSpec(id string, seed int64) Spec {
	return Spec{
		ID:         id,
		Benchmark:  "IPFwd-L1",
		Instances:  2,
		LossPct:    5,
		Ninit:      400,
		Ndelta:     100,
		MaxSamples: 600,
		Seed:       seed,
	}
}

func waitSettled(t *testing.T, c *Coordinator) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("campaigns did not settle: %v", err)
	}
}

// TestConcurrentCampaigns runs more campaigns than slots and checks every
// one completes, promotes a row, and stays byte-addressable by query.
func TestConcurrentCampaigns(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{DataDir: dir, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := c.Submit(smallSpec(fmt.Sprintf("camp-%d", i), int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	waitSettled(t, c)
	for i := 0; i < n; i++ {
		st, err := c.Status(fmt.Sprintf("camp-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateCompleted {
			t.Fatalf("campaign %s: state %s (err %q), want completed", st.ID, st.State, st.Err)
		}
		if st.Samples == 0 || st.Best == 0 {
			t.Fatalf("campaign %s completed with no result: %+v", st.ID, st)
		}
	}
	if c.TableLen() != n {
		t.Fatalf("table has %d rows, want %d", c.TableLen(), n)
	}
	rows, err := c.Query("benchmark=IPFwd-L1,status=completed")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("query matched %d rows, want %d", len(rows), n)
	}
	if list := c.List(StateCompleted, ""); len(list) != n {
		t.Fatalf("List(completed) = %d campaigns, want %d", len(list), n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitValidationAndDuplicates(t *testing.T) {
	c, err := Open(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, spec := range []Spec{
		{},
		{ID: "x/../y", Benchmark: "IPFwd-L1", LossPct: 5},
		{ID: "ok", Benchmark: "IPFwd-L1"},
		{ID: "ok", Benchmark: "IPFwd-L1", LossPct: 5, Strategy: "nope"},
	} {
		if _, err := c.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Errorf("Submit(%+v): err = %v, want ErrBadSpec", spec, err)
		}
	}
	if _, err := c.Submit(Spec{ID: "ok", Benchmark: "no-such-app", LossPct: 5}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown benchmark: err = %v, want ErrBadSpec", err)
	}
	if _, err := c.Submit(smallSpec("dup", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(smallSpec("dup", 2)); !errors.Is(err, ErrCampaignExists) {
		t.Errorf("duplicate submit: err = %v, want ErrCampaignExists", err)
	}
	waitSettled(t, c)
	// A completed id is still taken.
	if _, err := c.Submit(smallSpec("dup", 3)); !errors.Is(err, ErrCampaignExists) {
		t.Errorf("resubmit of completed id: err = %v, want ErrCampaignExists", err)
	}
}

// TestPauseResumeCancel drives the full lifecycle: pause survives a
// restart, resume continues from the journal, cancel is terminal.
func TestPauseResumeCancel(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	spec := smallSpec("lifecycle", 7)
	spec.MaxSamples = 500000
	spec.LossPct = 1e-6 // unreachable: the campaign runs until stopped
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	// Let it journal some measurements, then pause.
	jp := c.JournalPath("lifecycle")
	waitForJournalGrowth(t, jp, 200)
	if _, err := c.Pause("lifecycle"); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, c)
	st, _ := c.Status("lifecycle")
	if st.State != StatePaused {
		t.Fatalf("after pause: state %s, want paused", st.State)
	}
	if _, err := c.Pause("lifecycle"); !errors.Is(err, ErrWrongState) {
		t.Errorf("pause of paused: err = %v, want ErrWrongState", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the pause is durable — the campaign must NOT auto-resume.
	c, err = Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ = c.Status("lifecycle"); st.State != StatePaused {
		t.Fatalf("after restart: state %s, want paused", st.State)
	}
	before, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}

	// Resume continues from the journal, then cancel terminates it.
	if _, err := c.Resume("lifecycle"); err != nil {
		t.Fatal(err)
	}
	waitForJournalGrowth(t, jp, int64(len(before))+200)
	if _, err := c.Cancel("lifecycle"); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, c)
	if st, _ = c.Status("lifecycle"); st.State != StateCancelled {
		t.Fatalf("after cancel: state %s, want cancelled", st.State)
	}
	rows, err := c.Query("id=lifecycle,status=cancelled")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("cancelled row not promoted: %d rows", len(rows))
	}
	if _, err := c.Resume("lifecycle"); !errors.Is(err, ErrWrongState) {
		t.Errorf("resume of cancelled: err = %v, want ErrWrongState", err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Cancelled is terminal across restarts too.
	c, err = Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if st, _ = c.Status("lifecycle"); st.State != StateCancelled {
		t.Fatalf("after restart: state %s, want cancelled", st.State)
	}
}

// waitForJournalGrowth polls until the journal file exceeds size bytes.
func waitForJournalGrowth(t *testing.T, path string, size int64) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(path); err == nil && fi.Size() > size {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("journal %s never grew past %d bytes", path, size)
}

// TestJournalBusySurfaced: a journal locked by another process maps to
// the typed busy error at resume time — the coordinator's HTTP 409.
func TestJournalBusySurfaced(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	spec := smallSpec("busy", 3)
	spec.MaxSamples = 500000
	spec.LossPct = 1e-6
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	jp := c.JournalPath("busy")
	waitForJournalGrowth(t, jp, 200)

	// The running campaign holds the exclusive lock: an outside opener
	// is refused...
	hdr := campaign.JournalHeader{}
	if _, _, err := campaign.ResumeJournal(jp, hdr); !errors.Is(err, campaign.ErrJournalBusy) {
		t.Fatalf("outside resume while running: err = %v, want ErrJournalBusy", err)
	}
	if _, err := c.Pause("busy"); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, c)

	// ...and when an outside process holds the paused journal, the
	// coordinator's own resume is refused with the same typed error.
	st, err := campaign.LoadJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	outside, _, err := campaign.ResumeJournal(jp, st.Header)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resume("busy"); !errors.Is(err, campaign.ErrJournalBusy) {
		t.Fatalf("resume of externally held journal: err = %v, want ErrJournalBusy", err)
	}
	if err := outside.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Resume("busy"); err != nil {
		t.Fatalf("resume after external release: %v", err)
	}
	if _, err := c.Cancel("busy"); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, c)
}

// TestRestartResumesByteIdentical is the crash/restart e2e: a campaign
// stopped mid-run and resumed by a fresh coordinator must write exactly
// the journal an uninterrupted run writes — every byte.
func TestRestartResumesByteIdentical(t *testing.T) {
	spec := smallSpec("bi", 11)
	spec.MaxSamples = 20000
	spec.LossPct = 0.2 // runs the full budget, long enough to interrupt

	// Baseline: one uninterrupted run.
	base := t.TempDir()
	c, err := Open(Config{DataDir: base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, c)
	stBase, _ := c.Status("bi")
	if stBase.State != StateCompleted {
		t.Fatalf("baseline: state %s (err %q)", stBase.State, stBase.Err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(base, "journals", "bi.journal"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: stop the coordinator mid-campaign, restart, let
	// recovery resume it to completion.
	dir := t.TempDir()
	c, err = Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	jp := c.JournalPath("bi")
	waitForJournalGrowth(t, jp, 500)
	if err := c.Close(); err != nil { // stop at a measurement boundary
		t.Fatal(err)
	}
	mid, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) >= len(want) {
		t.Skipf("campaign finished before the stop (%d >= %d bytes); nothing interrupted", len(mid), len(want))
	}

	c, err = Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := c.Status("bi")
	if st.State.Terminal() {
		t.Fatalf("restart recovered %q as %s before running it", st.ID, st.State)
	}
	waitSettled(t, c)
	st, _ = c.Status("bi")
	if st.State != StateCompleted {
		t.Fatalf("resumed campaign: state %s (err %q)", st.State, st.Err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed journal differs from uninterrupted run: %d vs %d bytes", len(got), len(want))
	}
	if st.Samples != stBase.Samples || st.Satisfied != stBase.Satisfied || st.Best != stBase.Best {
		t.Fatalf("resumed result differs: %+v vs %+v", st, stBase)
	}
}

// TestQueryOverManyPromotedCampaigns promotes 100+ campaigns and then
// answers predicate queries with every journal file deleted — proof the
// query path never opens one.
func TestQueryOverManyPromotedCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 100 small campaigns")
	}
	dir := t.TempDir()
	c, err := Open(Config{DataDir: dir, MaxConcurrent: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		spec := smallSpec(fmt.Sprintf("q%03d", i), int64(i+1))
		spec.MaxSamples = 400 // one fit round, then budget exhaustion
		if _, err := c.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	waitSettled(t, c)
	if got := c.TableLen(); got != n {
		t.Fatalf("promoted %d rows, want %d", got, n)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Delete the raw evidence: if any query path touched a journal, it
	// would fail loudly now.
	if err := os.RemoveAll(filepath.Join(dir, "journals")); err != nil {
		t.Fatal(err)
	}
	c, err = Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	all, err := c.Query("benchmark=IPFwd-L1")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n {
		t.Fatalf("query over journal-less store: %d rows, want %d", len(all), n)
	}
	some, err := c.Query("status=completed,samples>=40,upb>0")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) == 0 || len(some) > n {
		t.Fatalf("predicate query returned %d rows", len(some))
	}
	one, err := c.Query("id=q042")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0]["id"] != "q042" {
		t.Fatalf("id query = %v", one)
	}
}

// teardownSource reproduces what a remote fleet does under cancellation:
// the in-flight measurement fails with a transport error — NOT
// context.Canceled — because the stream collapsed when the run was torn
// down. After 5 clean draws the runner blocks until the context dies,
// then surfaces the transport-flavored error.
type teardownSource struct {
	blocked chan struct{} // closed once the runner is parked mid-draw
}

func (s teardownSource) Testbed() string { return "local" }

func (s teardownSource) Acquire(spec Spec) (Handle, error) {
	h, err := LocalSource{}.Acquire(spec)
	if err != nil {
		return nil, err
	}
	return &teardownHandle{Handle: h, blocked: s.blocked}, nil
}

type teardownHandle struct {
	Handle
	blocked chan struct{}
	n       int
}

var errStreamBroken = errors.New("remote: stream broken (test)")

func (h *teardownHandle) Runner() core.ContextRunner {
	inner := h.Handle.Runner()
	return core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		h.n++
		if h.n > 5 {
			if h.n == 6 {
				close(h.blocked)
			}
			<-ctx.Done()
			return 0, errStreamBroken
		}
		return inner.MeasureContext(ctx, a)
	})
}

// TestCancelDuringStreamTeardown pins the teardown classification: a
// cancel whose context cancellation surfaces as a transport error from
// the collapsing measurement stream must still land the campaign in
// cancelled (promoted row included), not failed.
func TestCancelDuringStreamTeardown(t *testing.T) {
	src := teardownSource{blocked: make(chan struct{})}
	c, err := Open(Config{DataDir: t.TempDir(), Source: src})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	spec := smallSpec("teardown", 3)
	spec.MaxSamples = 500000
	spec.LossPct = 1e-6
	if _, err := c.Submit(spec); err != nil {
		t.Fatal(err)
	}
	select {
	case <-src.blocked:
	case <-time.After(time.Minute):
		t.Fatal("runner never reached the blocking draw")
	}
	if _, err := c.Cancel("teardown"); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, c)

	st, err := c.Status("teardown")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("state after cancel during stream teardown = %s (error %q), want cancelled", st.State, st.Err)
	}
	rows, err := c.Query("id=teardown,status=cancelled")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("promoted rows for cancelled campaign: %d, want 1", len(rows))
	}
}
