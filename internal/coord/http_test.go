package coord

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optassign/internal/obs"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding %s response: %v", resp.Request.URL, err)
	}
	return m
}

func TestHTTPAPI(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := Open(Config{DataDir: t.TempDir(), Metrics: NewMetrics(reg)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler(reg))
	defer srv.Close()

	// Bad spec -> 400 with an error body.
	resp, body := postJSON(t, srv.URL+"/campaigns", Spec{ID: "bad"})
	if resp.StatusCode != http.StatusBadRequest || body["error"] == "" {
		t.Fatalf("bad spec: %d %v", resp.StatusCode, body)
	}

	// Submit -> 201 with the queued/running status.
	spec := smallSpec("web", 5)
	resp, body = postJSON(t, srv.URL+"/campaigns", spec)
	if resp.StatusCode != http.StatusCreated || body["id"] != "web" {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}

	// Duplicate -> 409.
	if resp, _ = postJSON(t, srv.URL+"/campaigns", spec); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate submit: %d, want 409", resp.StatusCode)
	}

	// Unknown campaign -> 404 on status and lifecycle verbs.
	if resp, _ = getJSON(t, srv.URL+"/campaigns/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown status: %d, want 404", resp.StatusCode)
	}
	if resp, _ = postJSON(t, srv.URL+"/campaigns/nope/pause", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown pause: %d, want 404", resp.StatusCode)
	}

	// Poll status until terminal; the payload carries the live figures.
	deadline := time.Now().Add(time.Minute)
	for {
		resp, body = getJSON(t, srv.URL+"/campaigns/web")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d %v", resp.StatusCode, body)
		}
		if s := body["state"].(string); State(s).Terminal() || s == string(StateFailed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never finished: %v", body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if body["state"] != string(StateCompleted) {
		t.Fatalf("campaign state %v (error %v)", body["state"], body["error"])
	}
	if body["samples"].(float64) == 0 || body["upb"].(float64) == 0 {
		t.Fatalf("terminal status missing figures: %v", body)
	}

	// The live convergence line renders from the same status.
	var st Status
	raw, _ := json.Marshal(body)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if line := st.Summary(); !strings.Contains(line, "upb=") || !strings.Contains(line, "±") {
		t.Fatalf("summary line %q lacks the upb=… ±… figures", line)
	}

	// Lifecycle verb on a terminal campaign -> 409.
	if resp, _ = postJSON(t, srv.URL+"/campaigns/web/pause", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("pause of completed: %d, want 409", resp.StatusCode)
	}

	// List, with and without filters.
	resp, body = getJSON(t, srv.URL+"/campaigns?state=completed")
	if resp.StatusCode != http.StatusOK || body["count"].(float64) != 1 {
		t.Fatalf("list: %d %v", resp.StatusCode, body)
	}
	if _, body = getJSON(t, srv.URL+"/campaigns?benchmark=other"); body["count"].(float64) != 0 {
		t.Fatalf("filtered list: %v", body)
	}

	// Query over promoted rows; a bad filter is a 400.
	resp, body = getJSON(t, srv.URL+"/query?q="+
		"id=web,satisfied=true")
	if resp.StatusCode != http.StatusOK || body["count"].(float64) != 1 {
		t.Fatalf("query: %d %v", resp.StatusCode, body)
	}
	row := body["rows"].([]any)[0].(map[string]any)
	if row["benchmark"] != "IPFwd-L1" || row["status"] != "completed" {
		t.Fatalf("query row: %v", row)
	}
	if resp, _ = getJSON(t, srv.URL+"/query?q=nope=1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad filter: %d, want 400", resp.StatusCode)
	}

	// Observability endpoints ride along.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := make([]byte, 1<<16)
	n, _ := mresp.Body.Read(mbody)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || !strings.Contains(string(mbody[:n]), "campaignd_promotions_total") {
		t.Fatalf("metrics endpoint: %d", mresp.StatusCode)
	}
	if hresp, hbody := getJSON(t, srv.URL+"/healthz"); hresp.StatusCode != http.StatusOK || hbody == nil {
		t.Fatalf("healthz: %d", hresp.StatusCode)
	}
}

// TestHTTPPauseResume exercises the lifecycle verbs over HTTP against a
// long-running campaign.
func TestHTTPPauseResume(t *testing.T) {
	c, err := Open(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(c.Handler(nil))
	defer srv.Close()

	spec := smallSpec("hp", 9)
	spec.MaxSamples = 500000
	spec.LossPct = 1e-6
	if resp, body := postJSON(t, srv.URL+"/campaigns", spec); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %v", resp.StatusCode, body)
	}
	waitForJournalGrowth(t, c.JournalPath("hp"), 500)

	resp, body := postJSON(t, srv.URL+"/campaigns/hp/pause", nil)
	if resp.StatusCode != http.StatusOK || body["state"] != string(StatePaused) {
		t.Fatalf("pause: %d %v", resp.StatusCode, body)
	}
	waitSettled(t, c)

	resp, body = postJSON(t, srv.URL+"/campaigns/hp/resume", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %d %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, srv.URL+"/campaigns/hp/cancel", nil)
	if resp.StatusCode != http.StatusOK || body["state"] != string(StateCancelled) {
		t.Fatalf("cancel: %d %v", resp.StatusCode, body)
	}
	waitSettled(t, c)
	if resp, body = getJSON(t, srv.URL+"/campaigns/hp"); body["state"] != string(StateCancelled) {
		t.Fatalf("after cancel: %v", body)
	}
}
