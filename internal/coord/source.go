package coord

import (
	"fmt"

	"optassign/internal/apps"
	"optassign/internal/core"
	"optassign/internal/netdps"
	"optassign/internal/netgen"
	"optassign/internal/remote"
	"optassign/internal/t2"
)

// Source provides measurement capacity to campaigns. The coordinator
// acquires a handle per admitted campaign and closes it when the run
// leaves the scheduler, so a source can hand out per-campaign testbeds
// (LocalSource) or share one fleet across every campaign (PoolSource).
type Source interface {
	// Acquire returns a measurement handle for the campaign spec. The
	// handle stays open across the whole run (including while the
	// campaign waits in the queue) and is closed exactly once.
	Acquire(spec Spec) (Handle, error)
	// Testbed names the source for the result table's testbed column.
	Testbed() string
}

// Handle is one campaign's attachment to its measurement source.
type Handle interface {
	Runner() core.ContextRunner
	Topo() t2.Topology
	Tasks() int
	// Name is the benchmark/testbed name stamped into the journal header.
	Name() string
	Close() error
}

// LocalSource builds a deterministic in-process simulated testbed per
// campaign: same benchmark, instances and seed → same testbed → the same
// draw sequence measures to the same journal bytes on every run. That
// determinism is what makes the coordinator's crash/restart guarantee
// testable byte-for-byte.
type LocalSource struct{}

// Testbed implements Source.
func (LocalSource) Testbed() string { return "local" }

// Acquire implements Source.
func (LocalSource) Acquire(spec Spec) (Handle, error) {
	app, err := apps.ByName(spec.Benchmark, netgen.DefaultProfile())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	instances := spec.Instances
	if instances <= 0 {
		instances = 8
	}
	tb, err := netdps.NewTestbed(app, instances, netdps.WithSeed(spec.Seed))
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	return localHandle{tb: tb, name: app.Name()}, nil
}

type localHandle struct {
	tb   *netdps.Testbed
	name string
}

func (h localHandle) Runner() core.ContextRunner { return core.AsContextRunner(h.tb) }
func (h localHandle) Topo() t2.Topology          { return h.tb.Machine.Topo }
func (h localHandle) Tasks() int                 { return h.tb.TaskCount() }
func (h localHandle) Name() string               { return h.name }
func (h localHandle) Close() error               { return nil }

// PoolSource shares one membership-driven remote fleet across every
// campaign: draws fan out over whatever servers are registered when they
// run. The pool outlives any campaign, so handles never close it.
type PoolSource struct {
	Pool *remote.ClientPool
}

// Testbed implements Source.
func (s PoolSource) Testbed() string { return "pool:" + s.Pool.Hello().Name }

// Acquire implements Source.
func (s PoolSource) Acquire(Spec) (Handle, error) {
	hello := s.Pool.Hello()
	if hello.Tasks == 0 {
		return nil, fmt.Errorf("coord: fleet pool has no ready servers")
	}
	return poolHandle{pool: s.Pool, hello: hello}, nil
}

type poolHandle struct {
	pool  *remote.ClientPool
	hello remote.Hello
}

func (h poolHandle) Runner() core.ContextRunner { return h.pool }
func (h poolHandle) Topo() t2.Topology          { return h.hello.Topology }
func (h poolHandle) Tasks() int                 { return h.hello.Tasks }
func (h poolHandle) Name() string               { return h.hello.Name }
func (h poolHandle) Close() error               { return nil }
