package coord

import "optassign/internal/obs"

// Metrics is the coordinator's observability bundle. A nil *Metrics is
// fully inert, so the unobserved coordinator pays nothing.
type Metrics struct {
	Submitted *obs.Counter
	Started   *obs.Counter
	Promoted  *obs.Counter
	Failed    *obs.Counter
	TableRows *obs.Gauge
	states    map[State]*obs.Gauge
}

// NewMetrics registers the coordinator's metrics. A nil registry yields
// nil, which every call site tolerates.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		Submitted: r.Counter("campaignd_submitted_total", "campaigns submitted"),
		Started:   r.Counter("campaignd_runs_total", "campaign run attempts started"),
		Promoted:  r.Counter("campaignd_promotions_total", "terminal rows promoted into the table"),
		Failed:    r.Counter("campaignd_failures_total", "campaign runs that ended in failure"),
		TableRows: r.Gauge("campaignd_table_rows", "rows in the promoted-campaigns table"),
		states:    make(map[State]*obs.Gauge),
	}
	for _, s := range []State{StateQueued, StateRunning, StatePaused, StateCompleted, StateCancelled, StateFailed} {
		m.states[s] = r.Gauge("campaignd_campaigns", "campaigns by lifecycle state", obs.L("state", string(s)))
	}
	return m
}

func (m *Metrics) submitted() {
	if m != nil {
		m.Submitted.Inc()
	}
}

func (m *Metrics) started() {
	if m != nil {
		m.Started.Inc()
	}
}

func (m *Metrics) promoted() {
	if m != nil {
		m.Promoted.Inc()
	}
}

func (m *Metrics) failed() {
	if m != nil {
		m.Failed.Inc()
	}
}

// updateGaugesLocked refreshes the per-state gauges from the campaign
// map. Caller holds c.mu.
func (c *Coordinator) updateGaugesLocked() {
	m := c.cfg.Metrics
	if m == nil {
		return
	}
	counts := make(map[State]int, len(m.states))
	for _, cs := range c.campaigns {
		counts[cs.state]++
	}
	for s, g := range m.states {
		g.Set(float64(counts[s]))
	}
	m.TableRows.Set(float64(c.table.Len()))
}
