// Package coord is the campaign-as-a-service layer: a multi-tenant
// coordinator that runs many statistical task-assignment campaigns
// concurrently over the existing engine, each with its own write-ahead
// journal and estimator checkpoint under one data directory, and promotes
// finished campaigns into an indexed table store queryable without ever
// reopening a journal.
//
// Lifecycle: a submitted campaign is queued, scheduled onto a bounded set
// of runner slots, and runs the paper's iterative algorithm serially
// against its measurement source — so its journal bytes are identical to
// a standalone `optassign -journal` run with the same spec. Pause and
// cancel cut the run at a measurement boundary via context cancellation;
// the journal keeps everything completed. On restart the coordinator
// re-admits every campaign whose spec is on disk but whose terminal row
// is not in the table, resuming each from its journal — a kill at any
// instant loses nothing and changes no byte of any journal.
//
// Durability protocol: the spec file is the campaign's existence, the
// journal its progress, the table row its terminal state. Each is written
// before the state it records is acted on (spec before journal, journal
// before refit, row before the in-memory state flips terminal), and the
// table row is committed with fsync before the campaign is declared done
// — so every crash window re-runs forward into the same place.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"optassign/internal/campaign"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/obs"
	"optassign/internal/search"
	"optassign/internal/table"
)

// Spec is one campaign submission.
type Spec struct {
	// ID names the campaign; it keys the spec file, the journal and the
	// result row, so it must be unique and filename-safe.
	ID string `json:"id"`
	// Benchmark picks the workload (see apps.ByName).
	Benchmark string `json:"benchmark"`
	// Instances sizes the local testbed (pipeline instances, 3 tasks
	// each); 0 means the default 8. Ignored by pooled sources.
	Instances int `json:"instances,omitempty"`
	// LossPct is the acceptable performance loss versus the estimated
	// optimum, in percent.
	LossPct float64 `json:"loss_pct"`
	// Ninit, Ndelta and MaxSamples are the fit schedule (§5.3); zero
	// takes the engine defaults.
	Ninit      int `json:"ninit,omitempty"`
	Ndelta     int `json:"ndelta,omitempty"`
	MaxSamples int `json:"max_samples,omitempty"`
	// Seed drives the draw sequence and the local testbed.
	Seed int64 `json:"seed"`
	// Strategy and StrategyParams pick the search strategy ("" or
	// "uniform" is the paper's i.i.d. sampler).
	Strategy       string `json:"strategy,omitempty"`
	StrategyParams string `json:"strategy_params,omitempty"`
}

// ErrBadSpec wraps every Spec validation failure, so the HTTP layer can
// map the whole family to a 400.
var ErrBadSpec = errors.New("coord: bad campaign spec")

// Validate rejects specs the coordinator cannot run or persist.
func (s Spec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("%w: campaign has no id", ErrBadSpec)
	}
	for _, r := range s.ID {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("%w: campaign id %q: ids are [A-Za-z0-9._-]+", ErrBadSpec, s.ID)
		}
	}
	if strings.HasPrefix(s.ID, ".") {
		return fmt.Errorf("%w: campaign id %q may not start with a dot", ErrBadSpec, s.ID)
	}
	if s.Benchmark == "" {
		return fmt.Errorf("%w: campaign has no benchmark", ErrBadSpec)
	}
	if s.LossPct <= 0 {
		return fmt.Errorf("%w: campaign needs a positive loss_pct", ErrBadSpec)
	}
	params, err := search.ParseParams(s.StrategyParams)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	name := s.Strategy
	if name == "" {
		name = "uniform"
	}
	if _, err := search.New(name, params, nil); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return nil
}

// strategySpec is the canonical strategy string stamped into the journal
// header (empty for the default uniform sampler, matching the CLI).
func (s Spec) strategySpec() (string, error) {
	params, err := search.ParseParams(s.StrategyParams)
	if err != nil {
		return "", err
	}
	name := s.Strategy
	if name == "" {
		name = "uniform"
	}
	return search.Spec(name, params), nil
}

// State is a campaign's lifecycle state.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StatePaused    State = "paused"
	StateCompleted State = "completed"
	StateCancelled State = "cancelled"
	StateFailed    State = "failed"
)

// Terminal reports whether the state is final (recorded in the table).
func (s State) Terminal() bool { return s == StateCompleted || s == StateCancelled }

// Typed errors for the conditions the HTTP layer maps to status codes.
var (
	ErrUnknownCampaign = errors.New("coord: no such campaign")
	ErrCampaignExists  = errors.New("coord: campaign already exists")
	ErrWrongState      = errors.New("coord: campaign is not in a state that allows this")
	ErrClosed          = errors.New("coord: coordinator is closed")
)

// Status is a campaign's externally visible state: the spec's identity
// plus the live (or final) convergence figures.
type Status struct {
	ID           string  `json:"id"`
	Benchmark    string  `json:"benchmark"`
	Testbed      string  `json:"testbed"`
	State        State   `json:"state"`
	Strategy     string  `json:"strategy,omitempty"`
	Seed         int64   `json:"seed"`
	Tasks        int     `json:"tasks,omitempty"`
	Samples      int     `json:"samples"`
	Quarantined  int     `json:"quarantined,omitempty"`
	Best         float64 `json:"best,omitempty"`
	UPB          float64 `json:"upb,omitempty"`
	UPBLo        float64 `json:"upb_lo,omitempty"`
	UPBHi        float64 `json:"upb_hi,omitempty"`
	GapPct       float64 `json:"gap_pct,omitempty"`
	Satisfied    bool    `json:"satisfied"`
	CreatedUnix  int64   `json:"created_unix"`
	FinishedUnix int64   `json:"finished_unix,omitempty"`
	Err          string  `json:"error,omitempty"`
}

// Summary renders the live convergence line ("upb=… ±…"), the same shape
// the CLI's -progress prints.
func (st Status) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] n=%d best=%.6g", st.ID, st.State, st.Samples, st.Best)
	if st.UPB > 0 {
		fmt.Fprintf(&b, " upb=%.6g", st.UPB)
		if st.UPBHi > 0 {
			fmt.Fprintf(&b, " ±%.3g", (st.UPBHi-st.UPBLo)/2)
		}
		fmt.Fprintf(&b, " gap=%.2f%%", st.GapPct)
	}
	return b.String()
}

// Config configures a coordinator.
type Config struct {
	// DataDir holds everything the coordinator persists: campaigns/
	// (spec files), journals/ (one journal + estimator checkpoint per
	// campaign) and table/ (the promoted result store).
	DataDir string
	// MaxConcurrent bounds simultaneously running campaigns (default 4).
	MaxConcurrent int
	// Source provides measurement capacity (default LocalSource).
	Source Source
	// TableBuf is the table store's commit buffer size (promotions
	// always commit immediately; this sizes bulk maintenance).
	TableBuf int
	// Metrics, when non-nil, receives coordinator gauges and counters.
	Metrics *Metrics
	// Logf, when non-nil, receives one line per lifecycle transition.
	Logf func(format string, args ...any)
}

// campState is the coordinator's in-memory record of one campaign.
type campState struct {
	spec     Spec
	created  int64
	state    State
	errText  string
	testbed  string
	strategy string // canonical spec, for status display

	// Admission resources: held from admit to run exit (or pause/cancel
	// of a queued campaign). The journal handle owns the exclusive lock.
	handle Handle
	j      *campaign.Journal
	js     *campaign.JournalState
	hdr    campaign.JournalHeader

	cancel  context.CancelFunc
	pending State // what a context cancellation means: paused or cancelled

	// Live convergence figures, updated from round events while running,
	// frozen from the result (or the table row) when terminal.
	samples     int
	quarantined int
	best        float64
	upb         float64
	upbLo       float64
	upbHi       float64
	gapPct      float64
	satisfied   bool
	finished    int64
}

// Coordinator runs campaigns as a service.
type Coordinator struct {
	cfg   Config
	table *table.Table

	mu        sync.Mutex
	campaigns map[string]*campState
	queue     []string
	running   int
	closed    bool

	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
}

// CampaignsSchema is the promoted-results table's schema: one row per
// terminal campaign, indexed on the columns queries filter by.
func CampaignsSchema() table.Schema {
	return table.Schema{
		Name: "campaigns",
		Columns: []table.Column{
			{Name: "id", Type: table.String, Indexed: true},
			{Name: "benchmark", Type: table.String, Indexed: true},
			{Name: "testbed", Type: table.String, Indexed: true},
			{Name: "strategy", Type: table.String},
			{Name: "status", Type: table.String, Indexed: true},
			{Name: "seed", Type: table.Int},
			{Name: "tasks", Type: table.Int},
			{Name: "samples", Type: table.Int},
			{Name: "quarantined", Type: table.Int},
			{Name: "loss_pct", Type: table.Float},
			{Name: "best", Type: table.Float},
			{Name: "upb", Type: table.Float},
			{Name: "upb_lo", Type: table.Float},
			{Name: "upb_hi", Type: table.Float},
			{Name: "gap_pct", Type: table.Float},
			{Name: "satisfied", Type: table.Bool, Indexed: true},
			{Name: "created_unix", Type: table.Int},
			{Name: "finished_unix", Type: table.Int},
		},
	}
}

// Open starts a coordinator over a data directory, recovering every
// non-terminal campaign found there: specs with a table row load as
// terminal history, paused specs wait for an explicit resume, and
// everything else — queued, running or mid-flight when the previous
// process died — re-admits from its journal and runs to completion.
func Open(cfg Config) (*Coordinator, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("coord: Config.DataDir is required")
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.Source == nil {
		cfg.Source = LocalSource{}
	}
	for _, sub := range []string{"campaigns", "journals"} {
		if err := os.MkdirAll(filepath.Join(cfg.DataDir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("coord: %w", err)
		}
	}
	tab, err := table.OpenOrCreate(filepath.Join(cfg.DataDir, "table"), CampaignsSchema(), cfg.TableBuf)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:        cfg,
		table:      tab,
		campaigns:  make(map[string]*campState),
		rootCtx:    ctx,
		rootCancel: cancel,
	}
	if err := c.recover(); err != nil {
		cancel()
		tab.Close()
		return nil, err
	}
	c.mu.Lock()
	c.kickLocked()
	c.updateGaugesLocked()
	c.mu.Unlock()
	return c, nil
}

// specFile is the on-disk form of a campaign's existence. Paused is the
// one mutable bit: it distinguishes "the user stopped this" (stays
// stopped across restarts) from "the process stopped" (auto-resumes).
type specFile struct {
	Format      int   `json:"format"`
	Spec        Spec  `json:"spec"`
	Paused      bool  `json:"paused,omitempty"`
	CreatedUnix int64 `json:"created_unix"`
}

func (c *Coordinator) specPath(id string) string {
	return filepath.Join(c.cfg.DataDir, "campaigns", id+".json")
}

// JournalPath returns the journal file for a campaign id.
func (c *Coordinator) JournalPath(id string) string {
	return filepath.Join(c.cfg.DataDir, "journals", id+".journal")
}

// writeSpec persists a spec file atomically (temp + fsync + rename +
// directory fsync — the journal's durability discipline).
func (c *Coordinator) writeSpec(sf specFile) error {
	dir := filepath.Join(c.cfg.DataDir, "campaigns")
	tmp, err := os.CreateTemp(dir, sf.Spec.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	defer os.Remove(tmp.Name())
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(sf); err != nil {
		tmp.Close()
		return fmt.Errorf("coord: writing spec: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("coord: syncing spec: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.specPath(sf.Spec.ID)); err != nil {
		return fmt.Errorf("coord: installing spec: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("coord: syncing spec directory: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// recover loads every persisted campaign into memory and re-admits the
// non-terminal ones.
func (c *Coordinator) recover() error {
	entries, err := os.ReadDir(filepath.Join(c.cfg.DataDir, "campaigns"))
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(ids)
	for _, id := range ids {
		data, err := os.ReadFile(c.specPath(id))
		if err != nil {
			return fmt.Errorf("coord: %w", err)
		}
		var sf specFile
		if err := json.Unmarshal(data, &sf); err != nil {
			return fmt.Errorf("coord: decoding spec %s: %w", id, err)
		}
		if sf.Spec.ID != id {
			return fmt.Errorf("coord: spec file %s names campaign %q", id, sf.Spec.ID)
		}
		cs := &campState{spec: sf.Spec, created: sf.CreatedUnix, testbed: c.cfg.Source.Testbed()}
		cs.strategy, _ = sf.Spec.strategySpec()
		c.campaigns[id] = cs

		if row := c.terminalRow(id); row != nil {
			c.loadTerminal(cs, row)
			c.logf("recovered %s: %s", id, cs.state)
			continue
		}
		if sf.Paused {
			cs.state = StatePaused
			c.logf("recovered %s: paused (resume to continue)", id)
			continue
		}
		// In flight when the previous process died: re-admit and resume.
		if err := c.admit(cs); err != nil {
			cs.state = StateFailed
			cs.errText = err.Error()
			c.logf("recovered %s: failed to re-admit: %v", id, err)
			continue
		}
		c.queue = append(c.queue, id)
		cs.state = StateQueued
		c.logf("recovered %s: resuming with %d measurements journaled", id, cs.js.Draws)
	}
	return nil
}

// terminalRow returns the campaign's promoted table row, or nil.
func (c *Coordinator) terminalRow(id string) table.Row {
	ids, err := c.table.Lookup("id", id)
	if err != nil || len(ids) == 0 {
		return nil
	}
	// Append-only store: the last row for an id wins (re-promotion after
	// a crash in the completion window can leave an earlier duplicate).
	return c.table.Get(ids[len(ids)-1])
}

// loadTerminal freezes a campState from its promoted row.
func (c *Coordinator) loadTerminal(cs *campState, row table.Row) {
	s := CampaignsSchema()
	get := func(col string) any {
		i, _, _ := s.Col(col)
		return row[i]
	}
	cs.state = State(get("status").(string))
	cs.samples = int(get("samples").(int64))
	cs.quarantined = int(get("quarantined").(int64))
	cs.best = get("best").(float64)
	cs.upb = get("upb").(float64)
	cs.upbLo = get("upb_lo").(float64)
	cs.upbHi = get("upb_hi").(float64)
	cs.gapPct = get("gap_pct").(float64)
	cs.satisfied = get("satisfied").(bool)
	cs.finished = get("finished_unix").(int64)
}

// admit acquires a campaign's measurement handle and its journal (the
// exclusive lock), loading any prior progress. It is the single gate
// every path into the run queue goes through — submit, user resume and
// crash recovery — so they all hold identical resources.
func (c *Coordinator) admit(cs *campState) error {
	strategy, err := cs.spec.strategySpec()
	if err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	h, err := c.cfg.Source.Acquire(cs.spec)
	if err != nil {
		return err
	}
	hdr := campaign.JournalHeader{
		Benchmark: h.Name(),
		Topo:      h.Topo(),
		Tasks:     h.Tasks(),
		Seed:      cs.spec.Seed,
		Strategy:  strategy,
	}
	path := c.JournalPath(cs.spec.ID)
	j, js, err := campaign.ResumeJournal(path, hdr)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Crash between spec write and journal create — start fresh.
		j, err = campaign.CreateJournal(path, hdr)
		js = &campaign.JournalState{Header: hdr}
	case errors.Is(err, campaign.ErrJournalNoHeader):
		// Crash between journal create and its header write: the file is
		// empty (or a torn header line), so nothing is lost by redoing it.
		j, err = campaign.CreateJournal(path, hdr, campaign.Force())
		js = &campaign.JournalState{Header: hdr}
	}
	if err != nil {
		h.Close()
		return err
	}
	cs.handle, cs.j, cs.js, cs.hdr = h, j, js, hdr
	cs.strategy = strategy
	cs.samples = len(js.Results)
	cs.quarantined = js.Quarantined
	return nil
}

// releaseLocked closes a campaign's admission resources (journal lock
// and source handle). Safe to call twice.
func (cs *campState) releaseLocked() error {
	var err error
	if cs.j != nil {
		err = cs.j.Close()
		cs.j = nil
	}
	if cs.handle != nil {
		if cerr := cs.handle.Close(); err == nil {
			err = cerr
		}
		cs.handle = nil
	}
	cs.js = nil
	return err
}

// Submit admits a new campaign and queues it. The journal is created
// (refusing to overwrite any existing one) and its exclusive lock held
// from this moment, so a duplicate id — in this coordinator or any other
// process — fails here, not mid-run.
func (c *Coordinator) Submit(spec Spec) (Status, error) {
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Status{}, ErrClosed
	}
	if _, ok := c.campaigns[spec.ID]; ok {
		return Status{}, fmt.Errorf("%w: %s", ErrCampaignExists, spec.ID)
	}
	if _, err := os.Stat(c.specPath(spec.ID)); err == nil {
		return Status{}, fmt.Errorf("%w: %s", ErrCampaignExists, spec.ID)
	}
	cs := &campState{
		spec:    spec,
		created: time.Now().Unix(),
		state:   StateQueued,
		testbed: c.cfg.Source.Testbed(),
	}
	// Spec before journal: a crash in between recovers as "spec with no
	// journal", which admission starts fresh — never the reverse, an
	// orphan journal no spec accounts for.
	if err := c.writeSpec(specFile{Format: 1, Spec: spec, CreatedUnix: cs.created}); err != nil {
		return Status{}, err
	}
	if err := c.admit(cs); err != nil {
		os.Remove(c.specPath(spec.ID))
		return Status{}, err
	}
	c.campaigns[spec.ID] = cs
	c.queue = append(c.queue, spec.ID)
	c.cfg.Metrics.submitted()
	c.logf("submitted %s (%s seed=%d)", spec.ID, spec.Benchmark, spec.Seed)
	c.kickLocked()
	c.updateGaugesLocked()
	return c.statusLocked(cs), nil
}

// kickLocked starts queued campaigns while slots are free.
func (c *Coordinator) kickLocked() {
	for !c.closed && c.running < c.cfg.MaxConcurrent && len(c.queue) > 0 {
		id := c.queue[0]
		c.queue = c.queue[1:]
		cs, ok := c.campaigns[id]
		if !ok || cs.state != StateQueued {
			continue
		}
		ctx, cancel := context.WithCancel(c.rootCtx)
		cs.state = StateRunning
		cs.cancel = cancel
		cs.pending = ""
		c.running++
		c.cfg.Metrics.started()
		c.wg.Add(1)
		go c.run(cs, ctx)
	}
}

// roundSink feeds a campaign's live status from the engine's per-round
// events. It observes only — journal bytes are identical with it on or
// off (the engine guarantees that for every sink).
type roundSink struct {
	c  *Coordinator
	cs *campState
}

func (s roundSink) Emit(e obs.Event) {
	if e.Name != "round" {
		return
	}
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	cs := s.cs
	if v, ok := e.Field("samples").(int); ok {
		cs.samples = v
	}
	if v, ok := e.Field("best").(float64); ok {
		cs.best = v
	}
	if v, ok := e.Field("upb").(float64); ok {
		cs.upb = fin(v)
	}
	if v, ok := e.Field("upb_lo").(float64); ok {
		cs.upbLo = fin(v)
	}
	if v, ok := e.Field("upb_hi").(float64); ok {
		cs.upbHi = fin(v)
	}
	if v, ok := e.Field("headroom_hi_pct").(float64); ok {
		cs.gapPct = fin(v)
	}
	if v, ok := e.Field("quarantined").(int); ok {
		cs.quarantined = v
	}
}

// fin clamps non-finite values (an unbounded tail's +Inf upper bound) to
// zero: JSON cannot carry them and the table refuses them; zero reads as
// "no bound yet" everywhere they surface.
func fin(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// run executes one campaign to a boundary: completion, budget
// exhaustion, pause, cancel, shutdown or failure.
func (c *Coordinator) run(cs *campState, ctx context.Context) {
	defer c.wg.Done()

	c.mu.Lock()
	spec := cs.spec
	hdr := cs.hdr
	js := cs.js
	j := cs.j
	runner := cs.handle.Runner()
	c.mu.Unlock()

	cfg := core.IterConfig{
		Topo:          hdr.Topo,
		Tasks:         hdr.Tasks,
		AcceptLossPct: spec.LossPct,
		Ninit:         spec.Ninit,
		Ndelta:        spec.Ndelta,
		MaxSamples:    spec.MaxSamples,
		Seed:          spec.Seed,
		Events:        roundSink{c: c, cs: cs},
	}
	if js.Draws > 0 {
		cfg.Resume = js.Results
		cfg.ResumeDraws = js.Draws
		cfg.ResumeLog = js.Log
	}
	if hdr.Strategy != "" {
		params, err := search.ParseParams(spec.StrategyParams)
		if err != nil {
			c.finish(cs, nil, err)
			return
		}
		cfg.Strategy, err = search.New(spec.Strategy, params, nil)
		if err != nil {
			c.finish(cs, nil, err)
			return
		}
	}
	ckptPath := campaign.EstimatorCheckpointPath(c.JournalPath(spec.ID))
	ckpt, err := campaign.LoadEstimatorCheckpoint(ckptPath)
	if err != nil {
		c.finish(cs, nil, err)
		return
	}
	cfg.StreamCheckpoint = ckpt
	cfg.OnRefit = func(st evt.StreamState) error {
		return campaign.SaveEstimatorCheckpoint(ckptPath, st)
	}

	// Serial measurement through the journal middleware: the same stack
	// as a standalone `optassign -journal` run, so journal bytes match a
	// standalone run byte for byte.
	res, err := core.IterateContext(ctx, cfg, campaign.JournalRunner{Journal: j, Runner: runner})
	if err != nil && !errors.Is(err, core.ErrBudgetExhausted) && ctx.Err() != nil {
		// The coordinator tore this run down (pause, cancel or shutdown).
		// A remote measurement stream collapsing under the cancellation
		// surfaces transport errors rather than context.Canceled; they are
		// byproducts of the teardown, not failures — the journal holds
		// every committed draw, so classify by the pending transition.
		err = context.Canceled
	}
	c.finish(cs, &res, err)
}

// finish settles a run's outcome and frees its slot.
func (c *Coordinator) finish(cs *campState, res *core.IterResult, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rerr := cs.releaseLocked(); rerr != nil && err == nil {
		err = rerr
	}
	cs.cancel = nil
	c.running--

	switch {
	case err == nil || errors.Is(err, core.ErrBudgetExhausted):
		if perr := c.promoteLocked(cs, StateCompleted, res); perr != nil {
			cs.state = StateFailed
			cs.errText = perr.Error()
			c.logf("campaign %s: completed but promotion failed: %v", cs.spec.ID, perr)
			break
		}
		c.logf("campaign %s: completed (n=%d satisfied=%v)", cs.spec.ID, cs.samples, cs.satisfied)
	case errors.Is(err, context.Canceled):
		switch cs.pending {
		case StatePaused:
			cs.state = StatePaused
			c.logf("campaign %s: paused at n=%d", cs.spec.ID, cs.samples)
		case StateCancelled:
			if perr := c.promoteLocked(cs, StateCancelled, res); perr != nil {
				cs.state = StateFailed
				cs.errText = perr.Error()
				break
			}
			c.logf("campaign %s: cancelled at n=%d", cs.spec.ID, cs.samples)
		default:
			// Coordinator shutdown: the campaign goes back to queued so a
			// restart re-admits it from the journal.
			cs.state = StateQueued
			c.logf("campaign %s: stopped at n=%d, will resume on restart", cs.spec.ID, cs.samples)
		}
	default:
		cs.state = StateFailed
		cs.errText = err.Error()
		c.cfg.Metrics.failed()
		c.logf("campaign %s: failed: %v", cs.spec.ID, err)
	}
	cs.pending = ""
	c.kickLocked()
	c.updateGaugesLocked()
}

// promoteLocked writes a campaign's terminal row into the table and
// commits it. The fsynced row is the durable terminal marker: it lands
// before the in-memory state flips, so a crash anywhere in this window
// re-runs the (idempotent) promotion, never loses it.
func (c *Coordinator) promoteLocked(cs *campState, status State, res *core.IterResult) error {
	cs.finished = time.Now().Unix()
	if res != nil {
		cs.samples = res.Samples
		cs.quarantined = len(res.Quarantined)
		cs.best = res.Best.Perf
		cs.upb = fin(res.Final.Optimal)
		cs.upbLo = fin(res.Final.Lo)
		cs.upbHi = fin(res.Final.Hi)
		cs.gapPct = fin(res.Final.HeadroomHiPct)
		cs.satisfied = res.Satisfied
	}
	err := c.table.Insert(
		cs.spec.ID, cs.spec.Benchmark, cs.testbed, cs.strategy, string(status),
		cs.spec.Seed, int64(cs.hdr.Tasks), int64(cs.samples), int64(cs.quarantined),
		cs.spec.LossPct, cs.best, cs.upb, cs.upbLo, cs.upbHi, cs.gapPct,
		cs.satisfied, cs.created, cs.finished,
	)
	if err == nil {
		err = c.table.Commit()
	}
	if err != nil {
		return err
	}
	cs.state = status
	c.cfg.Metrics.promoted()
	return nil
}

// Pause stops a queued or running campaign at the next measurement
// boundary and records the pause durably, so it stays paused across
// coordinator restarts until explicitly resumed.
func (c *Coordinator) Pause(id string) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	switch cs.state {
	case StateQueued:
		if err := c.writeSpec(specFile{Format: 1, Spec: cs.spec, Paused: true, CreatedUnix: cs.created}); err != nil {
			return Status{}, err
		}
		c.dropFromQueueLocked(id)
		cs.releaseLocked()
		cs.state = StatePaused
	case StateRunning:
		if err := c.writeSpec(specFile{Format: 1, Spec: cs.spec, Paused: true, CreatedUnix: cs.created}); err != nil {
			return Status{}, err
		}
		cs.pending = StatePaused
		cs.cancel()
		// The run loop flips the state when the engine stops; report the
		// requested state now.
	default:
		return Status{}, fmt.Errorf("%w: %s is %s", ErrWrongState, id, cs.state)
	}
	c.updateGaugesLocked()
	st := c.statusLocked(cs)
	st.State = StatePaused
	return st, nil
}

// Resume re-admits a paused or failed campaign and queues it.
func (c *Coordinator) Resume(id string) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Status{}, ErrClosed
	}
	cs, ok := c.campaigns[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	if cs.state != StatePaused && cs.state != StateFailed {
		return Status{}, fmt.Errorf("%w: %s is %s", ErrWrongState, id, cs.state)
	}
	if err := c.writeSpec(specFile{Format: 1, Spec: cs.spec, CreatedUnix: cs.created}); err != nil {
		return Status{}, err
	}
	if err := c.admit(cs); err != nil {
		return Status{}, err
	}
	cs.state = StateQueued
	cs.errText = ""
	c.queue = append(c.queue, id)
	c.logf("resumed %s with %d measurements journaled", id, cs.js.Draws)
	c.kickLocked()
	c.updateGaugesLocked()
	return c.statusLocked(cs), nil
}

// Cancel terminates a campaign. Its journal stays on disk (the raw
// evidence is never destroyed), and a cancelled row is promoted into the
// table so the cancellation is terminal across restarts.
func (c *Coordinator) Cancel(id string) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	switch cs.state {
	case StateQueued:
		c.dropFromQueueLocked(id)
		cs.releaseLocked()
		if err := c.promoteLocked(cs, StateCancelled, nil); err != nil {
			return Status{}, err
		}
	case StatePaused, StateFailed:
		if err := c.promoteLocked(cs, StateCancelled, nil); err != nil {
			return Status{}, err
		}
	case StateRunning:
		cs.pending = StateCancelled
		cs.cancel()
	default:
		return Status{}, fmt.Errorf("%w: %s is %s", ErrWrongState, id, cs.state)
	}
	c.updateGaugesLocked()
	st := c.statusLocked(cs)
	st.State = StateCancelled
	return st, nil
}

func (c *Coordinator) dropFromQueueLocked(id string) {
	for i, q := range c.queue {
		if q == id {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// Status returns one campaign's current state.
func (c *Coordinator) Status(id string) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.campaigns[id]
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownCampaign, id)
	}
	return c.statusLocked(cs), nil
}

func (c *Coordinator) statusLocked(cs *campState) Status {
	return Status{
		ID:           cs.spec.ID,
		Benchmark:    cs.spec.Benchmark,
		Testbed:      cs.testbed,
		State:        cs.state,
		Strategy:     cs.strategy,
		Seed:         cs.spec.Seed,
		Tasks:        cs.hdr.Tasks,
		Samples:      cs.samples,
		Quarantined:  cs.quarantined,
		Best:         cs.best,
		UPB:          cs.upb,
		UPBLo:        cs.upbLo,
		UPBHi:        cs.upbHi,
		GapPct:       cs.gapPct,
		Satisfied:    cs.satisfied,
		CreatedUnix:  cs.created,
		FinishedUnix: cs.finished,
		Err:          cs.errText,
	}
}

// List returns every campaign's status, oldest first, optionally
// filtered by state and/or benchmark.
func (c *Coordinator) List(state State, benchmark string) []Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Status
	for _, cs := range c.campaigns {
		if state != "" && cs.state != state {
			continue
		}
		if benchmark != "" && cs.spec.Benchmark != benchmark {
			continue
		}
		out = append(out, c.statusLocked(cs))
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].CreatedUnix != out[k].CreatedUnix {
			return out[i].CreatedUnix < out[k].CreatedUnix
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// QueryResult is one promoted row keyed by column name.
type QueryResult map[string]any

// Query evaluates a predicate expression (see table.ParseFilter) over
// the promoted-campaigns table and returns the matching rows. It touches
// only the table's in-memory rows and indexes — no journal is opened.
func (c *Coordinator) Query(expr string) ([]QueryResult, error) {
	f, err := table.ParseFilter(expr, c.table.Schema())
	if err != nil {
		return nil, err
	}
	ids := c.table.Select(f)
	s := c.table.Schema()
	out := make([]QueryResult, 0, len(ids))
	for _, id := range ids {
		row := c.table.Get(id)
		qr := make(QueryResult, len(s.Columns))
		for i, col := range s.Columns {
			qr[col.Name] = row[i]
		}
		out = append(out, qr)
	}
	return out, nil
}

// TableLen reports the number of promoted rows.
func (c *Coordinator) TableLen() int { return c.table.Len() }

// Wait blocks until every queued and running campaign has settled
// (terminal, paused or failed). Intended for tests and batch drivers.
func (c *Coordinator) Wait(ctx context.Context) error {
	for {
		c.mu.Lock()
		busy := c.running > 0 || len(c.queue) > 0
		c.mu.Unlock()
		if !busy {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Close stops the coordinator: running campaigns stop at their next
// measurement boundary (journals keep everything completed; the specs
// stay un-paused so a restart auto-resumes them), resources release, and
// the table closes. The data directory is left ready for the next Open.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.rootCancel()
	c.wg.Wait()

	c.mu.Lock()
	// Queued campaigns still hold their admission resources.
	for _, cs := range c.campaigns {
		cs.releaseLocked()
	}
	c.queue = nil
	c.mu.Unlock()
	return c.table.Close()
}
