package campaign

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/t2"
)

func sampleCampaign(t *testing.T, n int) *Campaign {
	t.Helper()
	topo := t2.UltraSPARCT2()
	c := New("IPFwd-L1", topo, 7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		a, err := assign.RandomPermutation(rng, topo, 24)
		if err != nil {
			t.Fatal(err)
		}
		c.Add(a, 1e6+float64(i))
	}
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := sampleCampaign(t, 50)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Header != c.Header {
		t.Errorf("header %+v != %+v", loaded.Header, c.Header)
	}
	if loaded.Len() != 50 {
		t.Fatalf("records = %d", loaded.Len())
	}
	for i := range c.Records {
		if loaded.Records[i].Perf != c.Records[i].Perf {
			t.Fatalf("record %d perf differs", i)
		}
		for j := range c.Records[i].Ctx {
			if loaded.Records[i].Ctx[j] != c.Records[i].Ctx[j] {
				t.Fatalf("record %d ctx differs", i)
			}
		}
	}
}

func TestResultsAndPerfs(t *testing.T) {
	c := sampleCampaign(t, 10)
	rs := c.Results()
	if len(rs) != 10 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if err := r.Assignment.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	ps := c.Perfs()
	if len(ps) != 10 || ps[3] != 1e6+3 {
		t.Errorf("perfs = %v", ps[:4])
	}
	// Mutating a result must not corrupt the campaign.
	rs[0].Assignment.Ctx[0] = 63
	if c.Records[0].Ctx[0] == 63 && rs[0].Assignment.Ctx[0] == c.Records[0].Ctx[0] {
		t.Error("Results shares backing arrays with the campaign")
	}
}

func TestAddResults(t *testing.T) {
	topo := t2.UltraSPARCT2()
	c := New("x", topo, 1)
	rng := rand.New(rand.NewSource(2))
	a, err := assign.RandomPermutation(rng, topo, 6)
	if err != nil {
		t.Fatal(err)
	}
	c.AddResults([]core.SampleResult{{Assignment: a, Perf: 5}})
	if c.Len() != 1 || c.Records[0].Perf != 5 {
		t.Errorf("campaign: %+v", c.Records)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := sampleCampaign(t, 3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *c
	bad.Records = append([]Record(nil), c.Records...)
	bad.Records[1] = Record{Perf: 1, Ctx: []int{0, 0}}
	if err := bad.Validate(); err == nil {
		t.Error("colliding record accepted")
	}
	bad.Records[1] = Record{Perf: -1, Ctx: []int{0, 1}}
	if err := bad.Validate(); err == nil {
		t.Error("negative perf accepted")
	}
	bad2 := *c
	bad2.Header.Format = 99
	if err := bad2.Validate(); err == nil {
		t.Error("unknown format accepted")
	}
	bad3 := *c
	bad3.Header.Topo = t2.Topology{}
	if err := bad3.Validate(); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"format":1,"topology":{"Cores":8,"PipesPerCore":2,"ContextsPerPipe":4}}` + "\n" + `{"perf":1,"ctx":[0,0]}` + "\n")); err == nil {
		t.Error("invalid record accepted")
	}
	if _, err := Load(strings.NewReader(`{"format":1,"topology":{"Cores":8,"PipesPerCore":2,"ContextsPerPipe":4}}` + "\ngarbage\n")); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestMerge(t *testing.T) {
	a := sampleCampaign(t, 5)
	b := sampleCampaign(t, 7)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 12 {
		t.Errorf("merged = %d", m.Len())
	}
	// Topology mismatch.
	other := New("x", t2.Topology{Cores: 1, PipesPerCore: 1, ContextsPerPipe: 8}, 0)
	if _, err := Merge(a, other); err == nil {
		t.Error("topology mismatch accepted")
	}
	// Benchmark mismatch.
	c2 := sampleCampaign(t, 1)
	c2.Header.Benchmark = "Stateful"
	if _, err := Merge(a, c2); err == nil {
		t.Error("benchmark mismatch accepted")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestReadValues(t *testing.T) {
	in := "1.5 2.5\n# comment\n3.5 # trailing\n\n4\n"
	vals, err := ReadValues(strings.NewReader(in), "test")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, 3.5, 4}
	if len(vals) != len(want) {
		t.Fatalf("vals = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	if _, err := ReadValues(strings.NewReader("1.5 oops"), "test"); err == nil {
		t.Error("non-number accepted")
	}
}
