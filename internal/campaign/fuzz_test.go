package campaign

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/t2"
)

// FuzzLoad ensures arbitrary campaign files never panic the loader and
// that everything it accepts re-validates and round-trips.
func FuzzLoad(f *testing.F) {
	topo := t2.UltraSPARCT2()
	c := New("IPFwd-L1", topo, 1)
	rng := rand.New(rand.NewSource(1))
	a, err := assign.RandomPermutation(rng, topo, 6)
	if err != nil {
		f.Fatal(err)
	}
	c.Add(a, 1e6)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{}")
	f.Add(`{"format":1,"topology":{"Cores":8,"PipesPerCore":2,"ContextsPerPipe":4}}` + "\n" + `{"perf":-1,"ctx":[0]}`)

	f.Fuzz(func(t *testing.T, input string) {
		loaded, err := Load(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := loaded.Validate(); err != nil {
			t.Errorf("Load accepted a campaign that fails Validate: %v", err)
		}
		var out bytes.Buffer
		if err := loaded.Save(&out); err != nil {
			t.Errorf("accepted campaign failed to save: %v", err)
			return
		}
		again, err := Load(&out)
		if err != nil {
			t.Errorf("round trip failed: %v", err)
			return
		}
		if again.Len() != loaded.Len() {
			t.Errorf("round trip changed record count: %d -> %d", loaded.Len(), again.Len())
		}
	})
}

// FuzzReadValues ensures the bare-numbers parser never panics and that
// accepted inputs yield only finite values.
func FuzzReadValues(f *testing.F) {
	f.Add("1.5 2.5\n# c\n3\n")
	f.Add("")
	f.Add("nan")
	f.Fuzz(func(t *testing.T, input string) {
		vals, err := ReadValues(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		_ = vals
	})
}
