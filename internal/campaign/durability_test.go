package campaign

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"optassign/internal/evt"
)

// TestCreateJournalRefusesOverwrite is the truncate-on-rerun regression:
// re-running a journaled campaign without -resume used to os.Create the
// journal and silently destroy every measurement in it. A create against
// an existing journal must now fail with ErrJournalExists and leave the
// file untouched; only the explicit Force option may overwrite.
func TestCreateJournalRefusesOverwrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	as := drawN(t, 9, 3)
	for i, a := range as {
		if err := j.Append(a, float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := CreateJournal(path, journalHeader()); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("CreateJournal over an existing journal: err = %v, want ErrJournalExists", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("refused create modified the journal")
	}

	// Force is the explicit opt-in: the journal is truncated and restarted.
	j2, err := CreateJournal(path, journalHeader(), Force())
	if err != nil {
		t.Fatalf("CreateJournal(Force): %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Draws != 0 {
		t.Fatalf("forced journal kept %d old draws", st.Draws)
	}
}

// TestJournalExclusiveLock is the double-resume regression: nothing used
// to stop two processes from appending to one journal, interleaving
// entries and corrupting the sequence. The journal now holds an exclusive
// flock from open to Close; a second opener — resume or forced create —
// gets the typed ErrJournalBusy (the coordinator's HTTP 409).
func TestJournalExclusiveLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(drawN(t, 9, 1)[0], 42); err != nil {
		t.Fatal(err)
	}

	// The creator still holds the journal: every second opener is refused.
	if _, _, err := ResumeJournal(path, journalHeader()); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("ResumeJournal while open: err = %v, want ErrJournalBusy", err)
	}
	if _, err := CreateJournal(path, journalHeader(), Force()); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("CreateJournal(Force) while open: err = %v, want ErrJournalBusy", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Close released the lock: one resume succeeds, a concurrent second
	// one is refused until the first closes.
	j2, st, err := ResumeJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	if st.Draws != 1 {
		t.Fatalf("resumed state has %d draws, want 1", st.Draws)
	}
	if _, _, err := ResumeJournal(path, journalHeader()); !errors.Is(err, ErrJournalBusy) {
		t.Fatalf("second concurrent resume: err = %v, want ErrJournalBusy", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, _, err := ResumeJournal(path, journalHeader())
	if err != nil {
		t.Fatalf("resume after release: %v", err)
	}
	j3.Close()
}

// TestLoadJournalMemoryCeiling is the O(total-bytes) regression: the
// loader used to slurp the whole file with os.ReadFile, so scanning a
// large journal cost its full size in transient memory. The streaming
// parser's footprint tracks the parsed entries instead. Blank padding
// lines — legal journal content the parser skips — decouple file size
// from entry count, so the bound fails against a slurping loader (≥32
// MiB allocated) and passes with a fixed-size read buffer.
func TestLoadJournalMemoryCeiling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	as := drawN(t, 9, 50)
	for i, a := range as {
		if err := j.Append(a, float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	pad := bytes.Repeat([]byte{'\n'}, 1<<20)
	for i := 0; i < 32; i++ {
		if _, err := f.Write(pad); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	st, err := LoadJournal(path)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if st.Draws != 50 || len(st.Results) != 50 || st.Truncated {
		t.Fatalf("padded journal misparsed: draws=%d results=%d truncated=%v", st.Draws, len(st.Results), st.Truncated)
	}
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 8<<20 {
		t.Errorf("LoadJournal of a 32 MiB journal allocated %d bytes, want < 8 MiB (loader is not streaming)", alloc)
	}
}

// TestLoadJournalSpillsLongLines exercises the reassembly path for
// entries longer than the stream parser's read buffer (a quarantine
// error message can be arbitrarily long).
func TestLoadJournalSpillsLongLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "long.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	as := drawN(t, 9, 2)
	if err := j.AppendFailure(as[0], errors.New(strings.Repeat("x", 200<<10))); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(as[1], 7); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Draws != 2 || st.Quarantined != 1 || len(st.Results) != 1 || st.Results[0].Perf != 7 {
		t.Fatalf("long-line journal misparsed: %+v", st)
	}

	// The resume path shares the parser: it must recover the same state
	// and keep appending after the oversized line.
	j2, st2, err := ResumeJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Draws != 2 {
		t.Fatalf("resumed draws = %d, want 2", st2.Draws)
	}
	if err := j2.Append(drawN(t, 9, 3)[2], 9); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err = LoadJournal(path); err != nil || st.Draws != 3 {
		t.Fatalf("after append: draws=%d err=%v", st.Draws, err)
	}
}

// TestLoadJournalNoHeaderTyped pins the typed error for a journal whose
// header never hit the disk (crash between create and the header write):
// the coordinator recreates such journals instead of failing the
// campaign.
func TestLoadJournalNoHeaderTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.journal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); !errors.Is(err, ErrJournalNoHeader) {
		t.Fatalf("empty file: err = %v, want ErrJournalNoHeader", err)
	}
	// A torn (unterminated) header line is the same condition.
	if err := os.WriteFile(path, []byte(`{"format":1,"to`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); !errors.Is(err, ErrJournalNoHeader) {
		t.Fatalf("torn header: err = %v, want ErrJournalNoHeader", err)
	}
}

// TestSaveEstimatorCheckpointDurable covers the rename-durability fix:
// the save must survive its own directory sync (a missing parent is a
// clean error, not a torn checkpoint) and the installed checkpoint must
// round-trip.
func TestSaveEstimatorCheckpointDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.journal.estimator")
	st := evt.StreamState{N: 3, Hash: "h3", Best: 9}
	if err := SaveEstimatorCheckpoint(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEstimatorCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.N != 3 || got.Hash != "h3" || got.Best != 9 {
		t.Fatalf("checkpoint round-trip = %+v", got)
	}
	if err := SaveEstimatorCheckpoint(filepath.Join(dir, "missing", "x.estimator"), st); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}
