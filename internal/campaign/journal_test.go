package campaign

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/t2"
)

func journalHeader() JournalHeader {
	return JournalHeader{Benchmark: "sim", Topo: t2.UltraSPARCT2(), Tasks: 6, Seed: 9}
}

func drawN(t *testing.T, seed int64, n int) []assign.Assignment {
	t.Helper()
	h := journalHeader()
	as, err := assign.Sample(rand.New(rand.NewSource(seed)), h.Topo, h.Tasks, n)
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	as := drawN(t, 9, 5)
	for i, a := range as {
		if i == 2 {
			if err := j.AppendFailure(a, errors.New("gave up")); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := j.Append(a, float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Len() != 5 {
		t.Errorf("Len = %d, want 5", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Truncated {
		t.Error("clean journal reported truncated")
	}
	if st.Draws != 5 || st.Quarantined != 1 || len(st.Results) != 4 {
		t.Fatalf("state = draws %d quarantined %d results %d", st.Draws, st.Quarantined, len(st.Results))
	}
	if st.Header != journalHeaderWithFormat() {
		t.Errorf("header = %+v", st.Header)
	}
	if c := st.Campaign(); c.Len() != 4 || c.Validate() != nil {
		t.Errorf("campaign conversion broken: len=%d err=%v", c.Len(), c.Validate())
	}
}

func journalHeaderWithFormat() JournalHeader {
	h := journalHeader()
	h.Format = JournalVersion
	return h
}

func TestJournalTornTailIsRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	as := drawN(t, 9, 3)
	for i, a := range as {
		if err := j.Append(a, float64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate a crash mid-append: a partial JSON fragment at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":4,"ctx":[1,`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Draws != 3 || len(st.Results) != 3 {
		t.Fatalf("state = %+v", st)
	}

	// Resume: the torn tail is cut, appends continue the sequence.
	j2, st2, err := ResumeJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Draws != 3 {
		t.Fatalf("resumed draws = %d", st2.Draws)
	}
	more := drawN(t, 10, 1)
	if err := j2.Append(more[0], 99); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	final, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if final.Truncated || final.Draws != 4 || len(final.Results) != 4 {
		t.Fatalf("final state = %+v", final)
	}
	if final.Results[3].Perf != 99 {
		t.Errorf("resumed entry lost: %+v", final.Results[3])
	}
}

func TestResumeJournalRejectsMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	cases := []struct {
		name   string
		mutate func(*JournalHeader)
	}{
		{"topology", func(h *JournalHeader) { h.Topo.Cores = 4 }},
		{"tasks", func(h *JournalHeader) { h.Tasks = 12 }},
		{"seed", func(h *JournalHeader) { h.Seed = 1234 }},
		{"benchmark", func(h *JournalHeader) { h.Benchmark = "other" }},
	}
	for _, tc := range cases {
		h := journalHeader()
		tc.mutate(&h)
		if _, _, err := ResumeJournal(path, h); err == nil {
			t.Errorf("%s mismatch accepted", tc.name)
		}
	}
	if j2, _, err := ResumeJournal(path, journalHeader()); err != nil {
		t.Errorf("matching resume rejected: %v", err)
	} else {
		j2.Close()
	}
}

func TestLoadJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	as := drawN(t, 9, 2)
	j.Append(as[0], 1)
	j.Append(as[1], 2)
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := []byte("garbage not json\n")
	lines := data
	// Replace the second line (first entry) with garbage.
	first := 0
	for i, b := range lines {
		if b == '\n' {
			first = i + 1
			break
		}
	}
	mut := append(append(append([]byte{}, lines[:first]...), corrupt...), lines[first:]...)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJournal(path); err == nil {
		t.Error("mid-file corruption accepted")
	}
}

// TestJournalResumeAfterSimulatedCrash drives the full workflow the CLI
// uses: a journaled campaign dies mid-run (context cancellation after k
// measurements), then a resumed campaign finishes the job measuring zero
// already-journaled assignments.
func TestJournalResumeAfterSimulatedCrash(t *testing.T) {
	h := journalHeader()
	perfOf := func(a assign.Assignment) float64 {
		s := 0.0
		for i, c := range a.Ctx {
			s += float64((c*17+i*3)%71) / 71
		}
		return 100 + 10*s
	}
	path := filepath.Join(t.TempDir(), "campaign.journal")

	// Phase 1: measure, crashing (via ctx) after 25 completions.
	j, err := CreateJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	completed := 0
	crashing := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if completed >= 25 {
			return 0, fmt.Errorf("crash point reached (should have been cancelled)")
		}
		completed++
		if completed == 25 {
			defer cancel() // "kill" the campaign after this measurement lands
		}
		return perfOf(a), nil
	})
	rng := rand.New(rand.NewSource(h.Seed))
	_, _, err = core.CollectSampleContext(ctx, rng, h.Topo, h.Tasks, 100, JournalRunner{Journal: j, Runner: crashing})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("crash phase err = %v", err)
	}
	j.Close()

	// Phase 2: resume. Count re-measured assignments against the journal.
	j2, st, err := ResumeJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 25 {
		t.Fatalf("recovered %d results, want 25", len(st.Results))
	}
	already := map[string]bool{}
	for _, r := range st.Results {
		already[fmt.Sprint(r.Assignment.Ctx)] = true
	}
	remeasured := 0
	resumedRunner := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if already[fmt.Sprint(a.Ctx)] {
			remeasured++
		}
		return perfOf(a), nil
	})
	rng2 := rand.New(rand.NewSource(h.Seed))
	if _, err := assign.Sample(rng2, h.Topo, h.Tasks, st.Draws); err != nil {
		t.Fatal(err)
	}
	rest, _, err := core.CollectSampleContext(context.Background(), rng2, h.Topo, h.Tasks, 100-st.Draws,
		JournalRunner{Journal: j2, Runner: resumedRunner})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if remeasured != 0 {
		t.Errorf("resumed campaign re-measured %d journaled assignments", remeasured)
	}
	if len(rest) != 75 {
		t.Fatalf("resumed campaign measured %d, want 75", len(rest))
	}

	// The union equals an uninterrupted run.
	full, _, err := core.CollectSampleContext(context.Background(),
		rand.New(rand.NewSource(h.Seed)), h.Topo, h.Tasks, 100,
		core.ContextRunnerFunc(func(_ context.Context, a assign.Assignment) (float64, error) { return perfOf(a), nil }))
	if err != nil {
		t.Fatal(err)
	}
	final, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Results) != len(full) {
		t.Fatalf("journaled %d, want %d", len(final.Results), len(full))
	}
	for i := range full {
		if final.Results[i].Perf != full[i].Perf {
			t.Fatalf("journaled measurement %d differs from uninterrupted run", i)
		}
	}
}

func TestJournalAppendRejectsNonFinitePerf(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	as := drawN(t, 9, 2)
	for _, perf := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := j.Append(as[0], perf)
		if err == nil {
			t.Fatalf("Append(%v) accepted", perf)
		}
		if !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("Append(%v) error %q does not name the cause", perf, err)
		}
	}
	// The rejected appends must not have consumed sequence numbers or torn
	// the file: the journal stays usable and loads cleanly.
	if err := j.Append(as[1], 42); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Draws != 1 || len(st.Results) != 1 || st.Results[0].Perf != 42 {
		t.Fatalf("state after rejected appends = %+v", st)
	}
}

func TestJournalZeroPerfIsExplicit(t *testing.T) {
	// perf = 0 is a legal measurement; with omitempty it vanished from the
	// JSON, making the entry indistinguishable from a malformed one by eye.
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := CreateJournal(path, journalHeader())
	if err != nil {
		t.Fatal(err)
	}
	a := drawN(t, 9, 1)[0]
	if err := j.Append(a, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"perf":0`) {
		t.Errorf("journal entry omits perf field:\n%s", data)
	}
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Results) != 1 || st.Results[0].Perf != 0 || st.Quarantined != 0 {
		t.Fatalf("zero-perf entry did not round-trip: %+v", st)
	}
}

func TestJournalRunnerJournalsQuarantines(t *testing.T) {
	h := journalHeader()
	path := filepath.Join(t.TempDir(), "q.journal")
	j, err := CreateJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	runner := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		return 0, fmt.Errorf("%w: dead strand", core.ErrQuarantined)
	})
	a := drawN(t, 9, 1)[0]
	if _, err := (JournalRunner{Journal: j, Runner: runner}).MeasureContext(context.Background(), a); !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("err = %v", err)
	}
	j.Close()
	st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 1 || st.Draws != 1 || len(st.Results) != 0 {
		t.Fatalf("state = %+v", st)
	}
}
