package campaign

// Crossover of -resume and -cache: a cached, journaled campaign killed
// mid-run and then resumed must finish with journal bytes identical to an
// uninterrupted uncached run — whether the resume reuses the warm cache
// object from the killed process, starts with a cold cache, drops the
// cache entirely, or moves to a worker pool. The cache sits below the
// journal, so its warm state must be invisible to the RNG fast-forward
// that replays the journaled prefix: a hit during replay that consumed or
// skipped a draw would shift every subsequent assignment.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"optassign/internal/core"
	"optassign/internal/obs"
)

func TestResumeCacheCrossover(t *testing.T) {
	const seed, killAt = 3, 57
	for _, withFaults := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%v", withFaults), func(t *testing.T) {
			baseline, baseRes, baseErr := runCacheEquivSerial(t, seed, withFaults)

			// Kill a cached serial campaign after killAt journal entries and
			// keep the now-warm cache object and its hit counter alive, as a
			// crashed-and-restarted-in-process supervisor would.
			killedPath := filepath.Join(t.TempDir(), "killed.journal")
			js, err := CreateJournal(killedPath, equivHeader(seed))
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			warmMetrics := core.NewCacheMetrics(reg)
			warmCache := core.NewCache(0, warmMetrics)
			stack := core.ContextRunner(JournalRunner{Journal: js, Runner: cacheEquivStack(withFaults, warmCache)})
			_, iterErr := core.IterateContext(context.Background(), equivConfig(seed),
				killSerialAfter(stack, js, killAt))
			if !errors.Is(iterErr, errKilled) {
				t.Fatalf("cached kill: err = %v", iterErr)
			}
			js.Close()
			killed, err := os.ReadFile(killedPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(baseline, killed) {
				t.Fatal("killed cached journal is not a prefix of the uncached baseline")
			}

			cases := []struct {
				name    string
				cache   func() *core.Cache
				workers int
				warm    bool
			}{
				{"warm-serial", func() *core.Cache { return warmCache }, 1, true},
				{"cold-serial", func() *core.Cache { return core.NewCache(0, nil) }, 1, false},
				{"uncached-serial", func() *core.Cache { return nil }, 1, false},
				{"warm-parallel4", func() *core.Cache { return warmCache }, 4, true},
				{"cold-parallel8", func() *core.Cache { return core.NewCache(0, nil) }, 8, false},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					// Every variant resumes its own copy of the killed journal.
					path := filepath.Join(t.TempDir(), "resume.journal")
					if err := os.WriteFile(path, killed, 0o644); err != nil {
						t.Fatal(err)
					}
					j, st, err := ResumeJournal(path, equivHeader(seed))
					if err != nil {
						t.Fatal(err)
					}
					if st.Draws != killAt {
						t.Fatalf("recovered %d draws, want %d", st.Draws, killAt)
					}
					cfg := equivConfig(seed)
					cfg.Resume = st.Results
					cfg.ResumeDraws = st.Draws

					hitsBefore := warmMetrics.Hits.Value()
					runner := cacheEquivStack(withFaults, tc.cache())
					var res core.IterResult
					var resumeErr error
					if tc.workers > 1 {
						pool, err := core.NewReplicatedPool(runner, tc.workers)
						if err != nil {
							t.Fatal(err)
						}
						res, resumeErr = core.IterateParallel(context.Background(), cfg, pool, j.Commit)
					} else {
						res, resumeErr = core.IterateContext(context.Background(), cfg,
							JournalRunner{Journal: j, Runner: runner})
					}
					if err := j.Close(); err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(resumeErr) != fmt.Sprint(baseErr) {
						t.Fatalf("resume error %v, uninterrupted baseline %v", resumeErr, baseErr)
					}
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(data, baseline) {
						t.Fatalf("resumed journal differs from uninterrupted uncached baseline:\nresumed %d bytes\nbaseline %d bytes",
							len(data), len(baseline))
					}
					if res.Samples != baseRes.Samples || !reflect.DeepEqual(res.Best, baseRes.Best) {
						t.Fatalf("result (%d, %v) differs from baseline (%d, %v)",
							res.Samples, res.Best, baseRes.Samples, baseRes.Best)
					}
					if tc.warm && warmMetrics.Hits.Value() == hitsBefore {
						t.Error("warm-cache resume recorded no new hits: warm-state was never exercised")
					}
				})
			}
		})
	}
}
