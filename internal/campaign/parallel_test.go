package campaign

// Journal-level equivalence: a parallel campaign's write-ahead journal
// must be byte-identical to a serial campaign's, including after a
// mid-campaign kill and -resume — that is what makes worker count a pure
// performance knob that operators can change (even between resumes)
// without invalidating anything.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/evt"
	"optassign/internal/faulty"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

func equivTopo() t2.Topology { return t2.Topology{Cores: 2, PipesPerCore: 2, ContextsPerPipe: 2} }

func equivPerf(a assign.Assignment) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", a.Ctx)
	return 1e6 * (1 + float64(h.Sum64()%1000)/1000)
}

// equivStack builds a measurement stack with order-independent injected
// faults: quarantines land in the journal as failures, deterministically.
func equivStack(withFaults bool) core.ContextRunner {
	base := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		return equivPerf(a), nil
	})
	if !withFaults {
		return base
	}
	inj := faulty.NewRunner(core.AsRunner(base), faulty.Config{
		Seed:            5,
		PermanentRate:   0.04,
		TransientRate:   0.15,
		KeyByAssignment: true,
	})
	return core.NewResilientRunner(inj, core.ResilientConfig{
		MaxAttempts: 2,
		BaseDelay:   time.Nanosecond,
		MaxDelay:    time.Microsecond,
	})
}

func equivConfig(seed int64) core.IterConfig {
	return core.IterConfig{
		Topo:          equivTopo(),
		Tasks:         3,
		AcceptLossPct: 8,
		Ninit:         100,
		Ndelta:        30,
		MaxSamples:    250,
		Seed:          seed,
		// Test campaigns are tiny; let the threshold scan keep enough
		// exceedances to fit a GPD at 100 samples.
		POT: evt.POTOptions{Threshold: evt.ThresholdOptions{MaxExceedFraction: 0.3}},
	}
}

func equivHeader(seed int64) JournalHeader {
	return JournalHeader{Benchmark: "equiv", Topo: equivTopo(), Tasks: 3, Seed: seed}
}

// runSerialJournaled runs the serial campaign with the PR-1 middleware
// journaling stack and returns the journal bytes.
func runSerialJournaled(t *testing.T, dir string, seed int64, withFaults bool) ([]byte, core.IterResult, error) {
	t.Helper()
	path := filepath.Join(dir, "serial.journal")
	j, err := CreateJournal(path, equivHeader(seed))
	if err != nil {
		t.Fatal(err)
	}
	res, iterErr := core.IterateContext(context.Background(), equivConfig(seed),
		JournalRunner{Journal: j, Runner: equivStack(withFaults)})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, res, iterErr
}

func TestParallelJournalMatchesSerial(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		for _, seed := range []int64{1, 12} {
			serialBytes, serialRes, serialErr := runSerialJournaled(t, t.TempDir(), seed, withFaults)
			for _, workers := range []int{1, 4, 16} {
				name := fmt.Sprintf("faults=%v-seed%d-workers%d", withFaults, seed, workers)
				t.Run(name, func(t *testing.T) {
					path := filepath.Join(t.TempDir(), "parallel.journal")
					j, err := CreateJournal(path, equivHeader(seed))
					if err != nil {
						t.Fatal(err)
					}
					pool, err := core.NewReplicatedPool(equivStack(withFaults), workers)
					if err != nil {
						t.Fatal(err)
					}
					res, iterErr := core.IterateParallel(context.Background(), equivConfig(seed), pool, j.Commit)
					if err := j.Close(); err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(iterErr) != fmt.Sprint(serialErr) {
						t.Fatalf("iterate error %v, serial %v", iterErr, serialErr)
					}
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(data, serialBytes) {
						t.Fatalf("parallel journal differs from serial:\nparallel %d bytes\nserial %d bytes",
							len(data), len(serialBytes))
					}
					if res.Samples != serialRes.Samples || !reflect.DeepEqual(res.Best, serialRes.Best) {
						t.Fatalf("result (%d, %v) differs from serial (%d, %v)",
							res.Samples, res.Best, serialRes.Samples, serialRes.Best)
					}
				})
			}
		}
	}
}

// equivStackInstrumented is equivStack with the resilient layer's events
// and metrics attached, for the instrumented-determinism test.
func equivStackInstrumented(withFaults bool, reg *obs.Registry, sink obs.EventSink) core.ContextRunner {
	base := core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		return equivPerf(a), nil
	})
	if !withFaults {
		return base
	}
	inj := faulty.NewRunner(core.AsRunner(base), faulty.Config{
		Seed:            5,
		PermanentRate:   0.04,
		TransientRate:   0.15,
		KeyByAssignment: true,
	})
	return core.NewResilientRunner(inj, core.ResilientConfig{
		MaxAttempts: 2,
		BaseDelay:   time.Nanosecond,
		MaxDelay:    time.Microsecond,
		Events:      sink,
		Metrics:     core.NewResilientMetrics(reg),
	})
}

// TestInstrumentedJournalMatchesUninstrumentedSerial is the
// zero-influence guarantee of internal/obs put to the proof: a campaign
// with every instrument attached — resilient, pool, journal and
// iteration metrics plus an event sink — writes the same journal bytes
// and returns the same result as a bare serial run, at every worker
// count.
func TestInstrumentedJournalMatchesUninstrumentedSerial(t *testing.T) {
	const seed = 12
	for _, withFaults := range []bool{false, true} {
		serialBytes, serialRes, serialErr := runSerialJournaled(t, t.TempDir(), seed, withFaults)
		for _, workers := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("faults=%v-workers%d", withFaults, workers), func(t *testing.T) {
				reg := obs.NewRegistry()
				sink := &obs.CollectorSink{}
				path := filepath.Join(t.TempDir(), "instrumented.journal")
				j, err := CreateJournal(path, equivHeader(seed))
				if err != nil {
					t.Fatal(err)
				}
				j.Instrument(NewJournalMetrics(reg))
				pool, err := core.NewReplicatedPool(equivStackInstrumented(withFaults, reg, sink), workers)
				if err != nil {
					t.Fatal(err)
				}
				pm := core.NewPoolMetrics(reg, workers)
				pool.Instrument(pm)
				cfg := equivConfig(seed)
				cfg.Events = sink
				cfg.Metrics = core.NewIterMetrics(reg)
				res, iterErr := core.IterateParallel(context.Background(), cfg, pool, j.Commit)
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(iterErr) != fmt.Sprint(serialErr) {
					t.Fatalf("iterate error %v, serial %v", iterErr, serialErr)
				}
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(data, serialBytes) {
					t.Fatalf("instrumented journal differs from bare serial:\ninstrumented %d bytes\nserial %d bytes",
						len(data), len(serialBytes))
				}
				if res.Samples != serialRes.Samples || !reflect.DeepEqual(res.Best, serialRes.Best) {
					t.Fatalf("result (%d, %v) differs from serial (%d, %v)",
						res.Samples, res.Best, serialRes.Samples, serialRes.Best)
				}
				// The instruments really watched the campaign — equality
				// must not come from instrumentation silently disabled.
				if sink.Count("round") == 0 {
					t.Error("no round events collected")
				}
				if got, want := pm.Committed.Value(), float64(res.Samples+len(res.Quarantined)); got != want {
					t.Errorf("committed counter = %v, want %v draws", got, want)
				}
				var expo bytes.Buffer
				if err := reg.WritePrometheus(&expo); err != nil {
					t.Fatal(err)
				}
				for _, series := range []string{
					"optassign_pool_committed_total",
					"optassign_journal_entries_total",
					"optassign_campaign_samples",
				} {
					if !bytes.Contains(expo.Bytes(), []byte(series)) {
						t.Errorf("exposition lacks %s", series)
					}
				}
			})
		}
	}
}

// errKilled simulates the process dying mid-campaign: the measurement
// source (serial) or the commit hook (parallel) starts failing after K
// completed journal entries, so both journals end as the same K-entry
// prefix — the crash signature -resume is built for.
var errKilled = errors.New("killed")

func killSerialAfter(inner core.ContextRunner, j *Journal, k int) core.ContextRunner {
	return core.ContextRunnerFunc(func(ctx context.Context, a assign.Assignment) (float64, error) {
		if j.Len() >= k {
			return 0, errKilled
		}
		return inner.MeasureContext(ctx, a)
	})
}

func (j *Journal) killCommitAfter(k int) core.CommitFunc {
	return func(a assign.Assignment, perf float64, err error) error {
		if j.Len() >= k {
			return errKilled
		}
		return j.Commit(a, perf, err)
	}
}

// TestParallelKillAndResumeMatchesSerial kills a serial and a parallel
// campaign after the same number of journaled draws, resumes each with the
// other execution mode, and requires the final journals and results to be
// identical — worker count may even change across a resume.
func TestParallelKillAndResumeMatchesSerial(t *testing.T) {
	const seed, killAt = 3, 57
	for _, withFaults := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%v", withFaults), func(t *testing.T) {
			dir := t.TempDir()

			// Serial campaign killed after killAt journal entries...
			serialPath := filepath.Join(dir, "serial.journal")
			js, err := CreateJournal(serialPath, equivHeader(seed))
			if err != nil {
				t.Fatal(err)
			}
			stack := core.ContextRunner(JournalRunner{Journal: js, Runner: equivStack(withFaults)})
			_, iterErr := core.IterateContext(context.Background(), equivConfig(seed),
				killSerialAfter(stack, js, killAt))
			if !errors.Is(iterErr, errKilled) {
				t.Fatalf("serial kill: err = %v", iterErr)
			}
			js.Close()

			// ...and a 16-worker parallel campaign killed at the same point.
			parallelPath := filepath.Join(dir, "parallel.journal")
			jp, err := CreateJournal(parallelPath, equivHeader(seed))
			if err != nil {
				t.Fatal(err)
			}
			pool16, err := core.NewReplicatedPool(equivStack(withFaults), 16)
			if err != nil {
				t.Fatal(err)
			}
			_, iterErr = core.IterateParallel(context.Background(), equivConfig(seed), pool16, jp.killCommitAfter(killAt))
			if !errors.Is(iterErr, errKilled) {
				t.Fatalf("parallel kill: err = %v", iterErr)
			}
			jp.Close()

			killedSerial, err := os.ReadFile(serialPath)
			if err != nil {
				t.Fatal(err)
			}
			killedParallel, err := os.ReadFile(parallelPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(killedSerial, killedParallel) {
				t.Fatal("killed journals differ: the parallel journal is not a draw-order prefix")
			}

			// Resume the serial journal with a 4-worker pool...
			resume := func(path string, parallelWorkers int) ([]byte, core.IterResult) {
				t.Helper()
				j, st, err := ResumeJournal(path, equivHeader(seed))
				if err != nil {
					t.Fatal(err)
				}
				if st.Draws != killAt {
					t.Fatalf("recovered %d draws, want %d", st.Draws, killAt)
				}
				cfg := equivConfig(seed)
				cfg.Resume = st.Results
				cfg.ResumeDraws = st.Draws
				var res core.IterResult
				var iterErr error
				if parallelWorkers > 0 {
					pool, err := core.NewReplicatedPool(equivStack(withFaults), parallelWorkers)
					if err != nil {
						t.Fatal(err)
					}
					res, iterErr = core.IterateParallel(context.Background(), cfg, pool, j.Commit)
				} else {
					res, iterErr = core.IterateContext(context.Background(), cfg,
						JournalRunner{Journal: j, Runner: equivStack(withFaults)})
				}
				if iterErr != nil && !errors.Is(iterErr, core.ErrBudgetExhausted) {
					t.Fatal(iterErr)
				}
				j.Close()
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				return data, res
			}
			serialResumed, serialRes := resume(serialPath, 4)
			parallelResumed, parallelRes := resume(parallelPath, 0)

			if !bytes.Equal(serialResumed, parallelResumed) {
				t.Fatal("resumed journals differ between execution modes")
			}
			if serialRes.Samples != parallelRes.Samples || !reflect.DeepEqual(serialRes.Best, parallelRes.Best) {
				t.Fatalf("resumed results differ: (%d, %v) vs (%d, %v)",
					serialRes.Samples, serialRes.Best, parallelRes.Samples, parallelRes.Best)
			}

			// Without faults a killed-and-resumed campaign is also
			// byte-identical to one that never died.
			if !withFaults {
				uninterrupted, _, err := runSerialJournaled(t, t.TempDir(), seed, false)
				if err != nil && !errors.Is(err, core.ErrBudgetExhausted) {
					t.Fatal(err)
				}
				if !bytes.Equal(serialResumed, uninterrupted) {
					t.Fatal("kill+resume journal differs from an uninterrupted run's")
				}
			}
		})
	}
}
