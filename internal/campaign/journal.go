package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"sync"
	"time"

	"optassign/internal/assign"
	"optassign/internal/cas"
	"optassign/internal/core"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// JournalVersion identifies the write-ahead journal's on-disk layout. It
// is versioned alongside FormatVersion but evolves independently: the
// journal is an execution log (it keeps quarantined failures and a draw
// count), the campaign file is the cleaned result.
const JournalVersion = 1

// JournalHeader is the journal's first JSON line: enough identity to
// refuse resuming against the wrong testbed or the wrong seed.
type JournalHeader struct {
	Format    int         `json:"format"`
	Benchmark string      `json:"benchmark,omitempty"`
	Topo      t2.Topology `json:"topology"`
	Tasks     int         `json:"tasks"`
	Seed      int64       `json:"seed,omitempty"`
	// Strategy is the search strategy's canonical spec (search.Spec):
	// name plus sorted parameters, e.g. "greedy(explore=0.1,init=200)".
	// The draw sequence is a deterministic function of (seed, strategy,
	// outcomes), so resuming under a different strategy would diverge
	// from the journaled draws — ResumeJournal refuses the mismatch. The
	// uniform baseline's spec is the empty string, which omitempty elides:
	// journals written before strategies existed parse as uniform and
	// uniform journals stay byte-identical to the historical format.
	Strategy string `json:"strategy,omitempty"`
}

// JournalEntry is one completed measurement attempt: a performance for a
// successful one, an error string for a quarantined one. Seq numbers the
// entries from 1 so a resumed run can fast-forward its RNG by exactly the
// draws the interrupted run consumed.
//
// Perf deliberately has no omitempty: a legitimate perf == 0 success
// must be journaled explicitly rather than silently eliding the field
// and making the entry read like a failure record missing its error.
// (Entries distinguish success from quarantine by Error alone, so old
// journals without the field still load.)
type JournalEntry struct {
	Seq   int     `json:"seq"`
	Ctx   []int   `json:"ctx"`
	Perf  float64 `json:"perf"`
	Error string  `json:"error,omitempty"`
}

// Journal is a write-ahead measurement log: every measurement is appended
// (and pushed to the OS) as it completes, so a killed campaign loses at
// most the measurement in flight. At ~1.5 s of testbed time per
// measurement (§5.4) that turns a crash from "lose 2 hours" into "lose
// 1.5 seconds". It is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	header  JournalHeader
	seq     int
	closed  bool
	metrics *JournalMetrics
}

// JournalMetrics observes the write-ahead journal: entries by kind,
// bytes persisted, and sync latency (the fsync cost an operator trades
// for power-loss safety). Constructed via NewJournalMetrics; a nil
// bundle disables recording per the internal/obs conventions.
type JournalMetrics struct {
	Successes   *obs.Counter
	Failures    *obs.Counter
	Bytes       *obs.Counter
	Syncs       *obs.Counter
	SyncSeconds *obs.Histogram
}

// NewJournalMetrics registers the journal series on r; a nil registry
// yields a nil bundle.
func NewJournalMetrics(r *obs.Registry) *JournalMetrics {
	if r == nil {
		return nil
	}
	return &JournalMetrics{
		Successes:   r.Counter("optassign_journal_entries_total", "Journaled measurements, by outcome.", obs.L("kind", "success")),
		Failures:    r.Counter("optassign_journal_entries_total", "Journaled measurements, by outcome.", obs.L("kind", "failure")),
		Bytes:       r.Counter("optassign_journal_bytes_total", "Bytes appended to the journal, header included."),
		Syncs:       r.Counter("optassign_journal_syncs_total", "Explicit syncs to stable storage."),
		SyncSeconds: r.Histogram("optassign_journal_sync_seconds", "Latency of journal syncs.", obs.DurationBuckets()),
	}
}

// Instrument attaches a metrics bundle to the journal. Instrumentation
// observes writes only — it never alters what bytes land in the file,
// keeping journals byte-identical with observability on or off.
func (j *Journal) Instrument(m *JournalMetrics) {
	j.mu.Lock()
	j.metrics = m
	j.mu.Unlock()
}

// ErrJournalExists reports a CreateJournal against a path that already
// holds a journal. Before this error existed, re-running a campaign
// command without -resume silently truncated the old journal — hours of
// measurements gone for a forgotten flag. Overwriting now requires the
// explicit Force option.
var ErrJournalExists = errors.New("campaign: journal already exists (resume it, or force overwrite)")

// ErrJournalBusy reports that another process (or another open handle in
// this one) holds the journal's exclusive lock. Two writers appending to
// one journal would interleave entries and corrupt the sequence, so the
// second opener is refused instead. The coordinator surfaces this as
// HTTP 409.
var ErrJournalBusy = errors.New("campaign: journal is in use by another process")

// CreateOption adjusts CreateJournal's behavior.
type CreateOption func(*createOptions)

type createOptions struct{ force bool }

// Force lets CreateJournal overwrite an existing journal. Without it a
// create against an existing path fails with ErrJournalExists. The
// truncation happens only after the exclusive lock is acquired, so even
// a forced create cannot destroy a journal another process is appending
// to — that fails with ErrJournalBusy instead.
func Force() CreateOption { return func(o *createOptions) { o.force = true } }

// CreateJournal starts a fresh journal at path and writes its header. An
// existing journal is never silently truncated: the create fails with
// ErrJournalExists unless the Force option is passed. The journal holds
// an exclusive flock until Close, so no concurrent process can append to
// (or force-recreate) the same file.
func CreateJournal(path string, h JournalHeader, opts ...CreateOption) (*Journal, error) {
	var o createOptions
	for _, opt := range opts {
		opt(&o)
	}
	h.Format = JournalVersion
	if err := h.Topo.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: journal header: %w", err)
	}
	flags := os.O_RDWR | os.O_CREATE | os.O_EXCL
	if o.force {
		// No O_TRUNC: the truncation must wait for the lock, or a forced
		// create could destroy a journal mid-append by a live process.
		flags = os.O_RDWR | os.O_CREATE
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if errors.Is(err, fs.ErrExist) {
		return nil, fmt.Errorf("%w: %s", ErrJournalExists, path)
	}
	if err != nil {
		return nil, err
	}
	if err := cas.TryLockEx(f); err != nil {
		f.Close()
		if errors.Is(err, cas.ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrJournalBusy, path)
		}
		return nil, fmt.Errorf("campaign: locking journal %s: %w", path, err)
	}
	if o.force {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign: truncating journal %s: %w", path, err)
		}
	}
	j := &Journal{f: f, header: h}
	if err := j.writeLine(h); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// ResumeJournal reopens an existing journal for appending: it takes the
// journal's exclusive lock (refusing with ErrJournalBusy if another
// process holds it), loads and verifies the journaled state against h
// (topology, task count, seed, and benchmark when both name one), then
// continues the sequence where the interrupted run stopped. The returned
// state is what the caller feeds to core.IterConfig.Resume / ResumeDraws.
func ResumeJournal(path string, h JournalHeader) (*Journal, *JournalState, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := cas.TryLockEx(f); err != nil {
		f.Close()
		if errors.Is(err, cas.ErrLocked) {
			return nil, nil, fmt.Errorf("%w: %s", ErrJournalBusy, path)
		}
		return nil, nil, fmt.Errorf("campaign: locking journal %s: %w", path, err)
	}
	// Load through the locked descriptor: no other process can append or
	// truncate between the load and our first append.
	st, err := loadJournal(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if st.Header.Topo != h.Topo {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: journal topology %v does not match testbed %v", st.Header.Topo, h.Topo)
	}
	if st.Header.Tasks != h.Tasks {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: journal has %d tasks, testbed runs %d", st.Header.Tasks, h.Tasks)
	}
	if st.Header.Seed != h.Seed {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: journal seed %d does not match campaign seed %d (resume would draw different assignments)", st.Header.Seed, h.Seed)
	}
	if st.Header.Benchmark != "" && h.Benchmark != "" && st.Header.Benchmark != h.Benchmark {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: journal benchmark %q does not match %q", st.Header.Benchmark, h.Benchmark)
	}
	if st.Header.Strategy != h.Strategy {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: journal strategy %q does not match campaign strategy %q (resume would draw different assignments)",
			st.Header.Strategy, h.Strategy)
	}
	if st.Truncated {
		// The crash left a partial final line; cut it off so the next
		// append starts on a fresh, well-formed line. O_APPEND writes
		// land at the new end of file.
		if err := f.Truncate(st.validBytes); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return &Journal{f: f, header: st.Header, seq: st.Draws}, st, nil
}

// Header returns the journal's identity line.
func (j *Journal) Header() JournalHeader { return j.header }

// Len returns how many entries have been journaled, including entries
// recovered by ResumeJournal.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Append journals one successful measurement. A non-finite perf is
// rejected up front with a clear error: encoding/json cannot represent
// NaN or ±Inf, and letting it fail mid-campaign surfaces as an opaque
// "unsupported value" encode error long after the bad measurement —
// whereas a testbed reporting a non-finite performance is the actual
// fault worth reporting.
func (j *Journal) Append(a assign.Assignment, perf float64) error {
	if math.IsNaN(perf) || math.IsInf(perf, 0) {
		return fmt.Errorf("campaign: journal: non-finite performance %v for %s (testbed fault?)", perf, a)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeLine(JournalEntry{Seq: j.seq + 1, Ctx: a.Ctx, Perf: perf})
}

// AppendFailure journals one quarantined measurement: the draw is
// consumed, the result is not usable.
func (j *Journal) AppendFailure(a assign.Assignment, measureErr error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	msg := "measurement failed"
	if measureErr != nil {
		msg = measureErr.Error()
	}
	return j.writeLine(JournalEntry{Seq: j.seq + 1, Ctx: a.Ctx, Error: msg})
}

// writeLine marshals v and appends it as one line. Callers hold j.mu
// (except construction). The write goes straight to the file descriptor —
// no userspace buffering — so a crashed process loses nothing that
// Append returned success for.
func (j *Journal) writeLine(v any) error {
	if j.closed {
		return errors.New("campaign: journal is closed")
	}
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: journal encode: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: journal write: %w", err)
	}
	if m := j.metrics; m != nil {
		m.Bytes.Add(float64(len(line) + 1))
		if e, ok := v.(JournalEntry); ok {
			if e.Error != "" {
				m.Failures.Inc()
			} else {
				m.Successes.Inc()
			}
		}
	}
	if e, ok := v.(JournalEntry); ok {
		j.seq = e.Seq
	}
	return nil
}

// Commit is the journal as a core.CommitFunc: successes are journaled via
// Append, quarantines via AppendFailure, anything else (a campaign
// cancellation, a fatal measurement error) is not journaled — the draw
// never completed and a resumed run re-executes it. Feed it to
// core.CollectSampleParallel / core.IterateParallel: the parallel fan-out
// commits in draw order, so the journal it produces is byte-identical to
// the one the serial JournalRunner middleware writes.
func (j *Journal) Commit(a assign.Assignment, perf float64, measureErr error) error {
	switch {
	case measureErr == nil:
		return j.Append(a, perf)
	case errors.Is(measureErr, core.ErrQuarantined):
		return j.AppendFailure(a, measureErr)
	}
	return nil
}

// Sync forces the journal down to stable storage (power-loss safety; a
// mere process crash never needs it).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := time.Time{}
	if j.metrics != nil {
		start = time.Now()
	}
	err := j.f.Sync()
	if m := j.metrics; m != nil {
		m.SyncSeconds.Observe(time.Since(start).Seconds())
		m.Syncs.Inc()
	}
	return err
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// JournalState is everything recovered from a journal file.
type JournalState struct {
	Header JournalHeader
	// Results are the successful measurements, in execution order —
	// ready for core.IterConfig.Resume.
	Results []core.SampleResult
	// Quarantined counts the journaled failures.
	Quarantined int
	// Log is every journaled draw in draw order, successes and
	// quarantines alike — core.IterConfig.ResumeLog. Outcome-driven
	// search strategies replay it to rebuild their state on resume.
	Log []core.ResumeDraw
	// Draws is the total number of assignment draws the journaled run
	// consumed (successes + quarantines) — core.IterConfig.ResumeDraws.
	Draws int
	// Truncated reports that the file ended in a partial line (the
	// process died mid-append); the fragment was ignored.
	Truncated bool
	// validBytes is the length of the well-formed prefix; ResumeJournal
	// truncates a torn file back to it before appending.
	validBytes int64
}

// ErrJournalNoHeader reports a journal file with no complete header line
// — typically a crash in the instants between creating the file and the
// header write reaching it. Nothing is lost (no measurement can precede
// the header); callers like the coordinator recreate such journals.
var ErrJournalNoHeader = errors.New("campaign: journal has no header")

// LoadJournal reads a journal written by Journal, tolerating a torn final
// line — the expected crash signature for a process killed mid-append.
// Corruption anywhere else is an error.
func LoadJournal(path string) (*JournalState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return loadJournal(f)
}

// loadJournal stream-parses a journal from r through a fixed-size read
// buffer: resident memory is proportional to the parsed entries, never to
// the file size, so a coordinator can scan thousands of journals at
// startup without O(total-bytes) memory. (The historical loader slurped
// the whole file with os.ReadFile and held it alongside the parsed
// state.) Torn-tail handling is unchanged: a final line without its
// newline is the crash signature, reported via Truncated and excluded
// from validBytes.
func loadJournal(r io.Reader) (*JournalState, error) {
	br := bufio.NewReaderSize(r, 64*1024)
	st := &JournalState{}
	var spill []byte // reassembles lines longer than the read buffer
	line := 0        // complete lines consumed; the header is line 1
	for {
		chunk, err := br.ReadSlice('\n')
		if errors.Is(err, bufio.ErrBufferFull) {
			spill = append(spill, chunk...)
			continue
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("campaign: reading journal: %w", err)
		}
		raw := chunk
		if len(spill) > 0 {
			spill = append(spill, chunk...)
			raw = spill
		}
		if err != nil {
			// EOF: anything unterminated is a torn tail — the process
			// died mid-append — and the fragment is ignored.
			st.Truncated = len(raw) > 0
			break
		}
		line++
		st.validBytes += int64(len(raw))
		content := raw[:len(raw)-1]
		switch {
		case line == 1:
			if err := json.Unmarshal(content, &st.Header); err != nil {
				return nil, fmt.Errorf("campaign: journal header: %w", err)
			}
			if st.Header.Format != JournalVersion {
				return nil, fmt.Errorf("campaign: unsupported journal format %d", st.Header.Format)
			}
			if err := st.Header.Topo.Validate(); err != nil {
				return nil, fmt.Errorf("campaign: journal header: %w", err)
			}
		case len(bytes.TrimSpace(content)) == 0:
		default:
			var e JournalEntry
			if err := json.Unmarshal(content, &e); err != nil {
				return nil, fmt.Errorf("campaign: journal entry %d: %w", line-1, err)
			}
			if e.Seq != st.Draws+1 {
				return nil, fmt.Errorf("campaign: journal entry %d: sequence %d, want %d", line-1, e.Seq, st.Draws+1)
			}
			st.Draws = e.Seq
			a := assign.Assignment{Topo: st.Header.Topo, Ctx: e.Ctx}
			if err := a.Validate(); err != nil {
				return nil, fmt.Errorf("campaign: journal entry %d: %w", line-1, err)
			}
			if e.Error != "" {
				st.Quarantined++
				st.Log = append(st.Log, core.ResumeDraw{Assignment: a, Quarantined: true})
			} else {
				st.Log = append(st.Log, core.ResumeDraw{Assignment: a, Perf: e.Perf})
				st.Results = append(st.Results, core.SampleResult{Assignment: a, Perf: e.Perf})
			}
		}
		spill = spill[:0]
	}
	if line == 0 {
		return nil, ErrJournalNoHeader
	}
	return st, nil
}

// Campaign converts the recovered measurements into a regular campaign
// (quarantined entries dropped), for the save/merge/analyze workflow.
func (s *JournalState) Campaign() *Campaign {
	c := New(s.Header.Benchmark, s.Header.Topo, s.Header.Seed)
	for _, r := range s.Results {
		c.Add(r.Assignment, r.Perf)
	}
	return c
}

// JournalRunner is a core.ContextRunner middleware that write-ahead logs
// every completed measurement: successes via Append, quarantines via
// AppendFailure. Campaign-cancellation errors are not journaled — the
// draw never completed and the resumed run will re-execute it.
type JournalRunner struct {
	Journal *Journal
	Runner  core.ContextRunner
}

// MeasureContext implements core.ContextRunner.
func (r JournalRunner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	perf, err := r.Runner.MeasureContext(ctx, a)
	switch {
	case err == nil:
		if jerr := r.Journal.Append(a, perf); jerr != nil {
			return 0, jerr
		}
	case errors.Is(err, core.ErrQuarantined):
		if jerr := r.Journal.AppendFailure(a, err); jerr != nil {
			return 0, jerr
		}
	}
	return perf, err
}

// Measure implements core.Runner with a background context.
func (r JournalRunner) Measure(a assign.Assignment) (float64, error) {
	return r.MeasureContext(context.Background(), a)
}
