package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"optassign/internal/assign"
	"optassign/internal/core"
	"optassign/internal/obs"
	"optassign/internal/t2"
)

// JournalVersion identifies the write-ahead journal's on-disk layout. It
// is versioned alongside FormatVersion but evolves independently: the
// journal is an execution log (it keeps quarantined failures and a draw
// count), the campaign file is the cleaned result.
const JournalVersion = 1

// JournalHeader is the journal's first JSON line: enough identity to
// refuse resuming against the wrong testbed or the wrong seed.
type JournalHeader struct {
	Format    int         `json:"format"`
	Benchmark string      `json:"benchmark,omitempty"`
	Topo      t2.Topology `json:"topology"`
	Tasks     int         `json:"tasks"`
	Seed      int64       `json:"seed,omitempty"`
	// Strategy is the search strategy's canonical spec (search.Spec):
	// name plus sorted parameters, e.g. "greedy(explore=0.1,init=200)".
	// The draw sequence is a deterministic function of (seed, strategy,
	// outcomes), so resuming under a different strategy would diverge
	// from the journaled draws — ResumeJournal refuses the mismatch. The
	// uniform baseline's spec is the empty string, which omitempty elides:
	// journals written before strategies existed parse as uniform and
	// uniform journals stay byte-identical to the historical format.
	Strategy string `json:"strategy,omitempty"`
}

// JournalEntry is one completed measurement attempt: a performance for a
// successful one, an error string for a quarantined one. Seq numbers the
// entries from 1 so a resumed run can fast-forward its RNG by exactly the
// draws the interrupted run consumed.
//
// Perf deliberately has no omitempty: a legitimate perf == 0 success
// must be journaled explicitly rather than silently eliding the field
// and making the entry read like a failure record missing its error.
// (Entries distinguish success from quarantine by Error alone, so old
// journals without the field still load.)
type JournalEntry struct {
	Seq   int     `json:"seq"`
	Ctx   []int   `json:"ctx"`
	Perf  float64 `json:"perf"`
	Error string  `json:"error,omitempty"`
}

// Journal is a write-ahead measurement log: every measurement is appended
// (and pushed to the OS) as it completes, so a killed campaign loses at
// most the measurement in flight. At ~1.5 s of testbed time per
// measurement (§5.4) that turns a crash from "lose 2 hours" into "lose
// 1.5 seconds". It is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	header  JournalHeader
	seq     int
	closed  bool
	metrics *JournalMetrics
}

// JournalMetrics observes the write-ahead journal: entries by kind,
// bytes persisted, and sync latency (the fsync cost an operator trades
// for power-loss safety). Constructed via NewJournalMetrics; a nil
// bundle disables recording per the internal/obs conventions.
type JournalMetrics struct {
	Successes   *obs.Counter
	Failures    *obs.Counter
	Bytes       *obs.Counter
	Syncs       *obs.Counter
	SyncSeconds *obs.Histogram
}

// NewJournalMetrics registers the journal series on r; a nil registry
// yields a nil bundle.
func NewJournalMetrics(r *obs.Registry) *JournalMetrics {
	if r == nil {
		return nil
	}
	return &JournalMetrics{
		Successes:   r.Counter("optassign_journal_entries_total", "Journaled measurements, by outcome.", obs.L("kind", "success")),
		Failures:    r.Counter("optassign_journal_entries_total", "Journaled measurements, by outcome.", obs.L("kind", "failure")),
		Bytes:       r.Counter("optassign_journal_bytes_total", "Bytes appended to the journal, header included."),
		Syncs:       r.Counter("optassign_journal_syncs_total", "Explicit syncs to stable storage."),
		SyncSeconds: r.Histogram("optassign_journal_sync_seconds", "Latency of journal syncs.", obs.DurationBuckets()),
	}
}

// Instrument attaches a metrics bundle to the journal. Instrumentation
// observes writes only — it never alters what bytes land in the file,
// keeping journals byte-identical with observability on or off.
func (j *Journal) Instrument(m *JournalMetrics) {
	j.mu.Lock()
	j.metrics = m
	j.mu.Unlock()
}

// CreateJournal starts a fresh journal at path (truncating any previous
// one) and writes its header.
func CreateJournal(path string, h JournalHeader) (*Journal, error) {
	h.Format = JournalVersion
	if err := h.Topo.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: journal header: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, header: h}
	if err := j.writeLine(h); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return j, nil
}

// ResumeJournal reopens an existing journal for appending: it loads and
// verifies the journaled state against h (topology, task count, seed, and
// benchmark when both name one), then continues the sequence where the
// interrupted run stopped. The returned state is what the caller feeds to
// core.IterConfig.Resume / ResumeDraws.
func ResumeJournal(path string, h JournalHeader) (*Journal, *JournalState, error) {
	st, err := LoadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if st.Header.Topo != h.Topo {
		return nil, nil, fmt.Errorf("campaign: journal topology %v does not match testbed %v", st.Header.Topo, h.Topo)
	}
	if st.Header.Tasks != h.Tasks {
		return nil, nil, fmt.Errorf("campaign: journal has %d tasks, testbed runs %d", st.Header.Tasks, h.Tasks)
	}
	if st.Header.Seed != h.Seed {
		return nil, nil, fmt.Errorf("campaign: journal seed %d does not match campaign seed %d (resume would draw different assignments)", st.Header.Seed, h.Seed)
	}
	if st.Header.Benchmark != "" && h.Benchmark != "" && st.Header.Benchmark != h.Benchmark {
		return nil, nil, fmt.Errorf("campaign: journal benchmark %q does not match %q", st.Header.Benchmark, h.Benchmark)
	}
	if st.Header.Strategy != h.Strategy {
		return nil, nil, fmt.Errorf("campaign: journal strategy %q does not match campaign strategy %q (resume would draw different assignments)",
			st.Header.Strategy, h.Strategy)
	}
	if st.Truncated {
		// The crash left a partial final line; cut it off so the next
		// append starts on a fresh, well-formed line.
		if err := os.Truncate(path, st.validBytes); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f, header: st.Header, seq: st.Draws}, st, nil
}

// Header returns the journal's identity line.
func (j *Journal) Header() JournalHeader { return j.header }

// Len returns how many entries have been journaled, including entries
// recovered by ResumeJournal.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Append journals one successful measurement. A non-finite perf is
// rejected up front with a clear error: encoding/json cannot represent
// NaN or ±Inf, and letting it fail mid-campaign surfaces as an opaque
// "unsupported value" encode error long after the bad measurement —
// whereas a testbed reporting a non-finite performance is the actual
// fault worth reporting.
func (j *Journal) Append(a assign.Assignment, perf float64) error {
	if math.IsNaN(perf) || math.IsInf(perf, 0) {
		return fmt.Errorf("campaign: journal: non-finite performance %v for %s (testbed fault?)", perf, a)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeLine(JournalEntry{Seq: j.seq + 1, Ctx: a.Ctx, Perf: perf})
}

// AppendFailure journals one quarantined measurement: the draw is
// consumed, the result is not usable.
func (j *Journal) AppendFailure(a assign.Assignment, measureErr error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	msg := "measurement failed"
	if measureErr != nil {
		msg = measureErr.Error()
	}
	return j.writeLine(JournalEntry{Seq: j.seq + 1, Ctx: a.Ctx, Error: msg})
}

// writeLine marshals v and appends it as one line. Callers hold j.mu
// (except construction). The write goes straight to the file descriptor —
// no userspace buffering — so a crashed process loses nothing that
// Append returned success for.
func (j *Journal) writeLine(v any) error {
	if j.closed {
		return errors.New("campaign: journal is closed")
	}
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("campaign: journal encode: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: journal write: %w", err)
	}
	if m := j.metrics; m != nil {
		m.Bytes.Add(float64(len(line) + 1))
		if e, ok := v.(JournalEntry); ok {
			if e.Error != "" {
				m.Failures.Inc()
			} else {
				m.Successes.Inc()
			}
		}
	}
	if e, ok := v.(JournalEntry); ok {
		j.seq = e.Seq
	}
	return nil
}

// Commit is the journal as a core.CommitFunc: successes are journaled via
// Append, quarantines via AppendFailure, anything else (a campaign
// cancellation, a fatal measurement error) is not journaled — the draw
// never completed and a resumed run re-executes it. Feed it to
// core.CollectSampleParallel / core.IterateParallel: the parallel fan-out
// commits in draw order, so the journal it produces is byte-identical to
// the one the serial JournalRunner middleware writes.
func (j *Journal) Commit(a assign.Assignment, perf float64, measureErr error) error {
	switch {
	case measureErr == nil:
		return j.Append(a, perf)
	case errors.Is(measureErr, core.ErrQuarantined):
		return j.AppendFailure(a, measureErr)
	}
	return nil
}

// Sync forces the journal down to stable storage (power-loss safety; a
// mere process crash never needs it).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	start := time.Time{}
	if j.metrics != nil {
		start = time.Now()
	}
	err := j.f.Sync()
	if m := j.metrics; m != nil {
		m.SyncSeconds.Observe(time.Since(start).Seconds())
		m.Syncs.Inc()
	}
	return err
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// JournalState is everything recovered from a journal file.
type JournalState struct {
	Header JournalHeader
	// Results are the successful measurements, in execution order —
	// ready for core.IterConfig.Resume.
	Results []core.SampleResult
	// Quarantined counts the journaled failures.
	Quarantined int
	// Log is every journaled draw in draw order, successes and
	// quarantines alike — core.IterConfig.ResumeLog. Outcome-driven
	// search strategies replay it to rebuild their state on resume.
	Log []core.ResumeDraw
	// Draws is the total number of assignment draws the journaled run
	// consumed (successes + quarantines) — core.IterConfig.ResumeDraws.
	Draws int
	// Truncated reports that the file ended in a partial line (the
	// process died mid-append); the fragment was ignored.
	Truncated bool
	// validBytes is the length of the well-formed prefix; ResumeJournal
	// truncates a torn file back to it before appending.
	validBytes int64
}

// LoadJournal reads a journal written by Journal, tolerating a torn final
// line — the expected crash signature for a process killed mid-append.
// Corruption anywhere else is an error.
func LoadJournal(path string) (*JournalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends with '\n', so the final split element is
	// empty; anything else is a torn tail.
	tail := lines[len(lines)-1]
	torn := len(tail) != 0
	lines = lines[:len(lines)-1]

	st := &JournalState{Truncated: torn, validBytes: int64(len(data) - len(tail))}
	if len(lines) == 0 {
		return nil, errors.New("campaign: journal has no header")
	}
	if err := json.Unmarshal(lines[0], &st.Header); err != nil {
		return nil, fmt.Errorf("campaign: journal header: %w", err)
	}
	if st.Header.Format != JournalVersion {
		return nil, fmt.Errorf("campaign: unsupported journal format %d", st.Header.Format)
	}
	if err := st.Header.Topo.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: journal header: %w", err)
	}
	for i, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("campaign: journal entry %d: %w", i+1, err)
		}
		if e.Seq != st.Draws+1 {
			return nil, fmt.Errorf("campaign: journal entry %d: sequence %d, want %d", i+1, e.Seq, st.Draws+1)
		}
		st.Draws = e.Seq
		a := assign.Assignment{Topo: st.Header.Topo, Ctx: e.Ctx}
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: journal entry %d: %w", i+1, err)
		}
		if e.Error != "" {
			st.Quarantined++
			st.Log = append(st.Log, core.ResumeDraw{Assignment: a, Quarantined: true})
			continue
		}
		st.Log = append(st.Log, core.ResumeDraw{Assignment: a, Perf: e.Perf})
		st.Results = append(st.Results, core.SampleResult{Assignment: a, Perf: e.Perf})
	}
	return st, nil
}

// Campaign converts the recovered measurements into a regular campaign
// (quarantined entries dropped), for the save/merge/analyze workflow.
func (s *JournalState) Campaign() *Campaign {
	c := New(s.Header.Benchmark, s.Header.Topo, s.Header.Seed)
	for _, r := range s.Results {
		c.Add(r.Assignment, r.Perf)
	}
	return c
}

// JournalRunner is a core.ContextRunner middleware that write-ahead logs
// every completed measurement: successes via Append, quarantines via
// AppendFailure. Campaign-cancellation errors are not journaled — the
// draw never completed and the resumed run will re-execute it.
type JournalRunner struct {
	Journal *Journal
	Runner  core.ContextRunner
}

// MeasureContext implements core.ContextRunner.
func (r JournalRunner) MeasureContext(ctx context.Context, a assign.Assignment) (float64, error) {
	perf, err := r.Runner.MeasureContext(ctx, a)
	switch {
	case err == nil:
		if jerr := r.Journal.Append(a, perf); jerr != nil {
			return 0, jerr
		}
	case errors.Is(err, core.ErrQuarantined):
		if jerr := r.Journal.AppendFailure(a, err); jerr != nil {
			return 0, jerr
		}
	}
	return perf, err
}

// Measure implements core.Runner with a background context.
func (r JournalRunner) Measure(a assign.Assignment) (float64, error) {
	return r.MeasureContext(context.Background(), a)
}
