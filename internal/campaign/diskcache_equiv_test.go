package campaign

// Journal-level equivalence of the persistent disk tier: layering a
// cas.Store under the LRU must be observationally invisible — same journal
// bytes, same result, at every worker count, with and without faults,
// whether the store is cold, warm from an earlier run (a "previous
// process", simulated by a fresh handle on the same directory), or picked
// up mid-campaign by a -resume after a kill.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"optassign/internal/cas"
	"optassign/internal/core"
	"optassign/internal/obs"
)

// diskCache builds an unbounded LRU backed by a fresh cas.Store handle on
// dir — each call stands in for a new process sharing the directory.
func diskCache(t *testing.T, dir string, cm *core.CacheMetrics) *core.Cache {
	t.Helper()
	store, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	c := core.NewCache(0, cm)
	c.AttachStore(store)
	return c
}

// TestDiskCachedJournalMatchesUncached runs the same campaign serially and
// at 4 and 16 workers, every run with a fresh in-memory cache but all
// sharing one store directory, and requires byte-identical journals to the
// uncached serial baseline. The first run fills the store; later runs must
// prove they were actually served by the disk tier (DiskHits > 0), and in
// the fault-free case must never reach the testbed at all (Misses == 0) —
// the warm store answers every class.
func TestDiskCachedJournalMatchesUncached(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%v", withFaults), func(t *testing.T) {
			const seed = 4
			baseline, baseRes, baseErr := runCacheEquivSerial(t, seed, withFaults)
			storeDir := filepath.Join(t.TempDir(), "store")
			for runIdx, workers := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					reg := obs.NewRegistry()
					cm := core.NewCacheMetrics(reg)
					cached := cacheEquivStack(withFaults, diskCache(t, storeDir, cm))

					path := filepath.Join(t.TempDir(), "disk.journal")
					j, err := CreateJournal(path, equivHeader(seed))
					if err != nil {
						t.Fatal(err)
					}
					var res core.IterResult
					var iterErr error
					if workers > 1 {
						pool, perr := core.NewReplicatedPool(cached, workers)
						if perr != nil {
							t.Fatal(perr)
						}
						res, iterErr = core.IterateParallel(context.Background(), equivConfig(seed), pool, j.Commit)
					} else {
						res, iterErr = core.IterateContext(context.Background(), equivConfig(seed),
							JournalRunner{Journal: j, Runner: cached})
					}
					if err := j.Close(); err != nil {
						t.Fatal(err)
					}
					if fmt.Sprint(iterErr) != fmt.Sprint(baseErr) {
						t.Fatalf("iterate error %v, uncached baseline %v", iterErr, baseErr)
					}
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(data, baseline) {
						t.Fatalf("disk-cached journal differs from uncached baseline:\ndisk-cached %d bytes\nbaseline %d bytes",
							len(data), len(baseline))
					}
					if res.Samples != baseRes.Samples || !reflect.DeepEqual(res.Best, baseRes.Best) {
						t.Fatalf("result (%d, %v) differs from baseline (%d, %v)",
							res.Samples, res.Best, baseRes.Samples, baseRes.Best)
					}
					if runIdx > 0 {
						if cm.DiskHits.Value() == 0 {
							t.Error("warm store served no disk hits: the persistence check proved nothing")
						}
						if !withFaults && cm.Misses.Value() != 0 {
							t.Errorf("warm fault-free run re-measured %.0f classes; the store should answer all of them",
								cm.Misses.Value())
						}
					}
					if cm.DiskErrors.Value() != 0 {
						t.Errorf("disk tier reported %.0f errors", cm.DiskErrors.Value())
					}
				})
			}
		})
	}
}

// TestDiskCacheResumeAfterKill kills a disk-cached campaign mid-run, then
// resumes it as a new process would: cold in-memory cache, fresh store
// handle on the surviving directory. The finished journal must be
// byte-identical to an uninterrupted uncached run, and the continuation
// must actually draw on the persisted measurements.
func TestDiskCacheResumeAfterKill(t *testing.T) {
	const seed, killAt = 3, 57
	for _, withFaults := range []bool{false, true} {
		t.Run(fmt.Sprintf("faults=%v", withFaults), func(t *testing.T) {
			baseline, baseRes, baseErr := runCacheEquivSerial(t, seed, withFaults)
			storeDir := filepath.Join(t.TempDir(), "store")

			killedPath := filepath.Join(t.TempDir(), "killed.journal")
			js, err := CreateJournal(killedPath, equivHeader(seed))
			if err != nil {
				t.Fatal(err)
			}
			stack := core.ContextRunner(JournalRunner{Journal: js,
				Runner: cacheEquivStack(withFaults, diskCache(t, storeDir, nil))})
			_, iterErr := core.IterateContext(context.Background(), equivConfig(seed),
				killSerialAfter(stack, js, killAt))
			if !errors.Is(iterErr, errKilled) {
				t.Fatalf("disk-cached kill: err = %v", iterErr)
			}
			js.Close()
			killed, err := os.ReadFile(killedPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(baseline, killed) {
				t.Fatal("killed disk-cached journal is not a prefix of the uncached baseline")
			}

			path := filepath.Join(t.TempDir(), "resume.journal")
			if err := os.WriteFile(path, killed, 0o644); err != nil {
				t.Fatal(err)
			}
			j, st, err := ResumeJournal(path, equivHeader(seed))
			if err != nil {
				t.Fatal(err)
			}
			if st.Draws != killAt {
				t.Fatalf("recovered %d draws, want %d", st.Draws, killAt)
			}
			cfg := equivConfig(seed)
			cfg.Resume = st.Results
			cfg.ResumeDraws = st.Draws

			cm := core.NewCacheMetrics(obs.NewRegistry())
			runner := cacheEquivStack(withFaults, diskCache(t, storeDir, cm))
			res, resumeErr := core.IterateContext(context.Background(), cfg,
				JournalRunner{Journal: j, Runner: runner})
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resumeErr) != fmt.Sprint(baseErr) {
				t.Fatalf("resume error %v, uninterrupted baseline %v", resumeErr, baseErr)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, baseline) {
				t.Fatalf("resumed journal differs from uninterrupted uncached baseline:\nresumed %d bytes\nbaseline %d bytes",
					len(data), len(baseline))
			}
			if res.Samples != baseRes.Samples || !reflect.DeepEqual(res.Best, baseRes.Best) {
				t.Fatalf("result (%d, %v) differs from baseline (%d, %v)",
					res.Samples, res.Best, baseRes.Samples, baseRes.Best)
			}
			if cm.DiskHits.Value() == 0 {
				t.Error("resume never hit the persisted store: classes measured before the kill were re-measured")
			}
		})
	}
}
